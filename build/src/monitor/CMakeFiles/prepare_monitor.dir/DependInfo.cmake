
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitor/attributes.cpp" "src/monitor/CMakeFiles/prepare_monitor.dir/attributes.cpp.o" "gcc" "src/monitor/CMakeFiles/prepare_monitor.dir/attributes.cpp.o.d"
  "/root/repo/src/monitor/labeler.cpp" "src/monitor/CMakeFiles/prepare_monitor.dir/labeler.cpp.o" "gcc" "src/monitor/CMakeFiles/prepare_monitor.dir/labeler.cpp.o.d"
  "/root/repo/src/monitor/memory_estimator.cpp" "src/monitor/CMakeFiles/prepare_monitor.dir/memory_estimator.cpp.o" "gcc" "src/monitor/CMakeFiles/prepare_monitor.dir/memory_estimator.cpp.o.d"
  "/root/repo/src/monitor/metric_store.cpp" "src/monitor/CMakeFiles/prepare_monitor.dir/metric_store.cpp.o" "gcc" "src/monitor/CMakeFiles/prepare_monitor.dir/metric_store.cpp.o.d"
  "/root/repo/src/monitor/slo_log.cpp" "src/monitor/CMakeFiles/prepare_monitor.dir/slo_log.cpp.o" "gcc" "src/monitor/CMakeFiles/prepare_monitor.dir/slo_log.cpp.o.d"
  "/root/repo/src/monitor/trace_io.cpp" "src/monitor/CMakeFiles/prepare_monitor.dir/trace_io.cpp.o" "gcc" "src/monitor/CMakeFiles/prepare_monitor.dir/trace_io.cpp.o.d"
  "/root/repo/src/monitor/vm_monitor.cpp" "src/monitor/CMakeFiles/prepare_monitor.dir/vm_monitor.cpp.o" "gcc" "src/monitor/CMakeFiles/prepare_monitor.dir/vm_monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prepare_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/prepare_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/prepare_timeseries.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
