file(REMOVE_RECURSE
  "CMakeFiles/prepare_monitor.dir/attributes.cpp.o"
  "CMakeFiles/prepare_monitor.dir/attributes.cpp.o.d"
  "CMakeFiles/prepare_monitor.dir/labeler.cpp.o"
  "CMakeFiles/prepare_monitor.dir/labeler.cpp.o.d"
  "CMakeFiles/prepare_monitor.dir/memory_estimator.cpp.o"
  "CMakeFiles/prepare_monitor.dir/memory_estimator.cpp.o.d"
  "CMakeFiles/prepare_monitor.dir/metric_store.cpp.o"
  "CMakeFiles/prepare_monitor.dir/metric_store.cpp.o.d"
  "CMakeFiles/prepare_monitor.dir/slo_log.cpp.o"
  "CMakeFiles/prepare_monitor.dir/slo_log.cpp.o.d"
  "CMakeFiles/prepare_monitor.dir/trace_io.cpp.o"
  "CMakeFiles/prepare_monitor.dir/trace_io.cpp.o.d"
  "CMakeFiles/prepare_monitor.dir/vm_monitor.cpp.o"
  "CMakeFiles/prepare_monitor.dir/vm_monitor.cpp.o.d"
  "libprepare_monitor.a"
  "libprepare_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prepare_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
