file(REMOVE_RECURSE
  "libprepare_monitor.a"
)
