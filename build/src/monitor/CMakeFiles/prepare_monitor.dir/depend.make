# Empty dependencies file for prepare_monitor.
# This may be replaced when dependencies are built.
