# Empty dependencies file for prepare_workload.
# This may be replaced when dependencies are built.
