file(REMOVE_RECURSE
  "CMakeFiles/prepare_workload.dir/nasa_trace.cpp.o"
  "CMakeFiles/prepare_workload.dir/nasa_trace.cpp.o.d"
  "CMakeFiles/prepare_workload.dir/patterns.cpp.o"
  "CMakeFiles/prepare_workload.dir/patterns.cpp.o.d"
  "CMakeFiles/prepare_workload.dir/trace_workload.cpp.o"
  "CMakeFiles/prepare_workload.dir/trace_workload.cpp.o.d"
  "libprepare_workload.a"
  "libprepare_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prepare_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
