file(REMOVE_RECURSE
  "libprepare_workload.a"
)
