file(REMOVE_RECURSE
  "libprepare_common.a"
)
