file(REMOVE_RECURSE
  "CMakeFiles/prepare_common.dir/csv.cpp.o"
  "CMakeFiles/prepare_common.dir/csv.cpp.o.d"
  "CMakeFiles/prepare_common.dir/logging.cpp.o"
  "CMakeFiles/prepare_common.dir/logging.cpp.o.d"
  "CMakeFiles/prepare_common.dir/stats.cpp.o"
  "CMakeFiles/prepare_common.dir/stats.cpp.o.d"
  "libprepare_common.a"
  "libprepare_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prepare_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
