# Empty dependencies file for prepare_common.
# This may be replaced when dependencies are built.
