file(REMOVE_RECURSE
  "libprepare_timeseries.a"
)
