# Empty compiler generated dependencies file for prepare_timeseries.
# This may be replaced when dependencies are built.
