file(REMOVE_RECURSE
  "CMakeFiles/prepare_timeseries.dir/changepoint.cpp.o"
  "CMakeFiles/prepare_timeseries.dir/changepoint.cpp.o.d"
  "CMakeFiles/prepare_timeseries.dir/timeseries.cpp.o"
  "CMakeFiles/prepare_timeseries.dir/timeseries.cpp.o.d"
  "libprepare_timeseries.a"
  "libprepare_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prepare_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
