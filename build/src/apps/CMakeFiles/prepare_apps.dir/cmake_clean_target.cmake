file(REMOVE_RECURSE
  "libprepare_apps.a"
)
