
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/stream/stream_app.cpp" "src/apps/CMakeFiles/prepare_apps.dir/stream/stream_app.cpp.o" "gcc" "src/apps/CMakeFiles/prepare_apps.dir/stream/stream_app.cpp.o.d"
  "/root/repo/src/apps/webapp/web_app.cpp" "src/apps/CMakeFiles/prepare_apps.dir/webapp/web_app.cpp.o" "gcc" "src/apps/CMakeFiles/prepare_apps.dir/webapp/web_app.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prepare_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/prepare_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/prepare_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/prepare_timeseries.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
