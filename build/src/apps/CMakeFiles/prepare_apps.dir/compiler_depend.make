# Empty compiler generated dependencies file for prepare_apps.
# This may be replaced when dependencies are built.
