file(REMOVE_RECURSE
  "CMakeFiles/prepare_apps.dir/stream/stream_app.cpp.o"
  "CMakeFiles/prepare_apps.dir/stream/stream_app.cpp.o.d"
  "CMakeFiles/prepare_apps.dir/webapp/web_app.cpp.o"
  "CMakeFiles/prepare_apps.dir/webapp/web_app.cpp.o.d"
  "libprepare_apps.a"
  "libprepare_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prepare_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
