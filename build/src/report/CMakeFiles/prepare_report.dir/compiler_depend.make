# Empty compiler generated dependencies file for prepare_report.
# This may be replaced when dependencies are built.
