file(REMOVE_RECURSE
  "libprepare_report.a"
)
