file(REMOVE_RECURSE
  "CMakeFiles/prepare_report.dir/report.cpp.o"
  "CMakeFiles/prepare_report.dir/report.cpp.o.d"
  "libprepare_report.a"
  "libprepare_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prepare_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
