file(REMOVE_RECURSE
  "CMakeFiles/prepare_core.dir/accuracy.cpp.o"
  "CMakeFiles/prepare_core.dir/accuracy.cpp.o.d"
  "CMakeFiles/prepare_core.dir/alarm_filter.cpp.o"
  "CMakeFiles/prepare_core.dir/alarm_filter.cpp.o.d"
  "CMakeFiles/prepare_core.dir/anomaly_predictor.cpp.o"
  "CMakeFiles/prepare_core.dir/anomaly_predictor.cpp.o.d"
  "CMakeFiles/prepare_core.dir/cause_inference.cpp.o"
  "CMakeFiles/prepare_core.dir/cause_inference.cpp.o.d"
  "CMakeFiles/prepare_core.dir/controller.cpp.o"
  "CMakeFiles/prepare_core.dir/controller.cpp.o.d"
  "CMakeFiles/prepare_core.dir/experiment.cpp.o"
  "CMakeFiles/prepare_core.dir/experiment.cpp.o.d"
  "CMakeFiles/prepare_core.dir/prevention.cpp.o"
  "CMakeFiles/prepare_core.dir/prevention.cpp.o.d"
  "CMakeFiles/prepare_core.dir/replay.cpp.o"
  "CMakeFiles/prepare_core.dir/replay.cpp.o.d"
  "libprepare_core.a"
  "libprepare_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prepare_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
