
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accuracy.cpp" "src/core/CMakeFiles/prepare_core.dir/accuracy.cpp.o" "gcc" "src/core/CMakeFiles/prepare_core.dir/accuracy.cpp.o.d"
  "/root/repo/src/core/alarm_filter.cpp" "src/core/CMakeFiles/prepare_core.dir/alarm_filter.cpp.o" "gcc" "src/core/CMakeFiles/prepare_core.dir/alarm_filter.cpp.o.d"
  "/root/repo/src/core/anomaly_predictor.cpp" "src/core/CMakeFiles/prepare_core.dir/anomaly_predictor.cpp.o" "gcc" "src/core/CMakeFiles/prepare_core.dir/anomaly_predictor.cpp.o.d"
  "/root/repo/src/core/cause_inference.cpp" "src/core/CMakeFiles/prepare_core.dir/cause_inference.cpp.o" "gcc" "src/core/CMakeFiles/prepare_core.dir/cause_inference.cpp.o.d"
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/prepare_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/prepare_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/prepare_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/prepare_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/prevention.cpp" "src/core/CMakeFiles/prepare_core.dir/prevention.cpp.o" "gcc" "src/core/CMakeFiles/prepare_core.dir/prevention.cpp.o.d"
  "/root/repo/src/core/replay.cpp" "src/core/CMakeFiles/prepare_core.dir/replay.cpp.o" "gcc" "src/core/CMakeFiles/prepare_core.dir/replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prepare_common.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/prepare_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/prepare_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/prepare_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/prepare_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/prepare_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/prepare_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/prepare_models.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/prepare_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
