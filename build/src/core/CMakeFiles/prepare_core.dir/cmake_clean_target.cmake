file(REMOVE_RECURSE
  "libprepare_core.a"
)
