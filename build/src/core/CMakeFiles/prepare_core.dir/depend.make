# Empty dependencies file for prepare_core.
# This may be replaced when dependencies are built.
