# Empty compiler generated dependencies file for prepare_models.
# This may be replaced when dependencies are built.
