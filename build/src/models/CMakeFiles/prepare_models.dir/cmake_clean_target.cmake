file(REMOVE_RECURSE
  "libprepare_models.a"
)
