
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/classifier.cpp" "src/models/CMakeFiles/prepare_models.dir/classifier.cpp.o" "gcc" "src/models/CMakeFiles/prepare_models.dir/classifier.cpp.o.d"
  "/root/repo/src/models/discretizer.cpp" "src/models/CMakeFiles/prepare_models.dir/discretizer.cpp.o" "gcc" "src/models/CMakeFiles/prepare_models.dir/discretizer.cpp.o.d"
  "/root/repo/src/models/distribution.cpp" "src/models/CMakeFiles/prepare_models.dir/distribution.cpp.o" "gcc" "src/models/CMakeFiles/prepare_models.dir/distribution.cpp.o.d"
  "/root/repo/src/models/markov.cpp" "src/models/CMakeFiles/prepare_models.dir/markov.cpp.o" "gcc" "src/models/CMakeFiles/prepare_models.dir/markov.cpp.o.d"
  "/root/repo/src/models/markov2.cpp" "src/models/CMakeFiles/prepare_models.dir/markov2.cpp.o" "gcc" "src/models/CMakeFiles/prepare_models.dir/markov2.cpp.o.d"
  "/root/repo/src/models/markov_n.cpp" "src/models/CMakeFiles/prepare_models.dir/markov_n.cpp.o" "gcc" "src/models/CMakeFiles/prepare_models.dir/markov_n.cpp.o.d"
  "/root/repo/src/models/naive_bayes.cpp" "src/models/CMakeFiles/prepare_models.dir/naive_bayes.cpp.o" "gcc" "src/models/CMakeFiles/prepare_models.dir/naive_bayes.cpp.o.d"
  "/root/repo/src/models/outlier.cpp" "src/models/CMakeFiles/prepare_models.dir/outlier.cpp.o" "gcc" "src/models/CMakeFiles/prepare_models.dir/outlier.cpp.o.d"
  "/root/repo/src/models/tan.cpp" "src/models/CMakeFiles/prepare_models.dir/tan.cpp.o" "gcc" "src/models/CMakeFiles/prepare_models.dir/tan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prepare_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
