file(REMOVE_RECURSE
  "CMakeFiles/prepare_models.dir/classifier.cpp.o"
  "CMakeFiles/prepare_models.dir/classifier.cpp.o.d"
  "CMakeFiles/prepare_models.dir/discretizer.cpp.o"
  "CMakeFiles/prepare_models.dir/discretizer.cpp.o.d"
  "CMakeFiles/prepare_models.dir/distribution.cpp.o"
  "CMakeFiles/prepare_models.dir/distribution.cpp.o.d"
  "CMakeFiles/prepare_models.dir/markov.cpp.o"
  "CMakeFiles/prepare_models.dir/markov.cpp.o.d"
  "CMakeFiles/prepare_models.dir/markov2.cpp.o"
  "CMakeFiles/prepare_models.dir/markov2.cpp.o.d"
  "CMakeFiles/prepare_models.dir/markov_n.cpp.o"
  "CMakeFiles/prepare_models.dir/markov_n.cpp.o.d"
  "CMakeFiles/prepare_models.dir/naive_bayes.cpp.o"
  "CMakeFiles/prepare_models.dir/naive_bayes.cpp.o.d"
  "CMakeFiles/prepare_models.dir/outlier.cpp.o"
  "CMakeFiles/prepare_models.dir/outlier.cpp.o.d"
  "CMakeFiles/prepare_models.dir/tan.cpp.o"
  "CMakeFiles/prepare_models.dir/tan.cpp.o.d"
  "libprepare_models.a"
  "libprepare_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prepare_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
