
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/clock.cpp" "src/sim/CMakeFiles/prepare_sim.dir/clock.cpp.o" "gcc" "src/sim/CMakeFiles/prepare_sim.dir/clock.cpp.o.d"
  "/root/repo/src/sim/cluster.cpp" "src/sim/CMakeFiles/prepare_sim.dir/cluster.cpp.o" "gcc" "src/sim/CMakeFiles/prepare_sim.dir/cluster.cpp.o.d"
  "/root/repo/src/sim/event_log.cpp" "src/sim/CMakeFiles/prepare_sim.dir/event_log.cpp.o" "gcc" "src/sim/CMakeFiles/prepare_sim.dir/event_log.cpp.o.d"
  "/root/repo/src/sim/host.cpp" "src/sim/CMakeFiles/prepare_sim.dir/host.cpp.o" "gcc" "src/sim/CMakeFiles/prepare_sim.dir/host.cpp.o.d"
  "/root/repo/src/sim/hypervisor.cpp" "src/sim/CMakeFiles/prepare_sim.dir/hypervisor.cpp.o" "gcc" "src/sim/CMakeFiles/prepare_sim.dir/hypervisor.cpp.o.d"
  "/root/repo/src/sim/vm.cpp" "src/sim/CMakeFiles/prepare_sim.dir/vm.cpp.o" "gcc" "src/sim/CMakeFiles/prepare_sim.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prepare_common.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/prepare_timeseries.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
