# Empty dependencies file for prepare_sim.
# This may be replaced when dependencies are built.
