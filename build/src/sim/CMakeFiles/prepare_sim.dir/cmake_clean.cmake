file(REMOVE_RECURSE
  "CMakeFiles/prepare_sim.dir/clock.cpp.o"
  "CMakeFiles/prepare_sim.dir/clock.cpp.o.d"
  "CMakeFiles/prepare_sim.dir/cluster.cpp.o"
  "CMakeFiles/prepare_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/prepare_sim.dir/event_log.cpp.o"
  "CMakeFiles/prepare_sim.dir/event_log.cpp.o.d"
  "CMakeFiles/prepare_sim.dir/host.cpp.o"
  "CMakeFiles/prepare_sim.dir/host.cpp.o.d"
  "CMakeFiles/prepare_sim.dir/hypervisor.cpp.o"
  "CMakeFiles/prepare_sim.dir/hypervisor.cpp.o.d"
  "CMakeFiles/prepare_sim.dir/vm.cpp.o"
  "CMakeFiles/prepare_sim.dir/vm.cpp.o.d"
  "libprepare_sim.a"
  "libprepare_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prepare_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
