file(REMOVE_RECURSE
  "libprepare_sim.a"
)
