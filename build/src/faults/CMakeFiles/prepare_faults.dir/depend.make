# Empty dependencies file for prepare_faults.
# This may be replaced when dependencies are built.
