file(REMOVE_RECURSE
  "CMakeFiles/prepare_faults.dir/faults.cpp.o"
  "CMakeFiles/prepare_faults.dir/faults.cpp.o.d"
  "CMakeFiles/prepare_faults.dir/injector.cpp.o"
  "CMakeFiles/prepare_faults.dir/injector.cpp.o.d"
  "libprepare_faults.a"
  "libprepare_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prepare_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
