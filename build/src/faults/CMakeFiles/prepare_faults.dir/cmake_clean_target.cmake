file(REMOVE_RECURSE
  "libprepare_faults.a"
)
