file(REMOVE_RECURSE
  "CMakeFiles/accuracy_test.dir/accuracy_test.cpp.o"
  "CMakeFiles/accuracy_test.dir/accuracy_test.cpp.o.d"
  "accuracy_test"
  "accuracy_test.pdb"
  "accuracy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accuracy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
