file(REMOVE_RECURSE
  "CMakeFiles/slo_log_test.dir/slo_log_test.cpp.o"
  "CMakeFiles/slo_log_test.dir/slo_log_test.cpp.o.d"
  "slo_log_test"
  "slo_log_test.pdb"
  "slo_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slo_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
