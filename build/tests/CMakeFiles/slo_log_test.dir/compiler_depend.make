# Empty compiler generated dependencies file for slo_log_test.
# This may be replaced when dependencies are built.
