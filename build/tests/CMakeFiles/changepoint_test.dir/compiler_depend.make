# Empty compiler generated dependencies file for changepoint_test.
# This may be replaced when dependencies are built.
