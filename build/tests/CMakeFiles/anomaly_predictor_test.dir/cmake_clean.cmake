file(REMOVE_RECURSE
  "CMakeFiles/anomaly_predictor_test.dir/anomaly_predictor_test.cpp.o"
  "CMakeFiles/anomaly_predictor_test.dir/anomaly_predictor_test.cpp.o.d"
  "anomaly_predictor_test"
  "anomaly_predictor_test.pdb"
  "anomaly_predictor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anomaly_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
