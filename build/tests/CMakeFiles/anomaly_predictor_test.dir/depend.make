# Empty dependencies file for anomaly_predictor_test.
# This may be replaced when dependencies are built.
