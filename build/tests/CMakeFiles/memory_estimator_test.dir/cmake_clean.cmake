file(REMOVE_RECURSE
  "CMakeFiles/memory_estimator_test.dir/memory_estimator_test.cpp.o"
  "CMakeFiles/memory_estimator_test.dir/memory_estimator_test.cpp.o.d"
  "memory_estimator_test"
  "memory_estimator_test.pdb"
  "memory_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
