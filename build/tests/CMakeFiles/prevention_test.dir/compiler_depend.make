# Empty compiler generated dependencies file for prevention_test.
# This may be replaced when dependencies are built.
