file(REMOVE_RECURSE
  "CMakeFiles/prevention_test.dir/prevention_test.cpp.o"
  "CMakeFiles/prevention_test.dir/prevention_test.cpp.o.d"
  "prevention_test"
  "prevention_test.pdb"
  "prevention_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prevention_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
