# Empty compiler generated dependencies file for host_cluster_test.
# This may be replaced when dependencies are built.
