file(REMOVE_RECURSE
  "CMakeFiles/alarm_filter_test.dir/alarm_filter_test.cpp.o"
  "CMakeFiles/alarm_filter_test.dir/alarm_filter_test.cpp.o.d"
  "alarm_filter_test"
  "alarm_filter_test.pdb"
  "alarm_filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alarm_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
