# Empty dependencies file for markov_n_test.
# This may be replaced when dependencies are built.
