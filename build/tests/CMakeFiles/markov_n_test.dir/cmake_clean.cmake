file(REMOVE_RECURSE
  "CMakeFiles/markov_n_test.dir/markov_n_test.cpp.o"
  "CMakeFiles/markov_n_test.dir/markov_n_test.cpp.o.d"
  "markov_n_test"
  "markov_n_test.pdb"
  "markov_n_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/markov_n_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
