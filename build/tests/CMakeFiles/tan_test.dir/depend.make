# Empty dependencies file for tan_test.
# This may be replaced when dependencies are built.
