file(REMOVE_RECURSE
  "CMakeFiles/tan_test.dir/tan_test.cpp.o"
  "CMakeFiles/tan_test.dir/tan_test.cpp.o.d"
  "tan_test"
  "tan_test.pdb"
  "tan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
