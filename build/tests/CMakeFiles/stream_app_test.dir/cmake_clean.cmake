file(REMOVE_RECURSE
  "CMakeFiles/stream_app_test.dir/stream_app_test.cpp.o"
  "CMakeFiles/stream_app_test.dir/stream_app_test.cpp.o.d"
  "stream_app_test"
  "stream_app_test.pdb"
  "stream_app_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_app_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
