file(REMOVE_RECURSE
  "CMakeFiles/cause_inference_test.dir/cause_inference_test.cpp.o"
  "CMakeFiles/cause_inference_test.dir/cause_inference_test.cpp.o.d"
  "cause_inference_test"
  "cause_inference_test.pdb"
  "cause_inference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cause_inference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
