# Empty dependencies file for cause_inference_test.
# This may be replaced when dependencies are built.
