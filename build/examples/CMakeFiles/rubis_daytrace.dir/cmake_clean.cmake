file(REMOVE_RECURSE
  "CMakeFiles/rubis_daytrace.dir/rubis_daytrace.cpp.o"
  "CMakeFiles/rubis_daytrace.dir/rubis_daytrace.cpp.o.d"
  "rubis_daytrace"
  "rubis_daytrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rubis_daytrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
