# Empty compiler generated dependencies file for rubis_daytrace.
# This may be replaced when dependencies are built.
