file(REMOVE_RECURSE
  "CMakeFiles/prepare_cli.dir/prepare_cli.cpp.o"
  "CMakeFiles/prepare_cli.dir/prepare_cli.cpp.o.d"
  "prepare_cli"
  "prepare_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prepare_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
