# Empty dependencies file for prepare_cli.
# This may be replaced when dependencies are built.
