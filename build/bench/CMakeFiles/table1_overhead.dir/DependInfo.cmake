
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_overhead.cpp" "bench/CMakeFiles/table1_overhead.dir/table1_overhead.cpp.o" "gcc" "bench/CMakeFiles/table1_overhead.dir/table1_overhead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/prepare_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/prepare_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/prepare_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/prepare_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/prepare_models.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/prepare_report.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/prepare_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/prepare_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/prepare_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/prepare_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
