# Empty compiler generated dependencies file for fig09_traces_migration.
# This may be replaced when dependencies are built.
