file(REMOVE_RECURSE
  "CMakeFiles/fig09_traces_migration.dir/fig09_traces_migration.cpp.o"
  "CMakeFiles/fig09_traces_migration.dir/fig09_traces_migration.cpp.o.d"
  "fig09_traces_migration"
  "fig09_traces_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_traces_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
