# Empty dependencies file for fig13_sampling.
# This may be replaced when dependencies are built.
