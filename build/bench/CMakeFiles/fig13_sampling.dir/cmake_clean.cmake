file(REMOVE_RECURSE
  "CMakeFiles/fig13_sampling.dir/fig13_sampling.cpp.o"
  "CMakeFiles/fig13_sampling.dir/fig13_sampling.cpp.o.d"
  "fig13_sampling"
  "fig13_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
