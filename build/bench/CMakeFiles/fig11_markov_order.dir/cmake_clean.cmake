file(REMOVE_RECURSE
  "CMakeFiles/fig11_markov_order.dir/fig11_markov_order.cpp.o"
  "CMakeFiles/fig11_markov_order.dir/fig11_markov_order.cpp.o.d"
  "fig11_markov_order"
  "fig11_markov_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_markov_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
