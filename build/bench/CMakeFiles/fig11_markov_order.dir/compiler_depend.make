# Empty compiler generated dependencies file for fig11_markov_order.
# This may be replaced when dependencies are built.
