file(REMOVE_RECURSE
  "CMakeFiles/abl_validation.dir/abl_validation.cpp.o"
  "CMakeFiles/abl_validation.dir/abl_validation.cpp.o.d"
  "abl_validation"
  "abl_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
