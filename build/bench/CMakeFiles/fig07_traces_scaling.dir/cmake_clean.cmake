file(REMOVE_RECURSE
  "CMakeFiles/fig07_traces_scaling.dir/fig07_traces_scaling.cpp.o"
  "CMakeFiles/fig07_traces_scaling.dir/fig07_traces_scaling.cpp.o.d"
  "fig07_traces_scaling"
  "fig07_traces_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_traces_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
