file(REMOVE_RECURSE
  "CMakeFiles/abl_markov_n.dir/abl_markov_n.cpp.o"
  "CMakeFiles/abl_markov_n.dir/abl_markov_n.cpp.o.d"
  "abl_markov_n"
  "abl_markov_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_markov_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
