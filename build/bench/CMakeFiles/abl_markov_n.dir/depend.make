# Empty dependencies file for abl_markov_n.
# This may be replaced when dependencies are built.
