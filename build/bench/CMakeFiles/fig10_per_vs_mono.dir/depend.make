# Empty dependencies file for fig10_per_vs_mono.
# This may be replaced when dependencies are built.
