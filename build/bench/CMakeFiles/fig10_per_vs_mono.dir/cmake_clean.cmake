file(REMOVE_RECURSE
  "CMakeFiles/fig10_per_vs_mono.dir/fig10_per_vs_mono.cpp.o"
  "CMakeFiles/fig10_per_vs_mono.dir/fig10_per_vs_mono.cpp.o.d"
  "fig10_per_vs_mono"
  "fig10_per_vs_mono.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_per_vs_mono.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
