# Empty dependencies file for fig08_slo_migration.
# This may be replaced when dependencies are built.
