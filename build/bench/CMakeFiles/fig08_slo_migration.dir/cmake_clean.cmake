file(REMOVE_RECURSE
  "CMakeFiles/fig08_slo_migration.dir/fig08_slo_migration.cpp.o"
  "CMakeFiles/fig08_slo_migration.dir/fig08_slo_migration.cpp.o.d"
  "fig08_slo_migration"
  "fig08_slo_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_slo_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
