file(REMOVE_RECURSE
  "CMakeFiles/abl_classification.dir/abl_classification.cpp.o"
  "CMakeFiles/abl_classification.dir/abl_classification.cpp.o.d"
  "abl_classification"
  "abl_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
