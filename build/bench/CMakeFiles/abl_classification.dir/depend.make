# Empty dependencies file for abl_classification.
# This may be replaced when dependencies are built.
