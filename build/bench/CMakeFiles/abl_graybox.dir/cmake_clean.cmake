file(REMOVE_RECURSE
  "CMakeFiles/abl_graybox.dir/abl_graybox.cpp.o"
  "CMakeFiles/abl_graybox.dir/abl_graybox.cpp.o.d"
  "abl_graybox"
  "abl_graybox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_graybox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
