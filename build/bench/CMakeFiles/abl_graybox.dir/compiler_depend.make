# Empty compiler generated dependencies file for abl_graybox.
# This may be replaced when dependencies are built.
