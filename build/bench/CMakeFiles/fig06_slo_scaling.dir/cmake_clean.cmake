file(REMOVE_RECURSE
  "CMakeFiles/fig06_slo_scaling.dir/fig06_slo_scaling.cpp.o"
  "CMakeFiles/fig06_slo_scaling.dir/fig06_slo_scaling.cpp.o.d"
  "fig06_slo_scaling"
  "fig06_slo_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_slo_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
