# Empty dependencies file for fig06_slo_scaling.
# This may be replaced when dependencies are built.
