# Empty compiler generated dependencies file for fig12_filter_kw.
# This may be replaced when dependencies are built.
