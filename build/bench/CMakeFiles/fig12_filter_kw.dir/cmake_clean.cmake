file(REMOVE_RECURSE
  "CMakeFiles/fig12_filter_kw.dir/fig12_filter_kw.cpp.o"
  "CMakeFiles/fig12_filter_kw.dir/fig12_filter_kw.cpp.o.d"
  "fig12_filter_kw"
  "fig12_filter_kw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_filter_kw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
