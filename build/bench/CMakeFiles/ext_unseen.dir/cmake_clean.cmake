file(REMOVE_RECURSE
  "CMakeFiles/ext_unseen.dir/ext_unseen.cpp.o"
  "CMakeFiles/ext_unseen.dir/ext_unseen.cpp.o.d"
  "ext_unseen"
  "ext_unseen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_unseen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
