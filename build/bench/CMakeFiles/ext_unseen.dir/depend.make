# Empty dependencies file for ext_unseen.
# This may be replaced when dependencies are built.
