file(REMOVE_RECURSE
  "CMakeFiles/abl_tan_vs_nb.dir/abl_tan_vs_nb.cpp.o"
  "CMakeFiles/abl_tan_vs_nb.dir/abl_tan_vs_nb.cpp.o.d"
  "abl_tan_vs_nb"
  "abl_tan_vs_nb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_tan_vs_nb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
