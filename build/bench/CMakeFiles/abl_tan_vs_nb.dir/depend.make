# Empty dependencies file for abl_tan_vs_nb.
# This may be replaced when dependencies are built.
