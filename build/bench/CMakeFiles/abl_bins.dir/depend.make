# Empty dependencies file for abl_bins.
# This may be replaced when dependencies are built.
