file(REMOVE_RECURSE
  "CMakeFiles/abl_bins.dir/abl_bins.cpp.o"
  "CMakeFiles/abl_bins.dir/abl_bins.cpp.o.d"
  "abl_bins"
  "abl_bins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_bins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
