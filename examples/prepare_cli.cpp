// Command-line experiment runner: the whole harness behind flags.
//
//   prepare_cli --app rubis --fault memory_leak --scheme prepare
//               --mode scaling --seed 3 --repeats 5 --export /tmp/run
//
// Prints the SLO violation time (mean +/- std over --repeats seeded
// runs) and, with --export, writes the last run's metric and SLO traces
// as CSV for offline analysis / replay through the accuracy harness.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "common/stats.h"
#include "core/experiment.h"
#include "core/replay.h"
#include "monitor/trace_io.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/metrics_http.h"
#include "obs/model_introspect.h"
#include "obs/span_tracer.h"
#include "obs/stage_profiler.h"
#include "obs/trace_export.h"
#include "report/report.h"

using namespace prepare;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --app system_s|rubis          (default system_s)\n"
      "  --fault memory_leak|cpu_hog|bottleneck\n"
      "  --second-fault <kind>         (default: same as --fault)\n"
      "  --scheme none|reactive|prepare (default prepare)\n"
      "  --mode scaling|migration|auto (prevention action; default scaling)\n"
      "  --seed N                      (default 1)\n"
      "  --repeats N                   (default 1)\n"
      "  --sampling S                  (seconds; default 5)\n"
      "  --threads N                   (worker threads for the per-VM "
      "prediction\n                                 fan-out; default 1; any "
      "N gives identical results)\n"
      "  --export PREFIX               (write PREFIX_metrics.csv, "
      "PREFIX_slo.csv)\n"
      "  --replay PREFIX               (offline: load PREFIX_metrics.csv/"
      "PREFIX_slo.csv,\n                                 print the alert "
      "timeline, run nothing)\n"
      "  --report FILE.html            (write an HTML report of the last "
      "run)\n"
      "  --obs-out FILE.jsonl          (write the last run's structured "
      "trace:\n                                 run header, events, metric/"
      "histogram snapshots)\n"
      "  --obs-summary                 (print the per-stage overhead table, "
      "alert-quality\n                                 gauges, the model "
      "calibration/drift summary, and\n                                 the "
      "flight-recorder bundle/ring statistics)\n"
      "  --record-episodes             (attach the episode flight recorder: "
      "capture\n                                 decision-evidence bundles "
      "for the last run and\n                                 export them "
      "with --obs-out as episode_evidence records)\n"
      "  --verify-episodes             (replay every captured bundle offline "
      "and check\n                                 each decision is "
      "bit-identical to the live run;\n                                 "
      "implies --record-episodes, exit 1 on mismatch)\n"
      "  --explain-episode TRACE_ID    (print the decision timeline of one "
      "captured\n                                 episode; implies "
      "--record-episodes)\n"
      "  --what-if policy=MODE         (scaling|migration|auto: re-derive "
      "the prevention\n                                 decisions of the "
      "captured episodes under MODE and\n                                 "
      "report divergences; implies --record-episodes)\n"
      "  --serve-metrics PORT          (serve GET /metrics + /healthz on "
      "127.0.0.1:PORT\n                                 during the run, "
      "Prometheus text format; 0 picks\n                                 a "
      "free port)\n"
      "  --serve-hold-s SEC            (keep serving SEC seconds after the "
      "runs finish;\n                                 SIGINT/SIGTERM ends the "
      "hold early)\n",
      argv0);
  // NOLINTNEXTLINE(concurrency-mt-unsafe): usage error precedes threads
  std::exit(2);
}

AppKind parse_app(const std::string& s, const char* argv0) {
  if (s == "system_s") return AppKind::kSystemS;
  if (s == "rubis") return AppKind::kRubis;
  usage(argv0);
}

FaultKind parse_fault(const std::string& s, const char* argv0) {
  if (s == "memory_leak") return FaultKind::kMemoryLeak;
  if (s == "cpu_hog") return FaultKind::kCpuHog;
  if (s == "bottleneck") return FaultKind::kBottleneck;
  usage(argv0);
}

volatile std::sig_atomic_t g_interrupted = 0;

void on_signal(int /*signum*/) { g_interrupted = 1; }

}  // namespace

int main(int argc, char** argv) {
  ScenarioConfig config;
  std::size_t repeats = 1;
  std::optional<std::string> export_prefix;
  std::optional<std::string> replay_prefix;
  std::optional<std::string> report_path;
  std::optional<std::string> obs_out;
  bool obs_summary = false;
  bool record_episodes = false;
  bool verify_episodes = false;
  std::optional<std::string> explain_episode;
  std::optional<int> what_if;
  std::optional<int> serve_port;
  double serve_hold_s = 0.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--app") {
      config.app = parse_app(value(), argv[0]);
    } else if (arg == "--fault") {
      config.fault = parse_fault(value(), argv[0]);
    } else if (arg == "--second-fault") {
      config.second_fault = parse_fault(value(), argv[0]);
    } else if (arg == "--scheme") {
      const std::string s = value();
      if (s == "none") config.scheme = Scheme::kNoIntervention;
      else if (s == "reactive") config.scheme = Scheme::kReactive;
      else if (s == "prepare") config.scheme = Scheme::kPrepare;
      else usage(argv[0]);
    } else if (arg == "--mode") {
      const std::string s = value();
      if (s == "scaling")
        config.prepare.prevention.mode = PreventionMode::kScalingOnly;
      else if (s == "migration")
        config.prepare.prevention.mode = PreventionMode::kMigrationOnly;
      else if (s == "auto")
        config.prepare.prevention.mode =
            PreventionMode::kScalingThenMigration;
      else usage(argv[0]);
    } else if (arg == "--seed") {
      config.seed = std::stoull(value());
    } else if (arg == "--repeats") {
      repeats = std::stoull(value());
    } else if (arg == "--sampling") {
      config.sampling_interval_s = std::stod(value());
    } else if (arg == "--threads") {
      config.num_threads = std::stoull(value());
      if (config.num_threads == 0) usage(argv[0]);
    } else if (arg == "--export") {
      export_prefix = value();
    } else if (arg == "--replay") {
      replay_prefix = value();
    } else if (arg == "--report") {
      report_path = value();
    } else if (arg == "--obs-out") {
      obs_out = value();
    } else if (arg == "--obs-summary") {
      obs_summary = true;
    } else if (arg == "--record-episodes") {
      record_episodes = true;
    } else if (arg == "--verify-episodes") {
      verify_episodes = true;
    } else if (arg == "--explain-episode") {
      explain_episode = value();
    } else if (arg == "--what-if") {
      std::string s = value();
      if (s.rfind("policy=", 0) == 0) s = s.substr(7);
      if (s == "scaling") what_if = 0;
      else if (s == "migration") what_if = 1;
      else if (s == "auto") what_if = 2;
      else usage(argv[0]);
    } else if (arg == "--serve-metrics") {
      serve_port = std::stoi(value());
      if (*serve_port < 0 || *serve_port > 65535) usage(argv[0]);
    } else if (arg == "--serve-hold-s") {
      serve_hold_s = std::stod(value());
    } else {
      usage(argv[0]);
    }
  }

  if (replay_prefix) {
    const auto store =
        load_metric_store_csv(*replay_prefix + "_metrics.csv");
    const auto slo = load_slo_log_csv(*replay_prefix + "_slo.csv");
    const auto report = replay_trace(store, slo, ReplayConfig{});
    std::printf("replay of %s: %zu raw alerts, %zu confirmed\n",
                replay_prefix->c_str(), report.raw_alerts,
                report.confirmed_alerts);
    for (const auto& alert : report.alerts) {
      if (!alert.confirmed) continue;
      std::printf("  %7.1f s  %-10s score %6.2f  metrics:", alert.time,
                  alert.vm.c_str(), alert.score);
      for (Attribute a : alert.top_metrics)
        std::printf(" %s", attribute_name(a).c_str());
      std::printf("\n");
    }
    return 0;
  }

  std::printf("app=%s fault=%s", app_kind_name(config.app),
              fault_kind_name(config.fault));
  if (config.second_fault)
    std::printf(" second_fault=%s", fault_kind_name(*config.second_fault));
  std::printf(" scheme=%s seed=%llu repeats=%zu\n",
              scheme_name(config.scheme),
              static_cast<unsigned long long>(config.seed), repeats);

  // The forensic sub-commands all consume bundles, so each implies the
  // recorder.
  record_episodes = record_episodes || verify_episodes ||
                    explain_episode.has_value() || what_if.has_value();

  obs::MetricsRegistry registry;
  const bool observe = obs_out.has_value() || obs_summary ||
                       serve_port.has_value() || record_episodes;

  obs::MetricsHttpServer server(&registry);
  if (serve_port) {
    // Start before the runs so a scraper sees the pipeline live; a
    // signal ends the post-run hold (and a hung scrape session) early.
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    if (!server.start(*serve_port)) {
      std::fprintf(stderr, "cannot serve metrics on port %d\n", *serve_port);
      return 1;
    }
    std::printf("serving metrics on port %d\n", server.port());
    std::fflush(stdout);
  }

  std::vector<double> runs;
  ScenarioResult last;
  std::optional<obs::SpanTracer> tracer;
  std::optional<obs::ModelIntrospect> introspect;
  std::optional<obs::FlightRecorder> recorder;
  std::uint64_t last_seed = config.seed;
  for (std::size_t r = 0; r < repeats; ++r) {
    ScenarioConfig c = config;
    c.seed = config.seed + r;
    last_seed = c.seed;
    if (observe) {
      registry.reset();  // the exported trace covers the last run only
      c.metrics = &registry;
      tracer.emplace(&registry);  // episodes are per-run
      c.tracer = &*tracer;
      introspect.emplace(&registry);  // calibration state is per-run
      c.introspect = &*introspect;
      if (record_episodes) {
        recorder.emplace(&registry);  // bundles are per-run
        c.recorder = &*recorder;
      }
    }
    last = run_scenario(c);
    runs.push_back(last.violation_time);
    std::printf("  run %zu (seed %llu): SLO violation %.1f s (faulty %s)\n",
                r + 1, static_cast<unsigned long long>(c.seed),
                last.violation_time, last.faulty_vm.c_str());
  }
  std::printf("violation time: mean %.1f s, std %.1f s\n", mean_of(runs),
              stddev_of(runs));

  int exit_code = 0;
  if (recorder) {
    const auto& bundles = recorder->bundles();
    if (!obs_summary)
      std::printf(
          "episode bundles (last run): %zu captured, %zu dropped, "
          "ring high water %zu\n",
          recorder->bundles_emitted(), recorder->dropped_total(),
          recorder->ring_high_water());
    if (verify_episodes) {
      std::size_t failed = 0;
      for (const auto& bundle : bundles) {
        const auto res = replay_episode(bundle);
        if (!res.ok) {
          ++failed;
          std::printf("  REPLAY MISMATCH %s: %s\n", bundle.trace_id.c_str(),
                      res.first_mismatch.c_str());
        }
      }
      std::printf("replay verification: %zu/%zu bundles bit-identical\n",
                  bundles.size() - failed, bundles.size());
      if (failed != 0) exit_code = 1;
    }
    if (what_if) {
      // Annotate before --obs-out runs so the counterfactual records are
      // exported alongside the evidence they re-executed.
      static const char* kModeNames[] = {"scaling", "migration", "auto"};
      for (const auto& bundle : bundles) {
        if (explain_episode && bundle.trace_id != *explain_episode) continue;
        const auto wi = what_if_policy(bundle, *what_if);
        obs::CounterfactualNote note;
        note.policy = wi.policy;
        note.compared = wi.compared;
        note.diverged = wi.diverged;
        note.detail = wi.detail;
        recorder->annotate_counterfactual(bundle.trace_id, note);
        std::printf("what-if policy=%s on %s: %zu/%zu decisions diverge",
                    kModeNames[*what_if], bundle.trace_id.c_str(),
                    wi.diverged, wi.compared);
        if (!wi.detail.empty())
          std::printf(" (first: %s)", wi.detail.c_str());
        std::printf("\n");
      }
    }
    if (explain_episode) {
      const obs::EpisodeBundle* found = nullptr;
      for (const auto& bundle : bundles)
        if (bundle.trace_id == *explain_episode) {
          found = &bundle;
          break;
        }
      if (found == nullptr) {
        std::fprintf(stderr, "no captured episode with trace id %s;",
                     explain_episode->c_str());
        std::fprintf(stderr, " captured:");
        for (const auto& bundle : bundles)
          std::fprintf(stderr, " %s", bundle.trace_id.c_str());
        std::fprintf(stderr, "\n");
        exit_code = 1;
      } else {
        const auto& b = *found;
        std::printf(
            "\nepisode %s (%s): open %.1f s, close %.1f s, outcome %s, "
            "%zu ticks (%zu pre-context, %zu truncated)\n",
            b.trace_id.c_str(), b.vm.c_str(), b.t_open, b.t_close,
            b.outcome.c_str(), b.ticks.size(), b.pre_ticks,
            b.truncated_ticks);
        for (std::size_t s = 0; s < b.ticks.size(); ++s) {
          const auto& tick = b.ticks[s];
          std::size_t top = 0;
          for (std::size_t i = 1; i < tick.impacts.size(); ++i)
            if (tick.impacts[i] > tick.impacts[top]) top = i;
          std::printf(
              "  %-7s %7.1f s  score %+8.3f  %s%s%s top %s (L=%.2f)\n",
              s < b.pre_ticks ? "pre" : "episode", tick.t, tick.score,
              tick.abnormal ? "abnormal " : "normal   ",
              tick.raw_alert ? "raw " : "    ",
              tick.confirmed ? "confirmed " : "          ",
              top < b.layout.attribute_names.size()
                  ? b.layout.attribute_names[top].c_str()
                  : "?",
              tick.impacts.empty() ? 0.0 : tick.impacts[top]);
        }
        if (b.diagnosis.valid) {
          std::printf("  diagnosis at %.1f s:", b.diagnosis.t);
          for (std::size_t r = 0; r < b.diagnosis.ranked.size(); ++r)
            std::printf(
                " %s(%.2f)",
                b.diagnosis.ranked[r] < b.layout.attribute_names.size()
                    ? b.layout.attribute_names[b.diagnosis.ranked[r]].c_str()
                    : "?",
                b.diagnosis.impacts[r]);
          std::printf("\n");
        }
        static const char* kPhases[] = {"initial", "companion", "fallback"};
        static const char* kApplied[] = {"none", "scale", "migrate"};
        for (const auto& p : b.preventions)
          std::printf(
              "  prevention %7.1f s  %-9s on %s: scale %s, migrate %s "
              "-> %s\n",
              p.t, kPhases[p.phase % 3],
              p.attribute < b.layout.attribute_names.size()
                  ? b.layout.attribute_names[p.attribute].c_str()
                  : "?",
              p.scale_possible ? "possible" : "blocked",
              p.migrate_possible ? "possible" : "blocked",
              kApplied[p.applied % 3]);
      }
    }
  }

  if (report_path) {
    ReportInput report;
    report.store = &last.store;
    report.slo = &last.slo;
    report.events = &last.events;
    report.title = std::string(app_kind_name(config.app)) + " / " +
                   fault_kind_name(config.fault) + " / " +
                   scheme_name(config.scheme);
    write_html_report(report, *report_path);
    std::printf("report written to %s\n", report_path->c_str());
  }
  if (export_prefix) {
    const std::string metrics = *export_prefix + "_metrics.csv";
    const std::string slo = *export_prefix + "_slo.csv";
    save_metric_store_csv(last.store, metrics);
    save_slo_log_csv(last.slo, slo);
    std::printf("exported %s and %s\n", metrics.c_str(), slo.c_str());
  }
  if (obs_out) {
    // Deterministic run id (no wall clock): scenario + last seed.
    const std::string run_id = std::string(app_kind_name(config.app)) + "-" +
                               fault_kind_name(config.fault) + "-" +
                               scheme_name(config.scheme) + "-seed" +
                               std::to_string(last_seed);
    std::ofstream os(*obs_out);
    if (!os) {
      std::fprintf(stderr, "cannot open %s for writing\n", obs_out->c_str());
      return 1;
    }
    obs::RunInfo info;
    info.run_id = run_id;
    info.sim_time_end = config.run_end;
    info.labels = {{"app", app_kind_name(config.app)},
                   {"fault", fault_kind_name(config.fault)},
                   {"scheme", scheme_name(config.scheme)},
                   {"seed", std::to_string(last_seed)}};
    obs::write_run_header(os, info);
    last.events.to_jsonl(os, run_id);
    if (tracer) tracer->write_spans_jsonl(os, run_id);
    if (introspect) introspect->write_introspection_jsonl(os, run_id);
    if (recorder) recorder->write_evidence_jsonl(os, run_id);
    obs::write_metrics_jsonl(os, registry, run_id, config.run_end);
    std::printf("structured trace written to %s (run_id %s)\n",
                obs_out->c_str(), run_id.c_str());
  }
  if (tracer) {
    const auto& ledger = tracer->ledger();
    std::printf(
        "alert outcomes (last run): %zu prevented, %zu false alarms, "
        "%zu escalated, %zu expired, %zu missed, %zu suppressed\n",
        ledger.prevented, ledger.false_alarm, ledger.escalated,
        ledger.expired, ledger.missed, ledger.suppressed);
  }
  if (obs_summary) {
    std::printf("\nper-stage overhead (last run):\n");
    std::ostringstream table;
    obs::write_stage_report(registry, table);
    std::fputs(table.str().c_str(), stdout);

    // Outcome-ledger quality gauges (published by the span tracer at
    // finish); absent when the scheme raised no alerts.
    const auto snapshot = registry.snapshot();
    std::printf("\nalert quality (last run):\n");
    for (const char* name : {"alert.precision", "alert.recall",
                             "alert.prevention_effectiveness"}) {
      const auto it = snapshot.gauges.find(name);
      if (it != snapshot.gauges.end())
        std::printf("  %-30s %.3f\n", name, it->second);
    }

    if (introspect) {
      std::ostringstream cal;
      introspect->write_summary(cal);
      std::fputs(cal.str().c_str(), stdout);
    }

    if (recorder) {
      std::printf("\nepisode flight recorder (last run):\n");
      std::printf("  %-30s %zu\n", "bundles emitted",
                  recorder->bundles_emitted());
      std::printf("  %-30s %zu\n", "bundles dropped (cap)",
                  recorder->dropped_total());
      std::printf("  %-30s %zu\n", "ticks recorded",
                  recorder->ticks_recorded());
      std::printf("  %-30s %zu\n", "ticks truncated",
                  recorder->truncated_ticks_total());
      std::printf("  %-30s %zu / %zu\n", "ring high water",
                  recorder->ring_high_water(), recorder->config().ring_ticks);
    }
  }
  if (serve_port) {
    if (serve_hold_s > 0.0 && g_interrupted == 0) {
      std::printf("holding metrics endpoint for %.0f s (Ctrl-C to stop)\n",
                  serve_hold_s);
      std::fflush(stdout);
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::duration<double>(serve_hold_s);
      while (g_interrupted == 0 &&
             std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    server.stop();
  }
  return exit_code;
}
