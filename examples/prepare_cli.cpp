// Command-line experiment runner: the whole harness behind flags.
//
//   prepare_cli --app rubis --fault memory_leak --scheme prepare
//               --mode scaling --seed 3 --repeats 5 --export /tmp/run
//
// Prints the SLO violation time (mean +/- std over --repeats seeded
// runs) and, with --export, writes the last run's metric and SLO traces
// as CSV for offline analysis / replay through the accuracy harness.
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "common/stats.h"
#include "core/experiment.h"
#include "core/replay.h"
#include "monitor/trace_io.h"
#include "report/report.h"

using namespace prepare;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --app system_s|rubis          (default system_s)\n"
      "  --fault memory_leak|cpu_hog|bottleneck\n"
      "  --second-fault <kind>         (default: same as --fault)\n"
      "  --scheme none|reactive|prepare (default prepare)\n"
      "  --mode scaling|migration|auto (prevention action; default scaling)\n"
      "  --seed N                      (default 1)\n"
      "  --repeats N                   (default 1)\n"
      "  --sampling S                  (seconds; default 5)\n"
      "  --export PREFIX               (write PREFIX_metrics.csv, "
      "PREFIX_slo.csv)\n"
      "  --replay PREFIX               (offline: load PREFIX_metrics.csv/"
      "PREFIX_slo.csv,\n                                 print the alert "
      "timeline, run nothing)\n"
      "  --report FILE.html            (write an HTML report of the last "
      "run)\n",
      argv0);
  std::exit(2);
}

AppKind parse_app(const std::string& s, const char* argv0) {
  if (s == "system_s") return AppKind::kSystemS;
  if (s == "rubis") return AppKind::kRubis;
  usage(argv0);
}

FaultKind parse_fault(const std::string& s, const char* argv0) {
  if (s == "memory_leak") return FaultKind::kMemoryLeak;
  if (s == "cpu_hog") return FaultKind::kCpuHog;
  if (s == "bottleneck") return FaultKind::kBottleneck;
  usage(argv0);
}

}  // namespace

int main(int argc, char** argv) {
  ScenarioConfig config;
  std::size_t repeats = 1;
  std::optional<std::string> export_prefix;
  std::optional<std::string> replay_prefix;
  std::optional<std::string> report_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--app") {
      config.app = parse_app(value(), argv[0]);
    } else if (arg == "--fault") {
      config.fault = parse_fault(value(), argv[0]);
    } else if (arg == "--second-fault") {
      config.second_fault = parse_fault(value(), argv[0]);
    } else if (arg == "--scheme") {
      const std::string s = value();
      if (s == "none") config.scheme = Scheme::kNoIntervention;
      else if (s == "reactive") config.scheme = Scheme::kReactive;
      else if (s == "prepare") config.scheme = Scheme::kPrepare;
      else usage(argv[0]);
    } else if (arg == "--mode") {
      const std::string s = value();
      if (s == "scaling")
        config.prepare.prevention.mode = PreventionMode::kScalingOnly;
      else if (s == "migration")
        config.prepare.prevention.mode = PreventionMode::kMigrationOnly;
      else if (s == "auto")
        config.prepare.prevention.mode =
            PreventionMode::kScalingThenMigration;
      else usage(argv[0]);
    } else if (arg == "--seed") {
      config.seed = std::stoull(value());
    } else if (arg == "--repeats") {
      repeats = std::stoull(value());
    } else if (arg == "--sampling") {
      config.sampling_interval_s = std::stod(value());
    } else if (arg == "--export") {
      export_prefix = value();
    } else if (arg == "--replay") {
      replay_prefix = value();
    } else if (arg == "--report") {
      report_path = value();
    } else {
      usage(argv[0]);
    }
  }

  if (replay_prefix) {
    const auto store =
        load_metric_store_csv(*replay_prefix + "_metrics.csv");
    const auto slo = load_slo_log_csv(*replay_prefix + "_slo.csv");
    const auto report = replay_trace(store, slo, ReplayConfig{});
    std::printf("replay of %s: %zu raw alerts, %zu confirmed\n",
                replay_prefix->c_str(), report.raw_alerts,
                report.confirmed_alerts);
    for (const auto& alert : report.alerts) {
      if (!alert.confirmed) continue;
      std::printf("  %7.1f s  %-10s score %6.2f  metrics:", alert.time,
                  alert.vm.c_str(), alert.score);
      for (Attribute a : alert.top_metrics)
        std::printf(" %s", attribute_name(a).c_str());
      std::printf("\n");
    }
    return 0;
  }

  std::printf("app=%s fault=%s", app_kind_name(config.app),
              fault_kind_name(config.fault));
  if (config.second_fault)
    std::printf(" second_fault=%s", fault_kind_name(*config.second_fault));
  std::printf(" scheme=%s seed=%llu repeats=%zu\n",
              scheme_name(config.scheme),
              static_cast<unsigned long long>(config.seed), repeats);

  std::vector<double> runs;
  ScenarioResult last;
  for (std::size_t r = 0; r < repeats; ++r) {
    ScenarioConfig c = config;
    c.seed = config.seed + r;
    last = run_scenario(c);
    runs.push_back(last.violation_time);
    std::printf("  run %zu (seed %llu): SLO violation %.1f s (faulty %s)\n",
                r + 1, static_cast<unsigned long long>(c.seed),
                last.violation_time, last.faulty_vm.c_str());
  }
  std::printf("violation time: mean %.1f s, std %.1f s\n", mean_of(runs),
              stddev_of(runs));

  if (report_path) {
    ReportInput report;
    report.store = &last.store;
    report.slo = &last.slo;
    report.events = &last.events;
    report.title = std::string(app_kind_name(config.app)) + " / " +
                   fault_kind_name(config.fault) + " / " +
                   scheme_name(config.scheme);
    write_html_report(report, *report_path);
    std::printf("report written to %s\n", report_path->c_str());
  }
  if (export_prefix) {
    const std::string metrics = *export_prefix + "_metrics.csv";
    const std::string slo = *export_prefix + "_slo.csv";
    save_metric_store_csv(last.store, metrics);
    save_slo_log_csv(last.slo, slo);
    std::printf("exported %s and %s\n", metrics.c_str(), slo.c_str());
  }
  return 0;
}
