// Quickstart: run the same memory-leak scenario under all three anomaly
// management schemes and compare SLO violation times.
//
// This is the paper's headline experiment (Fig. 6) in one file: a
// System S-like stream application on seven VMs, a memory-leak bug
// injected twice into one PE's VM, and PREPARE learning from the first
// injection to *prevent* the SLO violation of the second.
#include <cstdio>

#include "core/experiment.h"

int main() {
  using namespace prepare;

  ScenarioConfig config;
  config.app = AppKind::kSystemS;
  config.fault = FaultKind::kMemoryLeak;
  config.prepare.prevention.mode = PreventionMode::kScalingOnly;
  config.seed = 7;

  std::printf("PREPARE quickstart: System S + memory leak, elastic scaling\n");
  std::printf("%-24s %20s %16s\n", "scheme", "SLO violation (s)",
              "faulty VM");
  for (Scheme scheme : {Scheme::kNoIntervention, Scheme::kReactive,
                        Scheme::kPrepare}) {
    config.scheme = scheme;
    const ScenarioResult result = run_scenario(config);
    std::printf("%-24s %20.1f %16s\n", scheme_name(scheme),
                result.violation_time, result.faulty_vm.c_str());
  }

  std::printf("\n(The violation window around the second injection is what "
              "the paper reports;\n PREPARE should be near zero, reactive "
              "in between, no intervention the worst.)\n");
  return 0;
}
