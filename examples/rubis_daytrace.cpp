// RUBiS under a realistic day-shaped workload: runs the paper's
// bottleneck experiment end to end and then evaluates prediction
// accuracy on the recorded trace — the trace-driven methodology of
// Figs. 10-13 in one self-contained example.
//
// Also demonstrates the workload-change distinguisher: the bottleneck is
// an *external* overload, so change points appear on every component.
#include <cstdio>

#include "core/accuracy.h"
#include "core/experiment.h"

using namespace prepare;

int main() {
  // 1. Run the scenario under PREPARE management.
  ScenarioConfig config;
  config.app = AppKind::kRubis;
  config.fault = FaultKind::kBottleneck;
  config.scheme = Scheme::kPrepare;
  config.seed = 9;
  const ScenarioResult managed = run_scenario(config);

  std::printf("RUBiS bottleneck day-trace (seed %llu)\n",
              static_cast<unsigned long long>(config.seed));
  std::printf("  SLO violation around 2nd overload: %.1f s (PREPARE)\n",
              managed.violation_time);

  // Did PREPARE notice the overload is a workload change (change points
  // on all components) rather than a single-VM fault?
  bool workload_change_flagged = false;
  for (const auto& e : managed.events.events())
    if (e.detail.find("workload change") != std::string::npos)
      workload_change_flagged = true;
  std::printf("  workload-change suspected during overload: %s\n",
              workload_change_flagged ? "yes" : "no");

  // 2. Record the same scenario unmanaged and replay it through the
  //    trace-driven accuracy evaluation.
  config.scheme = Scheme::kNoIntervention;
  const ScenarioResult trace = run_scenario(config);
  std::printf("  SLO violation without intervention: %.1f s\n",
              trace.violation_time);

  std::printf("\n  trace-driven accuracy (per-VM model, k=3/W=4 filter)\n");
  std::printf("  %12s %8s %8s\n", "lookahead(s)", "A_T", "A_F");
  for (double lookahead : {10.0, 20.0, 30.0, 40.0}) {
    AccuracyConfig acc;
    acc.filter_k = 3;
    acc.filter_w = 4;
    const auto result = evaluate_accuracy(
        trace.store, trace.slo, trace.store.vm_names(), lookahead, acc);
    std::printf("  %12.0f %7.1f%% %7.1f%%\n", lookahead, result.a_t * 100.0,
                result.a_f * 100.0);
  }

  // 3. Show the per-VM attribution for the bottleneck: the database is
  //    the component that saturates first.
  std::printf("\n  ground-truth bottleneck component: %s\n",
              trace.faulty_vm.c_str());
  return 0;
}
