// Exploring the anomaly-prediction model on its own: trains a per-VM
// predictor from a recorded run and walks the second fault injection
// sample by sample, printing what the model believes the future looks
// like — predicted free memory, the classifier's log-odds score, and the
// TAN attribution ranking (the paper's Fig. 3 view, live).
#include <cstdio>

#include "core/anomaly_predictor.h"
#include "core/experiment.h"
#include "monitor/labeler.h"

using namespace prepare;

int main() {
  // Record a System S memory-leak run without intervention.
  ScenarioConfig config;
  config.app = AppKind::kSystemS;
  config.fault = FaultKind::kMemoryLeak;
  config.scheme = Scheme::kNoIntervention;
  config.seed = 7;
  const ScenarioResult trace = run_scenario(config);
  const std::string& vm = trace.faulty_vm;
  std::printf("faulty VM: %s; violations:", vm.c_str());
  for (const auto& iv : trace.slo.intervals())
    std::printf(" [%.0f, %.0f]", iv.start, iv.end);
  std::printf("\n\n");

  // Train on everything up to t = 700 (covers the first injection).
  std::vector<std::string> features;
  for (std::size_t a = 0; a < kAttributeCount; ++a)
    features.push_back(attribute_name(static_cast<Attribute>(a)));
  AnomalyPredictor predictor(features);
  std::vector<std::vector<double>> rows;
  std::vector<bool> abnormal;
  for (const auto& s : Labeler::label(trace.store, trace.slo, vm, 0, 700)) {
    rows.emplace_back(s.values.begin(), s.values.end());
    abnormal.push_back(s.abnormal);
  }
  predictor.train(rows, abnormal);
  std::printf("trained on %zu samples (train TPR %.0f%%, %s)\n\n",
              rows.size(), predictor.train_tpr() * 100.0,
              predictor.discriminative() ? "discriminative"
                                         : "non-discriminative");

  // Replay from t > 700 and inspect the model around the second leak.
  const std::size_t kFreeMem = static_cast<std::size_t>(Attribute::kFreeMem);
  std::printf("%7s %10s %12s %8s %7s  %s\n", "t(s)", "free_mem",
              "pred@+120s", "score", "alarm", "top metrics (L_i)");
  const std::size_t total = trace.store.sample_count(vm);
  for (std::size_t i = 0; i < total; ++i) {
    const double t = trace.store.sample_time(vm, i);
    if (t <= 700.0) continue;
    const auto sample = trace.store.sample(vm, i);
    predictor.observe(std::vector<double>(sample.begin(), sample.end()));
    if (!predictor.ready() || static_cast<long>(t) % 25 != 0) continue;
    if (t > 1120.0) break;
    const auto result = predictor.predict(TickIndex{24});  // 120 s at 5 s sampling
    const auto order =
        Classifier::ranked_attributes(result.classification);
    std::printf("%7.0f %10.0f %12.0f %8.2f %7s  ", t, sample[kFreeMem],
                result.predicted_values[kFreeMem],
                result.classification.score.value(),
                result.classification.abnormal ? "ALARM" : "-");
    for (std::size_t k = 0; k < 3; ++k) {
      const std::size_t a = order[k];
      if (result.classification.impacts[a] <= 0.0) break;
      std::printf("%s(%.1f) ", features[a].c_str(),
                  result.classification.impacts[a]);
    }
    std::printf("\n");
  }
  return 0;
}
