// Building the full PREPARE loop by hand on the stream-processing
// testbed — no ExperimentRunner, just the public API:
//
//   cluster + hypervisor  (the virtualized substrate)
//   StreamApp             (System S-like dataflow on 7 VMs)
//   FaultInjector         (a recurring memory leak in PE3's VM)
//   VmMonitor/MetricStore/SloLog (black-box observation)
//   PrepareController     (predict -> filter -> diagnose -> prevent)
//
// The example prints a live timeline of alerts, preventions and SLO
// state, then a summary of what PREPARE did.
#include <cstdio>
#include <memory>

#include "apps/stream/stream_app.h"
#include "core/controller.h"
#include "faults/injector.h"
#include "monitor/vm_monitor.h"
#include "sim/clock.h"
#include "sim/cluster.h"
#include "sim/hypervisor.h"
#include "workload/patterns.h"

using namespace prepare;

int main() {
  // --- substrate: 7 single-VM hosts plus a spare ------------------------
  SimClock clock;
  Cluster cluster;
  EventLog events;
  Hypervisor hypervisor(&clock, &cluster, &events);
  std::vector<Vm*> vms;
  for (int i = 0; i < 7; ++i) {
    Host* host = cluster.add_host("host" + std::to_string(i + 1));
    vms.push_back(
        cluster.add_vm("pe" + std::to_string(i + 1), 1.0, 512.0, host));
  }
  cluster.add_host("spare");

  // --- application and faults -------------------------------------------
  ConstantWorkload workload(25000.0);  // tuples/s
  StreamApp app(vms, &workload);
  FaultInjector injector;
  // Two identical leaks in PE3's VM: PREPARE learns from the first
  // (labels come from the SLO log) and prevents the second.
  injector.add(std::make_unique<MemoryLeakFault>(vms[2], 200.0, 250.0, 3.0));
  injector.add(std::make_unique<MemoryLeakFault>(vms[2], 700.0, 250.0, 3.0));

  // --- observation + controller -----------------------------------------
  VmMonitor monitor;
  MetricStore store;
  SloLog slo;
  ControllerContext ctx{&app, &cluster, &hypervisor, &store, &slo, &events};
  PrepareConfig config;
  config.prevention.mode = PreventionMode::kScalingThenMigration;
  PrepareController controller(ctx, config);

  // --- main loop ----------------------------------------------------------
  const double kEnd = 1100.0, kDt = 1.0, kSample = 5.0;
  bool trained = false;
  std::printf("%8s %10s %12s  %s\n", "t(s)", "SLO", "thr(Kt/s)", "events");
  std::size_t printed_events = 0;
  for (std::size_t tick = 0; clock.now() < kEnd; ++tick) {
    const double now = clock.now();
    for (Vm* vm : vms) vm->begin_tick();
    injector.apply(now, kDt);
    app.step(now, kDt);
    slo.record(now, kDt, app.slo_violated(), app.slo_metric());

    if (tick % static_cast<std::size_t>(kSample / kDt) == 0) {
      for (Vm* vm : vms) store.record(vm->name(), now, monitor.sample(*vm));
      if (!trained && now >= 550.0) {
        controller.train(0.0, now);  // labels cover the first injection
        trained = true;
      }
      controller.on_sample(now);
      if (static_cast<long>(now) % 50 == 0 || app.slo_violated()) {
        std::printf("%8.0f %10s %12.1f ", now,
                    app.slo_violated() ? "VIOLATED" : "ok",
                    app.output_rate() / 1000.0);
        while (printed_events < events.events().size()) {
          const Event& e = events.events()[printed_events++];
          if (e.kind != EventKind::kInfo)
            std::printf(" [%s %s]", event_kind_name(e.kind),
                        e.subject.c_str());
        }
        std::printf("\n");
      } else {
        printed_events = events.events().size();
      }
    }
    clock.advance(Seconds{kDt});
  }

  std::printf("\nsummary\n");
  std::printf("  violation during 1st (learning) leak : %5.1f s\n",
              slo.violation_time(200.0, 550.0));
  std::printf("  violation during 2nd (managed)  leak : %5.1f s\n",
              slo.violation_time(650.0, 1100.0));
  std::printf("  raw alerts %zu, confirmed %zu, preventions %zu\n",
              controller.raw_alerts(), controller.confirmed_alerts(),
              events.count_of(EventKind::kPrevention));
  std::printf("  pe3 allocation now: %.2f cores, %.0f MB\n",
              vms[2]->cpu_alloc(), vms[2]->mem_alloc());
  return 0;
}
