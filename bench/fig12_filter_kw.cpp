// Fig. 12: prediction accuracy under different settings of the k-of-W
// false-alarm filter (bottleneck fault, RUBiS; W = 4).
//
// Paper result to reproduce (shape): k = 3 filters out most false alarms
// (A_F drops sharply vs k = 1) at the cost of a slightly lower / delayed
// true positive rate; the paper picks k = 3, W = 4.
#include "accuracy_util.h"

using namespace prepare;
using namespace prepare::bench;

int main() {
  std::printf("fig12: k-of-W false-alarm filtering (bottleneck, RUBiS)\n\n");
  CsvWriter csv(csv_path("fig12"), {"figure", "panel", "model",
                                    "lookahead_s", "at_pct", "af_pct"});
  const auto trace = record_trace(AppKind::kRubis, FaultKind::kBottleneck);
  const auto vms = trace.store.vm_names();
  std::vector<Curve> curves;
  for (std::size_t k : {1u, 2u, 3u}) {
    Curve curve{"k=" + std::to_string(k) + ",W=4", {}};
    for (double lookahead : lookaheads()) {
      AccuracyConfig config;
      config.filter_k = k;
      config.filter_w = 4;
      curve.points.push_back(
          evaluate_accuracy(trace.store, trace.slo, vms, lookahead, config));
    }
    curves.push_back(std::move(curve));
  }
  emit_curves("fig12", "Bottleneck (RUBiS)", curves, &csv);
  global_meter.report("fig12");
  std::printf("-> %s\n", csv_path("fig12").c_str());
  return 0;
}
