// Extension (paper Section V): unseen anomalies via unsupervised
// prediction.
//
// "PREPARE currently only works with recurrent anomalies ... the model
// requires labeled historical training data ... We plan to extend
// PREPARE to handle unseen anomalies by developing unsupervised anomaly
// prediction models."
//
// This bench evaluates that extension: runs where the second injection
// is a *different* fault type than the first. The supervised TAN is
// trained on first-injection labels, so the second fault's signature is
// absent from its abnormal class; the unsupervised outlier model only
// learned what "normal" looks like and flags anything unfamiliar.
#include <cstdio>

#include "accuracy_util.h"

using namespace prepare;
using namespace prepare::bench;

namespace {

/// Both models train on the clean pre-fault window only ([0, 295 s]):
/// the supervised TAN therefore has no abnormal labels at all — the
/// paper's stated limitation ("PREPARE can only predict the anomalies
/// that the model has already seen before") — while the unsupervised
/// model needs nothing more than a picture of normality.
AccuracyResult eval(const ScenarioResult& trace, ClassifierKind kind,
                    double lookahead) {
  AccuracyConfig config;
  config.predictor.classifier = kind;
  config.predictor.guard_bins = true;  // out-of-range => unfamiliar
  config.train_end = 595.0;
  config.test_start = 600.0;
  // The outlier model has no supervised TPR to self-assess.
  config.require_discriminative = false;
  // Deployment-style k-of-W filtering on the alert stream.
  config.filter_k = 3;
  config.filter_w = 4;
  config.keep_predictions = true;
  return evaluate_accuracy(trace.store, trace.slo, trace.store.vm_names(),
                           lookahead, config);
}

/// Fraction of false positives that fall inside a fault-injection window
/// (the fault is active but the SLO has not tripped yet): for gradual
/// faults these are *early detections* of the silent phase, not noise.
double fp_early_fraction(const AccuracyResult& result,
                         const ScenarioConfig& config) {
  std::size_t fp = 0, early = 0;
  auto in_fault = [&](double t) {
    return (t >= config.fault1_start &&
            t <= config.fault1_start + config.fault_duration + 30.0) ||
           (t >= config.fault2_start &&
            t <= config.fault2_start + config.fault_duration + 30.0);
  };
  for (const auto& s : result.samples) {
    if (!s.predicted || s.truth) continue;
    ++fp;
    if (in_fault(s.time)) ++early;
  }
  return fp > 0 ? static_cast<double>(early) / static_cast<double>(fp) : 0.0;
}

}  // namespace

int main() {
  std::printf("extension: unseen anomalies — supervised TAN vs "
              "unsupervised outlier model\n"
              "(first injection trains; second injection is a DIFFERENT "
              "fault type)\n\n");
  CsvWriter csv(csv_path("ext_unseen"),
                {"first_fault", "second_fault", "classifier", "lookahead_s",
                 "at_pct", "af_pct"});
  struct Case {
    FaultKind first;
    FaultKind second;
  };
  const Case cases[] = {
      {FaultKind::kMemoryLeak, FaultKind::kCpuHog},
      {FaultKind::kCpuHog, FaultKind::kMemoryLeak},
      {FaultKind::kMemoryLeak, FaultKind::kMemoryLeak},  // control: seen
  };
  for (const Case& c : cases) {
    ScenarioConfig config;
    config.app = AppKind::kSystemS;
    config.fault = c.first;
    config.second_fault = c.second;
    config.scheme = Scheme::kNoIntervention;
    config.seed = 3;
    // A longer clean lead-in gives the normality model a decent sample.
    config.fault1_start = 600.0;
    config.train_time = 595.0;
    const auto trace = run_scenario(config);
    global_meter.add_vm_ticks(trace.vm_count * trace.ticks);
    std::printf("faults injected: %s then %s (both unseen in training)\n",
                fault_kind_name(c.first), fault_kind_name(c.second));
    std::printf("  %12s %26s %26s %14s\n", "lookahead(s)",
                "TAN (supervised) AT/AF", "outlier (unsup.) AT/AF",
                "FP-in-fault");
    for (double lookahead : {10.0, 20.0, 30.0}) {
      const auto tan = eval(trace, ClassifierKind::kTan, lookahead);
      const auto out = eval(trace, ClassifierKind::kOutlier, lookahead);
      std::printf("  %12.0f %16.1f%% /%6.1f%% %16.1f%% /%6.1f%% %13.0f%%\n",
                  lookahead, tan.a_t * 100.0, tan.a_f * 100.0,
                  out.a_t * 100.0, out.a_f * 100.0,
                  fp_early_fraction(out, config) * 100.0);
      for (auto [name, r] :
           {std::pair<const char*, const AccuracyResult&>{"tan", tan},
            {"outlier", out}}) {
        csv.row(std::vector<std::string>{
            fault_kind_name(c.first), fault_kind_name(c.second), name,
            format_number(lookahead), format_number(r.a_t * 100.0),
            format_number(r.a_f * 100.0)});
      }
    }
  }
  std::printf(
      "\n(the supervised model, never shown an anomaly, cannot predict "
      "any — the paper's\n \"recurrent anomalies only\" limitation; the "
      "unsupervised model detects every\n injection, and most of its "
      "nominal false alarms fall inside a fault window:\n early "
      "detection of the silent pre-violation phase, not noise)\n");
  global_meter.report("ext_unseen");
  std::printf("-> %s\n", csv_path("ext_unseen").c_str());
  return 0;
}
