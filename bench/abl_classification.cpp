// Ablation: classifying the predicted future state by its most likely
// joint assignment (mode row, the default) vs. by per-attribute
// expectation over the predicted distributions.
//
// The mode row keeps correlated attributes consistent (free_mem at its
// floor implies mem_util at its ceiling) and yields the sharper, earlier
// alarms; the expectation is softer — lower false-alarm rate, but it
// dilutes exactly the correlated evidence an impending anomaly produces.
#include <cstdio>

#include "accuracy_util.h"

using namespace prepare;
using namespace prepare::bench;

int main() {
  std::printf("ablation: mode-row vs expectation classification\n\n");
  CsvWriter csv(csv_path("abl_classification"),
                {"figure", "panel", "model", "lookahead_s", "at_pct",
                 "af_pct"});
  struct Panel {
    const char* label;
    AppKind app;
    FaultKind fault;
  };
  const Panel panels[] = {
      {"Memory leak (System S)", AppKind::kSystemS, FaultKind::kMemoryLeak},
      {"Bottleneck (RUBiS)", AppKind::kRubis, FaultKind::kBottleneck},
  };
  for (const Panel& panel : panels) {
    const auto trace = record_trace(panel.app, panel.fault);
    const auto vms = trace.store.vm_names();
    Curve mode{"mode-row", {}}, expectation{"expectation", {}};
    for (double lookahead : lookaheads()) {
      AccuracyConfig config;
      config.predictor.classify_mode = true;
      mode.points.push_back(
          evaluate_accuracy(trace.store, trace.slo, vms, lookahead, config));
      config.predictor.classify_mode = false;
      expectation.points.push_back(
          evaluate_accuracy(trace.store, trace.slo, vms, lookahead, config));
    }
    emit_curves("abl_classification", panel.label, {mode, expectation},
                &csv);
  }
  global_meter.report("abl_classification");
  std::printf("-> %s\n", csv_path("abl_classification").c_str());
  return 0;
}
