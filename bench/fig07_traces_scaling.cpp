// Fig. 7: sampled SLO metric traces using elastic VM resource scaling as
// the prevention action.
//
// Paper result to reproduce (shape): PREPARE keeps the SLO metric near
// its healthy level across the second injection; the reactive scheme
// shows a visible dip/spike at fault manifestation before recovering;
// without intervention the metric stays degraded for the whole fault.
// For the CPU hog both managed schemes look similar (sudden onset).
#include "bench_util.h"

int main() {
  prepare::bench::run_trace_panels("fig07",
                                   prepare::PreventionMode::kScalingOnly);
  return 0;
}
