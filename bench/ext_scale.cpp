// Extension: multi-application scalability.
//
// The paper argues PREPARE scales because it keeps one prediction model
// per VM, so "different anomaly prediction models can be distributed on
// different cloud nodes". This bench consolidates K independent
// RUBiS-like applications onto one shared cluster, each with its own
// PREPARE controller (exactly the per-application deployment the paper
// describes), staggers a memory leak into every application's database,
// and reports
//   * SLO protection per application (violation time with PREPARE), and
//   * the management cost per control round as K grows — which should
//     stay linear in the number of VMs (no cross-application coupling).
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "apps/webapp/web_app.h"
#include "bench_util.h"
#include "core/controller.h"
#include "faults/injector.h"
#include "monitor/vm_monitor.h"
#include "sim/clock.h"
#include "sim/cluster.h"
#include "sim/hypervisor.h"
#include "workload/nasa_trace.h"

using namespace prepare;
using namespace prepare::bench;

namespace {

struct AppInstance {
  std::vector<Vm*> vms;
  std::unique_ptr<NasaTraceWorkload> workload;
  std::unique_ptr<WebApp> app;
  FaultInjector injector;
  MetricStore store;
  SloLog slo;
  std::unique_ptr<PrepareController> controller;
  bool trained = false;
};

struct ScaleResult {
  double total_violation_s = 0.0;
  double none_violation_s = 0.0;  // same faults, no management
  double mean_round_us = 0.0;     // controller cost per sampling round
};

ScaleResult run_consolidated(std::size_t k, bool managed) {
  SimClock clock;
  Cluster cluster;
  EventLog events;
  Hypervisor hypervisor(&clock, &cluster, &events);
  VmMonitorConfig mcfg;
  VmMonitor monitor(mcfg, 77);

  // Two web-app VMs per host (4 VMs x K apps over 2K hosts) + spares.
  std::vector<std::unique_ptr<AppInstance>> apps;
  std::size_t host_index = 0;
  Host* current_host = nullptr;
  std::size_t on_host = 0;
  auto next_host_slot = [&]() {
    if (current_host == nullptr || on_host == 2) {
      current_host = cluster.add_host("host" + std::to_string(++host_index),
                                      HostCapacity{4.0, 8192.0, 0.2, 512.0});
      on_host = 0;
    }
    ++on_host;
    return current_host;
  };
  for (std::size_t a = 0; a < k; ++a) {
    auto instance = std::make_unique<AppInstance>();
    const char* roles[] = {"web", "app1", "app2", "db"};
    for (int r = 0; r < 4; ++r) {
      instance->vms.push_back(cluster.add_vm(
          "a" + std::to_string(a) + "-" + roles[r], 1.0,
          r == 3 ? 1024.0 : 768.0, next_host_slot()));
    }
    NasaTraceConfig trace;
    trace.base_rate = 60.0;
    instance->workload = std::make_unique<NasaTraceWorkload>(trace, 100 + a);
    instance->app =
        std::make_unique<WebApp>(instance->vms, instance->workload.get());
    // Two leaks in each app's DB, staggered across apps.
    const double offset = static_cast<double>(a) * 20.0;
    instance->injector.add(std::make_unique<MemoryLeakFault>(
        instance->vms[3], 300.0 + offset, 300.0, 2.5));
    instance->injector.add(std::make_unique<MemoryLeakFault>(
        instance->vms[3], 900.0 + offset, 300.0, 2.5));
    if (managed) {
      ControllerContext ctx{instance->app.get(), &cluster, &hypervisor,
                            &instance->store, &instance->slo, &events};
      instance->controller = std::make_unique<PrepareController>(ctx);
    }
    apps.push_back(std::move(instance));
  }
  cluster.add_host("spare1", HostCapacity{4.0, 8192.0, 0.2, 512.0});

  const double kEnd = 1350.0, kDt = 1.0, kSample = 5.0;
  double round_time_us = 0.0;
  std::size_t rounds = 0;
  for (std::size_t tick = 0; clock.now() < kEnd; ++tick) {
    const double now = clock.now();
    for (auto& instance : apps) {
      for (Vm* vm : instance->vms) vm->begin_tick();
      instance->injector.apply(now, kDt);
      instance->app->step(now, kDt);
      instance->slo.record(now, kDt, instance->app->slo_violated(),
                           instance->app->slo_metric());
    }
    if (tick % static_cast<std::size_t>(kSample / kDt) == 0) {
      const auto start = std::chrono::steady_clock::now();
      for (auto& instance : apps) {
        for (Vm* vm : instance->vms)
          instance->store.record(vm->name(), now, monitor.sample(*vm));
        if (instance->controller) {
          if (!instance->trained && now >= 700.0) {
            instance->controller->train(0.0, now);
            instance->trained = true;
          }
          instance->controller->on_sample(now);
        }
      }
      round_time_us += std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - start)
                           .count();
      ++rounds;
    }
    clock.advance(Seconds{kDt});
  }

  ScaleResult result;
  for (auto& instance : apps)
    result.total_violation_s += instance->slo.violation_time(850.0, kEnd);
  result.mean_round_us = rounds > 0 ? round_time_us / rounds : 0.0;
  return result;
}

}  // namespace

int main() {
  std::printf("extension: K consolidated applications, one PREPARE "
              "controller per app\n\n");
  CsvWriter csv(csv_path("ext_scale"),
                {"apps", "vms", "violation_prepare_s", "violation_none_s",
                 "round_cost_us"});
  std::printf("%5s %5s %22s %22s %18s\n", "apps", "VMs",
              "violation (PREPARE, s)", "violation (none, s)",
              "round cost (us)");
  for (std::size_t k : {1u, 2u, 4u, 6u}) {
    const auto managed = run_consolidated(k, true);
    const auto none = run_consolidated(k, false);
    std::printf("%5zu %5zu %22.1f %22.1f %18.1f\n", k, 4 * k,
                managed.total_violation_s, none.total_violation_s,
                managed.mean_round_us);
    csv.row(std::vector<std::string>{
        std::to_string(k), std::to_string(4 * k),
        format_number(managed.total_violation_s),
        format_number(none.total_violation_s),
        format_number(managed.mean_round_us)});
  }
  std::printf("\n(expected: protection holds for every application and "
              "the per-round management\n cost grows ~linearly with the "
              "VM count — per-VM models do not interact)\n");
  std::printf("-> %s\n", csv_path("ext_scale").c_str());
  return 0;
}
