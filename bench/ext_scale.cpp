// Extension: multi-application scalability.
//
// The paper argues PREPARE scales because it keeps one prediction model
// per VM, so "different anomaly prediction models can be distributed on
// different cloud nodes". This bench consolidates K independent
// RUBiS-like applications onto one shared cluster, each with its own
// PREPARE controller (exactly the per-application deployment the paper
// describes), staggers a memory leak into every application's database,
// and reports
//   * SLO protection per application (violation time with PREPARE), and
//   * the management cost per control round as K grows — which should
//     stay linear in the number of VMs (no cross-application coupling).
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "apps/webapp/web_app.h"
#include "bench_util.h"
#include "core/controller.h"
#include "faults/injector.h"
#include "monitor/vm_monitor.h"
#include "sim/clock.h"
#include "sim/cluster.h"
#include "sim/hypervisor.h"
#include "workload/nasa_trace.h"

using namespace prepare;
using namespace prepare::bench;

namespace {

struct AppInstance {
  std::vector<Vm*> vms;
  std::unique_ptr<NasaTraceWorkload> workload;
  std::unique_ptr<WebApp> app;
  FaultInjector injector;
  MetricStore store;
  SloLog slo;
  std::unique_ptr<PrepareController> controller;
  bool trained = false;
};

struct ScaleResult {
  double total_violation_s = 0.0;
  double none_violation_s = 0.0;  // same faults, no management
  double mean_round_us = 0.0;     // controller cost per sampling round
  std::size_t vm_ticks = 0;       // simulated work (VMs x ticks)
};

ScaleResult run_consolidated(std::size_t k, bool managed,
                             obs::MetricsRegistry* metrics) {
  SimClock clock;
  Cluster cluster;
  EventLog events;
  Hypervisor hypervisor(&clock, &cluster, &events);
  VmMonitorConfig mcfg;
  VmMonitor monitor(mcfg, 77);

  // Two web-app VMs per host (4 VMs x K apps over 2K hosts) + spares.
  std::vector<std::unique_ptr<AppInstance>> apps;
  std::size_t host_index = 0;
  Host* current_host = nullptr;
  std::size_t on_host = 0;
  auto next_host_slot = [&]() {
    if (current_host == nullptr || on_host == 2) {
      current_host = cluster.add_host("host" + std::to_string(++host_index),
                                      HostCapacity{4.0, 8192.0, 0.2, 512.0});
      on_host = 0;
    }
    ++on_host;
    return current_host;
  };
  for (std::size_t a = 0; a < k; ++a) {
    auto instance = std::make_unique<AppInstance>();
    const char* roles[] = {"web", "app1", "app2", "db"};
    for (int r = 0; r < 4; ++r) {
      instance->vms.push_back(cluster.add_vm(
          "a" + std::to_string(a) + "-" + roles[r], 1.0,
          r == 3 ? 1024.0 : 768.0, next_host_slot()));
    }
    NasaTraceConfig trace;
    trace.base_rate = 60.0;
    instance->workload = std::make_unique<NasaTraceWorkload>(trace, 100 + a);
    instance->app =
        std::make_unique<WebApp>(instance->vms, instance->workload.get());
    // Two leaks in each app's DB, staggered across apps.
    const double offset = static_cast<double>(a) * 20.0;
    instance->injector.add(std::make_unique<MemoryLeakFault>(
        instance->vms[3], 300.0 + offset, 300.0, 2.5));
    instance->injector.add(std::make_unique<MemoryLeakFault>(
        instance->vms[3], 900.0 + offset, 300.0, 2.5));
    if (managed) {
      ControllerContext ctx{instance->app.get(), &cluster, &hypervisor,
                            &instance->store, &instance->slo, &events};
      ctx.metrics = metrics;
      instance->controller = std::make_unique<PrepareController>(ctx);
    }
    apps.push_back(std::move(instance));
  }
  cluster.add_host("spare1", HostCapacity{4.0, 8192.0, 0.2, 512.0});

  const double kEnd = 1350.0, kDt = 1.0, kSample = 5.0;
  double round_time_us = 0.0;
  std::size_t rounds = 0;
  std::size_t ticks = 0;
  for (std::size_t tick = 0; clock.now() < kEnd; ++tick, ++ticks) {
    const double now = clock.now();
    for (auto& instance : apps) {
      for (Vm* vm : instance->vms) vm->begin_tick();
      instance->injector.apply(now, kDt);
      instance->app->step(now, kDt);
      instance->slo.record(now, kDt, instance->app->slo_violated(),
                           instance->app->slo_metric());
    }
    if (tick % static_cast<std::size_t>(kSample / kDt) == 0) {
      const auto start = std::chrono::steady_clock::now();
      for (auto& instance : apps) {
        for (Vm* vm : instance->vms)
          instance->store.record(vm->name(), now, monitor.sample(*vm));
        if (instance->controller) {
          if (!instance->trained && now >= 700.0) {
            instance->controller->train(0.0, now);
            instance->trained = true;
          }
          instance->controller->on_sample(now);
        }
      }
      round_time_us += std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - start)
                           .count();
      ++rounds;
    }
    clock.advance(Seconds{kDt});
  }

  ScaleResult result;
  for (auto& instance : apps)
    result.total_violation_s += instance->slo.violation_time(850.0, kEnd);
  result.mean_round_us = rounds > 0 ? round_time_us / rounds : 0.0;
  result.vm_ticks = 4 * k * ticks;
  return result;
}

/// Parses "1,2,4" into app counts; exits loudly on garbage.
std::vector<std::size_t> parse_apps_list(const std::string& arg) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < arg.size()) {
    std::size_t end = arg.find(',', pos);
    if (end == std::string::npos) end = arg.size();
    const std::string token = arg.substr(pos, end - pos);
    const unsigned long k = std::strtoul(token.c_str(), nullptr, 10);
    if (k == 0) {
      std::fprintf(stderr, "ext_scale: bad --apps value '%s'\n",
                   token.c_str());
      // NOLINTNEXTLINE(concurrency-mt-unsafe): arg parsing precedes threads
      std::exit(2);
    }
    out.push_back(static_cast<std::size_t>(k));
    pos = end + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Default sweep reproduces the scalability table; CI's perf-smoke job
  // passes --apps=1 for a seconds-long run that still exercises the
  // whole pipeline and emits the JSON report.
  std::vector<std::size_t> app_counts = {1, 2, 4, 6};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--apps=";
    if (arg.compare(0, prefix.size(), prefix) == 0) {
      app_counts = parse_apps_list(arg.substr(prefix.size()));
    } else {
      std::fprintf(stderr, "usage: ext_scale [--apps=K1,K2,...]\n");
      return 2;
    }
  }

  std::printf("extension: K consolidated applications, one PREPARE "
              "controller per app\n\n");
  CsvWriter csv(csv_path("ext_scale"),
                {"apps", "vms", "violation_prepare_s", "violation_none_s",
                 "round_cost_us"});
  std::printf("%5s %5s %22s %22s %18s\n", "apps", "VMs",
              "violation (PREPARE, s)", "violation (none, s)",
              "round cost (us)");
  obs::MetricsRegistry registry;
  ThroughputMeter meter;
  for (std::size_t k : app_counts) {
    const auto managed = run_consolidated(k, true, &registry);
    const auto none = run_consolidated(k, false, nullptr);
    meter.add_vm_ticks(managed.vm_ticks + none.vm_ticks);
    std::printf("%5zu %5zu %22.1f %22.1f %18.1f\n", k, 4 * k,
                managed.total_violation_s, none.total_violation_s,
                managed.mean_round_us);
    csv.row(std::vector<std::string>{
        std::to_string(k), std::to_string(4 * k),
        format_number(managed.total_violation_s),
        format_number(none.total_violation_s),
        format_number(managed.mean_round_us)});
  }
  std::printf("\n(expected: protection holds for every application and "
              "the per-round management\n cost grows ~linearly with the "
              "VM count — per-VM models do not interact)\n");
  meter.report("ext_scale");
  const std::string json = write_bench_json(
      "ext_scale",
      {{"apps_max", static_cast<double>(app_counts.back())},
       {"configs", static_cast<double>(app_counts.size())}},
      meter, &registry);
  std::printf("-> %s\n-> %s\n", csv_path("ext_scale").c_str(), json.c_str());
  return 0;
}
