// Fig. 6: SLO violation time comparison using elastic VM resource
// scaling as the prevention action.
//
// Paper result to reproduce (shape): PREPARE cuts SLO violation time by
// 90-99% vs "without intervention" and 25-97% vs reactive intervention;
// gains are largest for the gradually-manifesting faults (memory leak,
// bottleneck) and smallest for the sudden CPU hog.
#include "bench_util.h"

int main() {
  prepare::bench::run_violation_comparison(
      "fig06", prepare::PreventionMode::kScalingOnly, 5);
  return 0;
}
