// Ablation: TAN vs. naive Bayes as the anomaly classifier.
//
// The paper adopts TAN over its earlier naive Bayes classifier [10]
// because NB "cannot provide the metric attribution information
// accurately" (Section II-B). This bench measures both halves of that
// claim on recorded traces:
//  * classification accuracy (A_T / A_F at a 30 s look-ahead), and
//  * attribution quality — how often the top-ranked metric on the
//    ground-truth faulty VM is of the fault's resource kind (memory
//    metrics for a leak, CPU metrics for a hog).
#include <cstdio>

#include "accuracy_util.h"
#include "core/anomaly_predictor.h"
#include "monitor/labeler.h"

using namespace prepare;
using namespace prepare::bench;

namespace {

bool is_memory_metric(Attribute a) {
  return a == Attribute::kFreeMem || a == Attribute::kMemUtil ||
         a == Attribute::kPageFaults;
}
bool is_cpu_metric(Attribute a) {
  return a == Attribute::kCpuUtil || a == Attribute::kCpuResidual ||
         a == Attribute::kLoad1 || a == Attribute::kLoad5 ||
         a == Attribute::kRunQueue || a == Attribute::kCtxSwitches;
}

/// Fraction of in-violation samples where a metric of the fault's
/// resource kind appears among the top-3 attributed metrics on the
/// faulty VM — the ranking the actuator actually consumes. (At full
/// thrash the saturated-CPU *symptom* legitimately ranks first; what
/// matters is whether the memory root cause makes the actionable list.)
double attribution_hit_rate(const ScenarioResult& trace,
                            FaultKind fault, ClassifierKind classifier) {
  std::vector<std::string> names;
  for (std::size_t a = 0; a < kAttributeCount; ++a)
    names.push_back(attribute_name(static_cast<Attribute>(a)));
  PredictorConfig config;
  config.classifier = classifier;
  AnomalyPredictor predictor(names, config);
  std::vector<std::vector<double>> rows;
  std::vector<bool> abnormal;
  for (const auto& s :
       Labeler::label(trace.store, trace.slo, trace.faulty_vm, 0, 700)) {
    rows.emplace_back(s.values.begin(), s.values.end());
    abnormal.push_back(s.abnormal);
  }
  predictor.train(rows, abnormal);

  std::size_t checked = 0, hits = 0;
  const std::size_t total = trace.store.sample_count(trace.faulty_vm);
  for (std::size_t i = 0; i < total; ++i) {
    const double t = trace.store.sample_time(trace.faulty_vm, i);
    if (t <= 700.0) continue;
    const auto v = trace.store.sample(trace.faulty_vm, i);
    predictor.observe(std::vector<double>(v.begin(), v.end()));
    if (!trace.slo.violated_at(t)) continue;
    const auto cls = predictor.classify_current();
    const auto order = Classifier::ranked_attributes(cls);
    ++checked;
    for (std::size_t k = 0; k < 3 && k < order.size(); ++k) {
      if (cls.impacts[order[k]] <= 0.0) break;
      const auto attr = static_cast<Attribute>(order[k]);
      if (fault == FaultKind::kMemoryLeak ? is_memory_metric(attr)
                                          : is_cpu_metric(attr)) {
        ++hits;
        break;
      }
    }
  }
  return checked > 0 ? static_cast<double>(hits) /
                           static_cast<double>(checked)
                     : 0.0;
}

}  // namespace

int main() {
  std::printf("ablation: TAN vs naive Bayes\n\n");
  CsvWriter csv(csv_path("abl_tan_vs_nb"),
                {"app", "fault", "classifier", "at_pct", "af_pct",
                 "attribution_hit_pct"});
  struct Case {
    AppKind app;
    FaultKind fault;
  };
  const Case cases[] = {
      {AppKind::kSystemS, FaultKind::kMemoryLeak},
      {AppKind::kRubis, FaultKind::kMemoryLeak},
      {AppKind::kRubis, FaultKind::kCpuHog},
  };
  std::printf("%-10s %-12s %-12s %7s %7s %18s\n", "app", "fault",
              "classifier", "A_T", "A_F", "attribution-hit");
  for (const Case& c : cases) {
    const auto trace = record_trace(c.app, c.fault);
    for (ClassifierKind kind :
         {ClassifierKind::kTan, ClassifierKind::kNaiveBayes}) {
      AccuracyConfig acc;
      acc.predictor.classifier = kind;
      const auto result = evaluate_accuracy(
          trace.store, trace.slo, trace.store.vm_names(), 30.0, acc);
      const double hit = attribution_hit_rate(trace, c.fault, kind);
      const char* name =
          kind == ClassifierKind::kTan ? "TAN" : "naive-bayes";
      std::printf("%-10s %-12s %-12s %6.1f%% %6.1f%% %17.1f%%\n",
                  app_kind_name(c.app), fault_kind_name(c.fault), name,
                  result.a_t * 100.0, result.a_f * 100.0, hit * 100.0);
      csv.row(std::vector<std::string>{
          app_kind_name(c.app), fault_kind_name(c.fault), name,
          format_number(result.a_t * 100.0),
          format_number(result.a_f * 100.0), format_number(hit * 100.0)});
    }
  }
  std::printf("\n(expected: comparable classification accuracy, but TAN "
              "attribution pinpoints\n the fault's resource kind more "
              "often — the reason the paper adopts TAN)\n");
  global_meter.report("abl_tan_vs_nb");
  std::printf("-> %s\n", csv_path("abl_tan_vs_nb").c_str());
  return 0;
}
