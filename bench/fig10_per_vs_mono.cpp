// Fig. 10: prediction accuracy of the per-component (per-VM) model vs. a
// single monolithic model over the concatenated attributes of all VMs.
//
// Paper result to reproduce (shape): the per-component model's true
// positive rate A_T is substantially higher than the monolithic model's
// at every look-ahead window — attribute-value prediction errors
// accumulate as more attributes enter one model.
#include "accuracy_util.h"

using namespace prepare;
using namespace prepare::bench;

int main() {
  std::printf("fig10: per-component vs monolithic prediction model\n\n");
  CsvWriter csv(csv_path("fig10"), {"figure", "panel", "model",
                                    "lookahead_s", "at_pct", "af_pct"});
  struct Panel {
    const char* label;
    AppKind app;
    FaultKind fault;
  };
  const Panel panels[] = {
      {"(a) Memory leak (System S)", AppKind::kSystemS,
       FaultKind::kMemoryLeak},
      {"(b) CPU hog (RUBiS)", AppKind::kRubis, FaultKind::kCpuHog},
  };
  for (const Panel& panel : panels) {
    const auto trace = record_trace(panel.app, panel.fault);
    const auto vms = trace.store.vm_names();
    Curve per{"per-component", {}}, mono{"monolithic", {}};
    for (double lookahead : lookaheads()) {
      AccuracyConfig config;
      config.per_component = true;
      per.points.push_back(
          evaluate_accuracy(trace.store, trace.slo, vms, lookahead, config));
      config.per_component = false;
      mono.points.push_back(
          evaluate_accuracy(trace.store, trace.slo, vms, lookahead, config));
    }
    emit_curves("fig10", panel.label, {per, mono}, &csv);
  }
  global_meter.report("fig10");
  std::printf("-> %s\n", csv_path("fig10").c_str());
  return 0;
}
