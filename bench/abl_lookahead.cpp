// Ablation: the controller's look-ahead window.
//
// The paper's controller predicts over a long look-ahead ("e.g., 120
// seconds", Section II-A). Too short and the alert fires after the
// violation is practically unavoidable; too long and the multi-step
// Markov prediction washes out (and false alarms rise). This bench
// sweeps the controller horizon on the gradual faults, where lead time
// is what PREPARE's advantage is made of.
#include <cstdio>

#include "bench_util.h"

using namespace prepare;
using namespace prepare::bench;

int main() {
  std::printf("ablation: controller look-ahead horizon "
              "(SLO violation time, s; mean of 5 runs)\n\n");
  CsvWriter csv(csv_path("abl_lookahead"),
                {"app", "fault", "lookahead_s", "mean_s", "std_s"});
  const double horizons[] = {15.0, 30.0, 60.0, 120.0, 240.0};
  std::printf("%-10s %-12s", "app", "fault");
  for (double h : horizons) std::printf(" %8.0f s", h);
  std::printf("\n");
  struct Case {
    AppKind app;
    FaultKind fault;
  };
  const Case cases[] = {
      {AppKind::kSystemS, FaultKind::kMemoryLeak},
      {AppKind::kRubis, FaultKind::kMemoryLeak},
      {AppKind::kRubis, FaultKind::kBottleneck},
  };
  for (const Case& c : cases) {
    std::printf("%-10s %-12s", app_kind_name(c.app),
                fault_kind_name(c.fault));
    for (double horizon : horizons) {
      ScenarioConfig config;
      config.app = c.app;
      config.fault = c.fault;
      config.scheme = Scheme::kPrepare;
      config.seed = 1;
      config.prepare.lookahead_s = horizon;
      config.prepare.prevention.mode = PreventionMode::kScalingOnly;
      const auto result = run_repeated(config, 5);
      global_meter.add_vm_ticks(result.vm_ticks);
      std::printf(" %7.1f  ", result.mean);
      csv.row(std::vector<std::string>{
          app_kind_name(c.app), fault_kind_name(c.fault),
          format_number(horizon), format_number(result.mean),
          format_number(result.stddev)});
    }
    std::printf("\n");
  }
  global_meter.report("abl_lookahead");
  std::printf("\n-> %s\n", csv_path("abl_lookahead").c_str());
  return 0;
}
