// Ablation: discretization bin count.
//
// Few bins lose resolution (the decline trajectory collapses into one or
// two symbols); many bins starve the 2-dependent Markov model of data
// (bins^2 transition rows against a few hundred training samples). The
// default (5) sits in the sweet spot for runs of this length.
#include <cstdio>

#include "accuracy_util.h"

using namespace prepare;
using namespace prepare::bench;

int main() {
  std::printf("ablation: discretization bins "
              "(memory leak, System S; A_T/A_F at each look-ahead)\n\n");
  CsvWriter csv(csv_path("abl_bins"), {"figure", "panel", "model",
                                       "lookahead_s", "at_pct", "af_pct"});
  const auto trace = record_trace(AppKind::kSystemS, FaultKind::kMemoryLeak);
  const auto vms = trace.store.vm_names();
  std::vector<Curve> curves;
  for (std::size_t bins : {3u, 5u, 8u, 12u}) {
    Curve curve{std::to_string(bins) + " bins", {}};
    for (double lookahead : lookaheads()) {
      AccuracyConfig config;
      config.predictor.bins = bins;
      curve.points.push_back(
          evaluate_accuracy(trace.store, trace.slo, vms, lookahead, config));
    }
    curves.push_back(std::move(curve));
  }
  emit_curves("abl_bins", "Memory leak (System S)", curves, &csv);
  global_meter.report("abl_bins");
  std::printf("-> %s\n", csv_path("abl_bins").c_str());
  return 0;
}
