// Extension: parallel per-VM prediction scaling.
//
// The paper's per-VM model independence is what makes the predict →
// classify step of a management round embarrassingly parallel (see
// src/common/thread_pool.h). This bench runs the same scenario at 1, 2,
// and 4 worker threads and reports
//   * wall-clock time per run and speedup over the serial driver, and
//   * a determinism audit: the management outcome (violation time and
//     the full event stream) must be identical at every thread count —
//     parallelism buys latency, never a different answer.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/experiment.h"

using namespace prepare;
using prepare::bench::global_meter;

namespace {

struct ThreadResult {
  std::size_t threads = 1;
  double wall_s = 0.0;
  double violation_s = 0.0;
  std::string events_jsonl;
};

ThreadResult run_with_threads(std::size_t threads) {
  ScenarioConfig config;
  config.app = AppKind::kSystemS;
  config.fault = FaultKind::kMemoryLeak;
  config.scheme = Scheme::kPrepare;
  config.seed = 1;
  config.num_threads = threads;
  // A deep look-ahead horizon makes the per-VM Markov projection the
  // dominant cost of a round, which is the regime the fan-out targets
  // (the quickstart default of 120 s finishes too fast to amortize the
  // pool's task-dispatch overhead on a handful of VMs).
  config.prepare.lookahead_s = 1200.0;

  ThreadResult result;
  result.threads = threads;
  const auto start = std::chrono::steady_clock::now();
  const ScenarioResult run = run_scenario(config);
  global_meter.add_vm_ticks(run.vm_count * run.ticks);
  const auto end = std::chrono::steady_clock::now();
  result.wall_s = std::chrono::duration<double>(end - start).count();
  result.violation_s = run.violation_time;
  std::ostringstream events;
  run.events.to_jsonl(events, "ext_parallel");
  result.events_jsonl = events.str();
  return result;
}

}  // namespace

int main() {
  std::printf("# ext_parallel: per-VM prediction fan-out scaling\n");
  std::printf("# scenario: system_s / memory_leak / prepare, seed 1\n");
  std::printf("# hardware threads: %u (speedup is bounded by this; the\n",
              std::thread::hardware_concurrency());
  std::printf("# determinism column must read yes at any core count)\n");
  std::printf("%-8s %-10s %-10s %-14s %s\n", "threads", "wall_s", "speedup",
              "violation_s", "identical");

  std::vector<ThreadResult> results;
  for (std::size_t threads : {1u, 2u, 4u})
    results.push_back(run_with_threads(threads));

  const ThreadResult& serial = results.front();
  bool all_identical = true;
  for (const ThreadResult& r : results) {
    const bool identical = r.violation_s == serial.violation_s &&
                           r.events_jsonl == serial.events_jsonl;
    all_identical = all_identical && identical;
    std::printf("%-8zu %-10.3f %-10.2f %-14.1f %s\n", r.threads, r.wall_s,
                serial.wall_s / r.wall_s, r.violation_s,
                identical ? "yes" : "NO");
  }

  if (!all_identical) {
    std::fprintf(stderr,
                 "ext_parallel: FAIL — parallel run diverged from serial\n");
    return EXIT_FAILURE;
  }
  global_meter.report("ext_parallel");
  return EXIT_SUCCESS;
}
