// Fig. 13: prediction accuracy under different monitoring sampling
// intervals (bottleneck fault, RUBiS).
//
// Paper result to reproduce (shape): the 5 s interval is the sweet spot.
// 1 s sampling needs many more Markov steps per look-ahead second, and
// multi-step prediction error compounds; 10 s sampling misses the
// pre-anomaly dynamics and halves the training data.
#include "accuracy_util.h"

using namespace prepare;
using namespace prepare::bench;

int main() {
  std::printf(
      "fig13: sampling-interval sensitivity (bottleneck, RUBiS)\n\n");
  CsvWriter csv(csv_path("fig13"), {"figure", "panel", "model",
                                    "lookahead_s", "at_pct", "af_pct"});
  std::vector<Curve> curves;
  for (double interval : {1.0, 5.0, 10.0}) {
    const auto trace = record_trace(AppKind::kRubis, FaultKind::kBottleneck,
                                    /*seed=*/3, interval);
    const auto vms = trace.store.vm_names();
    Curve curve{format_number(interval) + " s", {}};
    for (double lookahead : lookaheads()) {
      AccuracyConfig config;
      config.sampling_interval_s = interval;
      curve.points.push_back(
          evaluate_accuracy(trace.store, trace.slo, vms, lookahead, config));
    }
    curves.push_back(std::move(curve));
  }
  emit_curves("fig13", "Bottleneck (RUBiS)", curves, &csv);
  global_meter.report("fig13");
  std::printf("-> %s\n", csv_path("fig13").c_str());
  return 0;
}
