// Ablation: the two wrong-metric defenses, 2 x 2.
//
// PREPARE's black-box diagnosis can pinpoint a symptom metric instead of
// the root cause. Two mechanisms cover for that:
//  * companion scaling — act on the top metric of *each* resource kind
//    in one shot;
//  * validation — compare the acted metric's usage before/after and fall
//    back to the next ranked metric when the action had no effect
//    (Section II-D).
// With both off, a wrong first pick is never corrected and the violation
// runs on; either mechanism alone recovers most of it.
#include <cstdio>

#include "bench_util.h"

using namespace prepare;
using namespace prepare::bench;

int main() {
  std::printf("ablation: wrong-metric defenses, 2x2 "
              "(SLO violation time, s; mean of 5 runs)\n\n");
  CsvWriter csv(csv_path("abl_validation"),
                {"app", "fault", "companion", "validation", "mean_s",
                 "std_s"});
  std::printf("%-10s %-12s %16s %16s %16s %16s\n", "app", "fault",
              "comp+valid", "companion only", "validation only", "neither");
  const std::pair<bool, bool> arms[] = {
      {true, true}, {true, false}, {false, true}, {false, false}};
  for (AppKind app : {AppKind::kSystemS, AppKind::kRubis}) {
    for (FaultKind fault :
         {FaultKind::kMemoryLeak, FaultKind::kCpuHog,
          FaultKind::kBottleneck}) {
      std::printf("%-10s %-12s", app_kind_name(app), fault_kind_name(fault));
      for (const auto& [companion, validation] : arms) {
        ScenarioConfig config;
        config.app = app;
        config.fault = fault;
        config.scheme = Scheme::kPrepare;
        config.seed = 1;
        config.prepare.prevention.mode = PreventionMode::kScalingOnly;
        config.prepare.prevention.companion_scaling = companion;
        config.prepare.prevention.validation_enabled = validation;
        const auto result = run_repeated(config, 5);
        global_meter.add_vm_ticks(result.vm_ticks);
        std::printf("  %7.1f +/- %4.1f", result.mean, result.stddev);
        csv.row(std::vector<std::string>{
            app_kind_name(app), fault_kind_name(fault),
            companion ? "on" : "off", validation ? "on" : "off",
            format_number(result.mean), format_number(result.stddev)});
      }
      std::printf("\n");
    }
  }
  global_meter.report("abl_validation");
  std::printf("\n-> %s\n", csv_path("abl_validation").c_str());
  return 0;
}
