// Fig. 9: sampled SLO metric traces using live VM migration as the
// prevention action.
//
// Paper result to reproduce (shape): PREPARE triggers migration early
// enough that the metric barely dips; reactive migration starts after
// the violation, so the dip lasts through the whole pre-copy (and the
// migration itself is slower on an already-thrashing VM).
#include "bench_util.h"

int main() {
  prepare::bench::run_trace_panels("fig09",
                                   prepare::PreventionMode::kMigrationOnly);
  return 0;
}
