// Shared helpers for the figure-reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper: it
// prints the same rows/series the paper reports and writes a CSV next to
// it for plotting, plus (where wired) a machine-readable
// BENCH_<name>.json rate/percentile report (schema: prepare-bench-v1,
// validated by tools/check_bench_json.py).
//
// Output routing: with PREPARE_BENCH_OUT_DIR set, files go there under
// their stable names (CI points each job at its own directory and then
// knows exactly where to look). Without it, files land in
// ./bench_results/ tagged with the pid — two benches running
// concurrently in one working directory must not clobber each other
// (same race tests/temp_path.h solves for the test suite).
#pragma once

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/csv.h"
#include "core/experiment.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace prepare::bench {

/// True when CI (or the user) pinned the output directory — stable file
/// names are then wanted so the consumer can find them.
inline bool out_dir_pinned() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): bench mains read env pre-fanout
  const char* dir = std::getenv("PREPARE_BENCH_OUT_DIR");
  return dir != nullptr && dir[0] != '\0';
}

inline std::string results_dir() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): bench mains read env pre-fanout
  const char* env = std::getenv("PREPARE_BENCH_OUT_DIR");
  const std::string dir =
      (env != nullptr && env[0] != '\0') ? env : "bench_results";
  std::filesystem::create_directories(dir);
  return dir;
}

/// Per-process unique output path: `<results_dir>/<stem><ext>` when the
/// out dir is pinned, `<results_dir>/<stem>.<pid><ext>` otherwise.
inline std::string output_path(const std::string& stem,
                               const std::string& ext) {
  if (out_dir_pinned()) return results_dir() + "/" + stem + ext;
  return results_dir() + "/" + stem + "." + std::to_string(::getpid()) + ext;
}

inline std::string csv_path(const std::string& name) {
  return output_path(name, ".csv");
}

inline std::string bench_json_path(const std::string& name) {
  return output_path("BENCH_" + name, ".json");
}

/// stress-ng-style throughput accounting: benches count simulated work
/// in VM-ticks (one VM advanced by one simulation step) and report a
/// single comparable rate line at the end:
///
///   bogo-rate: ext_scale: 140400 VM-ticks in 2.31 s (60878.31 VM-ticks/sec)
///
/// Wall time is steady_clock — fine here because bench TUs never feed
/// the deterministic trace (tools/prepare_analyze.py enforces that
/// split).
class ThroughputMeter {
 public:
  ThroughputMeter() : start_(std::chrono::steady_clock::now()) {}

  void add_vm_ticks(std::size_t n) { vm_ticks_ += n; }
  std::size_t vm_ticks() const { return vm_ticks_; }

  double elapsed_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  double rate() const {
    const double s = elapsed_s();
    return s > 0.0 ? static_cast<double>(vm_ticks_) / s : 0.0;
  }

  /// Prints the rate line. Call once, after the timed work.
  void report(const std::string& bench) const {
    std::printf("bogo-rate: %s: %zu VM-ticks in %.2f s (%.2f "
                "VM-ticks/sec)\n",
                bench.c_str(), vm_ticks_, elapsed_s(), rate());
  }

 private:
  std::chrono::steady_clock::time_point start_;
  std::size_t vm_ticks_ = 0;
};

/// Process-wide meter (clock starts at program startup) for benches
/// whose scenario runs are spread across helpers: the helpers add
/// VM-ticks as results come back and main() calls
/// `global_meter.report(<bench>)` once before exiting.
inline ThroughputMeter global_meter;

/// Machine-readable bench report (schema prepare-bench-v1):
///
///   {"schema": "prepare-bench-v1", "bench": "<name>",
///    "config": {...}, "vm_ticks": N, "elapsed_s": S,
///    "rate_vm_ticks_per_sec": R,
///    "stages": [{"stage": "tan_classify", "count": N,
///                "p50_s": ..., "p90_s": ..., "p99_s": ...}, ...]}
///
/// `config` carries the knobs that shaped the run (numbers only);
/// `stages` holds one row per stage.<name>.seconds histogram found in
/// `registry` (empty list when registry is null or uninstrumented).
/// Returns the path written. obs/json.h only writes flat single-line
/// objects, so the nesting is hand-assembled from its escape/number
/// primitives.
inline std::string write_bench_json(
    const std::string& name,
    const std::vector<std::pair<std::string, double>>& config,
    const ThroughputMeter& meter, const obs::MetricsRegistry* registry) {
  const std::string path = bench_json_path(name);
  std::ofstream os(path);
  PREPARE_CHECK_MSG(os.good(), "cannot open bench json for writing");
  os << "{\"schema\": \"prepare-bench-v1\", \"bench\": \""
     << obs::json_escape(name) << "\", \"config\": {";
  bool first = true;
  for (const auto& [key, value] : config) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << obs::json_escape(key) << "\": " << obs::json_number(value);
  }
  os << "}, \"vm_ticks\": " << meter.vm_ticks()
     << ", \"elapsed_s\": " << obs::json_number(meter.elapsed_s())
     << ", \"rate_vm_ticks_per_sec\": " << obs::json_number(meter.rate())
     << ", \"stages\": [";
  first = true;
  if (registry != nullptr) {
    const auto snapshot = registry->snapshot();
    const std::string prefix = "stage.", suffix = ".seconds";
    for (const auto& [metric, stats] : snapshot.histograms) {
      if (metric.size() <= prefix.size() + suffix.size() ||
          metric.compare(0, prefix.size(), prefix) != 0 ||
          metric.compare(metric.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
        continue;
      const std::string stage = metric.substr(
          prefix.size(), metric.size() - prefix.size() - suffix.size());
      if (!first) os << ", ";
      first = false;
      os << "{\"stage\": \"" << obs::json_escape(stage)
         << "\", \"count\": " << stats.count
         << ", \"p50_s\": " << obs::json_number(stats.p50)
         << ", \"p90_s\": " << obs::json_number(stats.p90)
         << ", \"p99_s\": " << obs::json_number(stats.p99) << "}";
    }
  }
  os << "]}\n";
  PREPARE_CHECK_MSG(os.good(), "bench json write failed");
  return path;
}

/// Violation-time comparison (Figs. 6 and 8): one row per app x fault,
/// three scheme columns, mean +/- std over `repeats` seeded runs.
inline void run_violation_comparison(const std::string& figure,
                                     PreventionMode mode,
                                     std::size_t repeats) {
  const char* mode_name =
      mode == PreventionMode::kScalingOnly ? "elastic scaling"
                                           : "live VM migration";
  std::printf("%s: SLO violation time (s) with %s as the prevention "
              "action\n",
              figure.c_str(), mode_name);
  std::printf("%-10s %-12s %22s %22s %22s\n", "app", "fault",
              "without-intervention", "reactive", "PREPARE");

  CsvWriter csv(csv_path(figure),
                {"app", "fault", "scheme", "mean_s", "std_s"});
  ThroughputMeter meter;
  for (AppKind app : {AppKind::kSystemS, AppKind::kRubis}) {
    for (FaultKind fault : {FaultKind::kMemoryLeak, FaultKind::kCpuHog,
                            FaultKind::kBottleneck}) {
      std::printf("%-10s %-12s", app_kind_name(app), fault_kind_name(fault));
      RepeatedResult per_scheme[3];
      const Scheme schemes[3] = {Scheme::kNoIntervention, Scheme::kReactive,
                                 Scheme::kPrepare};
      for (int s = 0; s < 3; ++s) {
        ScenarioConfig config;
        config.app = app;
        config.fault = fault;
        config.scheme = schemes[s];
        config.seed = 1;
        config.prepare.prevention.mode = mode;
        per_scheme[s] = run_repeated(config, repeats);
        meter.add_vm_ticks(per_scheme[s].vm_ticks);
        std::printf(" %12.1f +/- %5.1f", per_scheme[s].mean,
                    per_scheme[s].stddev);
        csv.row(std::vector<std::string>{
            app_kind_name(app), fault_kind_name(fault),
            scheme_name(schemes[s]), format_number(per_scheme[s].mean),
            format_number(per_scheme[s].stddev)});
      }
      const double vs_none =
          per_scheme[0].mean > 0.0
              ? (1.0 - per_scheme[2].mean / per_scheme[0].mean) * 100.0
              : 0.0;
      std::printf("   (PREPARE cuts %.0f%% vs none)\n", vs_none);
    }
  }
  meter.report(figure);
  std::printf("-> %s\n\n", csv_path(figure).c_str());
}

/// SLO-metric trace panels (Figs. 7 and 9): the sampled headline metric
/// around the second injection for all three schemes.
inline void run_trace_panels(const std::string& figure, PreventionMode mode) {
  struct Panel {
    const char* label;
    AppKind app;
    FaultKind fault;
  };
  const Panel panels[] = {
      {"(a) Memory leak (System S)", AppKind::kSystemS,
       FaultKind::kMemoryLeak},
      {"(b) Memory leak (RUBiS)", AppKind::kRubis, FaultKind::kMemoryLeak},
      {"(c) CPU hog (System S)", AppKind::kSystemS, FaultKind::kCpuHog},
      {"(d) CPU hog (RUBiS)", AppKind::kRubis, FaultKind::kCpuHog},
  };
  std::printf("%s: sampled SLO metric traces (%s prevention)\n",
              figure.c_str(),
              mode == PreventionMode::kScalingOnly ? "scaling" : "migration");
  CsvWriter csv(csv_path(figure),
                {"panel", "scheme", "time_s", "slo_metric"});
  ThroughputMeter meter;
  for (const Panel& panel : panels) {
    std::printf("%s — %s\n", panel.label,
                panel.app == AppKind::kSystemS
                    ? "throughput (Ktuples/s), higher is better"
                    : "avg response time (ms), lower is better");
    std::printf("  %8s", "t(s)");
    // Trace window: 60 s before the second injection to 240 s after.
    std::vector<std::vector<double>> series;
    double fault2 = 0.0;
    const Scheme schemes[3] = {Scheme::kNoIntervention, Scheme::kReactive,
                               Scheme::kPrepare};
    for (Scheme scheme : schemes) {
      ScenarioConfig config;
      config.app = panel.app;
      config.fault = panel.fault;
      config.scheme = scheme;
      config.seed = 1;
      config.prepare.prevention.mode = mode;
      const auto result = run_scenario(config);
      meter.add_vm_ticks(result.vm_count * result.ticks);
      fault2 = config.fault2_start;
      std::vector<double> values;
      for (double t = fault2 - 60.0; t <= fault2 + 240.0; t += 10.0) {
        const auto v = result.slo.metric_trace().value_at_or_before(t);
        double metric = v.value_or(0.0);
        metric = panel.app == AppKind::kSystemS ? metric / 1000.0
                                                : metric * 1000.0;
        values.push_back(metric);
        csv.row(std::vector<std::string>{
            panel.label, scheme_name(scheme),
            format_number(t - (fault2 - 60.0)), format_number(metric)});
      }
      series.push_back(std::move(values));
      std::printf(" %12s", scheme_name(scheme));
    }
    std::printf("\n");
    std::size_t index = 0;
    for (double t = fault2 - 60.0; t <= fault2 + 240.0; t += 10.0, ++index) {
      std::printf("  %8.0f", t - (fault2 - 60.0));
      for (const auto& values : series)
        std::printf(" %12.1f", values[index]);
      std::printf("\n");
    }
  }
  meter.report(figure);
  std::printf("-> %s\n\n", csv_path(figure).c_str());
}

}  // namespace prepare::bench
