// Shared helpers for the figure-reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper: it
// prints the same rows/series the paper reports and writes a CSV next to
// it (./bench_results/<name>.csv) for plotting.
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/csv.h"
#include "core/experiment.h"

namespace prepare::bench {

inline std::string results_dir() {
  const std::string dir = "bench_results";
  std::filesystem::create_directories(dir);
  return dir;
}

inline std::string csv_path(const std::string& name) {
  return results_dir() + "/" + name + ".csv";
}

/// Violation-time comparison (Figs. 6 and 8): one row per app x fault,
/// three scheme columns, mean +/- std over `repeats` seeded runs.
inline void run_violation_comparison(const std::string& figure,
                                     PreventionMode mode,
                                     std::size_t repeats) {
  const char* mode_name =
      mode == PreventionMode::kScalingOnly ? "elastic scaling"
                                           : "live VM migration";
  std::printf("%s: SLO violation time (s) with %s as the prevention "
              "action\n",
              figure.c_str(), mode_name);
  std::printf("%-10s %-12s %22s %22s %22s\n", "app", "fault",
              "without-intervention", "reactive", "PREPARE");

  CsvWriter csv(csv_path(figure),
                {"app", "fault", "scheme", "mean_s", "std_s"});
  for (AppKind app : {AppKind::kSystemS, AppKind::kRubis}) {
    for (FaultKind fault : {FaultKind::kMemoryLeak, FaultKind::kCpuHog,
                            FaultKind::kBottleneck}) {
      std::printf("%-10s %-12s", app_kind_name(app), fault_kind_name(fault));
      RepeatedResult per_scheme[3];
      const Scheme schemes[3] = {Scheme::kNoIntervention, Scheme::kReactive,
                                 Scheme::kPrepare};
      for (int s = 0; s < 3; ++s) {
        ScenarioConfig config;
        config.app = app;
        config.fault = fault;
        config.scheme = schemes[s];
        config.seed = 1;
        config.prepare.prevention.mode = mode;
        per_scheme[s] = run_repeated(config, repeats);
        std::printf(" %12.1f +/- %5.1f", per_scheme[s].mean,
                    per_scheme[s].stddev);
        csv.row(std::vector<std::string>{
            app_kind_name(app), fault_kind_name(fault),
            scheme_name(schemes[s]), format_number(per_scheme[s].mean),
            format_number(per_scheme[s].stddev)});
      }
      const double vs_none =
          per_scheme[0].mean > 0.0
              ? (1.0 - per_scheme[2].mean / per_scheme[0].mean) * 100.0
              : 0.0;
      std::printf("   (PREPARE cuts %.0f%% vs none)\n", vs_none);
    }
  }
  std::printf("-> %s\n\n", csv_path(figure).c_str());
}

/// SLO-metric trace panels (Figs. 7 and 9): the sampled headline metric
/// around the second injection for all three schemes.
inline void run_trace_panels(const std::string& figure, PreventionMode mode) {
  struct Panel {
    const char* label;
    AppKind app;
    FaultKind fault;
  };
  const Panel panels[] = {
      {"(a) Memory leak (System S)", AppKind::kSystemS,
       FaultKind::kMemoryLeak},
      {"(b) Memory leak (RUBiS)", AppKind::kRubis, FaultKind::kMemoryLeak},
      {"(c) CPU hog (System S)", AppKind::kSystemS, FaultKind::kCpuHog},
      {"(d) CPU hog (RUBiS)", AppKind::kRubis, FaultKind::kCpuHog},
  };
  std::printf("%s: sampled SLO metric traces (%s prevention)\n",
              figure.c_str(),
              mode == PreventionMode::kScalingOnly ? "scaling" : "migration");
  CsvWriter csv(csv_path(figure),
                {"panel", "scheme", "time_s", "slo_metric"});
  for (const Panel& panel : panels) {
    std::printf("%s — %s\n", panel.label,
                panel.app == AppKind::kSystemS
                    ? "throughput (Ktuples/s), higher is better"
                    : "avg response time (ms), lower is better");
    std::printf("  %8s", "t(s)");
    // Trace window: 60 s before the second injection to 240 s after.
    std::vector<std::vector<double>> series;
    double fault2 = 0.0;
    const Scheme schemes[3] = {Scheme::kNoIntervention, Scheme::kReactive,
                               Scheme::kPrepare};
    for (Scheme scheme : schemes) {
      ScenarioConfig config;
      config.app = panel.app;
      config.fault = panel.fault;
      config.scheme = scheme;
      config.seed = 1;
      config.prepare.prevention.mode = mode;
      const auto result = run_scenario(config);
      fault2 = config.fault2_start;
      std::vector<double> values;
      for (double t = fault2 - 60.0; t <= fault2 + 240.0; t += 10.0) {
        const auto v = result.slo.metric_trace().value_at_or_before(t);
        double metric = v.value_or(0.0);
        metric = panel.app == AppKind::kSystemS ? metric / 1000.0
                                                : metric * 1000.0;
        values.push_back(metric);
        csv.row(std::vector<std::string>{
            panel.label, scheme_name(scheme),
            format_number(t - (fault2 - 60.0)), format_number(metric)});
      }
      series.push_back(std::move(values));
      std::printf(" %12s", scheme_name(scheme));
    }
    std::printf("\n");
    std::size_t index = 0;
    for (double t = fault2 - 60.0; t <= fault2 + 240.0; t += 10.0, ++index) {
      std::printf("  %8.0f", t - (fault2 - 60.0));
      for (const auto& values : series)
        std::printf(" %12.1f", values[index]);
      std::printf("\n");
    }
  }
  std::printf("-> %s\n\n", csv_path(figure).c_str());
}

}  // namespace prepare::bench
