// Shared helpers for the trace-driven accuracy benches (Figs. 10-13).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/accuracy.h"

namespace prepare::bench {

inline const std::vector<double>& lookaheads() {
  static const std::vector<double> values = {5, 10, 15, 20, 25,
                                             30, 35, 40, 45};
  return values;
}

/// Records the no-intervention trace the paper's trace-driven accuracy
/// experiments replay.
inline ScenarioResult record_trace(AppKind app, FaultKind fault,
                                   std::uint64_t seed = 3,
                                   double sampling_interval_s = 5.0) {
  ScenarioConfig config;
  config.app = app;
  config.fault = fault;
  config.scheme = Scheme::kNoIntervention;
  config.seed = seed;
  config.sampling_interval_s = sampling_interval_s;
  ScenarioResult result = run_scenario(config);
  global_meter.add_vm_ticks(result.vm_count * result.ticks);
  return result;
}

struct Curve {
  std::string label;
  std::vector<AccuracyResult> points;  // one per lookahead
};

/// Prints curves side by side and writes them as CSV rows.
inline void emit_curves(const std::string& figure, const std::string& panel,
                        const std::vector<Curve>& curves, CsvWriter* csv) {
  std::printf("%s\n", panel.c_str());
  std::printf("  %12s", "lookahead(s)");
  for (const auto& curve : curves)
    std::printf("  AT(%-12s AF(%-12s", (curve.label + ")").c_str(),
                (curve.label + ")").c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < lookaheads().size(); ++i) {
    std::printf("  %12.0f", lookaheads()[i]);
    for (const auto& curve : curves) {
      const auto& p = curve.points[i];
      std::printf("  %15.1f%% %15.1f%%", p.a_t * 100.0, p.a_f * 100.0);
      csv->row(std::vector<std::string>{
          figure, panel, curve.label, format_number(lookaheads()[i]),
          format_number(p.a_t * 100.0), format_number(p.a_f * 100.0)});
    }
    std::printf("\n");
  }
}

}  // namespace prepare::bench
