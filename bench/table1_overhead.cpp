// Table I: PREPARE system overhead measurements.
//
// Microbenchmarks (google-benchmark) of every key module, mirroring the
// paper's table:
//
//   VM monitoring (13 attributes)             4.68 ms   (paper)
//   Simple Markov model training (600)        61.0 ms
//   2-dep. Markov model training (600)        135.1 ms
//   TAN model training (600)                  4.0 ms
//   Anomaly prediction                        1.3 ms
//   CPU resource scaling                      107 ms
//   Memory resource scaling                   116 ms
//   Live VM migration (512 MB)                8.56 s
//
// Absolute numbers will differ (2012 Xeon vs. today's hardware; our
// monitoring reads a simulated VM instead of libxenstat), but the
// *ordering* should hold: TAN training and prediction are cheap,
// 2-dependent Markov training costs ~2x simple Markov training, and the
// actuation latencies are properties of the virtualization platform —
// for those we report the calibrated latencies of the hypervisor model,
// which match the paper by construction.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <sstream>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/anomaly_predictor.h"
#include "core/experiment.h"
#include "obs/flight_recorder.h"
#include "obs/model_introspect.h"
#include "obs/span_tracer.h"
#include "obs/stage_profiler.h"
#include "models/markov.h"
#include "models/markov2.h"
#include "models/tan.h"
#include "monitor/vm_monitor.h"
#include "sim/clock.h"
#include "sim/cluster.h"
#include "sim/hypervisor.h"

namespace prepare {
namespace {

constexpr std::size_t kTrainingSamples = 600;
constexpr std::size_t kBins = 5;

/// 600 samples x 13 attributes of leak-shaped training data.
struct TrainingData {
  std::vector<std::vector<double>> rows;
  std::vector<bool> abnormal;
  std::vector<std::vector<std::size_t>> symbol_columns;  // per attribute
};

const TrainingData& training_data() {
  static const TrainingData data = [] {
    TrainingData out;
    Rng rng(17);
    for (std::size_t i = 0; i < kTrainingSamples; ++i) {
      const bool abnormal = i > 400 && i < 480;
      std::vector<double> row;
      for (std::size_t a = 0; a < kAttributeCount; ++a) {
        double base = 50.0 + 10.0 * static_cast<double>(a);
        if (abnormal) base *= 1.8;
        if (i > 340 && i <= 480) base += static_cast<double>(i - 340);
        row.push_back(base + rng.gaussian(0.0, 2.0));
      }
      out.rows.push_back(std::move(row));
      out.abnormal.push_back(abnormal);
    }
    out.symbol_columns.resize(kAttributeCount);
    for (std::size_t a = 0; a < kAttributeCount; ++a)
      for (std::size_t i = 0; i < kTrainingSamples; ++i)
        out.symbol_columns[a].push_back(
            static_cast<std::size_t>(out.rows[i][a]) % kBins);
    return out;
  }();
  return data;
}

void BM_VmMonitoring13Attributes(benchmark::State& state) {
  VmMonitor monitor(VmMonitorConfig{}, 1);
  Vm vm("vm", 1.0, 512.0);
  vm.begin_tick();
  vm.set_app_cpu_demand(0.4);
  vm.set_app_mem_demand(300.0);
  vm.set_net_in(100.0);
  vm.set_net_out(90.0);
  vm.finalize_tick();
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.sample(vm));
  }
}
BENCHMARK(BM_VmMonitoring13Attributes);

void BM_SimpleMarkovTraining600(benchmark::State& state) {
  const auto& data = training_data();
  for (auto _ : state) {
    for (std::size_t a = 0; a < kAttributeCount; ++a) {
      MarkovChain chain(kBins);
      chain.train(data.symbol_columns[a]);
      benchmark::DoNotOptimize(chain);
    }
  }
}
BENCHMARK(BM_SimpleMarkovTraining600);

void BM_TwoDepMarkovTraining600(benchmark::State& state) {
  const auto& data = training_data();
  for (auto _ : state) {
    for (std::size_t a = 0; a < kAttributeCount; ++a) {
      TwoDependentMarkov chain(kBins);
      chain.train(data.symbol_columns[a]);
      benchmark::DoNotOptimize(chain);
    }
  }
}
BENCHMARK(BM_TwoDepMarkovTraining600);

void BM_TanTraining600(benchmark::State& state) {
  const auto& data = training_data();
  LabeledDataset dataset;
  dataset.alphabet.assign(kAttributeCount, kBins);
  for (std::size_t i = 0; i < kTrainingSamples; ++i) {
    std::vector<std::size_t> row;
    for (std::size_t a = 0; a < kAttributeCount; ++a)
      row.push_back(data.symbol_columns[a][i]);
    dataset.rows.push_back(std::move(row));
    dataset.abnormal.push_back(data.abnormal[i]);
  }
  for (auto _ : state) {
    TanClassifier tan;
    tan.train(dataset);
    benchmark::DoNotOptimize(tan);
  }
}
BENCHMARK(BM_TanTraining600);

void BM_FullPredictorTraining600(benchmark::State& state) {
  const auto& data = training_data();
  std::vector<std::string> names;
  for (std::size_t a = 0; a < kAttributeCount; ++a)
    names.push_back(attribute_name(static_cast<Attribute>(a)));
  for (auto _ : state) {
    AnomalyPredictor predictor(names);
    predictor.train(data.rows, data.abnormal);
    benchmark::DoNotOptimize(predictor);
  }
}
BENCHMARK(BM_FullPredictorTraining600);

void BM_AnomalyPrediction(benchmark::State& state) {
  // One prediction = 13 attribute-value forecasts at the look-ahead
  // horizon + TAN classification + attribute attribution.
  const auto& data = training_data();
  std::vector<std::string> names;
  for (std::size_t a = 0; a < kAttributeCount; ++a)
    names.push_back(attribute_name(static_cast<Attribute>(a)));
  AnomalyPredictor predictor(names);
  predictor.train(data.rows, data.abnormal);
  for (auto _ : state) {
    const auto result = predictor.predict(TickIndex{6});
    benchmark::DoNotOptimize(
        Classifier::ranked_attributes(result.classification));
  }
}
BENCHMARK(BM_AnomalyPrediction);

/// Actuation latencies are platform properties: the benchmark measures
/// the control-plane call cost, and the modeled end-to-end latency
/// (which matches the paper's Table I by calibration) is reported as the
/// "modeled_latency_s" counter.
void BM_CpuScalingIssue(benchmark::State& state) {
  SimClock clock;
  Cluster cluster;
  EventLog log;
  Hypervisor hypervisor(&clock, &cluster, &log);
  Host* host = cluster.add_host("h");
  Vm* vm = cluster.add_vm("vm", 1.0, 512.0, host);
  double target = 1.1;
  for (auto _ : state) {
    hypervisor.scale_cpu(vm, target);
    clock.advance(Seconds{1.0});
    target = target > 1.4 ? 1.1 : target + 0.1;
  }
  state.counters["modeled_latency_s"] =
      hypervisor.config().cpu_scale_latency_s;
}
BENCHMARK(BM_CpuScalingIssue);

void BM_MemoryScalingIssue(benchmark::State& state) {
  SimClock clock;
  Cluster cluster;
  EventLog log;
  Hypervisor hypervisor(&clock, &cluster, &log);
  Host* host = cluster.add_host("h");
  Vm* vm = cluster.add_vm("vm", 1.0, 512.0, host);
  double target = 600.0;
  for (auto _ : state) {
    hypervisor.scale_memory(vm, target);
    clock.advance(Seconds{1.0});
    target = target > 1000.0 ? 600.0 : target + 64.0;
  }
  state.counters["modeled_latency_s"] =
      hypervisor.config().mem_scale_latency_s;
}
BENCHMARK(BM_MemoryScalingIssue);

void BM_LiveMigration512MB(benchmark::State& state) {
  SimClock clock;
  Cluster cluster;
  EventLog log;
  Hypervisor hypervisor(&clock, &cluster, &log);
  Host* a = cluster.add_host("a");
  Host* b = cluster.add_host("b");
  Vm* vm = cluster.add_vm("vm", 1.0, 512.0, a);
  Host* target = b;
  Host* source = a;
  for (auto _ : state) {
    hypervisor.migrate(vm, target);
    clock.advance(Seconds{hypervisor.migration_duration(512.0) + 1.0});
    std::swap(source, target);
  }
  state.counters["modeled_latency_s"] = hypervisor.migration_duration(512.0);
}
BENCHMARK(BM_LiveMigration512MB);

/// Wall time of one full default scenario (System S, memory leak,
/// PREPARE scheme). `registry` null = uninstrumented build path;
/// `with_spans` additionally attaches a fresh SpanTracer (the full
/// alert-lifecycle layer on top of the metrics instruments);
/// `with_introspect` additionally attaches a fresh ModelIntrospect
/// (per-horizon calibration + model-state probes + drift detection);
/// `with_recorder` additionally attaches a fresh FlightRecorder (the
/// per-VM decision-evidence ring + episode bundle capture).
double timed_scenario_run(obs::MetricsRegistry* registry, bool with_spans,
                          bool with_introspect, bool with_recorder,
                          bench::ThroughputMeter* meter) {
  ScenarioConfig config;
  config.seed = 11;
  config.metrics = registry;
  std::optional<obs::SpanTracer> tracer;
  if (with_spans) {
    tracer.emplace(registry);
    config.tracer = &*tracer;
  }
  std::optional<obs::ModelIntrospect> introspect;
  if (with_introspect) {
    introspect.emplace(registry);
    config.introspect = &*introspect;
  }
  std::optional<obs::FlightRecorder> recorder;
  if (with_recorder) {
    recorder.emplace(registry);
    config.recorder = &*recorder;
  }
  const auto start = std::chrono::steady_clock::now();
  const auto result = run_scenario(config);
  const auto end = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(result.violation_time);
  if (meter != nullptr) meter->add_vm_ticks(result.vm_count * result.ticks);
  return std::chrono::duration<double>(end - start).count();
}

/// End-to-end stage profile (the runtime complement of the
/// microbenchmarks above): runs the default scenario with the
/// StageProfiler attached and prints per-stage p50/p90/p99 — plus the
/// same scenario bare, with span tracing, with the model introspection
/// layer, and with the episode flight recorder on top, to measure what
/// each instrumentation layer costs. The acceptance bar is < 5%
/// overhead for the full stack (metrics + spans + introspection +
/// recorder) over bare.
void report_pipeline_stage_profile() {
  constexpr int kReps = 15;
  obs::MetricsRegistry registry;
  timed_scenario_run(nullptr, false, false, false, nullptr);  // warm-up
  // Min-of-reps: each variant's best observed wall time. The scenario
  // is deterministic, so the minimum is the run least disturbed by the
  // host (scheduler, frequency scaling) and the most comparable
  // estimator across variants; sums would fold every noise spike in.
  double bare = 1e9;
  double with_metrics = 1e9;
  double with_spans = 1e9;
  double with_introspect = 1e9;
  double with_recorder = 1e9;
  bench::ThroughputMeter meter;
  for (int r = 0; r < kReps; ++r) {
    bare = std::min(bare,
                    timed_scenario_run(nullptr, false, false, false, &meter));
    with_metrics = std::min(
        with_metrics, timed_scenario_run(&registry, false, false, false, &meter));
    with_spans = std::min(
        with_spans, timed_scenario_run(&registry, true, false, false, &meter));
    with_introspect = std::min(
        with_introspect, timed_scenario_run(&registry, true, true, false, &meter));
    with_recorder = std::min(
        with_recorder, timed_scenario_run(&registry, true, true, true, &meter));
  }
  std::printf("\n-- controller pipeline stage profile (%d scenario runs) --\n",
              kReps);
  std::ostringstream table;
  obs::write_stage_report(registry, table);
  std::fputs(table.str().c_str(), stdout);
  const auto overhead = [bare](double instrumented) {
    return bare <= 0.0 ? 0.0 : (instrumented - bare) / bare * 100.0;
  };
  std::printf(
      "scenario wall time (min of %d): %.3f s bare, %.3f s metrics (%+.2f%%), "
      "%.3f s metrics+spans (%+.2f%%), "
      "%.3f s metrics+spans+introspect (%+.2f%%), "
      "%.3f s metrics+spans+introspect+recorder (%+.2f%%)\n",
      kReps, bare, with_metrics, overhead(with_metrics), with_spans,
      overhead(with_spans), with_introspect, overhead(with_introspect),
      with_recorder, overhead(with_recorder));
  std::printf(
      "flight-recorder increment over metrics+spans+introspect: %+.2f%% "
      "(acceptance bar: < 5%% over bare for the full stack)\n",
      with_introspect <= 0.0
          ? 0.0
          : (with_recorder - with_introspect) / with_introspect * 100.0);
  meter.report("table1_overhead");
  const std::string json = bench::write_bench_json(
      "table1_overhead",
      {{"scenario_runs", static_cast<double>(kReps * 5)}}, meter, &registry);
  std::printf("-> %s\n", json.c_str());
}

}  // namespace
}  // namespace prepare

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  prepare::report_pipeline_stage_profile();
  return 0;
}
