// Ablation (paper Section V, 4th limitation): in-guest memory daemon
// vs. gray-box inference of the memory attributes.
//
// Gray-box monitoring needs no guest cooperation, but it is blind below
// the paging onset: the leak's long silent decline (free memory falling
// while nothing pages yet) is invisible, so alerts come later and the
// prevented violation time grows. This bench quantifies that price on
// the memory-leak scenario, where the in-guest signal matters most.
#include <cstdio>

#include "bench_util.h"

using namespace prepare;
using namespace prepare::bench;

int main() {
  std::printf("ablation: in-guest memory daemon vs gray-box inference\n"
              "(memory-leak scenario, scaling prevention; SLO violation "
              "time, s; mean of 5 runs)\n\n");
  CsvWriter csv(csv_path("abl_graybox"),
                {"app", "scheme", "memory_source", "mean_s", "std_s"});
  std::printf("%-10s %-10s %18s %18s\n", "app", "scheme", "in-guest daemon",
              "gray-box");
  for (AppKind app : {AppKind::kSystemS, AppKind::kRubis}) {
    for (Scheme scheme : {Scheme::kReactive, Scheme::kPrepare}) {
      std::printf("%-10s %-10s", app_kind_name(app), scheme_name(scheme));
      for (bool graybox : {false, true}) {
        ScenarioConfig config;
        config.app = app;
        config.fault = FaultKind::kMemoryLeak;
        config.scheme = scheme;
        config.seed = 1;
        config.graybox_memory = graybox;
        config.prepare.prevention.mode = PreventionMode::kScalingOnly;
        const auto result = run_repeated(config, 5);
        global_meter.add_vm_ticks(result.vm_ticks);
        std::printf("   %8.1f +/- %4.1f", result.mean, result.stddev);
        csv.row(std::vector<std::string>{
            app_kind_name(app), scheme_name(scheme),
            graybox ? "graybox" : "in_guest", format_number(result.mean),
            format_number(result.stddev)});
      }
      std::printf("\n");
    }
  }
  std::printf("\n(expected: gray-box costs PREPARE part of its lead time "
              "on the leak — memory\n decline below the paging onset is "
              "invisible from outside the guest)\n");
  global_meter.report("abl_graybox");
  std::printf("-> %s\n", csv_path("abl_graybox").c_str());
  return 0;
}
