// Fig. 8: SLO violation time comparison using live VM migration as the
// prevention action.
//
// Paper result to reproduce (shape): PREPARE cuts violation time by
// 88-99% vs no intervention and 3-97% vs reactive; violation times are
// generally longer than with scaling (Fig. 6) because a live migration
// takes ~8-15 s to complete while a scaling applies in ~100 ms.
#include "bench_util.h"

int main() {
  prepare::bench::run_violation_comparison(
      "fig08", prepare::PreventionMode::kMigrationOnly, 5);
  return 0;
}
