// Fig. 11: prediction accuracy of the 2-dependent Markov value predictor
// vs. the simple (order-1) Markov chain.
//
// Paper result to reproduce (shape): the 2-dependent model achieves a
// higher true positive rate, especially at larger look-ahead windows,
// because the pair state captures the slope of trending attributes.
#include "accuracy_util.h"

using namespace prepare;
using namespace prepare::bench;

int main() {
  std::printf("fig11: 2-dependent vs simple Markov value prediction\n\n");
  CsvWriter csv(csv_path("fig11"), {"figure", "panel", "model",
                                    "lookahead_s", "at_pct", "af_pct"});
  struct Panel {
    const char* label;
    AppKind app;
    FaultKind fault;
  };
  const Panel panels[] = {
      {"(a) Memory leak (System S)", AppKind::kSystemS,
       FaultKind::kMemoryLeak},
      {"(b) Bottleneck (RUBiS)", AppKind::kRubis, FaultKind::kBottleneck},
  };
  for (const Panel& panel : panels) {
    const auto trace = record_trace(panel.app, panel.fault);
    const auto vms = trace.store.vm_names();
    Curve two{"2-dep Markov", {}}, one{"simple Markov", {}};
    for (double lookahead : lookaheads()) {
      AccuracyConfig config;
      config.predictor.order = MarkovOrder::kTwoDependent;
      two.points.push_back(
          evaluate_accuracy(trace.store, trace.slo, vms, lookahead, config));
      config.predictor.order = MarkovOrder::kSimple;
      one.points.push_back(
          evaluate_accuracy(trace.store, trace.slo, vms, lookahead, config));
    }
    emit_curves("fig11", panel.label, {two, one}, &csv);
  }
  global_meter.report("fig11");
  std::printf("-> %s\n", csv_path("fig11").c_str());
  return 0;
}
