// Ablation: Markov context length beyond the paper's order 2.
//
// The paper generalizes order-1 to order-2 to capture attribute slopes;
// this bench asks whether going further helps. Order 3 squares the
// per-attribute state space again (alphabet^3 transition rows), so with
// a few hundred training samples the model starves — the expected result
// is order 2 at or near the top, the diminishing-returns argument for
// the paper's choice.
#include <cstdio>

#include "accuracy_util.h"

using namespace prepare;
using namespace prepare::bench;

int main() {
  std::printf("ablation: Markov context length (memory leak, System S)\n\n");
  CsvWriter csv(csv_path("abl_markov_n"),
                {"figure", "panel", "model", "lookahead_s", "at_pct",
                 "af_pct"});
  const auto trace = record_trace(AppKind::kSystemS, FaultKind::kMemoryLeak);
  const auto vms = trace.store.vm_names();
  std::vector<Curve> curves;
  for (std::size_t order : {1u, 2u, 3u}) {
    Curve curve{"order " + std::to_string(order), {}};
    for (double lookahead : lookaheads()) {
      AccuracyConfig config;
      config.predictor.custom_markov_order = order;
      curve.points.push_back(
          evaluate_accuracy(trace.store, trace.slo, vms, lookahead, config));
    }
    curves.push_back(std::move(curve));
  }
  emit_curves("abl_markov_n", "Memory leak (System S)", curves, &csv);
  global_meter.report("abl_markov_n");
  std::printf("-> %s\n", csv_path("abl_markov_n").c_str());
  return 0;
}
