// SLO violation log.
//
// The external SLO tracker of the paper: records, tick by tick, whether
// the application's SLO is violated, exposes total violation time (the
// headline metric of Figs. 6/8) and answers point queries for the
// automatic runtime data labeling (Section II-B).
#pragma once

#include <vector>

#include "timeseries/timeseries.h"

namespace prepare {

class SloLog {
 public:
  struct Interval {
    double start = 0.0;
    double end = 0.0;  ///< exclusive; open interval end while violating
    double duration() const { return end - start; }
  };

  /// Records the SLO state over [time, time+dt).
  void record(double time, double dt, bool violated, double slo_metric);

  /// Whether the SLO was violated at time t (within a recorded tick).
  bool violated_at(double t) const;

  /// Total violated time within [t0, t1].
  double violation_time(double t0, double t1) const;
  /// Total violated time over the whole log.
  double total_violation_time() const;

  /// Closed violation intervals (plus the open one, if any, truncated at
  /// the last recorded time).
  std::vector<Interval> intervals() const;

  /// The SLO headline metric trace (throughput / response time).
  const TimeSeries& metric_trace() const { return metric_trace_; }

  double last_time() const { return last_time_; }
  bool currently_violated() const { return open_; }

  void clear();

 private:
  std::vector<Interval> closed_;
  bool open_ = false;
  double open_start_ = 0.0;
  double last_time_ = 0.0;
  TimeSeries metric_trace_;
};

}  // namespace prepare
