// The 13 system-level attributes PREPARE monitors per VM.
//
// The paper's monitor collects "13 resource attributes every five
// seconds" from domain 0 (Table I) — CPU, memory, network and disk I/O
// statistics plus load averages; Fig. 3 names Residual CPU, Free Mem,
// NetIn, NetOut and Load1 explicitly. We reproduce that attribute set.
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace prepare {

enum class Attribute : std::size_t {
  kCpuUtil = 0,     ///< CPU usage, percent of allocation
  kCpuResidual,     ///< unused CPU, cores ("Residual CPU" in Fig. 3)
  kLoad1,           ///< 1-minute load average (runnable demand / alloc)
  kLoad5,           ///< 5-minute load average
  kFreeMem,         ///< free memory, MB (in-guest daemon in the paper)
  kMemUtil,         ///< memory usage, percent of allocation
  kNetIn,           ///< network in, KB/s
  kNetOut,          ///< network out, KB/s
  kDiskRead,        ///< disk read, KB/s
  kDiskWrite,       ///< disk write, KB/s
  kPageFaults,      ///< major page faults /s (paging pressure)
  kCtxSwitches,     ///< context switches /s (x1000)
  kRunQueue,        ///< runnable-task queue length
};

inline constexpr std::size_t kAttributeCount = 13;

/// Short stable name ("cpu_util", "free_mem", ...) for CSV headers.
const std::string& attribute_name(Attribute a);

/// Reverse lookup; throws CheckFailure for unknown names.
Attribute attribute_from_name(const std::string& name);

/// One monitoring sample: the 13 attribute values of one VM at one time.
using AttributeVector = std::array<double, kAttributeCount>;

inline double get(const AttributeVector& v, Attribute a) {
  return v[static_cast<std::size_t>(a)];
}
inline void set(AttributeVector& v, Attribute a, double value) {
  v[static_cast<std::size_t>(a)] = value;
}

}  // namespace prepare
