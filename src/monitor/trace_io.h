// Trace persistence: save a recorded run (metric history + SLO log) to
// CSV and load it back. Lets users archive experiment traces, analyze
// them offline, and replay them through the trace-driven accuracy
// harness without re-running the simulation.
//
// Formats (plain CSV, one header row):
//   metrics: time_s, vm, cpu_util, ..., run_queue       (13 attr columns)
//   slo:     time_s, dt_s, violated, slo_metric
#pragma once

#include <string>

#include "monitor/metric_store.h"
#include "monitor/slo_log.h"

namespace prepare {

/// Writes every VM's samples, interleaved by time (grouped per VM per
/// timestamp). Throws std::runtime_error if the file cannot be opened.
void save_metric_store_csv(const MetricStore& store,
                           const std::string& path);

/// Loads a store written by save_metric_store_csv. Throws on malformed
/// files (missing columns, non-monotone timestamps per VM).
MetricStore load_metric_store_csv(const std::string& path);

/// Writes the per-tick SLO record (violated flag + headline metric).
void save_slo_log_csv(const SloLog& slo, const std::string& path);

/// Loads an SLO log written by save_slo_log_csv.
SloLog load_slo_log_csv(const std::string& path);

}  // namespace prepare
