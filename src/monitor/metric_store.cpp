#include "monitor/metric_store.h"

#include <algorithm>

#include "common/check.h"

namespace prepare {

void MetricStore::record(const std::string& vm_name, double time,
                         const AttributeVector& values) {
  auto it = histories_.find(vm_name);
  if (it == histories_.end()) {
    it = histories_.emplace(vm_name, VmHistory{}).first;
    vm_names_.push_back(vm_name);
  }
  for (std::size_t a = 0; a < kAttributeCount; ++a)
    it->second.series[a].append(time, values[a]);
}

const MetricStore::VmHistory& MetricStore::history_of(
    const std::string& vm_name) const {
  auto it = histories_.find(vm_name);
  PREPARE_CHECK_MSG(it != histories_.end(), "unknown VM: " + vm_name);
  return it->second;
}

std::size_t MetricStore::sample_count(const std::string& vm_name) const {
  auto it = histories_.find(vm_name);
  if (it == histories_.end()) return 0;
  return it->second.series[0].size();
}

const TimeSeries& MetricStore::series(const std::string& vm_name,
                                      Attribute a) const {
  return history_of(vm_name).series[static_cast<std::size_t>(a)];
}

AttributeVector MetricStore::sample(const std::string& vm_name,
                                    std::size_t i) const {
  const VmHistory& h = history_of(vm_name);
  AttributeVector v{};
  for (std::size_t a = 0; a < kAttributeCount; ++a) v[a] = h.series[a].at(i).value;
  return v;
}

double MetricStore::sample_time(const std::string& vm_name,
                                std::size_t i) const {
  return history_of(vm_name).series[0].at(i).time;
}

std::vector<AttributeVector> MetricStore::last_samples(
    const std::string& vm_name, std::size_t n) const {
  const std::size_t total = sample_count(vm_name);
  const std::size_t take = std::min(n, total);
  std::vector<AttributeVector> out;
  out.reserve(take);
  for (std::size_t i = total - take; i < total; ++i)
    out.push_back(sample(vm_name, i));
  return out;
}

void MetricStore::clear() {
  histories_.clear();
  vm_names_.clear();
}

}  // namespace prepare
