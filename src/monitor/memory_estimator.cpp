#include "monitor/memory_estimator.h"

#include <algorithm>

#include "common/check.h"

namespace prepare {

GrayboxMemoryEstimator::GrayboxMemoryEstimator(GrayboxMemoryConfig config)
    : config_(config), estimate_(config.quiet_prior) {
  PREPARE_CHECK(config_.faults_per_pressure > 0.0);
  PREPARE_CHECK(config_.decay > 0.0 && config_.decay <= 1.0);
  PREPARE_CHECK(config_.quiet_prior >= 0.0 && config_.quiet_prior <= 1.0);
  PREPARE_CHECK(config_.disk_full_kbps > config_.disk_baseline_kbps);
}

double GrayboxMemoryEstimator::update(double page_fault_rate,
                                      double disk_read_kbps) {
  PREPARE_CHECK(page_fault_rate >= 0.0);
  if (page_fault_rate >= config_.min_signal_faults) {
    // Live paging: invert the fault-rate curve for a direct estimate and
    // corroborate with the disk-read excess (cache misses hitting disk).
    const double from_faults =
        config_.pressure_onset +
        page_fault_rate / config_.faults_per_pressure;
    const double disk_excess =
        std::clamp((disk_read_kbps - config_.disk_baseline_kbps) /
                       (config_.disk_full_kbps - config_.disk_baseline_kbps),
                   0.0, 1.0);
    const double from_disk =
        config_.pressure_onset + disk_excess * (1.0 - config_.pressure_onset);
    estimate_ = 0.8 * from_faults + 0.2 * from_disk;
    confident_ = true;
  } else {
    // Quiet guest: no visibility below the paging onset. Decay toward
    // the uninformed prior.
    estimate_ += (config_.quiet_prior - estimate_) * config_.decay;
    confident_ = false;
  }
  return estimate_;
}

}  // namespace prepare
