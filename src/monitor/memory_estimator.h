// Gray-box memory inference (paper Section V, 4th limitation):
//
//   "PREPARE currently needs to implant a light-weight monitoring daemon
//    within one guest VM to track its memory usage information. However,
//    these memory usage statistics can either be inferred indirectly
//    [Wood et al., NSDI'07] or obtained by VM introspection."
//
// This estimator implements the indirect-inference route: it watches the
// externally visible paging signals (major page-fault rate, swap/disk
// read traffic) and maintains an estimate of the guest's memory
// utilization. The key asymmetry: paging only becomes visible once the
// guest is already under pressure, so the estimate is confident near and
// above the paging onset and decays toward an uninformed prior when the
// guest is quiet — exactly the blind spot gray-box monitoring has in
// practice (and the reason the in-guest daemon predicts leaks earlier;
// see bench/abl_graybox).
#pragma once

namespace prepare {

struct GrayboxMemoryConfig {
  /// Paging model calibration: fault rate observed at `pressure_onset`
  /// is ~0, rising by `faults_per_pressure` per unit of pressure above
  /// the onset (matches the monitor's guest paging behaviour).
  double pressure_onset = 0.9;
  double faults_per_pressure = 4000.0;
  /// Fault rate below this is considered noise (no paging signal).
  double min_signal_faults = 20.0;
  /// Disk-read excess (KB/s over the quiet baseline) that corroborates
  /// cache pressure; blended in at a fixed weight.
  double disk_baseline_kbps = 60.0;
  double disk_full_kbps = 900.0;
  /// With no signal the estimate decays toward `quiet_prior` by
  /// `decay` per sample.
  double quiet_prior = 0.6;
  double decay = 0.04;
};

class GrayboxMemoryEstimator {
 public:
  explicit GrayboxMemoryEstimator(
      GrayboxMemoryConfig config = GrayboxMemoryConfig());

  /// Feeds one sample of externally visible signals; returns the updated
  /// utilization estimate in [0, ~1.1] (demand/allocation; >1 = paging).
  double update(double page_fault_rate, double disk_read_kbps);

  double utilization() const { return estimate_; }
  /// Whether the current estimate is backed by a live paging signal (as
  /// opposed to the decayed prior).
  bool confident() const { return confident_; }

  const GrayboxMemoryConfig& config() const { return config_; }

 private:
  GrayboxMemoryConfig config_;
  double estimate_;
  bool confident_ = false;
};

}  // namespace prepare
