// Automatic runtime data labeling (paper Section II-B):
//
//   "PREPARE supports automatic runtime data labeling by matching the
//    timestamps of system-level metric measurements and SLO violation
//    logs."
//
// A measurement sample is labeled abnormal iff the application's SLO was
// violated at the sample's timestamp. The labeler turns a MetricStore +
// SloLog pair into per-VM labeled datasets for training the classifiers.
#pragma once

#include <string>
#include <vector>

#include "monitor/attributes.h"
#include "monitor/metric_store.h"
#include "monitor/slo_log.h"

namespace prepare {

struct LabeledSample {
  double time = 0.0;
  AttributeVector values{};
  bool abnormal = false;
};

class Labeler {
 public:
  /// Labels every sample of `vm_name` in [t0, t1] against the SLO log.
  static std::vector<LabeledSample> label(const MetricStore& store,
                                          const SloLog& slo,
                                          const std::string& vm_name,
                                          double t0, double t1);

  /// Labels the full history of `vm_name`.
  static std::vector<LabeledSample> label_all(const MetricStore& store,
                                              const SloLog& slo,
                                              const std::string& vm_name);
};

}  // namespace prepare
