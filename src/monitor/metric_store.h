// Per-VM, per-attribute metric history.
//
// The store is what the anomaly predictor trains on and what the
// prevention validator's look-back / look-ahead windows read from.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "monitor/attributes.h"
#include "timeseries/timeseries.h"

namespace prepare {

class MetricStore {
 public:
  /// Appends one monitoring sample for a VM.
  void record(const std::string& vm_name, double time,
              const AttributeVector& values);

  /// Number of samples stored for a VM (0 if unknown).
  std::size_t sample_count(const std::string& vm_name) const;

  /// All VM names seen so far, in first-seen order.
  const std::vector<std::string>& vm_names() const { return vm_names_; }

  /// Series for one attribute of one VM; throws if the VM is unknown.
  const TimeSeries& series(const std::string& vm_name, Attribute a) const;

  /// Sample i of a VM as a full attribute vector (plus its timestamp).
  AttributeVector sample(const std::string& vm_name, std::size_t i) const;
  double sample_time(const std::string& vm_name, std::size_t i) const;

  /// The latest `n` samples of a VM, oldest first.
  std::vector<AttributeVector> last_samples(const std::string& vm_name,
                                            std::size_t n) const;

  void clear();

 private:
  struct VmHistory {
    std::array<TimeSeries, kAttributeCount> series;
  };

  const VmHistory& history_of(const std::string& vm_name) const;

  std::map<std::string, VmHistory> histories_;
  std::vector<std::string> vm_names_;
};

}  // namespace prepare
