#include "monitor/vm_monitor.h"

#include <algorithm>
#include <cmath>

namespace prepare {

VmMonitor::VmMonitor(Config config, std::uint64_t seed)
    : config_(config), rng_(seed) {}

VmMonitor::VmState& VmMonitor::state_of(const Vm& vm) {
  auto it = states_.find(vm.name());
  if (it == states_.end()) {
    it = states_
             .emplace(vm.name(),
                      VmState(config_.load1_alpha, config_.load5_alpha,
                              config_.graybox))
             .first;
  }
  return it->second;
}

double VmMonitor::noisy(double value) {
  if (config_.noise <= 0.0) return value;
  // Relative noise plus a small absolute floor so zero-valued metrics
  // still jitter like real counters do.
  const double sigma = std::abs(value) * config_.noise + 1e-3;
  return value + rng_.gaussian(0.0, sigma);
}

AttributeVector VmMonitor::sample(const Vm& vm) {
  VmState& st = state_of(vm);

  // Runnable demand relative to the allocation: >1 when the VM wants more
  // CPU than its cap (a hog or an overload), like a per-VM load average.
  const double runnable =
      vm.cpu_alloc() > 0.0 ? vm.cpu_demand() / vm.cpu_alloc() : 0.0;
  const double load1 = st.load1.update(runnable);
  const double load5 = st.load5.update(runnable);

  // Paging pressure drives major fault and context-switch rates.
  const double pressure = vm.mem_alloc() > 0.0
                              ? vm.mem_demand() / vm.mem_alloc()
                              : 0.0;
  const double paging =
      pressure > 0.9 ? (pressure - 0.9) * 4000.0 : 0.0;
  const double ctx =
      2.0 + vm.cpu_utilization() * 6.0 + paging * 0.01;  // x1000 /s

  AttributeVector v{};
  set(v, Attribute::kCpuUtil, noisy(vm.cpu_utilization() * 100.0));
  set(v, Attribute::kCpuResidual, noisy(vm.cpu_alloc() - vm.cpu_used()));
  set(v, Attribute::kLoad1, noisy(load1));
  set(v, Attribute::kLoad5, noisy(load5));
  if (config_.memory_source == MemorySource::kInGuestDaemon) {
    set(v, Attribute::kFreeMem, noisy(vm.free_mem()));
    set(v, Attribute::kMemUtil,
        noisy(vm.mem_alloc() > 0.0
                  ? vm.mem_used() / vm.mem_alloc() * 100.0
                  : 0.0));
  } else {
    // Gray-box path: infer memory utilization from the (noisy, externally
    // visible) paging and disk signals instead of asking the guest.
    const double util_est = st.graybox.update(
        std::max(0.0, noisy(paging)), std::max(0.0, noisy(vm.disk_read())));
    const double used_est =
        std::min(vm.mem_alloc(), util_est * vm.mem_alloc());
    set(v, Attribute::kFreeMem, vm.mem_alloc() - used_est);
    set(v, Attribute::kMemUtil, used_est / vm.mem_alloc() * 100.0);
  }
  set(v, Attribute::kNetIn, noisy(vm.net_in()));
  set(v, Attribute::kNetOut, noisy(vm.net_out()));
  set(v, Attribute::kDiskRead, noisy(vm.disk_read()));
  set(v, Attribute::kDiskWrite, noisy(vm.disk_write()));
  set(v, Attribute::kPageFaults, std::max(0.0, noisy(paging)));
  set(v, Attribute::kCtxSwitches, std::max(0.0, noisy(ctx)));
  set(v, Attribute::kRunQueue, std::max(0.0, noisy(runnable * 3.0)));
  return v;
}

}  // namespace prepare
