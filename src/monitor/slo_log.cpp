#include "monitor/slo_log.h"

#include <algorithm>

#include "common/check.h"

namespace prepare {

void SloLog::record(double time, double dt, bool violated,
                    double slo_metric) {
  PREPARE_CHECK(dt > 0.0);
  metric_trace_.append(time, slo_metric);
  if (violated && !open_) {
    open_ = true;
    open_start_ = time;
  } else if (!violated && open_) {
    closed_.push_back({open_start_, time});
    open_ = false;
  }
  last_time_ = time + dt;
}

bool SloLog::violated_at(double t) const {
  for (const auto& iv : closed_)
    if (t >= iv.start && t < iv.end) return true;
  return open_ && t >= open_start_ && t < last_time_;
}

double SloLog::violation_time(double t0, double t1) const {
  PREPARE_CHECK(t1 >= t0);
  double total = 0.0;
  auto overlap = [&](double s, double e) {
    const double lo = std::max(s, t0);
    const double hi = std::min(e, t1);
    return std::max(0.0, hi - lo);
  };
  for (const auto& iv : closed_) total += overlap(iv.start, iv.end);
  if (open_) total += overlap(open_start_, last_time_);
  return total;
}

double SloLog::total_violation_time() const {
  double total = 0.0;
  for (const auto& iv : closed_) total += iv.duration();
  if (open_) total += last_time_ - open_start_;
  return total;
}

std::vector<SloLog::Interval> SloLog::intervals() const {
  std::vector<Interval> out = closed_;
  if (open_) out.push_back({open_start_, last_time_});
  return out;
}

void SloLog::clear() {
  closed_.clear();
  open_ = false;
  open_start_ = last_time_ = 0.0;
  metric_trace_.clear();
}

}  // namespace prepare
