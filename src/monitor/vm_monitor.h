// Out-of-band VM monitor: the libxenstat stand-in.
//
// Reads usage out of a simulated Vm the way PREPARE's monitoring module
// reads a Xen domain from dom0 — allocation and usage only, with
// measurement noise, never application internals. Load averages and the
// paging/context-switch rates are derived the way a real kernel exposes
// them (EWMAs of runnable demand, pressure-driven fault rate).
#pragma once

#include <map>
#include <string>

#include "common/rng.h"
#include "common/stats.h"
#include "monitor/attributes.h"
#include "monitor/memory_estimator.h"
#include "sim/vm.h"

namespace prepare {

/// Where the guest memory attributes (free_mem, mem_util) come from:
///  * kInGuestDaemon — the paper's default: a light daemon inside the
///    guest reports real usage (/proc);
///  * kGrayboxInference — the Section V alternative: usage is inferred
///    from externally visible paging signals, no guest cooperation.
enum class MemorySource { kInGuestDaemon, kGrayboxInference };

struct VmMonitorConfig {
  /// Relative gaussian measurement noise applied to every attribute.
  double noise = 0.02;
  /// EWMA horizon factors; with a 5 s sampling interval these give
  /// roughly 1-minute and 5-minute load averages.
  double load1_alpha = 0.08;
  double load5_alpha = 0.017;
  MemorySource memory_source = MemorySource::kInGuestDaemon;
  GrayboxMemoryConfig graybox;
};

class VmMonitor {
 public:
  using Config = VmMonitorConfig;

  explicit VmMonitor(Config config = {}, std::uint64_t seed = 11);

  /// Takes one sample of `vm`. Must be called once per sampling interval
  /// per VM (it advances the per-VM EWMA state).
  AttributeVector sample(const Vm& vm);

  const Config& config() const { return config_; }

 private:
  struct VmState {
    Ewma load1;
    Ewma load5;
    GrayboxMemoryEstimator graybox;
    VmState(double a1, double a5, const GrayboxMemoryConfig& g)
        : load1(a1), load5(a5), graybox(g) {}
  };

  VmState& state_of(const Vm& vm);
  double noisy(double value);

  Config config_;
  Rng rng_;
  std::map<std::string, VmState> states_;
};

}  // namespace prepare
