#include "monitor/labeler.h"

#include <limits>

namespace prepare {

std::vector<LabeledSample> Labeler::label(const MetricStore& store,
                                          const SloLog& slo,
                                          const std::string& vm_name,
                                          double t0, double t1) {
  std::vector<LabeledSample> out;
  const std::size_t n = store.sample_count(vm_name);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = store.sample_time(vm_name, i);
    if (t < t0 || t > t1) continue;
    out.push_back({t, store.sample(vm_name, i), slo.violated_at(t)});
  }
  return out;
}

std::vector<LabeledSample> Labeler::label_all(const MetricStore& store,
                                              const SloLog& slo,
                                              const std::string& vm_name) {
  return label(store, slo, vm_name, -std::numeric_limits<double>::infinity(),
               std::numeric_limits<double>::infinity());
}

}  // namespace prepare
