#include "monitor/trace_io.h"

#include <algorithm>

#include <string>
#include <vector>

#include "common/check.h"
#include "common/csv.h"

namespace prepare {

void save_metric_store_csv(const MetricStore& store,
                           const std::string& path) {
  std::vector<std::string> header = {"time_s", "vm"};
  for (std::size_t a = 0; a < kAttributeCount; ++a)
    header.push_back(attribute_name(static_cast<Attribute>(a)));
  CsvWriter csv(path, header);
  // All VMs share the sampling loop; emit rows grouped by sample index
  // so the file reads chronologically.
  std::size_t max_samples = 0;
  for (const auto& vm : store.vm_names())
    max_samples = std::max(max_samples, store.sample_count(vm));
  for (std::size_t i = 0; i < max_samples; ++i) {
    for (const auto& vm : store.vm_names()) {
      if (i >= store.sample_count(vm)) continue;
      std::vector<std::string> row;
      row.push_back(format_number(store.sample_time(vm, i)));
      row.push_back(vm);
      const auto values = store.sample(vm, i);
      for (double v : values) row.push_back(format_number(v));
      csv.row(row);
    }
  }
}

MetricStore load_metric_store_csv(const std::string& path) {
  CsvReader csv(path);
  const std::size_t time_col = csv.column("time_s");
  const std::size_t vm_col = csv.column("vm");
  std::vector<std::size_t> attr_cols(kAttributeCount);
  for (std::size_t a = 0; a < kAttributeCount; ++a)
    attr_cols[a] = csv.column(attribute_name(static_cast<Attribute>(a)));

  MetricStore store;
  std::vector<std::string> fields;
  while (csv.next(&fields)) {
    AttributeVector values{};
    for (std::size_t a = 0; a < kAttributeCount; ++a)
      values[a] = std::stod(fields[attr_cols[a]]);
    store.record(fields[vm_col], std::stod(fields[time_col]), values);
  }
  return store;
}

void save_slo_log_csv(const SloLog& slo, const std::string& path) {
  CsvWriter csv(path, {"time_s", "dt_s", "violated", "slo_metric"});
  const auto& trace = slo.metric_trace();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const double t = trace.at(i).time;
    const double dt = i + 1 < trace.size()
                          ? trace.at(i + 1).time - t
                          : slo.last_time() - t;
    csv.row(std::vector<std::string>{
        format_number(t), format_number(dt),
        slo.violated_at(t) ? "1" : "0", format_number(trace.at(i).value)});
  }
}

SloLog load_slo_log_csv(const std::string& path) {
  CsvReader csv(path);
  const std::size_t time_col = csv.column("time_s");
  const std::size_t dt_col = csv.column("dt_s");
  const std::size_t violated_col = csv.column("violated");
  const std::size_t metric_col = csv.column("slo_metric");
  SloLog slo;
  std::vector<std::string> fields;
  while (csv.next(&fields)) {
    slo.record(std::stod(fields[time_col]), std::stod(fields[dt_col]),
               fields[violated_col] == "1", std::stod(fields[metric_col]));
  }
  return slo;
}

}  // namespace prepare
