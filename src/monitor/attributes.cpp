#include "monitor/attributes.h"

#include "common/check.h"

namespace prepare {

namespace {
const std::array<std::string, kAttributeCount> kNames = {
    "cpu_util",   "cpu_residual", "load1",        "load5",
    "free_mem",   "mem_util",     "net_in",       "net_out",
    "disk_read",  "disk_write",   "page_faults",  "ctx_switches",
    "run_queue",
};
}  // namespace

const std::string& attribute_name(Attribute a) {
  const auto i = static_cast<std::size_t>(a);
  PREPARE_CHECK(i < kAttributeCount);
  return kNames[i];
}

Attribute attribute_from_name(const std::string& name) {
  for (std::size_t i = 0; i < kAttributeCount; ++i)
    if (kNames[i] == name) return static_cast<Attribute>(i);
  PREPARE_CHECK_MSG(false, "unknown attribute name: " + name);
  return Attribute::kCpuUtil;  // unreachable
}

}  // namespace prepare
