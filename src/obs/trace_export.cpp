#include "obs/trace_export.h"

#include "common/check.h"
#include "obs/json.h"

namespace prepare {
namespace obs {

void write_run_header(std::ostream& os, const RunInfo& info) {
  PREPARE_CHECK_MSG(!info.run_id.empty(), "run header needs a run_id");
  JsonObject record(os);
  record.field("record", "run")
      .field("schema", kObsSchemaVersion)
      .field("run_id", info.run_id)
      .field("sim_time_end", info.sim_time_end);
  for (const auto& [key, value] : info.labels) record.field(key, value);
}

void write_metrics_jsonl(std::ostream& os, const MetricsRegistry& registry,
                         const std::string& run_id, double sim_time) {
  for (const auto& [name, counter] : registry.counters()) {
    JsonObject(os)
        .field("record", "metric")
        .field("run_id", run_id)
        .field("t", sim_time)
        .field("name", name)
        .field("type", "counter")
        .field("value", counter.value());
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    JsonObject(os)
        .field("record", "metric")
        .field("run_id", run_id)
        .field("t", sim_time)
        .field("name", name)
        .field("type", "gauge")
        .field("value", gauge.value());
  }
  for (const auto& [name, histogram] : registry.histograms()) {
    JsonObject(os)
        .field("record", "histogram")
        .field("run_id", run_id)
        .field("t", sim_time)
        .field("name", name)
        .field("count", static_cast<std::uint64_t>(histogram.count()))
        .field("sum", histogram.sum())
        .field("min", histogram.min())
        .field("max", histogram.max())
        .field("p50", histogram.quantile(0.50))
        .field("p90", histogram.quantile(0.90))
        .field("p99", histogram.quantile(0.99));
  }
}

}  // namespace obs
}  // namespace prepare
