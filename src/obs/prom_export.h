// Prometheus/OpenMetrics text exposition for the MetricsRegistry.
//
// Renders a MetricsRegistry::Snapshot in the Prometheus text format
// (version 0.0.4), the lingua franca every scrape-based collector
// understands:
//
//   * counters  -> `# TYPE <name> counter` with a `_total`-suffixed name;
//   * gauges    -> `# TYPE <name> gauge`;
//   * histograms-> `# TYPE <name> summary` with quantile samples
//                  (0.5/0.9/0.99) plus `_sum` and `_count` — summaries,
//                  not Prometheus histograms, because our log-bucketed
//                  layout already answers quantiles and exposing raw
//                  bucket edges would leak an implementation detail.
//
// Registry names are dot-separated ("controller.alerts_raw"); the
// exporter maps them to the prom grammar: dots and other invalid
// characters become underscores and everything gains a `prepare_`
// namespace prefix, e.g. `prepare_controller_alerts_raw_total`.
//
// tools/check_prom_text.py validates the output grammar in CI.
#pragma once

#include <ostream>
#include <string>

#include "obs/metrics.h"

namespace prepare {
namespace obs {

/// Maps a registry metric name onto the prom identifier grammar
/// ([a-zA-Z_:][a-zA-Z0-9_:]*): invalid characters become '_' and the
/// "prepare_" prefix is prepended (unless already present).
std::string prom_metric_name(const std::string& name);

/// Writes the snapshot in Prometheus text exposition format 0.0.4.
void write_prom_text(std::ostream& os,
                     const MetricsRegistry::Snapshot& snapshot);

}  // namespace obs
}  // namespace prepare
