// Metrics registry: named counters, gauges, and log-bucketed histograms.
//
// PREPARE's evaluation is about observing the predict → diagnose →
// prevent loop (Table 1 overhead, alert lead times, action counts), so
// the reproduction needs a way to measure itself. This registry is that
// substrate:
//
//  * Counter   — monotonically accumulating value (events, actions);
//  * Gauge     — last-written value (allocations, sim time);
//  * Histogram — log-bucketed distribution with p50/p90/p99 queries
//                (stage wall times). Relative quantile error is bounded
//                by the bucket growth factor (default 1.1 ≈ ±10%).
//
// Instruments register by name (dot-separated, see README
// "Observability" for the naming scheme) and keep the returned pointer:
// registration is a map lookup, but recording through a cached pointer
// is a couple of arithmetic ops — cheap enough for per-tick use.
// Pointers stay valid for the registry's lifetime (reset() clears
// values, not registrations).
//
// Thread safety: recording is safe from any number of threads — the
// parallel per-VM prediction driver hammers stage histograms and
// controller counters concurrently (see DESIGN.md "Concurrency model &
// locking discipline"). Counters and gauges are lock-free atomics;
// histograms and registration serialize on internal prepare::Mutexes.
// The whole-map read accessors (counters()/gauges()/histograms()) are
// the one exception: they are for exporters and require quiescence (no
// concurrent registration).
//
// Everything is nullable by convention: instrumented code paths hold
// `Counter*`/`Histogram*` that are nullptr when observability is off,
// and record through the null-safe helpers at the bottom. A run without
// a registry pays only a pointer test per instrumentation point.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"

namespace prepare {
namespace obs {

class Counter {
 public:
  /// Lock-free: concurrent inc() from any number of threads is safe.
  /// Accumulation uses a CAS loop on an atomic double; the usual deltas
  /// (+1.0 and other small integers) are exactly representable, so the
  /// total is independent of the interleaving — parallel runs produce
  /// bit-identical counter values.
  void inc(double delta = 1.0) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  // Atomic (not mutex-guarded): inc/value/reset are single-word
  // operations with no cross-field invariant to protect.
  std::atomic<double> value_{0.0};
};

class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  // Atomic (not mutex-guarded): last-writer-wins is the gauge contract,
  // so a plain relaxed store is all the synchronization needed.
  std::atomic<double> value_{0.0};
};

/// Log-bucketed histogram over non-negative values.
///
/// Bucket 0 holds [0, min_bound) (plus any negative input, clamped);
/// bucket i >= 1 holds [min_bound * growth^(i-1), min_bound * growth^i).
/// Exact count/sum/min/max are tracked alongside, and quantile()
/// results are clamped into [min, max] — so a one-sample histogram
/// answers every quantile exactly.
///
/// record() and the statistics queries are thread-safe (internal mutex;
/// count/sum/min/max and the bucket array move together, so atomics
/// cannot express the invariant). Bucket geometry is immutable after
/// construction and readable without the lock.
class Histogram {
 public:
  explicit Histogram(double min_bound = 1e-9, double growth = 1.1);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(double value);

  /// Quantile estimate for q in [0, 1] (0.5 = p50). Returns 0 when
  /// empty. Error is bounded by one bucket width (a factor of growth).
  double quantile(double q) const;

  std::size_t count() const {
    MutexLock lock(&mu_);
    return count_;
  }
  double sum() const {
    MutexLock lock(&mu_);
    return sum_;
  }
  double min() const {
    MutexLock lock(&mu_);
    return count_ == 0 ? 0.0 : min_;
  }
  double max() const {
    MutexLock lock(&mu_);
    return count_ == 0 ? 0.0 : max_;
  }
  double mean() const {
    MutexLock lock(&mu_);
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  double min_bound() const { return min_bound_; }
  double growth() const { return growth_; }

  /// Bucket geometry, exposed for tests and exporters. Immutable after
  /// construction, so lock-free.
  std::size_t bucket_index(double value) const;
  double bucket_lower(std::size_t index) const;
  double bucket_upper(std::size_t index) const;
  std::size_t bucket_count() const { return bounds_.size(); }

  void reset();

 private:
  double quantile_locked(double q) const PREPARE_REQUIRES(mu_);

  // Geometry: fixed at construction, never written again.
  double min_bound_;
  double growth_;
  double inv_log_growth_;
  /// bounds_[i] is the lower bound of bucket i+1 (== upper bound of
  /// bucket i); precomputed so bucket edges are bit-exact.
  std::vector<double> bounds_;

  mutable Mutex mu_;
  std::vector<std::uint64_t> buckets_
      PREPARE_GUARDED_BY(mu_);  ///< sized lazily up to bounds_+1
  std::size_t count_ PREPARE_GUARDED_BY(mu_) = 0;
  double sum_ PREPARE_GUARDED_BY(mu_) = 0.0;
  double min_ PREPARE_GUARDED_BY(mu_) = 0.0;
  double max_ PREPARE_GUARDED_BY(mu_) = 0.0;
};

/// Name → metric registry. Metric names must be unique across kinds
/// (registering "x" as both a counter and a gauge throws CheckFailure).
/// Element addresses are stable: maps are never erased, only reset.
///
/// Registration (counter()/gauge()/histogram()) is thread-safe; the
/// whole-map accessors are export-time reads that require quiescence.
class MetricsRegistry {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name, double min_bound = 1e-9,
                       double growth = 1.1);

  /// Sorted-by-name views for exporters. Quiescent-only: callers must
  /// ensure no thread registers concurrently (exporters and tests read
  /// after the run's workers have joined). Recording through already
  /// registered instruments is fine — elements are individually
  /// thread-safe and their addresses are stable.
  const std::map<std::string, Counter>& counters() const
      PREPARE_NO_THREAD_SAFETY_ANALYSIS {
    return counters_;
  }
  const std::map<std::string, Gauge>& gauges() const
      PREPARE_NO_THREAD_SAFETY_ANALYSIS {
    return gauges_;
  }
  const std::map<std::string, Histogram>& histograms() const
      PREPARE_NO_THREAD_SAFETY_ANALYSIS {
    return histograms_;
  }

  /// Point-in-time copy of every metric's value, safe to take while
  /// other threads register and record (unlike the whole-map accessors
  /// above). This is what live exporters — the metrics HTTP endpoint —
  /// scrape mid-run.
  struct Snapshot {
    struct HistogramStats {
      std::size_t count = 0;
      double sum = 0.0;
      double min = 0.0;
      double max = 0.0;
      double p50 = 0.0;
      double p90 = 0.0;
      double p99 = 0.0;
    };
    std::map<std::string, double> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramStats> histograms;
  };
  Snapshot snapshot() const;

  /// Zeroes every metric in place. Registrations (and thus cached
  /// pointers) survive — use between repeated runs sharing a registry.
  void reset();

 private:
  void check_unregistered_locked(const std::string& name,
                                 const char* kind) const
      PREPARE_REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, Counter> counters_ PREPARE_GUARDED_BY(mu_);
  std::map<std::string, Gauge> gauges_ PREPARE_GUARDED_BY(mu_);
  std::map<std::string, Histogram> histograms_ PREPARE_GUARDED_BY(mu_);
};

// Null-safe recording helpers: instrumented code holds nullptr handles
// when no registry is attached, and these compile down to a test+skip.
inline void inc(Counter* counter, double delta = 1.0) {
  if (counter != nullptr) counter->inc(delta);
}
inline void set(Gauge* gauge, double value) {
  if (gauge != nullptr) gauge->set(value);
}
inline void observe(Histogram* histogram, double value) {
  if (histogram != nullptr) histogram->record(value);
}

// Null-safe registration helpers for optional registries.
inline Counter* counter(MetricsRegistry* registry, const std::string& name) {
  return registry == nullptr ? nullptr : registry->counter(name);
}
inline Gauge* gauge(MetricsRegistry* registry, const std::string& name) {
  return registry == nullptr ? nullptr : registry->gauge(name);
}
inline Histogram* histogram(MetricsRegistry* registry,
                            const std::string& name) {
  return registry == nullptr ? nullptr : registry->histogram(name);
}

}  // namespace obs
}  // namespace prepare
