// Episode flight recorder: the decision-evidence "black box".
//
// The SpanTracer (obs/span_tracer.h) records *that* an alert episode
// moved through the pipeline; this class records *what the decisions
// were computed from*. Per VM it keeps a fixed-capacity ring of the
// last W ticks of decision evidence — the raw 13-attribute metric
// vector, its discretized bins, the Markov-predicted final-step value
// distributions, the TAN log-odds score with its per-attribute L_i
// contributions, the alarm-filter raw/confirmed flags, and (when the
// calibration stride sampled them) the per-horizon-step anomaly
// probabilities. When a SpanTracer episode closes, the pre-alert ring
// context plus every tick of the episode is flushed into a
// self-contained *episode bundle*, together with the cause-inference
// ranking and every prevention decision input. Bundles are exported as
// trace schema v4 `episode_evidence` records (obs/trace_export.h) and
// are complete enough that core/replay.h can re-run
// predict -> classify -> filter -> prevention bit-identically offline —
// the determinism proof that nothing the controller used is missing.
//
// Threading and determinism contract: identical to the SpanTracer. The
// recorder is PREPARE_DRIVER_CONFINED — the controller feeds it only
// from the serial sections of a management round, in deterministic
// (map) VM order, so a --threads 4 run produces byte-identical bundles
// to --threads 1. The steady-state entry point record_tick() is
// PREPARE_HOT: after register_vm() pre-sizes the ring (and
// episode_opened() pre-sizes the open capture), it only copies into
// capacity-steady storage — the analyzer proves it allocation-, lock-
// and IO-free.
//
// Memory accounting (defaults): ring_ticks=32 frames/VM, one frame ~
// 13 raw + 13 bins + 13 modes + 13 impacts + ~65 flattened dist
// probabilities + 24 horizon slots ~= 1.2 KB, so ~40 KB per VM of ring
// plus max_bundle_ticks frames per open capture; max_bundles caps the
// per-run retained total and further episodes count into
// recorder.dropped_total instead of growing without bound.
#pragma once

#include <cstddef>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/analyze_annotations.h"
#include "obs/metrics.h"

namespace prepare {
namespace obs {

struct FlightRecorderConfig {
  /// Ring capacity per VM (W ticks of continuous evidence).
  std::size_t ring_ticks = 32;
  /// Ticks of pre-alert context copied from the ring into a bundle when
  /// an episode opens. Must be >= the alarm filter window W (checked in
  /// set_decision_config): replay seeds its filter from the captured
  /// pre-context, so the window must be fully determined by it.
  std::size_t pre_context_ticks = 8;
  /// Longest episode fully captured; further ticks are dropped and
  /// counted in the bundle's truncated_ticks (and the recorder's
  /// truncated-ticks total).
  std::size_t max_bundle_ticks = 160;
  /// Per-run bundle cap; episodes opening beyond it are not captured
  /// and count into recorder.dropped_total.
  std::size_t max_bundles = 64;
};

/// Per-VM evidence geometry, fixed at register_vm() time. Quantile
/// discretization merges ties, so the flattened-distribution layout
/// differs per (VM, attribute).
struct EvidenceLayout {
  std::size_t attributes = 0;
  /// offsets[i] is where attribute i's final-step distribution starts
  /// in the flattened dists block; offsets[attributes] is its length.
  std::vector<std::size_t> offsets;
  /// Attribute names (export + explain tool), size `attributes`.
  std::vector<std::string> attribute_names;
  /// Maximum horizon_probs length (the look-ahead step count).
  std::size_t horizon_steps = 0;
};

/// The decision parameters a bundle must carry to be re-executable:
/// the alarm filter shape, the alert gate, and the prevention policy.
/// Plain ints where core/ owns the enum — obs/ sits below core/ in the
/// layering DAG and cannot name PreventionMode.
struct DecisionConfig {
  std::size_t filter_k = 3;
  std::size_t filter_w = 4;
  double alert_min_top_impact = 0.5;
  /// PreventionMode as int: 0 scaling-only, 1 migration-only,
  /// 2 scaling-then-migration (core/prevention.h order).
  int prevention_mode = 2;
  bool companion_scaling = true;
  double lookahead_s = 120.0;
  double sampling_interval_s = 5.0;
};

/// One tick of decision evidence, handed to record_tick() as a view
/// into the controller's per-VM Result slot (no ownership, valid for
/// the duration of the call).
struct EvidenceFrame {
  double t = 0.0;
  bool abnormal = false;
  bool raw_alert = false;
  bool confirmed = false;
  double score = 0.0;
  double prior_log_odds = 0.0;
  bool decomposable = false;
  const double* raw = nullptr;              ///< [attributes]
  const std::size_t* observed_row = nullptr;///< [attributes]
  const std::size_t* mode_row = nullptr;    ///< [attributes]
  const double* impacts = nullptr;          ///< [attributes]
  const double* dists = nullptr;            ///< [offsets.back()]
  const double* horizon_probs = nullptr;    ///< [horizon_len] or null
  std::size_t horizon_len = 0;
};

/// One stored evidence tick (owning copy of an EvidenceFrame).
struct EvidenceTick {
  double t = 0.0;
  bool valid = false;  ///< ring slot in use (warm-up / copy guard)
  bool abnormal = false;
  bool raw_alert = false;
  bool confirmed = false;
  double score = 0.0;
  double prior_log_odds = 0.0;
  bool decomposable = false;
  std::vector<double> raw;
  std::vector<std::size_t> observed_row;
  std::vector<std::size_t> mode_row;
  std::vector<double> impacts;
  std::vector<double> dists;
  std::vector<double> horizon_probs;  ///< capacity horizon_steps
  std::size_t horizon_len = 0;        ///< filled prefix of horizon_probs
};

/// Cause-inference evidence: the ranked attribution the actuator walked.
struct DiagnosisEvidence {
  bool valid = false;
  double t = 0.0;
  std::vector<std::size_t> ranked;  ///< attribute indices, top first
  std::vector<double> impacts;      ///< aligned with `ranked`
};

/// One prevention decision input: everything apply_action() looked at,
/// so replay (and a what-if policy override) can re-derive the chosen
/// action without a cluster.
struct PreventionEvidence {
  double t = 0.0;
  /// 0 = initial ranked-walk attempt, 1 = companion scaling,
  /// 2 = validation fallback attempt.
  int phase = 0;
  std::size_t attribute = 0;
  int metric_kind = 2;  ///< 0 cpu, 1 memory, 2 other
  bool scale_possible = false;
  bool migrate_possible = false;
  /// 0 none (attempt failed), 1 scaled, 2 migrated.
  int applied = 0;
};

/// A counterfactual replay annotation (attached after a what-if run so
/// the diff is exported alongside the bundle it re-executed).
struct CounterfactualNote {
  int policy = 0;           ///< the overridden prevention mode
  std::size_t compared = 0; ///< prevention decisions re-derived
  std::size_t diverged = 0; ///< decisions that changed under the policy
  std::string detail;       ///< first divergence, human-readable
};

/// One flushed episode: pre-alert context + full episode + diagnosis +
/// prevention inputs + the decision config — self-contained.
struct EpisodeBundle {
  std::string trace_id;  ///< matches the SpanTracer episode
  std::string vm;
  double t_open = 0.0;
  double t_close = 0.0;
  std::string outcome;  ///< episode_outcome_name of the closing fold
  /// Leading ticks of `ticks` that are pre-alert ring context; the
  /// remainder are episode ticks (open..close).
  std::size_t pre_ticks = 0;
  std::size_t truncated_ticks = 0;
  EvidenceLayout layout;
  DecisionConfig decision;
  std::vector<EvidenceTick> ticks;
  DiagnosisEvidence diagnosis;
  std::vector<PreventionEvidence> preventions;
  std::vector<CounterfactualNote> counterfactuals;
};

class PREPARE_DRIVER_CONFINED FlightRecorder {
 public:
  /// `metrics` (optional) receives the recorder.* instruments at
  /// finish(); it must outlive the recorder.
  explicit FlightRecorder(MetricsRegistry* metrics = nullptr,
                          FlightRecorderConfig config = FlightRecorderConfig());

  /// Snapshots the decision parameters bundles will carry. Checks
  /// pre_context_ticks >= filter_w (replay seeds its alarm filter from
  /// the captured pre-context; a shorter context would leave the first
  /// episode ticks' window underdetermined).
  void set_decision_config(const DecisionConfig& decision);

  /// Registers one VM and pre-sizes its evidence ring; returns the slot
  /// index record_tick() takes. Cold (train time, once per VM).
  std::size_t register_vm(const std::string& vm, EvidenceLayout layout);
  std::size_t registered_vms() const { return vms_.size(); }

  /// Buffers one tick of evidence into the VM's ring and, while an
  /// episode capture is open, into the open bundle. The steady-state
  /// path: pure copies into storage pre-sized by register_vm() /
  /// episode_opened().
  PREPARE_HOT void record_tick(std::size_t slot, const EvidenceFrame& frame);

  // ---- episode lifecycle (driven by the SpanTracer's hooks) ----

  /// An episode opened on `vm`: starts a capture seeded with the last
  /// pre_context_ticks ring ticks. Beyond max_bundles the capture is
  /// dropped (counted); unknown VMs are ignored.
  void episode_opened(const std::string& vm, const std::string& trace_id,
                      double now);
  /// The episode closed with a terminal outcome: flushes the capture
  /// into a bundle.
  void episode_closed(const std::string& vm, double now,
                      const char* outcome);
  /// Cause inference called it a workload change: the capture is
  /// discarded, mirroring the tracer dropping the episode.
  void episode_suppressed(const std::string& vm);

  // ---- decision evidence (controller / actuator, serial sections) ----

  /// The cause-inference ranking for an open capture (first one wins,
  /// like the tracer's cause_inferred span).
  void record_diagnosis(const std::string& vm, double t,
                        const std::size_t* ranked, const double* impacts,
                        std::size_t count);
  /// One prevention decision input (initial / companion / fallback).
  void record_prevention(const std::string& vm,
                         const PreventionEvidence& evidence);

  /// Attaches a counterfactual replay note to the bundle with this
  /// trace id (no-op if unknown). Called by the CLI after a what-if
  /// replay so the diff is exported with the evidence.
  void annotate_counterfactual(const std::string& trace_id,
                               const CounterfactualNote& note);

  /// Publishes the recorder.* metrics (run end).
  void finish();

  // ---- introspection / export (quiescent: after the run) ----

  const std::vector<EpisodeBundle>& bundles() const { return bundles_; }
  const DecisionConfig& decision_config() const { return decision_; }
  const FlightRecorderConfig& config() const { return config_; }
  std::size_t bundles_emitted() const { return bundles_.size(); }
  std::size_t dropped_total() const { return dropped_; }
  std::size_t ticks_recorded() const { return ticks_recorded_; }
  std::size_t truncated_ticks_total() const { return truncated_ticks_; }
  /// Most ticks simultaneously buffered in any VM's ring (<= ring_ticks).
  std::size_t ring_high_water() const { return ring_high_water_; }

  /// Writes the schema-v4 `episode_evidence` records: one `bundle`
  /// header, one `tick` per captured tick, one `diagnosis`, one
  /// `prevention` per decision input, and one `counterfactual` per
  /// attached note — per bundle, in flush order.
  void write_evidence_jsonl(std::ostream& os, const std::string& run_id) const;

 private:
  struct PerVm {
    std::string name;
    EvidenceLayout layout;
    std::vector<EvidenceTick> ring;
    std::size_t head = 0;    ///< next ring slot to write
    std::size_t filled = 0;  ///< valid ring ticks (<= ring_ticks)
    bool capture_open = false;
    std::size_t capture_len = 0;  ///< filled prefix of open.ticks
    EpisodeBundle open;
  };

  void size_tick(EvidenceTick* tick, const EvidenceLayout& layout) const;
  PREPARE_HOT void copy_frame(const EvidenceFrame& frame,
                              const EvidenceLayout& layout,
                              EvidenceTick* out) const;
  PerVm* find_vm(const std::string& vm);

  FlightRecorderConfig config_;
  DecisionConfig decision_;
  std::vector<PerVm> vms_;
  std::map<std::string, std::size_t> slots_;  ///< by VM name
  std::vector<EpisodeBundle> bundles_;

  // Hot-path counters are plain members (no atomics, no instrument
  // calls on the record path); finish() publishes them.
  std::size_t ticks_recorded_ = 0;
  std::size_t dropped_ = 0;
  std::size_t truncated_ticks_ = 0;
  std::size_t ring_high_water_ = 0;

  Counter* bundles_counter_ = nullptr;
  Counter* dropped_counter_ = nullptr;
  Counter* ticks_counter_ = nullptr;
  Counter* truncated_counter_ = nullptr;
  Gauge* high_water_gauge_ = nullptr;
};

}  // namespace obs
}  // namespace prepare
