#include "obs/flight_recorder.h"

#include <algorithm>
#include <string>

#include "common/check.h"
#include "common/logging.h"
#include "obs/json.h"

namespace prepare {
namespace obs {

namespace {

const char* prevention_phase_name(int phase) {
  switch (phase) {
    case 0: return "initial";
    case 1: return "companion";
    case 2: return "fallback";
  }
  return "?";
}

const char* metric_kind_name(int kind) {
  switch (kind) {
    case 0: return "cpu";
    case 1: return "memory";
    case 2: return "other";
  }
  return "?";
}

const char* applied_action_name(int applied) {
  switch (applied) {
    case 0: return "none";
    case 1: return "scale";
    case 2: return "migrate";
  }
  return "?";
}

}  // namespace

FlightRecorder::FlightRecorder(MetricsRegistry* metrics,
                               FlightRecorderConfig config)
    : config_(config),
      bundles_counter_(counter(metrics, "recorder.bundles_total")),
      dropped_counter_(counter(metrics, "recorder.dropped_total")),
      ticks_counter_(counter(metrics, "recorder.ticks_recorded_total")),
      truncated_counter_(counter(metrics, "recorder.truncated_ticks_total")),
      high_water_gauge_(gauge(metrics, "recorder.ring_high_water")) {
  PREPARE_CHECK(config_.ring_ticks > 0);
  PREPARE_CHECK(config_.max_bundle_ticks > 0);
  PREPARE_CHECK(config_.max_bundles > 0);
  PREPARE_CHECK_MSG(config_.pre_context_ticks <= config_.ring_ticks,
                    "pre-alert context cannot exceed the ring capacity");
}

void FlightRecorder::set_decision_config(const DecisionConfig& decision) {
  // Replay seeds its alarm filter from the captured pre-context; with
  // fewer than W pre ticks the filter window at the first episode tick
  // would depend on evidence the ring already evicted.
  PREPARE_CHECK_MSG(config_.pre_context_ticks >= decision.filter_w,
                    "pre_context_ticks must cover the alarm filter window");
  decision_ = decision;
}

void FlightRecorder::size_tick(EvidenceTick* tick,
                               const EvidenceLayout& layout) const {
  tick->raw.resize(layout.attributes);
  tick->observed_row.resize(layout.attributes);
  tick->mode_row.resize(layout.attributes);
  tick->impacts.resize(layout.attributes);
  tick->dists.resize(layout.offsets.back());
  tick->horizon_probs.resize(layout.horizon_steps);
  tick->horizon_len = 0;
  tick->valid = false;
}

std::size_t FlightRecorder::register_vm(const std::string& vm,
                                        EvidenceLayout layout) {
  PREPARE_CHECK_MSG(slots_.count(vm) == 0, "VM registered twice: " + vm);
  PREPARE_CHECK(layout.attributes > 0);
  PREPARE_CHECK(layout.offsets.size() == layout.attributes + 1);
  PREPARE_CHECK(layout.attribute_names.size() == layout.attributes);
  PerVm per;
  per.name = vm;
  per.layout = std::move(layout);
  per.ring.resize(config_.ring_ticks);
  for (auto& tick : per.ring) size_tick(&tick, per.layout);
  // The open-capture storage is pre-sized here too, so an episode
  // opening (and every capture append) stays allocation-free.
  per.open.ticks.resize(config_.max_bundle_ticks);
  for (auto& tick : per.open.ticks) size_tick(&tick, per.layout);
  vms_.push_back(std::move(per));
  const std::size_t slot = vms_.size() - 1;
  slots_.emplace(vm, slot);
  return slot;
}

void FlightRecorder::copy_frame(const EvidenceFrame& frame,
                                const EvidenceLayout& layout,
                                EvidenceTick* out) const {
  out->t = frame.t;
  out->abnormal = frame.abnormal;
  out->raw_alert = frame.raw_alert;
  out->confirmed = frame.confirmed;
  out->score = frame.score;
  out->prior_log_odds = frame.prior_log_odds;
  out->decomposable = frame.decomposable;
  const std::size_t n = layout.attributes;
  std::copy(frame.raw, frame.raw + n, out->raw.begin());
  std::copy(frame.observed_row, frame.observed_row + n,
            out->observed_row.begin());
  std::copy(frame.mode_row, frame.mode_row + n, out->mode_row.begin());
  std::copy(frame.impacts, frame.impacts + n, out->impacts.begin());
  std::copy(frame.dists, frame.dists + layout.offsets.back(),
            out->dists.begin());
  PREPARE_DCHECK(frame.horizon_len <= layout.horizon_steps);
  out->horizon_len = frame.horizon_len;
  if (frame.horizon_len > 0)
    std::copy(frame.horizon_probs, frame.horizon_probs + frame.horizon_len,
              out->horizon_probs.begin());
  out->valid = true;
}

void FlightRecorder::record_tick(std::size_t slot,
                                 const EvidenceFrame& frame) {
  PREPARE_DCHECK(slot < vms_.size());
  PerVm& vm = vms_[slot];
  copy_frame(frame, vm.layout, &vm.ring[vm.head]);
  vm.head = (vm.head + 1) % config_.ring_ticks;
  if (vm.filled < config_.ring_ticks) ++vm.filled;
  if (vm.filled > ring_high_water_) ring_high_water_ = vm.filled;
  ++ticks_recorded_;
  if (!vm.capture_open) return;
  if (vm.capture_len < vm.open.ticks.size()) {
    copy_frame(frame, vm.layout, &vm.open.ticks[vm.capture_len]);
    ++vm.capture_len;
  } else {
    ++vm.open.truncated_ticks;
    ++truncated_ticks_;
  }
}

FlightRecorder::PerVm* FlightRecorder::find_vm(const std::string& vm) {
  auto it = slots_.find(vm);
  return it == slots_.end() ? nullptr : &vms_[it->second];
}

void FlightRecorder::episode_opened(const std::string& vm,
                                    const std::string& trace_id,
                                    double now) {
  PerVm* per = find_vm(vm);
  if (per == nullptr) return;  // VM never registered (e.g. not trained)
  PREPARE_DCHECK(!per->capture_open)
      << "episode opened while a capture is already open on " << vm;
  if (bundles_.size() >= config_.max_bundles) {
    ++dropped_;
    return;
  }
  per->capture_open = true;
  EpisodeBundle& open = per->open;
  open.trace_id = trace_id;
  open.vm = vm;
  open.t_open = now;
  open.t_close = now;
  open.outcome.clear();
  open.truncated_ticks = 0;
  open.layout = per->layout;
  open.decision = decision_;
  open.diagnosis = DiagnosisEvidence();
  open.preventions.clear();
  open.counterfactuals.clear();
  // Seed with the pre-alert ring context, oldest first. On the
  // predicted path the controller opens the episode (via the tracer)
  // before calling record_tick for this round, so the opening tick
  // arrives through the capture path below; a reactive-fallback open
  // runs after the round's record_tick, so there the opening tick is
  // already in the ring and lands in the pre-context instead.
  const std::size_t pre = std::min(per->filled, config_.pre_context_ticks);
  for (std::size_t j = 0; j < pre; ++j) {
    const std::size_t idx =
        (per->head + config_.ring_ticks - pre + j) % config_.ring_ticks;
    open.ticks[j] = per->ring[idx];
  }
  open.pre_ticks = pre;
  per->capture_len = pre;
}

void FlightRecorder::episode_closed(const std::string& vm, double now,
                                    const char* outcome) {
  PerVm* per = find_vm(vm);
  if (per == nullptr || !per->capture_open) return;
  per->capture_open = false;
  if (bundles_.size() >= config_.max_bundles) {
    ++dropped_;
    return;
  }
  per->open.t_close = now;
  per->open.outcome = outcome;
  // Copy (not move): per->open keeps its pre-sized tick storage for the
  // next capture. Cold path — episodes close a handful of times per run.
  bundles_.push_back(per->open);
  bundles_.back().ticks.resize(per->capture_len);
}

void FlightRecorder::episode_suppressed(const std::string& vm) {
  PerVm* per = find_vm(vm);
  if (per == nullptr) return;
  per->capture_open = false;
}

void FlightRecorder::record_diagnosis(const std::string& vm, double t,
                                      const std::size_t* ranked,
                                      const double* impacts,
                                      std::size_t count) {
  PerVm* per = find_vm(vm);
  if (per == nullptr || !per->capture_open) return;
  DiagnosisEvidence& diagnosis = per->open.diagnosis;
  if (diagnosis.valid) return;  // first diagnosis wins, like the tracer
  diagnosis.valid = true;
  diagnosis.t = t;
  diagnosis.ranked.assign(ranked, ranked + count);
  diagnosis.impacts.assign(impacts, impacts + count);
}

void FlightRecorder::record_prevention(const std::string& vm,
                                       const PreventionEvidence& evidence) {
  PerVm* per = find_vm(vm);
  if (per == nullptr || !per->capture_open) return;
  per->open.preventions.push_back(evidence);
}

void FlightRecorder::annotate_counterfactual(const std::string& trace_id,
                                             const CounterfactualNote& note) {
  for (auto& bundle : bundles_) {
    if (bundle.trace_id == trace_id) {
      bundle.counterfactuals.push_back(note);
      return;
    }
  }
}

void FlightRecorder::finish() {
  inc(bundles_counter_, static_cast<double>(bundles_.size()));
  inc(dropped_counter_, static_cast<double>(dropped_));
  inc(ticks_counter_, static_cast<double>(ticks_recorded_));
  inc(truncated_counter_, static_cast<double>(truncated_ticks_));
  set(high_water_gauge_, static_cast<double>(ring_high_water_));
  if (dropped_ > 0)
    PREPARE_WARN("flight_recorder")
        << dropped_ << " episode capture(s) dropped (max_bundles="
        << config_.max_bundles << ")";
}

void FlightRecorder::write_evidence_jsonl(std::ostream& os,
                                          const std::string& run_id) const {
  for (const auto& bundle : bundles_) {
    const bool decomposable =
        !bundle.ticks.empty() && bundle.ticks.front().decomposable;
    {
      JsonObject record(os);
      record.field("record", "episode_evidence")
          .field("kind", "bundle")
          .field("run_id", run_id)
          .field("trace_id", bundle.trace_id)
          .field("vm", bundle.vm)
          .field("t_open", bundle.t_open)
          .field("t_close", bundle.t_close)
          .field("outcome", bundle.outcome)
          .field("ticks", static_cast<std::uint64_t>(bundle.ticks.size()))
          .field("pre_ticks", static_cast<std::uint64_t>(bundle.pre_ticks))
          .field("truncated_ticks",
                 static_cast<std::uint64_t>(bundle.truncated_ticks))
          .field("attributes",
                 static_cast<std::uint64_t>(bundle.layout.attributes))
          .field("filter_k",
                 static_cast<std::uint64_t>(bundle.decision.filter_k))
          .field("filter_w",
                 static_cast<std::uint64_t>(bundle.decision.filter_w))
          .field("alert_min_top_impact",
                 bundle.decision.alert_min_top_impact)
          .field("prevention_mode", bundle.decision.prevention_mode)
          .field("companion_scaling",
                 bundle.decision.companion_scaling ? 1 : 0)
          .field("lookahead_s", bundle.decision.lookahead_s)
          .field("sampling_interval_s", bundle.decision.sampling_interval_s)
          .field("decomposable", decomposable ? 1 : 0);
      for (std::size_t i = 0; i < bundle.layout.attributes; ++i)
        record.field("attr" + std::to_string(i),
                     bundle.layout.attribute_names[i]);
    }
    for (std::size_t s = 0; s < bundle.ticks.size(); ++s) {
      const EvidenceTick& tick = bundle.ticks[s];
      JsonObject record(os);
      record.field("record", "episode_evidence")
          .field("kind", "tick")
          .field("run_id", run_id)
          .field("trace_id", bundle.trace_id)
          .field("vm", bundle.vm)
          .field("seq", static_cast<std::uint64_t>(s))
          .field("t", tick.t)
          .field("phase", s < bundle.pre_ticks ? "pre" : "episode")
          .field("abnormal", tick.abnormal ? 1 : 0)
          .field("raw_alert", tick.raw_alert ? 1 : 0)
          .field("confirmed", tick.confirmed ? 1 : 0)
          .field("score", tick.score)
          .field("prior", tick.prior_log_odds)
          .field("decomposable", tick.decomposable ? 1 : 0);
      for (std::size_t i = 0; i < bundle.layout.attributes; ++i) {
        const std::string idx = std::to_string(i);
        record.field("raw" + idx, tick.raw[i]);
        record.field("bin" + idx,
                     static_cast<std::uint64_t>(tick.observed_row[i]));
        record.field("mode" + idx,
                     static_cast<std::uint64_t>(tick.mode_row[i]));
        record.field("impact" + idx, tick.impacts[i]);
        // The look-ahead distribution, compacted to the probability the
        // classified mode carried (the full distributions stay in the
        // in-memory bundle for replay).
        record.field("modep" + idx,
                     tick.dists[bundle.layout.offsets[i] + tick.mode_row[i]]);
      }
      record.field("horizon_len",
                   static_cast<std::uint64_t>(tick.horizon_len));
      for (std::size_t h = 0; h < tick.horizon_len; ++h)
        record.field("hp" + std::to_string(h + 1), tick.horizon_probs[h]);
    }
    if (bundle.diagnosis.valid) {
      JsonObject record(os);
      record.field("record", "episode_evidence")
          .field("kind", "diagnosis")
          .field("run_id", run_id)
          .field("trace_id", bundle.trace_id)
          .field("vm", bundle.vm)
          .field("t", bundle.diagnosis.t)
          .field("count",
                 static_cast<std::uint64_t>(bundle.diagnosis.ranked.size()));
      for (std::size_t r = 0; r < bundle.diagnosis.ranked.size(); ++r) {
        const std::string rank = std::to_string(r + 1);
        const std::size_t attr = bundle.diagnosis.ranked[r];
        record.field("rank" + rank + "_attr",
                     attr < bundle.layout.attribute_names.size()
                         ? bundle.layout.attribute_names[attr]
                         : "?");
        record.field("rank" + rank + "_impact", bundle.diagnosis.impacts[r]);
      }
    }
    for (const auto& prevention : bundle.preventions) {
      JsonObject record(os);
      record.field("record", "episode_evidence")
          .field("kind", "prevention")
          .field("run_id", run_id)
          .field("trace_id", bundle.trace_id)
          .field("vm", bundle.vm)
          .field("t", prevention.t)
          .field("phase", prevention_phase_name(prevention.phase))
          .field("attribute",
                 prevention.attribute < bundle.layout.attribute_names.size()
                     ? bundle.layout.attribute_names[prevention.attribute]
                     : "?")
          .field("metric_kind", metric_kind_name(prevention.metric_kind))
          .field("scale_possible", prevention.scale_possible ? 1 : 0)
          .field("migrate_possible", prevention.migrate_possible ? 1 : 0)
          .field("mode", bundle.decision.prevention_mode)
          .field("applied", applied_action_name(prevention.applied));
    }
    for (const auto& note : bundle.counterfactuals) {
      JsonObject record(os);
      record.field("record", "episode_evidence")
          .field("kind", "counterfactual")
          .field("run_id", run_id)
          .field("trace_id", bundle.trace_id)
          .field("vm", bundle.vm)
          .field("policy", note.policy)
          .field("compared", static_cast<std::uint64_t>(note.compared))
          .field("diverged", static_cast<std::uint64_t>(note.diverged))
          .field("detail", note.detail);
    }
  }
}

}  // namespace obs
}  // namespace prepare
