// Minimal JSON writing for the observability layer.
//
// The trace exporter emits JSONL: one flat JSON object per line, keys
// and scalar values only (the schema tools/check_obs_schema.py
// validates). This header provides exactly that much JSON — an escaper
// and a single-object line writer — instead of pulling in a JSON
// library the container may not have.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

namespace prepare {
namespace obs {

/// Escapes a string for use inside a JSON string literal (quotes,
/// backslashes, control characters; UTF-8 passes through untouched).
std::string json_escape(const std::string& s);

/// Formats a double as a JSON number. JSON has no NaN/Inf literals, so
/// non-finite values are emitted as null (the schema checker treats
/// null as "unavailable").
std::string json_number(double value);

/// Writes one flat JSON object as a single line. Fields are emitted in
/// call order; the closing `}\n` is written on destruction (or by
/// close()).
///
///   JsonObject(os).field("record", "event").field("t", 12.5);
class JsonObject {
 public:
  explicit JsonObject(std::ostream& os) : os_(os) { os_ << "{"; }
  ~JsonObject() { close(); }
  JsonObject(const JsonObject&) = delete;
  JsonObject& operator=(const JsonObject&) = delete;

  JsonObject& field(const std::string& key, const std::string& value);
  JsonObject& field(const std::string& key, const char* value);
  JsonObject& field(const std::string& key, double value);
  JsonObject& field(const std::string& key, std::uint64_t value);
  JsonObject& field(const std::string& key, int value);

  /// Writes `}\n`. Idempotent; further field() calls are invalid.
  void close();

 private:
  JsonObject& raw_field(const std::string& key, const std::string& raw);

  std::ostream& os_;
  bool closed_ = false;
  bool first_ = true;
};

}  // namespace obs
}  // namespace prepare
