#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace prepare {
namespace obs {

namespace {

/// Bucket upper bounds are precomputed out to this value; anything
/// larger lands in the final catch-all bucket. 1e12 on a seconds scale
/// is ~31k years — far beyond any wall time or count we record.
constexpr double kBucketRangeMax = 1e12;
constexpr std::size_t kMaxBuckets = 4096;

}  // namespace

Histogram::Histogram(double min_bound, double growth)
    : min_bound_(min_bound),
      growth_(growth),
      inv_log_growth_(1.0 / std::log(growth)) {
  PREPARE_CHECK(min_bound > 0.0);
  PREPARE_CHECK(growth > 1.0);
  double bound = min_bound;
  while (bound < kBucketRangeMax && bounds_.size() < kMaxBuckets) {
    bounds_.push_back(bound);
    bound *= growth;
  }
}

std::size_t Histogram::bucket_index(double value) const {
  if (!(value >= min_bound_)) return 0;  // negatives and NaN clamp low
  std::size_t index =
      1 + static_cast<std::size_t>(std::max(
              0.0, std::floor(std::log(value / min_bound_) *
                              inv_log_growth_)));
  index = std::min(index, bounds_.size());
  // log() rounding can land one bucket off either way at the exact
  // boundaries; fix up against the precomputed bit-exact bounds.
  while (index > 0 && value < bucket_lower(index)) --index;
  while (index < bounds_.size() && value >= bucket_upper(index)) ++index;
  return index;
}

double Histogram::bucket_lower(std::size_t index) const {
  if (index == 0) return 0.0;
  PREPARE_CHECK(index <= bounds_.size());
  return bounds_[index - 1];
}

double Histogram::bucket_upper(std::size_t index) const {
  if (index >= bounds_.size()) return std::numeric_limits<double>::infinity();
  return bounds_[index];
}

void Histogram::record(double value) {
  PREPARE_DCHECK(std::isfinite(value)) << "histogram fed " << value;
  const std::size_t index = bucket_index(value);
  // The instruments are the documented exception to the hot path's
  // no-lock/no-alloc contract: a histogram record is a short uncontended
  // critical section, and the bucket vector grows monotonically to the
  // highest bucket ever hit (bounded by the bound table), then stays.
  // prepare-analyze: allow(hot-lock): instrument-internal short lock
  MutexLock lock(&mu_);
  // prepare-analyze: allow(hot-alloc): bucket growth bounded + one-time
  if (index >= buckets_.size()) buckets_.resize(index + 1, 0);
  ++buckets_[index];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double Histogram::quantile(double q) const {
  PREPARE_CHECK(q >= 0.0 && q <= 1.0);
  MutexLock lock(&mu_);
  return quantile_locked(q);
}

double Histogram::quantile_locked(double q) const {
  if (count_ == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(std::max(
      1.0, std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  std::size_t bucket = buckets_.empty() ? 0 : buckets_.size() - 1;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      bucket = i;
      break;
    }
  }
  // Representative point of the bucket: geometric mean of its bounds
  // (arithmetic midpoint for the underflow bucket, exact max for the
  // catch-all), clamped into the exactly-tracked [min, max].
  double estimate;
  if (bucket == 0) {
    estimate = min_bound_ * 0.5;
  } else if (bucket >= bounds_.size()) {
    estimate = max_;
  } else {
    estimate = std::sqrt(bucket_lower(bucket) * bucket_upper(bucket));
  }
  return std::min(std::max(estimate, min_), max_);
}

void Histogram::reset() {
  MutexLock lock(&mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

void MetricsRegistry::check_unregistered_locked(const std::string& name,
                                                const char* kind) const {
  PREPARE_CHECK_MSG(counters_.count(name) == 0 && gauges_.count(name) == 0 &&
                        histograms_.count(name) == 0,
                    "metric '" + name + "' already registered with a "
                    "different kind (wanted " + kind + ")");
}

Counter* MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(&mu_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return &it->second;
  check_unregistered_locked(name, "counter");
  return &counters_[name];
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return &it->second;
  check_unregistered_locked(name, "gauge");
  return &gauges_[name];
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      double min_bound, double growth) {
  MutexLock lock(&mu_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return &it->second;
  check_unregistered_locked(name, "histogram");
  // try_emplace: Histogram is non-movable (it owns a mutex), so it must
  // be constructed in place; map nodes keep its address stable.
  return &histograms_.try_emplace(name, min_bound, growth).first->second;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  // Lock order: registry mutex, then each histogram's own mutex (inside
  // the stats accessors) — same order as reset(), never reversed.
  Snapshot snap;
  MutexLock lock(&mu_);
  for (const auto& [name, metric] : counters_)
    snap.counters[name] = metric.value();
  for (const auto& [name, metric] : gauges_)
    snap.gauges[name] = metric.value();
  for (const auto& [name, metric] : histograms_) {
    Snapshot::HistogramStats stats;
    stats.count = metric.count();
    stats.sum = metric.sum();
    stats.min = metric.min();
    stats.max = metric.max();
    stats.p50 = metric.quantile(0.5);
    stats.p90 = metric.quantile(0.9);
    stats.p99 = metric.quantile(0.99);
    snap.histograms[name] = stats;
  }
  return snap;
}

void MetricsRegistry::reset() {
  // Lock order: registry mutex, then each histogram's own mutex (inside
  // Histogram::reset). Nothing locks in the other direction.
  MutexLock lock(&mu_);
  for (auto& [name, metric] : counters_) metric.reset();
  for (auto& [name, metric] : gauges_) metric.reset();
  for (auto& [name, metric] : histograms_) metric.reset();
}

}  // namespace obs
}  // namespace prepare
