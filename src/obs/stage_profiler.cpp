#include "obs/stage_profiler.h"

#include <cstdio>

namespace prepare {
namespace obs {

namespace {

constexpr const char* kStagePrefix = "stage.";
constexpr const char* kStageSuffix = ".seconds";

/// stage.<name>.seconds -> <name>; empty when `metric` is not a stage
/// histogram.
std::string stage_of_metric(const std::string& metric) {
  const std::string prefix(kStagePrefix);
  const std::string suffix(kStageSuffix);
  if (metric.size() <= prefix.size() + suffix.size()) return "";
  if (metric.compare(0, prefix.size(), prefix) != 0) return "";
  if (metric.compare(metric.size() - suffix.size(), suffix.size(), suffix) !=
      0)
    return "";
  return metric.substr(prefix.size(),
                       metric.size() - prefix.size() - suffix.size());
}

}  // namespace

std::string stage_metric_name(const std::string& stage) {
  return kStagePrefix + stage + kStageSuffix;
}

Histogram* StageProfiler::stage(const std::string& name) {
  if (registry_ == nullptr) return nullptr;
  MutexLock lock(&mu_);
  for (const auto& [known, histogram] : stages_)
    if (known == name) return histogram;
  // Lock order: profiler mutex, then the registry's (inside
  // histogram()). Nothing locks in the other direction.
  Histogram* histogram = registry_->histogram(stage_metric_name(name));
  stages_.emplace_back(name, histogram);
  return histogram;
}

void write_stage_report(const MetricsRegistry& registry, std::ostream& os) {
  char line[160];
  std::snprintf(line, sizeof(line), "%-18s %8s %10s %10s %10s %10s %10s\n",
                "stage", "calls", "p50 (us)", "p90 (us)", "p99 (us)",
                "mean (us)", "total (ms)");
  os << line;
  bool any = false;
  for (const auto& [name, histogram] : registry.histograms()) {
    const std::string stage = stage_of_metric(name);
    if (stage.empty()) continue;
    any = true;
    std::snprintf(line, sizeof(line),
                  "%-18s %8zu %10.1f %10.1f %10.1f %10.1f %10.2f\n",
                  stage.c_str(), histogram.count(),
                  histogram.quantile(0.50) * 1e6,
                  histogram.quantile(0.90) * 1e6,
                  histogram.quantile(0.99) * 1e6, histogram.mean() * 1e6,
                  histogram.sum() * 1e3);
    os << line;
  }
  if (!any) os << "(no stage.* histograms recorded)\n";
}

}  // namespace obs
}  // namespace prepare
