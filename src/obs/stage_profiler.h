// Stage profiler: RAII wall-time instrumentation of the controller
// pipeline.
//
// The paper's Table 1 breaks PREPARE's runtime overhead down by module;
// the StageProfiler reproduces that view at runtime. Each named stage
// owns a `stage.<name>.seconds` histogram in the MetricsRegistry, and a
// ScopedTimer records one sample per timed scope:
//
//   obs::StageProfiler profiler(registry);            // null => no-op
//   obs::Histogram* stage = profiler.stage("tan_classify");
//   ...
//   { obs::ScopedTimer t(stage); classify(); }        // per call site
//
// Timers nest freely (each records its own full span; inner spans are
// not subtracted from outer ones) and cost two steady_clock reads per
// scope — or nothing at all when the handle is null.
#pragma once

#include <array>
#include <chrono>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/analyze_annotations.h"
#include "obs/metrics.h"

namespace prepare {
namespace obs {

// Canonical names of the seven controller pipeline stages, in pipeline
// order (monitor sample → discretize → Markov look-ahead → TAN classify
// → alarm filter → cause inference → prevention/validation). Exporters
// and the Table-1 bench key on these.
inline constexpr const char* kStageMonitorSample = "monitor_sample";
inline constexpr const char* kStageDiscretize = "discretize";
inline constexpr const char* kStageMarkovLookahead = "markov_lookahead";
inline constexpr const char* kStageTanClassify = "tan_classify";
inline constexpr const char* kStageAlarmFilter = "alarm_filter";
inline constexpr const char* kStageCauseInference = "cause_inference";
inline constexpr const char* kStagePrevention = "prevention";

inline constexpr std::array<const char*, 7> kPipelineStages = {
    kStageMonitorSample,  kStageDiscretize,     kStageMarkovLookahead,
    kStageTanClassify,    kStageAlarmFilter,    kStageCauseInference,
    kStagePrevention,
};

/// Registry name of a stage's wall-time histogram.
std::string stage_metric_name(const std::string& stage);

/// Records elapsed wall time (seconds) into a histogram on destruction
/// or stop(), whichever comes first. A null histogram disables the
/// timer entirely.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() { stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records now; the destructor then does nothing. Idempotent.
  void stop() {
    if (histogram_ == nullptr) return;
    const auto end = std::chrono::steady_clock::now();
    histogram_->record(std::chrono::duration<double>(end - start_).count());
    histogram_ = nullptr;
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// Hands out per-stage histograms registered as `stage.<name>.seconds`
/// and remembers registration order for reporting. Disabled (every
/// stage() is nullptr, every timer a no-op) when built with a null
/// registry.
///
/// stage() is thread-safe; recording through the returned histograms is
/// thread-safe too (the parallel per-VM driver times worker-side stages
/// into the same histograms). stages() is an export-time read requiring
/// quiescence.
class StageProfiler {
 public:
  explicit StageProfiler(MetricsRegistry* registry) : registry_(registry) {}

  bool enabled() const { return registry_ != nullptr; }

  /// Histogram for one stage; registers on first use. Cache the pointer
  /// on hot paths — this does a map lookup.
  Histogram* stage(const std::string& name);

  /// Convenience for cold call sites.
  ScopedTimer scoped(const std::string& name) {
    return ScopedTimer(stage(name));
  }

  /// Stages in first-use order. Quiescent-only: callers must ensure no
  /// concurrent stage() registration (reports run after workers join) —
  /// the driver-confined annotation makes the analyzer prove no worker
  /// lambda ever reaches this serial section.
  PREPARE_DRIVER_CONFINED
  const std::vector<std::pair<std::string, Histogram*>>& stages() const
      PREPARE_NO_THREAD_SAFETY_ANALYSIS {
    return stages_;
  }

 private:
  MetricsRegistry* registry_;
  mutable Mutex mu_;
  std::vector<std::pair<std::string, Histogram*>> stages_
      PREPARE_GUARDED_BY(mu_);
};

/// Table-1-style overhead report: one row per `stage.*.seconds`
/// histogram found in the registry (count, p50/p90/p99, mean, total).
void write_stage_report(const MetricsRegistry& registry, std::ostream& os);

}  // namespace obs
}  // namespace prepare
