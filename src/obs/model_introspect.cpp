#include "obs/model_introspect.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "common/logging.h"
#include "obs/json.h"

namespace prepare {
namespace obs {

namespace {

std::string bin_counter_name(std::size_t bin, const char* leaf) {
  return "model.calibration.reliability.bin" + std::to_string(bin) + "." +
         leaf;
}

}  // namespace

ModelIntrospect::ModelIntrospect(MetricsRegistry* metrics,
                                 IntrospectConfig config)
    : config_(config),
      metrics_(metrics),
      brier_gauge_(gauge(metrics, "model.calibration.brier")),
      logloss_gauge_(gauge(metrics, "model.calibration.logloss")),
      samples_counter_(counter(metrics, "model.calibration.samples_total")),
      hits_counter_(counter(metrics, "model.calibration.hits_total")),
      drift_brier_baseline_(gauge(metrics, "model.drift.brier_baseline")),
      drift_brier_recent_(gauge(metrics, "model.drift.brier_recent")),
      drift_brier_delta_(gauge(metrics, "model.drift.brier_delta")),
      drift_logloss_baseline_(gauge(metrics, "model.drift.logloss_baseline")),
      drift_logloss_recent_(gauge(metrics, "model.drift.logloss_recent")),
      drift_logloss_delta_(gauge(metrics, "model.drift.logloss_delta")),
      drift_occupancy_max_(gauge(metrics, "model.drift.occupancy_shift_max")),
      drift_occupancy_mean_(
          gauge(metrics, "model.drift.occupancy_shift_mean")),
      drift_triggered_(gauge(metrics, "model.drift.triggered")),
      drift_evaluations_(counter(metrics, "model.drift.evaluations_total")),
      drift_triggers_(counter(metrics, "model.drift.triggers_total")),
      drift_dropped_(counter(metrics, "model.drift.records_dropped_total")),
      markov_entropy_mean_(gauge(metrics, "model.markov.row_entropy.mean")),
      markov_entropy_max_(gauge(metrics, "model.markov.row_entropy.max")),
      markov_occupancy_(gauge(metrics, "model.markov.row_occupancy.ratio")),
      tan_support_min_(gauge(metrics, "model.tan.cpt_support.min")),
      tan_spread_(gauge(metrics, "model.tan.log_odds.spread")),
      probes_counter_(counter(metrics, "model.probe.runs_total")) {
  PREPARE_CHECK(config_.reliability_bins > 0)
      << "reliability histogram needs at least one bin";
  PREPARE_CHECK(config_.drift_window_rounds > 0)
      << "drift window must cover at least one round";
  PREPARE_CHECK(config_.drift_eval_period_rounds > 0)
      << "drift evaluation period must be positive";
  PREPARE_CHECK(config_.probe_period_rounds > 0)
      << "probe period must be positive";
  PREPARE_CHECK(config_.calibration_stride > 0)
      << "calibration stride must be positive";
  PREPARE_CHECK(config_.logloss_epsilon > 0.0 &&
                config_.logloss_epsilon < 0.5)
      << "log-loss clamp must be in (0, 0.5)";
  bin_n_counters_.resize(config_.reliability_bins, nullptr);
  bin_hits_counters_.resize(config_.reliability_bins, nullptr);
  for (std::size_t b = 0; b < config_.reliability_bins; ++b) {
    bin_n_counters_[b] = counter(metrics, bin_counter_name(b, "n"));
    bin_hits_counters_[b] = counter(metrics, bin_counter_name(b, "hits"));
  }
}

void ModelIntrospect::set_horizon(std::size_t steps,
                                  double sampling_interval_s) {
  PREPARE_CHECK(steps > 0) << "look-ahead horizon must be at least one step";
  PREPARE_CHECK(sampling_interval_s > 0.0)
      << "sampling interval must be positive";
  horizon_steps_ = steps;
  sampling_interval_s_ = sampling_interval_s;
  // A (re)configured horizon starts a fresh calibration ledger: pending
  // predictions made under the old geometry can no longer resolve.
  ring_.assign(steps, {});
  ring_round_.assign(steps, kNoRound);
  horizons_.assign(steps, HorizonStats());
  for (HorizonStats& h : horizons_) {
    h.bin_n.assign(config_.reliability_bins, 0);
    h.bin_hits.assign(config_.reliability_bins, 0);
  }
  round_ = 0;
  round_open_ = false;
  total_n_ = 0;
  total_hits_ = 0;
  total_brier_sum_ = 0.0;
  total_logloss_sum_ = 0.0;
  window_.clear();
}

void ModelIntrospect::set_attribute_names(std::vector<std::string> names) {
  attribute_names_ = std::move(names);
}

void ModelIntrospect::add_baseline_occupancy(
    std::size_t attribute, const std::vector<double>& bin_counts) {
  if (attribute >= occupancy_.size()) occupancy_.resize(attribute + 1);
  OccupancyState& state = occupancy_[attribute];
  if (state.baseline.size() < bin_counts.size()) {
    state.baseline.resize(bin_counts.size(), 0.0);
  }
  for (std::size_t b = 0; b < bin_counts.size(); ++b) {
    PREPARE_DCHECK_GE(bin_counts[b], 0.0)
        << "negative training bin count for attribute " << attribute;
    state.baseline[b] += bin_counts[b];
  }
}

void ModelIntrospect::record_discretizer(std::size_t attribute,
                                         std::size_t bins,
                                         double fit_occupied_ratio) {
  if (metrics_ == nullptr) return;
  const std::string name = attribute < attribute_names_.size()
                               ? attribute_names_[attribute]
                               : "attr" + std::to_string(attribute);
  set(gauge(metrics_, "model.discretizer." + name + ".bins"),
      static_cast<double>(bins));
  set(gauge(metrics_, "model.discretizer." + name + ".fit_occupied_ratio"),
      fit_occupied_ratio);
}

void ModelIntrospect::fold(std::size_t horizon_index, double p, bool hit,
                           RoundWindowEntry* entry) {
  PREPARE_DCHECK(std::isfinite(p))
      << "non-finite predicted probability at horizon step "
      << (horizon_index + 1);
  PREPARE_DCHECK_GE(p, 0.0) << "predicted probability below 0";
  PREPARE_DCHECK_LE(p, 1.0) << "predicted probability above 1";
  const double y = hit ? 1.0 : 0.0;
  const double brier = (p - y) * (p - y);
  const double clamped = std::min(std::max(p, config_.logloss_epsilon),
                                  1.0 - config_.logloss_epsilon);
  const double logloss = hit ? -std::log(clamped) : -std::log(1.0 - clamped);
  const std::size_t bins = config_.reliability_bins;
  const std::size_t bin = std::min(
      bins - 1, static_cast<std::size_t>(p * static_cast<double>(bins)));

  HorizonStats& h = horizons_[horizon_index];
  ++h.n;
  if (hit) ++h.hits;
  h.p_sum += p;
  h.brier_sum += brier;
  h.logloss_sum += logloss;
  ++h.bin_n[bin];
  if (hit) ++h.bin_hits[bin];

  ++total_n_;
  if (hit) ++total_hits_;
  total_brier_sum_ += brier;
  total_logloss_sum_ += logloss;

  entry->brier_sum += brier;
  entry->logloss_sum += logloss;
  ++entry->n;

  inc(samples_counter_);
  if (hit) inc(hits_counter_);
  inc(bin_n_counters_[bin]);
  if (hit) inc(bin_hits_counters_[bin]);
}

void ModelIntrospect::begin_round(double now, bool slo_violated) {
  PREPARE_CHECK(horizon_steps_ > 0)
      << "set_horizon() must be called before the first round";
  const std::size_t k = horizon_steps_;
  const std::size_t r = round_;

  // Resolve every pending prediction targeting this round: a path
  // recorded at round r0 targets rounds r0+1 .. r0+k, so round r is the
  // (r - r0)-th horizon step of slot r0. Oldest source round first —
  // the fold order is fixed, so the floating accumulators are
  // bit-identical for any thread count.
  RoundWindowEntry entry;
  const std::size_t depth = std::min(k, r);
  for (std::size_t h = depth; h >= 1; --h) {
    const std::size_t source = r - h;
    const std::size_t slot = source % k;
    if (ring_round_[slot] != source) continue;
    const std::vector<double>& probs = ring_[slot];
    PREPARE_DCHECK_EQ(probs.size() % k, 0u)
        << "ragged horizon-probability block in calibration ring";
    for (std::size_t base = 0; base + k <= probs.size(); base += k) {
      fold(h - 1, probs[base + h - 1], slo_violated, &entry);
    }
  }
  if (entry.n > 0) {
    window_.push_back(entry);
    while (window_.size() > config_.drift_window_rounds) {
      window_.pop_front();
    }
    // Nothing folded means the pooled ratios are unchanged, so rounds
    // that resolved no predictions skip the republish entirely.
    publish_pooled_gauges();
  }

  // Open this round's prediction slot (recycling the slot whose last
  // horizon step just resolved).
  const std::size_t slot = r % k;
  ring_[slot].clear();
  ring_round_[slot] = r;
  round_open_ = true;
  last_round_time_ = now;
  ++round_;

  if (round_ % config_.drift_eval_period_rounds == 0 &&
      total_n_ >= config_.drift_min_samples) {
    evaluate_drift(now);
  }
}

bool ModelIntrospect::calibration_due() const {
  // begin_round() already advanced round_, so the open round is
  // round_ - 1; the stride is anchored at the first round after
  // set_horizon().
  return round_open_ && (round_ - 1) % config_.calibration_stride == 0;
}

void ModelIntrospect::record_horizon_probs(const std::vector<double>& probs) {
  PREPARE_CHECK(round_open_)
      << "record_horizon_probs() outside an open round";
  PREPARE_CHECK_EQ(probs.size(), horizon_steps_)
      << "horizon-probability path length does not match the configured "
         "look-ahead depth";
  const std::size_t slot = (round_ - 1) % horizon_steps_;
  std::vector<double>& dst = ring_[slot];
  dst.insert(dst.end(), probs.begin(), probs.end());
}

void ModelIntrospect::observe_symbol(std::size_t attribute,
                                     std::size_t symbol) {
  if (attribute >= occupancy_.size()) occupancy_.resize(attribute + 1);
  OccupancyState& state = occupancy_[attribute];
  if (symbol >= state.recent_counts.size()) {
    state.recent_counts.resize(symbol + 1, 0.0);
  }
  state.recent_counts[symbol] += 1.0;
  if (state.recent_size < config_.occupancy_window) {
    state.recent_ring.push_back(static_cast<std::uint32_t>(symbol));
    ++state.recent_size;
  } else {
    // Window is full: the head slot holds the oldest symbol; evict it
    // and write the new one in place.
    const std::size_t old = state.recent_ring[state.recent_head];
    PREPARE_DCHECK_LT(old, state.recent_counts.size())
        << "occupancy window symbol escaped the count vector";
    state.recent_counts[old] -= 1.0;
    state.recent_ring[state.recent_head] = static_cast<std::uint32_t>(symbol);
    state.recent_head = (state.recent_head + 1) % config_.occupancy_window;
  }
}

bool ModelIntrospect::probe_due() const {
  return horizon_steps_ > 0 && round_ > 0 &&
         round_ % config_.probe_period_rounds == 0;
}

void ModelIntrospect::begin_probe(double now) {
  probe_markov_.assign(
      std::max(attribute_names_.size(), occupancy_.size()), ProbeAccum());
  probe_cpt_support_min_ = 0.0;
  probe_log_odds_spread_max_ = 0.0;
  probe_classifiers_ = 0;
  probe_time_ = now;
}

void ModelIntrospect::probe_markov(std::size_t attribute, double entropy_mean,
                                   double entropy_max,
                                   double occupancy_ratio) {
  PREPARE_DCHECK(std::isfinite(entropy_mean) && std::isfinite(entropy_max) &&
                 std::isfinite(occupancy_ratio))
      << "non-finite Markov probe for attribute " << attribute;
  if (attribute >= probe_markov_.size()) {
    probe_markov_.resize(attribute + 1);
  }
  ProbeAccum& accum = probe_markov_[attribute];
  accum.entropy_sum += entropy_mean;
  accum.entropy_max = std::max(accum.entropy_max, entropy_max);
  accum.occupancy_sum += occupancy_ratio;
  ++accum.samples;
}

void ModelIntrospect::probe_classifier(double cpt_support_min,
                                       double log_odds_spread) {
  PREPARE_DCHECK(std::isfinite(cpt_support_min) &&
                 std::isfinite(log_odds_spread))
      << "non-finite classifier probe";
  if (probe_classifiers_ == 0) {
    probe_cpt_support_min_ = cpt_support_min;
  } else {
    probe_cpt_support_min_ =
        std::min(probe_cpt_support_min_, cpt_support_min);
  }
  probe_log_odds_spread_max_ =
      std::max(probe_log_odds_spread_max_, log_odds_spread);
  ++probe_classifiers_;
}

void ModelIntrospect::end_probe() {
  double entropy_sum = 0.0;
  double entropy_max = 0.0;
  double occupancy_sum = 0.0;
  std::size_t samples = 0;
  for (std::size_t i = 0; i < probe_markov_.size(); ++i) {
    const ProbeAccum& accum = probe_markov_[i];
    if (accum.samples == 0) continue;
    entropy_sum += accum.entropy_sum;
    entropy_max = std::max(entropy_max, accum.entropy_max);
    occupancy_sum += accum.occupancy_sum;
    samples += accum.samples;
    if (metrics_ != nullptr) {
      const std::string name = i < attribute_names_.size()
                                   ? attribute_names_[i]
                                   : "attr" + std::to_string(i);
      const double denom = static_cast<double>(accum.samples);
      set(gauge(metrics_, "model.markov." + name + ".row_entropy"),
          accum.entropy_sum / denom);
      set(gauge(metrics_, "model.markov." + name + ".row_occupancy"),
          accum.occupancy_sum / denom);
    }
  }
  if (samples > 0) {
    const double denom = static_cast<double>(samples);
    set(markov_entropy_mean_, entropy_sum / denom);
    set(markov_entropy_max_, entropy_max);
    set(markov_occupancy_, occupancy_sum / denom);
  }
  if (probe_classifiers_ > 0) {
    set(tan_support_min_, probe_cpt_support_min_);
    set(tan_spread_, probe_log_odds_spread_max_);
  }
  inc(probes_counter_);
}

double ModelIntrospect::tv_distance(const std::vector<double>& a,
                                    const std::vector<double>& b) {
  double sum_a = 0.0;
  double sum_b = 0.0;
  for (double v : a) sum_a += v;
  for (double v : b) sum_b += v;
  if (sum_a <= 0.0 || sum_b <= 0.0) return 0.0;
  const std::size_t n = std::max(a.size(), b.size());
  double tv = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double pa = i < a.size() ? a[i] / sum_a : 0.0;
    const double pb = i < b.size() ? b[i] / sum_b : 0.0;
    tv += std::fabs(pa - pb);
  }
  return 0.5 * tv;
}

void ModelIntrospect::evaluate_drift(double now) {
  inc(drift_evaluations_);

  // Calibration drift: recent-window means vs. lifetime baseline.
  double recent_brier_sum = 0.0;
  double recent_logloss_sum = 0.0;
  std::uint64_t recent_n = 0;
  for (const RoundWindowEntry& entry : window_) {
    recent_brier_sum += entry.brier_sum;
    recent_logloss_sum += entry.logloss_sum;
    recent_n += entry.n;
  }
  PREPARE_DCHECK_GT(total_n_, 0u) << "drift evaluation before any sample";
  const double total = static_cast<double>(total_n_);
  const double baseline_brier = total_brier_sum_ / total;
  const double baseline_logloss = total_logloss_sum_ / total;
  double recent_brier = baseline_brier;
  double recent_logloss = baseline_logloss;
  if (recent_n > 0) {
    const double recent = static_cast<double>(recent_n);
    recent_brier = recent_brier_sum / recent;
    recent_logloss = recent_logloss_sum / recent;
  }
  const bool cal_triggered =
      recent_n > 0 &&
      recent_brier > baseline_brier * (1.0 + config_.drift_brier_rel_threshold) +
                         config_.drift_brier_abs_floor;

  set(drift_brier_baseline_, baseline_brier);
  set(drift_brier_recent_, recent_brier);
  set(drift_brier_delta_, recent_brier - baseline_brier);
  set(drift_logloss_baseline_, baseline_logloss);
  set(drift_logloss_recent_, recent_logloss);
  set(drift_logloss_delta_, recent_logloss - baseline_logloss);
  if (cal_triggered) inc(drift_triggers_);

  DriftRecord cal;
  cal.t = now;
  cal.kind = "calibration";
  cal.triggered = cal_triggered;
  cal.values = {
      {"brier_baseline", baseline_brier},
      {"brier_recent", recent_brier},
      {"brier_delta", recent_brier - baseline_brier},
      {"logloss_baseline", baseline_logloss},
      {"logloss_recent", recent_logloss},
      {"logloss_delta", recent_logloss - baseline_logloss},
      {"baseline_n", total},
      {"recent_n", static_cast<double>(recent_n)},
      {"window_rounds", static_cast<double>(window_.size())},
  };
  push_drift_record(std::move(cal));

  // Occupancy drift: per-attribute total-variation distance between the
  // training-time bin distribution and the recent runtime window.
  double shift_max = -1.0;
  double shift_sum = 0.0;
  std::size_t evaluated = 0;
  std::size_t top = 0;
  for (std::size_t i = 0; i < occupancy_.size(); ++i) {
    const OccupancyState& state = occupancy_[i];
    if (state.baseline.empty() || state.recent_size == 0) continue;
    const double tv = tv_distance(state.baseline, state.recent_counts);
    ++evaluated;
    shift_sum += tv;
    if (tv > shift_max) {
      shift_max = tv;
      top = i;
    }
  }
  bool occ_triggered = false;
  if (evaluated > 0) {
    occ_triggered = shift_max > config_.occupancy_shift_threshold;
    const double shift_mean = shift_sum / static_cast<double>(evaluated);
    set(drift_occupancy_max_, shift_max);
    set(drift_occupancy_mean_, shift_mean);
    if (occ_triggered) inc(drift_triggers_);

    DriftRecord occ;
    occ.t = now;
    occ.kind = "occupancy";
    occ.triggered = occ_triggered;
    occ.attribute = top < attribute_names_.size()
                        ? attribute_names_[top]
                        : "attr" + std::to_string(top);
    occ.values = {
        {"shift_max", shift_max},
        {"shift_mean", shift_mean},
        {"attributes", static_cast<double>(evaluated)},
        {"window_symbols",
         static_cast<double>(occupancy_[top].recent_size)},
    };
    push_drift_record(std::move(occ));
  }
  set(drift_triggered_, (cal_triggered || occ_triggered) ? 1.0 : 0.0);
}

void ModelIntrospect::push_drift_record(DriftRecord record) {
  if (drift_.size() >= config_.max_drift_records) {
    inc(drift_dropped_);
    if (!warned_dropped_) {
      warned_dropped_ = true;
      PREPARE_WARN("model_introspect")
          << "drift record capacity (" << config_.max_drift_records
          << ") reached at t=" << record.t
          << ": further model_drift records are dropped from the trace";
    }
    return;
  }
  drift_.push_back(std::move(record));
}

void ModelIntrospect::publish_pooled_gauges() {
  if (total_n_ == 0) return;
  const double total = static_cast<double>(total_n_);
  set(brier_gauge_, total_brier_sum_ / total);
  set(logloss_gauge_, total_logloss_sum_ / total);
}

void ModelIntrospect::finish(double now) {
  if (finished_) return;
  finished_ = true;
  finish_time_ = now;
  round_open_ = false;
  // Predictions whose target round lies past the run end never realize
  // an outcome; they are discarded with the ring.
  publish_pooled_gauges();
  if (total_n_ >= config_.drift_min_samples) {
    evaluate_drift(now);
  }
  if (metrics_ != nullptr) {
    for (std::size_t s = 0; s < horizons_.size(); ++s) {
      const HorizonStats& h = horizons_[s];
      if (h.n == 0) continue;
      const double n = static_cast<double>(h.n);
      const std::string prefix =
          "model.calibration.h" + std::to_string(s + 1);
      set(gauge(metrics_, prefix + ".brier"), h.brier_sum / n);
      set(gauge(metrics_, prefix + ".logloss"), h.logloss_sum / n);
    }
  }
}

void ModelIntrospect::write_introspection_jsonl(
    std::ostream& os, const std::string& run_id) const {
  for (std::size_t s = 0; s < horizons_.size(); ++s) {
    const HorizonStats& h = horizons_[s];
    if (h.n == 0) continue;
    const double n = static_cast<double>(h.n);
    JsonObject record(os);
    record.field("record", "calibration")
        .field("run_id", run_id)
        .field("t", finish_time_)
        .field("horizon_step", static_cast<std::uint64_t>(s + 1))
        .field("horizon_s",
               static_cast<double>(s + 1) * sampling_interval_s_)
        .field("n", static_cast<std::uint64_t>(h.n))
        .field("hits", static_cast<std::uint64_t>(h.hits))
        .field("p_mean", h.p_sum / n)
        .field("brier", h.brier_sum / n)
        .field("logloss", h.logloss_sum / n);
    for (std::size_t b = 0; b < h.bin_n.size(); ++b) {
      const std::string key = "bin" + std::to_string(b);
      record.field(key + "_n", static_cast<std::uint64_t>(h.bin_n[b]));
      record.field(key + "_hits",
                   static_cast<std::uint64_t>(h.bin_hits[b]));
    }
  }
  for (const DriftRecord& drift : drift_) {
    JsonObject record(os);
    record.field("record", "model_drift")
        .field("run_id", run_id)
        .field("t", drift.t)
        .field("kind", drift.kind)
        .field("triggered", drift.triggered ? 1 : 0);
    if (!drift.attribute.empty()) {
      record.field("attribute", drift.attribute);
    }
    for (const std::pair<std::string, double>& value : drift.values) {
      record.field(value.first, value.second);
    }
  }
}

void ModelIntrospect::write_summary(std::ostream& os) const {
  char buf[256];
  os << "model calibration (per look-ahead horizon step):\n";
  if (total_n_ == 0) {
    os << "  (no resolved predictions)\n";
  } else {
    std::snprintf(buf, sizeof(buf), "  %5s %10s %8s %9s %8s %9s %9s\n",
                  "step", "horizon_s", "n", "hit_rate", "p_mean", "brier",
                  "logloss");
    os << buf;
    for (std::size_t s = 0; s < horizons_.size(); ++s) {
      const HorizonStats& h = horizons_[s];
      if (h.n == 0) continue;
      const double n = static_cast<double>(h.n);
      std::snprintf(buf, sizeof(buf),
                    "  %5zu %10.1f %8llu %9.4f %8.4f %9.5f %9.5f\n", s + 1,
                    static_cast<double>(s + 1) * sampling_interval_s_,
                    static_cast<unsigned long long>(h.n),
                    static_cast<double>(h.hits) / n, h.p_sum / n,
                    h.brier_sum / n, h.logloss_sum / n);
      os << buf;
    }
    const double total = static_cast<double>(total_n_);
    std::snprintf(buf, sizeof(buf),
                  "  pooled: n=%llu hit_rate=%.4f brier=%.5f logloss=%.5f\n",
                  static_cast<unsigned long long>(total_n_),
                  static_cast<double>(total_hits_) / total,
                  total_brier_sum_ / total, total_logloss_sum_ / total);
    os << buf;

    os << "reliability (pooled across horizons):\n";
    const std::size_t bins = config_.reliability_bins;
    for (std::size_t b = 0; b < bins; ++b) {
      std::uint64_t bn = 0;
      std::uint64_t bh = 0;
      for (const HorizonStats& h : horizons_) {
        bn += h.bin_n[b];
        bh += h.bin_hits[b];
      }
      if (bn == 0) continue;
      const double lo = static_cast<double>(b) / static_cast<double>(bins);
      const double hi =
          static_cast<double>(b + 1) / static_cast<double>(bins);
      std::snprintf(buf, sizeof(buf),
                    "  p in [%.2f,%.2f%c  n=%-8llu hit_rate=%.4f\n", lo, hi,
                    b + 1 == bins ? ']' : ')',
                    static_cast<unsigned long long>(bn),
                    static_cast<double>(bh) / static_cast<double>(bn));
      os << buf;
    }
  }

  std::size_t triggered = 0;
  for (const DriftRecord& drift : drift_) {
    if (drift.triggered) ++triggered;
  }
  std::snprintf(buf, sizeof(buf),
                "model drift: %zu evaluation records, %zu triggered\n",
                drift_.size(), triggered);
  os << buf;
  for (const DriftRecord& drift : drift_) {
    if (!drift.triggered) continue;
    std::snprintf(buf, sizeof(buf), "  t=%.1f %s drift", drift.t,
                  drift.kind.c_str());
    os << buf;
    if (!drift.attribute.empty()) os << " (top: " << drift.attribute << ")";
    for (const std::pair<std::string, double>& value : drift.values) {
      if (value.first == "brier_recent" || value.first == "shift_max") {
        std::snprintf(buf, sizeof(buf), " %s=%.4f", value.first.c_str(),
                      value.second);
        os << buf;
      }
    }
    os << "\n";
  }
}

}  // namespace obs
}  // namespace prepare
