// Live metrics exposition endpoint: GET /metrics over HTTP/1.1.
//
// A long scenario run is opaque until it exits — this server makes the
// MetricsRegistry scrapeable while the run is in flight, in the
// Prometheus text format (obs/prom_export.h):
//
//   prepare_cli --scenario memleak --serve-metrics 9464 &
//   curl http://127.0.0.1:9464/metrics
//
// The server is deliberately minimal: one background thread, a
// single-threaded accept loop (poll with a 100 ms tick so stop() is
// prompt), one request per connection, GET only. Routes: `/metrics`
// (text exposition of a fresh registry snapshot) and `/healthz`
// ("ok\n"); everything else is 404. That is exactly enough for a
// scraper and a liveness probe, and nothing more — this is not a web
// framework.
//
// Threading: start() binds and listens on the *caller's* thread — when
// it returns true the port is accepting connections — then hands the
// socket to the background thread. The scrape path touches shared state
// only through MetricsRegistry::snapshot(), which is thread-safe by
// design. stop() joins the thread; the destructor calls stop().
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace prepare {
namespace obs {

class MetricsHttpServer {
 public:
  /// `registry` must outlive the server.
  explicit MetricsHttpServer(MetricsRegistry* registry);
  ~MetricsHttpServer();
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral), starts listening, and
  /// spawns the accept thread. Returns false (with a PREPARE_WARN) if
  /// the socket cannot be set up; true means the endpoint is live.
  bool start(int port);

  /// Signals the accept loop and joins the thread. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (resolves ephemeral port 0); 0 when not running.
  int port() const { return port_.load(std::memory_order_acquire); }

  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  void handle_connection(int fd);
  std::string render_response(const std::string& request_head) const;

  MetricsRegistry* registry_;  ///< not owned
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<int> port_{0};
  std::atomic<std::uint64_t> requests_{0};
  int listen_fd_ = -1;  ///< owned by the accept thread once started
};

}  // namespace obs
}  // namespace prepare
