#include "obs/span_tracer.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"

namespace prepare {
namespace obs {

namespace {

/// Sets (or replaces) one numeric attribute on a span.
void set_num_attr(Span* span, const std::string& key, double value) {
  for (auto& attr : span->attrs) {
    if (attr.key == key) {
      attr.number = value;
      attr.numeric = true;
      return;
    }
  }
  span->attrs.push_back(SpanAttr::num(key, value));
}

}  // namespace

const char* span_stage_name(SpanStage stage) {
  switch (stage) {
    case SpanStage::kRawAlert: return "raw_alert";
    case SpanStage::kConfirmed: return "confirmed";
    case SpanStage::kCauseInferred: return "cause_inferred";
    case SpanStage::kPreventionIssued: return "prevention_issued";
    case SpanStage::kValidated: return "validated";
    case SpanStage::kEscalated: return "escalated";
    case SpanStage::kExpired: return "expired";
  }
  return "?";
}

bool span_stage_terminal(SpanStage stage) {
  return stage == SpanStage::kValidated || stage == SpanStage::kEscalated ||
         stage == SpanStage::kExpired;
}

const char* episode_outcome_name(EpisodeOutcome outcome) {
  switch (outcome) {
    case EpisodeOutcome::kPrevented: return "prevented";
    case EpisodeOutcome::kFalseAlarm: return "false_alarm";
    case EpisodeOutcome::kEscalated: return "escalated";
    case EpisodeOutcome::kExpired: return "expired";
  }
  return "?";
}

SpanTracer::SpanTracer(MetricsRegistry* metrics, SpanTracerConfig config)
    : config_(config),
      prevented_counter_(counter(metrics, "alert.outcome.prevented")),
      false_alarm_counter_(counter(metrics, "alert.outcome.false_alarm")),
      missed_counter_(counter(metrics, "alert.outcome.missed")),
      escalated_counter_(counter(metrics, "alert.outcome.escalated")),
      expired_counter_(counter(metrics, "alert.outcome.expired")),
      suppressed_counter_(counter(metrics, "alert.suppressed_total")),
      episodes_counter_(counter(metrics, "alert.episodes_total")),
      dropped_counter_(counter(metrics, "alert.episodes_dropped_total")),
      lead_time_hist_(histogram(metrics, "alert.lead_time.seconds")),
      precision_gauge_(gauge(metrics, "alert.precision")),
      recall_gauge_(gauge(metrics, "alert.recall")),
      effectiveness_gauge_(gauge(metrics, "alert.prevention_effectiveness")) {
  PREPARE_CHECK(config_.raw_expiry_s > 0.0);
  PREPARE_CHECK(config_.idle_expiry_s > 0.0);
  PREPARE_CHECK(config_.max_episodes > 0);
}

SpanTracer::OpenState* SpanTracer::open_episode(const std::string& vm,
                                                double now,
                                                const char* source) {
  if (episodes_.size() >= config_.max_episodes) {
    inc(dropped_counter_);
    if (!warned_dropped_) {
      warned_dropped_ = true;
      PREPARE_WARN("span_tracer")
          << "episode capacity (" << config_.max_episodes
          << ") reached at t=" << now << ": episode for " << vm
          << " (and any further ones) is dropped from the trace";
    }
    return nullptr;
  }
  const std::size_t seq = ++next_seq_[vm];
  Episode episode;
  episode.trace_id = vm + "#" + std::to_string(seq);
  episode.vm = vm;
  Span root;
  root.span_id = episode.trace_id + ":0";
  root.stage = SpanStage::kRawAlert;
  root.t_start = now;
  root.t_end = now;
  root.attrs.push_back(SpanAttr::str("source", source));
  episode.spans.push_back(std::move(root));
  episodes_.push_back(std::move(episode));
  inc(episodes_counter_);

  OpenState state;
  state.index = episodes_.size() - 1;
  state.last_activity = now;
  state.last_raw = now;
  state.raw_alerts = 1;
  set_num_attr(&episodes_.back().spans.back(), "raw_alerts", 1.0);
  auto [it, inserted] = open_.insert_or_assign(vm, state);
  PREPARE_DCHECK(inserted);
  if (recorder_ != nullptr)
    recorder_->episode_opened(vm, episodes_.back().trace_id, now);
  return &it->second;
}

Span& SpanTracer::push_span(Episode* episode, SpanStage stage, double now) {
  PREPARE_DCHECK(!episode->spans.empty());
  Span& prev = episode->spans.back();
  PREPARE_DCHECK(!span_stage_terminal(prev.stage));
  prev.t_end = now;
  Span next;
  next.span_id =
      episode->trace_id + ":" + std::to_string(episode->spans.size());
  next.parent_id = prev.span_id;
  next.stage = stage;
  next.t_start = now;
  next.t_end = now;
  episode->spans.push_back(std::move(next));
  return episode->spans.back();
}

void SpanTracer::raw_alert(const std::string& vm, double now) {
  auto it = open_.find(vm);
  if (it == open_.end()) {
    open_episode(vm, now, "predicted");
    return;
  }
  OpenState& state = it->second;
  state.last_activity = now;
  state.last_raw = now;
  ++state.raw_alerts;
  Episode& episode = episodes_[state.index];
  set_num_attr(&episode.spans.front(), "raw_alerts",
               static_cast<double>(state.raw_alerts));
}

void SpanTracer::reactive_alert(const std::string& vm, double now) {
  auto it = open_.find(vm);
  if (it == open_.end()) {
    open_episode(vm, now, "reactive");
    return;
  }
  it->second.last_activity = now;
  it->second.last_raw = now;
}

void SpanTracer::confirmed(const std::string& vm, double now) {
  auto it = open_.find(vm);
  OpenState* state =
      it != open_.end() ? &it->second : open_episode(vm, now, "predicted");
  if (state == nullptr) return;
  Episode& episode = episodes_[state->index];
  state->last_activity = now;
  if (state->has_confirmed) {
    // Re-alert while the episode is already confirmed (typically during
    // an open prevention validation): refresh, don't re-transition.
    ++state->re_alerts;
    for (auto& span : episode.spans) {
      if (span.stage == SpanStage::kConfirmed) {
        set_num_attr(&span, "re_alerts",
                     static_cast<double>(state->re_alerts));
        break;
      }
    }
    return;
  }
  state->has_confirmed = true;
  state->confirmed_at = now;
  push_span(&episode, SpanStage::kConfirmed, now);
}

void SpanTracer::cause_inferred(
    const std::string& vm, double now,
    const std::vector<std::pair<std::string, double>>& top_metrics) {
  auto it = open_.find(vm);
  if (it == open_.end()) return;
  OpenState& state = it->second;
  state.last_activity = now;
  if (state.has_cause) return;  // re-diagnosis of a live episode
  state.has_cause = true;
  Span& span = push_span(&episodes_[state.index], SpanStage::kCauseInferred,
                         now);
  const std::size_t take = std::min<std::size_t>(3, top_metrics.size());
  for (std::size_t i = 0; i < take; ++i) {
    const std::string rank = std::to_string(i + 1);
    span.attrs.push_back(
        SpanAttr::str("top_metric_" + rank, top_metrics[i].first));
    span.attrs.push_back(
        SpanAttr::num("impact_" + rank, top_metrics[i].second));
  }
}

void SpanTracer::prevention_issued(const std::string& vm, double now,
                                   const std::string& action) {
  auto it = open_.find(vm);
  if (it == open_.end()) return;
  OpenState& state = it->second;
  state.last_activity = now;
  state.has_prevention = true;
  Span& span = push_span(&episodes_[state.index],
                         SpanStage::kPreventionIssued, now);
  span.attrs.push_back(SpanAttr::str("action", action));
}

void SpanTracer::validated(const std::string& vm, double now) {
  auto it = open_.find(vm);
  if (it == open_.end()) return;
  close_episode(vm, &it->second, SpanStage::kValidated, now, "",
                EpisodeOutcome::kPrevented);
}

void SpanTracer::escalated(const std::string& vm, double now,
                           const std::string& reason) {
  auto it = open_.find(vm);
  if (it == open_.end()) return;
  close_episode(vm, &it->second, SpanStage::kEscalated, now, reason,
                EpisodeOutcome::kEscalated);
}

void SpanTracer::workload_change_suppressed(const std::string& vm,
                                            double /*now*/) {
  auto it = open_.find(vm);
  if (it == open_.end()) return;
  episodes_[it->second.index].suppressed = true;
  open_.erase(it);
  ++ledger_.suppressed;
  inc(suppressed_counter_);
  if (recorder_ != nullptr) recorder_->episode_suppressed(vm);
}

void SpanTracer::observe_slo(double now, bool violated) {
  const bool rising = violated && !slo_violated_;
  slo_violated_ = violated;
  if (!rising) return;
  bool any_confirmed = false;
  for (auto& [vm, state] : open_) {
    if (!state.has_confirmed) continue;
    any_confirmed = true;
    if (state.lead_time_s >= 0.0) continue;  // first violation only
    const double lead = now - state.confirmed_at;
    if (lead < 0.0) continue;
    state.lead_time_s = lead;
    observe(lead_time_hist_, lead);
    ++ledger_.lead_time_samples;
    Episode& episode = episodes_[state.index];
    for (auto& span : episode.spans) {
      if (span.stage == SpanStage::kConfirmed) {
        set_num_attr(&span, "lead_time_s", lead);
        break;
      }
    }
  }
  if (any_confirmed) {
    ++ledger_.predicted_violations;
  } else {
    ++ledger_.missed;
    inc(missed_counter_);
  }
  update_gauges();
}

void SpanTracer::tick(double now) {
  // Collect first: close_episode erases from open_.
  std::vector<std::string> stale_raw;
  std::vector<std::string> stale_idle;
  for (const auto& [vm, state] : open_) {
    if (!state.has_confirmed) {
      if (now - state.last_raw > config_.raw_expiry_s)
        stale_raw.push_back(vm);
    } else if (now - state.last_activity > config_.idle_expiry_s) {
      stale_idle.push_back(vm);
    }
  }
  for (const auto& vm : stale_raw)
    close_episode(vm, &open_.at(vm), SpanStage::kExpired, now,
                  "not_confirmed", EpisodeOutcome::kFalseAlarm);
  for (const auto& vm : stale_idle) {
    OpenState& state = open_.at(vm);
    // A confirmed episode that was never acted on and simply went quiet
    // cried wolf; one that died mid-prevention is merely truncated.
    const EpisodeOutcome outcome = state.has_prevention
                                       ? EpisodeOutcome::kExpired
                                       : EpisodeOutcome::kFalseAlarm;
    close_episode(vm, &state, SpanStage::kExpired, now, "stalled", outcome);
  }
}

void SpanTracer::finish(double now) {
  std::vector<std::string> vms;
  vms.reserve(open_.size());
  for (const auto& [vm, state] : open_) vms.push_back(vm);
  for (const auto& vm : vms) {
    OpenState& state = open_.at(vm);
    const EpisodeOutcome outcome = state.has_confirmed
                                       ? EpisodeOutcome::kExpired
                                       : EpisodeOutcome::kFalseAlarm;
    close_episode(vm, &state, SpanStage::kExpired, now, "run_end", outcome);
  }
  update_gauges();
}

void SpanTracer::close_episode(const std::string& vm, OpenState* state,
                               SpanStage terminal, double now,
                               const std::string& reason,
                               EpisodeOutcome outcome) {
  PREPARE_DCHECK(span_stage_terminal(terminal));
  Episode& episode = episodes_[state->index];
  Span& span = push_span(&episode, terminal, now);
  if (!reason.empty()) span.attrs.push_back(SpanAttr::str("reason", reason));
  if (terminal == SpanStage::kValidated)
    span.attrs.push_back(SpanAttr::str("verdict", "effective"));
  span.attrs.push_back(
      SpanAttr::str("outcome", episode_outcome_name(outcome)));
  if (state->lead_time_s >= 0.0)
    set_num_attr(&span, "lead_time_s", state->lead_time_s);
  episode.closed = true;
  episode.outcome = outcome;
  open_.erase(vm);
  fold_outcome(outcome);
  update_gauges();
  if (recorder_ != nullptr)
    recorder_->episode_closed(vm, now, episode_outcome_name(outcome));
}

void SpanTracer::fold_outcome(EpisodeOutcome outcome) {
  switch (outcome) {
    case EpisodeOutcome::kPrevented:
      ++ledger_.prevented;
      inc(prevented_counter_);
      break;
    case EpisodeOutcome::kFalseAlarm:
      ++ledger_.false_alarm;
      inc(false_alarm_counter_);
      break;
    case EpisodeOutcome::kEscalated:
      ++ledger_.escalated;
      inc(escalated_counter_);
      break;
    case EpisodeOutcome::kExpired:
      ++ledger_.expired;
      inc(expired_counter_);
      break;
  }
}

void SpanTracer::update_gauges() {
  const double genuine =
      static_cast<double>(ledger_.prevented + ledger_.escalated);
  const double resolved =
      genuine + static_cast<double>(ledger_.false_alarm);
  if (resolved > 0.0) set(precision_gauge_, genuine / resolved);
  const double onsets = static_cast<double>(ledger_.predicted_violations +
                                            ledger_.missed);
  if (onsets > 0.0)
    set(recall_gauge_,
        static_cast<double>(ledger_.predicted_violations) / onsets);
  if (genuine > 0.0)
    set(effectiveness_gauge_,
        static_cast<double>(ledger_.prevented) / genuine);
}

bool SpanTracer::episode_open(const std::string& vm) const {
  return open_.count(vm) != 0;
}

std::vector<const Episode*> SpanTracer::episodes() const {
  std::vector<const Episode*> out;
  out.reserve(episodes_.size());
  for (const auto& episode : episodes_)
    if (!episode.suppressed) out.push_back(&episode);
  return out;
}

void SpanTracer::write_spans_jsonl(std::ostream& os,
                                   const std::string& run_id) const {
  for (const auto& episode : episodes_) {
    if (episode.suppressed) continue;
    for (const auto& span : episode.spans) {
      JsonObject record(os);
      record.field("record", "span")
          .field("run_id", run_id)
          .field("trace_id", episode.trace_id)
          .field("span_id", span.span_id)
          .field("parent_id", span.parent_id)
          .field("vm", episode.vm)
          .field("stage", span_stage_name(span.stage))
          .field("t_start", span.t_start)
          .field("t_end", span.t_end);
      for (const auto& attr : span.attrs) {
        if (attr.numeric) {
          record.field(attr.key, attr.number);
        } else {
          record.field(attr.key, attr.text);
        }
      }
    }
  }
}

}  // namespace obs
}  // namespace prepare
