// Model-introspection layer: prediction calibration, per-horizon
// accuracy, and drift observability.
//
// The stage profiler and span tracer see the pipeline from the outside
// (wall times, alert episodes, outcome counters) but never say *why* a
// prediction was confident, miscalibrated, or stale. ModelIntrospect
// closes that gap with three instruments:
//
//  1. CalibrationTracker — every per-tick predicted anomaly probability
//     is folded against the realized outcome (SLO state at the target
//     round) into Brier score, log-loss, and a fixed-bin reliability
//     histogram, kept **per look-ahead horizon step** (1..k) so the
//     accuracy decay across the paper's look-ahead window is visible.
//  2. Model-state probes — per-attribute Markov transition-row entropy
//     and row-occupancy gauges, classifier CPT support / log-odds
//     spread, discretizer bin counts, sampled on a round cadence so the
//     steady-state cost stays under the <5% overhead bar.
//  3. Drift detector — a recent-window Brier / log-loss comparison
//     against the lifetime baseline, plus a bin-occupancy shift (total
//     variation distance between the training-time and recent-window
//     symbol distributions per attribute), exposed as model.drift.*
//     gauges and structured `model_drift` JSONL records (obs schema v3;
//     v1/v2 records are unchanged).
//
// Threading contract: like the SpanTracer, the introspector is confined
// to the driver thread. The controller computes per-horizon
// probabilities *inside* the parallel per-VM fan-out (each worker
// writes only its own result slot) but folds them into this class only
// from the serial section, in deterministic VM order — so the
// calibration state, drift records, and exported JSONL are bit-identical
// for any --threads N. No wall clock enters: cadences are round
// counters, timestamps are sim time. Machine-checked: the class carries
// PREPARE_DRIVER_CONFINED and tools/prepare_analyze.py proves no
// parallel_for worker lambda can reach any of its methods.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/analyze_annotations.h"
#include "obs/metrics.h"

namespace prepare {
namespace obs {

struct IntrospectConfig {
  /// Fixed-bin reliability histogram resolution: predicted-probability
  /// bucket b covers [b/bins, (b+1)/bins) (the last bucket includes 1).
  std::size_t reliability_bins = 10;
  /// Drift window: the last this-many rounds *with resolved predictions*
  /// form the "recent" calibration sample.
  std::size_t drift_window_rounds = 48;
  /// Evaluate drift every this-many management rounds.
  std::size_t drift_eval_period_rounds = 24;
  /// Skip drift evaluations until this many predictions have resolved
  /// (a near-empty baseline makes every ratio meaningless).
  std::size_t drift_min_samples = 64;
  /// Calibration drift triggers when the recent-window mean Brier
  /// exceeds baseline * (1 + rel_threshold) + abs_floor. The absolute
  /// floor keeps a near-perfect baseline (Brier ~ 0) from turning fp
  /// noise into a trigger.
  double drift_brier_rel_threshold = 0.5;
  double drift_brier_abs_floor = 0.02;
  /// Occupancy drift triggers when some attribute's total-variation
  /// distance between baseline and recent bin occupancy exceeds this.
  double occupancy_shift_threshold = 0.25;
  /// Recent-window length (symbols per attribute, pooled across VMs)
  /// for the occupancy comparison.
  std::size_t occupancy_window = 512;
  /// Sample the model-state probes (row entropy, CPT support) every
  /// this-many management rounds.
  std::size_t probe_period_rounds = 12;
  /// Compute the fully scored per-step horizon path every this-many
  /// management rounds (1 = every round). The scored path costs extra
  /// per-step marginalizations plus k classifier evaluations per VM —
  /// roughly 20-25% on top of a bare prediction round — so the default
  /// stride amortizes it below the <5% end-to-end overhead bar while
  /// every horizon step still accumulates calibration samples at the
  /// same (strided) rate (8 divides the default 24-step horizon, so the
  /// resolution schedule stays aligned with it). Deterministic: keyed
  /// off the round counter, decided on the driver thread before the
  /// per-VM fan-out.
  std::size_t calibration_stride = 8;
  /// Capacity guard: model_drift records beyond this are dropped (and
  /// counted in model.drift.records_dropped_total).
  std::size_t max_drift_records = 4096;
  /// Log-loss clamp: predicted probabilities are clamped into
  /// [eps, 1-eps] before the log so a hard 0/1 miss stays finite.
  double logloss_epsilon = 1e-9;
};

class PREPARE_DRIVER_CONFINED ModelIntrospect {
 public:
  /// `metrics` (optional) receives the model.* instrument families; it
  /// must outlive the introspector.
  explicit ModelIntrospect(MetricsRegistry* metrics = nullptr,
                           IntrospectConfig config = IntrospectConfig());

  // ---- wiring (driver thread, before the first round) ----

  /// Look-ahead depth k (sampling intervals) and the interval length —
  /// one calibration accumulator per horizon step 1..k. Must be called
  /// before the first begin_round(); calling again resets calibration
  /// state (a retrained controller starts a fresh ledger).
  void set_horizon(std::size_t steps, double sampling_interval_s);
  /// Attribute names for per-attribute gauges and drift attribution.
  void set_attribute_names(std::vector<std::string> names);

  // ---- train-time feeds ----

  /// Adds one attribute's training-time bin occupancy (discretizer fit
  /// counts) into the occupancy-drift baseline. Pooled across VMs:
  /// call once per (VM, attribute).
  void add_baseline_occupancy(std::size_t attribute,
                              const std::vector<double>& bin_counts);
  /// Discretizer geometry gauges for one attribute: effective bin count
  /// and the fraction of bins the training data actually occupied.
  void record_discretizer(std::size_t attribute, std::size_t bins,
                          double fit_occupied_ratio);

  // ---- per-round calibration (driver thread, serial sections only) ----

  /// Starts a management round at sim time `now`. Resolves every pending
  /// prediction whose target round is this one against `slo_violated`
  /// (the realized outcome — consistent with the Labeler: a sample is
  /// abnormal iff the SLO is violated at its timestamp), then opens this
  /// round's prediction slot. Runs a drift evaluation on cadence.
  void begin_round(double now, bool slo_violated);
  /// Whether the round opened by the last begin_round() is a sampled
  /// calibration round (every `calibration_stride`-th round). The
  /// controller resolves this once on the driver thread and only then
  /// asks the predictors for the (more expensive) scored horizon path;
  /// rounds in between keep the bare prediction cost. Unsampled rounds
  /// leave their ring slot empty, which later resolutions skip.
  bool calibration_due() const;
  /// Appends one VM's predicted anomaly-probability path for the round
  /// opened by the last begin_round(): probs[h-1] is the probability at
  /// horizon step h; size must equal the configured horizon. Call in
  /// deterministic VM order.
  void record_horizon_probs(const std::vector<double>& probs);

  /// Feeds one runtime discretized symbol into the recent-occupancy
  /// window of `attribute` (pooled across VMs).
  void observe_symbol(std::size_t attribute, std::size_t symbol);

  // ---- model-state probes (round cadence) ----

  /// Whether the probe cadence is due this round; the controller guards
  /// the (mildly expensive) model sweeps with this.
  bool probe_due() const;
  void begin_probe(double now);
  /// One attribute of one VM's value predictor: mean/max smoothed-row
  /// entropy (nats, over rows with observed transitions) and the
  /// fraction of transition rows ever observed.
  void probe_markov(std::size_t attribute, double entropy_mean,
                    double entropy_max, double occupancy_ratio);
  /// One VM's classifier: minimum CPT cell support (raw smoothed count
  /// evidence) and the spread (max - min) of the per-attribute log-odds
  /// impact table.
  void probe_classifier(double cpt_support_min, double log_odds_spread);
  /// Publishes the pooled probe gauges.
  void end_probe();

  // ---- end of run ----

  /// Final drift evaluation + per-horizon gauge publication. Pending
  /// predictions whose target round lies past the run end are
  /// discarded (their outcome never realized).
  void finish(double now);

  // ---- introspection / export (quiescent: after the run) ----

  /// Per-horizon calibration accumulators (index 0 = horizon step 1).
  struct HorizonStats {
    std::uint64_t n = 0;     ///< resolved predictions
    std::uint64_t hits = 0;  ///< realized-abnormal outcomes
    double p_sum = 0.0;      ///< sum of predicted probabilities
    double brier_sum = 0.0;
    double logloss_sum = 0.0;
    std::vector<std::uint64_t> bin_n;     ///< reliability bucket counts
    std::vector<std::uint64_t> bin_hits;  ///< per-bucket realized hits
  };
  const std::vector<HorizonStats>& horizon_stats() const { return horizons_; }

  /// One drift evaluation outcome, exported as a flat `model_drift`
  /// JSONL record.
  struct DriftRecord {
    double t = 0.0;
    std::string kind;  ///< "calibration" | "occupancy"
    bool triggered = false;
    std::string attribute;  ///< top-drifting attribute (occupancy kind)
    /// Flat numeric fields (baseline/recent/delta, window sizes, ...).
    std::vector<std::pair<std::string, double>> values;
  };
  const std::vector<DriftRecord>& drift_records() const { return drift_; }

  std::size_t rounds() const { return round_; }
  std::uint64_t resolved_samples() const { return total_n_; }
  std::size_t horizon_steps() const { return horizon_steps_; }
  const IntrospectConfig& config() const { return config_; }

  /// Writes the schema-v3 introspection records: one `calibration`
  /// record per horizon step with resolved samples, then every
  /// `model_drift` record, in evaluation order.
  void write_introspection_jsonl(std::ostream& os,
                                 const std::string& run_id) const;
  /// Human-readable calibration + drift summary (--obs-summary).
  void write_summary(std::ostream& os) const;

 private:
  struct RoundWindowEntry {
    double brier_sum = 0.0;
    double logloss_sum = 0.0;
    std::uint64_t n = 0;
  };
  struct OccupancyState {
    std::vector<double> baseline;       ///< training-time bin counts
    std::vector<double> recent_counts;  ///< counts over the recent window
    /// Fixed-capacity circular window of the last `occupancy_window`
    /// symbols: grows once to capacity, then overwrites in place. This
    /// path runs per VM x attribute x tick, so it must stay
    /// allocation-free in steady state (deque chunk churn here showed
    /// up in the end-to-end overhead bar).
    std::vector<std::uint32_t> recent_ring;
    std::size_t recent_head = 0;  ///< next overwrite position once full
    std::size_t recent_size = 0;
  };

  void fold(std::size_t horizon_index, double p, bool hit,
            RoundWindowEntry* entry);
  void evaluate_drift(double now);
  void push_drift_record(DriftRecord record);
  void publish_pooled_gauges();
  /// Total-variation distance between two (unnormalized) count vectors.
  static double tv_distance(const std::vector<double>& a,
                            const std::vector<double>& b);

  IntrospectConfig config_;
  MetricsRegistry* metrics_ = nullptr;

  // Horizon geometry.
  std::size_t horizon_steps_ = 0;
  double sampling_interval_s_ = 0.0;
  std::vector<std::string> attribute_names_;

  // Pending predictions: ring of `horizon_steps_` slots. Slot r % k
  // holds round r's flat probability paths (k values per recorded VM,
  // concatenated in record order); it resolves once per subsequent
  // round until round r + k, then is recycled.
  std::vector<std::vector<double>> ring_;
  std::vector<std::size_t> ring_round_;  ///< kNoRound = slot empty
  static constexpr std::size_t kNoRound = static_cast<std::size_t>(-1);
  std::size_t round_ = 0;  ///< management rounds seen (begin_round calls)
  bool round_open_ = false;
  double last_round_time_ = 0.0;

  // Lifetime + per-horizon calibration accumulators.
  std::vector<HorizonStats> horizons_;
  std::uint64_t total_n_ = 0;
  std::uint64_t total_hits_ = 0;
  double total_brier_sum_ = 0.0;
  double total_logloss_sum_ = 0.0;

  // Drift state.
  std::deque<RoundWindowEntry> window_;  ///< rounds with resolutions
  std::vector<OccupancyState> occupancy_;
  std::vector<DriftRecord> drift_;
  bool warned_dropped_ = false;
  double finish_time_ = 0.0;
  bool finished_ = false;

  // Probe accumulators (valid between begin_probe/end_probe).
  struct ProbeAccum {
    double entropy_sum = 0.0;
    double entropy_max = 0.0;
    double occupancy_sum = 0.0;
    std::size_t samples = 0;
  };
  std::vector<ProbeAccum> probe_markov_;
  double probe_cpt_support_min_ = 0.0;
  double probe_log_odds_spread_max_ = 0.0;
  std::size_t probe_classifiers_ = 0;
  double probe_time_ = 0.0;

  // Instruments (null = uninstrumented).
  Gauge* brier_gauge_ = nullptr;
  Gauge* logloss_gauge_ = nullptr;
  Counter* samples_counter_ = nullptr;
  Counter* hits_counter_ = nullptr;
  std::vector<Counter*> bin_n_counters_;
  std::vector<Counter*> bin_hits_counters_;
  Gauge* drift_brier_baseline_ = nullptr;
  Gauge* drift_brier_recent_ = nullptr;
  Gauge* drift_brier_delta_ = nullptr;
  Gauge* drift_logloss_baseline_ = nullptr;
  Gauge* drift_logloss_recent_ = nullptr;
  Gauge* drift_logloss_delta_ = nullptr;
  Gauge* drift_occupancy_max_ = nullptr;
  Gauge* drift_occupancy_mean_ = nullptr;
  Gauge* drift_triggered_ = nullptr;
  Counter* drift_evaluations_ = nullptr;
  Counter* drift_triggers_ = nullptr;
  Counter* drift_dropped_ = nullptr;
  Gauge* markov_entropy_mean_ = nullptr;
  Gauge* markov_entropy_max_ = nullptr;
  Gauge* markov_occupancy_ = nullptr;
  Gauge* tan_support_min_ = nullptr;
  Gauge* tan_spread_ = nullptr;
  Counter* probes_counter_ = nullptr;
};

}  // namespace obs
}  // namespace prepare
