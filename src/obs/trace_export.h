// Structured trace export: metric snapshots as JSONL.
//
// One JSON object per line, schema version kObsSchemaVersion, validated
// offline by tools/check_obs_schema.py. A full run trace is composed of
//
//   1. one `run` header record (write_run_header),
//   2. the event log (EventLog::to_jsonl, sim layer),
//   3. metric + histogram snapshot records (write_metrics_jsonl).
//
// Record shapes (flat key/value only):
//
//   {"record":"run","schema":1,"run_id":ID,"sim_time_end":T,<labels...>}
//   {"record":"event","run_id":ID,"t":T,"kind":K,"subject":S,"detail":D}
//   {"record":"metric","run_id":ID,"t":T,"name":N,"type":"counter"|
//    "gauge","value":V}
//   {"record":"histogram","run_id":ID,"t":T,"name":N,"count":C,"sum":S,
//    "min":m,"max":M,"p50":…,"p90":…,"p99":…}
//
// Schema v2 adds the alert-lifecycle `span` record (see
// obs/span_tracer.h; emitted between the event and metric sections):
//
//   {"record":"span","run_id":ID,"trace_id":TR,"span_id":SP,
//    "parent_id":P,"vm":VM,"stage":STAGE,"t_start":T0,"t_end":T1,
//    <attributes...>}
//
// where `parent_id` is "" at the episode root, `stage` is one of
// raw_alert|confirmed|cause_inferred|prevention_issued|validated|
// escalated|expired (the last three terminal), and attributes are
// flat string/number pairs (source, action, reason, outcome,
// top_metric_N/impact_N, raw_alerts, re_alerts, lead_time_s, …).
// v1 records are unchanged, so v1 consumers can ignore span records.
//
// Schema v3 adds the model-introspection records (see
// obs/model_introspect.h; emitted between the span and metric
// sections):
//
//   {"record":"calibration","run_id":ID,"t":T,"horizon_step":S,
//    "horizon_s":H,"n":N,"hits":K,"p_mean":…,"brier":…,"logloss":…,
//    "bin0_n":…,"bin0_hits":…,…,"bin<B-1>_n":…,"bin<B-1>_hits":…}
//   {"record":"model_drift","run_id":ID,"t":T,"kind":"calibration"|
//    "occupancy","triggered":0|1,["attribute":A,]<numeric values…>}
//
// One calibration record per look-ahead horizon step with resolved
// predictions: n/hits are resolved-prediction and realized-abnormal
// counts, brier/logloss the mean scores, and bin<b>_n/bin<b>_hits the
// fixed-bin reliability histogram (predicted-probability bucket b
// covers [b/B, (b+1)/B); the bin counts sum to n/hits). model_drift
// records are one per drift evaluation and kind; `triggered` is a 0/1
// number (the schema has no booleans) and `attribute` names the
// top-drifting attribute for occupancy records. v1/v2 records are
// unchanged; tools/check_obs_schema.py validates all three versions.
#pragma once

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace prepare {
namespace obs {

inline constexpr int kObsSchemaVersion = 3;

/// Run identity and context for the header record. `labels` are extra
/// string fields merged into the header (app, fault, scheme, seed, …);
/// label keys must not collide with the fixed header fields.
struct RunInfo {
  std::string run_id;
  double sim_time_end = 0.0;
  std::vector<std::pair<std::string, std::string>> labels;
};

void write_run_header(std::ostream& os, const RunInfo& info);

/// Snapshots every counter, gauge, and histogram in the registry as one
/// record per metric, stamped with `sim_time`.
void write_metrics_jsonl(std::ostream& os, const MetricsRegistry& registry,
                         const std::string& run_id, double sim_time);

}  // namespace obs
}  // namespace prepare
