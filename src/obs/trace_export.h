// Structured trace export: metric snapshots as JSONL.
//
// One JSON object per line, schema version kObsSchemaVersion, validated
// offline by tools/check_obs_schema.py. A full run trace is composed of
//
//   1. one `run` header record (write_run_header),
//   2. the event log (EventLog::to_jsonl, sim layer),
//   3. metric + histogram snapshot records (write_metrics_jsonl).
//
// Record shapes (flat key/value only):
//
//   {"record":"run","schema":1,"run_id":ID,"sim_time_end":T,<labels...>}
//   {"record":"event","run_id":ID,"t":T,"kind":K,"subject":S,"detail":D}
//   {"record":"metric","run_id":ID,"t":T,"name":N,"type":"counter"|
//    "gauge","value":V}
//   {"record":"histogram","run_id":ID,"t":T,"name":N,"count":C,"sum":S,
//    "min":m,"max":M,"p50":…,"p90":…,"p99":…}
//
// Schema v2 adds the alert-lifecycle `span` record (see
// obs/span_tracer.h; emitted between the event and metric sections):
//
//   {"record":"span","run_id":ID,"trace_id":TR,"span_id":SP,
//    "parent_id":P,"vm":VM,"stage":STAGE,"t_start":T0,"t_end":T1,
//    <attributes...>}
//
// where `parent_id` is "" at the episode root, `stage` is one of
// raw_alert|confirmed|cause_inferred|prevention_issued|validated|
// escalated|expired (the last three terminal), and attributes are
// flat string/number pairs (source, action, reason, outcome,
// top_metric_N/impact_N, raw_alerts, re_alerts, lead_time_s, …).
// v1 records are unchanged, so v1 consumers can ignore span records.
//
// Schema v3 adds the model-introspection records (see
// obs/model_introspect.h; emitted between the span and metric
// sections):
//
//   {"record":"calibration","run_id":ID,"t":T,"horizon_step":S,
//    "horizon_s":H,"n":N,"hits":K,"p_mean":…,"brier":…,"logloss":…,
//    "bin0_n":…,"bin0_hits":…,…,"bin<B-1>_n":…,"bin<B-1>_hits":…}
//   {"record":"model_drift","run_id":ID,"t":T,"kind":"calibration"|
//    "occupancy","triggered":0|1,["attribute":A,]<numeric values…>}
//
// One calibration record per look-ahead horizon step with resolved
// predictions: n/hits are resolved-prediction and realized-abnormal
// counts, brier/logloss the mean scores, and bin<b>_n/bin<b>_hits the
// fixed-bin reliability histogram (predicted-probability bucket b
// covers [b/B, (b+1)/B); the bin counts sum to n/hits). model_drift
// records are one per drift evaluation and kind; `triggered` is a 0/1
// number (the schema has no booleans) and `attribute` names the
// top-drifting attribute for occupancy records. v1/v2 records are
// unchanged; tools/check_obs_schema.py validates all three versions.
//
// Schema v4 adds the flight-recorder `episode_evidence` records (see
// obs/flight_recorder.h; emitted between the introspection and metric
// sections). One episode bundle expands to a `kind` family sharing the
// owning span episode's trace_id:
//
//   {"record":"episode_evidence","kind":"bundle","run_id":ID,
//    "trace_id":TR,"vm":VM,"t_open":T0,"t_close":T1,"outcome":O,
//    "ticks":N,"pre_ticks":P,"truncated_ticks":X,"attributes":13,
//    "filter_k":k,"filter_w":W,"alert_min_top_impact":L,
//    "prevention_mode":M,"companion_scaling":0|1,"lookahead_s":…,
//    "sampling_interval_s":…,"decomposable":0|1,"attr0":NAME,…}
//   {"record":"episode_evidence","kind":"tick","run_id":ID,
//    "trace_id":TR,"vm":VM,"seq":S,"t":T,"phase":"pre"|"episode",
//    "abnormal":0|1,"raw_alert":0|1,"confirmed":0|1,"score":…,
//    "prior":…,"decomposable":0|1,"raw<i>":…,"bin<i>":…,"mode<i>":…,
//    "impact<i>":…,"modep<i>":…,"horizon_len":H,["hp1":…,…]}
//   {"record":"episode_evidence","kind":"diagnosis", … ,"t":T,
//    "count":C,"rank1_attr":NAME,"rank1_impact":…,…}
//   {"record":"episode_evidence","kind":"prevention", … ,"t":T,
//    "phase":"initial"|"companion"|"fallback","attribute":NAME,
//    "metric_kind":"cpu"|"memory"|"other","scale_possible":0|1,
//    "migrate_possible":0|1,"mode":M,"applied":"none"|"scale"|
//    "migrate"}
//   {"record":"episode_evidence","kind":"counterfactual", … ,
//    "policy":M,"compared":C,"diverged":D,"detail":TEXT}
//
// `tick` records carry exactly one raw/bin/mode/impact/modep field per
// attribute (i = 0..attributes-1); `phase:"pre"` ticks precede the
// owning span episode's root t_start (ring context), `phase:"episode"`
// ticks lie inside the episode's lifetime. The full per-attribute
// predicted distributions stay in the in-memory bundle (core/replay.h
// re-executes from there); the JSONL keeps the classified mode's
// probability per attribute. v1-v3 records are unchanged;
// tools/check_obs_schema.py validates all four versions.
#pragma once

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace prepare {
namespace obs {

inline constexpr int kObsSchemaVersion = 4;

/// Run identity and context for the header record. `labels` are extra
/// string fields merged into the header (app, fault, scheme, seed, …);
/// label keys must not collide with the fixed header fields.
struct RunInfo {
  std::string run_id;
  double sim_time_end = 0.0;
  std::vector<std::pair<std::string, std::string>> labels;
};

void write_run_header(std::ostream& os, const RunInfo& info);

/// Snapshots every counter, gauge, and histogram in the registry as one
/// record per metric, stamped with `sim_time`.
void write_metrics_jsonl(std::ostream& os, const MetricsRegistry& registry,
                         const std::string& run_id, double sim_time);

}  // namespace obs
}  // namespace prepare
