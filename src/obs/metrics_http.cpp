#include "obs/metrics_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "obs/prom_export.h"

namespace prepare {
namespace obs {

namespace {

constexpr int kPollIntervalMs = 100;
constexpr std::size_t kMaxRequestBytes = 4096;

/// Adapters for the two strerror_r contracts: XSI returns int (0 on
/// success), GNU returns the message pointer (which may ignore `buf`).
inline const char* strerror_adapt(int rc, const char* buf) {
  return rc == 0 ? buf : "unknown error";
}
inline const char* strerror_adapt(const char* text, const char*) {
  return text;
}

/// strerror() keeps process-global state (concurrency-mt-unsafe); the
/// serve thread logs while the driver may be formatting its own errors,
/// so route through the reentrant variant.
std::string errno_text(int err) {
  char buf[128];
  buf[0] = '\0';
  return strerror_adapt(::strerror_r(err, buf, sizeof(buf)), buf);
}

/// Writes the whole buffer, retrying short writes. MSG_NOSIGNAL so a
/// peer that hung up yields EPIPE instead of killing the process.
void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer gone; nothing useful to do
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string http_response(const char* status, const char* content_type,
                          const std::string& body) {
  std::ostringstream os;
  os << "HTTP/1.1 " << status << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n"
     << "\r\n"
     << body;
  return os.str();
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(MetricsRegistry* registry)
    : registry_(registry) {}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

bool MetricsHttpServer::start(int port) {
  if (running_.load(std::memory_order_acquire)) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    PREPARE_WARN("metrics_http") << "socket() failed: "
                                 << errno_text(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    PREPARE_WARN("metrics_http") << "bind(127.0.0.1:" << port
                                 << ") failed: " << errno_text(errno);
    ::close(fd);
    return false;
  }
  if (::listen(fd, 16) < 0) {
    PREPARE_WARN("metrics_http") << "listen() failed: "
                                 << errno_text(errno);
    ::close(fd);
    return false;
  }
  // Resolve the bound port before the thread starts, so callers that
  // passed port 0 can read the real one as soon as start() returns.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    port_.store(static_cast<int>(ntohs(bound.sin_port)),
                std::memory_order_release);

  listen_fd_ = fd;
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void MetricsHttpServer::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
  port_.store(0, std::memory_order_release);
}

void MetricsHttpServer::serve_loop() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      PREPARE_WARN("metrics_http") << "poll() failed: "
                                   << errno_text(errno);
      break;
    }
    if (ready == 0 || (pfd.revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    handle_connection(conn);
    ::close(conn);
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void MetricsHttpServer::handle_connection(int fd) {
  // One short read is enough: we only route on the request line, and a
  // plain GET from curl or a scraper fits in the first segment.
  char buf[kMaxRequestBytes];
  const ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
  if (n <= 0) return;
  buf[n] = '\0';
  std::string head(buf);
  const std::size_t eol = head.find("\r\n");
  if (eol != std::string::npos) head.resize(eol);
  send_all(fd, render_response(head));
  requests_.fetch_add(1, std::memory_order_relaxed);
}

std::string MetricsHttpServer::render_response(
    const std::string& request_head) const {
  const bool is_get = request_head.rfind("GET ", 0) == 0;
  std::string target;
  if (is_get) {
    const std::size_t end = request_head.find(' ', 4);
    target = request_head.substr(4, end == std::string::npos
                                        ? std::string::npos
                                        : end - 4);
  }
  if (!is_get)
    return http_response("405 Method Not Allowed", "text/plain",
                         "method not allowed\n");
  if (target == "/healthz")
    return http_response("200 OK", "text/plain", "ok\n");
  if (target == "/metrics") {
    std::ostringstream body;
    write_prom_text(body, registry_->snapshot());
    return http_response("200 OK",
                         "text/plain; version=0.0.4; charset=utf-8",
                         body.str());
  }
  return http_response("404 Not Found", "text/plain", "not found\n");
}

}  // namespace obs
}  // namespace prepare
