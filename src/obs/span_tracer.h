// Alert-lifecycle span tracing: causal episodes through the pipeline.
//
// The aggregate counters in the MetricsRegistry can say *how many*
// alerts fired; they cannot answer "what happened to alert X and did
// the prevention actually help?". The SpanTracer closes that gap: every
// alert episode gets a deterministic trace id, and each pipeline
// transition becomes a child span of the previous one:
//
//   raw_alert -> confirmed -> cause_inferred -> prevention_issued
//                                   |                  | (fallback loop)
//                                   v                  v
//                       validated / escalated / expired   (terminal)
//
// Spans carry structured attributes (VM, top-impact metrics from the
// TAN attribution, lead time vs. the first SLO violation, the chosen
// prevention action, the validation verdict) and are exported as
// `span` records in the JSONL trace (schema v2, see obs/trace_export.h).
//
// An online outcome ledger folds every closed episode into per-run
// metrics:
//
//   alert.outcome.{prevented,false_alarm,missed,escalated,expired}
//   alert.lead_time.seconds            (histogram)
//   alert.precision / alert.recall / alert.prevention_effectiveness
//
// Threading contract: the tracer is confined to the driver thread, like
// everything in sim/ (see DESIGN.md section 10). The controller calls it
// only from the serial sections of a management round — never from the
// per-VM prediction fan-out — so a parallel run produces a bit-identical
// span set. Machine-checked: the class carries PREPARE_DRIVER_CONFINED
// and tools/prepare_analyze.py proves no parallel_for worker lambda can
// reach any of its methods. The metrics it publishes go through the thread-safe obs::
// instruments and may be scraped live by the metrics HTTP endpoint.
#pragma once

#include <cstddef>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/analyze_annotations.h"
#include "obs/metrics.h"

namespace prepare {
namespace obs {

class FlightRecorder;

/// Pipeline transitions of an alert episode. The last three are
/// terminal: an episode holds exactly one terminal span, as its final
/// span.
enum class SpanStage {
  kRawAlert,
  kConfirmed,
  kCauseInferred,
  kPreventionIssued,
  kValidated,
  kEscalated,
  kExpired,
};

const char* span_stage_name(SpanStage stage);
bool span_stage_terminal(SpanStage stage);

/// Ledger bucket an episode folds into when it closes.
enum class EpisodeOutcome {
  kPrevented,    ///< prevention validated effective
  kFalseAlarm,   ///< episode died without ever being acted on
  kEscalated,    ///< prevention exhausted its options, still unhealthy
  kExpired,      ///< run ended with the episode still open
};

const char* episode_outcome_name(EpisodeOutcome outcome);

/// One flat key/value span attribute (string or number).
struct SpanAttr {
  std::string key;
  std::string text;
  double number = 0.0;
  bool numeric = false;

  static SpanAttr str(std::string key, std::string value) {
    SpanAttr a;
    a.key = std::move(key);
    a.text = std::move(value);
    return a;
  }
  static SpanAttr num(std::string key, double value) {
    SpanAttr a;
    a.key = std::move(key);
    a.number = value;
    a.numeric = true;
    return a;
  }
};

/// One span: a stage of an episode over [t_start, t_end] in sim time.
struct Span {
  std::string span_id;
  std::string parent_id;  ///< empty at the episode root
  SpanStage stage = SpanStage::kRawAlert;
  double t_start = 0.0;
  double t_end = 0.0;
  std::vector<SpanAttr> attrs;
};

/// One alert episode: a causal chain of spans for one VM.
struct Episode {
  std::string trace_id;  ///< deterministic: "<vm>#<per-VM sequence>"
  std::string vm;
  std::vector<Span> spans;
  bool closed = false;
  bool suppressed = false;  ///< workload change: excluded from export
  EpisodeOutcome outcome = EpisodeOutcome::kExpired;  ///< valid when closed
};

struct SpanTracerConfig {
  /// An episode that never confirmed expires (-> false alarm) after
  /// this much sim time without a fresh raw alert. Pick a few multiples
  /// of the alarm-filter window (W * sampling interval) so a burst that
  /// fails k-of-W confirmation ages out rather than lingering.
  double raw_expiry_s = 60.0;
  /// A confirmed episode with no activity (re-alerts, actions,
  /// validation verdicts) for this long expires.
  double idle_expiry_s = 180.0;
  /// Capacity guard: episodes beyond this are dropped (and counted in
  /// alert.episodes_dropped_total) instead of growing without bound.
  std::size_t max_episodes = 8192;
};

class PREPARE_DRIVER_CONFINED SpanTracer {
 public:
  /// `metrics` (optional) receives the outcome ledger; it must outlive
  /// the tracer.
  explicit SpanTracer(MetricsRegistry* metrics = nullptr,
                      SpanTracerConfig config = SpanTracerConfig());

  /// Attaches the episode flight recorder (obs/flight_recorder.h): the
  /// tracer owns the episode lifecycle, so it is the single place that
  /// tells the recorder when to start a capture (episode open), flush
  /// it into a bundle (episode close), or discard it (workload-change
  /// suppression). Must outlive the tracer; nullptr detaches.
  void set_recorder(FlightRecorder* recorder) { recorder_ = recorder; }

  // ---- lifecycle events (driver thread only) ----

  /// A raw predicted alert on `vm`: opens an episode if none is open,
  /// otherwise refreshes the open one.
  void raw_alert(const std::string& vm, double now);
  /// A reactive (post-violation) diagnosis alert: like raw_alert but
  /// the episode is tagged source=reactive.
  void reactive_alert(const std::string& vm, double now);
  /// k-of-W confirmation. First confirmation transitions the episode;
  /// re-confirmations while the episode is already past `confirmed`
  /// (e.g. during an open prevention validation) only refresh it and
  /// bump its re_alerts attribute.
  void confirmed(const std::string& vm, double now);
  /// Cause inference pinpointed `vm`; `top_metrics` are the
  /// highest-ranked (attribute name, impact strength L_i) pairs.
  void cause_inferred(
      const std::string& vm, double now,
      const std::vector<std::pair<std::string, double>>& top_metrics);
  /// A prevention action fired (initial, companion, or validation
  /// fallback — each is one more span in the chain).
  void prevention_issued(const std::string& vm, double now,
                         const std::string& action);
  /// Prevention validated effective: terminal, outcome `prevented`.
  void validated(const std::string& vm, double now);
  /// Prevention options exhausted while still unhealthy: terminal,
  /// outcome `escalated`.
  void escalated(const std::string& vm, double now,
                 const std::string& reason);
  /// Cause inference called the anomaly a workload change: the episode
  /// is not a VM fault, so it is dropped entirely (no spans exported,
  /// no outcome folded; counted in alert.suppressed_total).
  void workload_change_suppressed(const std::string& vm, double now);

  /// Feeds the SLO state once per management round. On the rising edge
  /// of a violation the tracer records lead times (violation start -
  /// confirmation time) for open confirmed episodes, or counts a
  /// `missed` outcome when nothing was predicted.
  void observe_slo(double now, bool violated);
  /// Expires stale episodes; call once per management round.
  void tick(double now);
  /// Closes every still-open episode as `expired` (run end) and
  /// publishes the final ledger gauges.
  void finish(double now);

  // ---- introspection / export (quiescent: after the run) ----

  bool episode_open(const std::string& vm) const;

  /// Every non-suppressed episode, in open order (closed and open).
  /// The returned reference is invalidated by further lifecycle calls.
  std::vector<const Episode*> episodes() const;

  struct Ledger {
    std::size_t prevented = 0;
    std::size_t false_alarm = 0;
    std::size_t missed = 0;
    std::size_t escalated = 0;
    std::size_t expired = 0;
    std::size_t suppressed = 0;
    /// SLO violation onsets that had a confirmed episode open.
    std::size_t predicted_violations = 0;
    std::size_t lead_time_samples = 0;
  };
  const Ledger& ledger() const { return ledger_; }

  const SpanTracerConfig& config() const { return config_; }

  /// Writes one `span` record per span of every non-suppressed episode
  /// (schema v2, see obs/trace_export.h), in episode-open order.
  void write_spans_jsonl(std::ostream& os, const std::string& run_id) const;

 private:
  struct OpenState {
    std::size_t index = 0;  ///< into episodes_
    double last_activity = 0.0;
    double last_raw = 0.0;
    double confirmed_at = -1.0;
    double lead_time_s = -1.0;
    std::size_t raw_alerts = 0;
    std::size_t re_alerts = 0;
    bool has_confirmed = false;
    bool has_cause = false;
    bool has_prevention = false;
  };

  /// Opens an episode rooted at a raw_alert span; returns null (and
  /// counts the drop) when the capacity guard rejects it.
  OpenState* open_episode(const std::string& vm, double now,
                          const char* source);
  /// Closes the current span at `now` and appends a child span.
  Span& push_span(Episode* episode, SpanStage stage, double now);
  void close_episode(const std::string& vm, OpenState* state,
                     SpanStage terminal, double now,
                     const std::string& reason, EpisodeOutcome outcome);
  void fold_outcome(EpisodeOutcome outcome);
  void update_gauges();

  SpanTracerConfig config_;
  FlightRecorder* recorder_ = nullptr;  ///< not owned; may be null
  std::vector<Episode> episodes_;
  std::map<std::string, OpenState> open_;       ///< by VM
  std::map<std::string, std::size_t> next_seq_; ///< per-VM trace sequence
  Ledger ledger_;
  bool slo_violated_ = false;
  bool warned_dropped_ = false;

  // Outcome ledger instruments (null = uninstrumented).
  Counter* prevented_counter_ = nullptr;
  Counter* false_alarm_counter_ = nullptr;
  Counter* missed_counter_ = nullptr;
  Counter* escalated_counter_ = nullptr;
  Counter* expired_counter_ = nullptr;
  Counter* suppressed_counter_ = nullptr;
  Counter* episodes_counter_ = nullptr;
  Counter* dropped_counter_ = nullptr;
  Histogram* lead_time_hist_ = nullptr;
  Gauge* precision_gauge_ = nullptr;
  Gauge* recall_gauge_ = nullptr;
  Gauge* effectiveness_gauge_ = nullptr;
};

}  // namespace obs
}  // namespace prepare
