#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace prepare {
namespace obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[40];
  // Shortest representation that round-trips a double.
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

JsonObject& JsonObject::raw_field(const std::string& key,
                                  const std::string& raw) {
  if (!first_) os_ << ",";
  first_ = false;
  os_ << "\"" << json_escape(key) << "\":" << raw;
  return *this;
}

JsonObject& JsonObject::field(const std::string& key,
                              const std::string& value) {
  return raw_field(key, "\"" + json_escape(value) + "\"");
}

JsonObject& JsonObject::field(const std::string& key, const char* value) {
  return field(key, std::string(value));
}

JsonObject& JsonObject::field(const std::string& key, double value) {
  return raw_field(key, json_number(value));
}

JsonObject& JsonObject::field(const std::string& key, std::uint64_t value) {
  return raw_field(key, std::to_string(value));
}

JsonObject& JsonObject::field(const std::string& key, int value) {
  return raw_field(key, std::to_string(value));
}

void JsonObject::close() {
  if (closed_) return;
  closed_ = true;
  os_ << "}\n";
}

}  // namespace obs
}  // namespace prepare
