#include "obs/prom_export.h"

#include <cctype>
#include <cmath>
#include <limits>
#include <sstream>

namespace prepare {
namespace obs {

namespace {

/// Formats a sample value. Prometheus accepts Go-style float literals,
/// including "NaN" and "+Inf" (unlike JSON).
std::string prom_value(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << value;
  return os.str();
}

bool valid_head(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool valid_tail(char c) {
  return valid_head(c) || std::isdigit(static_cast<unsigned char>(c));
}

void type_line(std::ostream& os, const std::string& name, const char* type) {
  os << "# TYPE " << name << " " << type << "\n";
}

}  // namespace

std::string prom_metric_name(const std::string& name) {
  std::string out;
  if (name.rfind("prepare_", 0) != 0) out = "prepare_";
  out.reserve(out.size() + name.size());
  for (char c : name) out.push_back(valid_tail(c) ? c : '_');
  if (out.empty() || !valid_head(out[0])) out.insert(out.begin(), '_');
  return out;
}

void write_prom_text(std::ostream& os,
                     const MetricsRegistry::Snapshot& snapshot) {
  for (const auto& [name, value] : snapshot.counters) {
    std::string prom = prom_metric_name(name);
    // Prometheus convention: cumulative counters end in _total.
    if (prom.size() < 6 || prom.compare(prom.size() - 6, 6, "_total") != 0)
      prom += "_total";
    type_line(os, prom, "counter");
    os << prom << " " << prom_value(value) << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = prom_metric_name(name);
    type_line(os, prom, "gauge");
    os << prom << " " << prom_value(value) << "\n";
  }
  for (const auto& [name, stats] : snapshot.histograms) {
    const std::string prom = prom_metric_name(name);
    type_line(os, prom, "summary");
    os << prom << "{quantile=\"0.5\"} " << prom_value(stats.p50) << "\n";
    os << prom << "{quantile=\"0.9\"} " << prom_value(stats.p90) << "\n";
    os << prom << "{quantile=\"0.99\"} " << prom_value(stats.p99) << "\n";
    os << prom << "_sum " << prom_value(stats.sum) << "\n";
    os << prom << "_count " << stats.count << "\n";
  }
}

}  // namespace obs
}  // namespace prepare
