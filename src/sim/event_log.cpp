#include "sim/event_log.h"

#include <utility>

#include "common/logging.h"
#include "obs/json.h"

namespace prepare {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kCpuScale: return "cpu_scale";
    case EventKind::kMemScale: return "mem_scale";
    case EventKind::kMigrationStart: return "migration_start";
    case EventKind::kMigrationDone: return "migration_done";
    case EventKind::kAlert: return "alert";
    case EventKind::kAlertConfirmed: return "alert_confirmed";
    case EventKind::kPrevention: return "prevention";
    case EventKind::kValidation: return "validation";
    case EventKind::kInfo: return "info";
  }
  return "?";
}

EventLog::EventLog(const EventLog& other) {
  MutexLock lock(&other.mu_);
  events_ = other.events_;
  capacity_ = other.capacity_;
  dropped_ = other.dropped_;
  warned_dropped_ = other.warned_dropped_;
  recorded_counter_ = other.recorded_counter_;
  dropped_counter_ = other.dropped_counter_;
}

EventLog& EventLog::operator=(const EventLog& other) {
  if (this == &other) return *this;
  // Snapshot the source, then install under our own lock: sequential
  // lock scopes, so no ordering constraint between two log mutexes.
  std::vector<Event> events;
  std::size_t capacity = kDefaultCapacity;
  std::size_t dropped = 0;
  bool warned_dropped = false;
  obs::Counter* recorded_counter = nullptr;
  obs::Counter* dropped_counter = nullptr;
  {
    MutexLock lock(&other.mu_);
    events = other.events_;
    capacity = other.capacity_;
    dropped = other.dropped_;
    warned_dropped = other.warned_dropped_;
    recorded_counter = other.recorded_counter_;
    dropped_counter = other.dropped_counter_;
  }
  MutexLock lock(&mu_);
  events_ = std::move(events);
  capacity_ = capacity;
  dropped_ = dropped;
  warned_dropped_ = warned_dropped;
  recorded_counter_ = recorded_counter;
  dropped_counter_ = dropped_counter;
  return *this;
}

void EventLog::record(double time, EventKind kind, std::string subject,
                      std::string detail) {
  obs::Counter* bump = nullptr;
  bool first_drop = false;
  std::size_t capacity = 0;
  {
    MutexLock lock(&mu_);
    if (events_.size() >= capacity_) {
      ++dropped_;
      bump = dropped_counter_;
      if (!warned_dropped_) {
        warned_dropped_ = true;
        first_drop = true;
        capacity = capacity_;
      }
    } else {
      events_.push_back({time, kind, std::move(subject), std::move(detail)});
      bump = recorded_counter_;
    }
  }
  // Counters are internally thread-safe; bump outside the lock to keep
  // the critical section to the log's own state. Same for the one-time
  // truncation warning — it names the first dropped record's kind so an
  // operator reading a truncated trace knows what went missing.
  if (first_drop)
    PREPARE_WARN("event_log")
        << "event log at capacity (" << capacity << "): dropped a '"
        << event_kind_name(kind) << "' record at t=" << time
        << "; further drops are silent (see events.dropped_total)";
  obs::inc(bump);
}

std::vector<Event> EventLog::events_of(EventKind kind) const {
  MutexLock lock(&mu_);
  std::vector<Event> out;
  for (const auto& e : events_)
    if (e.kind == kind) out.push_back(e);
  return out;
}

std::size_t EventLog::count_of(EventKind kind) const {
  MutexLock lock(&mu_);
  std::size_t n = 0;
  for (const auto& e : events_)
    if (e.kind == kind) ++n;
  return n;
}

void EventLog::set_metrics(obs::MetricsRegistry* registry) {
  MutexLock lock(&mu_);
  recorded_counter_ = obs::counter(registry, "events.recorded_total");
  dropped_counter_ = obs::counter(registry, "events.dropped_total");
}

void EventLog::to_jsonl(std::ostream& os, const std::string& run_id) const {
  MutexLock lock(&mu_);
  for (const auto& e : events_) {
    obs::JsonObject(os)
        .field("record", "event")
        .field("run_id", run_id)
        .field("t", e.time)
        .field("kind", event_kind_name(e.kind))
        .field("subject", e.subject)
        .field("detail", e.detail);
  }
}

}  // namespace prepare
