#include "sim/event_log.h"

#include "obs/json.h"

namespace prepare {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kCpuScale: return "cpu_scale";
    case EventKind::kMemScale: return "mem_scale";
    case EventKind::kMigrationStart: return "migration_start";
    case EventKind::kMigrationDone: return "migration_done";
    case EventKind::kAlert: return "alert";
    case EventKind::kAlertConfirmed: return "alert_confirmed";
    case EventKind::kPrevention: return "prevention";
    case EventKind::kValidation: return "validation";
    case EventKind::kInfo: return "info";
  }
  return "?";
}

void EventLog::record(double time, EventKind kind, std::string subject,
                      std::string detail) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    obs::inc(dropped_counter_);
    return;
  }
  events_.push_back({time, kind, std::move(subject), std::move(detail)});
  obs::inc(recorded_counter_);
}

std::vector<Event> EventLog::events_of(EventKind kind) const {
  std::vector<Event> out;
  for (const auto& e : events_)
    if (e.kind == kind) out.push_back(e);
  return out;
}

std::size_t EventLog::count_of(EventKind kind) const {
  std::size_t n = 0;
  for (const auto& e : events_)
    if (e.kind == kind) ++n;
  return n;
}

void EventLog::set_metrics(obs::MetricsRegistry* registry) {
  recorded_counter_ = obs::counter(registry, "events.recorded_total");
  dropped_counter_ = obs::counter(registry, "events.dropped_total");
}

void EventLog::to_jsonl(std::ostream& os, const std::string& run_id) const {
  for (const auto& e : events_) {
    obs::JsonObject(os)
        .field("record", "event")
        .field("run_id", run_id)
        .field("t", e.time)
        .field("kind", event_kind_name(e.kind))
        .field("subject", e.subject)
        .field("detail", e.detail);
  }
}

}  // namespace prepare
