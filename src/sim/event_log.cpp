#include "sim/event_log.h"

namespace prepare {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kCpuScale: return "cpu_scale";
    case EventKind::kMemScale: return "mem_scale";
    case EventKind::kMigrationStart: return "migration_start";
    case EventKind::kMigrationDone: return "migration_done";
    case EventKind::kAlert: return "alert";
    case EventKind::kAlertConfirmed: return "alert_confirmed";
    case EventKind::kPrevention: return "prevention";
    case EventKind::kValidation: return "validation";
    case EventKind::kInfo: return "info";
  }
  return "?";
}

void EventLog::record(double time, EventKind kind, std::string subject,
                      std::string detail) {
  events_.push_back({time, kind, std::move(subject), std::move(detail)});
}

std::vector<Event> EventLog::events_of(EventKind kind) const {
  std::vector<Event> out;
  for (const auto& e : events_)
    if (e.kind == kind) out.push_back(e);
  return out;
}

std::size_t EventLog::count_of(EventKind kind) const {
  std::size_t n = 0;
  for (const auto& e : events_)
    if (e.kind == kind) ++n;
  return n;
}

}  // namespace prepare
