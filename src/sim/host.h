// Simulated physical host (one VCL node: dual-core Xeon, 4 GB in the
// paper's testbed). Holds placed VMs and enforces that the sum of VM
// allocations stays within capacity minus the dom0 reserve.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/vm.h"

namespace prepare {

struct HostCapacity {
  double cpu_cores = 2.0;
  double mem_mb = 4096.0;
  double dom0_cpu_reserve = 0.2;
  double dom0_mem_reserve = 512.0;
};

class Host {
 public:
  using Capacity = HostCapacity;

  Host(std::string name, Capacity capacity = Capacity());

  const std::string& name() const { return name_; }
  const Capacity& capacity() const { return capacity_; }

  /// CPU cores available to guests (capacity minus dom0 reserve).
  double guest_cpu_capacity() const;
  /// Memory available to guests, MB.
  double guest_mem_capacity() const;

  /// Sum of current VM CPU allocations.
  double cpu_allocated() const;
  /// Sum of current VM memory allocations.
  double mem_allocated() const;

  /// Headroom accounts for both placed VMs and open reservations.
  double cpu_headroom() const {
    return guest_cpu_capacity() - cpu_allocated() - reserved_cpu_;
  }
  double mem_headroom() const {
    return guest_mem_capacity() - mem_allocated() - reserved_mem_;
  }

  /// Reserves capacity for an inbound migration (released on arrival or
  /// abort). Returns false without reserving if the headroom is missing.
  bool reserve(double cpu_cores, double mem_mb);
  void release(double cpu_cores, double mem_mb);
  double reserved_cpu() const { return reserved_cpu_; }
  double reserved_mem() const { return reserved_mem_; }

  /// Whether a VM with the given allocations would fit right now.
  bool can_fit(double cpu_cores, double mem_mb) const;

  /// Whether growing `vm`'s allocation by the given deltas stays within
  /// capacity. The VM must be placed on this host.
  bool can_grow(const Vm& vm, double cpu_delta, double mem_delta) const;

  void place(Vm* vm);
  void remove(Vm* vm);
  bool hosts(const Vm& vm) const;

  /// Publishes this host's packing state as gauges
  /// (sim.host.<name>.cpu_allocated_cores / .mem_allocated_mb /
  /// .vm_count). The cluster calls this after every placement change;
  /// a null registry is a no-op.
  void publish_metrics(obs::MetricsRegistry* registry) const;

  const std::vector<Vm*>& vms() const { return vms_; }

 private:
  /// Conservation invariants (DCHECK-gated): placed allocations plus
  /// open reservations never exceed guest capacity, and reservations
  /// never go negative. Called after every mutation.
  void dcheck_conservation() const;

  std::string name_;
  Capacity capacity_;
  std::vector<Vm*> vms_;
  double reserved_cpu_ = 0.0;
  double reserved_mem_ = 0.0;
};

}  // namespace prepare
