#include "sim/clock.h"

#include "common/check.h"

namespace prepare {

void SimClock::schedule_in(Seconds delay, std::function<void()> fn) {
  PREPARE_CHECK(delay.value() >= 0.0);
  queue_.push({now_ + delay.value(), next_seq_++, std::move(fn)});
}

void SimClock::advance(Seconds dt) {
  PREPARE_CHECK(dt.value() > 0.0);
  const double target = now_ + dt.value();
  while (!queue_.empty() && queue_.top().due <= target) {
    // Copy out before pop: the callback may push new events.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.due;
    ev.fn();
  }
  now_ = target;
}

}  // namespace prepare
