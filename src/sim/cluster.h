// Cluster: owns all hosts and VMs, tracks placement.
//
// Placement is deliberately simple (first-fit over hosts) — PREPARE's
// migration actuator only needs "find a host with the desired resources"
// (paper Section II-D, citing PAC [15] for smarter consolidation).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/host.h"
#include "sim/vm.h"

namespace prepare {

class Cluster {
 public:
  /// Attaches observability instruments (placement/move counters plus
  /// per-host allocation gauges, refreshed after every placement
  /// change). The registry must outlive the cluster; nullptr detaches.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Adds a host; returns a stable pointer owned by the cluster.
  Host* add_host(std::string name, Host::Capacity capacity = Host::Capacity());

  /// Creates a VM and places it on `host`. Throws CheckFailure if the
  /// host cannot fit the allocation. The VM is assigned the next VmId
  /// (1-based creation order; VmId{0} stays kUnassignedVmId).
  Vm* add_vm(std::string name, double cpu_alloc, double mem_alloc,
             Host* host);

  const std::vector<std::unique_ptr<Host>>& hosts() const { return hosts_; }
  const std::vector<std::unique_ptr<Vm>>& vms() const { return vms_; }

  Host* host_of(const Vm& vm) const;
  Vm* find_vm(const std::string& name) const;
  /// VM by cluster-assigned id; nullptr for kUnassignedVmId or an id
  /// this cluster never handed out.
  Vm* vm_by_id(VmId id) const;
  Host* find_host(const std::string& name) const;

  /// First host (excluding `exclude`) that can fit the given allocation;
  /// nullptr if none.
  Host* find_target_host(double cpu_alloc, double mem_alloc,
                         const Host* exclude) const;

  /// Best-fit variant (PAC-style [15]): among hosts that fit, pick the
  /// one whose *remaining* normalized headroom after placement is
  /// smallest — packing migrations tightly keeps the larger holes free
  /// for future, possibly bigger, relocations. nullptr if none fit.
  Host* find_best_target_host(double cpu_alloc, double mem_alloc,
                              const Host* exclude) const;

  /// Moves `vm` from its current host to `target` (capacity re-checked).
  /// Used by the hypervisor at migration completion.
  void move_vm(Vm* vm, Host* target);

  /// Moves `vm` to `target` and atomically applies a new allocation —
  /// the capacity check on the target uses the landing allocation.
  void move_vm_with_alloc(Vm* vm, Host* target, double cpu_alloc,
                          double mem_alloc);

 private:
  /// Placement invariant (DCHECK-gated): every VM the cluster owns lives
  /// on exactly one host, and every hosted VM is cluster-owned.
  void dcheck_placement() const;

  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<Vm>> vms_;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* placements_counter_ = nullptr;
  obs::Counter* moves_counter_ = nullptr;
};

}  // namespace prepare
