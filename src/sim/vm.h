// Simulated guest virtual machine.
//
// A Vm carries a CPU allocation (cap, in cores) and a memory allocation
// (in MB), plus per-tick demand registers that the application model and
// the fault injector fill in. finalize_tick() resolves contention:
//
//  * CPU: if total demand exceeds the cap, the app and any fault process
//    (CPU hog) share the cap in proportion to their runnable parallelism
//    (threads), the way a fair-share scheduler divides a VM between a
//    single-threaded PE and a many-worker CPU hog. The app's weight is
//    its parallelism (set_app_parallelism); a fault's weight is its
//    demand (one busy thread per core demanded). Shares are
//    work-conserving: whatever one side leaves unused, the other may
//    take.
//  * Memory: demand beyond the allocation cannot be used; the paging
//    penalty is modeled as an efficiency factor that shrinks as demand
//    approaches and passes the allocation (thrashing).
//
// The monitor reads usage out of a Vm exactly the way libxenstat reads a
// domain from dom0: it sees usage and allocation, never the app internals.
#pragma once

#include <string>

#include "common/units.h"

namespace prepare {

class Vm {
 public:
  Vm(std::string name, double cpu_alloc_cores, double mem_alloc_mb);

  const std::string& name() const { return name_; }

  /// Cluster-assigned identity (creation order, see Cluster::add_vm);
  /// kUnassignedVmId until a cluster adopts the VM.
  VmId id() const { return id_; }
  void set_id(VmId id) { id_ = id; }

  // --- allocation (set by the hypervisor) ---
  double cpu_alloc() const { return cpu_alloc_; }
  double mem_alloc() const { return mem_alloc_; }
  void set_cpu_alloc(double cores);
  void set_mem_alloc(double mb);

  /// The application's runnable parallelism (scheduler weight): 1 for a
  /// single-threaded PE, higher for a thread-pooled tier. Persistent
  /// (not cleared by begin_tick).
  void set_app_parallelism(double threads);
  double app_parallelism() const { return app_parallelism_; }

  // --- per-tick demand registers ---
  void begin_tick();
  void set_app_cpu_demand(double cores);
  void set_app_mem_demand(double mb);
  /// Fault demands accumulate so concurrent faults compose.
  void set_fault_cpu_demand(double cores);
  void set_fault_mem_demand(double mb);
  void add_fault_cpu_demand(double cores);
  void add_fault_mem_demand(double mb);
  void set_net_in(double kbps) { net_in_ = kbps; }
  void set_net_out(double kbps) { net_out_ = kbps; }
  void set_disk_read(double kbps) { disk_read_ = kbps; }
  void set_disk_write(double kbps) { disk_write_ = kbps; }

  /// Resolves contention for this tick. Must be called after all demands
  /// are registered and before any granted/usage getter is read.
  /// `dt` drives the efficiency-recovery inertia.
  void finalize_tick(Seconds dt = Seconds{1.0});

  // --- resolved state (valid after finalize_tick) ---
  /// CPU cores actually granted to the application this tick.
  double app_cpu_granted() const { return app_cpu_granted_; }
  /// Total CPU used by the VM (app + faults), capped at the allocation.
  double cpu_used() const { return cpu_used_; }
  /// CPU utilization in [0, 1] relative to the allocation.
  double cpu_utilization() const;
  /// Total CPU demand (app + faults), uncapped.
  double cpu_demand() const { return app_cpu_demand_ + fault_cpu_demand_; }
  /// Memory in use (demand capped at allocation), MB.
  double mem_used() const { return mem_used_; }
  /// Memory demand (app + faults, e.g. a leak), uncapped, MB.
  double mem_demand() const { return app_mem_demand_ + fault_mem_demand_; }
  /// Free memory as seen from inside the guest, MB.
  double free_mem() const { return mem_alloc_ - mem_used_; }
  /// Service-efficiency multiplier in (0, 1]: 1 when memory is
  /// comfortable, shrinking under paging pressure and during migration.
  double efficiency() const { return efficiency_; }
  double net_in() const { return net_in_; }
  double net_out() const { return net_out_; }
  double disk_read() const { return disk_read_; }
  double disk_write() const { return disk_write_; }

  // --- migration (driven by the hypervisor) ---
  bool migrating() const { return migrating_; }
  void begin_migration(double penalty);
  void end_migration();

  /// Knobs for the paging-penalty model (exposed for tests).
  struct MemoryModel {
    double pressure_knee = 0.85;  ///< demand/alloc where paging starts
    double pressure_full = 1.35;  ///< demand/alloc where efficiency bottoms
    double min_efficiency = 0.10; ///< efficiency floor under full thrash
    /// Degradation is immediate, but recovery (page-in, cache re-warm)
    /// approaches the healthy level with this time constant, seconds.
    double recovery_tau_s = 12.0;
  };
  const MemoryModel& memory_model() const { return memory_model_; }
  void set_memory_model(const MemoryModel& m) { memory_model_ = m; }

 private:
  std::string name_;
  VmId id_;
  double cpu_alloc_;
  double mem_alloc_;
  double app_parallelism_ = 1.0;
  MemoryModel memory_model_;

  // demand registers
  double app_cpu_demand_ = 0.0;
  double fault_cpu_demand_ = 0.0;
  double app_mem_demand_ = 0.0;
  double fault_mem_demand_ = 0.0;
  double net_in_ = 0.0, net_out_ = 0.0;
  double disk_read_ = 0.0, disk_write_ = 0.0;

  // resolved state
  double app_cpu_granted_ = 0.0;
  double cpu_used_ = 0.0;
  double mem_used_ = 0.0;
  double efficiency_ = 1.0;
  double mem_efficiency_state_ = 1.0;  // carries recovery inertia

  bool migrating_ = false;
  double migration_penalty_ = 1.0;
};

}  // namespace prepare
