// Hypervisor control plane: the actuation interface PREPARE drives.
//
// Mirrors the two prevention primitives of the paper (Section II-D):
//
//  * elastic resource scaling — CPU cap and memory balloon adjustments,
//    which take effect after ~100 ms (Table I: 107 ms CPU / 116 ms mem);
//  * live VM migration — pre-copy model whose duration scales with VM
//    memory (Table I: 8.56 s for 512 MB); the VM keeps running on the
//    source with a throughput penalty until the final stop-copy, then
//    appears on the target, optionally with a new (bigger) allocation.
//
// Scaling requests that exceed the local host's headroom fail, which is
// exactly the condition under which PREPARE falls back to migration.
#pragma once

#include <string>

#include "sim/clock.h"
#include "sim/cluster.h"
#include "sim/event_log.h"

namespace prepare {

struct HypervisorConfig {
  double cpu_scale_latency_s = 0.107;
  double mem_scale_latency_s = 0.116;
  /// Effective pre-copy bandwidth, MB/s.
  double migration_bandwidth_mbps = 70.0;
  /// Multiplier on mem/bandwidth to account for dirty-page re-copy
  /// rounds (>= 1).
  double migration_precopy_factor = 1.12;
  /// Final stop-and-copy pause, seconds.
  double migration_stopcopy_s = 0.35;
  /// Throughput multiplier applied to the VM while pre-copy runs.
  double migration_penalty = 0.85;
};

class Hypervisor {
 public:
  using Config = HypervisorConfig;

  Hypervisor(SimClock* clock, Cluster* cluster, EventLog* log,
             Config config = Config());

  /// Sets the VM's CPU cap to `target_cores` after the scaling latency.
  /// Fails (returns false, no change scheduled) if the host lacks
  /// headroom for an increase.
  bool scale_cpu(Vm* vm, double target_cores);

  /// Balloon the VM's memory to `target_mb` after the scaling latency.
  bool scale_memory(Vm* vm, double target_mb);

  /// Starts a live migration of `vm` to `target`. The new allocation
  /// (applied on arrival) defaults to the current one; pass larger values
  /// to land the VM with more resources. Returns false if the target
  /// cannot fit the new allocation or the VM is already migrating.
  bool migrate(Vm* vm, Host* target, double new_cpu_alloc = 0.0,
               double new_mem_alloc = 0.0);

  /// Predicted migration duration for a VM of the given memory footprint.
  double migration_duration(double mem_mb) const;

  const Config& config() const { return config_; }

 private:
  SimClock* clock_;
  Cluster* cluster_;
  EventLog* log_;
  Config config_;
};

}  // namespace prepare
