#include "sim/vm.h"

#include <algorithm>

#include "common/check.h"

namespace prepare {

Vm::Vm(std::string name, double cpu_alloc_cores, double mem_alloc_mb)
    : name_(std::move(name)),
      cpu_alloc_(cpu_alloc_cores),
      mem_alloc_(mem_alloc_mb) {
  PREPARE_CHECK(cpu_alloc_cores > 0.0);
  PREPARE_CHECK(mem_alloc_mb > 0.0);
}

void Vm::set_cpu_alloc(double cores) {
  PREPARE_CHECK(cores > 0.0);
  cpu_alloc_ = cores;
}

void Vm::set_mem_alloc(double mb) {
  PREPARE_CHECK(mb > 0.0);
  mem_alloc_ = mb;
}

void Vm::begin_tick() {
  app_cpu_demand_ = fault_cpu_demand_ = 0.0;
  app_mem_demand_ = fault_mem_demand_ = 0.0;
  net_in_ = net_out_ = disk_read_ = disk_write_ = 0.0;
}

void Vm::set_app_cpu_demand(double cores) {
  PREPARE_CHECK(cores >= 0.0);
  app_cpu_demand_ = cores;
}

void Vm::set_fault_cpu_demand(double cores) {
  PREPARE_CHECK(cores >= 0.0);
  fault_cpu_demand_ = cores;
}

void Vm::set_app_mem_demand(double mb) {
  PREPARE_CHECK(mb >= 0.0);
  app_mem_demand_ = mb;
}

void Vm::set_fault_mem_demand(double mb) {
  PREPARE_CHECK(mb >= 0.0);
  fault_mem_demand_ = mb;
}

void Vm::add_fault_cpu_demand(double cores) {
  PREPARE_CHECK(cores >= 0.0);
  fault_cpu_demand_ += cores;
}

void Vm::add_fault_mem_demand(double mb) {
  PREPARE_CHECK(mb >= 0.0);
  fault_mem_demand_ += mb;
}

void Vm::set_app_parallelism(double threads) {
  PREPARE_CHECK(threads > 0.0);
  app_parallelism_ = threads;
}

void Vm::finalize_tick(Seconds dt) {
  PREPARE_CHECK(dt.value() > 0.0);
  const double total_cpu = app_cpu_demand_ + fault_cpu_demand_;
  if (total_cpu <= cpu_alloc_) {
    app_cpu_granted_ = app_cpu_demand_;
    cpu_used_ = total_cpu;
  } else {
    // Thread-weighted fair share: the app's weight is its parallelism,
    // a CPU-bound fault's weight is one thread per core it demands.
    // Work-conserving: the app may exceed its share by whatever the
    // fault leaves on the table (and vice versa).
    const double weight_sum = app_parallelism_ + fault_cpu_demand_;
    const double app_share =
        cpu_alloc_ * app_parallelism_ / weight_sum;
    app_cpu_granted_ = std::min(
        app_cpu_demand_, std::max(app_share, cpu_alloc_ - fault_cpu_demand_));
    const double fault_used =
        std::min(fault_cpu_demand_, cpu_alloc_ - app_cpu_granted_);
    cpu_used_ = std::min(cpu_alloc_, app_cpu_granted_ + fault_used);
  }

  const double mem_demand = app_mem_demand_ + fault_mem_demand_;
  mem_used_ = std::min(mem_demand, mem_alloc_);

  // Paging penalty: ramp efficiency down between the knee and "full
  // thrash" pressure points.
  const double pressure = mem_demand / mem_alloc_;
  double mem_eff_target = 1.0;
  if (pressure > memory_model_.pressure_knee) {
    const double span =
        memory_model_.pressure_full - memory_model_.pressure_knee;
    const double frac =
        std::min(1.0, (pressure - memory_model_.pressure_knee) / span);
    mem_eff_target = 1.0 - frac * (1.0 - memory_model_.min_efficiency);
  }
  // Thrashing sets in immediately; recovery (page-in, cache re-warm)
  // takes time, so post-prevention SLO recovery is not instantaneous.
  if (mem_eff_target < mem_efficiency_state_) {
    mem_efficiency_state_ = mem_eff_target;
  } else {
    const double blend =
        std::min(1.0, dt / memory_model_.recovery_tau_s);
    mem_efficiency_state_ +=
        (mem_eff_target - mem_efficiency_state_) * blend;
  }
  efficiency_ = mem_efficiency_state_ * migration_penalty_;

  // Per-VM resource conservation: what a tick grants can never exceed
  // the allocation, and the app never receives more than the VM used.
  PREPARE_DCHECK_LE(cpu_used_, cpu_alloc_ + 1e-9)
      << name_ << " used more CPU than allocated";
  PREPARE_DCHECK_LE(app_cpu_granted_, cpu_used_ + 1e-9)
      << name_ << " granted the app more CPU than the VM used";
  PREPARE_DCHECK_LE(mem_used_, mem_alloc_ + 1e-9)
      << name_ << " used more memory than allocated";
  PREPARE_DCHECK(efficiency_ > 0.0 && efficiency_ <= 1.0)
      << name_ << " efficiency " << efficiency_ << " escaped (0, 1]";
}

double Vm::cpu_utilization() const {
  return cpu_alloc_ > 0.0 ? cpu_used_ / cpu_alloc_ : 0.0;
}

void Vm::begin_migration(double penalty) {
  PREPARE_CHECK(penalty > 0.0 && penalty <= 1.0);
  PREPARE_CHECK_MSG(!migrating_, "VM is already migrating");
  migrating_ = true;
  migration_penalty_ = penalty;
}

void Vm::end_migration() {
  PREPARE_CHECK(migrating_);
  migrating_ = false;
  migration_penalty_ = 1.0;
}

}  // namespace prepare
