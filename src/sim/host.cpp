#include "sim/host.h"

#include <algorithm>

#include "common/check.h"

namespace prepare {

Host::Host(std::string name, Capacity capacity)
    : name_(std::move(name)), capacity_(capacity) {
  PREPARE_CHECK(capacity_.cpu_cores > capacity_.dom0_cpu_reserve);
  PREPARE_CHECK(capacity_.mem_mb > capacity_.dom0_mem_reserve);
}

double Host::guest_cpu_capacity() const {
  return capacity_.cpu_cores - capacity_.dom0_cpu_reserve;
}

double Host::guest_mem_capacity() const {
  return capacity_.mem_mb - capacity_.dom0_mem_reserve;
}

double Host::cpu_allocated() const {
  double total = 0.0;
  for (const Vm* vm : vms_) total += vm->cpu_alloc();
  return total;
}

double Host::mem_allocated() const {
  double total = 0.0;
  for (const Vm* vm : vms_) total += vm->mem_alloc();
  return total;
}

bool Host::can_fit(double cpu_cores, double mem_mb) const {
  return cpu_headroom() >= cpu_cores && mem_headroom() >= mem_mb;
}

bool Host::can_grow(const Vm& vm, double cpu_delta, double mem_delta) const {
  PREPARE_CHECK_MSG(hosts(vm), "can_grow queried for a VM not on this host");
  return cpu_headroom() >= cpu_delta && mem_headroom() >= mem_delta;
}

void Host::place(Vm* vm) {
  PREPARE_CHECK(vm != nullptr);
  PREPARE_CHECK_MSG(!hosts(*vm), "VM already placed on this host");
  PREPARE_CHECK(can_fit(vm->cpu_alloc(), vm->mem_alloc()))
      << "host " << name_ << " capacity exceeded placing " << vm->name();
  vms_.push_back(vm);
  dcheck_conservation();
}

void Host::remove(Vm* vm) {
  auto it = std::find(vms_.begin(), vms_.end(), vm);
  PREPARE_CHECK_MSG(it != vms_.end(), "VM not on this host");
  vms_.erase(it);
  dcheck_conservation();
}

bool Host::reserve(double cpu_cores, double mem_mb) {
  PREPARE_CHECK(cpu_cores >= 0.0 && mem_mb >= 0.0);
  if (cpu_headroom() < cpu_cores || mem_headroom() < mem_mb) return false;
  reserved_cpu_ += cpu_cores;
  reserved_mem_ += mem_mb;
  dcheck_conservation();
  return true;
}

void Host::release(double cpu_cores, double mem_mb) {
  PREPARE_CHECK_LE(cpu_cores, reserved_cpu_ + 1e-9)
      << "releasing more CPU than host " << name_ << " has reserved";
  PREPARE_CHECK_LE(mem_mb, reserved_mem_ + 1e-9)
      << "releasing more memory than host " << name_ << " has reserved";
  reserved_cpu_ = std::max(0.0, reserved_cpu_ - cpu_cores);
  reserved_mem_ = std::max(0.0, reserved_mem_ - mem_mb);
  dcheck_conservation();
}

void Host::dcheck_conservation() const {
#if PREPARE_DCHECK_IS_ON
  PREPARE_DCHECK_GE(reserved_cpu_, 0.0) << "host " << name_;
  PREPARE_DCHECK_GE(reserved_mem_, 0.0) << "host " << name_;
  // CPU conservation: the sum of VM CPU allocations plus reservations
  // fits in the guest share of the host.
  PREPARE_DCHECK_LE(cpu_allocated() + reserved_cpu_,
                    guest_cpu_capacity() + 1e-9)
      << "host " << name_ << " is CPU-oversubscribed";
  // Memory conservation: same for memory, MB.
  PREPARE_DCHECK_LE(mem_allocated() + reserved_mem_,
                    guest_mem_capacity() + 1e-9)
      << "host " << name_ << " is memory-oversubscribed";
#endif
}

bool Host::hosts(const Vm& vm) const {
  return std::find(vms_.begin(), vms_.end(), &vm) != vms_.end();
}

void Host::publish_metrics(obs::MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  const std::string prefix = "sim.host." + name_;
  registry->gauge(prefix + ".cpu_allocated_cores")->set(cpu_allocated());
  registry->gauge(prefix + ".mem_allocated_mb")->set(mem_allocated());
  registry->gauge(prefix + ".vm_count")
      ->set(static_cast<double>(vms_.size()));
}

}  // namespace prepare
