#include "sim/host.h"

#include <algorithm>

#include "common/check.h"

namespace prepare {

Host::Host(std::string name, Capacity capacity)
    : name_(std::move(name)), capacity_(capacity) {
  PREPARE_CHECK(capacity_.cpu_cores > capacity_.dom0_cpu_reserve);
  PREPARE_CHECK(capacity_.mem_mb > capacity_.dom0_mem_reserve);
}

double Host::guest_cpu_capacity() const {
  return capacity_.cpu_cores - capacity_.dom0_cpu_reserve;
}

double Host::guest_mem_capacity() const {
  return capacity_.mem_mb - capacity_.dom0_mem_reserve;
}

double Host::cpu_allocated() const {
  double total = 0.0;
  for (const Vm* vm : vms_) total += vm->cpu_alloc();
  return total;
}

double Host::mem_allocated() const {
  double total = 0.0;
  for (const Vm* vm : vms_) total += vm->mem_alloc();
  return total;
}

bool Host::can_fit(double cpu_cores, double mem_mb) const {
  return cpu_headroom() >= cpu_cores && mem_headroom() >= mem_mb;
}

bool Host::can_grow(const Vm& vm, double cpu_delta, double mem_delta) const {
  PREPARE_CHECK_MSG(hosts(vm), "can_grow queried for a VM not on this host");
  return cpu_headroom() >= cpu_delta && mem_headroom() >= mem_delta;
}

void Host::place(Vm* vm) {
  PREPARE_CHECK(vm != nullptr);
  PREPARE_CHECK_MSG(!hosts(*vm), "VM already placed on this host");
  PREPARE_CHECK_MSG(can_fit(vm->cpu_alloc(), vm->mem_alloc()),
                    "host capacity exceeded placing " + vm->name());
  vms_.push_back(vm);
}

void Host::remove(Vm* vm) {
  auto it = std::find(vms_.begin(), vms_.end(), vm);
  PREPARE_CHECK_MSG(it != vms_.end(), "VM not on this host");
  vms_.erase(it);
}

bool Host::reserve(double cpu_cores, double mem_mb) {
  PREPARE_CHECK(cpu_cores >= 0.0 && mem_mb >= 0.0);
  if (cpu_headroom() < cpu_cores || mem_headroom() < mem_mb) return false;
  reserved_cpu_ += cpu_cores;
  reserved_mem_ += mem_mb;
  return true;
}

void Host::release(double cpu_cores, double mem_mb) {
  PREPARE_CHECK(cpu_cores <= reserved_cpu_ + 1e-9);
  PREPARE_CHECK(mem_mb <= reserved_mem_ + 1e-9);
  reserved_cpu_ = std::max(0.0, reserved_cpu_ - cpu_cores);
  reserved_mem_ = std::max(0.0, reserved_mem_ - mem_mb);
}

bool Host::hosts(const Vm& vm) const {
  return std::find(vms_.begin(), vms_.end(), &vm) != vms_.end();
}

}  // namespace prepare
