// Discrete-event simulation clock.
//
// The cluster simulator advances in fixed ticks (the application dynamics
// are difference equations), but hypervisor operations complete after
// arbitrary sub-tick latencies, so the clock also carries a deferred-event
// queue: advance(dt) fires every event whose due time falls inside the
// step, in due-time order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.h"

namespace prepare {

class SimClock {
 public:
  SimClock() = default;

  double now() const { return now_; }

  /// Schedules `fn` to run when the clock reaches now() + delay.
  /// Events scheduled for the same instant fire in scheduling order.
  void schedule_in(Seconds delay, std::function<void()> fn);

  /// Advances time by dt, firing due events in order. An event callback may
  /// schedule further events; those fire too if they fall within the step.
  void advance(Seconds dt);

  /// Number of pending (not yet fired) events.
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    double due;
    std::uint64_t seq;  // tie-break so equal-time events keep FIFO order
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.due != b.due) return a.due > b.due;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace prepare
