#include "sim/hypervisor.h"

#include <sstream>

#include "common/check.h"
#include "common/logging.h"

namespace prepare {

Hypervisor::Hypervisor(SimClock* clock, Cluster* cluster, EventLog* log,
                       Config config)
    : clock_(clock), cluster_(cluster), log_(log), config_(config) {
  PREPARE_CHECK(clock != nullptr);
  PREPARE_CHECK(cluster != nullptr);
  PREPARE_CHECK(log != nullptr);
  PREPARE_CHECK(config_.migration_bandwidth_mbps > 0.0);
  PREPARE_CHECK(config_.migration_precopy_factor >= 1.0);
}

bool Hypervisor::scale_cpu(Vm* vm, double target_cores) {
  PREPARE_CHECK(vm != nullptr);
  PREPARE_CHECK(target_cores > 0.0);
  Host* host = cluster_->host_of(*vm);
  PREPARE_CHECK_MSG(host != nullptr, "VM not placed");
  const double delta = target_cores - vm->cpu_alloc();
  if (delta > 0.0 && !host->can_grow(*vm, delta, 0.0)) {
    log_->record(clock_->now(), EventKind::kInfo, vm->name(),
                 "cpu scale rejected: insufficient host headroom");
    return false;
  }
  std::ostringstream detail;
  detail << vm->cpu_alloc() << " -> " << target_cores << " cores";
  log_->record(clock_->now(), EventKind::kCpuScale, vm->name(), detail.str());
  clock_->schedule_in(Seconds{config_.cpu_scale_latency_s},
                      [vm, target_cores] { vm->set_cpu_alloc(target_cores); });
  return true;
}

bool Hypervisor::scale_memory(Vm* vm, double target_mb) {
  PREPARE_CHECK(vm != nullptr);
  PREPARE_CHECK(target_mb > 0.0);
  Host* host = cluster_->host_of(*vm);
  PREPARE_CHECK_MSG(host != nullptr, "VM not placed");
  const double delta = target_mb - vm->mem_alloc();
  if (delta > 0.0 && !host->can_grow(*vm, 0.0, delta)) {
    log_->record(clock_->now(), EventKind::kInfo, vm->name(),
                 "mem scale rejected: insufficient host headroom");
    return false;
  }
  std::ostringstream detail;
  detail << vm->mem_alloc() << " -> " << target_mb << " MB";
  log_->record(clock_->now(), EventKind::kMemScale, vm->name(), detail.str());
  clock_->schedule_in(Seconds{config_.mem_scale_latency_s},
                      [vm, target_mb] { vm->set_mem_alloc(target_mb); });
  return true;
}

double Hypervisor::migration_duration(double mem_mb) const {
  return mem_mb / config_.migration_bandwidth_mbps *
             config_.migration_precopy_factor +
         config_.migration_stopcopy_s;
}

bool Hypervisor::migrate(Vm* vm, Host* target, double new_cpu_alloc,
                         double new_mem_alloc) {
  PREPARE_CHECK(vm != nullptr);
  PREPARE_CHECK(target != nullptr);
  PREPARE_CHECK_GE(new_cpu_alloc, 0.0) << "negative landing CPU allocation";
  PREPARE_CHECK_GE(new_mem_alloc, 0.0) << "negative landing memory allocation";
  if (vm->migrating()) return false;
  Host* source = cluster_->host_of(*vm);
  PREPARE_CHECK_MSG(source != nullptr, "VM not placed");
  if (source == target) return false;

  const double cpu_after = new_cpu_alloc > 0.0 ? new_cpu_alloc : vm->cpu_alloc();
  const double mem_after = new_mem_alloc > 0.0 ? new_mem_alloc : vm->mem_alloc();
  // Reserve the landing allocation on the target for the duration of the
  // pre-copy, so concurrent migrations cannot oversubscribe it.
  if (!target->reserve(cpu_after, mem_after)) {
    log_->record(clock_->now(), EventKind::kInfo, vm->name(),
                 "migration rejected: target " + target->name() +
                     " cannot fit desired allocation");
    return false;
  }

  const double duration = migration_duration(vm->mem_alloc());
  std::ostringstream detail;
  detail << source->name() << " -> " << target->name() << " ("
         << vm->mem_alloc() << " MB, " << duration << " s)";
  log_->record(clock_->now(), EventKind::kMigrationStart, vm->name(),
               detail.str());
  vm->begin_migration(config_.migration_penalty);

  Cluster* cluster = cluster_;
  EventLog* log = log_;
  SimClock* clock = clock_;
  clock_->schedule_in(
      Seconds{duration},
      [vm, target, cpu_after, mem_after, cluster, log, clock] {
        target->release(cpu_after, mem_after);
        cluster->move_vm_with_alloc(vm, target, cpu_after, mem_after);
        vm->end_migration();
        log->record(clock->now(), EventKind::kMigrationDone, vm->name(),
                    "arrived on " + target->name());
      });
  return true;
}

}  // namespace prepare
