#include "sim/cluster.h"

#include "common/check.h"

namespace prepare {

void Cluster::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  placements_counter_ =
      obs::counter(registry, "sim.cluster.placements_total");
  moves_counter_ = obs::counter(registry, "sim.cluster.vm_moves_total");
  for (const auto& host : hosts_) host->publish_metrics(metrics_);
}

Host* Cluster::add_host(std::string name, Host::Capacity capacity) {
  PREPARE_CHECK_MSG(find_host(name) == nullptr, "duplicate host name");
  hosts_.push_back(std::make_unique<Host>(std::move(name), capacity));
  return hosts_.back().get();
}

Vm* Cluster::add_vm(std::string name, double cpu_alloc, double mem_alloc,
                    Host* host) {
  PREPARE_CHECK(host != nullptr);
  PREPARE_CHECK_MSG(find_vm(name) == nullptr, "duplicate VM name");
  vms_.push_back(std::make_unique<Vm>(std::move(name), cpu_alloc, mem_alloc));
  Vm* vm = vms_.back().get();
  vm->set_id(VmId{static_cast<std::uint32_t>(vms_.size())});
  host->place(vm);
  dcheck_placement();
  obs::inc(placements_counter_);
  host->publish_metrics(metrics_);
  return vm;
}

Host* Cluster::host_of(const Vm& vm) const {
  for (const auto& host : hosts_)
    if (host->hosts(vm)) return host.get();
  return nullptr;
}

Vm* Cluster::find_vm(const std::string& name) const {
  for (const auto& vm : vms_)
    if (vm->name() == name) return vm.get();
  return nullptr;
}

Vm* Cluster::vm_by_id(VmId id) const {
  if (id == kUnassignedVmId || id.value() > vms_.size()) return nullptr;
  Vm* vm = vms_[id.value() - 1].get();
  PREPARE_DCHECK(vm->id() == id) << "VM id/slot mismatch";
  return vm;
}

Host* Cluster::find_host(const std::string& name) const {
  for (const auto& host : hosts_)
    if (host->name() == name) return host.get();
  return nullptr;
}

Host* Cluster::find_target_host(double cpu_alloc, double mem_alloc,
                                const Host* exclude) const {
  for (const auto& host : hosts_) {
    if (host.get() == exclude) continue;
    if (host->can_fit(cpu_alloc, mem_alloc)) return host.get();
  }
  return nullptr;
}

Host* Cluster::find_best_target_host(double cpu_alloc, double mem_alloc,
                                     const Host* exclude) const {
  Host* best = nullptr;
  double best_slack = 0.0;
  for (const auto& host : hosts_) {
    if (host.get() == exclude) continue;
    if (!host->can_fit(cpu_alloc, mem_alloc)) continue;
    // Normalized slack left after placement: smaller = tighter fit.
    const double cpu_slack =
        (host->cpu_headroom() - cpu_alloc) / host->guest_cpu_capacity();
    const double mem_slack =
        (host->mem_headroom() - mem_alloc) / host->guest_mem_capacity();
    const double slack = cpu_slack + mem_slack;
    if (best == nullptr || slack < best_slack) {
      best = host.get();
      best_slack = slack;
    }
  }
  return best;
}

void Cluster::move_vm(Vm* vm, Host* target) {
  PREPARE_CHECK(vm != nullptr);
  move_vm_with_alloc(vm, target, vm->cpu_alloc(), vm->mem_alloc());
}

void Cluster::move_vm_with_alloc(Vm* vm, Host* target, double cpu_alloc,
                                 double mem_alloc) {
  PREPARE_CHECK(vm != nullptr && target != nullptr);
  Host* source = host_of(*vm);
  PREPARE_CHECK_MSG(source != nullptr, "VM is not placed anywhere");
  PREPARE_CHECK_MSG(source != target, "VM already on target host");
  PREPARE_CHECK_MSG(target->can_fit(cpu_alloc, mem_alloc),
                    "target host cannot fit " + vm->name());
  source->remove(vm);
  vm->set_cpu_alloc(cpu_alloc);
  vm->set_mem_alloc(mem_alloc);
  target->place(vm);
  dcheck_placement();
  obs::inc(moves_counter_);
  source->publish_metrics(metrics_);
  target->publish_metrics(metrics_);
}

void Cluster::dcheck_placement() const {
#if PREPARE_DCHECK_IS_ON
  std::size_t hosted = 0;
  for (const auto& vm : vms_) {
    std::size_t on = 0;
    for (const auto& host : hosts_)
      if (host->hosts(*vm)) ++on;
    PREPARE_DCHECK_EQ(on, std::size_t{1})
        << "VM " << vm->name() << " placed on " << on << " hosts";
    hosted += on;
  }
  std::size_t listed = 0;
  for (const auto& host : hosts_) listed += host->vms().size();
  PREPARE_DCHECK_EQ(listed, hosted)
      << "hosts list VMs the cluster does not own";
#endif
}

}  // namespace prepare
