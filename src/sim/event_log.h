// Append-only log of management actions taken during a run (scalings,
// migrations, alerts). Benches and tests read it to verify what happened
// and when; the trace benches print it alongside the SLO metric series.
//
// record() is thread-safe (the capacity guard and the event vector move
// together under one mutex), so parallel pipeline stages may log
// concurrently. The by-reference events() accessor is the quiescent
// exception; the counting/serializing readers take the lock.
//
// Despite the internal lock, the log is PREPARE_DRIVER_CONFINED: record
// ORDER is part of the deterministic run output (benches diff it across
// --threads N), so the controller only records from serial sections —
// and tools/prepare_analyze.py proves no worker lambda reaches it.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "common/analyze_annotations.h"
#include "common/mutex.h"
#include "obs/metrics.h"

namespace prepare {

enum class EventKind {
  kCpuScale,
  kMemScale,
  kMigrationStart,
  kMigrationDone,
  kAlert,
  kAlertConfirmed,
  kPrevention,
  kValidation,
  kInfo,
};

const char* event_kind_name(EventKind kind);

struct Event {
  double time = 0.0;
  EventKind kind = EventKind::kInfo;
  std::string subject;  ///< VM or component the event refers to
  std::string detail;
};

class PREPARE_DRIVER_CONFINED EventLog {
 public:
  /// Capacity guard: long runs (ext_scale sweeps) must not grow the log
  /// without bound. Once `capacity` events are held, further records
  /// are dropped and counted (see dropped() / the events.dropped_total
  /// metric).
  static constexpr std::size_t kDefaultCapacity = 262144;

  EventLog() = default;
  /// Copies snapshot the source under its lock; they exist for
  /// end-of-run result plumbing (ScenarioResult), not for copying a log
  /// that other threads keep appending to.
  EventLog(const EventLog& other);
  EventLog& operator=(const EventLog& other);

  void record(double time, EventKind kind, std::string subject,
              std::string detail);

  /// Quiescent-only: callers must ensure no concurrent record() while
  /// holding the reference (tests and benches read after the run).
  const std::vector<Event>& events() const
      PREPARE_NO_THREAD_SAFETY_ANALYSIS {
    return events_;
  }
  std::vector<Event> events_of(EventKind kind) const;
  std::size_t count_of(EventKind kind) const;
  void clear() {
    MutexLock lock(&mu_);
    events_.clear();
    dropped_ = 0;
    warned_dropped_ = false;
  }

  void set_capacity(std::size_t capacity) {
    MutexLock lock(&mu_);
    capacity_ = capacity;
  }
  std::size_t capacity() const {
    MutexLock lock(&mu_);
    return capacity_;
  }
  /// Events discarded by the capacity guard since the last clear().
  std::size_t dropped() const {
    MutexLock lock(&mu_);
    return dropped_;
  }

  /// Attaches observability counters (events.recorded_total,
  /// events.dropped_total). The registry must outlive every subsequent
  /// record() on this log (and on copies of it). Pass nullptr to detach.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Writes one `event` JSONL record per event (schema: see
  /// src/obs/trace_export.h). `run_id` stamps each record.
  void to_jsonl(std::ostream& os, const std::string& run_id = "") const;

 private:
  mutable Mutex mu_;
  std::vector<Event> events_ PREPARE_GUARDED_BY(mu_);
  std::size_t capacity_ PREPARE_GUARDED_BY(mu_) = kDefaultCapacity;
  std::size_t dropped_ PREPARE_GUARDED_BY(mu_) = 0;
  /// Truncation is loud exactly once: the first dropped record emits a
  /// PREPARE_WARN naming its kind; further drops only count.
  bool warned_dropped_ PREPARE_GUARDED_BY(mu_) = false;
  // Counter pointers are set before the run (set_metrics) and read-only
  // afterwards; the counters themselves are internally thread-safe.
  obs::Counter* recorded_counter_ PREPARE_GUARDED_BY(mu_) = nullptr;
  obs::Counter* dropped_counter_ PREPARE_GUARDED_BY(mu_) = nullptr;
};

}  // namespace prepare
