// Append-only log of management actions taken during a run (scalings,
// migrations, alerts). Benches and tests read it to verify what happened
// and when; the trace benches print it alongside the SLO metric series.
#pragma once

#include <string>
#include <vector>

namespace prepare {

enum class EventKind {
  kCpuScale,
  kMemScale,
  kMigrationStart,
  kMigrationDone,
  kAlert,
  kAlertConfirmed,
  kPrevention,
  kValidation,
  kInfo,
};

const char* event_kind_name(EventKind kind);

struct Event {
  double time = 0.0;
  EventKind kind = EventKind::kInfo;
  std::string subject;  ///< VM or component the event refers to
  std::string detail;
};

class EventLog {
 public:
  void record(double time, EventKind kind, std::string subject,
              std::string detail);

  const std::vector<Event>& events() const { return events_; }
  std::vector<Event> events_of(EventKind kind) const;
  std::size_t count_of(EventKind kind) const;
  void clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

}  // namespace prepare
