// Append-only log of management actions taken during a run (scalings,
// migrations, alerts). Benches and tests read it to verify what happened
// and when; the trace benches print it alongside the SLO metric series.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace prepare {

enum class EventKind {
  kCpuScale,
  kMemScale,
  kMigrationStart,
  kMigrationDone,
  kAlert,
  kAlertConfirmed,
  kPrevention,
  kValidation,
  kInfo,
};

const char* event_kind_name(EventKind kind);

struct Event {
  double time = 0.0;
  EventKind kind = EventKind::kInfo;
  std::string subject;  ///< VM or component the event refers to
  std::string detail;
};

class EventLog {
 public:
  /// Capacity guard: long runs (ext_scale sweeps) must not grow the log
  /// without bound. Once `capacity` events are held, further records
  /// are dropped and counted (see dropped() / the events.dropped_total
  /// metric).
  static constexpr std::size_t kDefaultCapacity = 262144;

  void record(double time, EventKind kind, std::string subject,
              std::string detail);

  const std::vector<Event>& events() const { return events_; }
  std::vector<Event> events_of(EventKind kind) const;
  std::size_t count_of(EventKind kind) const;
  void clear() {
    events_.clear();
    dropped_ = 0;
  }

  void set_capacity(std::size_t capacity) { capacity_ = capacity; }
  std::size_t capacity() const { return capacity_; }
  /// Events discarded by the capacity guard since the last clear().
  std::size_t dropped() const { return dropped_; }

  /// Attaches observability counters (events.recorded_total,
  /// events.dropped_total). The registry must outlive every subsequent
  /// record() on this log (and on copies of it). Pass nullptr to detach.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Writes one `event` JSONL record per event (schema: see
  /// src/obs/trace_export.h). `run_id` stamps each record.
  void to_jsonl(std::ostream& os, const std::string& run_id = "") const;

 private:
  std::vector<Event> events_;
  std::size_t capacity_ = kDefaultCapacity;
  std::size_t dropped_ = 0;
  obs::Counter* recorded_counter_ = nullptr;
  obs::Counter* dropped_counter_ = nullptr;
};

}  // namespace prepare
