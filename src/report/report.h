// Standalone HTML run report: one self-contained file with inline SVG
// charts — the SLO metric trace with violation shading and management-
// event markers, plus per-VM CPU and memory panels. No external assets,
// so the file can be archived next to the trace CSVs.
#pragma once

#include <string>

#include "monitor/metric_store.h"
#include "monitor/slo_log.h"
#include "sim/event_log.h"

namespace prepare {

struct ReportInput {
  const MetricStore* store = nullptr;  ///< required
  const SloLog* slo = nullptr;         ///< required
  const EventLog* events = nullptr;    ///< optional (event markers)
  std::string title = "PREPARE run report";
  std::string slo_metric_name = "SLO metric";
};

/// Renders the report as a single HTML document.
std::string render_html_report(const ReportInput& input);

/// Renders and writes to `path`; throws std::runtime_error on I/O error.
void write_html_report(const ReportInput& input, const std::string& path);

}  // namespace prepare
