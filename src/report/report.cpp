#include "report/report.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/check.h"
#include "common/csv.h"

namespace prepare {

namespace {

constexpr double kChartWidth = 960.0;
constexpr double kChartHeight = 220.0;
constexpr double kPad = 36.0;

struct Range {
  double lo = 0.0;
  double hi = 1.0;
  double clamp(double v) const { return std::min(hi, std::max(lo, v)); }
};

Range range_of(const std::vector<double>& xs) {
  Range r;
  if (xs.empty()) return r;
  r.lo = *std::min_element(xs.begin(), xs.end());
  r.hi = *std::max_element(xs.begin(), xs.end());
  if (r.hi - r.lo < 1e-12) {
    r.lo -= 1.0;
    r.hi += 1.0;
  }
  return r;
}

double x_of(double t, const Range& tr) {
  return kPad + (t - tr.lo) / (tr.hi - tr.lo) * (kChartWidth - 2 * kPad);
}

double y_of(double v, const Range& vr) {
  return kChartHeight - kPad -
         (v - vr.lo) / (vr.hi - vr.lo) * (kChartHeight - 2 * kPad);
}

/// Polyline for a time series within the given ranges.
std::string polyline(const TimeSeries& series, const Range& tr,
                     const Range& vr, const char* color) {
  std::ostringstream os;
  os << "<polyline fill='none' stroke='" << color
     << "' stroke-width='1.5' points='";
  for (const auto& p : series.points())
    os << x_of(p.time, tr) << "," << y_of(vr.clamp(p.value), vr) << " ";
  os << "'/>";
  return os.str();
}

std::string axes(const Range& tr, const Range& vr) {
  std::ostringstream os;
  os << "<line x1='" << kPad << "' y1='" << kChartHeight - kPad << "' x2='"
     << kChartWidth - kPad << "' y2='" << kChartHeight - kPad
     << "' stroke='#999'/>"
     << "<line x1='" << kPad << "' y1='" << kPad << "' x2='" << kPad
     << "' y2='" << kChartHeight - kPad << "' stroke='#999'/>";
  os << "<text x='" << kPad << "' y='" << kChartHeight - kPad + 16
     << "' font-size='11'>" << format_number(tr.lo) << " s</text>";
  os << "<text x='" << kChartWidth - kPad - 40 << "' y='"
     << kChartHeight - kPad + 16 << "' font-size='11'>"
     << format_number(tr.hi) << " s</text>";
  os << "<text x='4' y='" << kPad << "' font-size='11'>"
     << format_number(vr.hi) << "</text>";
  os << "<text x='4' y='" << kChartHeight - kPad << "' font-size='11'>"
     << format_number(vr.lo) << "</text>";
  return os.str();
}

std::string chart_open(const std::string& caption) {
  std::ostringstream os;
  os << "<figure><figcaption>" << caption << "</figcaption>"
     << "<svg viewBox='0 0 " << kChartWidth << " " << kChartHeight
     << "' width='" << kChartWidth << "' height='" << kChartHeight << "'>";
  return os.str();
}

const char* event_color(EventKind kind) {
  switch (kind) {
    case EventKind::kPrevention: return "#c72";
    case EventKind::kMigrationStart:
    case EventKind::kMigrationDone: return "#75c";
    case EventKind::kCpuScale:
    case EventKind::kMemScale: return "#2a7";
    default: return "#bbb";
  }
}

}  // namespace

std::string render_html_report(const ReportInput& input) {
  PREPARE_CHECK(input.store != nullptr);
  PREPARE_CHECK(input.slo != nullptr);

  const TimeSeries& metric = input.slo->metric_trace();
  PREPARE_CHECK_MSG(!metric.empty(), "report needs a recorded SLO trace");
  Range tr{metric.at(0).time, metric.back().time};
  std::vector<double> values;
  for (const auto& p : metric.points()) values.push_back(p.value);
  Range vr = range_of(values);

  std::ostringstream html;
  html << "<!doctype html><html><head><meta charset='utf-8'><title>"
       << input.title << "</title><style>"
       << "body{font-family:sans-serif;max-width:1000px;margin:2em auto}"
       << "figure{margin:1.5em 0}figcaption{font-weight:bold}"
       << "table{border-collapse:collapse}td,th{border:1px solid #ccc;"
       << "padding:4px 10px;text-align:left}</style></head><body>";
  html << "<h1>" << input.title << "</h1>";

  // --- summary table ---
  html << "<table><tr><th>metric</th><th>value</th></tr>";
  html << "<tr><td>recorded span</td><td>" << format_number(tr.lo) << " – "
       << format_number(tr.hi) << " s</td></tr>";
  html << "<tr><td>total SLO violation</td><td>"
       << format_number(input.slo->total_violation_time())
       << " s</td></tr>";
  html << "<tr><td>violation episodes</td><td>"
       << input.slo->intervals().size() << "</td></tr>";
  html << "<tr><td>monitored VMs</td><td>" << input.store->vm_names().size()
       << "</td></tr>";
  if (input.events != nullptr) {
    for (EventKind kind :
         {EventKind::kAlertConfirmed, EventKind::kPrevention,
          EventKind::kCpuScale, EventKind::kMemScale,
          EventKind::kMigrationStart}) {
      const auto count = input.events->count_of(kind);
      if (count > 0)
        html << "<tr><td>" << event_kind_name(kind) << " events</td><td>"
             << count << "</td></tr>";
    }
  }
  html << "</table>";

  // --- SLO metric chart with violation shading and event markers ---
  html << chart_open(input.slo_metric_name);
  for (const auto& iv : input.slo->intervals()) {
    html << "<rect x='" << x_of(iv.start, tr) << "' y='" << kPad
         << "' width='" << x_of(iv.end, tr) - x_of(iv.start, tr)
         << "' height='" << kChartHeight - 2 * kPad
         << "' fill='#fdd' class='violation'/>";
  }
  html << axes(tr, vr) << polyline(metric, tr, vr, "#36c");
  if (input.events != nullptr) {
    for (const auto& e : input.events->events()) {
      if (e.kind == EventKind::kAlert || e.kind == EventKind::kInfo)
        continue;
      if (e.time < tr.lo || e.time > tr.hi) continue;
      html << "<line x1='" << x_of(e.time, tr) << "' y1='" << kPad
           << "' x2='" << x_of(e.time, tr) << "' y2='"
           << kChartHeight - kPad << "' stroke='" << event_color(e.kind)
           << "' stroke-dasharray='3 3'><title>"
           << format_number(e.time) << "s " << event_kind_name(e.kind)
           << " " << e.subject << ": " << e.detail << "</title></line>";
    }
  }
  html << "</svg></figure>";

  // --- per-VM CPU and free-memory panels ---
  for (const auto& vm : input.store->vm_names()) {
    html << chart_open(vm + " — cpu_util (%) and free_mem (MB, scaled)");
    const TimeSeries& cpu =
        input.store->series(vm, Attribute::kCpuUtil);
    const TimeSeries& mem =
        input.store->series(vm, Attribute::kFreeMem);
    std::vector<double> cpu_values, mem_values;
    for (const auto& p : cpu.points()) cpu_values.push_back(p.value);
    for (const auto& p : mem.points()) mem_values.push_back(p.value);
    const Range cpur = range_of(cpu_values);
    const Range memr = range_of(mem_values);
    html << axes(tr, cpur) << polyline(cpu, tr, cpur, "#2a7")
         << polyline(mem, tr, memr, "#c72") << "</svg></figure>";
  }

  html << "</body></html>";
  return html.str();
}

void write_html_report(const ReportInput& input, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open report file: " + path);
  out << render_html_report(input);
}

}  // namespace prepare
