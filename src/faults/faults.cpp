#include "faults/faults.h"

#include "common/check.h"

namespace prepare {

Fault::Fault(std::string name, double start, double duration)
    : name_(std::move(name)), start_(start), duration_(duration) {
  PREPARE_CHECK(duration > 0.0);
}

MemoryLeakFault::MemoryLeakFault(Vm* target, double start, double duration,
                                 double leak_rate_mb_s)
    : Fault("memory_leak", start, duration),
      target_(target),
      leak_rate_mb_s_(leak_rate_mb_s) {
  PREPARE_CHECK(target != nullptr);
  PREPARE_CHECK(leak_rate_mb_s > 0.0);
}

void MemoryLeakFault::apply(double now, double dt) {
  if (!active(now)) return;
  leaked_mb_ += leak_rate_mb_s_ * dt;
  target_->add_fault_mem_demand(leaked_mb_);
  // The leaking process also burns a little CPU doing the allocations.
  target_->add_fault_cpu_demand(0.02);
}

CpuHogFault::CpuHogFault(Vm* target, double start, double duration,
                         double hog_cores)
    : Fault("cpu_hog", start, duration),
      target_(target),
      hog_cores_(hog_cores) {
  PREPARE_CHECK(target != nullptr);
  PREPARE_CHECK(hog_cores > 0.0);
}

void CpuHogFault::apply(double now, double /*dt*/) {
  if (!active(now)) return;
  target_->add_fault_cpu_demand(hog_cores_);
}

BottleneckFault::BottleneckFault(const Vm* expected_bottleneck, double start,
                                 double duration)
    : Fault("bottleneck", start, duration),
      expected_bottleneck_(expected_bottleneck) {
  PREPARE_CHECK(expected_bottleneck != nullptr);
}

void BottleneckFault::apply(double /*now*/, double /*dt*/) {
  // Intentionally empty: the overload is injected through the workload
  // generator (RampWorkload with the same window).
}

}  // namespace prepare
