// Fault schedule: owns the faults of a run and applies the active ones
// each tick. The paper injects two faults of the same type per run (the
// model learns on the first, predicts the second); the injector supports
// any schedule.
#pragma once

#include <memory>
#include <vector>

#include "faults/faults.h"

namespace prepare {

class FaultInjector {
 public:
  Fault* add(std::unique_ptr<Fault> fault);

  /// Applies every active fault. Call after Vm::begin_tick() for all VMs
  /// and before the application step.
  void apply(double now, double dt);

  /// Resets all fault state for a fresh run.
  void reset();

  /// Ground truth: the fault active at `now`, if any (first match).
  const Fault* active_fault(double now) const;

  const std::vector<std::unique_ptr<Fault>>& faults() const {
    return faults_;
  }

 private:
  std::vector<std::unique_ptr<Fault>> faults_;
};

}  // namespace prepare
