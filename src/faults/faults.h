// Fault injection (paper Section III-A).
//
// Three fault types, matching the paper's experiments for both case-study
// systems:
//
//  * memory leak — a buggy process in the target VM continuously
//    allocates and never frees: its resident set grows linearly while the
//    fault is active (gradual manifestation);
//  * CPU hog — an infinite-loop / CPU-bound competitor appears in the
//    target VM and demands a fixed large CPU share (sudden manifestation);
//  * bottleneck — the client workload ramps up until the capacity limit
//    of the bottleneck component is hit. The ramp itself lives in the
//    workload (RampWorkload); BottleneckFault is the schedule entry that
//    carries the ground-truth target for evaluation.
//
// Faults register *fault* demands on VMs — the application's own demands
// are untouched, so contention resolution in Vm::finalize_tick produces
// the interference.
#pragma once

#include <string>

#include "sim/vm.h"

namespace prepare {

class Fault {
 public:
  Fault(std::string name, double start, double duration);
  virtual ~Fault() = default;

  /// Registers this tick's fault demands on the target VM. Must be called
  /// after Vm::begin_tick() and before the application finalizes demands.
  /// No-op outside the active window.
  virtual void apply(double now, double dt) = 0;

  /// Resets internal state (e.g. leaked bytes) for a fresh run.
  virtual void reset() {}

  bool active(double now) const {
    return now >= start_ && now < start_ + duration_;
  }
  const std::string& name() const { return name_; }
  double start() const { return start_; }
  double duration() const { return duration_; }
  double end() const { return start_ + duration_; }

  /// Ground-truth faulty VM (nullptr for workload-level faults).
  virtual const Vm* target() const { return nullptr; }

 private:
  std::string name_;
  double start_;
  double duration_;
};

/// Continuous allocation without free: resident set grows at leak_rate
/// while active; the "process" dies (memory returned) when the injection
/// window ends, as in the paper's 300 s injections.
class MemoryLeakFault : public Fault {
 public:
  MemoryLeakFault(Vm* target, double start, double duration,
                  double leak_rate_mb_s = 2.5);

  void apply(double now, double dt) override;
  void reset() override { leaked_mb_ = 0.0; }
  const Vm* target() const override { return target_; }
  double leaked_mb() const { return leaked_mb_; }

 private:
  Vm* target_;
  double leak_rate_mb_s_;
  double leaked_mb_ = 0.0;
};

/// Infinite-loop competitor: demands a fixed CPU share while active.
class CpuHogFault : public Fault {
 public:
  CpuHogFault(Vm* target, double start, double duration,
              double hog_cores = 1.5);

  void apply(double now, double dt) override;
  const Vm* target() const override { return target_; }
  double hog_cores() const { return hog_cores_; }

 private:
  Vm* target_;
  double hog_cores_;
};

/// Workload-overload marker: the ramp is realized by a RampWorkload with
/// the same window; this entry records which component is expected to
/// saturate first (ground truth for diagnosis evaluation).
class BottleneckFault : public Fault {
 public:
  BottleneckFault(const Vm* expected_bottleneck, double start,
                  double duration);

  void apply(double now, double dt) override;
  const Vm* target() const override { return expected_bottleneck_; }

 private:
  const Vm* expected_bottleneck_;
};

}  // namespace prepare
