#include "faults/injector.h"

#include "common/check.h"

namespace prepare {

Fault* FaultInjector::add(std::unique_ptr<Fault> fault) {
  PREPARE_CHECK(fault != nullptr);
  faults_.push_back(std::move(fault));
  return faults_.back().get();
}

void FaultInjector::apply(double now, double dt) {
  for (auto& fault : faults_) fault->apply(now, dt);
}

void FaultInjector::reset() {
  for (auto& fault : faults_) fault->reset();
}

const Fault* FaultInjector::active_fault(double now) const {
  for (const auto& fault : faults_)
    if (fault->active(now)) return fault.get();
  return nullptr;
}

}  // namespace prepare
