#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace prepare {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::reset() {
  count_ = 0;
  mean_ = m2_ = min_ = max_ = 0.0;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev_of(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double m2 = 0.0;
  for (double x : xs) m2 += (x - m) * (x - m);
  return std::sqrt(m2 / static_cast<double>(xs.size() - 1));
}

double percentile_of(std::vector<double> xs, double p) {
  PREPARE_CHECK(p >= 0.0 && p <= 100.0);
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double correlation_of(const std::vector<double>& xs,
                      const std::vector<double>& ys) {
  PREPARE_CHECK(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = mean_of(xs);
  const double my = mean_of(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace prepare
