#include "common/logging.h"

#include <cctype>
#include <cstdlib>

namespace prepare {

LogLevel parse_log_level(const char* name, LogLevel fallback) {
  if (name == nullptr) return fallback;
  std::string lower;
  for (const char* p = name; *p != '\0'; ++p)
    lower += static_cast<char>(
        std::tolower(static_cast<unsigned char>(*p)));
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return fallback;
}

std::atomic<LogLevel> Logger::level_{
    // NOLINTNEXTLINE(concurrency-mt-unsafe): static init precedes threads
    parse_log_level(std::getenv("PREPARE_LOG_LEVEL"), LogLevel::kWarn)};

Mutex Logger::sink_mu_;
std::ostream* Logger::sink_ = &std::cerr;

std::ostream* Logger::sink() {
  MutexLock lock(&sink_mu_);
  return sink_;
}

void Logger::set_sink(std::ostream* sink) {
  MutexLock lock(&sink_mu_);
  sink_ = sink == nullptr ? &std::cerr : sink;
}

void Logger::emit(const std::string& text) {
  // Read the sink and write the record under one critical section:
  // a sink swapped out mid-emission could otherwise be destroyed (test
  // capture buffers) between the load and the write.
  MutexLock lock(&sink_mu_);
  *sink_ << text;
}

}  // namespace prepare
