#include "common/logging.h"

namespace prepare {

LogLevel Logger::level_ = LogLevel::kWarn;

}  // namespace prepare
