// Small statistics helpers used across the monitor, models and benches.
#pragma once

#include <cstddef>
#include <vector>

namespace prepare {

/// Online mean / variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void reset();

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a vector; 0 for an empty vector.
double mean_of(const std::vector<double>& xs);

/// Sample standard deviation; 0 for fewer than two samples.
double stddev_of(const std::vector<double>& xs);

/// Linear-interpolated percentile, p in [0, 100]. Sorts a copy.
double percentile_of(std::vector<double> xs, double p);

/// Pearson correlation of two equal-length vectors; 0 if degenerate.
double correlation_of(const std::vector<double>& xs,
                      const std::vector<double>& ys);

/// Exponentially-weighted moving average helper (used for load averages).
class Ewma {
 public:
  /// alpha in (0, 1]: weight of the newest observation.
  explicit Ewma(double alpha) : alpha_(alpha) {}

  double update(double x) {
    value_ = initialized_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
    initialized_ = true;
    return value_;
  }
  double value() const { return value_; }
  bool initialized() const { return initialized_; }
  void reset() { initialized_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace prepare
