// Structured precondition / invariant checking.
//
// Two severity tiers:
//
//  * PREPARE_CHECK*  — always on. Cheap conditions only: argument
//    validation on public API boundaries and invariants whose violation
//    would silently corrupt model state (probability mass, resource
//    conservation). Failure throws prepare::CheckFailure.
//  * PREPARE_DCHECK* — internal invariants on hot paths. Compiled out
//    unless PREPARE_DCHECK_IS_ON (debug builds, or any build configured
//    with -DPREPARE_FORCE_DCHECK — the sanitizer CMake profiles set this
//    so ASan/UBSan runs also exercise every invariant).
//
// All macros accept streamed context, evaluated only on failure:
//
//   PREPARE_CHECK(row < rows_) << "vm=" << vm.name() << " tick=" << tick;
//   PREPARE_CHECK_LE(used, capacity) << "host " << host.name();
//   PREPARE_CHECK_NEAR(dist.sum(), 1.0, 1e-6) << "after normalize()";
//
// The comparison forms (EQ/NE/LT/LE/GT/GE/NEAR) re-evaluate their
// operands to format the failure message, so operands must not have side
// effects (they are evaluated exactly once on the passing path).
#pragma once

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

#if defined(PREPARE_FORCE_DCHECK) || !defined(NDEBUG)
#define PREPARE_DCHECK_IS_ON 1
#else
#define PREPARE_DCHECK_IS_ON 0
#endif

namespace prepare {

/// Thrown when a PREPARE_CHECK condition fails. Carries the failing
/// expression, location, and any streamed context so callers (and tests)
/// can assert on it.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

/// Accumulates the failure message for one failed check. Created only on
/// the failure path; the CheckThrower consuming it throws CheckFailure.
class CheckStream {
 public:
  CheckStream(const char* expr, const char* file, int line) {
    os_ << "check failed: " << expr << " at " << file << ":" << line;
  }

  template <typename T>
  CheckStream& operator<<(const T& value) {
    if (!context_started_) {
      os_ << " — ";
      context_started_ = true;
    }
    os_ << value;
    return *this;
  }

  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
  bool context_started_ = false;
};

// operator& binds looser than operator<<, so the thrower fires after the
// whole context chain has been streamed into the CheckStream temporary.
struct CheckThrower {
  [[noreturn]] void operator&(const CheckStream& stream) const {
    throw CheckFailure(stream.str());
  }
};

inline bool check_near(double a, double b, double tolerance) {
  return std::fabs(a - b) <= tolerance;
}

}  // namespace detail
}  // namespace prepare

// The ternary keeps PREPARE_CHECK usable as an expression; both arms are
// void. Streamed context after the macro attaches to the CheckStream on
// the (unevaluated-on-success) failure arm.
#define PREPARE_CHECK(cond)                     \
  (cond) ? (void)0                              \
         : ::prepare::detail::CheckThrower() &  \
               ::prepare::detail::CheckStream(#cond, __FILE__, __LINE__)

#define PREPARE_CHECK_OP_IMPL(a, b, op)                                     \
  PREPARE_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "

#define PREPARE_CHECK_EQ(a, b) PREPARE_CHECK_OP_IMPL(a, b, ==)
#define PREPARE_CHECK_NE(a, b) PREPARE_CHECK_OP_IMPL(a, b, !=)
#define PREPARE_CHECK_LT(a, b) PREPARE_CHECK_OP_IMPL(a, b, <)
#define PREPARE_CHECK_LE(a, b) PREPARE_CHECK_OP_IMPL(a, b, <=)
#define PREPARE_CHECK_GT(a, b) PREPARE_CHECK_OP_IMPL(a, b, >)
#define PREPARE_CHECK_GE(a, b) PREPARE_CHECK_OP_IMPL(a, b, >=)

/// |a - b| <= tol, with both values and the tolerance in the message.
#define PREPARE_CHECK_NEAR(a, b, tol)                          \
  PREPARE_CHECK(::prepare::detail::check_near((a), (b), (tol))) \
      << "(" << (a) << " vs " << (b) << ", tol " << (tol) << ") "

/// Legacy form; prefer streaming context onto PREPARE_CHECK directly.
#define PREPARE_CHECK_MSG(cond, msg) PREPARE_CHECK(cond) << (msg)

#if PREPARE_DCHECK_IS_ON
#define PREPARE_DCHECK(cond) PREPARE_CHECK(cond)
#define PREPARE_DCHECK_EQ(a, b) PREPARE_CHECK_EQ(a, b)
#define PREPARE_DCHECK_NE(a, b) PREPARE_CHECK_NE(a, b)
#define PREPARE_DCHECK_LT(a, b) PREPARE_CHECK_LT(a, b)
#define PREPARE_DCHECK_LE(a, b) PREPARE_CHECK_LE(a, b)
#define PREPARE_DCHECK_GT(a, b) PREPARE_CHECK_GT(a, b)
#define PREPARE_DCHECK_GE(a, b) PREPARE_CHECK_GE(a, b)
#define PREPARE_DCHECK_NEAR(a, b, tol) PREPARE_CHECK_NEAR(a, b, tol)
#else
// `true || (cond)` references the operands (no unused-variable warnings)
// without evaluating them; the dead failure arm swallows streamed context.
#define PREPARE_DCHECK(cond)                    \
  (true || (cond))                              \
      ? (void)0                                 \
      : ::prepare::detail::CheckThrower() &     \
            ::prepare::detail::CheckStream("", "", 0)
#define PREPARE_DCHECK_EQ(a, b) PREPARE_DCHECK((a) == (b))
#define PREPARE_DCHECK_NE(a, b) PREPARE_DCHECK((a) != (b))
#define PREPARE_DCHECK_LT(a, b) PREPARE_DCHECK((a) < (b))
#define PREPARE_DCHECK_LE(a, b) PREPARE_DCHECK((a) <= (b))
#define PREPARE_DCHECK_GT(a, b) PREPARE_DCHECK((a) > (b))
#define PREPARE_DCHECK_GE(a, b) PREPARE_DCHECK((a) >= (b))
#define PREPARE_DCHECK_NEAR(a, b, tol) \
  PREPARE_DCHECK(::prepare::detail::check_near((a), (b), (tol)))
#endif
