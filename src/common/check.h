// Lightweight precondition / invariant checking.
//
// PREPARE_CHECK is always on (cheap conditions only: argument validation on
// public API boundaries). PREPARE_DCHECK compiles out in release builds and
// is used for internal invariants on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace prepare {

/// Thrown when a PREPARE_CHECK condition fails. Carries the failing
/// expression and location so callers (and tests) can assert on it.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}
}  // namespace detail

}  // namespace prepare

#define PREPARE_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond))                                                         \
      ::prepare::detail::check_failed(#cond, __FILE__, __LINE__, "");    \
  } while (0)

#define PREPARE_CHECK_MSG(cond, msg)                                     \
  do {                                                                   \
    if (!(cond))                                                         \
      ::prepare::detail::check_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define PREPARE_DCHECK(cond) ((void)0)
#else
#define PREPARE_DCHECK(cond) PREPARE_CHECK(cond)
#endif
