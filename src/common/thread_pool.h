// Fixed-size worker pool for fanning per-VM work out across cores.
//
// PREPARE keeps one independent model per VM (paper Section III), so
// the predict → classify step of a management round is embarrassingly
// parallel across VMs. The pool runs such fan-outs via parallel_for():
// the caller blocks until every index has been processed, which keeps
// the surrounding control flow (apply alerts in deterministic VM order)
// strictly sequential — parallel runs stay bit-identical to serial
// ones.
//
// Threading contract:
//  * parallel_for() may be called from one driver thread at a time and
//    must not be re-entered from inside a task (a worker waiting on a
//    nested fan-out would deadlock the pool).
//  * Tasks for one fan-out must touch disjoint state (or only the
//    thread-safe obs:: instruments); the pool provides no ordering
//    between them.
//  * A task that needs randomness must draw from its own per-index
//    stream (Rng::fork one stream per VM before fanning out) — sharing
//    one engine across workers is both a data race and a determinism
//    bug.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace prepare {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Runs fn(0) .. fn(count - 1) across the workers and returns when
  /// all have completed. If any task throws, the first exception (in
  /// completion order) is rethrown here after the fan-out has drained.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  Mutex mu_;
  std::condition_variable_any cv_;  ///< signals queue_ growth / stop_
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_ PREPARE_GUARDED_BY(mu_);
  bool stop_ PREPARE_GUARDED_BY(mu_) = false;
};

}  // namespace prepare
