// Deterministic random number generation.
//
// Every stochastic component in the simulator draws from an Rng seeded by
// the experiment harness, so a run is exactly reproducible from its seed.
// We wrap std::mt19937_64 rather than exposing it so call sites stay
// distribution-agnostic and we can swap the engine without touching them.
#pragma once

#include <cstdint>
#include <random>

namespace prepare {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Exponential with the given rate (lambda).
  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Poisson draw with the given mean.
  std::int64_t poisson(double mean) {
    return std::poisson_distribution<std::int64_t>(mean)(engine_);
  }

  /// Derive an independent child stream (e.g., one per VM) so adding a
  /// consumer does not perturb the draws seen by existing consumers.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace prepare
