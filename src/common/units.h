// Zero-cost strong typedefs for the quantities the pipeline passes
// between layers.
//
// The predict→diagnose→prevent core moves around a handful of scalar
// roles — VM identities, look-ahead tick counts, discretized bin
// indices, probabilities, TAN log-odds (the paper's L_i), and sim-time
// durations — all of which erase to `std::size_t` or `double` at the
// ABI level. A swapped pair of such parameters compiles silently and
// produces plausible-looking wrong numbers; these wrappers turn that
// class of bug into a compile error. `tools/prepare_analyze.py` rule
// `strong-type` enforces their use on public model/sim/controller
// boundaries.
//
// Two families:
//
//  * Ordinal types (VmId, TickIndex, BinIndex) — explicit construction,
//    NO implicit conversion in either direction: an index must never
//    silently flow into arithmetic meant for a different index space.
//    Read the raw value with .value() at the array-subscript boundary.
//  * Quantity types (Probability, LogOdds, Seconds) — explicit
//    construction, but implicit READ-OUT to double: once a value is
//    checked on the way in, arithmetic on the way out is safe and
//    should stay frictionless. Cross-unit mixups are still blocked
//    because an implicit user conversion cannot chain into another
//    explicit constructor.
//
// Probability DCHECKs its [0, 1] range (with a small fp-rounding
// slack) on construction; Seconds DCHECKs finiteness. Both checks
// compile out in release builds (see common/check.h).
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "common/check.h"

namespace prepare {

namespace internal {

/// CRTP base for the ordinal family. `Rep` is the storage type; the
/// derived tag type is what makes two ordinals incompatible.
template <typename Tag, typename Rep>
class StrongOrdinal {
 public:
  using rep = Rep;

  constexpr StrongOrdinal() = default;
  explicit constexpr StrongOrdinal(Rep value) : value_(value) {}

  constexpr Rep value() const { return value_; }

  friend constexpr bool operator==(Tag a, Tag b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(Tag a, Tag b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(Tag a, Tag b) { return a.value_ < b.value_; }
  friend constexpr bool operator<=(Tag a, Tag b) {
    return a.value_ <= b.value_;
  }
  friend constexpr bool operator>(Tag a, Tag b) { return a.value_ > b.value_; }
  friend constexpr bool operator>=(Tag a, Tag b) {
    return a.value_ >= b.value_;
  }

 private:
  Rep value_{};
};

}  // namespace internal

/// Identity of a VM within its cluster: assigned by Cluster::add_vm in
/// creation order and stable for the VM's lifetime. Vm::id() of a VM
/// never owned by a cluster is VmId{0} == kUnassignedVmId.
class VmId : public internal::StrongOrdinal<VmId, std::uint32_t> {
 public:
  using StrongOrdinal::StrongOrdinal;
};

/// A count of sampling intervals (the paper's look-ahead "k"): the
/// prediction horizon of ValuePredictor::predict / AnomalyPredictor::
/// predict, i.e. lookahead_s / sampling_interval_s rounded.
class TickIndex : public internal::StrongOrdinal<TickIndex, std::size_t> {
 public:
  using StrongOrdinal::StrongOrdinal;
};

/// Index of a discretized attribute bin (one of the paper's "single
/// states", Fig. 2): what Discretizer::discretize produces and the
/// Markov predictors and Bayesian classifiers consume.
class BinIndex : public internal::StrongOrdinal<BinIndex, std::size_t> {
 public:
  using StrongOrdinal::StrongOrdinal;
};

/// A probability in [0, 1] — checked on construction (DCHECK, with a
/// small slack for fp rounding in count ratios), frictionless on
/// read-out.
class Probability {
 public:
  constexpr Probability() = default;
  explicit Probability(double value) : value_(value) {
    PREPARE_DCHECK(value >= -1e-12 && value <= 1.0 + 1e-9)
        << "probability " << value << " outside [0, 1]";
  }

  constexpr double value() const { return value_; }
  constexpr operator double() const { return value_; }  // NOLINT

 private:
  double value_ = 0.0;
};

/// A log-odds value: the classifier score of Eq. (1) and the
/// per-attribute impact strength L_i of Eq. (2). Unbounded; positive
/// means "abnormal more likely than normal".
class LogOdds {
 public:
  constexpr LogOdds() = default;
  explicit constexpr LogOdds(double value) : value_(value) {}

  constexpr double value() const { return value_; }
  constexpr operator double() const { return value_; }  // NOLINT

  /// Log-odds accumulate additively (Eq. 1 sums the per-attribute L_i
  /// onto the prior term).
  LogOdds& operator+=(double term) {
    value_ += term;
    return *this;
  }

 private:
  double value_ = 0.0;
};

/// A duration in simulated seconds (sampling intervals, actuation
/// latencies, clock steps) — NOT a wall-clock reading; wall time never
/// enters the pipeline outside obs/stage_profiler.
class Seconds {
 public:
  constexpr Seconds() = default;
  explicit Seconds(double value) : value_(value) {
    PREPARE_DCHECK(std::isfinite(value)) << "non-finite duration";
  }

  constexpr double value() const { return value_; }
  constexpr operator double() const { return value_; }  // NOLINT

 private:
  double value_ = 0.0;
};

/// Vm::id() of a VM that no cluster has adopted yet.
inline constexpr VmId kUnassignedVmId{};

}  // namespace prepare
