// Minimal leveled logger for the library and the experiment harnesses.
//
// The logger is deliberately tiny: benches run thousands of simulated
// seconds, so anything chatty must be gated behind Level::kDebug.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace prepare {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log configuration. Not thread-safe by design: the
/// simulator is single-threaded and benches set the level once at startup.
class Logger {
 public:
  static LogLevel level() { return level_; }
  static void set_level(LogLevel level) { level_ = level; }

  /// Sink for one formatted record; flushes on destruction.
  class Record {
   public:
    Record(LogLevel level, const char* tag) : enabled_(level >= level_) {
      if (enabled_) os_ << "[" << name(level) << "] " << tag << ": ";
    }
    ~Record() {
      if (enabled_) std::cerr << os_.str() << "\n";
    }
    Record(const Record&) = delete;
    Record& operator=(const Record&) = delete;

    template <typename T>
    Record& operator<<(const T& value) {
      if (enabled_) os_ << value;
      return *this;
    }

   private:
    static const char* name(LogLevel level) {
      switch (level) {
        case LogLevel::kDebug: return "debug";
        case LogLevel::kInfo: return "info";
        case LogLevel::kWarn: return "warn";
        case LogLevel::kError: return "error";
        default: return "?";
      }
    }
    bool enabled_;
    std::ostringstream os_;
  };

 private:
  static LogLevel level_;
};

}  // namespace prepare

#define PREPARE_LOG(level, tag) ::prepare::Logger::Record(level, tag)
#define PREPARE_DEBUG(tag) PREPARE_LOG(::prepare::LogLevel::kDebug, tag)
#define PREPARE_INFO(tag) PREPARE_LOG(::prepare::LogLevel::kInfo, tag)
#define PREPARE_WARN(tag) PREPARE_LOG(::prepare::LogLevel::kWarn, tag)
#define PREPARE_ERROR(tag) PREPARE_LOG(::prepare::LogLevel::kError, tag)
