// Minimal leveled logger for the library and the experiment harnesses.
//
// The logger is deliberately tiny: benches run thousands of simulated
// seconds, so anything chatty must be gated behind Level::kDebug.
#pragma once

#include <atomic>
#include <iostream>
#include <sstream>
#include <string>

#include "common/mutex.h"

namespace prepare {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Parses a level name ("debug", "info", "warn", "error", "off" —
/// case-insensitive); returns `fallback` for null/unknown input.
LogLevel parse_log_level(const char* name, LogLevel fallback);

/// Process-wide log configuration, safe for concurrent use: records may
/// be emitted from worker threads while another thread reconfigures the
/// level or sink.
///
/// The initial level comes from the PREPARE_LOG_LEVEL environment
/// variable (read once at startup; default "warn"). The sink defaults
/// to std::cerr and can be redirected, e.g. into a file or a test
/// capture buffer; the sink object must outlive every record emitted
/// through it. Each record is written to the sink as one insertion
/// under the emission mutex, so records never interleave and a custom
/// sink (an ostringstream is not internally synchronized) needs no
/// locking of its own.
class Logger {
 public:
  // Lock-free level gate: the level is a single word with no invariant
  // coupling it to other state, and it is read on every (mostly
  // disabled) log site — a relaxed atomic load keeps that check at a
  // couple of instructions instead of a lock acquisition.
  static LogLevel level() { return level_.load(std::memory_order_relaxed); }
  static void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }

  static std::ostream* sink();
  /// Routes subsequent records to `sink` (never null; pass &std::cerr
  /// to restore the default).
  static void set_sink(std::ostream* sink);

  /// Writes one formatted record to the sink under the emission mutex.
  static void emit(const std::string& text);

  /// Sink for one formatted record; flushes on destruction.
  class Record {
   public:
    Record(LogLevel level, const char* tag) : enabled_(level >= Logger::level()) {
      if (enabled_) os_ << "[" << name(level) << "] " << tag << ": ";
    }
    ~Record() {
      if (enabled_) {
        os_ << "\n";
        Logger::emit(os_.str());
      }
    }
    Record(const Record&) = delete;
    Record& operator=(const Record&) = delete;

    template <typename T>
    Record& operator<<(const T& value) {
      if (enabled_) os_ << value;
      return *this;
    }

   private:
    static const char* name(LogLevel level) {
      switch (level) {
        case LogLevel::kDebug: return "debug";
        case LogLevel::kInfo: return "info";
        case LogLevel::kWarn: return "warn";
        case LogLevel::kError: return "error";
        default: return "?";
      }
    }
    bool enabled_;
    std::ostringstream os_;
  };

 private:
  static std::atomic<LogLevel> level_;
  static Mutex sink_mu_;
  static std::ostream* sink_ PREPARE_GUARDED_BY(sink_mu_);
};

}  // namespace prepare

#define PREPARE_LOG(level, tag) ::prepare::Logger::Record(level, tag)
#define PREPARE_DEBUG(tag) PREPARE_LOG(::prepare::LogLevel::kDebug, tag)
#define PREPARE_INFO(tag) PREPARE_LOG(::prepare::LogLevel::kInfo, tag)
#define PREPARE_WARN(tag) PREPARE_LOG(::prepare::LogLevel::kWarn, tag)
#define PREPARE_ERROR(tag) PREPARE_LOG(::prepare::LogLevel::kError, tag)
