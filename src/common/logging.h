// Minimal leveled logger for the library and the experiment harnesses.
//
// The logger is deliberately tiny: benches run thousands of simulated
// seconds, so anything chatty must be gated behind Level::kDebug.
#pragma once

#include <atomic>
#include <iostream>
#include <sstream>
#include <string>

namespace prepare {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Parses a level name ("debug", "info", "warn", "error", "off" —
/// case-insensitive); returns `fallback` for null/unknown input.
LogLevel parse_log_level(const char* name, LogLevel fallback);

/// Process-wide log configuration. Level and sink are atomics, so
/// concurrent record emission and reconfiguration are safe; each record
/// is written to the sink as a single insertion.
///
/// The initial level comes from the PREPARE_LOG_LEVEL environment
/// variable (read once at startup; default "warn"). The sink defaults
/// to std::cerr and can be redirected, e.g. into a file or a test
/// capture buffer; the sink object must outlive every record emitted
/// through it.
class Logger {
 public:
  static LogLevel level() { return level_.load(std::memory_order_relaxed); }
  static void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }

  static std::ostream* sink() {
    return sink_.load(std::memory_order_acquire);
  }
  /// Routes subsequent records to `sink` (never null; pass &std::cerr
  /// to restore the default).
  static void set_sink(std::ostream* sink) {
    sink_.store(sink == nullptr ? &std::cerr : sink,
                std::memory_order_release);
  }

  /// Sink for one formatted record; flushes on destruction.
  class Record {
   public:
    Record(LogLevel level, const char* tag) : enabled_(level >= Logger::level()) {
      if (enabled_) os_ << "[" << name(level) << "] " << tag << ": ";
    }
    ~Record() {
      if (enabled_) {
        os_ << "\n";
        *Logger::sink() << os_.str();
      }
    }
    Record(const Record&) = delete;
    Record& operator=(const Record&) = delete;

    template <typename T>
    Record& operator<<(const T& value) {
      if (enabled_) os_ << value;
      return *this;
    }

   private:
    static const char* name(LogLevel level) {
      switch (level) {
        case LogLevel::kDebug: return "debug";
        case LogLevel::kInfo: return "info";
        case LogLevel::kWarn: return "warn";
        case LogLevel::kError: return "error";
        default: return "?";
      }
    }
    bool enabled_;
    std::ostringstream os_;
  };

 private:
  static std::atomic<LogLevel> level_;
  static std::atomic<std::ostream*> sink_;
};

}  // namespace prepare

#define PREPARE_LOG(level, tag) ::prepare::Logger::Record(level, tag)
#define PREPARE_DEBUG(tag) PREPARE_LOG(::prepare::LogLevel::kDebug, tag)
#define PREPARE_INFO(tag) PREPARE_LOG(::prepare::LogLevel::kInfo, tag)
#define PREPARE_WARN(tag) PREPARE_LOG(::prepare::LogLevel::kWarn, tag)
#define PREPARE_ERROR(tag) PREPARE_LOG(::prepare::LogLevel::kError, tag)
