// CSV writer used by benches to dump figure data series next to the
// human-readable tables they print.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace prepare {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws
  /// std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Writes one row; the column count must match the header.
  void row(const std::vector<double>& values);
  void row(const std::vector<std::string>& values);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::size_t columns_;
  std::ofstream out_;
};

/// Render a double without trailing zeros ("3.5", "120", "0.001").
std::string format_number(double value);

/// Minimal CSV reader for the files CsvWriter produces (no quoting or
/// embedded commas — our writers never emit them).
class CsvReader {
 public:
  /// Opens `path` and reads the header row. Throws std::runtime_error if
  /// the file cannot be opened or is empty.
  explicit CsvReader(const std::string& path);

  const std::vector<std::string>& header() const { return header_; }

  /// Index of a header column; throws CheckFailure if absent.
  std::size_t column(const std::string& name) const;

  /// Reads the next data row into `fields` (sized to the header width).
  /// Returns false at end of file. Throws CheckFailure on a row whose
  /// field count does not match the header.
  bool next(std::vector<std::string>* fields);

 private:
  std::ifstream in_;
  std::vector<std::string> header_;
};

/// Splits one CSV line on commas (no quote handling).
std::vector<std::string> split_csv_line(const std::string& line);

}  // namespace prepare
