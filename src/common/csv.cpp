#include "common/csv.h"

#include <sstream>
#include <stdexcept>

#include "common/check.h"

namespace prepare {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), columns_(header.size()), out_(path) {
  if (!out_) throw std::runtime_error("cannot open csv file: " + path);
  PREPARE_CHECK(!header.empty());
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out_ << ",";
    out_ << header[i];
  }
  out_ << "\n";
}

void CsvWriter::row(const std::vector<double>& values) {
  PREPARE_CHECK(values.size() == columns_);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ",";
    out_ << format_number(values[i]);
  }
  out_ << "\n";
}

void CsvWriter::row(const std::vector<std::string>& values) {
  PREPARE_CHECK(values.size() == columns_);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ",";
    out_ << values[i];
  }
  out_ << "\n";
}

std::string format_number(double value) {
  std::ostringstream os;
  os.precision(6);
  os << value;
  return os.str();
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c != '\r') {
      field.push_back(c);
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

CsvReader::CsvReader(const std::string& path) : in_(path) {
  if (!in_) throw std::runtime_error("cannot open csv file: " + path);
  std::string line;
  if (!std::getline(in_, line))
    throw std::runtime_error("empty csv file: " + path);
  header_ = split_csv_line(line);
}

std::size_t CsvReader::column(const std::string& name) const {
  for (std::size_t i = 0; i < header_.size(); ++i)
    if (header_[i] == name) return i;
  PREPARE_CHECK_MSG(false, "csv column not found: " + name);
  return 0;  // unreachable
}

bool CsvReader::next(std::vector<std::string>* fields) {
  PREPARE_CHECK(fields != nullptr);
  std::string line;
  while (std::getline(in_, line)) {
    if (line.empty()) continue;
    *fields = split_csv_line(line);
    PREPARE_CHECK_MSG(fields->size() == header_.size(),
                      "csv row width does not match header");
    return true;
  }
  return false;
}

}  // namespace prepare
