// Contract annotations for the interprocedural analyzer
// (tools/prepare_analyze.py).
//
// PR 3 made the locking discipline machine-checked with Clang's
// -Wthread-safety; these macros do the same for the two contracts that
// previously lived only in comments:
//
//   PREPARE_DRIVER_CONFINED   on a class (or a single method): instances
//       are confined to the single driver thread. The analyzer builds
//       the whole-program call graph and proves that no annotated
//       method is reachable from a worker lambda handed to
//       ThreadPool::parallel_for (rule `confinement`). Confinement is a
//       determinism contract, not only a race contract — EventLog is
//       internally locked yet still confined, because the recorded
//       event ORDER must not depend on worker scheduling.
//
//   PREPARE_HOT   on a function: it is on the steady-state per-tick
//       prediction path and must transitively perform no heap
//       allocation (operator new, malloc, growing container ops, string
//       construction), acquire no lock, and do no stdio/stream IO
//       (rules `hot-alloc` / `hot-lock` / `hot-io`). Worker lambdas
//       passed to parallel_for are implicitly hot — the fan-out body IS
//       the steady state.
//
// Deliberate exceptions (e.g. a capacity-steady `resize` that only
// reuses storage after the first round, or the Histogram instrument's
// internal lock) are suppressed at the offending line with
//   // prepare-analyze: allow(RULE): <reason>        (RULE e.g. hot-alloc)
// and every suppression is itself audited: the analyzer flags allow()
// comments that no longer suppress anything (rule `unused-suppression`).
//
// The attribute is Clang's `annotate`, which survives into the AST that
// libclang sees but generates no code; GCC builds see a no-op macro, so
// annotated code compiles everywhere while CI (which parses with
// libclang regardless of the build compiler) still enforces the
// contracts. See DESIGN.md "Static analysis architecture".
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(annotate)
#define PREPARE_ANALYZE_ANNOTATION(tag) __attribute__((annotate(tag)))
#endif
#endif
#ifndef PREPARE_ANALYZE_ANNOTATION
#define PREPARE_ANALYZE_ANNOTATION(tag)  // no-op outside Clang
#endif

/// Type (or method) confined to the driver thread: never reachable from
/// a ThreadPool::parallel_for worker lambda.
#define PREPARE_DRIVER_CONFINED PREPARE_ANALYZE_ANNOTATION("prepare::driver_confined")

/// Steady-state hot path: transitively allocation-, lock- and IO-free.
#define PREPARE_HOT PREPARE_ANALYZE_ANNOTATION("prepare::hot")
