// Annotated mutex wrappers.
//
// All lockable members in the tree use prepare::Mutex instead of a bare
// std::mutex (enforced by tools/prepare_analyze.py, rule mutex-type,
// which matches canonical types so an alias cannot hide one): the
// PREPARE_CAPABILITY annotation is what lets
// Clang's -Wthread-safety analysis connect PREPARE_GUARDED_BY members
// to the lock that protects them, turning missing-lock bugs into
// compile errors instead of TSan reports.
//
// Mutex satisfies BasicLockable, so it works directly with
// std::condition_variable_any (see src/common/thread_pool.cpp). Prefer
// the RAII MutexLock; call lock()/unlock() manually only where a scope
// does not fit (condition-variable wait loops).
#pragma once

#include <mutex>

#include "common/thread_annotations.h"

namespace prepare {

class PREPARE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PREPARE_ACQUIRE() { mu_.lock(); }
  void unlock() PREPARE_RELEASE() { mu_.unlock(); }
  bool try_lock() PREPARE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over a prepare::Mutex (the annotated std::lock_guard).
class PREPARE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) PREPARE_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() PREPARE_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

}  // namespace prepare
