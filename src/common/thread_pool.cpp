#include "common/thread_pool.h"

#include <exception>
#include <utility>

#include "common/check.h"

namespace prepare {

namespace {

/// Completion latch for one parallel_for fan-out. Lives on the caller's
/// stack: parallel_for blocks until remaining hits zero, so references
/// captured by queued tasks never dangle.
struct Join {
  explicit Join(std::size_t count) : remaining(count) {}

  Mutex mu;
  std::condition_variable_any cv;  ///< signals remaining == 0
  std::size_t remaining PREPARE_GUARDED_BY(mu);
  std::exception_ptr error PREPARE_GUARDED_BY(mu);
};

void run_task(Join* join, const std::function<void(std::size_t)>& fn,
              std::size_t index) {
  std::exception_ptr error;
  try {
    fn(index);
  } catch (...) {
    error = std::current_exception();
  }
  join->mu.lock();
  if (error != nullptr && join->error == nullptr) join->error = error;
  // Notify while still holding the mutex: parallel_for destroys the
  // Join as soon as it observes remaining == 0, so signalling after
  // unlock would race the caller's teardown of cv itself.
  if (--join->remaining == 0) join->cv.notify_all();
  join->mu.unlock();
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  PREPARE_CHECK_MSG(threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  mu_.lock();
  stop_ = true;
  mu_.unlock();
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  mu_.lock();
  for (;;) {
    while (!stop_ && queue_.empty()) cv_.wait(mu_);
    if (queue_.empty()) break;  // stop requested and nothing left to drain
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    mu_.unlock();
    task();
    mu_.lock();
  }
  mu_.unlock();
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  Join join(count);
  mu_.lock();
  for (std::size_t i = 0; i < count; ++i)
    queue_.push_back([&join, &fn, i] { run_task(&join, fn, i); });
  mu_.unlock();
  cv_.notify_all();

  join.mu.lock();
  while (join.remaining > 0) join.cv.wait(join.mu);
  std::exception_ptr error = join.error;
  join.mu.unlock();
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace prepare
