// Clang thread-safety-analysis annotations.
//
// These macros turn a Clang build with -Wthread-safety into a
// compile-time race detector: members carry PREPARE_GUARDED_BY(mu),
// private helpers carry PREPARE_REQUIRES(mu), and the analysis proves
// every access happens under the right lock. On compilers without the
// attribute (GCC) every macro expands to nothing, so annotated code
// builds everywhere; CI runs the Clang pass (tools/lint.sh
// thread-safety) so violations still block merges.
//
// Vocabulary (see DESIGN.md "Concurrency model & locking discipline"):
//
//   PREPARE_CAPABILITY(name)      type is a lock ("capability")
//   PREPARE_SCOPED_CAPABILITY     RAII type that acquires in its ctor
//   PREPARE_GUARDED_BY(mu)        member readable/writable only under mu
//   PREPARE_PT_GUARDED_BY(mu)     pointee guarded by mu (pointer itself not)
//   PREPARE_REQUIRES(mu)          caller must already hold mu
//   PREPARE_ACQUIRE(mu)           function acquires mu and does not release
//   PREPARE_RELEASE(mu)           function releases mu
//   PREPARE_TRY_ACQUIRE(ok, mu)   acquires mu iff it returns `ok`
//   PREPARE_EXCLUDES(mu)          caller must NOT hold mu (non-reentrancy)
//   PREPARE_NO_THREAD_SAFETY_ANALYSIS
//                                 opt a function out (quiescent read paths;
//                                 always pair with a comment saying why)
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define PREPARE_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef PREPARE_THREAD_ANNOTATION
#define PREPARE_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define PREPARE_CAPABILITY(x) PREPARE_THREAD_ANNOTATION(capability(x))
#define PREPARE_SCOPED_CAPABILITY PREPARE_THREAD_ANNOTATION(scoped_lockable)
#define PREPARE_GUARDED_BY(x) PREPARE_THREAD_ANNOTATION(guarded_by(x))
#define PREPARE_PT_GUARDED_BY(x) PREPARE_THREAD_ANNOTATION(pt_guarded_by(x))
#define PREPARE_ACQUIRED_BEFORE(...) \
  PREPARE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define PREPARE_ACQUIRED_AFTER(...) \
  PREPARE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define PREPARE_REQUIRES(...) \
  PREPARE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PREPARE_REQUIRES_SHARED(...) \
  PREPARE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define PREPARE_ACQUIRE(...) \
  PREPARE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PREPARE_ACQUIRE_SHARED(...) \
  PREPARE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define PREPARE_RELEASE(...) \
  PREPARE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PREPARE_RELEASE_SHARED(...) \
  PREPARE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define PREPARE_TRY_ACQUIRE(...) \
  PREPARE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define PREPARE_EXCLUDES(...) \
  PREPARE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define PREPARE_ASSERT_CAPABILITY(x) \
  PREPARE_THREAD_ANNOTATION(assert_capability(x))
#define PREPARE_RETURN_CAPABILITY(x) \
  PREPARE_THREAD_ANNOTATION(lock_returned(x))
#define PREPARE_NO_THREAD_SAFETY_ANALYSIS \
  PREPARE_THREAD_ANNOTATION(no_thread_safety_analysis)
