// Workload driven by a recorded rate series — replay a real trace file
// against the simulated applications (the way the paper replays the NASA
// web-server trace against RUBiS), instead of the synthetic generators.
//
// Rates are linearly interpolated between points; before the first point
// the first rate holds, after the last the series wraps around (so a
// short trace can drive a long run), scaled by `rate_scale`.
#pragma once

#include <string>
#include <vector>

#include "workload/workload.h"

namespace prepare {

class TraceWorkload : public Workload {
 public:
  struct Point {
    double time = 0.0;
    double rate = 0.0;
  };

  /// Points must be non-empty with strictly increasing times and
  /// non-negative rates.
  explicit TraceWorkload(std::vector<Point> points, double rate_scale = 1.0);

  /// Loads a two-column CSV (header: time_s, rate) written by hand or by
  /// an external exporter.
  static TraceWorkload from_csv(const std::string& path,
                                double rate_scale = 1.0);

  double rate(double t) const override;

  std::size_t size() const { return points_.size(); }
  /// Duration covered by the trace (time of last point).
  double span() const { return points_.back().time; }

 private:
  std::vector<Point> points_;
  double rate_scale_;
};

}  // namespace prepare
