#include "workload/trace_workload.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/csv.h"

namespace prepare {

TraceWorkload::TraceWorkload(std::vector<Point> points, double rate_scale)
    : points_(std::move(points)), rate_scale_(rate_scale) {
  PREPARE_CHECK_MSG(!points_.empty(), "trace workload needs points");
  PREPARE_CHECK(rate_scale > 0.0);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    PREPARE_CHECK(points_[i].rate >= 0.0);
    if (i > 0)
      PREPARE_CHECK_MSG(points_[i].time > points_[i - 1].time,
                        "trace times must be strictly increasing");
  }
}

TraceWorkload TraceWorkload::from_csv(const std::string& path,
                                      double rate_scale) {
  CsvReader csv(path);
  const std::size_t time_col = csv.column("time_s");
  const std::size_t rate_col = csv.column("rate");
  std::vector<Point> points;
  std::vector<std::string> fields;
  while (csv.next(&fields))
    points.push_back(
        {std::stod(fields[time_col]), std::stod(fields[rate_col])});
  return TraceWorkload(std::move(points), rate_scale);
}

double TraceWorkload::rate(double t) const {
  // Wrap long runs around the trace span (a zero-span single-point trace
  // is constant).
  if (points_.size() == 1) return points_[0].rate * rate_scale_;
  const double span_t = points_.back().time;
  double wrapped = t;
  if (span_t > 0.0 && t > span_t)
    wrapped = std::fmod(t, span_t);
  if (wrapped <= points_.front().time)
    return points_.front().rate * rate_scale_;

  const auto upper = std::upper_bound(
      points_.begin(), points_.end(), wrapped,
      [](double tq, const Point& p) { return tq < p.time; });
  if (upper == points_.end()) return points_.back().rate * rate_scale_;
  const auto lower = std::prev(upper);
  const double frac =
      (wrapped - lower->time) / (upper->time - lower->time);
  return (lower->rate + frac * (upper->rate - lower->rate)) * rate_scale_;
}

}  // namespace prepare
