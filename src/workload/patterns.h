// Elementary workload patterns: constant, step, linear ramp, sinusoid,
// and an additive composite. The bottleneck fault drives a RampWorkload;
// the sinusoid exercises the non-Markovian attribute behaviour that
// motivates the 2-dependent Markov model (paper Section II-B).
#pragma once

#include <memory>
#include <vector>

#include "workload/workload.h"

namespace prepare {

class ConstantWorkload : public Workload {
 public:
  explicit ConstantWorkload(double rate);
  double rate(double t) const override;

 private:
  double rate_;
};

/// rate = base before t_step, base + jump after.
class StepWorkload : public Workload {
 public:
  StepWorkload(double base, double jump, double t_step);
  double rate(double t) const override;

 private:
  double base_, jump_, t_step_;
};

/// rate = base outside [t0, t1]; inside, grows linearly from base by
/// slope*(t - t0), capped at `cap` (0 = uncapped). Reverts to base after
/// t1 (the injected overload ends).
class RampWorkload : public Workload {
 public:
  RampWorkload(double base, double slope, double t0, double t1,
               double cap = 0.0);
  double rate(double t) const override;

 private:
  double base_, slope_, t0_, t1_, cap_;
};

/// rate = base + amplitude * sin(2*pi*t / period).
class SineWorkload : public Workload {
 public:
  SineWorkload(double base, double amplitude, double period_s);
  double rate(double t) const override;

 private:
  double base_, amplitude_, period_;
};

/// Sum of component workloads (clamped at zero).
class CompositeWorkload : public Workload {
 public:
  void add(std::unique_ptr<Workload> w);
  double rate(double t) const override;

 private:
  std::vector<std::unique_ptr<Workload>> parts_;
};

}  // namespace prepare
