#include "workload/nasa_trace.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.h"
#include "common/rng.h"

namespace prepare {

NasaTraceWorkload::NasaTraceWorkload(Config config, std::uint64_t seed)
    : config_(config) {
  PREPARE_CHECK(config_.base_rate > 0.0);
  PREPARE_CHECK(config_.compression > 0.0);
  PREPARE_CHECK(config_.horizon_s > 0.0);
  // Precompute burst arrivals as a Poisson process over compressed time.
  Rng rng(seed);
  const double compressed_day = config_.day_seconds / config_.compression;
  const double burst_rate_per_s = config_.burst_rate_per_day / compressed_day;
  double t = 0.0;
  while (true) {
    t += rng.exponential(burst_rate_per_s);
    if (t > config_.horizon_s) break;
    const double magnitude =
        config_.burst_magnitude * (0.5 + rng.uniform(0.0, 1.0));
    const double duration =
        config_.burst_duration_s * (0.5 + rng.uniform(0.0, 1.0));
    bursts_.push_back({t, duration, magnitude});
  }
}

double NasaTraceWorkload::rate(double t) const {
  const double compressed_day = config_.day_seconds / config_.compression;
  const double day_phase = 2.0 * std::numbers::pi * t / compressed_day;
  // The NASA trace peaks mid-afternoon and bottoms out pre-dawn; starting
  // at 00:00 means the run begins near the minimum and climbs.
  double shape = 1.0 - config_.diurnal_amplitude * std::cos(day_phase);
  shape *= 1.0 + config_.weekly_amplitude *
                     std::sin(day_phase / 7.0 + 0.6);
  // Bursts (flash crowds): raised-cosine pulses.
  for (const auto& burst : bursts_) {
    if (t >= burst.start && t <= burst.start + burst.duration) {
      const double phase = (t - burst.start) / burst.duration;
      shape += burst.magnitude *
               0.5 * (1.0 - std::cos(2.0 * std::numbers::pi * phase));
    }
  }
  // Deterministic high-frequency jitter in place of per-request noise.
  shape *= 1.0 + config_.noise * std::sin(t * 1.7) * std::cos(t * 0.41);
  return std::max(0.0, config_.base_rate * shape);
}

}  // namespace prepare
