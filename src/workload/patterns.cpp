#include "workload/patterns.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.h"

namespace prepare {

ConstantWorkload::ConstantWorkload(double rate) : rate_(rate) {
  PREPARE_CHECK(rate >= 0.0);
}

double ConstantWorkload::rate(double) const { return rate_; }

StepWorkload::StepWorkload(double base, double jump, double t_step)
    : base_(base), jump_(jump), t_step_(t_step) {
  PREPARE_CHECK(base >= 0.0);
}

double StepWorkload::rate(double t) const {
  return std::max(0.0, t >= t_step_ ? base_ + jump_ : base_);
}

RampWorkload::RampWorkload(double base, double slope, double t0, double t1,
                           double cap)
    : base_(base), slope_(slope), t0_(t0), t1_(t1), cap_(cap) {
  PREPARE_CHECK(base >= 0.0);
  PREPARE_CHECK(t1 > t0);
}

double RampWorkload::rate(double t) const {
  if (t < t0_ || t > t1_) return base_;
  double r = base_ + slope_ * (t - t0_);
  if (cap_ > 0.0) r = std::min(r, cap_);
  return std::max(0.0, r);
}

SineWorkload::SineWorkload(double base, double amplitude, double period_s)
    : base_(base), amplitude_(amplitude), period_(period_s) {
  PREPARE_CHECK(period_s > 0.0);
}

double SineWorkload::rate(double t) const {
  const double r =
      base_ + amplitude_ * std::sin(2.0 * std::numbers::pi * t / period_);
  return std::max(0.0, r);
}

void CompositeWorkload::add(std::unique_ptr<Workload> w) {
  PREPARE_CHECK(w != nullptr);
  parts_.push_back(std::move(w));
}

double CompositeWorkload::rate(double t) const {
  double total = 0.0;
  for (const auto& part : parts_) total += part->rate(t);
  return std::max(0.0, total);
}

}  // namespace prepare
