// Synthetic stand-in for the NASA web-server trace (July 1995, IRCache).
//
// The paper replays the request intensity of that trace against RUBiS to
// get "dynamic workloads with realistic time variations". The archive is
// not redistributable here, so we model the well-documented shape of the
// trace instead: a strong diurnal cycle, a weekly modulation, short
// self-similar bursts, and multiplicative noise. The generator is
// deterministic given its seed; bursts are precomputed so rate(t) is a
// pure function of t.
#pragma once

#include <cstdint>
#include <vector>

#include "workload/workload.h"

namespace prepare {

struct NasaTraceConfig {
  double base_rate = 60.0;         ///< mean requests/s
  double diurnal_amplitude = 0.45; ///< relative day/night swing
  double weekly_amplitude = 0.10;  ///< relative weekday/weekend swing
  double day_seconds = 86400.0;
  /// Time compression: simulated runs last ~1800 s, so one "day" of
  /// trace shape is squeezed into day_seconds / compression seconds.
  double compression = 96.0;
  double burst_rate_per_day = 18.0; ///< expected bursts per (real) day
  double burst_magnitude = 0.55;    ///< relative burst height (mean)
  double burst_duration_s = 45.0;   ///< burst length in compressed time
  double noise = 0.04;              ///< relative periodic jitter
  double horizon_s = 7200.0;        ///< precompute bursts up to here
};

class NasaTraceWorkload : public Workload {
 public:
  using Config = NasaTraceConfig;

  explicit NasaTraceWorkload(Config config = {}, std::uint64_t seed = 7);

  double rate(double t) const override;

  const Config& config() const { return config_; }
  std::size_t burst_count() const { return bursts_.size(); }

 private:
  struct Burst {
    double start;
    double duration;
    double magnitude;  // relative
  };

  Config config_;
  std::vector<Burst> bursts_;
};

}  // namespace prepare
