// Workload generators: request/tuple arrival intensity as a function of
// simulated time. The client workload generators of the paper (UDP packet
// source for System S, HTTP client emulating the NASA web-server trace
// for RUBiS) are modeled as rate processes sampled once per tick.
#pragma once

namespace prepare {

class Workload {
 public:
  virtual ~Workload() = default;

  /// Arrival intensity (requests/s or tuples/s) at simulated time t.
  virtual double rate(double t) const = 0;
};

}  // namespace prepare
