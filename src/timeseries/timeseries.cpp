#include "timeseries/timeseries.h"

#include <algorithm>

#include "common/check.h"

namespace prepare {

void TimeSeries::append(double time, double value) {
  PREPARE_CHECK_MSG(points_.empty() || time > points_.back().time,
                    "timestamps must be strictly increasing");
  points_.push_back({time, value});
}

const TimePoint& TimeSeries::at(std::size_t i) const {
  PREPARE_CHECK(i < points_.size());
  return points_[i];
}

const TimePoint& TimeSeries::back() const {
  PREPARE_CHECK(!points_.empty());
  return points_.back();
}

std::vector<double> TimeSeries::values_between(double t0, double t1) const {
  std::vector<double> out;
  auto lo = std::lower_bound(
      points_.begin(), points_.end(), t0,
      [](const TimePoint& p, double t) { return p.time < t; });
  for (auto it = lo; it != points_.end() && it->time <= t1; ++it)
    out.push_back(it->value);
  return out;
}

std::vector<double> TimeSeries::last_values(std::size_t n) const {
  const std::size_t take = std::min(n, points_.size());
  std::vector<double> out;
  out.reserve(take);
  for (std::size_t i = points_.size() - take; i < points_.size(); ++i)
    out.push_back(points_[i].value);
  return out;
}

std::optional<double> TimeSeries::value_at_or_before(double t) const {
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](double tq, const TimePoint& p) { return tq < p.time; });
  if (it == points_.begin()) return std::nullopt;
  return std::prev(it)->value;
}

std::optional<double> TimeSeries::mean_between(double t0, double t1) const {
  const auto vals = values_between(t0, t1);
  if (vals.empty()) return std::nullopt;
  double sum = 0.0;
  for (double v : vals) sum += v;
  return sum / static_cast<double>(vals.size());
}

}  // namespace prepare
