// Online change-point detection (two-sided CUSUM).
//
// PREPARE uses change-point detection on every component's metrics to
// distinguish a workload change (change points on ALL components at about
// the same time) from an internal fault (change points on the faulty
// component only) — Section II-C of the paper, citing PAL [13].
#pragma once

#include <cstddef>
#include <optional>

namespace prepare {

/// Two-sided CUSUM detector over a standardized stream.
///
/// The detector learns the baseline mean/stddev from the first
/// `warmup_samples` observations, then accumulates positive and negative
/// deviations beyond `drift` standard deviations; a change is flagged when
/// either accumulator exceeds `threshold` standard deviations.
struct CusumConfig {
  std::size_t warmup_samples = 36;  ///< baseline estimation window
  double drift = 1.0;               ///< slack, in baseline stddevs
  double threshold = 10.0;          ///< decision level, in baseline stddevs
  double min_stddev = 1e-6;         ///< floor to avoid division blowups
};

class CusumDetector {
 public:
  using Config = CusumConfig;

  explicit CusumDetector(Config config = Config());

  /// Feeds one observation; returns true if a change point fires on it.
  bool update(double value);

  /// Whether a change has been flagged since the last reset.
  bool changed() const { return changed_; }

  /// Time index (0-based sample number) of the first detected change.
  std::optional<std::size_t> change_index() const { return change_index_; }

  /// Re-arm the detector, keeping the learned baseline.
  void rearm();

  /// Full reset: drops baseline and accumulated state.
  void reset();

  bool baseline_ready() const { return baseline_ready_; }
  double baseline_mean() const { return mean_; }
  double baseline_stddev() const { return stddev_; }

 private:
  Config config_;
  // baseline
  std::size_t warmup_seen_ = 0;
  double warmup_sum_ = 0.0;
  double warmup_sumsq_ = 0.0;
  double mean_ = 0.0;
  double stddev_ = 1.0;
  bool baseline_ready_ = false;
  // CUSUM state
  double pos_ = 0.0;
  double neg_ = 0.0;
  bool changed_ = false;
  std::optional<std::size_t> change_index_;
  std::size_t samples_seen_ = 0;
};

}  // namespace prepare
