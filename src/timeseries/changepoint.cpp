#include "timeseries/changepoint.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace prepare {

CusumDetector::CusumDetector(Config config) : config_(config) {
  PREPARE_CHECK(config_.warmup_samples >= 2);
  PREPARE_CHECK(config_.threshold > 0.0);
  PREPARE_CHECK(config_.drift >= 0.0);
}

bool CusumDetector::update(double value) {
  const std::size_t index = samples_seen_++;
  if (!baseline_ready_) {
    ++warmup_seen_;
    warmup_sum_ += value;
    warmup_sumsq_ += value * value;
    if (warmup_seen_ == config_.warmup_samples) {
      const double n = static_cast<double>(warmup_seen_);
      mean_ = warmup_sum_ / n;
      const double var =
          std::max(0.0, warmup_sumsq_ / n - mean_ * mean_);
      stddev_ = std::max(std::sqrt(var), config_.min_stddev);
      baseline_ready_ = true;
    }
    return false;
  }
  const double z = (value - mean_) / stddev_;
  pos_ = std::max(0.0, pos_ + z - config_.drift);
  neg_ = std::max(0.0, neg_ - z - config_.drift);
  if (pos_ > config_.threshold || neg_ > config_.threshold) {
    if (!changed_) change_index_ = index;
    changed_ = true;
    return true;
  }
  return false;
}

void CusumDetector::rearm() {
  pos_ = neg_ = 0.0;
  changed_ = false;
  change_index_.reset();
}

void CusumDetector::reset() {
  rearm();
  warmup_seen_ = 0;
  warmup_sum_ = warmup_sumsq_ = 0.0;
  mean_ = 0.0;
  stddev_ = 1.0;
  baseline_ready_ = false;
  samples_seen_ = 0;
}

}  // namespace prepare
