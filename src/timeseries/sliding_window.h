// Fixed-capacity sliding window over the most recent observations.
//
// Used by the alarm filter (last W predictions) and by the load-average
// style derived metrics in the monitor.
#pragma once

#include <cstddef>
#include <deque>
#include <numeric>

#include "common/check.h"

namespace prepare {

template <typename T>
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity) : capacity_(capacity) {
    PREPARE_CHECK(capacity > 0);
  }

  void push(const T& value) {
    if (items_.size() == capacity_) items_.pop_front();
    items_.push_back(value);
  }

  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool full() const { return items_.size() == capacity_; }

  const T& operator[](std::size_t i) const {
    PREPARE_CHECK_LT(i, items_.size()) << "window index out of range";
    return items_[i];
  }
  const T& newest() const {
    PREPARE_CHECK(!items_.empty());
    return items_.back();
  }

  /// Number of elements for which pred(x) is true.
  template <typename Pred>
  std::size_t count_if(Pred pred) const {
    std::size_t n = 0;
    for (const auto& x : items_)
      if (pred(x)) ++n;
    return n;
  }

  /// Sum of elements (requires T supports +).
  T sum() const { return std::accumulate(items_.begin(), items_.end(), T{}); }

  void clear() { items_.clear(); }

  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

 private:
  std::size_t capacity_;
  std::deque<T> items_;
};

}  // namespace prepare
