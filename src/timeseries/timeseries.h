// Time-stamped scalar series with window queries.
//
// One TimeSeries holds one attribute of one VM (e.g. "free_mem of vm3"),
// sampled at a roughly regular interval. The monitor appends; the models
// and the prevention validator read windows out of it.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace prepare {

struct TimePoint {
  double time = 0.0;   ///< seconds since experiment start
  double value = 0.0;
};

class TimeSeries {
 public:
  TimeSeries() = default;

  /// Appends a sample; time must be strictly increasing.
  void append(double time, double value);

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const TimePoint& at(std::size_t i) const;
  const TimePoint& back() const;
  const std::vector<TimePoint>& points() const { return points_; }

  /// Values with time in [t0, t1] (inclusive).
  std::vector<double> values_between(double t0, double t1) const;

  /// The last `n` values (fewer if the series is shorter).
  std::vector<double> last_values(std::size_t n) const;

  /// Value at the latest sample time <= t, if any.
  std::optional<double> value_at_or_before(double t) const;

  /// Mean of values in [t0, t1]; nullopt if no samples fall inside.
  std::optional<double> mean_between(double t0, double t1) const;

  void clear() { points_.clear(); }

 private:
  std::vector<TimePoint> points_;
};

}  // namespace prepare
