// Online anomaly predictor: attribute-value prediction + multi-variant
// anomaly classification (paper Section II-B).
//
// One instance models one *component* (normally one VM with its 13
// attributes; the "monolithic" baseline of Fig. 10 feeds the concatenated
// attributes of every VM into a single instance). For each feature the
// predictor maintains a Markov value predictor over discretized values;
// prediction at a look-ahead of k sampling intervals pushes each feature
// k steps forward and classifies the resulting joint (independent)
// distribution with the TAN (or naive Bayes) classifier.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/analyze_annotations.h"
#include "models/classifier.h"
#include "models/discretizer.h"
#include "models/value_predictor.h"
#include "obs/model_introspect.h"
#include "obs/stage_profiler.h"

namespace prepare {

enum class MarkovOrder { kSimple, kTwoDependent };

/// kOutlier is the Section V extension: an unsupervised tree-structured
/// density model that flags never-seen states, enabling prediction of
/// anomaly types absent from the training data (at reduced specificity).
enum class ClassifierKind { kNaiveBayes, kTan, kOutlier };

struct PredictorConfig {
  /// Discretization grid per feature. Keep coarse: runs provide a few
  /// hundred training samples and the 2-dependent model has bins^2
  /// transition rows (the paper's Fig. 2 example uses 3 states).
  /// Quantile bins merge ties, so the effective alphabet per feature can
  /// be smaller.
  std::size_t bins = 5;
  DiscretizerKind discretizer = DiscretizerKind::kEqualWidth;
  /// Add never-trained-on guard bins beyond the training range (pairs
  /// with the kOutlier classifier: out-of-range values become maximally
  /// surprising instead of blending into the edge bins).
  bool guard_bins = false;
  /// Fit discretizer ranges on normal-labeled samples only: anomaly-era
  /// extremes (a saturated CPU, a zeroed free-memory) then clamp into
  /// the edge bins instead of stretching the grid so far that the whole
  /// healthy-to-degrading trajectory collapses into one bin.
  bool fit_on_normal = true;
  MarkovOrder order = MarkovOrder::kTwoDependent;
  /// Overrides `order` with an arbitrary context length when > 0 (uses
  /// the generalized NDependentMarkov; 1 and 2 then coincide with the
  /// enum choices). Higher orders need alphabet^order rows of data.
  std::size_t custom_markov_order = 0;
  ClassifierKind classifier = ClassifierKind::kTan;
  double classifier_alpha = 0.5;       ///< Laplace smoothing (CPTs)
  double markov_alpha = 0.05;          ///< Laplace smoothing (transitions)
  /// Decision quantile and calibration headroom for the unsupervised
  /// outlier classifier.
  double outlier_quantile = 0.995;
  double outlier_threshold_margin = 1.25;
  /// Keep updating Markov transition counts from runtime observations
  /// (the paper's periodic model update).
  bool online_learning = true;
  /// Minimum true-positive rate on the model's own training data for the
  /// model to count as discriminative. A component whose metrics look
  /// the same in both classes (e.g. a PE upstream of the faulty one)
  /// cannot be pinpointed — its score just hovers at the class prior and
  /// only emits noise.
  double min_train_tpr = 0.5;
  /// How predicted value distributions are classified:
  ///  * mode (default): classify the single most likely future
  ///    assignment — sharp, keeps correlated attributes consistent, and
  ///    yields the longest alert lead time;
  ///  * expectation: average each attribute's impact over its predicted
  ///    distribution (the TAN pins the parent at its mode); softer and
  ///    kept for the ablation bench.
  bool classify_mode = true;
};

class AnomalyPredictor {
 public:
  AnomalyPredictor(std::vector<std::string> feature_names,
                   PredictorConfig config = PredictorConfig());

  /// Trains discretizers, value predictors and the classifier from
  /// labeled feature rows. Rows must align with `abnormal`.
  void train(const std::vector<std::vector<double>>& rows,
             const std::vector<bool>& abnormal);
  bool trained() const { return trained_; }

  /// Feeds one runtime sample (advances every feature's Markov context).
  /// Only valid after train().
  void observe(const std::vector<double>& row);

  struct Result {
    Classification classification;
    /// Expected feature values at the prediction horizon (bin-center
    /// expectations) — the "informative" part of the alert.
    std::vector<double> predicted_values;
    /// Predicted anomaly probability per horizon step 1..steps
    /// (sigmoid of the mode-row classifier score at each step). Only
    /// filled when an introspector is attached — the controller folds
    /// it into the calibration tracker from its serial section.
    std::vector<double> horizon_probs;

    /// Decision evidence for the flight recorder
    /// (obs/flight_recorder.h): everything the downstream
    /// alert/diagnosis/prevention decisions were computed from, so a
    /// closed episode can be re-executed bit-identically offline. Only
    /// filled when evidence capture is enabled (set_evidence_capture);
    /// the fill is a plain copy of predictor scratch, so enabling it
    /// never changes a classification.
    struct Evidence {
      bool valid = false;
      /// Raw (pre-discretization) values of the latest observe() row.
      std::vector<double> raw;
      /// Discretized current row (the Markov contexts' last symbols).
      std::vector<std::size_t> observed_row;
      /// Per-attribute mode of the final-step predicted distribution —
      /// the row the mode-path classification scored.
      std::vector<std::size_t> mode_row;
      /// Final-step predicted distributions, flattened attribute-major:
      /// attribute i occupies [offsets[i], offsets[i+1]) where the
      /// offsets come from AnomalyPredictor::attribute_alphabet().
      std::vector<double> dists;
      /// Class-prior log-odds term the impact sum starts from; only
      /// meaningful when `decomposable` (Bayesian backends).
      double prior_log_odds = 0.0;
      bool decomposable = false;
    };
    Evidence evidence;
  };

  /// Classifies the state `steps` sampling intervals ahead. With an
  /// introspector attached this also fills Result::horizon_probs (the
  /// scored per-step horizon path).
  Result predict(TickIndex steps) const;
  /// predict() with the horizon-path decision made by the caller: the
  /// controller resolves ModelIntrospect::calibration_due() once per
  /// round on the driver thread and passes it here, so the (more
  /// expensive) scored path runs only on sampled calibration rounds and
  /// the worker-side predict never touches the driver-confined
  /// introspector. `with_horizon` is ignored when no introspector is
  /// attached.
  Result predict(TickIndex steps, bool with_horizon) const;
  /// The steady-state prediction path: same result as predict(steps,
  /// with_horizon), written into `out` (non-null) so the controller's
  /// per-VM fan-out reuses one Result slot per VM instead of allocating
  /// fresh vectors every round. PREPARE_HOT: the analyzer proves this
  /// transitively allocation-, lock- and IO-free (the value-returning
  /// predict() overloads above are thin cold wrappers).
  PREPARE_HOT void predict_into(TickIndex steps, bool with_horizon,
                                Result* out) const;

  /// Classifies the most recently observed sample (used by the reactive
  /// path and for diagnosis once an anomaly has already manifested).
  Classification classify_current() const;

  /// Whether enough runtime samples have been observed to predict.
  bool ready() const;

  /// Whether the trained classifier separates the training classes (see
  /// PredictorConfig::min_train_tpr). Always true when the training data
  /// had no abnormal samples to separate.
  bool discriminative() const { return discriminative_; }
  /// True-positive rate of the classifier on its own training data.
  double train_tpr() const { return train_tpr_; }

  const std::vector<std::string>& feature_names() const { return names_; }
  std::size_t feature_count() const { return names_.size(); }
  const PredictorConfig& config() const { return config_; }
  const Classifier& classifier() const;

  /// Effective alphabet (bin count) of feature `i` after training —
  /// quantile discretization merges ties, so this can be smaller than
  /// PredictorConfig::bins and differs per (VM, attribute). The flight
  /// recorder sizes its evidence rings from these.
  std::size_t attribute_alphabet(std::size_t i) const;

  /// Enables decision-evidence capture: observe() keeps the raw row and
  /// predict_into() fills Result::evidence (a scratch copy — the
  /// classification itself is unchanged). Off by default: the evidence
  /// copy is only paid when a flight recorder is attached.
  void set_evidence_capture(bool capture) { capture_evidence_ = capture; }

  /// Attaches per-stage wall-time instrumentation (discretize, Markov
  /// look-ahead, TAN classify). The profiler must outlive the
  /// predictor; nullptr detaches (the default: zero overhead).
  void set_profiler(obs::StageProfiler* profiler);

  /// Attaches the model-introspection layer. With an introspector
  /// attached, train() feeds the discretizer bin-occupancy baselines,
  /// observe() feeds runtime symbols into the occupancy drift window,
  /// and predict() fills Result::horizon_probs for the calibration
  /// tracker. The introspector must outlive the predictor; nullptr
  /// detaches. predict() itself never calls into the introspector — it
  /// runs inside the parallel per-VM fan-out, and the introspector is
  /// driver-thread-confined.
  void set_introspect(obs::ModelIntrospect* introspect);

  /// Sweeps every value predictor's transition rows and the
  /// classifier's CPTs into the attached introspector's probe
  /// accumulators. Driver thread only, between begin_probe() and
  /// end_probe(); no-op when nothing is attached or not yet trained.
  void report_model_state() const;

 private:
  std::unique_ptr<ValuePredictor> make_value_predictor(
      std::size_t alphabet) const;
  /// predict_into() variant taken when an introspector is attached: one
  /// full horizon path per feature instead of a single final
  /// distribution. The final-step path elements are bit-identical to
  /// the plain variant's output, so the classification (and thus every
  /// alert) is unchanged.
  void predict_with_horizon_into(TickIndex steps, Result* out) const;
  /// Copies the decision evidence of the prediction just computed
  /// (scratch_dists_ must hold the final-step distributions) into
  /// out->evidence. Hot like its callers: pure copies into
  /// capacity-steady storage.
  void capture_evidence_into(Result* out) const;

  std::vector<std::string> names_;
  PredictorConfig config_;
  bool trained_ = false;

  std::vector<Discretizer> discretizers_;
  std::vector<std::unique_ptr<ValuePredictor>> predictors_;
  std::unique_ptr<Classifier> classifier_;
  std::vector<std::size_t> last_row_;
  /// Raw values of the latest observe() row; only maintained when
  /// evidence capture is on (the discretized row suffices otherwise).
  std::vector<double> last_raw_row_;
  bool capture_evidence_ = false;
  /// Flattened-evidence layout: offsets_[i] is where feature i's
  /// final-step distribution starts in Result::Evidence::dists
  /// (offsets_[n] = total length). Built by train().
  std::vector<std::size_t> evidence_offsets_;
  bool has_observation_ = false;
  bool discriminative_ = true;
  bool supervised_without_abnormal_ = false;
  double train_tpr_ = 0.0;

  // Stage wall-time histograms (null = uninstrumented).
  obs::Histogram* stage_discretize_ = nullptr;
  obs::Histogram* stage_lookahead_ = nullptr;
  obs::Histogram* stage_classify_ = nullptr;

  // Model-introspection sink (null = uninstrumented).
  obs::ModelIntrospect* introspect_ = nullptr;

  // Per-predict transient buffers, reused across ticks so the steady
  // state allocates nothing. Safe despite `mutable`: a predictor is
  // confined to its VM's worker thread (the parallel driver shards by
  // VM), matching the thread-safety story of the scratch buffers inside
  // the Markov models themselves.
  mutable std::vector<Distribution> scratch_dists_;
  mutable std::vector<std::size_t> scratch_row_;
  /// Step-major per-step marginal modes (scratch_modes_[s * nf + i] is
  /// feature i's mode at horizon step s + 1), filled by one
  /// feature-major sweep over scratch_paths_.
  mutable std::vector<std::size_t> scratch_modes_;
  /// Per-feature full horizon paths (scratch_paths_[i][s] is feature
  /// i's distribution at step s+1); only used when an introspector is
  /// attached.
  mutable std::vector<std::vector<Distribution>> scratch_paths_;
};

}  // namespace prepare
