#include "core/anomaly_predictor.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "models/markov.h"
#include "models/markov2.h"
#include "models/markov_n.h"
#include "models/naive_bayes.h"
#include "models/outlier.h"
#include "models/tan.h"

namespace prepare {

AnomalyPredictor::AnomalyPredictor(std::vector<std::string> feature_names,
                                   PredictorConfig config)
    : names_(std::move(feature_names)), config_(config) {
  PREPARE_CHECK_MSG(!names_.empty(), "predictor needs at least one feature");
  PREPARE_CHECK(config_.bins >= 2);
}

std::unique_ptr<ValuePredictor> AnomalyPredictor::make_value_predictor(
    std::size_t alphabet) const {
  if (config_.custom_markov_order > 0)
    return std::make_unique<NDependentMarkov>(
        config_.custom_markov_order, alphabet, config_.markov_alpha);
  if (config_.order == MarkovOrder::kSimple)
    return std::make_unique<MarkovChain>(alphabet, config_.markov_alpha);
  return std::make_unique<TwoDependentMarkov>(alphabet,
                                              config_.markov_alpha);
}

void AnomalyPredictor::train(const std::vector<std::vector<double>>& rows,
                             const std::vector<bool>& abnormal) {
  PREPARE_CHECK_MSG(!rows.empty(), "empty training set");
  PREPARE_CHECK(rows.size() == abnormal.size());
  const std::size_t n = names_.size();

  // Fit one discretizer per feature. With fit_on_normal the bin range
  // comes from normal-labeled samples only (anomaly extremes clamp to
  // the edge bins); the full columns still train the value predictors.
  discretizers_.assign(
      n, Discretizer(config_.bins, config_.discretizer, 0.05,
                     config_.guard_bins));
  std::vector<std::vector<double>> columns(n);
  std::vector<std::vector<double>> fit_columns(n);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const auto& row = rows[r];
    PREPARE_CHECK(row.size() == n);
    for (std::size_t i = 0; i < n; ++i) {
      columns[i].push_back(row[i]);
      if (!config_.fit_on_normal || !abnormal[r])
        fit_columns[i].push_back(row[i]);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (fit_columns[i].empty()) fit_columns[i] = columns[i];
    discretizers_[i].fit(fit_columns[i]);
  }
  if (introspect_ != nullptr) {
    // Training-time bin occupancy is the drift detector's baseline; the
    // discretizer-geometry gauges expose how much of each grid the
    // training data actually used.
    for (std::size_t i = 0; i < n; ++i) {
      const std::vector<double>& fit_counts = discretizers_[i].fit_counts();
      introspect_->add_baseline_occupancy(i, fit_counts);
      double occupied = 0.0;
      for (double c : fit_counts)
        if (c > 0.0) occupied += 1.0;
      introspect_->record_discretizer(
          i, discretizers_[i].bins(),
          occupied / static_cast<double>(fit_counts.size()));
    }
  }

  // Train the per-feature value predictors on the discretized sequences.
  // Alphabets are per-feature: quantile discretization merges ties.
  predictors_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    auto predictor = make_value_predictor(discretizers_[i].bins());
    predictor->train(discretizers_[i].discretize(columns[i]));
    predictors_.push_back(std::move(predictor));
  }

  // Train the classifier on discretized rows + labels.
  LabeledDataset data;
  data.alphabet.resize(n);
  for (std::size_t i = 0; i < n; ++i) data.alphabet[i] = discretizers_[i].bins();
  data.rows.reserve(rows.size());
  for (const auto& row : rows) {
    std::vector<std::size_t> symbols(n);
    for (std::size_t i = 0; i < n; ++i)
      symbols[i] = discretizers_[i].discretize(row[i]);
    data.rows.push_back(std::move(symbols));
  }
  data.abnormal.assign(abnormal.begin(), abnormal.end());
  switch (config_.classifier) {
    case ClassifierKind::kNaiveBayes:
      classifier_ =
          std::make_unique<NaiveBayesClassifier>(config_.classifier_alpha);
      break;
    case ClassifierKind::kOutlier:
      classifier_ = std::make_unique<OutlierClassifier>(
          config_.outlier_quantile, config_.classifier_alpha,
          config_.outlier_threshold_margin);
      break;
    case ClassifierKind::kTan:
      classifier_ =
          std::make_unique<TanClassifier>(config_.classifier_alpha);
      break;
  }
  classifier_->train(data);

  // A supervised classifier that never saw an abnormal sample cannot
  // claim one: with an empty abnormal class, Laplace smoothing turns the
  // abnormal likelihood into a uniform distribution and the classifier
  // silently degenerates into an outlier detector. Suppress its alarms —
  // this IS the paper's "recurrent anomalies only" limitation; use
  // ClassifierKind::kOutlier for deliberate unsupervised detection.
  supervised_without_abnormal_ =
      config_.classifier != ClassifierKind::kOutlier &&
      std::find(abnormal.begin(), abnormal.end(), true) == abnormal.end();

  // Discriminativeness: how much of its own abnormal training data does
  // the classifier recover? A model that cannot separate the classes it
  // was trained on has nothing to say about the future either.
  std::size_t ab_total = 0, ab_hit = 0;
  for (std::size_t r = 0; r < data.rows.size(); ++r) {
    if (!data.abnormal[r]) continue;
    ++ab_total;
    if (classifier_->classify(data.rows[r]).abnormal) ++ab_hit;
  }
  train_tpr_ = ab_total == 0
                   ? 1.0
                   : static_cast<double>(ab_hit) /
                         static_cast<double>(ab_total);
  discriminative_ = train_tpr_ >= config_.min_train_tpr;

  // Training ends with predictors contextualized at the end of the
  // training sequence; runtime observe() calls take over from there.
  last_row_ = data.rows.back();
  has_observation_ = true;
  trained_ = true;

  // Pre-size the per-predict scratch that only depends on the feature
  // count, so the hot predict path never grows it (the analyzer proves
  // predict_into allocation-free; see analyze_annotations.h).
  scratch_dists_.resize(n);
  scratch_row_.resize(n);
  scratch_paths_.resize(n);

  // Flattened-evidence layout for the flight recorder: per-feature
  // effective alphabets are only known after discretizer fitting.
  evidence_offsets_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i)
    evidence_offsets_[i + 1] = evidence_offsets_[i] + discretizers_[i].bins();
}

std::size_t AnomalyPredictor::attribute_alphabet(std::size_t i) const {
  PREPARE_CHECK(trained_);
  PREPARE_CHECK(i < discretizers_.size());
  return discretizers_[i].bins();
}

void AnomalyPredictor::set_profiler(obs::StageProfiler* profiler) {
  stage_discretize_ =
      profiler == nullptr ? nullptr : profiler->stage(obs::kStageDiscretize);
  stage_lookahead_ = profiler == nullptr
                         ? nullptr
                         : profiler->stage(obs::kStageMarkovLookahead);
  stage_classify_ =
      profiler == nullptr ? nullptr : profiler->stage(obs::kStageTanClassify);
}

void AnomalyPredictor::set_introspect(obs::ModelIntrospect* introspect) {
  introspect_ = introspect;
}

void AnomalyPredictor::report_model_state() const {
  if (introspect_ == nullptr || !trained_) return;
  for (std::size_t i = 0; i < predictors_.size(); ++i) {
    const ValuePredictor::RowStats stats = predictors_[i]->row_stats();
    if (stats.rows == 0) continue;
    const double occupied = static_cast<double>(stats.occupied_rows);
    introspect_->probe_markov(
        i,
        stats.occupied_rows == 0 ? 0.0 : stats.entropy_sum / occupied,
        stats.entropy_max,
        occupied / static_cast<double>(stats.rows));
  }
  const Classifier::CptStats cpt = classifier_->cpt_stats();
  introspect_->probe_classifier(cpt.support_min, cpt.log_odds_spread);
}

void AnomalyPredictor::observe(const std::vector<double>& row) {
  PREPARE_CHECK_MSG(trained_, "observe() before train()");
  PREPARE_CHECK(row.size() == names_.size());
  obs::ScopedTimer timer(stage_discretize_);
  last_row_.resize(row.size());
  if (capture_evidence_) last_raw_row_ = row;
  for (std::size_t i = 0; i < row.size(); ++i) {
    last_row_[i] = discretizers_[i].discretize(row[i]);
    predictors_[i]->observe(BinIndex{last_row_[i]}, config_.online_learning);
  }
  if (introspect_ != nullptr) {
    // observe() runs in the controller's serial per-VM loop (driver
    // thread), so feeding the driver-confined introspector here is safe.
    for (std::size_t i = 0; i < last_row_.size(); ++i)
      introspect_->observe_symbol(i, last_row_[i]);
  }
  has_observation_ = true;
}

bool AnomalyPredictor::ready() const {
  if (!trained_ || !has_observation_) return false;
  for (const auto& p : predictors_)
    if (!p->ready()) return false;
  return true;
}

AnomalyPredictor::Result AnomalyPredictor::predict(TickIndex steps) const {
  return predict(steps, /*with_horizon=*/true);
}

AnomalyPredictor::Result AnomalyPredictor::predict(TickIndex steps,
                                                   bool with_horizon) const {
  // Cold wrapper: tests and one-shot callers get a fresh Result; the
  // controller's per-round fan-out calls predict_into() with a reused
  // slot instead.
  Result out;
  predict_into(steps, with_horizon, &out);
  return out;
}

void AnomalyPredictor::predict_into(TickIndex steps, bool with_horizon,
                                    Result* out) const {
  PREPARE_CHECK_MSG(ready(), "predict() before the model is ready");
  PREPARE_CHECK(steps.value() >= 1);
  PREPARE_CHECK(out != nullptr);
  if (introspect_ != nullptr && with_horizon) {
    predict_with_horizon_into(steps, out);
    return;
  }
  // A reused Result may carry probabilities from an earlier calibration
  // round; this path does not fill them.
  out->horizon_probs.clear();
  // Scratch vectors are pre-sized by train() (feature count is fixed).
  auto& dists = scratch_dists_;
  {
    obs::ScopedTimer timer(stage_lookahead_);
    for (std::size_t i = 0; i < predictors_.size(); ++i)
      predictors_[i]->predict_into(steps, &dists[i]);
  }

  obs::ScopedTimer classify_timer(stage_classify_);
  if (config_.classify_mode) {
    auto& row = scratch_row_;
    for (std::size_t i = 0; i < dists.size(); ++i) row[i] = dists[i].mode();
    classifier_->classify_into(row, &out->classification);
  } else {
    classifier_->classify_expected_into(dists, &out->classification);
  }
  classify_timer.stop();
  if (supervised_without_abnormal_) out->classification.abnormal = false;
  // prepare-analyze: allow(hot-alloc): capacity-steady reused Result
  out->predicted_values.resize(dists.size());
  for (std::size_t i = 0; i < dists.size(); ++i)
    out->predicted_values[i] =
        dists[i].expectation(discretizers_[i].centers());
  out->evidence.valid = false;
  if (capture_evidence_) capture_evidence_into(out);
}

void AnomalyPredictor::predict_with_horizon_into(TickIndex steps,
                                                 Result* out) const {
  auto& paths = scratch_paths_;
  {
    obs::ScopedTimer timer(stage_lookahead_);
    for (std::size_t i = 0; i < predictors_.size(); ++i)
      predictors_[i]->predict_path_into(steps, &paths[i]);
  }

  const std::size_t k = steps.value();
  const std::size_t nf = paths.size();
  obs::ScopedTimer classify_timer(stage_classify_);
  auto& row = scratch_row_;
  // One feature-major sweep extracts every per-step mode into a flat
  // step-major table: each path's distributions are read sequentially
  // (they were allocated together), instead of chasing all 13 paths
  // once per step below.
  auto& modes = scratch_modes_;
  // prepare-analyze: allow(hot-alloc): capacity-steady — horizon fixed
  modes.resize(k * nf);
  for (std::size_t i = 0; i < nf; ++i) {
    const std::vector<Distribution>& path = paths[i];
    for (std::size_t s = 0; s < k; ++s) modes[s * nf + i] = path[s].mode();
  }
  if (config_.classify_mode) {
    for (std::size_t i = 0; i < nf; ++i) row[i] = modes[(k - 1) * nf + i];
    classifier_->classify_into(row, &out->classification);
  } else {
    auto& dists = scratch_dists_;
    for (std::size_t i = 0; i < nf; ++i) dists[i] = paths[i][k - 1];
    classifier_->classify_expected_into(dists, &out->classification);
  }
  // Calibration probabilities: sigmoid of the mode-row log-odds score at
  // every horizon step. Always mode-row scoring — even under
  // classify_expected — so the per-horizon numbers compare one fixed
  // scoring rule across backends and horizons.
  // prepare-analyze: allow(hot-alloc): capacity-steady — horizon fixed
  out->horizon_probs.resize(k);
  for (std::size_t s = 0; s < k; ++s) {
    std::copy(modes.begin() + static_cast<std::ptrdiff_t>(s * nf),
              modes.begin() + static_cast<std::ptrdiff_t>((s + 1) * nf),
              row.begin());
    const double score = classifier_->score(row).value();
    const double p = 1.0 / (1.0 + std::exp(-score));
    PREPARE_DCHECK(std::isfinite(p) && p >= 0.0 && p <= 1.0)
        << "degenerate anomaly probability " << p << " at horizon step "
        << s + 1;
    out->horizon_probs[s] = p;
  }
  classify_timer.stop();
  if (supervised_without_abnormal_) out->classification.abnormal = false;
  // prepare-analyze: allow(hot-alloc): capacity-steady reused Result
  out->predicted_values.resize(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i)
    out->predicted_values[i] =
        paths[i][k - 1].expectation(discretizers_[i].centers());
  out->evidence.valid = false;
  if (capture_evidence_) {
    // capture_evidence_into reads the final-step distributions from
    // scratch_dists_; under classify_mode this path never copied them
    // there, so mirror the expected-mode arm's copy (capacity-steady:
    // per-feature alphabets are fixed after train()).
    if (config_.classify_mode) {
      auto& dists = scratch_dists_;
      for (std::size_t i = 0; i < nf; ++i) dists[i] = paths[i][k - 1];
    }
    capture_evidence_into(out);
  }
}

void AnomalyPredictor::capture_evidence_into(Result* out) const {
  const std::size_t n = names_.size();
  auto& ev = out->evidence;
  ev.valid = true;
  // prepare-analyze: allow(hot-alloc): capacity-steady reused Result
  ev.raw.resize(n);
  // prepare-analyze: allow(hot-alloc): capacity-steady reused Result
  ev.observed_row.resize(n);
  // prepare-analyze: allow(hot-alloc): capacity-steady reused Result
  ev.mode_row.resize(n);
  // prepare-analyze: allow(hot-alloc): capacity-steady reused Result
  ev.dists.resize(evidence_offsets_.back());
  PREPARE_DCHECK(last_raw_row_.size() == n)
      << "evidence capture needs observe() after set_evidence_capture";
  std::copy(last_raw_row_.begin(), last_raw_row_.end(), ev.raw.begin());
  std::copy(last_row_.begin(), last_row_.end(), ev.observed_row.begin());
  for (std::size_t i = 0; i < n; ++i) {
    const Distribution& d = scratch_dists_[i];
    PREPARE_DCHECK(d.size() == evidence_offsets_[i + 1] - evidence_offsets_[i]);
    std::copy(d.probabilities().begin(), d.probabilities().end(),
              ev.dists.begin() +
                  static_cast<std::ptrdiff_t>(evidence_offsets_[i]));
    ev.mode_row[i] = d.mode();
  }
  ev.prior_log_odds = classifier_->prior_log_odds().value();
  ev.decomposable = classifier_->score_decomposable();
}

Classification AnomalyPredictor::classify_current() const {
  PREPARE_CHECK_MSG(trained_ && has_observation_,
                    "classify_current() needs a trained model and a sample");
  obs::ScopedTimer timer(stage_classify_);
  Classification cls = classifier_->classify(last_row_);
  if (supervised_without_abnormal_) cls.abnormal = false;
  return cls;
}

const Classifier& AnomalyPredictor::classifier() const {
  PREPARE_CHECK(trained_);
  return *classifier_;
}

}  // namespace prepare
