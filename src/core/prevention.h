// Predictive prevention actuation with effectiveness validation (paper
// Section II-D).
//
// Maps a diagnosis (faulty VM + ranked metrics) onto hypervisor actions:
//
//  * memory-implicated metrics -> memory ballooning up;
//  * CPU-implicated metrics    -> CPU cap increase;
//  * live migration            -> relocate the VM to a host with matching
//    resources, landing with a grown allocation of the implicated kind.
//
// Mode selects the paper's two experiment configurations (scaling for
// Figs. 6/7, migration for Figs. 8/9) plus the deployment default:
// scaling first, migration when scaling cannot be applied ("insufficient
// resources on the local host").
//
// Every action opens a validation record: after a look-ahead delay the
// actuator compares the acted metric's usage against the pre-action
// look-back window. If the component is healthy again the prevention
// succeeded; if the metric did not respond, the action targeted the
// wrong metric and the next metric in the TAN ranking is tried.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/cause_inference.h"
#include "monitor/attributes.h"
#include "monitor/metric_store.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/span_tracer.h"
#include "sim/event_log.h"
#include "sim/hypervisor.h"

namespace prepare {

enum class PreventionMode {
  kScalingOnly,
  kMigrationOnly,
  kScalingThenMigration,
};

struct PreventionConfig {
  PreventionMode mode = PreventionMode::kScalingThenMigration;
  /// Scaling targets: new allocation = old x factor (clamped to host
  /// headroom; a clamped-to-nothing increase counts as "cannot scale").
  double cpu_scale_factor = 1.6;
  double mem_scale_factor = 2.0;
  /// Migration lands the VM with a larger grown allocation of the
  /// implicated resource — a host "with the desired resources" should
  /// also absorb further growth, since a second migration is expensive.
  double migration_cpu_factor = 1.8;
  double migration_mem_factor = 2.5;
  /// Minimum meaningful allocation increase; below this scaling is
  /// reported impossible (insufficient resources on the local host).
  double min_cpu_step = 0.1;
  double min_mem_step_mb = 64.0;
  /// Prevention-effectiveness validation (paper Section II-D). When
  /// disabled (ablation), actions fire but a wrong-metric prevention is
  /// never corrected by falling back to the next ranked metric.
  bool validation_enabled = true;
  /// Companion scaling: also act on the next ranked metric of the other
  /// resource kind in the same shot (a saturated CPU is often the
  /// symptom of a memory root cause). Disable to rely on validation
  /// fallback alone (ablation).
  bool companion_scaling = true;
  /// Validation windows (paper: look-back / look-ahead around the
  /// prevention) and the relative usage change that counts as an effect.
  double validation_delay_s = 20.0;
  double lookback_s = 20.0;
  double min_relative_change = 0.08;
  /// Elastic scale-down (CloudScale-style [4]): allocations grown by a
  /// prevention are returned toward the baseline once the VM has been
  /// healthy and under-utilized for a sustained window, so one incident
  /// does not permanently over-provision the VM.
  bool reclaim_enabled = true;
  double reclaim_idle_s = 60.0;       ///< sustained healthy+idle window
  double reclaim_cpu_util_pct = 40.0; ///< mean CPU% below this is idle
  double reclaim_mem_util_pct = 55.0; ///< mean mem% below this is idle
  double reclaim_factor = 0.75;       ///< shrink per reclaim step
  /// A VM that just migrated is not migrated again for this long — live
  /// migration is expensive and ping-ponging a VM between hosts makes
  /// the degradation it is meant to cure worse.
  double migration_cooldown_s = 90.0;
};

class PreventionActuator {
 public:
  /// `metrics` (optional) receives prevention.* counters; `tracer`
  /// (optional) receives the prevention-side episode transitions
  /// (prevention_issued / validated / escalated); `recorder` (optional)
  /// receives one PreventionEvidence per action attempt (including
  /// failed ones) so episode bundles carry every prevention decision
  /// input. All must outlive the actuator.
  PreventionActuator(Hypervisor* hypervisor, Cluster* cluster,
                     const MetricStore* store, EventLog* log,
                     PreventionConfig config = PreventionConfig(),
                     obs::MetricsRegistry* metrics = nullptr,
                     obs::SpanTracer* tracer = nullptr,
                     obs::FlightRecorder* recorder = nullptr);

  /// Triggers a prevention for one diagnosed faulty VM. Returns true if
  /// an action was fired. No-op while a validation for that VM is open.
  bool actuate(const Diagnosis::FaultyVm& faulty, double now);

  /// Drives validation; call once per sampling interval with the set of
  /// VMs that are still unhealthy (alerting or SLO-violating).
  void on_sample(double now, const std::set<std::string>& unhealthy);

  /// Whether a validation is currently open for the VM.
  bool validation_open(const std::string& vm_name) const;
  /// Whether any validation is open (used to serialize the reactive
  /// diagnose-act-validate loop: one hypothesis at a time).
  bool any_validation_open() const { return !pending_.empty(); }

  /// Baseline (construction-time) allocation of a VM, if known.
  bool has_baseline(const std::string& vm_name) const;

  const PreventionConfig& config() const { return config_; }

  // Counters for experiments / tests.
  std::size_t actions_fired() const { return actions_fired_; }
  std::size_t validations_failed() const { return validations_failed_; }

 private:
  struct PendingValidation {
    double action_time = 0.0;
    Attribute acted{};
    std::vector<Attribute> ranked;  ///< full ranking for fallback
    std::size_t next_index = 0;     ///< next ranked metric to try
    double lookback_mean = 0.0;
  };

  enum class MetricKind { kCpu, kMemory, kOther };
  static MetricKind kind_of(Attribute a);

  /// Executes one action for `vm` keyed on attribute `a`; returns false
  /// if no action could be applied. `phase` tags the attempt for the
  /// flight recorder (0 initial ranked walk, 2 validation fallback).
  bool apply_action(Vm* vm, Attribute a, double now, int phase = 0);
  bool try_scale(Vm* vm, MetricKind kind, double now);
  bool try_migrate(Vm* vm, MetricKind kind, double now);
  /// Side-effect-free feasibility probes, mirroring try_scale /
  /// try_migrate. Used only to fill recorder evidence fields the live
  /// mode did not consult (what-if replay needs both flags; the flags
  /// the mode *did* consult come from the actual attempt outcomes).
  bool probe_can_scale(const Vm& vm, MetricKind kind) const;
  bool probe_can_migrate(const Vm& vm, double now) const;
  /// Records one prevention attempt into the flight recorder (no-op
  /// when detached). Consulted outcomes are authoritative; unconsulted
  /// flags fall back to the probes.
  void record_attempt(const Vm& vm, Attribute a, MetricKind kind,
                      double now, int phase, bool scale_known,
                      bool scale_ok, bool migrate_known, bool migrate_ok,
                      int applied);
  double lookback_mean(const std::string& vm, Attribute a, double now) const;
  void maybe_reclaim(double now, const std::set<std::string>& unhealthy);

  Hypervisor* hypervisor_;
  Cluster* cluster_;
  const MetricStore* store_;
  EventLog* log_;
  PreventionConfig config_;
  obs::SpanTracer* tracer_;        ///< not owned; may be null
  obs::FlightRecorder* recorder_;  ///< not owned; may be null

  std::map<std::string, PendingValidation> pending_;
  /// Baseline allocations (cpu cores, mem MB) snapshotted at construction.
  std::map<std::string, std::pair<double, double>> baseline_;
  std::map<std::string, double> last_action_time_;
  std::map<std::string, double> last_migration_time_;
  std::size_t actions_fired_ = 0;
  std::size_t validations_failed_ = 0;

  // Observability counters (null = uninstrumented).
  obs::Counter* actions_counter_ = nullptr;
  obs::Counter* validations_failed_counter_ = nullptr;
  obs::Counter* reclaims_counter_ = nullptr;
  obs::Counter* migrations_skipped_counter_ = nullptr;
};

}  // namespace prepare
