// Anomaly management controllers.
//
//  * PrepareController — the full paper pipeline: per-VM online anomaly
//    prediction, k-of-W false-alarm filtering, cause inference, and
//    predictive prevention actuation, with a reactive fallback when the
//    predictor misses (Section II-D) and online prevention validation.
//  * ReactiveController — the paper's "reactive intervention" baseline:
//    identical cause-inference and actuation modules, but everything is
//    triggered only after an SLO violation has been detected.
//  * NoInterventionManager — the "without intervention" baseline.
//
// Controllers are driven by the experiment loop: once per sampling
// interval, after the monitor has appended fresh samples to the
// MetricStore, on_sample(now) runs one management round.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apps/application.h"
#include "common/thread_pool.h"
#include "core/alarm_filter.h"
#include "core/anomaly_predictor.h"
#include "core/cause_inference.h"
#include "core/prevention.h"
#include "monitor/labeler.h"
#include "monitor/metric_store.h"
#include "monitor/slo_log.h"
#include "obs/flight_recorder.h"
#include "obs/model_introspect.h"
#include "obs/span_tracer.h"
#include "obs/stage_profiler.h"
#include "sim/cluster.h"
#include "sim/event_log.h"
#include "sim/hypervisor.h"

namespace prepare {

/// Wiring shared by every controller: the black-box view of the system.
struct ControllerContext {
  Application* app = nullptr;
  Cluster* cluster = nullptr;
  Hypervisor* hypervisor = nullptr;
  const MetricStore* store = nullptr;
  const SloLog* slo = nullptr;
  EventLog* log = nullptr;
  /// Optional observability registry: when set, the controller times
  /// every pipeline stage into stage.* histograms and counts alerts /
  /// fallbacks / preventions (must outlive the controller).
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional alert-lifecycle span tracer (must outlive the
  /// controller). The controller drives it only from the serial
  /// sections of a management round — never from the per-VM prediction
  /// fan-out — so it needs no locking and a parallel run produces a
  /// bit-identical span set (DESIGN.md section 10).
  obs::SpanTracer* tracer = nullptr;
  /// Optional model-introspection layer (must outlive the controller):
  /// per-horizon prediction calibration, model-state probes, and drift
  /// detection. Same confinement contract as the tracer — the per-VM
  /// fan-out only fills Result::horizon_probs in its own result slot;
  /// every introspector call happens in the serial sections, in
  /// deterministic VM order. Only the PrepareController drives it (the
  /// reactive baseline has no look-ahead to calibrate).
  obs::ModelIntrospect* introspect = nullptr;
  /// Optional episode flight recorder (must outlive the controller).
  /// Same confinement contract again: the controller registers every
  /// trained VM, feeds one EvidenceFrame per (VM, round) from the
  /// serial results loop in map (VM) order, and forwards the diagnosis
  /// ranking; the actuator (which the controller hands the recorder to)
  /// adds one PreventionEvidence per action attempt. Episode captures
  /// open/close via the SpanTracer's lifecycle hooks, so the recorder
  /// is inert unless `tracer` is also set. Only the PrepareController
  /// drives it (the reactive baseline has no prediction evidence).
  obs::FlightRecorder* recorder = nullptr;
  /// Worker threads for the per-VM prediction fan-out (PREPARE keeps
  /// one independent model per VM, so the Markov look-ahead + TAN
  /// classification parallelize across VMs). 1 (default) runs fully
  /// sequentially with no pool; results are bit-identical either way
  /// because alerts are applied serially in VM order.
  std::size_t num_threads = 1;
};

/// Full PREPARE configuration (paper defaults).
struct PrepareConfig {
  PredictorConfig predictor;
  double sampling_interval_s = 5.0;
  /// Alert horizon. The paper's controller predicts over a long
  /// look-ahead window ("e.g., 120 seconds", Section II-A) so that a
  /// gradually degrading attribute is forecast deep into the anomaly
  /// region well before the SLO trips.
  double lookahead_s = 120.0;
  std::size_t filter_k = 3;   ///< k-of-W false-alarm filter
  std::size_t filter_w = 4;
  /// Attribution-confidence gate: a per-VM alert is only raised when the
  /// top-ranked metric's impact strength L_i reaches this value. A VM
  /// whose metrics carry no real evidence (score hovering at the class
  /// prior) cannot be pinpointed — and PREPARE cannot choose a prevention
  /// action without a pinpointed metric.
  double alert_min_top_impact = 0.5;
  PreventionConfig prevention;
  CauseInference::Config inference;
};

class AnomalyManager {
 public:
  explicit AnomalyManager(ControllerContext ctx);
  virtual ~AnomalyManager() = default;

  /// One management round; `now` is the sampling timestamp.
  virtual void on_sample(double now) = 0;

  /// Trains internal models from the labeled history in [t0, t1].
  virtual void train(double /*t0*/, double /*t1*/) {}

  virtual std::string name() const = 0;

 protected:
  /// Labeled feature rows for one VM over [t0, t1].
  void labeled_rows(const std::string& vm_name, double t0, double t1,
                    std::vector<std::vector<double>>* rows,
                    std::vector<bool>* abnormal) const;
  /// Latest monitoring sample of a VM as a feature row.
  std::vector<double> latest_row(const std::string& vm_name) const;
  std::vector<std::string> vm_names() const;

  ControllerContext ctx_;
};

class NoInterventionManager : public AnomalyManager {
 public:
  using AnomalyManager::AnomalyManager;
  void on_sample(double) override {}
  std::string name() const override { return "without-intervention"; }
};

class PrepareController : public AnomalyManager {
 public:
  PrepareController(ControllerContext ctx,
                    PrepareConfig config = PrepareConfig());

  void train(double t0, double t1) override;
  void on_sample(double now) override;
  std::string name() const override { return "prepare"; }

  bool trained() const { return trained_; }
  const PrepareConfig& config() const { return config_; }
  const PreventionActuator& actuator() const { return actuator_; }
  const CauseInference& inference() const { return inference_; }

  // Counters for experiments / tests.
  std::size_t raw_alerts() const { return raw_alerts_; }
  std::size_t confirmed_alerts() const { return confirmed_alerts_; }
  std::size_t reactive_fallbacks() const { return reactive_fallbacks_; }

 private:
  PrepareConfig config_;
  TickIndex lookahead_steps_;
  bool trained_ = false;

  std::map<std::string, AnomalyPredictor> predictors_;
  std::map<std::string, AlarmFilter> filters_;
  /// Flight-recorder slot per registered VM (filled in train() when
  /// ctx.recorder is set; the per-VM evidence layout depends on the
  /// trained discretizer alphabets).
  std::map<std::string, std::size_t> recorder_slots_;
  CauseInference inference_;
  PreventionActuator actuator_;
  obs::StageProfiler profiler_;
  /// Workers for the per-VM fan-out; null when num_threads <= 1.
  std::unique_ptr<ThreadPool> pool_;
  /// Per-round fan-out state, kept across rounds so the steady state
  /// allocates nothing: the ready-and-discriminative predictors of this
  /// round and one reused Result slot per entry (predict_into refills
  /// slots in place). Driver-owned; workers only touch disjoint slots.
  std::vector<std::pair<const std::string*, const AnomalyPredictor*>>
      active_;
  std::vector<AnomalyPredictor::Result> results_;

  std::size_t raw_alerts_ = 0;
  std::size_t confirmed_alerts_ = 0;
  std::size_t reactive_fallbacks_ = 0;

  // Observability handles (null = uninstrumented).
  obs::Histogram* stage_alarm_filter_ = nullptr;
  obs::Histogram* stage_cause_inference_ = nullptr;
  obs::Histogram* stage_prevention_ = nullptr;
  obs::Counter* raw_alerts_counter_ = nullptr;
  obs::Counter* confirmed_alerts_counter_ = nullptr;
  obs::Counter* reactive_fallbacks_counter_ = nullptr;
};

class ReactiveController : public AnomalyManager {
 public:
  ReactiveController(ControllerContext ctx,
                     PrepareConfig config = PrepareConfig());

  void train(double t0, double t1) override;
  void on_sample(double now) override;
  std::string name() const override { return "reactive"; }

  bool trained() const { return trained_; }
  const PreventionActuator& actuator() const { return actuator_; }

 private:
  PrepareConfig config_;
  bool trained_ = false;
  std::map<std::string, AnomalyPredictor> predictors_;
  CauseInference inference_;
  PreventionActuator actuator_;
  obs::StageProfiler profiler_;
  obs::Histogram* stage_cause_inference_ = nullptr;
  obs::Histogram* stage_prevention_ = nullptr;
};

}  // namespace prepare
