#include "core/replay.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/check.h"
#include "core/alarm_filter.h"
#include "monitor/labeler.h"

namespace prepare {

ReplayReport replay_trace(const MetricStore& store, const SloLog& slo,
                          const ReplayConfig& config,
                          std::vector<std::string> vm_names) {
  if (vm_names.empty()) vm_names = store.vm_names();
  PREPARE_CHECK_MSG(!vm_names.empty(), "trace has no VMs");
  const auto steps = static_cast<std::size_t>(std::max(
      1.0, std::round(config.lookahead_s / config.sampling_interval_s)));

  std::vector<std::string> features;
  for (std::size_t a = 0; a < kAttributeCount; ++a)
    features.push_back(attribute_name(static_cast<Attribute>(a)));

  // Train one model per VM on the labeled prefix.
  std::map<std::string, AnomalyPredictor> predictors;
  std::map<std::string, AlarmFilter> filters;
  for (const auto& vm : vm_names) {
    AnomalyPredictor predictor(features, config.predictor);
    std::vector<std::vector<double>> rows;
    std::vector<bool> abnormal;
    for (const auto& s :
         Labeler::label(store, slo, vm, 0.0, config.train_end)) {
      rows.emplace_back(s.values.begin(), s.values.end());
      abnormal.push_back(s.abnormal);
    }
    PREPARE_CHECK_MSG(!rows.empty(), "no training samples for " + vm);
    predictor.train(rows, abnormal);
    predictors.emplace(vm, std::move(predictor));
    filters.emplace(vm, AlarmFilter(config.filter_k, config.filter_w));
  }

  // Replay.
  ReplayReport report;
  const std::size_t total = store.sample_count(vm_names[0]);
  double last_time = config.train_end;
  for (std::size_t i = 0; i < total; ++i) {
    const double t = store.sample_time(vm_names[0], i);
    if (t <= config.train_end) continue;
    last_time = t;
    if (config.tracer != nullptr) {
      config.tracer->observe_slo(t, slo.violated_at(t));
      config.tracer->tick(t);
    }
    for (const auto& vm : vm_names) {
      auto& predictor = predictors.at(vm);
      const auto values = store.sample(vm, i);
      predictor.observe(std::vector<double>(values.begin(), values.end()));
      if (!predictor.ready() || !predictor.discriminative()) continue;
      const auto result = predictor.predict(TickIndex{steps});
      double top = 0.0;
      for (double impact : result.classification.impacts)
        top = std::max(top, impact);
      const bool raw = result.classification.abnormal &&
                       top >= config.alert_min_top_impact;
      const bool confirmed = filters.at(vm).push(raw);
      if (!raw && !confirmed) continue;
      ReplayAlert alert;
      alert.time = t;
      alert.vm = vm;
      alert.confirmed = confirmed;
      alert.score = result.classification.score;
      const auto order =
          Classifier::ranked_attributes(result.classification);
      for (std::size_t k = 0; k < 3 && k < order.size(); ++k) {
        if (result.classification.impacts[order[k]] <= 0.0) break;
        alert.top_metrics.push_back(static_cast<Attribute>(order[k]));
      }
      if (raw) ++report.raw_alerts;
      if (confirmed) {
        ++report.confirmed_alerts;
        if (report.first_confirmed < 0.0) report.first_confirmed = t;
      }
      if (config.tracer != nullptr) {
        if (raw) config.tracer->raw_alert(vm, t);
        if (confirmed) {
          config.tracer->confirmed(vm, t);
          std::vector<std::pair<std::string, double>> top;
          for (std::size_t k = 0; k < alert.top_metrics.size(); ++k)
            top.emplace_back(
                attribute_name(alert.top_metrics[k]),
                result.classification.impacts[static_cast<std::size_t>(
                    alert.top_metrics[k])]);
          config.tracer->cause_inferred(vm, t, top);
        }
      }
      report.alerts.push_back(std::move(alert));
    }
  }
  if (config.tracer != nullptr) config.tracer->finish(last_time);
  return report;
}

}  // namespace prepare
