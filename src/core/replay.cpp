#include "core/replay.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/units.h"
#include "core/alarm_filter.h"
#include "monitor/labeler.h"

namespace prepare {

namespace {

const char* applied_name(int applied) {
  switch (applied) {
    case 1:
      return "scale";
    case 2:
      return "migrate";
    default:
      return "none";
  }
}

/// The prevention decision function, lifted out of
/// PreventionActuator::apply_action: given the policy mode and the
/// feasibility flags the live run consulted, which action fires?
/// `metric_kind` is 0 cpu / 1 memory / 2 other; only cpu/memory are
/// scalable. Must mirror core/prevention.cpp exactly — the replay
/// bit-identity tests pin the two together.
int decide_applied(int mode, int metric_kind, bool scale_possible,
                   bool migrate_possible) {
  const bool scalable = metric_kind != 2 && scale_possible;
  switch (mode) {
    case 0:  // kScalingOnly
      return scalable ? 1 : 0;
    case 1:  // kMigrationOnly (scaling is the fallback remedy)
      if (migrate_possible) return 2;
      return scalable ? 1 : 0;
    default:  // kScalingThenMigration
      if (scalable) return 1;
      return migrate_possible ? 2 : 0;
  }
}

std::string attr_label(const obs::EpisodeBundle& bundle, std::size_t a) {
  if (a < bundle.layout.attribute_names.size())
    return bundle.layout.attribute_names[a];
  std::ostringstream os;
  os << "attr" << a;
  return os.str();
}

}  // namespace

ReplayReport replay_trace(const MetricStore& store, const SloLog& slo,
                          const ReplayConfig& config,
                          std::vector<std::string> vm_names) {
  if (vm_names.empty()) vm_names = store.vm_names();
  PREPARE_CHECK_MSG(!vm_names.empty(), "trace has no VMs");
  const auto steps = static_cast<std::size_t>(std::max(
      1.0, std::round(config.lookahead_s / config.sampling_interval_s)));

  std::vector<std::string> features;
  for (std::size_t a = 0; a < kAttributeCount; ++a)
    features.push_back(attribute_name(static_cast<Attribute>(a)));

  // Train one model per VM on the labeled prefix.
  std::map<std::string, AnomalyPredictor> predictors;
  std::map<std::string, AlarmFilter> filters;
  for (const auto& vm : vm_names) {
    AnomalyPredictor predictor(features, config.predictor);
    std::vector<std::vector<double>> rows;
    std::vector<bool> abnormal;
    for (const auto& s :
         Labeler::label(store, slo, vm, 0.0, config.train_end)) {
      rows.emplace_back(s.values.begin(), s.values.end());
      abnormal.push_back(s.abnormal);
    }
    PREPARE_CHECK_MSG(!rows.empty(), "no training samples for " + vm);
    predictor.train(rows, abnormal);
    predictors.emplace(vm, std::move(predictor));
    filters.emplace(vm, AlarmFilter(config.filter_k, config.filter_w));
  }

  // Replay.
  ReplayReport report;
  const std::size_t total = store.sample_count(vm_names[0]);
  double last_time = config.train_end;
  for (std::size_t i = 0; i < total; ++i) {
    const double t = store.sample_time(vm_names[0], i);
    if (t <= config.train_end) continue;
    last_time = t;
    if (config.tracer != nullptr) {
      config.tracer->observe_slo(t, slo.violated_at(t));
      config.tracer->tick(t);
    }
    for (const auto& vm : vm_names) {
      auto& predictor = predictors.at(vm);
      const auto values = store.sample(vm, i);
      predictor.observe(std::vector<double>(values.begin(), values.end()));
      if (!predictor.ready() || !predictor.discriminative()) continue;
      const auto result = predictor.predict(TickIndex{steps});
      double top = 0.0;
      for (double impact : result.classification.impacts)
        top = std::max(top, impact);
      const bool raw = result.classification.abnormal &&
                       top >= config.alert_min_top_impact;
      const bool confirmed = filters.at(vm).push(raw);
      if (!raw && !confirmed) continue;
      ReplayAlert alert;
      alert.time = t;
      alert.vm = vm;
      alert.confirmed = confirmed;
      alert.score = result.classification.score;
      const auto order =
          Classifier::ranked_attributes(result.classification);
      for (std::size_t k = 0; k < 3 && k < order.size(); ++k) {
        if (result.classification.impacts[order[k]] <= 0.0) break;
        alert.top_metrics.push_back(static_cast<Attribute>(order[k]));
      }
      if (raw) ++report.raw_alerts;
      if (confirmed) {
        ++report.confirmed_alerts;
        if (report.first_confirmed < 0.0) report.first_confirmed = t;
      }
      if (config.tracer != nullptr) {
        if (raw) config.tracer->raw_alert(vm, t);
        if (confirmed) {
          config.tracer->confirmed(vm, t);
          std::vector<std::pair<std::string, double>> top;
          for (std::size_t k = 0; k < alert.top_metrics.size(); ++k)
            top.emplace_back(
                attribute_name(alert.top_metrics[k]),
                result.classification.impacts[static_cast<std::size_t>(
                    alert.top_metrics[k])]);
          config.tracer->cause_inferred(vm, t, top);
        }
      }
      report.alerts.push_back(std::move(alert));
    }
  }
  if (config.tracer != nullptr) config.tracer->finish(last_time);
  return report;
}

// ------------------------------------------------ episode bundle replay

EpisodeReplayResult replay_episode(const obs::EpisodeBundle& bundle) {
  EpisodeReplayResult res;
  const auto note = [&res](const std::string& msg) {
    if (res.first_mismatch.empty()) res.first_mismatch = msg;
  };
  const std::size_t n = bundle.layout.attributes;
  PREPARE_CHECK(bundle.layout.offsets.size() == n + 1);

  // When the bundle carries fewer pre-context ticks than the filter
  // window, the ring was not yet clipped (pre_context_ticks >= W is
  // enforced at capture time), i.e. the capture holds the VM's *entire*
  // push history and the replayed filter is exact from the first tick.
  // Otherwise the window is only fully determined once W seeds are in.
  const bool full_history = bundle.pre_ticks < bundle.decision.filter_w;
  AlarmFilter filter(bundle.decision.filter_k, bundle.decision.filter_w);
  std::size_t pushes = 0;

  for (std::size_t s = 0; s < bundle.ticks.size(); ++s) {
    const auto& tick = bundle.ticks[s];
    ++res.ticks_checked;

    // Classifier score: Eq. 1 re-summed left-to-right, exactly as
    // TAN/NB accumulate it — floating-point addition is not
    // associative, so the order is part of the contract.
    if (tick.decomposable) {
      LogOdds score{tick.prior_log_odds};
      for (std::size_t i = 0; i < n; ++i) score += tick.impacts[i];
      if (static_cast<double>(score) != tick.score) {
        ++res.score_mismatches;
        std::ostringstream os;
        os << "tick " << s << " (t=" << tick.t << "): replayed score "
           << static_cast<double>(score) << " != recorded " << tick.score;
        note(os.str());
      }
    }

    // Anomaly verdict: score strictly above even prior+evidence odds.
    if ((tick.score > 0.0) != tick.abnormal) {
      ++res.abnormal_mismatches;
      std::ostringstream os;
      os << "tick " << s << " (t=" << tick.t
         << "): abnormal flag inconsistent with score " << tick.score;
      note(os.str());
    }

    // Markov look-ahead modes: argmax (first maximum, like
    // Distribution::mode) of each captured per-attribute distribution.
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t lo = bundle.layout.offsets[i];
      const std::size_t hi = bundle.layout.offsets[i + 1];
      std::size_t best = 0;
      for (std::size_t b = 1; b < hi - lo; ++b)
        if (tick.dists[lo + b] > tick.dists[lo + best]) best = b;
      if (best != tick.mode_row[i]) {
        ++res.mode_mismatches;
        std::ostringstream os;
        os << "tick " << s << " (t=" << tick.t << "): "
           << attr_label(bundle, i) << " mode bin " << best
           << " != recorded " << tick.mode_row[i];
        note(os.str());
      }
    }

    // Raw alert gate: abnormal + attribution confidence.
    double top = 0.0;
    for (std::size_t i = 0; i < n; ++i) top = std::max(top, tick.impacts[i]);
    const bool raw =
        tick.abnormal && top >= bundle.decision.alert_min_top_impact;
    if (raw != tick.raw_alert) {
      ++res.alert_mismatches;
      std::ostringstream os;
      os << "tick " << s << " (t=" << tick.t << "): replayed raw alert "
         << raw << " != recorded " << tick.raw_alert;
      note(os.str());
    }

    // k-of-W confirmation, seeded from the recorded raw flags so a raw
    // mismatch above doesn't cascade into every later filter check.
    const bool confirmed = filter.push(tick.raw_alert);
    ++pushes;
    if ((full_history || pushes >= bundle.decision.filter_w) &&
        confirmed != tick.confirmed) {
      ++res.filter_mismatches;
      std::ostringstream os;
      os << "tick " << s << " (t=" << tick.t << "): replayed confirmed "
         << confirmed << " != recorded " << tick.confirmed;
      note(os.str());
    }
  }

  // Diagnosis: the recorded ranking must be the positive-impact prefix
  // of the stable impact sort. When the episode's confirming tick is in
  // the capture (predictive episodes — the reactive path diagnoses from
  // a separate classify_current call), re-rank its impacts and compare.
  if (bundle.diagnosis.valid) {
    res.diagnosis_checked = true;
    const auto& d = bundle.diagnosis;
    for (std::size_t r = 0; r < d.ranked.size() && res.diagnosis_ok; ++r) {
      if (d.impacts[r] <= 0.0 ||
          (r > 0 && d.impacts[r] > d.impacts[r - 1])) {
        res.diagnosis_ok = false;
        note("diagnosis ranking not a positive non-increasing prefix");
      }
    }
    const obs::EvidenceTick* at = nullptr;
    for (const auto& tick : bundle.ticks)
      if (tick.t == d.t) {
        at = &tick;
        break;
      }
    bool impacts_match = at != nullptr;
    for (std::size_t r = 0; impacts_match && r < d.ranked.size(); ++r)
      impacts_match = d.ranked[r] < n && d.impacts[r] == at->impacts[d.ranked[r]];
    if (impacts_match) {
      std::vector<std::size_t> order(n);
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return at->impacts[a] > at->impacts[b];
                       });
      for (std::size_t r = 0; r < d.ranked.size() && res.diagnosis_ok; ++r) {
        if (order[r] != d.ranked[r]) {
          res.diagnosis_ok = false;
          std::ostringstream os;
          os << "diagnosis rank " << r << ": replayed "
             << attr_label(bundle, order[r]) << " != recorded "
             << attr_label(bundle, d.ranked[r]);
          note(os.str());
        }
      }
    }
  }

  // Prevention: re-derive each attempt's action from the policy mode
  // and the feasibility flags the live run consulted. Companion
  // attempts (phase 1) are always a scaling, under every mode.
  for (const auto& p : bundle.preventions) {
    ++res.preventions_checked;
    const int applied =
        p.phase == 1 ? (p.scale_possible ? 1 : 0)
                     : decide_applied(bundle.decision.prevention_mode,
                                      p.metric_kind, p.scale_possible,
                                      p.migrate_possible);
    if (applied != p.applied) {
      ++res.prevention_mismatches;
      std::ostringstream os;
      os << "prevention at t=" << p.t << " on "
         << attr_label(bundle, p.attribute) << ": replayed "
         << applied_name(applied) << " != recorded "
         << applied_name(p.applied);
      note(os.str());
    }
  }

  res.ok = res.score_mismatches == 0 && res.abnormal_mismatches == 0 &&
           res.mode_mismatches == 0 && res.alert_mismatches == 0 &&
           res.filter_mismatches == 0 && res.diagnosis_ok &&
           res.prevention_mismatches == 0;
  return res;
}

WhatIfResult what_if_policy(const obs::EpisodeBundle& bundle, int policy) {
  WhatIfResult res;
  res.policy = policy;
  for (const auto& p : bundle.preventions) {
    // Companion scalings are policy-independent; only the initial
    // ranked walk and validation fallbacks consult the mode.
    if (p.phase == 1) continue;
    const int cf = decide_applied(policy, p.metric_kind, p.scale_possible,
                                  p.migrate_possible);
    ++res.compared;
    res.decisions.emplace_back(p.applied, cf);
    if (cf != p.applied) {
      ++res.diverged;
      if (res.detail.empty()) {
        std::ostringstream os;
        os << "t=" << p.t << " " << attr_label(bundle, p.attribute)
           << ": " << applied_name(p.applied) << " -> "
           << applied_name(cf);
        res.detail = os.str();
      }
    }
  }
  return res;
}

}  // namespace prepare
