// Offline trace replay: "what would PREPARE have said on this trace?"
//
// Two replay granularities:
//
//  * replay_trace — runs the full per-VM prediction pipeline (train on
//    the labeled prefix, then predict + k-of-W filter sample by sample)
//    over a *recorded* run — e.g. one exported with monitor/trace_io.h —
//    and returns the alert/diagnosis timeline, without a live cluster to
//    actuate on. Useful for post-mortems and for tuning the predictor
//    against archived production traces.
//
//  * replay_episode — deterministic counterfactual re-execution of one
//    flight-recorder episode bundle (obs/flight_recorder.h): re-derives
//    every decision in predict -> classify -> filter -> prevention from
//    the captured evidence alone and verifies each is *bit-identical*
//    to what the live controller did. what_if_policy re-derives the
//    prevention decisions under an overridden PreventionMode, answering
//    "would PREPARE have migrated instead?" without re-running the
//    simulation.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "core/anomaly_predictor.h"
#include "monitor/attributes.h"
#include "monitor/metric_store.h"
#include "monitor/slo_log.h"
#include "obs/flight_recorder.h"
#include "obs/span_tracer.h"

namespace prepare {

struct ReplayConfig {
  PredictorConfig predictor;
  double sampling_interval_s = 5.0;
  double lookahead_s = 120.0;
  std::size_t filter_k = 3;
  std::size_t filter_w = 4;
  double alert_min_top_impact = 0.5;
  /// Samples up to this time train the models (with SLO-log labels);
  /// everything after is replayed.
  double train_end = 700.0;
  /// Optional alert-lifecycle tracer (must outlive the call). Replay
  /// has no actuator, so episodes only reach raw_alert / confirmed /
  /// cause_inferred before replay_trace() closes them at the end of the
  /// trace — still enough for post-mortem lead-time analysis.
  obs::SpanTracer* tracer = nullptr;
};

struct ReplayAlert {
  double time = 0.0;
  std::string vm;
  bool confirmed = false;  ///< passed the k-of-W filter
  double score = 0.0;      ///< classifier log-odds at the horizon
  /// Up to three top-attributed metrics (positive impacts only).
  std::vector<Attribute> top_metrics;
};

struct ReplayReport {
  std::vector<ReplayAlert> alerts;  ///< raw alerts, chronological
  std::size_t raw_alerts = 0;
  std::size_t confirmed_alerts = 0;
  /// Time of the first *confirmed* alert, or a negative value if none.
  double first_confirmed = -1.0;
};

/// Replays the trace; `vm_names` defaults to every VM in the store.
ReplayReport replay_trace(const MetricStore& store, const SloLog& slo,
                          const ReplayConfig& config,
                          std::vector<std::string> vm_names = {});

// ------------------------------------------------ episode bundle replay

/// Outcome of re-executing one episode bundle. `ok` means every
/// re-derivable decision matched the live run exactly:
///
///  * score: prior log-odds + sum of per-attribute L_i, summed
///    left-to-right exactly as TAN/NB do (Eq. 1) — compared bitwise.
///    Skipped when the bundle's classifier is not decomposable.
///  * abnormal: score > 0, against the captured flag.
///  * mode rows: argmax of each captured per-attribute predicted
///    distribution, against the captured mode bin.
///  * raw alert: abnormal && max L_i >= alert_min_top_impact.
///  * confirmed: a fresh k-of-W AlarmFilter seeded from the captured
///    pre-context (FlightRecorder checks pre_context_ticks >= W, so the
///    window is fully determined from the filter-warm tick onward).
///  * diagnosis: the ranking is the positive-impact prefix of the
///    stable impact sort (Classifier::ranked_attributes order).
///  * prevention: each attempt's applied action re-derived from the
///    policy mode + the captured feasibility flags.
struct EpisodeReplayResult {
  bool ok = false;
  std::size_t ticks_checked = 0;
  std::size_t score_mismatches = 0;
  std::size_t abnormal_mismatches = 0;
  std::size_t mode_mismatches = 0;
  std::size_t alert_mismatches = 0;
  std::size_t filter_mismatches = 0;
  bool diagnosis_checked = false;
  bool diagnosis_ok = true;
  std::size_t preventions_checked = 0;
  std::size_t prevention_mismatches = 0;
  /// Human-readable description of the first mismatch (empty when ok).
  std::string first_mismatch;
};

/// Re-executes one flight-recorder bundle and verifies bit-identity.
EpisodeReplayResult replay_episode(const obs::EpisodeBundle& bundle);

/// Counterfactual: the bundle's prevention decisions re-derived under
/// `policy` (PreventionMode as int, core/prevention.h order).
struct WhatIfResult {
  int policy = 0;
  std::size_t compared = 0;  ///< initial/fallback attempts re-derived
  std::size_t diverged = 0;
  /// (live applied, counterfactual applied) per compared attempt,
  /// 0 none / 1 scale / 2 migrate.
  std::vector<std::pair<int, int>> decisions;
  /// Human-readable first divergence (empty when none).
  std::string detail;
};

WhatIfResult what_if_policy(const obs::EpisodeBundle& bundle, int policy);

}  // namespace prepare
