// Offline trace replay: "what would PREPARE have said on this trace?"
//
// Runs the full per-VM prediction pipeline (train on the labeled prefix,
// then predict + k-of-W filter sample by sample) over a *recorded*
// run — e.g. one exported with monitor/trace_io.h — and returns the
// alert/diagnosis timeline, without a live cluster to actuate on.
// Useful for post-mortems and for tuning the predictor against archived
// production traces.
#pragma once

#include <string>
#include <vector>

#include "core/anomaly_predictor.h"
#include "monitor/attributes.h"
#include "monitor/metric_store.h"
#include "monitor/slo_log.h"
#include "obs/span_tracer.h"

namespace prepare {

struct ReplayConfig {
  PredictorConfig predictor;
  double sampling_interval_s = 5.0;
  double lookahead_s = 120.0;
  std::size_t filter_k = 3;
  std::size_t filter_w = 4;
  double alert_min_top_impact = 0.5;
  /// Samples up to this time train the models (with SLO-log labels);
  /// everything after is replayed.
  double train_end = 700.0;
  /// Optional alert-lifecycle tracer (must outlive the call). Replay
  /// has no actuator, so episodes only reach raw_alert / confirmed /
  /// cause_inferred before replay_trace() closes them at the end of the
  /// trace — still enough for post-mortem lead-time analysis.
  obs::SpanTracer* tracer = nullptr;
};

struct ReplayAlert {
  double time = 0.0;
  std::string vm;
  bool confirmed = false;  ///< passed the k-of-W filter
  double score = 0.0;      ///< classifier log-odds at the horizon
  /// Up to three top-attributed metrics (positive impacts only).
  std::vector<Attribute> top_metrics;
};

struct ReplayReport {
  std::vector<ReplayAlert> alerts;  ///< raw alerts, chronological
  std::size_t raw_alerts = 0;
  std::size_t confirmed_alerts = 0;
  /// Time of the first *confirmed* alert, or a negative value if none.
  double first_confirmed = -1.0;
};

/// Replays the trace; `vm_names` defaults to every VM in the store.
ReplayReport replay_trace(const MetricStore& store, const SloLog& slo,
                          const ReplayConfig& config,
                          std::vector<std::string> vm_names = {});

}  // namespace prepare
