#include "core/experiment.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "apps/stream/stream_app.h"
#include "apps/webapp/web_app.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "faults/injector.h"
#include "monitor/vm_monitor.h"
#include "obs/stage_profiler.h"
#include "sim/clock.h"
#include "sim/cluster.h"
#include "sim/hypervisor.h"
#include "workload/nasa_trace.h"
#include "workload/patterns.h"

namespace prepare {

const char* app_kind_name(AppKind a) {
  switch (a) {
    case AppKind::kSystemS: return "system_s";
    case AppKind::kRubis: return "rubis";
  }
  return "?";
}

const char* fault_kind_name(FaultKind f) {
  switch (f) {
    case FaultKind::kMemoryLeak: return "memory_leak";
    case FaultKind::kCpuHog: return "cpu_hog";
    case FaultKind::kBottleneck: return "bottleneck";
  }
  return "?";
}

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kNoIntervention: return "without_intervention";
    case Scheme::kReactive: return "reactive";
    case Scheme::kPrepare: return "prepare";
  }
  return "?";
}

namespace {

/// Nominal source rates under which both applications run comfortably.
constexpr double kStreamBaseRate = 25000.0;  // tuples/s
constexpr double kWebBaseRate = 60.0;        // requests/s

/// Ramp slopes for the bottleneck fault: reach the bottleneck
/// component's capacity roughly two thirds into the injection.
constexpr double kStreamRampSlope = 320.0;   // tuples/s per s
constexpr double kStreamRampCap = 118000.0;
constexpr double kWebRampSlope = 0.42;       // requests/s per s
constexpr double kWebRampCap = 185.0;

struct Testbed {
  SimClock clock;
  Cluster cluster;
  EventLog events;
  std::unique_ptr<Hypervisor> hypervisor;
  std::unique_ptr<CompositeWorkload> workload;
  std::unique_ptr<Application> app;
  FaultInjector injector;
  std::string faulty_vm;
};

void add_ramps_if_bottleneck(CompositeWorkload* w, const ScenarioConfig& c,
                             double slope, double cap) {
  // One overload ramp per bottleneck injection window (additive on the
  // base load); non-bottleneck injections do not touch the workload.
  if (c.fault == FaultKind::kBottleneck)
    w->add(std::make_unique<RampWorkload>(0.0, slope, c.fault1_start,
                                          c.fault1_start + c.fault_duration,
                                          cap));
  if (c.second_fault.value_or(c.fault) == FaultKind::kBottleneck)
    w->add(std::make_unique<RampWorkload>(0.0, slope, c.fault2_start,
                                          c.fault2_start + c.fault_duration,
                                          cap));
}

std::unique_ptr<Testbed> build_testbed(const ScenarioConfig& config) {
  auto bed = std::make_unique<Testbed>();
  // Attach instrumentation before any placement happens so initial VM
  // placements are counted and the event-log drop counter exists from
  // the first record.
  bed->cluster.set_metrics(config.metrics);
  bed->events.set_metrics(config.metrics);
  Rng rng(config.seed);

  const std::size_t app_vms =
      config.app == AppKind::kSystemS ? 7 : 4;
  // One host per application VM (paper: each PE in a guest VM on VCL
  // hosts) plus two idle spares as migration targets.
  std::vector<Vm*> vms;
  for (std::size_t i = 0; i < app_vms; ++i) {
    Host* host = bed->cluster.add_host("host" + std::to_string(i + 1));
    const std::string vm_name = config.app == AppKind::kSystemS
                                    ? "vm-pe" + std::to_string(i + 1)
                                    : std::vector<std::string>{
                                          "vm-web", "vm-app1", "vm-app2",
                                          "vm-db"}[i];
    const double mem =
        config.app == AppKind::kSystemS ? 512.0 : (i == 3 ? 1024.0 : 768.0);
    vms.push_back(bed->cluster.add_vm(vm_name, 1.0, mem, host));
  }
  bed->cluster.add_host("spare1");
  bed->cluster.add_host("spare2");

  bed->hypervisor = std::make_unique<Hypervisor>(&bed->clock, &bed->cluster,
                                                 &bed->events);

  // Workload: a realistic fluctuating base plus (for the bottleneck
  // fault) per-injection overload ramps.
  bed->workload = std::make_unique<CompositeWorkload>();
  if (config.app == AppKind::kSystemS) {
    bed->workload->add(std::make_unique<ConstantWorkload>(kStreamBaseRate));
    bed->workload->add(
        std::make_unique<SineWorkload>(0.0, 700.0, 240.0));
    add_ramps_if_bottleneck(bed->workload.get(), config, kStreamRampSlope,
                            kStreamRampCap);
    bed->app = std::make_unique<StreamApp>(vms, bed->workload.get());
  } else {
    NasaTraceConfig trace;
    trace.base_rate = kWebBaseRate;
    bed->workload->add(
        std::make_unique<NasaTraceWorkload>(trace, config.seed));
    add_ramps_if_bottleneck(bed->workload.get(), config, kWebRampSlope,
                            kWebRampCap);
    bed->app = std::make_unique<WebApp>(vms, bed->workload.get());
  }

  // Fault schedule: two injections of the same type on the same target
  // (the paper's recurrent-anomaly setup).
  Vm* target = nullptr;
  if (config.app == AppKind::kSystemS) {
    // Memory leak / CPU hog hit a randomly selected middle PE; the
    // bottleneck is PE6, the heavy network sink (Section III-A).
    target = config.fault == FaultKind::kBottleneck
                 ? vms[5]
                 : vms[static_cast<std::size_t>(rng.uniform_int(1, 4))];
  } else {
    // RUBiS faults all land in / saturate the database server.
    target = vms[3];
  }
  bed->faulty_vm = target->name();
  auto add_fault = [&](FaultKind kind, double start) {
    switch (kind) {
      case FaultKind::kMemoryLeak:
        bed->injector.add(std::make_unique<MemoryLeakFault>(
            target, start, config.fault_duration, config.leak_rate_mb_s));
        break;
      case FaultKind::kCpuHog:
        bed->injector.add(std::make_unique<CpuHogFault>(
            target, start, config.fault_duration, config.hog_cores));
        break;
      case FaultKind::kBottleneck:
        bed->injector.add(std::make_unique<BottleneckFault>(
            target, start, config.fault_duration));
        break;
    }
  };
  add_fault(config.fault, config.fault1_start);
  add_fault(config.second_fault.value_or(config.fault), config.fault2_start);
  return bed;
}

}  // namespace

ScenarioResult run_scenario(const ScenarioConfig& config) {
  PREPARE_CHECK(config.dt > 0.0);
  PREPARE_CHECK(config.sampling_interval_s >= config.dt);
  const auto sample_every = static_cast<std::size_t>(
      std::round(config.sampling_interval_s / config.dt));
  PREPARE_CHECK_MSG(
      std::abs(sample_every * config.dt - config.sampling_interval_s) < 1e-9,
      "sampling interval must be a multiple of dt");

  auto bed = build_testbed(config);
  ScenarioResult result;
  result.faulty_vm = bed->faulty_vm;

  VmMonitorConfig mcfg;
  // Counter deltas over a shorter sampling window have proportionally
  // higher variance: fine-grained monitoring sees burstier values (this
  // is why the paper's 1 s interval predicts worse than 5 s, Fig. 13).
  mcfg.noise = config.monitor_noise *
               std::sqrt(5.0 / config.sampling_interval_s);
  if (config.graybox_memory)
    mcfg.memory_source = MemorySource::kGrayboxInference;
  VmMonitor monitor(mcfg, config.seed + 1000);

  ControllerContext ctx;
  ctx.app = bed->app.get();
  ctx.cluster = &bed->cluster;
  ctx.hypervisor = bed->hypervisor.get();
  ctx.store = &result.store;
  ctx.slo = &result.slo;
  ctx.log = &bed->events;
  ctx.metrics = config.metrics;
  ctx.tracer = config.tracer;
  ctx.introspect = config.introspect;
  ctx.recorder = config.recorder;
  ctx.num_threads = config.num_threads;

  PrepareConfig pcfg = config.prepare;
  pcfg.sampling_interval_s = config.sampling_interval_s;

  std::unique_ptr<AnomalyManager> manager;
  switch (config.scheme) {
    case Scheme::kNoIntervention:
      manager = std::make_unique<NoInterventionManager>(ctx);
      break;
    case Scheme::kReactive:
      manager = std::make_unique<ReactiveController>(ctx, pcfg);
      break;
    case Scheme::kPrepare:
      manager = std::make_unique<PrepareController>(ctx, pcfg);
      break;
  }

  obs::StageProfiler profiler(config.metrics);
  obs::Histogram* stage_monitor = profiler.stage(obs::kStageMonitorSample);
  obs::Counter* ticks_counter = obs::counter(config.metrics, "run.ticks_total");
  obs::Counter* samples_counter =
      obs::counter(config.metrics, "run.samples_total");
  obs::Gauge* sim_time_gauge = obs::gauge(config.metrics, "run.sim_time_s");

  const auto vms = bed->app->vms();
  bool trained = false;
  std::size_t tick = 0;
  while (bed->clock.now() + 1e-9 < config.run_end) {
    const double now = bed->clock.now();

    for (Vm* vm : vms) vm->begin_tick();
    bed->injector.apply(now, config.dt);
    bed->app->step(now, config.dt);
    result.slo.record(now, config.dt, bed->app->slo_violated(),
                      bed->app->slo_metric());
    obs::inc(ticks_counter);

    if (tick % sample_every == 0) {
      {
        obs::ScopedTimer timer(stage_monitor);
        for (Vm* vm : vms)
          result.store.record(vm->name(), now, monitor.sample(*vm));
      }
      obs::inc(samples_counter);
      if (!trained && now >= config.train_time) {
        manager->train(0.0, now);
        trained = true;
      }
      manager->on_sample(now);
    }

    bed->clock.advance(Seconds{config.dt});
    ++tick;
  }
  obs::set(sim_time_gauge, bed->clock.now());
  result.vm_count = vms.size();
  result.ticks = tick;
  // Run over: an episode confirmed in the final round has no chance to
  // validate — close everything still open as expired.
  if (config.tracer != nullptr) config.tracer->finish(bed->clock.now());
  // Likewise: pending horizon predictions past the run end never
  // realize an outcome — final drift evaluation + per-horizon gauges.
  if (config.introspect != nullptr)
    config.introspect->finish(bed->clock.now());
  // The tracer's finish() above closed every open episode, flushing any
  // open captures into bundles; now publish the recorder.* metrics.
  if (config.recorder != nullptr) config.recorder->finish();

  // Clamp: a second injection scheduled past the run end (e.g. the
  // quiet-trace configuration) leaves an empty measurement window.
  result.measure_start = std::min(config.fault2_start - 30.0, config.run_end);
  result.measure_end = config.run_end;
  result.violation_time =
      result.slo.violation_time(result.measure_start, result.measure_end);
  result.violation_time_total = result.slo.total_violation_time();
  result.events = bed->events;
  return result;
}

RepeatedResult run_repeated(ScenarioConfig config, std::size_t repeats) {
  PREPARE_CHECK(repeats >= 1);
  RepeatedResult out;
  for (std::size_t r = 0; r < repeats; ++r) {
    config.seed = config.seed + (r == 0 ? 0 : 1);
    const ScenarioResult result = run_scenario(config);
    out.vm_ticks += result.vm_count * result.ticks;
    out.runs.push_back(result.violation_time);
  }
  out.mean = mean_of(out.runs);
  out.stddev = stddev_of(out.runs);
  return out;
}

}  // namespace prepare
