// Experiment harness reproducing the paper's evaluation methodology
// (Section III-A):
//
//  * two case-study systems (System S-like stream processing, RUBiS-like
//    3-tier web application), each component in its own VM on its own
//    host, plus spare hosts as migration targets;
//  * three fault types, injected twice per run — the model learns from
//    the first injection (automatic runtime labeling) and predicts the
//    second;
//  * three management schemes (without intervention / reactive /
//    PREPARE) compared by SLO violation time around the second
//    injection; each experiment repeated with different seeds for
//    mean +/- standard deviation.
#pragma once

#include <optional>
#include <cstdint>
#include <string>
#include <vector>

#include "core/controller.h"
#include "monitor/metric_store.h"
#include "monitor/slo_log.h"
#include "sim/event_log.h"

namespace prepare {

enum class AppKind { kSystemS, kRubis };
enum class FaultKind { kMemoryLeak, kCpuHog, kBottleneck };
enum class Scheme { kNoIntervention, kReactive, kPrepare };

const char* app_kind_name(AppKind a);
const char* fault_kind_name(FaultKind f);
const char* scheme_name(Scheme s);

struct ScenarioConfig {
  AppKind app = AppKind::kSystemS;
  FaultKind fault = FaultKind::kMemoryLeak;
  /// Fault type of the *second* injection. Defaults to `fault` (the
  /// paper's recurrent-anomaly setup); set differently to evaluate the
  /// unseen-anomaly case — a supervised model trained on the first fault
  /// type has never seen the second.
  std::optional<FaultKind> second_fault;
  Scheme scheme = Scheme::kPrepare;
  std::uint64_t seed = 1;

  /// Simulation resolution and monitoring cadence.
  double dt = 1.0;
  double sampling_interval_s = 5.0;
  double monitor_noise = 0.02;
  /// Memory attributes from the in-guest daemon (paper default) or
  /// inferred gray-box from paging signals (Section V alternative).
  bool graybox_memory = false;

  /// Timeline (paper: runs of 1200-1800 s, two ~300 s injections, model
  /// trained from the first and predicting the second).
  double fault1_start = 300.0;
  double fault2_start = 900.0;
  double fault_duration = 300.0;
  double train_time = 700.0;
  double run_end = 1350.0;

  /// Fault intensities. The hog is a CPU-bound program with several busy
  /// worker threads (it wants hog_cores full cores), like the paper's
  /// competing CPU-bound program / infinite-loop bug.
  double leak_rate_mb_s = 2.5;
  double hog_cores = 8.0;

  /// Controller configuration (prevention mode selects scaling
  /// vs. migration, i.e. Fig. 6/7 vs. Fig. 8/9).
  PrepareConfig prepare;

  /// Worker threads for the controller's per-VM prediction fan-out
  /// (ControllerContext::num_threads). Results are bit-identical for
  /// any thread count; only wall-clock stage histograms differ.
  std::size_t num_threads = 1;

  /// Optional observability registry. When set, the run publishes
  /// run.* / sim.* / controller.* / prevention.* metrics and times all
  /// seven pipeline stages into stage.<name>.seconds histograms; when
  /// null (default) no instrumentation code runs at all. Must outlive
  /// the run; pass a freshly reset() registry per repeat to keep runs
  /// separable.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional alert-lifecycle span tracer (obs/span_tracer.h). The run
  /// drives it through the controller and closes every still-open
  /// episode (finish) when the simulation ends. Must outlive the run;
  /// pass a fresh tracer per repeat — episodes are per-run.
  obs::SpanTracer* tracer = nullptr;
  /// Optional model-introspection layer (obs/model_introspect.h):
  /// per-horizon prediction calibration, model-state probes, and drift
  /// detection, driven by the prepare controller and finalized when the
  /// simulation ends. Must outlive the run; pass a fresh introspector
  /// per repeat — calibration state is per-run.
  obs::ModelIntrospect* introspect = nullptr;
  /// Optional episode flight recorder (obs/flight_recorder.h): per-VM
  /// decision-evidence rings flushed into forensic episode bundles on
  /// episode close, driven by the prepare controller (through the
  /// tracer's lifecycle hooks — set `tracer` too or the recorder stays
  /// inert) and finalized when the simulation ends. Must outlive the
  /// run; pass a fresh recorder per repeat — bundles are per-run.
  obs::FlightRecorder* recorder = nullptr;
};

struct ScenarioResult {
  /// SLO violation time within the measurement window around the second
  /// injection — the Fig. 6 / Fig. 8 metric.
  double violation_time = 0.0;
  double violation_time_total = 0.0;
  double measure_start = 0.0;
  double measure_end = 0.0;
  /// Work accounting for bench throughput rates: the run simulated
  /// `ticks` steps of `vm_count` VMs, i.e. vm_count * ticks VM-ticks.
  std::size_t vm_count = 0;
  std::size_t ticks = 0;
  std::string faulty_vm;  ///< ground truth
  SloLog slo;
  MetricStore store;
  EventLog events;
};

/// Runs one scenario end to end.
ScenarioResult run_scenario(const ScenarioConfig& config);

/// Runs `repeats` scenarios with seeds seed, seed+1, ... and aggregates
/// the violation times.
struct RepeatedResult {
  double mean = 0.0;
  double stddev = 0.0;
  /// Total simulated work across all repeats (sum of per-run
  /// vm_count * ticks), for bench VM-ticks/sec rates.
  std::size_t vm_ticks = 0;
  std::vector<double> runs;
};
RepeatedResult run_repeated(ScenarioConfig config, std::size_t repeats);

}  // namespace prepare
