// Trace-driven prediction-accuracy evaluation (paper Figs. 10-13).
//
// Replays a recorded run (MetricStore + SloLog): models are trained on
// the history up to `train_end` (covering the first fault injection) and
// then evaluated over the test window — at every sample time t the
// predictor forecasts the state at t + look-ahead and the predicted
// label is compared with the true label at t + look-ahead, yielding the
// true-positive rate A_T and false-alarm rate A_F of Eq. (3).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/anomaly_predictor.h"
#include "monitor/metric_store.h"
#include "monitor/slo_log.h"

namespace prepare {

struct AccuracyConfig {
  PredictorConfig predictor;
  /// Per-component (one model per VM, Fig. 10's "per-component") or
  /// monolithic (all VMs' attributes in one model).
  bool per_component = true;
  /// k-of-W filtering applied to the application-level alert stream
  /// (k = w = 1 disables filtering; Fig. 12 sweeps k).
  std::size_t filter_k = 1;
  std::size_t filter_w = 1;
  double sampling_interval_s = 5.0;
  double train_end = 700.0;
  double test_start = 750.0;
  /// Match the controller's alert conditions: per-model attribution gate
  /// and the discriminativeness requirement (see PrepareConfig).
  double alert_min_top_impact = 0.5;
  bool require_discriminative = true;
  /// Keep the per-sample prediction record in the result (off by
  /// default: the counts are all the figures need).
  bool keep_predictions = false;
};

struct AccuracyResult {
  std::size_t tp = 0, fn = 0, fp = 0, tn = 0;
  /// True-positive rate A_T = tp / (tp + fn); 0 when undefined.
  double a_t = 0.0;
  /// False-alarm rate A_F = fp / (fp + tn); 0 when undefined.
  double a_f = 0.0;
  /// With keep_predictions: (sample time, filtered predicted label,
  /// true label at the horizon) per evaluated sample.
  struct Sample {
    double time = 0.0;
    bool predicted = false;
    bool truth = false;
  };
  std::vector<Sample> samples;
};

/// Evaluates prediction accuracy at the given look-ahead window over a
/// recorded run. `vm_names` selects the components (normally every
/// application VM).
AccuracyResult evaluate_accuracy(const MetricStore& store, const SloLog& slo,
                                 const std::vector<std::string>& vm_names,
                                 double lookahead_s,
                                 const AccuracyConfig& config);

}  // namespace prepare
