// False-alarm filter: k-of-W majority voting (paper Section II-C).
//
// "PREPARE triggers prevention actions only after receiving at least k
// alerts in the recent W predictions." Real anomaly symptoms persist;
// most false alarms are transient resource spikes, so requiring k of the
// last W raw predictions to agree filters them at the cost of a small
// confirmation delay (Fig. 12 sweeps k).
#pragma once

#include <cstddef>

#include "timeseries/sliding_window.h"

namespace prepare {

class AlarmFilter {
 public:
  /// Paper defaults: k = 3 alerts within the last W = 4 predictions.
  explicit AlarmFilter(std::size_t k = 3, std::size_t w = 4);

  /// Feeds one raw prediction; returns whether the alarm is confirmed
  /// (>= k alerts among the last W raw predictions, including this one).
  bool push(bool alert);

  /// Confirmation state as of the last push.
  bool confirmed() const { return confirmed_; }

  std::size_t k() const { return k_; }
  std::size_t w() const { return window_.capacity(); }

  void reset();

 private:
  std::size_t k_;
  SlidingWindow<bool> window_;
  bool confirmed_ = false;
};

}  // namespace prepare
