#include "core/accuracy.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/alarm_filter.h"
#include "monitor/labeler.h"

namespace prepare {

namespace {

std::vector<std::string> feature_names_for(
    const std::vector<std::string>& vm_names, bool per_component,
    std::size_t vm_index) {
  std::vector<std::string> names;
  auto add_vm = [&](const std::string& vm) {
    for (std::size_t a = 0; a < kAttributeCount; ++a)
      names.push_back(vm + "." +
                      attribute_name(static_cast<Attribute>(a)));
  };
  if (per_component)
    add_vm(vm_names[vm_index]);
  else
    for (const auto& vm : vm_names) add_vm(vm);
  return names;
}

}  // namespace

AccuracyResult evaluate_accuracy(const MetricStore& store, const SloLog& slo,
                                 const std::vector<std::string>& vm_names,
                                 double lookahead_s,
                                 const AccuracyConfig& config) {
  PREPARE_CHECK(!vm_names.empty());
  PREPARE_CHECK(lookahead_s > 0.0);
  const auto steps = static_cast<std::size_t>(std::max(
      1.0, std::round(lookahead_s / config.sampling_interval_s)));

  // All VMs are sampled by the same loop, so their sample indices align.
  const std::size_t total = store.sample_count(vm_names[0]);
  for (const auto& vm : vm_names)
    PREPARE_CHECK_MSG(store.sample_count(vm) == total,
                      "unaligned sample histories");
  PREPARE_CHECK_MSG(total >= steps + 2, "trace too short");

  // Assemble aligned rows: per VM, or concatenated for the monolithic
  // model.
  const std::size_t models = config.per_component ? vm_names.size() : 1;
  std::vector<AnomalyPredictor> predictors;
  predictors.reserve(models);
  for (std::size_t m = 0; m < models; ++m)
    predictors.emplace_back(
        feature_names_for(vm_names, config.per_component, m),
        config.predictor);

  auto row_for = [&](std::size_t model, std::size_t index) {
    std::vector<double> row;
    if (config.per_component) {
      const auto v = store.sample(vm_names[model], index);
      row.assign(v.begin(), v.end());
    } else {
      for (const auto& vm : vm_names) {
        const auto v = store.sample(vm, index);
        row.insert(row.end(), v.begin(), v.end());
      }
    }
    return row;
  };

  // Train on [0, train_end].
  for (std::size_t m = 0; m < models; ++m) {
    std::vector<std::vector<double>> rows;
    std::vector<bool> abnormal;
    for (std::size_t i = 0; i < total; ++i) {
      const double t = store.sample_time(vm_names[0], i);
      if (t > config.train_end) break;
      rows.push_back(row_for(m, i));
      abnormal.push_back(slo.violated_at(t));
    }
    PREPARE_CHECK_MSG(!rows.empty(), "no training samples before train_end");
    predictors[m].train(rows, abnormal);
  }

  // Replay the test window.
  AccuracyResult result;
  AlarmFilter filter(config.filter_k, config.filter_w);
  for (std::size_t i = 0; i < total; ++i) {
    const double t = store.sample_time(vm_names[0], i);
    if (t <= config.train_end) continue;
    for (std::size_t m = 0; m < models; ++m)
      predictors[m].observe(row_for(m, i));
    if (t < config.test_start) continue;
    if (i + steps >= total) break;

    bool raw_alert = false;
    for (std::size_t m = 0; m < models; ++m) {
      if (!predictors[m].ready()) continue;
      if (config.require_discriminative && !predictors[m].discriminative())
        continue;
      const auto cls = predictors[m].predict(TickIndex{steps}).classification;
      double top = 0.0;
      for (double impact : cls.impacts) top = std::max(top, impact);
      if (cls.abnormal && top >= config.alert_min_top_impact) {
        raw_alert = true;
        break;
      }
    }
    const bool predicted = filter.push(raw_alert);
    const double horizon = store.sample_time(vm_names[0], i + steps);
    const bool truth = slo.violated_at(horizon);
    if (config.keep_predictions)
      result.samples.push_back({t, predicted, truth});
    if (truth && predicted) ++result.tp;
    else if (truth && !predicted) ++result.fn;
    else if (!truth && predicted) ++result.fp;
    else ++result.tn;
  }

  if (result.tp + result.fn > 0)
    result.a_t = static_cast<double>(result.tp) /
                 static_cast<double>(result.tp + result.fn);
  if (result.fp + result.tn > 0)
    result.a_f = static_cast<double>(result.fp) /
                 static_cast<double>(result.fp + result.tn);
  return result;
}

}  // namespace prepare
