#include "core/controller.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/logging.h"

namespace prepare {

namespace {

std::vector<double> to_row(const AttributeVector& v) {
  return std::vector<double>(v.begin(), v.end());
}

std::vector<std::string> attribute_feature_names() {
  std::vector<std::string> names;
  names.reserve(kAttributeCount);
  for (std::size_t a = 0; a < kAttributeCount; ++a)
    names.push_back(attribute_name(static_cast<Attribute>(a)));
  return names;
}

double top_impact(const Classification& cls) {
  double best = 0.0;
  for (double impact : cls.impacts) best = std::max(best, impact);
  return best;
}

/// (attribute name, impact strength L_i) pairs for a cause_inferred
/// span, highest-ranked first.
std::vector<std::pair<std::string, double>> top_metric_attrs(
    const Diagnosis::FaultyVm& faulty) {
  std::vector<std::pair<std::string, double>> top;
  const std::size_t take = std::min<std::size_t>(3, faulty.ranked.size());
  top.reserve(take);
  for (std::size_t i = 0; i < take; ++i)
    top.emplace_back(attribute_name(faulty.ranked[i]), faulty.impacts[i]);
  return top;
}

}  // namespace

AnomalyManager::AnomalyManager(ControllerContext ctx) : ctx_(ctx) {
  PREPARE_CHECK(ctx.app != nullptr);
  PREPARE_CHECK(ctx.cluster != nullptr);
  PREPARE_CHECK(ctx.hypervisor != nullptr);
  PREPARE_CHECK(ctx.store != nullptr);
  PREPARE_CHECK(ctx.slo != nullptr);
  PREPARE_CHECK(ctx.log != nullptr);
}

std::vector<std::string> AnomalyManager::vm_names() const {
  std::vector<std::string> names;
  for (const Vm* vm : ctx_.app->vms()) names.push_back(vm->name());
  return names;
}

void AnomalyManager::labeled_rows(const std::string& vm_name, double t0,
                                  double t1,
                                  std::vector<std::vector<double>>* rows,
                                  std::vector<bool>* abnormal) const {
  const auto samples = Labeler::label(*ctx_.store, *ctx_.slo, vm_name, t0, t1);
  rows->clear();
  abnormal->clear();
  rows->reserve(samples.size());
  abnormal->reserve(samples.size());
  for (const auto& s : samples) {
    rows->push_back(to_row(s.values));
    abnormal->push_back(s.abnormal);
  }
}

std::vector<double> AnomalyManager::latest_row(
    const std::string& vm_name) const {
  const auto samples = ctx_.store->last_samples(vm_name, 1);
  PREPARE_CHECK_MSG(!samples.empty(), "no samples for VM " + vm_name);
  return to_row(samples.back());
}

// ---------------------------------------------------------------- PREPARE

PrepareController::PrepareController(ControllerContext ctx,
                                     PrepareConfig config)
    : AnomalyManager(ctx),
      config_(config),
      lookahead_steps_(TickIndex{static_cast<std::size_t>(std::max(
          1.0,
          std::round(config.lookahead_s / config.sampling_interval_s)))}),
      inference_(vm_names(), config.inference),
      actuator_(ctx.hypervisor, ctx.cluster, ctx.store, ctx.log,
                config.prevention, ctx.metrics, ctx.tracer, ctx.recorder),
      profiler_(ctx.metrics),
      pool_(ctx.num_threads > 1 ? std::make_unique<ThreadPool>(ctx.num_threads)
                                : nullptr) {
  const auto names = attribute_feature_names();
  if (ctx.introspect != nullptr) {
    ctx.introspect->set_horizon(lookahead_steps_.value(),
                                config_.sampling_interval_s);
    ctx.introspect->set_attribute_names(names);
  }
  if (ctx.recorder != nullptr) {
    obs::DecisionConfig decision;
    decision.filter_k = config_.filter_k;
    decision.filter_w = config_.filter_w;
    decision.alert_min_top_impact = config_.alert_min_top_impact;
    decision.prevention_mode = static_cast<int>(config_.prevention.mode);
    decision.companion_scaling = config_.prevention.companion_scaling;
    decision.lookahead_s = config_.lookahead_s;
    decision.sampling_interval_s = config_.sampling_interval_s;
    ctx.recorder->set_decision_config(decision);
    // The tracer owns the episode lifecycle; captures open and close
    // through its hooks.
    if (ctx.tracer != nullptr) ctx.tracer->set_recorder(ctx.recorder);
  }
  for (const auto& vm : vm_names()) {
    auto [it, inserted] =
        predictors_.emplace(vm, AnomalyPredictor(names, config_.predictor));
    if (inserted && profiler_.enabled()) it->second.set_profiler(&profiler_);
    if (inserted && ctx.introspect != nullptr)
      it->second.set_introspect(ctx.introspect);
    filters_.emplace(vm, AlarmFilter(config_.filter_k, config_.filter_w));
  }
  stage_alarm_filter_ = profiler_.stage(obs::kStageAlarmFilter);
  stage_cause_inference_ = profiler_.stage(obs::kStageCauseInference);
  stage_prevention_ = profiler_.stage(obs::kStagePrevention);
  raw_alerts_counter_ = obs::counter(ctx.metrics, "controller.raw_alerts_total");
  confirmed_alerts_counter_ =
      obs::counter(ctx.metrics, "controller.confirmed_alerts_total");
  reactive_fallbacks_counter_ =
      obs::counter(ctx.metrics, "controller.reactive_fallbacks_total");
}

void PrepareController::train(double t0, double t1) {
  std::vector<std::vector<double>> rows;
  std::vector<bool> abnormal;
  std::size_t trained_models = 0, discriminative_models = 0;
  for (auto& [vm, predictor] : predictors_) {
    labeled_rows(vm, t0, t1, &rows, &abnormal);
    if (rows.empty()) continue;
    predictor.train(rows, abnormal);
    ++trained_models;
    // Register the VM's evidence geometry with the flight recorder: the
    // flattened-distribution layout depends on the trained discretizer
    // alphabets (quantile binning merges ties), so this must happen
    // after train(). Capture is predictor-side: each fan-out worker
    // fills only its own Result::evidence slot.
    if (ctx_.recorder != nullptr &&
        recorder_slots_.count(vm) == 0) {
      obs::EvidenceLayout layout;
      layout.attributes = predictor.feature_names().size();
      layout.offsets.assign(layout.attributes + 1, 0);
      for (std::size_t a = 0; a < layout.attributes; ++a)
        layout.offsets[a + 1] =
            layout.offsets[a] + predictor.attribute_alphabet(a);
      layout.attribute_names = predictor.feature_names();
      layout.horizon_steps = lookahead_steps_.value();
      recorder_slots_.emplace(vm, ctx_.recorder->register_vm(vm, layout));
      predictor.set_evidence_capture(true);
    }
    if (predictor.discriminative()) {
      ++discriminative_models;
    } else {
      PREPARE_INFO("prepare") << "model for " << vm
                              << " is not discriminative (train TPR "
                              << predictor.train_tpr()
                              << "): its alerts are suppressed";
    }
  }
  trained_ = true;
  PREPARE_INFO("prepare") << "trained " << trained_models
                          << " per-VM models over [" << t0 << ", " << t1
                          << "], " << discriminative_models
                          << " discriminative";
  ctx_.log->record(t1, EventKind::kInfo, "prepare",
                   "per-VM prediction models trained");
}

void PrepareController::on_sample(double now) {
  // 1. Feed the newest samples into the predictors' Markov contexts and
  //    the workload-change detectors.
  for (const auto& vm : vm_names()) {
    const auto samples = ctx_.store->last_samples(vm, 1);
    if (samples.empty()) continue;
    {
      obs::ScopedTimer timer(stage_cause_inference_);
      inference_.observe(vm, now, samples.back());
    }
    if (trained_) {
      auto it = predictors_.find(vm);
      if (it != predictors_.end() && it->second.trained())
        it->second.observe(to_row(samples.back()));
    }
  }
  if (!trained_) return;

  // Episode bookkeeping: SLO edge detection (lead times / misses) and
  // stale-episode expiry, before this round's alerts open new episodes
  // — a confirmation in the same round as the violation onset has zero
  // lead and must not count as a prediction.
  if (ctx_.tracer != nullptr) {
    ctx_.tracer->observe_slo(now, ctx_.slo->currently_violated());
    ctx_.tracer->tick(now);
  }

  // Calibration round: resolve the pending horizon predictions whose
  // target round is this one against the realized SLO state (the same
  // outcome definition the Labeler uses for training labels), then open
  // this round's slot for the probabilities recorded below.
  if (ctx_.introspect != nullptr)
    ctx_.introspect->begin_round(now, ctx_.slo->currently_violated());

  // 2. Per-VM prediction and false-alarm filtering. The models are
  //    independent per VM (paper Section III) and predict() only reads
  //    predictor state, so the Markov look-ahead + TAN classification
  //    fan out across the worker pool; the only shared state they touch
  //    is the thread-safe obs:: instruments. The fan-out stage draws no
  //    randomness — a future stochastic stage must fork one Rng stream
  //    per VM (Rng::fork) before fanning out, never share an engine.
  //    Alerts, filter pushes, and log records are then applied serially
  //    below in deterministic (map) VM order, so a parallel run is
  //    bit-identical to a sequential one.
  auto& active = active_;
  auto& results = results_;
  active.clear();
  active.reserve(predictors_.size());
  for (const auto& [vm, predictor] : predictors_)
    if (predictor.ready() && predictor.discriminative())
      active.emplace_back(&vm, &predictor);
  // Reused across rounds; predict_into() overwrites every slot it is
  // handed, so stale entries never leak into this round.
  results.resize(active.size());
  // The calibration-stride decision is made here, on the driver, so the
  // worker-side predict never reads the driver-confined introspector;
  // unsampled rounds keep the bare (single final distribution)
  // prediction cost.
  const bool horizon_due =
      ctx_.introspect != nullptr && ctx_.introspect->calibration_due();
  // The fan-out body: implicitly PREPARE_HOT (the analyzer roots its
  // no-allocation proof at every parallel_for worker lambda) and the
  // root of the confinement rule — nothing here may reach the
  // driver-confined tracer/introspector/EventLog/Application.
  const auto predict_one = [&](std::size_t i) {
    active[i].second->predict_into(lookahead_steps_, horizon_due,
                                   &results[i]);
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(active.size(), predict_one);
  } else {
    for (std::size_t i = 0; i < active.size(); ++i) predict_one(i);
  }

  std::map<std::string, Classification> confirmed;
  std::set<std::string> unhealthy;
  for (std::size_t i = 0; i < active.size(); ++i) {
    const std::string& vm = *active[i].first;
    const auto& result = results[i];
    // Fold this VM's predicted probability path into the calibration
    // tracker — serial section, map (VM) order, so the fold sequence is
    // independent of the fan-out's thread count.
    if (ctx_.introspect != nullptr && !result.horizon_probs.empty())
      ctx_.introspect->record_horizon_probs(result.horizon_probs);
    const bool raw = result.classification.abnormal &&
                     top_impact(result.classification) >=
                         config_.alert_min_top_impact;
    if (raw) {
      ++raw_alerts_;
      obs::inc(raw_alerts_counter_);
      ctx_.log->record(now, EventKind::kAlert, vm, "predicted anomaly");
      if (ctx_.tracer != nullptr) ctx_.tracer->raw_alert(vm, now);
    }
    bool vm_confirmed;
    {
      obs::ScopedTimer timer(stage_alarm_filter_);
      vm_confirmed = filters_.at(vm).push(raw);
    }
    if (vm_confirmed) {
      ++confirmed_alerts_;
      obs::inc(confirmed_alerts_counter_);
      confirmed.emplace(vm, result.classification);
      unhealthy.insert(vm);
      PREPARE_INFO("prepare") << "confirmed predicted anomaly on " << vm
                              << " at t=" << now;
      ctx_.log->record(now, EventKind::kAlertConfirmed, vm,
                       "k-of-W confirmed");
      if (ctx_.tracer != nullptr) ctx_.tracer->confirmed(vm, now);
    }
    // Feed the flight recorder after the filter verdict so the frame
    // carries raw + confirmed. The tracer's raw_alert above already
    // opened any new episode, so an opening tick lands in the capture,
    // not just the ring. Serial section, map (VM) order: bundles are
    // byte-identical across --threads.
    if (ctx_.recorder != nullptr && result.evidence.valid) {
      const auto slot = recorder_slots_.find(vm);
      if (slot != recorder_slots_.end()) {
        obs::EvidenceFrame frame;
        frame.t = now;
        frame.abnormal = result.classification.abnormal;
        frame.raw_alert = raw;
        frame.confirmed = vm_confirmed;
        frame.score = result.classification.score;
        frame.prior_log_odds = result.evidence.prior_log_odds;
        frame.decomposable = result.evidence.decomposable;
        frame.raw = result.evidence.raw.data();
        frame.observed_row = result.evidence.observed_row.data();
        frame.mode_row = result.evidence.mode_row.data();
        frame.impacts = result.classification.impacts.data();
        frame.dists = result.evidence.dists.data();
        frame.horizon_probs = result.horizon_probs.empty()
                                  ? nullptr
                                  : result.horizon_probs.data();
        frame.horizon_len = result.horizon_probs.size();
        ctx_.recorder->record_tick(slot->second, frame);
      }
    }
  }

  // Model-state probes on the introspector's round cadence: sweep every
  // trained predictor's transition rows and CPTs in map (VM) order —
  // serial, driver thread, a handful of rounds apart so the sweep cost
  // stays inside the overhead bar.
  if (ctx_.introspect != nullptr && ctx_.introspect->probe_due()) {
    ctx_.introspect->begin_probe(now);
    for (const auto& [vm, predictor] : predictors_)
      if (predictor.trained()) predictor.report_model_state();
    ctx_.introspect->end_probe();
  }

  // 3. Reactive fallback: the SLO is already violated — diagnose from
  //    the current samples too, in case prediction missed (or confirmed
  //    only a bystander VM). The diagnosis covers every VM classifying
  //    abnormal with real attribution evidence; if none qualifies, the
  //    single most suspicious VM is acted on (the paper always
  //    intervenes once a violation is detected).
  std::map<std::string, Classification> reactive;
  if (ctx_.slo->currently_violated()) {
    ++reactive_fallbacks_;
    obs::inc(reactive_fallbacks_counter_);
    PREPARE_INFO("prepare") << "SLO violated at t=" << now
                            << ": entering reactive fallback diagnosis";
    Classification best;
    std::string best_vm;
    for (auto& [vm, predictor] : predictors_) {
      if (!predictor.trained()) continue;
      const auto cls = predictor.classify_current();
      if (cls.abnormal && top_impact(cls) >= config_.alert_min_top_impact) {
        reactive.emplace(vm, cls);
        unhealthy.insert(vm);
      }
      if (actuator_.validation_open(vm)) continue;
      if (best_vm.empty() || cls.score > best.score) {
        best = cls;
        best_vm = vm;
      }
    }
    if (reactive.empty() && !best_vm.empty()) {
      reactive.emplace(best_vm, best);
      unhealthy.insert(best_vm);
    }
    if (ctx_.tracer != nullptr)
      for (const auto& [vm, cls] : reactive)
        ctx_.tracer->reactive_alert(vm, now);
  }

  // A violated SLO also keeps the acted VMs "unhealthy" for validation.
  if (ctx_.slo->currently_violated())
    for (auto& [vm, predictor] : predictors_)
      if (predictor.trained() && predictor.classify_current().abnormal)
        unhealthy.insert(vm);

  // 4. Validation of earlier preventions.
  {
    obs::ScopedTimer timer(stage_prevention_);
    actuator_.on_sample(now, unhealthy);
  }

  // 5. Cause inference + actuation over the union of confirmed
  //    predictions and reactive diagnoses.
  std::map<std::string, Classification> alerting = confirmed;
  alerting.insert(reactive.begin(), reactive.end());
  if (alerting.empty()) return;
  Diagnosis diagnosis;
  {
    obs::ScopedTimer timer(stage_cause_inference_);
    diagnosis = inference_.diagnose(alerting);
    diagnosis.workload_change = inference_.workload_change_suspected(now);
  }
  if (diagnosis.workload_change) {
    PREPARE_INFO("prepare") << "change points on all components at t=" << now
                            << ": workload change suspected";
    ctx_.log->record(now, EventKind::kInfo, "prepare",
                     "change points on all components: workload change "
                     "suspected");
  }
  if (ctx_.tracer != nullptr) {
    if (diagnosis.workload_change) {
      // Not a VM fault: the episodes are dropped from the trace. The
      // actuation below still runs unchanged — suppression is an
      // observability decision, not a behavior change.
      for (const auto& faulty : diagnosis.faulty)
        ctx_.tracer->workload_change_suppressed(faulty.vm, now);
    } else {
      for (const auto& faulty : diagnosis.faulty) {
        ctx_.tracer->cause_inferred(faulty.vm, now,
                                    top_metric_attrs(faulty));
        // Full attribution ranking into the open capture (cold path:
        // at most one diagnosis per episode is kept).
        if (ctx_.recorder != nullptr) {
          std::vector<std::size_t> ranked(faulty.ranked.size());
          for (std::size_t r = 0; r < ranked.size(); ++r)
            ranked[r] = static_cast<std::size_t>(faulty.ranked[r]);
          ctx_.recorder->record_diagnosis(faulty.vm, now, ranked.data(),
                                          faulty.impacts.data(),
                                          ranked.size());
        }
      }
    }
  }
  {
    obs::ScopedTimer timer(stage_prevention_);
    for (const auto& faulty : diagnosis.faulty) actuator_.actuate(faulty, now);
  }
}

// ---------------------------------------------------------------- reactive

ReactiveController::ReactiveController(ControllerContext ctx,
                                       PrepareConfig config)
    : AnomalyManager(ctx),
      config_(config),
      inference_(vm_names(), config.inference),
      actuator_(ctx.hypervisor, ctx.cluster, ctx.store, ctx.log,
                config.prevention, ctx.metrics, ctx.tracer),
      profiler_(ctx.metrics) {
  const auto names = attribute_feature_names();
  for (const auto& vm : vm_names()) {
    auto [it, inserted] =
        predictors_.emplace(vm, AnomalyPredictor(names, config_.predictor));
    if (inserted && profiler_.enabled()) it->second.set_profiler(&profiler_);
  }
  stage_cause_inference_ = profiler_.stage(obs::kStageCauseInference);
  stage_prevention_ = profiler_.stage(obs::kStagePrevention);
}

void ReactiveController::train(double t0, double t1) {
  std::vector<std::vector<double>> rows;
  std::vector<bool> abnormal;
  for (auto& [vm, predictor] : predictors_) {
    labeled_rows(vm, t0, t1, &rows, &abnormal);
    if (rows.empty()) continue;
    predictor.train(rows, abnormal);
  }
  trained_ = true;
}

void ReactiveController::on_sample(double now) {
  for (const auto& vm : vm_names()) {
    const auto samples = ctx_.store->last_samples(vm, 1);
    if (samples.empty()) continue;
    {
      obs::ScopedTimer timer(stage_cause_inference_);
      inference_.observe(vm, now, samples.back());
    }
    if (trained_) {
      auto it = predictors_.find(vm);
      if (it != predictors_.end() && it->second.trained())
        it->second.observe(
            std::vector<double>(samples.back().begin(),
                                samples.back().end()));
    }
  }
  if (!trained_) return;

  if (ctx_.tracer != nullptr) {
    ctx_.tracer->observe_slo(now, ctx_.slo->currently_violated());
    ctx_.tracer->tick(now);
  }

  // Diagnose every abnormal-classifying VM with attribution evidence;
  // fall back to the single most suspicious VM (see PrepareController's
  // reactive path for the rationale).
  std::map<std::string, Classification> alerting;
  std::set<std::string> unhealthy;
  if (ctx_.slo->currently_violated()) {
    Classification best;
    std::string best_vm;
    for (auto& [vm, predictor] : predictors_) {
      if (!predictor.trained()) continue;
      const auto cls = predictor.classify_current();
      // Any VM that still classifies abnormal keeps its open validation
      // "unhealthy" — otherwise a drifting pick would bogusly mark
      // earlier preventions as effective mid-violation.
      if (cls.abnormal) unhealthy.insert(vm);
      if (cls.abnormal && top_impact(cls) >= config_.alert_min_top_impact) {
        alerting.emplace(vm, cls);
      } else if (!actuator_.validation_open(vm) &&
                 (best_vm.empty() || cls.score > best.score)) {
        best = cls;
        best_vm = vm;
      }
    }
    if (alerting.empty() && !best_vm.empty()) alerting.emplace(best_vm, best);
    for (const auto& [vm, cls] : alerting) unhealthy.insert(vm);
    if (ctx_.tracer != nullptr)
      for (const auto& [vm, cls] : alerting)
        ctx_.tracer->reactive_alert(vm, now);
  }

  {
    obs::ScopedTimer timer(stage_prevention_);
    actuator_.on_sample(now, unhealthy);
  }
  if (alerting.empty()) return;
  Diagnosis diagnosis;
  {
    obs::ScopedTimer timer(stage_cause_inference_);
    diagnosis = inference_.diagnose(alerting);
  }
  if (ctx_.tracer != nullptr)
    for (const auto& faulty : diagnosis.faulty)
      ctx_.tracer->cause_inferred(faulty.vm, now, top_metric_attrs(faulty));
  {
    obs::ScopedTimer timer(stage_prevention_);
    for (const auto& faulty : diagnosis.faulty) actuator_.actuate(faulty, now);
  }
}

}  // namespace prepare
