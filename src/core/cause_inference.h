// Online anomaly cause inference (paper Section II-C).
//
// Answers, once an alarm is confirmed: (1) which VMs are faulty — the
// ones whose per-VM prediction models raise the alert — and (2) which
// system metrics on those VMs are most related — the TAN attribution
// ranking. Also distinguishes a workload change from an internal fault:
// change points appearing on (nearly) every component at about the same
// time indicate an external workload change [13].
#pragma once

#include <map>
#include <string>
#include <vector>

#include "models/classifier.h"
#include "monitor/attributes.h"
#include "timeseries/changepoint.h"

namespace prepare {

struct Diagnosis {
  struct FaultyVm {
    std::string vm;
    double score = 0.0;               ///< classifier log-odds
    std::vector<Attribute> ranked;    ///< metrics, most relevant first
    std::vector<double> impacts;      ///< L_i per ranked metric (parallel)
  };
  std::vector<FaultyVm> faulty;       ///< sorted by score, descending
  bool workload_change = false;
};

struct CauseInferenceConfig {
  /// How many top-ranked metrics to keep per faulty VM. Wide enough that
  /// a memory root cause is not crowded out of the list by the several
  /// CPU-flavoured symptom metrics (cpu_util, load1, load5, run_queue).
  std::size_t top_attributes = 6;
  /// Fraction of components that must show a recent change point to
  /// call the anomaly a workload change (paper: "all the application
  /// components"; a tolerance makes this robust to one noisy monitor).
  double workload_change_fraction = 1.0;
  /// A change point is "recent" within this many seconds.
  double recent_window_s = 60.0;
  CusumConfig cusum;
};

class CauseInference {
 public:
  using Config = CauseInferenceConfig;

  explicit CauseInference(std::vector<std::string> vm_names,
                          Config config = Config());

  /// Feeds one monitoring sample (workload-sensitive attribute streams
  /// drive the per-VM change-point detectors).
  void observe(const std::string& vm_name, double now,
               const AttributeVector& values);

  /// Builds the diagnosis from the per-VM classification results of the
  /// models that raised (confirmed) alerts.
  Diagnosis diagnose(
      const std::map<std::string, Classification>& alerting) const;

  /// Whether a workload change is suspected at `now`.
  bool workload_change_suspected(double now) const;

  const Config& config() const { return config_; }

 private:
  Config config_;
  std::vector<std::string> vm_names_;
  /// Per-VM change detector over the workload-sensitive attribute
  /// (network input reflects offered load on every component).
  std::map<std::string, CusumDetector> detectors_;
  std::map<std::string, double> last_change_time_;
};

}  // namespace prepare
