#include "core/alarm_filter.h"

#include "common/check.h"

namespace prepare {

AlarmFilter::AlarmFilter(std::size_t k, std::size_t w)
    : k_(k), window_(w) {
  PREPARE_CHECK(k >= 1);
  PREPARE_CHECK_MSG(k <= w, "k must not exceed the window size W");
}

bool AlarmFilter::push(bool alert) {
  window_.push(alert);
  confirmed_ =
      window_.count_if([](bool a) { return a; }) >= k_;
  return confirmed_;
}

void AlarmFilter::reset() {
  window_.clear();
  confirmed_ = false;
}

}  // namespace prepare
