#include "core/alarm_filter.h"

#include "common/check.h"

namespace prepare {

AlarmFilter::AlarmFilter(std::size_t k, std::size_t w)
    : k_(k), window_(w) {
  PREPARE_CHECK_GE(k, std::size_t{1}) << "need at least one alert to confirm";
  PREPARE_CHECK_LE(k, w) << "k must not exceed the window size W";
}

bool AlarmFilter::push(bool alert) {
  window_.push(alert);
  // Window-index invariants: the window never grows past W, and the
  // alert count it reports can never exceed the entries it holds.
  PREPARE_DCHECK_LE(window_.size(), window_.capacity())
      << "sliding window overran its capacity";
  const std::size_t alerts = window_.count_if([](bool a) { return a; });
  PREPARE_DCHECK_LE(alerts, window_.size()) << "alert count exceeds window";
  confirmed_ = alerts >= k_;
  return confirmed_;
}

void AlarmFilter::reset() {
  window_.clear();
  confirmed_ = false;
}

}  // namespace prepare
