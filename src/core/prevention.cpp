#include "core/prevention.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/logging.h"

namespace prepare {

PreventionActuator::PreventionActuator(Hypervisor* hypervisor,
                                       Cluster* cluster,
                                       const MetricStore* store,
                                       EventLog* log,
                                       PreventionConfig config,
                                       obs::MetricsRegistry* metrics,
                                       obs::SpanTracer* tracer,
                                       obs::FlightRecorder* recorder)
    : hypervisor_(hypervisor),
      cluster_(cluster),
      store_(store),
      log_(log),
      config_(config),
      tracer_(tracer),
      recorder_(recorder),
      actions_counter_(obs::counter(metrics, "prevention.actions_total")),
      validations_failed_counter_(
          obs::counter(metrics, "prevention.validations_failed_total")),
      reclaims_counter_(obs::counter(metrics, "prevention.reclaims_total")),
      migrations_skipped_counter_(
          obs::counter(metrics, "prevention.migrations_skipped_total")) {
  PREPARE_CHECK(hypervisor != nullptr);
  PREPARE_CHECK(cluster != nullptr);
  PREPARE_CHECK(store != nullptr);
  PREPARE_CHECK(log != nullptr);
  for (const auto& vm : cluster_->vms())
    baseline_.emplace(vm->name(),
                      std::make_pair(vm->cpu_alloc(), vm->mem_alloc()));
}

bool PreventionActuator::has_baseline(const std::string& vm_name) const {
  return baseline_.count(vm_name) != 0;
}

PreventionActuator::MetricKind PreventionActuator::kind_of(Attribute a) {
  switch (a) {
    case Attribute::kCpuUtil:
    case Attribute::kCpuResidual:
    case Attribute::kLoad1:
    case Attribute::kLoad5:
    case Attribute::kRunQueue:
    case Attribute::kCtxSwitches:
      return MetricKind::kCpu;
    case Attribute::kFreeMem:
    case Attribute::kMemUtil:
    case Attribute::kPageFaults:
      return MetricKind::kMemory;
    default:
      return MetricKind::kOther;
  }
}

double PreventionActuator::lookback_mean(const std::string& vm, Attribute a,
                                         double now) const {
  const auto mean =
      store_->series(vm, a).mean_between(now - config_.lookback_s, now);
  return mean.value_or(0.0);
}

bool PreventionActuator::try_scale(Vm* vm, MetricKind kind, double /*now*/) {
  Host* host = cluster_->host_of(*vm);
  PREPARE_CHECK(host != nullptr);
  if (kind == MetricKind::kCpu) {
    const double desired = vm->cpu_alloc() * config_.cpu_scale_factor;
    const double target =
        std::min(desired, vm->cpu_alloc() + host->cpu_headroom());
    if (target - vm->cpu_alloc() < config_.min_cpu_step) return false;
    return hypervisor_->scale_cpu(vm, target);
  }
  if (kind == MetricKind::kMemory) {
    const double desired = vm->mem_alloc() * config_.mem_scale_factor;
    const double target =
        std::min(desired, vm->mem_alloc() + host->mem_headroom());
    if (target - vm->mem_alloc() < config_.min_mem_step_mb) return false;
    return hypervisor_->scale_memory(vm, target);
  }
  return false;
}

bool PreventionActuator::try_migrate(Vm* vm, MetricKind kind, double now) {
  (void)kind;
  const auto last = last_migration_time_.find(vm->name());
  if (last != last_migration_time_.end() &&
      now - last->second < config_.migration_cooldown_s)
    return false;
  // Land with generous headroom on BOTH resources: the paper relocates
  // the faulty VM "to a host with desired resources" (matching the VM's
  // demand pattern, PAC [15]) — a second migration is far more expensive
  // than landing big, and the diagnosis may have ranked a symptom metric
  // (saturated CPU) above the root resource (leaking memory).
  const double cpu_after = vm->cpu_alloc() * config_.migration_cpu_factor;
  const double mem_after = vm->mem_alloc() * config_.migration_mem_factor;
  Host* current = cluster_->host_of(*vm);
  Host* target =
      cluster_->find_best_target_host(cpu_after, mem_after, current);
  if (target == nullptr) {
    log_->record(now, EventKind::kInfo, vm->name(),
                 "migration skipped: no host with desired resources");
    obs::inc(migrations_skipped_counter_);
    PREPARE_WARN("prevention")
        << "migration of " << vm->name() << " at t=" << now
        << " skipped: no host fits cpu=" << cpu_after
        << " mem=" << mem_after;
    return false;
  }
  if (!hypervisor_->migrate(vm, target, cpu_after, mem_after)) return false;
  last_migration_time_[vm->name()] = now;
  return true;
}

bool PreventionActuator::probe_can_scale(const Vm& vm, MetricKind kind) const {
  const Host* host = cluster_->host_of(vm);
  if (host == nullptr) return false;
  if (kind == MetricKind::kCpu) {
    const double desired = vm.cpu_alloc() * config_.cpu_scale_factor;
    const double target =
        std::min(desired, vm.cpu_alloc() + host->cpu_headroom());
    const double delta = target - vm.cpu_alloc();
    if (delta < config_.min_cpu_step) return false;
    return host->can_grow(vm, delta, 0.0);
  }
  if (kind == MetricKind::kMemory) {
    const double desired = vm.mem_alloc() * config_.mem_scale_factor;
    const double target =
        std::min(desired, vm.mem_alloc() + host->mem_headroom());
    const double delta = target - vm.mem_alloc();
    if (delta < config_.min_mem_step_mb) return false;
    return host->can_grow(vm, 0.0, delta);
  }
  return false;
}

bool PreventionActuator::probe_can_migrate(const Vm& vm, double now) const {
  if (vm.migrating()) return false;
  const auto last = last_migration_time_.find(vm.name());
  if (last != last_migration_time_.end() &&
      now - last->second < config_.migration_cooldown_s)
    return false;
  const double cpu_after = vm.cpu_alloc() * config_.migration_cpu_factor;
  const double mem_after = vm.mem_alloc() * config_.migration_mem_factor;
  const Host* current = cluster_->host_of(vm);
  return cluster_->find_best_target_host(cpu_after, mem_after, current) !=
         nullptr;
}

void PreventionActuator::record_attempt(const Vm& vm, Attribute a,
                                        MetricKind kind, double now,
                                        int phase, bool scale_known,
                                        bool scale_ok, bool migrate_known,
                                        bool migrate_ok, int applied) {
  if (recorder_ == nullptr) return;
  obs::PreventionEvidence ev;
  ev.t = now;
  ev.phase = phase;
  ev.attribute = static_cast<std::size_t>(a);
  ev.metric_kind = static_cast<int>(kind);
  ev.scale_possible = scale_known ? scale_ok : probe_can_scale(vm, kind);
  ev.migrate_possible =
      migrate_known ? migrate_ok : probe_can_migrate(vm, now);
  ev.applied = applied;
  recorder_->record_prevention(vm.name(), ev);
}

bool PreventionActuator::apply_action(Vm* vm, Attribute a, double now,
                                      int phase) {
  const MetricKind kind = kind_of(a);
  // Track which feasibility checks the mode actually consulted and how
  // they came out; the recorder evidence reuses the genuine outcomes so
  // offline replay re-derives the exact same decision.
  int applied = 0;
  bool scale_ok = false, migrate_ok = false;
  bool scale_known = false, migrate_known = false;
  switch (config_.mode) {
    case PreventionMode::kScalingOnly:
      if (kind != MetricKind::kOther) {
        scale_ok = try_scale(vm, kind, now);
        scale_known = true;
        if (scale_ok) applied = 1;
      }
      break;
    case PreventionMode::kMigrationOnly:
      migrate_ok = try_migrate(vm, kind, now);
      migrate_known = true;
      if (migrate_ok) {
        applied = 2;
      } else if (kind != MetricKind::kOther) {
        // Migration unavailable (cooldown, no target host): scaling on
        // the current host is the only remaining remedy.
        scale_ok = try_scale(vm, kind, now);
        scale_known = true;
        if (scale_ok) applied = 1;
      }
      break;
    case PreventionMode::kScalingThenMigration:
      if (kind != MetricKind::kOther) {
        scale_ok = try_scale(vm, kind, now);
        scale_known = true;
      }
      if (scale_ok) {
        applied = 1;
      } else {
        migrate_ok = try_migrate(vm, kind, now);
        migrate_known = true;
        if (migrate_ok) applied = 2;
      }
      break;
  }
  record_attempt(*vm, a, kind, now, phase, scale_known, scale_ok,
                 migrate_known, migrate_ok, applied);
  return applied != 0;
}

bool PreventionActuator::actuate(const Diagnosis::FaultyVm& faulty,
                                 double now) {
  if (validation_open(faulty.vm)) return false;
  Vm* vm = cluster_->find_vm(faulty.vm);
  PREPARE_CHECK_MSG(vm != nullptr, "unknown VM: " + faulty.vm);
  if (vm->migrating()) return false;

  for (std::size_t i = 0; i < faulty.ranked.size(); ++i) {
    const Attribute a = faulty.ranked[i];
    if (!apply_action(vm, a, now)) continue;
    ++actions_fired_;
    obs::inc(actions_counter_);
    std::ostringstream detail;
    detail << "acted on " << attribute_name(a) << " (rank " << i << ")";
    log_->record(now, EventKind::kPrevention, faulty.vm, detail.str());
    if (tracer_ != nullptr)
      tracer_->prevention_issued(faulty.vm, now, detail.str());
    PendingValidation pv;
    pv.action_time = now;
    pv.acted = a;
    pv.ranked = faulty.ranked;
    pv.next_index = i + 1;
    pv.lookback_mean = lookback_mean(faulty.vm, a, now);
    // Also act on the next ranked metric of the *other* resource kind:
    // a saturating CPU is often the symptom of a memory root cause (or
    // vice versa), and a second scaling is far cheaper than a
    // failed-validation round trip. Applies in migration mode too — the
    // companion is always a scaling, which is harmless alongside a
    // migration (and essential when the migration had to fall back to
    // local scaling).
    if (config_.companion_scaling) {
      const MetricKind primary = kind_of(a);
      for (std::size_t j = i + 1; j < faulty.ranked.size(); ++j) {
        const MetricKind other = kind_of(faulty.ranked[j]);
        if (other == MetricKind::kOther || other == primary) continue;
        const bool companion_ok = try_scale(vm, other, now);
        record_attempt(*vm, faulty.ranked[j], other, now, /*phase=*/1,
                       /*scale_known=*/true, companion_ok,
                       /*migrate_known=*/false, false,
                       companion_ok ? 1 : 0);
        if (companion_ok) {
          ++actions_fired_;
          obs::inc(actions_counter_);
          log_->record(now, EventKind::kPrevention, faulty.vm,
                       "companion action on " +
                           attribute_name(faulty.ranked[j]));
          if (tracer_ != nullptr)
            tracer_->prevention_issued(
                faulty.vm, now,
                "companion action on " + attribute_name(faulty.ranked[j]));
          pv.next_index = j + 1;
        }
        break;
      }
    }
    pending_[faulty.vm] = std::move(pv);
    last_action_time_[faulty.vm] = now;
    return true;
  }
  log_->record(now, EventKind::kInfo, faulty.vm,
               "no applicable prevention action");
  PREPARE_WARN("prevention")
      << "no applicable action for " << faulty.vm << " at t=" << now
      << " (every ranked metric exhausted)";
  if (tracer_ != nullptr)
    tracer_->escalated(faulty.vm, now, "no applicable prevention action");
  return false;
}

void PreventionActuator::on_sample(double now,
                                   const std::set<std::string>& unhealthy) {
  maybe_reclaim(now, unhealthy);
  for (auto it = pending_.begin(); it != pending_.end();) {
    const std::string& vm_name = it->first;
    PendingValidation& pv = it->second;
    if (now < pv.action_time + config_.validation_delay_s) {
      ++it;
      continue;
    }
    if (!config_.validation_enabled) {
      // Ablation mode: the record simply expires, successful or not.
      it = pending_.erase(it);
      continue;
    }
    if (unhealthy.count(vm_name) == 0) {
      log_->record(now, EventKind::kValidation, vm_name,
                   "prevention effective: alerts cleared");
      if (tracer_ != nullptr) tracer_->validated(vm_name, now);
      it = pending_.erase(it);
      continue;
    }
    // Still unhealthy: did the acted metric respond at all?
    const auto ahead = store_->series(vm_name, pv.acted)
                           .mean_between(pv.action_time, now);
    const double before = pv.lookback_mean;
    const double after = ahead.value_or(before);
    const double denom = std::max(std::abs(before), 1e-6);
    const bool responded =
        std::abs(after - before) / denom >= config_.min_relative_change;
    ++validations_failed_;
    obs::inc(validations_failed_counter_);
    PREPARE_INFO("prevention")
        << vm_name << " still unhealthy at t=" << now << " after acting on "
        << attribute_name(pv.acted) << "; trying next ranked metric";
    std::ostringstream detail;
    detail << "still unhealthy after acting on "
           << attribute_name(pv.acted)
           << (responded ? " (metric responded)" : " (no metric response)");
    log_->record(now, EventKind::kValidation, vm_name, detail.str());

    // Try the next ranked metric, skipping non-actionable ones.
    Vm* vm = cluster_->find_vm(vm_name);
    bool reacted = false;
    while (pv.next_index < pv.ranked.size()) {
      const Attribute next = pv.ranked[pv.next_index++];
      if (vm != nullptr && !vm->migrating() &&
          apply_action(vm, next, now, /*phase=*/2)) {
        ++actions_fired_;
        obs::inc(actions_counter_);
        log_->record(now, EventKind::kPrevention, vm_name,
                     "fallback action on " + attribute_name(next));
        if (tracer_ != nullptr)
          tracer_->prevention_issued(
              vm_name, now, "fallback action on " + attribute_name(next));
        pv.action_time = now;
        pv.acted = next;
        pv.lookback_mean = lookback_mean(vm_name, next, now);
        last_action_time_[vm_name] = now;
        reacted = true;
        break;
      }
    }
    if (reacted) {
      ++it;
    } else {
      // Ranking exhausted: close the record so a later confirmed alert
      // can retry from the top (e.g. scale further as a leak keeps
      // growing).
      if (tracer_ != nullptr)
        tracer_->escalated(vm_name, now, "ranking exhausted");
      it = pending_.erase(it);
    }
  }
}

bool PreventionActuator::validation_open(const std::string& vm_name) const {
  return pending_.count(vm_name) != 0;
}

void PreventionActuator::maybe_reclaim(double now,
                                       const std::set<std::string>& unhealthy) {
  if (!config_.reclaim_enabled) return;
  for (const auto& [vm_name, base] : baseline_) {
    if (unhealthy.count(vm_name) != 0) continue;
    if (validation_open(vm_name)) continue;
    const auto last = last_action_time_.find(vm_name);
    if (last != last_action_time_.end() &&
        now - last->second < config_.reclaim_idle_s)
      continue;
    Vm* vm = cluster_->find_vm(vm_name);
    if (vm == nullptr || vm->migrating()) continue;
    if (store_->sample_count(vm_name) == 0) continue;

    const double window_start = now - config_.reclaim_idle_s;
    // CPU: shrink toward baseline when sustained utilization is low.
    if (vm->cpu_alloc() > base.first * 1.01) {
      const auto util = store_->series(vm_name, Attribute::kCpuUtil)
                            .mean_between(window_start, now);
      if (util && *util < config_.reclaim_cpu_util_pct) {
        const double target =
            std::max(base.first, vm->cpu_alloc() * config_.reclaim_factor);
        if (hypervisor_->scale_cpu(vm, target)) {
          log_->record(now, EventKind::kInfo, vm_name,
                       "elastic reclaim: cpu scaled down");
          obs::inc(reclaims_counter_);
          last_action_time_[vm_name] = now;
        }
      }
    }
    // Memory: shrink toward baseline when sustained usage is low.
    if (vm->mem_alloc() > base.second * 1.01) {
      const auto util = store_->series(vm_name, Attribute::kMemUtil)
                            .mean_between(window_start, now);
      if (util && *util < config_.reclaim_mem_util_pct) {
        const double target =
            std::max(base.second, vm->mem_alloc() * config_.reclaim_factor);
        if (hypervisor_->scale_memory(vm, target)) {
          log_->record(now, EventKind::kInfo, vm_name,
                       "elastic reclaim: memory scaled down");
          obs::inc(reclaims_counter_);
          last_action_time_[vm_name] = now;
        }
      }
    }
  }
}

}  // namespace prepare
