#include "core/cause_inference.h"

#include <algorithm>

#include "common/check.h"

namespace prepare {

CauseInference::CauseInference(std::vector<std::string> vm_names,
                               Config config)
    : config_(config), vm_names_(std::move(vm_names)) {
  PREPARE_CHECK(!vm_names_.empty());
  PREPARE_CHECK(config_.workload_change_fraction > 0.0 &&
                config_.workload_change_fraction <= 1.0);
  for (const auto& name : vm_names_) {
    detectors_.emplace(name, CusumDetector(config_.cusum));
    last_change_time_.emplace(name, -1.0);
  }
}

void CauseInference::observe(const std::string& vm_name, double now,
                             const AttributeVector& values) {
  auto it = detectors_.find(vm_name);
  PREPARE_CHECK_MSG(it != detectors_.end(), "unknown VM: " + vm_name);
  if (it->second.update(get(values, Attribute::kNetIn))) {
    last_change_time_[vm_name] = now;
    it->second.rearm();
  }
}

bool CauseInference::workload_change_suspected(double now) const {
  std::size_t recent = 0;
  for (const auto& name : vm_names_) {
    const double t = last_change_time_.at(name);
    if (t >= 0.0 && now - t <= config_.recent_window_s) ++recent;
  }
  return static_cast<double>(recent) >=
         config_.workload_change_fraction *
             static_cast<double>(vm_names_.size());
}

Diagnosis CauseInference::diagnose(
    const std::map<std::string, Classification>& alerting) const {
  Diagnosis out;
  for (const auto& [vm, cls] : alerting) {
    Diagnosis::FaultyVm faulty;
    faulty.vm = vm;
    faulty.score = cls.score;
    const auto order = Classifier::ranked_attributes(cls);
    const std::size_t take =
        std::min(config_.top_attributes, order.size());
    for (std::size_t i = 0; i < take; ++i) {
      // Only keep attributes that actually push toward "abnormal".
      if (cls.impacts[order[i]] <= 0.0) break;
      faulty.ranked.push_back(static_cast<Attribute>(order[i]));
      faulty.impacts.push_back(cls.impacts[order[i]]);
    }
    out.faulty.push_back(std::move(faulty));
  }
  std::stable_sort(out.faulty.begin(), out.faulty.end(),
                   [](const Diagnosis::FaultyVm& a,
                      const Diagnosis::FaultyVm& b) {
                     return a.score > b.score;
                   });
  return out;
}

}  // namespace prepare
