#include "models/discretizer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace prepare {

Discretizer::Discretizer(std::size_t bins, DiscretizerKind kind,
                         double margin, bool guard_bins)
    : requested_bins_(bins),
      kind_(kind),
      margin_(margin),
      guard_bins_(guard_bins) {
  PREPARE_CHECK(bins >= 2);
  PREPARE_CHECK(margin >= 0.0);
}

void Discretizer::fit(const std::vector<double>& values) {
  PREPARE_CHECK_MSG(!values.empty(), "cannot fit discretizer on empty data");
  for (std::size_t i = 0; i < values.size(); ++i)
    PREPARE_CHECK(std::isfinite(values[i]))
        << "non-finite training value " << values[i] << " at index " << i;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const double lo = sorted.front();
  const double hi = sorted.back();

  cuts_.clear();
  uniform_grid_ = false;
  if (kind_ == DiscretizerKind::kEqualWidth) {
    double span = hi - lo;
    double xlo = lo, xhi = hi;
    if (span <= 0.0) {
      const double pad = std::max(1.0, std::abs(lo)) * 0.01;
      xlo -= pad;
      xhi += pad;
      span = xhi - xlo;
    }
    xlo -= margin_ * span;
    xhi += margin_ * span;
    const double width = (xhi - xlo) / static_cast<double>(requested_bins_);
    for (std::size_t b = 1; b < requested_bins_; ++b)
      cuts_.push_back(xlo + width * static_cast<double>(b));
    // Guard cuts break the uniform spacing, so only the plain grid gets
    // the direct-index fast path.
    if (!guard_bins_ && width > 0.0) {
      uniform_grid_ = true;
      grid_lo_ = xlo;
      grid_inv_width_ = 1.0 / width;
    }
  } else {
    // Quantile cuts; duplicates (tied data) are merged.
    for (std::size_t b = 1; b < requested_bins_; ++b) {
      const double q = static_cast<double>(b) /
                       static_cast<double>(requested_bins_);
      const auto idx = static_cast<std::size_t>(
          q * static_cast<double>(sorted.size() - 1));
      const double cut = sorted[idx];
      if (cuts_.empty() || cut > cuts_.back()) cuts_.push_back(cut);
    }
    // Degenerate (constant) data: one artificial cut above the constant
    // so everything lands in bin 0 and outliers in bin 1.
    if (cuts_.empty())
      cuts_.push_back(lo + std::max(1.0, std::abs(lo)) * 0.01);
    // Drop a cut equal to the maximum (it would leave an empty top bin
    // reachable only by out-of-range values; keep it — outliers above
    // the training range are informative).
  }

  // Guard bins: cuts a margin beyond the observed data range, so only
  // values well outside anything seen in training land in dedicated,
  // never-trained-on bins (the margin absorbs small-sample noise).
  data_lo_ = lo;
  data_hi_ = hi;
  if (guard_bins_) {
    const double pad =
        std::max({1e-9, (hi - lo) * 2.0 * margin_, std::abs(hi) * 1e-9});
    cuts_.insert(cuts_.begin(), lo - pad);
    cuts_.push_back(hi + pad);
  }

  // Representative value per bin, derived from the actual cut geometry.
  // Interior bins are the midpoint of their two cuts. Edge bins are
  // half-open: when the data extreme lies inside the bin (the normal
  // case) the center is the midpoint of the extreme and the cut; with
  // guard bins the guard cut sits *beyond* the data extreme, so the
  // midpoint formula would invert — the guard bin instead mirrors half
  // the adjacent bin's width past its cut, keeping centers strictly
  // increasing in bin index.
  const std::size_t n_bins = cuts_.size() + 1;
  centers_.assign(n_bins, 0.0);
  for (std::size_t b = 1; b + 1 < n_bins; ++b)
    centers_[b] = 0.5 * (cuts_[b - 1] + cuts_[b]);
  const double edge_width =
      cuts_.size() >= 2 ? cuts_[1] - cuts_[0]
                        : std::max(1.0, std::abs(cuts_.front())) * 0.02;
  centers_.front() = lo <= cuts_.front()
                         ? 0.5 * (lo + cuts_.front())
                         : cuts_.front() - 0.5 * edge_width;
  const double top_width =
      cuts_.size() >= 2 ? cuts_[cuts_.size() - 1] - cuts_[cuts_.size() - 2]
                        : edge_width;
  // Strict: the top bin covers (cuts.back(), inf), so a maximum exactly
  // on the cut belongs to the bin below — the midpoint formula would
  // park the top center *on* the cut (and collapse onto the bottom
  // center when the data is constant).
  centers_.back() = hi > cuts_.back() ? 0.5 * (cuts_.back() + hi)
                                      : cuts_.back() + 0.5 * top_width;
#if PREPARE_DCHECK_IS_ON
  // Bin bounds invariant: interior cuts strictly ascending, so
  // lower_bound in discretize() maps each value to exactly one bin.
  for (std::size_t b = 1; b < cuts_.size(); ++b)
    PREPARE_DCHECK_LT(cuts_[b - 1], cuts_[b])
        << "cut points not strictly ascending at index " << b;
  // bin_center() must be strictly increasing in bin index — predicted
  // symbol distributions turn back into metric values through these, so
  // an inversion (the old guard-bin collapse) silently corrupts every
  // predicted_values readout.
  for (std::size_t b = 1; b < centers_.size(); ++b)
    PREPARE_DCHECK_LT(centers_[b - 1], centers_[b])
        << "bin centers not strictly increasing at bin " << b;
#endif
  fitted_ = true;

  // Training-data occupancy per effective bin: the drift detector's
  // baseline for the bin-occupancy shift comparison. Recorded after
  // fitted_ flips so discretize() is usable.
  fit_counts_.assign(bins(), 0.0);
  for (double v : values) fit_counts_[discretize(v)] += 1.0;
}

std::size_t Discretizer::bins() const {
  PREPARE_CHECK_MSG(fitted_, "bins() before fit()");
  return cuts_.size() + 1;
}

std::size_t Discretizer::discretize(double value) const {
  PREPARE_CHECK_MSG(fitted_, "discretizer used before fit()");
  PREPARE_CHECK(std::isfinite(value))
      << "cannot discretize non-finite value " << value;
  // Bin i covers (cuts[i-1], cuts[i]]; values above the last cut land in
  // the top bin.
  const std::size_t m = cuts_.size();
  std::size_t bin;
  if (uniform_grid_) {
    // Direct index into the uniform grid. The raw index can be off by
    // one at a cut boundary (cuts_[b] = xlo + width*b does not divide
    // back exactly), so a bounded fix-up restores the exact lower_bound
    // answer; each loop runs at most a step or two.
    const double raw = (value - grid_lo_) * grid_inv_width_;
    bin = raw <= 0.0
              ? 0
              : static_cast<std::size_t>(std::min(raw, static_cast<double>(m)));
    while (bin < m && cuts_[bin] < value) ++bin;
    while (bin > 0 && cuts_[bin - 1] >= value) --bin;
  } else {
    const auto it = std::lower_bound(cuts_.begin(), cuts_.end(), value);
    bin = static_cast<std::size_t>(it - cuts_.begin());
  }
  PREPARE_DCHECK_LT(bin, centers_.size()) << "bin index escaped the range";
  return bin;
}

std::vector<std::size_t> Discretizer::discretize(
    const std::vector<double>& xs) const {
  std::vector<std::size_t> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(discretize(x));
  return out;
}

double Discretizer::bin_center(BinIndex bin) const {
  PREPARE_CHECK(fitted_);
  PREPARE_CHECK_LT(bin.value(), centers_.size()) << "bin index out of range";
  return centers_[bin.value()];
}

std::vector<double> Discretizer::bin_centers() const {
  PREPARE_CHECK(fitted_);
  return centers_;
}

}  // namespace prepare
