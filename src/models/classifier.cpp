#include "models/classifier.h"

#include <algorithm>
#include <numeric>

namespace prepare {

std::vector<std::size_t> Classifier::ranked_attributes(
    const Classification& c) {
  std::vector<std::size_t> order(c.impacts.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return c.impacts[a] > c.impacts[b];
                   });
  return order;
}

}  // namespace prepare
