// Discrete probability distribution over an attribute's value bins.
//
// The attribute-value predictors emit one of these per attribute per
// look-ahead step; the classifiers consume them via expectation.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.h"

namespace prepare {

class Distribution {
 public:
  Distribution() = default;
  explicit Distribution(std::size_t size) : p_(size, 0.0) {}
  explicit Distribution(std::vector<double> p) : p_(std::move(p)) {}

  /// Point mass on `symbol`.
  static Distribution delta(std::size_t size, BinIndex symbol);
  /// Uniform over `size` symbols.
  static Distribution uniform(std::size_t size);

  std::size_t size() const { return p_.size(); }
  double operator[](std::size_t i) const { return p_[i]; }
  double& operator[](std::size_t i) { return p_[i]; }
  const std::vector<double>& probabilities() const { return p_; }

  /// Resets to `size` zero entries, reusing existing storage — the
  /// per-tick fast path for predictors filling a caller-owned buffer.
  void assign_zero(std::size_t size) {
    // prepare-analyze: allow(hot-alloc): capacity-steady — grows once
    p_.assign(size, 0.0);
  }

  /// Rescales to sum 1 (uniform if the sum is zero). Throws CheckFailure
  /// if any entry is negative or non-finite — a corrupted model state
  /// that silent renormalization would otherwise mask.
  void normalize();
  double sum() const;
  /// True when every entry is finite and non-negative and the total mass
  /// is 1 within `tolerance`. Empty distributions are not normalized.
  bool is_normalized(double tolerance = 1e-9) const;

  /// Most likely symbol (lowest index wins ties).
  std::size_t mode() const;
  /// Expected value of f(symbol); pass bin centers for the mean value.
  double expectation(const std::vector<double>& f) const;
  /// Entropy in nats.
  double entropy() const;

 private:
  std::vector<double> p_;
};

}  // namespace prepare
