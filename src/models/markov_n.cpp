#include "models/markov_n.h"

#include <algorithm>

#include "common/check.h"
#include "models/markov_stats.h"

namespace prepare {

NDependentMarkov::NDependentMarkov(std::size_t order, std::size_t alphabet,
                                   double alpha)
    : order_(order), alphabet_(alphabet), alpha_(alpha) {
  PREPARE_CHECK(order >= 1);
  PREPARE_CHECK(alphabet >= 2);
  PREPARE_CHECK(alpha > 0.0);
  states_ = 1;
  for (std::size_t i = 0; i < order_; ++i) {
    PREPARE_CHECK_MSG(states_ <= 1'000'000 / alphabet_,
                      "alphabet^order too large");
    states_ *= alphabet_;
  }
  counts_.assign(states_ * alphabet_, 0.0);
  probs_.assign(states_ * alphabet_, 0.0);
  scratch_v_.assign(states_, 0.0);
  scratch_next_.assign(states_, 0.0);
  for (std::size_t ctx = 0; ctx < states_; ++ctx) rebuild_row(ctx);
}

void NDependentMarkov::rebuild_row(std::size_t ctx_index) {
  // Same expression transition() historically evaluated per call, so
  // cached rows are bit-identical to the on-the-fly probabilities.
  const std::size_t base = ctx_index * alphabet_;
  double row_total = 0.0;
  for (std::size_t j = 0; j < alphabet_; ++j) row_total += counts_[base + j];
  const double denom = row_total + alpha_ * static_cast<double>(alphabet_);
  for (std::size_t j = 0; j < alphabet_; ++j)
    probs_[base + j] = (counts_[base + j] + alpha_) / denom;
}

std::size_t NDependentMarkov::context_index(
    const std::deque<std::size_t>& ctx) const {
  PREPARE_DCHECK(ctx.size() == order_);
  std::size_t index = 0;
  for (std::size_t s : ctx) index = index * alphabet_ + s;
  return index;
}

std::size_t NDependentMarkov::shifted_index(std::size_t ctx_index,
                                            std::size_t next) const {
  // Drop the oldest symbol (most significant digit), append `next`.
  return (ctx_index % (states_ / alphabet_)) * alphabet_ + next;
}

void NDependentMarkov::train(const std::vector<std::size_t>& sequence) {
  std::fill(counts_.begin(), counts_.end(), 0.0);
  for (std::size_t ctx = 0; ctx < states_; ++ctx) rebuild_row(ctx);
  context_.clear();
  for (std::size_t s : sequence) observe(BinIndex{s}, /*learn=*/true);
}

void NDependentMarkov::observe(BinIndex symbol, bool learn) {
  const std::size_t s = symbol.value();
  PREPARE_CHECK(s < alphabet_);
  if (context_.size() == order_) {
    if (learn) {
      const std::size_t ctx = context_index(context_);
      counts_[ctx * alphabet_ + s] += 1.0;
      rebuild_row(ctx);
    }
    context_.pop_front();
  }
  context_.push_back(s);
}

Probability NDependentMarkov::transition(
    const std::vector<std::size_t>& context, BinIndex next) const {
  PREPARE_CHECK(context.size() == order_);
  PREPARE_CHECK(next.value() < alphabet_);
  std::size_t index = 0;
  for (std::size_t s : context) {
    PREPARE_CHECK(s < alphabet_);
    index = index * alphabet_ + s;
  }
  return Probability{probs_[index * alphabet_ + next.value()]};
}

Distribution NDependentMarkov::predict(TickIndex steps) const {
  Distribution d;
  predict_into(steps, &d);
  return d;
}

void NDependentMarkov::predict_into(TickIndex steps,
                                    Distribution* out) const {
  PREPARE_CHECK_MSG(ready(), "predict() before enough observations");
  PREPARE_CHECK(steps.value() >= 1);
  PREPARE_CHECK(out != nullptr);
  // Constructor-sized scratch, refilled in place: no allocation per tick.
  auto& v = scratch_v_;
  auto& next = scratch_next_;
  std::fill(v.begin(), v.end(), 0.0);
  v[context_index(context_)] = 1.0;
  for (std::size_t s = 0; s < steps.value(); ++s) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t ctx = 0; ctx < states_; ++ctx) {
      const double mass = v[ctx];
      if (mass <= 0.0) continue;
      const std::size_t base = ctx * alphabet_;
      for (std::size_t j = 0; j < alphabet_; ++j)
        next[shifted_index(ctx, j)] += mass * probs_[base + j];
    }
    std::swap(v, next);
#if PREPARE_DCHECK_IS_ON
    // Smoothed transition rows sum to 1, so each step conserves mass.
    double mass = 0.0;
    for (double x : v) mass += x;
    PREPARE_DCHECK_NEAR(mass, 1.0, 1e-6)
        << "context-state mass leaked after step " << s + 1;
#endif
  }
  // Marginalize onto the most recent symbol (the low digit).
  out->assign_zero(alphabet_);
  for (std::size_t ctx = 0; ctx < states_; ++ctx)
    (*out)[ctx % alphabet_] += v[ctx];
  out->normalize();
  PREPARE_DCHECK(out->is_normalized(1e-9))
      << "predict() output not a distribution";
}

void NDependentMarkov::predict_path_into(
    TickIndex steps, std::vector<Distribution>* out) const {
  PREPARE_CHECK_MSG(ready(), "predict() before enough observations");
  PREPARE_CHECK(steps.value() >= 1);
  PREPARE_CHECK(out != nullptr);
  // prepare-analyze: allow(hot-alloc): capacity-steady — horizon fixed
  out->resize(steps.value());
  auto& v = scratch_v_;
  auto& next = scratch_next_;
  std::fill(v.begin(), v.end(), 0.0);
  v[context_index(context_)] = 1.0;
  for (std::size_t s = 0; s < steps.value(); ++s) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t ctx = 0; ctx < states_; ++ctx) {
      const double mass = v[ctx];
      if (mass <= 0.0) continue;
      const std::size_t base = ctx * alphabet_;
      for (std::size_t j = 0; j < alphabet_; ++j)
        next[shifted_index(ctx, j)] += mass * probs_[base + j];
    }
    std::swap(v, next);
    // Same marginalization predict_into() performs on its final context
    // distribution, evaluated after every step — element s is
    // bit-identical to predict_into(s + 1).
    Distribution& d = (*out)[s];
    d.assign_zero(alphabet_);
    for (std::size_t ctx = 0; ctx < states_; ++ctx)
      d[ctx % alphabet_] += v[ctx];
    d.normalize();
    PREPARE_DCHECK(d.is_normalized(1e-9))
        << "predict_path() output not a distribution at step " << s + 1;
  }
}

ValuePredictor::RowStats NDependentMarkov::row_stats() const {
  return markov_detail::row_stats_over(counts_, probs_, states_, alphabet_);
}

}  // namespace prepare
