// N-dependent Markov chain value predictor: the natural generalization
// of the paper's 2-dependent model (Fig. 2) to arbitrary context length.
//
// The combined state is the tuple of the last `order` values; each step
// maps (v1..vn) -> (v2..vn, next) with probability P(next | v1..vn).
// Order 1 reproduces the simple chain, order 2 the paper's model; higher
// orders capture longer patterns but need alphabet^order transition rows
// of training data — the diminishing-returns trade the
// `abl_markov_order` bench quantifies.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "common/analyze_annotations.h"
#include "models/value_predictor.h"

namespace prepare {

class NDependentMarkov : public ValuePredictor {
 public:
  /// `order` >= 1 context length; `alphabet` >= 2 symbol count.
  NDependentMarkov(std::size_t order, std::size_t alphabet,
                   double alpha = 0.5);

  void train(const std::vector<std::size_t>& sequence) override;
  void observe(BinIndex symbol, bool learn) override;
  Distribution predict(TickIndex steps) const override;
  PREPARE_HOT void predict_into(TickIndex steps,
                                Distribution* out) const override;
  PREPARE_HOT void predict_path_into(
      TickIndex steps, std::vector<Distribution>* out) const override;
  RowStats row_stats() const override;
  bool ready() const override { return context_.size() == order_; }
  std::size_t alphabet() const override { return alphabet_; }
  std::size_t order() const { return order_; }

  /// Smoothed P(next | context); `context` must have `order` symbols.
  Probability transition(const std::vector<std::size_t>& context,
                         BinIndex next) const;

 private:
  /// Row-major index of a context tuple.
  std::size_t context_index(const std::deque<std::size_t>& ctx) const;
  std::size_t shifted_index(std::size_t ctx_index, std::size_t next) const;
  /// Recomputes one cached smoothed row P(· | ctx) from counts_.
  void rebuild_row(std::size_t ctx_index);

  std::size_t order_;
  std::size_t alphabet_;
  double alpha_;
  std::size_t states_;              ///< alphabet^order
  std::vector<double> counts_;      ///< states_ x alphabet_
  /// Smoothed transition rows mirroring counts_ (same bound as counts_,
  /// <= 1M entries), maintained incrementally so the k-step look-ahead
  /// is pure table lookups.
  std::vector<double> probs_;       ///< states_ x alphabet_
  std::deque<std::size_t> context_;
  /// Per-predict transient context-state distributions, sized once in
  /// the constructor so the hot look-ahead is provably allocation-free.
  mutable std::vector<double> scratch_v_, scratch_next_;
};

}  // namespace prepare
