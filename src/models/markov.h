// Simple (order-1) Markov chain value predictor — the baseline model from
// the authors' earlier ALERT work [10], kept for the Fig. 11 comparison.
//
// Transitions P(next | current) are learned with Laplace smoothing; a
// k-step prediction is the current one-hot vector pushed k times through
// the transition matrix.
#pragma once

#include <cstddef>
#include <vector>

#include "models/value_predictor.h"

namespace prepare {

class MarkovChain : public ValuePredictor {
 public:
  /// `alphabet` is the number of discretized states; `alpha` the Laplace
  /// smoothing pseudo-count.
  explicit MarkovChain(std::size_t alphabet, double alpha = 0.5);

  void train(const std::vector<std::size_t>& sequence) override;
  void observe(BinIndex symbol, bool learn) override;
  Distribution predict(TickIndex steps) const override;
  bool ready() const override { return has_context_; }
  std::size_t alphabet() const override { return alphabet_; }

  /// Smoothed transition probability P(to | from).
  Probability transition(BinIndex from, BinIndex to) const;

 private:
  std::size_t alphabet_;
  double alpha_;
  std::vector<double> counts_;  // alphabet_ x alphabet_, row-major
  std::size_t context_ = 0;     // last symbol seen
  bool has_context_ = false;
};

}  // namespace prepare
