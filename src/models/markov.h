// Simple (order-1) Markov chain value predictor — the baseline model from
// the authors' earlier ALERT work [10], kept for the Fig. 11 comparison.
//
// Transitions P(next | current) are learned with Laplace smoothing; a
// k-step prediction is the current one-hot vector pushed k times through
// the transition matrix.
#pragma once

#include <cstddef>
#include <vector>

#include "common/analyze_annotations.h"
#include "models/value_predictor.h"

namespace prepare {

class MarkovChain : public ValuePredictor {
 public:
  /// `alphabet` is the number of discretized states; `alpha` the Laplace
  /// smoothing pseudo-count.
  explicit MarkovChain(std::size_t alphabet, double alpha = 0.5);

  void train(const std::vector<std::size_t>& sequence) override;
  void observe(BinIndex symbol, bool learn) override;
  Distribution predict(TickIndex steps) const override;
  PREPARE_HOT void predict_into(TickIndex steps,
                                Distribution* out) const override;
  PREPARE_HOT void predict_path_into(
      TickIndex steps, std::vector<Distribution>* out) const override;
  RowStats row_stats() const override;
  bool ready() const override { return has_context_; }
  std::size_t alphabet() const override { return alphabet_; }

  /// Smoothed transition probability P(to | from).
  Probability transition(BinIndex from, BinIndex to) const;

 private:
  /// Recomputes the cached smoothed row P(· | from) from counts_.
  void rebuild_row(std::size_t from);

  std::size_t alphabet_;
  double alpha_;
  std::vector<double> counts_;  // alphabet_ x alphabet_, row-major
  /// Smoothed transition probabilities, maintained incrementally: the
  /// k-step look-ahead reads rows straight from this cache instead of
  /// re-normalizing a count row per (step, state) pair. Only the row of
  /// the current context changes per learning observation.
  std::vector<double> probs_;
  std::size_t context_ = 0;  // last symbol seen
  bool has_context_ = false;
  /// Per-predict transient state distributions, sized once in the
  /// constructor (the alphabet never changes) so the hot look-ahead is
  /// provably allocation-free — bodies refill with std::fill.
  mutable std::vector<double> scratch_v_, scratch_next_;
};

}  // namespace prepare
