#include "models/naive_bayes.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace prepare {

NaiveBayesClassifier::NaiveBayesClassifier(double alpha) : alpha_(alpha) {
  PREPARE_CHECK(alpha > 0.0);
}

void NaiveBayesClassifier::train(const LabeledDataset& data) {
  PREPARE_CHECK_MSG(!data.rows.empty(), "empty training set");
  PREPARE_CHECK(data.rows.size() == data.abnormal.size());
  alphabet_ = data.alphabet;
  for (int c = 0; c < 2; ++c) {
    counts_[c].assign(alphabet_.size(), {});
    for (std::size_t i = 0; i < alphabet_.size(); ++i)
      counts_[c][i].assign(alphabet_[i], 0.0);
  }
  class_counts_ = {0.0, 0.0};
  for (std::size_t r = 0; r < data.rows.size(); ++r) {
    const auto& row = data.rows[r];
    PREPARE_CHECK(row.size() == alphabet_.size());
    const int c = data.abnormal[r] ? 1 : 0;
    class_counts_[c] += 1.0;
    for (std::size_t i = 0; i < row.size(); ++i) {
      PREPARE_CHECK(row[i] < alphabet_[i]);
      counts_[c][i][row[i]] += 1.0;
    }
  }
  trained_ = true;
  build_impact_tables();
}

Probability NaiveBayesClassifier::likelihood(std::size_t attribute,
                                             BinIndex value,
                                             bool abnormal) const {
  PREPARE_CHECK(trained_);
  const int c = abnormal ? 1 : 0;
  PREPARE_CHECK(attribute < alphabet_.size());
  PREPARE_CHECK(value.value() < alphabet_[attribute]);
  return Probability{(counts_[c][attribute][value.value()] + alpha_) /
                     (class_counts_[c] +
                      alpha_ * static_cast<double>(alphabet_[attribute]))};
}

Probability NaiveBayesClassifier::prior(bool abnormal) const {
  PREPARE_CHECK(trained_);
  const int c = abnormal ? 1 : 0;
  const double total = class_counts_[0] + class_counts_[1];
  return Probability{(class_counts_[c] + alpha_) / (total + 2.0 * alpha_)};
}

void NaiveBayesClassifier::build_impact_tables() {
  // Same precompute-and-fallback scheme as TanClassifier: the primary
  // cell value reproduces the old per-call log(ratio) bit-for-bit; the
  // log-difference form only replaces cells the ratio underflowed.
  log_prior_odds_ = std::log(prior(true) / prior(false));
  PREPARE_DCHECK(std::isfinite(log_prior_odds_))
      << "non-finite class prior log-odds " << log_prior_odds_;
  impact_table_.assign(alphabet_.size(), {});
  for (std::size_t i = 0; i < alphabet_.size(); ++i) {
    const std::size_t k = alphabet_[i];
    impact_table_[i].assign(k, 0.0);
    for (std::size_t v = 0; v < k; ++v) {
      const BinIndex vi{v};
      double cell = std::log(likelihood(i, vi, true) /
                             likelihood(i, vi, false));
      if (!std::isfinite(cell)) {
        const double denom_k = alpha_ * static_cast<double>(k);
        cell = (std::log(counts_[1][i][v] + alpha_) -
                std::log(class_counts_[1] + denom_k)) -
               (std::log(counts_[0][i][v] + alpha_) -
                std::log(class_counts_[0] + denom_k));
      }
      PREPARE_DCHECK(std::isfinite(cell))
          << "non-finite impact for attribute " << i << " value " << v;
      impact_table_[i][v] = cell;
    }
  }
}

Classification NaiveBayesClassifier::classify(
    const std::vector<std::size_t>& row) const {
  Classification out;
  classify_into(row, &out);
  return out;
}

void NaiveBayesClassifier::classify_into(const std::vector<std::size_t>& row,
                                         Classification* out) const {
  PREPARE_CHECK(trained_);
  PREPARE_CHECK(row.size() == alphabet_.size());
  PREPARE_CHECK(out != nullptr);
  // prepare-analyze: allow(hot-alloc): capacity-steady impacts reuse
  out->impacts.resize(row.size());
  out->score = LogOdds{log_prior_odds_};
  for (std::size_t i = 0; i < row.size(); ++i) {
    PREPARE_DCHECK_LT(row[i], alphabet_[i]);
    out->impacts[i] = log_impact(i, row[i]);
    out->score += out->impacts[i];
  }
  PREPARE_DCHECK(std::isfinite(out->score.value()))
      << "non-finite classification score " << out->score.value();
  out->abnormal = out->score > 0.0;
}

LogOdds NaiveBayesClassifier::score(
    const std::vector<std::size_t>& row) const {
  PREPARE_CHECK(trained_);
  PREPARE_CHECK(row.size() == alphabet_.size());
  // Same table walk as classify(), minus the impact vector — the score
  // is bit-identical, with no allocation.
  LogOdds score{log_prior_odds_};
  for (std::size_t i = 0; i < row.size(); ++i) {
    PREPARE_DCHECK_LT(row[i], alphabet_[i]);
    score += log_impact(i, row[i]);
  }
  PREPARE_DCHECK(std::isfinite(score.value()))
      << "non-finite classification score " << score.value();
  return score;
}

Classifier::CptStats NaiveBayesClassifier::cpt_stats() const {
  PREPARE_CHECK(trained_);
  CptStats stats;
  double support_sum = 0.0;
  std::size_t cells = 0;
  bool first = true;
  for (int c = 0; c < 2; ++c) {
    for (const std::vector<double>& table : counts_[c]) {
      for (double count : table) {
        if (first) {
          stats.support_min = count;
          first = false;
        } else {
          stats.support_min = std::min(stats.support_min, count);
        }
        support_sum += count;
        ++cells;
      }
    }
  }
  if (cells > 0) stats.support_mean = support_sum / static_cast<double>(cells);
  double lo = 0.0;
  double hi = 0.0;
  bool first_cell = true;
  for (const std::vector<double>& table : impact_table_) {
    for (double cell : table) {
      if (first_cell) {
        lo = hi = cell;
        first_cell = false;
      } else {
        lo = std::min(lo, cell);
        hi = std::max(hi, cell);
      }
    }
  }
  stats.log_odds_spread = hi - lo;
  return stats;
}

Classification NaiveBayesClassifier::classify_expected(
    const std::vector<Distribution>& dists) const {
  Classification out;
  classify_expected_into(dists, &out);
  return out;
}

void NaiveBayesClassifier::classify_expected_into(
    const std::vector<Distribution>& dists, Classification* out) const {
  PREPARE_CHECK(trained_);
  PREPARE_CHECK(dists.size() == alphabet_.size());
  PREPARE_CHECK(out != nullptr);
  // prepare-analyze: allow(hot-alloc): capacity-steady impacts reuse
  out->impacts.resize(dists.size());
  out->score = LogOdds{log_prior_odds_};
  for (std::size_t i = 0; i < dists.size(); ++i) {
    PREPARE_CHECK(dists[i].size() == alphabet_[i]);
    double e = 0.0;
    for (std::size_t v = 0; v < alphabet_[i]; ++v)
      if (dists[i][v] > 0.0) e += dists[i][v] * log_impact(i, v);
    out->impacts[i] = e;
    out->score += e;
  }
  out->abnormal = out->score > 0.0;
}

}  // namespace prepare
