#include "models/naive_bayes.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace prepare {

NaiveBayesClassifier::NaiveBayesClassifier(double alpha) : alpha_(alpha) {
  PREPARE_CHECK(alpha > 0.0);
}

void NaiveBayesClassifier::train(const LabeledDataset& data) {
  PREPARE_CHECK_MSG(!data.rows.empty(), "empty training set");
  PREPARE_CHECK(data.rows.size() == data.abnormal.size());
  alphabet_ = data.alphabet;
  for (int c = 0; c < 2; ++c) {
    counts_[c].assign(alphabet_.size(), {});
    for (std::size_t i = 0; i < alphabet_.size(); ++i)
      counts_[c][i].assign(alphabet_[i], 0.0);
  }
  class_counts_ = {0.0, 0.0};
  for (std::size_t r = 0; r < data.rows.size(); ++r) {
    const auto& row = data.rows[r];
    PREPARE_CHECK(row.size() == alphabet_.size());
    const int c = data.abnormal[r] ? 1 : 0;
    class_counts_[c] += 1.0;
    for (std::size_t i = 0; i < row.size(); ++i) {
      PREPARE_CHECK(row[i] < alphabet_[i]);
      counts_[c][i][row[i]] += 1.0;
    }
  }
  trained_ = true;
}

Probability NaiveBayesClassifier::likelihood(std::size_t attribute,
                                             BinIndex value,
                                             bool abnormal) const {
  PREPARE_CHECK(trained_);
  const int c = abnormal ? 1 : 0;
  PREPARE_CHECK(attribute < alphabet_.size());
  PREPARE_CHECK(value.value() < alphabet_[attribute]);
  return Probability{(counts_[c][attribute][value.value()] + alpha_) /
                     (class_counts_[c] +
                      alpha_ * static_cast<double>(alphabet_[attribute]))};
}

Probability NaiveBayesClassifier::prior(bool abnormal) const {
  PREPARE_CHECK(trained_);
  const int c = abnormal ? 1 : 0;
  const double total = class_counts_[0] + class_counts_[1];
  return Probability{(class_counts_[c] + alpha_) / (total + 2.0 * alpha_)};
}

double NaiveBayesClassifier::log_impact(std::size_t attribute,
                                        std::size_t value) const {
  const BinIndex v{value};
  return std::log(likelihood(attribute, v, true) /
                  likelihood(attribute, v, false));
}

Classification NaiveBayesClassifier::classify(
    const std::vector<std::size_t>& row) const {
  PREPARE_CHECK(trained_);
  PREPARE_CHECK(row.size() == alphabet_.size());
  Classification out;
  out.impacts.resize(row.size());
  out.score = LogOdds{std::log(prior(true) / prior(false))};
  for (std::size_t i = 0; i < row.size(); ++i) {
    out.impacts[i] = log_impact(i, row[i]);
    out.score += out.impacts[i];
  }
  out.abnormal = out.score > 0.0;
  return out;
}

Classification NaiveBayesClassifier::classify_expected(
    const std::vector<Distribution>& dists) const {
  PREPARE_CHECK(trained_);
  PREPARE_CHECK(dists.size() == alphabet_.size());
  Classification out;
  out.impacts.resize(dists.size());
  out.score = LogOdds{std::log(prior(true) / prior(false))};
  for (std::size_t i = 0; i < dists.size(); ++i) {
    PREPARE_CHECK(dists[i].size() == alphabet_[i]);
    double e = 0.0;
    for (std::size_t v = 0; v < alphabet_[i]; ++v)
      if (dists[i][v] > 0.0) e += dists[i][v] * log_impact(i, v);
    out.impacts[i] = e;
    out.score += e;
  }
  out.abnormal = out.score > 0.0;
  return out;
}

}  // namespace prepare
