#include "models/distribution.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace prepare {

Distribution Distribution::delta(std::size_t size, BinIndex symbol) {
  PREPARE_CHECK(symbol.value() < size);
  Distribution d(size);
  d.p_[symbol.value()] = 1.0;
  return d;
}

Distribution Distribution::uniform(std::size_t size) {
  PREPARE_CHECK(size > 0);
  Distribution d(size);
  std::fill(d.p_.begin(), d.p_.end(), 1.0 / static_cast<double>(size));
  return d;
}

void Distribution::normalize() {
  for (std::size_t i = 0; i < p_.size(); ++i) {
    PREPARE_CHECK(std::isfinite(p_[i]))
        << "non-finite mass " << p_[i] << " at symbol " << i;
    PREPARE_CHECK_GE(p_[i], 0.0) << "negative mass at symbol " << i;
  }
  const double s = sum();
  if (s <= 0.0) {
    if (!p_.empty())
      std::fill(p_.begin(), p_.end(), 1.0 / static_cast<double>(p_.size()));
    return;
  }
  for (double& x : p_) x /= s;
  PREPARE_DCHECK_NEAR(sum(), 1.0, 1e-9) << "normalize() left unnormalized mass";
}

bool Distribution::is_normalized(double tolerance) const {
  if (p_.empty()) return false;
  for (double x : p_)
    if (!std::isfinite(x) || x < 0.0) return false;
  return std::fabs(sum() - 1.0) <= tolerance;
}

double Distribution::sum() const {
  double s = 0.0;
  for (double x : p_) s += x;
  return s;
}

std::size_t Distribution::mode() const {
  PREPARE_CHECK(!p_.empty());
  return static_cast<std::size_t>(
      std::max_element(p_.begin(), p_.end()) - p_.begin());
}

double Distribution::expectation(const std::vector<double>& f) const {
  PREPARE_CHECK(f.size() == p_.size());
  double e = 0.0;
  for (std::size_t i = 0; i < p_.size(); ++i) e += p_[i] * f[i];
  return e;
}

double Distribution::entropy() const {
  double h = 0.0;
  for (double x : p_)
    if (x > 0.0) h -= x * std::log(x);
  return h;
}

}  // namespace prepare
