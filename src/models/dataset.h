// Discretized, labeled training data for the classifiers.
#pragma once

#include <cstddef>
#include <vector>

namespace prepare {

/// Rows of discretized attribute values with normal/abnormal labels.
/// `alphabet[i]` is the number of bins of attribute i.
struct LabeledDataset {
  std::vector<std::vector<std::size_t>> rows;
  std::vector<bool> abnormal;
  std::vector<std::size_t> alphabet;

  std::size_t size() const { return rows.size(); }
  std::size_t attributes() const { return alphabet.size(); }
};

}  // namespace prepare
