#include "models/tan.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace prepare {

TanClassifier::TanClassifier(double alpha) : alpha_(alpha) {
  PREPARE_CHECK(alpha > 0.0);
}

void TanClassifier::train(const LabeledDataset& data) {
  PREPARE_CHECK_MSG(!data.rows.empty(), "empty training set");
  PREPARE_CHECK(data.rows.size() == data.abnormal.size());
  PREPARE_CHECK(data.attributes() >= 1);
  alphabet_ = data.alphabet;
  learn_structure(data);
  learn_cpts(data);
  trained_ = true;
  build_impact_tables();
}

void TanClassifier::learn_structure(const LabeledDataset& data) {
  const std::size_t n = data.attributes();
  cmi_.assign(n, std::vector<double>(n, 0.0));

  // Class-conditional joint counts with Laplace smoothing, per pair. The
  // count buffers live outside the loops and are re-initialized with
  // assign() so each pair reuses one allocation.
  std::vector<double> joint, mi, mj;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double info = 0.0;
      for (int c = 0; c < 2; ++c) {
        // Count occurrences in class c.
        const std::size_t ki = alphabet_[i], kj = alphabet_[j];
        joint.assign(ki * kj, alpha_);
        mi.assign(ki, alpha_ * static_cast<double>(kj));
        mj.assign(kj, alpha_ * static_cast<double>(ki));
        double total = alpha_ * static_cast<double>(ki * kj);
        for (std::size_t r = 0; r < data.rows.size(); ++r) {
          if ((data.abnormal[r] ? 1 : 0) != c) continue;
          const std::size_t vi = data.rows[r][i];
          const std::size_t vj = data.rows[r][j];
          joint[vi * kj + vj] += 1.0;
          mi[vi] += 1.0;
          mj[vj] += 1.0;
          total += 1.0;
        }
        // Weight by the (smoothed) class probability.
        const double n_c =
            static_cast<double>(std::count(data.abnormal.begin(),
                                           data.abnormal.end(), c == 1));
        const double p_c =
            (n_c + alpha_) / (static_cast<double>(data.size()) + 2.0 * alpha_);
        double info_c = 0.0;
        for (std::size_t vi = 0; vi < ki; ++vi) {
          for (std::size_t vj = 0; vj < kj; ++vj) {
            const double p_joint = joint[vi * kj + vj] / total;
            const double p_i = mi[vi] / total;
            const double p_j = mj[vj] / total;
            if (p_joint > 0.0)
              info_c += p_joint * std::log(p_joint / (p_i * p_j));
          }
        }
        info += p_c * std::max(0.0, info_c);
      }
      cmi_[i][j] = cmi_[j][i] = info;
    }
  }

  // Maximum-weight spanning tree (Prim), rooted at attribute 0; the
  // traversal order fixes edge orientation: parent = the tree vertex
  // through which a vertex was attached.
  parents_.assign(n, kNoParent);
  if (n == 1) return;
  std::vector<bool> in_tree(n, false);
  std::vector<double> best_weight(n, -1.0);
  std::vector<std::size_t> best_from(n, kNoParent);
  in_tree[0] = true;
  for (std::size_t j = 1; j < n; ++j) {
    best_weight[j] = cmi_[0][j];
    best_from[j] = 0;
  }
  for (std::size_t added = 1; added < n; ++added) {
    std::size_t pick = kNoParent;
    double pick_weight = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < n; ++j) {
      if (in_tree[j]) continue;
      if (best_weight[j] > pick_weight) {
        pick_weight = best_weight[j];
        pick = j;
      }
    }
    PREPARE_DCHECK(pick != kNoParent);
    in_tree[pick] = true;
    parents_[pick] = best_from[pick];
    for (std::size_t j = 0; j < n; ++j) {
      if (in_tree[j]) continue;
      if (cmi_[pick][j] > best_weight[j]) {
        best_weight[j] = cmi_[pick][j];
        best_from[j] = pick;
      }
    }
  }
}

void TanClassifier::learn_cpts(const LabeledDataset& data) {
  const std::size_t n = data.attributes();
  class_counts_ = {0.0, 0.0};
  for (int c = 0; c < 2; ++c) {
    cpt_[c].assign(n, {});
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t rows =
          parents_[i] == kNoParent ? 1 : alphabet_[parents_[i]];
      cpt_[c][i].assign(rows * alphabet_[i], 0.0);
    }
  }
  for (std::size_t r = 0; r < data.rows.size(); ++r) {
    const auto& row = data.rows[r];
    PREPARE_CHECK_EQ(row.size(), n) << "ragged training row " << r;
    const int c = data.abnormal[r] ? 1 : 0;
    class_counts_[c] += 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      PREPARE_CHECK_LT(row[i], alphabet_[i])
          << "row " << r << " attribute " << i << " out of alphabet";
      const std::size_t pv =
          parents_[i] == kNoParent ? 0 : row[parents_[i]];
      cpt_[c][i][pv * alphabet_[i] + row[i]] += 1.0;
    }
  }
  // Every training row landed in exactly one class bucket.
  PREPARE_DCHECK_NEAR(class_counts_[0] + class_counts_[1],
                      static_cast<double>(data.rows.size()), 1e-9)
      << "class counts do not cover the training set";
}

Probability TanClassifier::likelihood(std::size_t attribute, BinIndex value,
                                      BinIndex parent_value,
                                      bool abnormal) const {
  PREPARE_CHECK(trained_);
  PREPARE_CHECK(attribute < alphabet_.size());
  PREPARE_CHECK(value.value() < alphabet_[attribute]);
  const int c = abnormal ? 1 : 0;
  const std::size_t pv =
      parents_[attribute] == kNoParent ? 0 : parent_value.value();
  const std::size_t k = alphabet_[attribute];
  const auto& table = cpt_[c][attribute];
  const std::size_t base = pv * k;
  PREPARE_CHECK(base + k <= table.size());
  double row_total = 0.0;
  for (std::size_t v = 0; v < k; ++v) row_total += table[base + v];
  return Probability{(table[base + value.value()] + alpha_) /
                     (row_total + alpha_ * static_cast<double>(k))};
}

Probability TanClassifier::prior(bool abnormal) const {
  PREPARE_CHECK(trained_);
  const int c = abnormal ? 1 : 0;
  const double total = class_counts_[0] + class_counts_[1];
  const double p = (class_counts_[c] + alpha_) / (total + 2.0 * alpha_);
  PREPARE_DCHECK(p > 0.0 && p < 1.0) << "degenerate class prior " << p;
  return Probability{p};
}

double TanClassifier::conditional_mutual_information(std::size_t i,
                                                     std::size_t j) const {
  PREPARE_CHECK(trained_);
  PREPARE_CHECK(i < cmi_.size() && j < cmi_.size());
  return cmi_[i][j];
}

void TanClassifier::build_impact_tables() {
  // Train-time precomputation of every runtime log. The primary form is
  // exactly the expression the classify path used to evaluate per call —
  // log(likelihood_true / likelihood_false) on the smoothed CPT rows —
  // so table lookups are bit-identical to the old on-the-fly scores.
  // When that ratio is non-finite (alpha so small the smoothed
  // probability underflows to 0, giving 0/0 or 0/x), the cell is rebuilt
  // as a difference of log-likelihoods computed from raw counts, which
  // stays finite for any alpha > 0.
  log_prior_odds_ = std::log(prior(true) / prior(false));
  PREPARE_DCHECK(std::isfinite(log_prior_odds_))
      << "non-finite class prior log-odds " << log_prior_odds_;
  const std::size_t n = alphabet_.size();
  impact_table_.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t k = alphabet_[i];
    const std::size_t rows = parents_[i] == kNoParent ? 1 : alphabet_[parents_[i]];
    impact_table_[i].assign(rows * k, 0.0);
    for (std::size_t pv = 0; pv < rows; ++pv) {
      std::array<double, 2> row_total = {0.0, 0.0};
      for (int c = 0; c < 2; ++c)
        for (std::size_t v = 0; v < k; ++v)
          row_total[c] += cpt_[c][i][pv * k + v];
      for (std::size_t v = 0; v < k; ++v) {
        const BinIndex vi{v}, pvi{pv};
        double cell = std::log(likelihood(i, vi, pvi, true) /
                               likelihood(i, vi, pvi, false));
        if (!std::isfinite(cell)) {
          const double denom_k = alpha_ * static_cast<double>(k);
          cell = (std::log(cpt_[1][i][pv * k + v] + alpha_) -
                  std::log(row_total[1] + denom_k)) -
                 (std::log(cpt_[0][i][pv * k + v] + alpha_) -
                  std::log(row_total[0] + denom_k));
        }
        PREPARE_DCHECK(std::isfinite(cell))
            << "non-finite impact for attribute " << i << " value " << v
            << " parent value " << pv;
        impact_table_[i][pv * k + v] = cell;
      }
    }
  }
}

Classification TanClassifier::classify(
    const std::vector<std::size_t>& row) const {
  Classification out;
  classify_into(row, &out);
  return out;
}

void TanClassifier::classify_into(const std::vector<std::size_t>& row,
                                  Classification* out) const {
  PREPARE_CHECK(trained_);
  PREPARE_CHECK(row.size() == alphabet_.size());
  PREPARE_CHECK(out != nullptr);
  // prepare-analyze: allow(hot-alloc): capacity-steady impacts reuse
  out->impacts.resize(row.size());
  out->score = LogOdds{log_prior_odds_};
  for (std::size_t i = 0; i < row.size(); ++i) {
    PREPARE_DCHECK_LT(row[i], alphabet_[i]);
    const std::size_t pv =
        parents_[i] == kNoParent ? 0 : row[parents_[i]];
    out->impacts[i] = log_impact(i, row[i], pv);
    out->score += out->impacts[i];
  }
  PREPARE_DCHECK(std::isfinite(out->score.value()))
      << "non-finite classification score " << out->score.value();
  out->abnormal = out->score > 0.0;
}

LogOdds TanClassifier::score(const std::vector<std::size_t>& row) const {
  PREPARE_CHECK(trained_);
  PREPARE_CHECK(row.size() == alphabet_.size());
  // Same table walk as classify(), minus the impact vector — the score
  // is bit-identical, with no allocation.
  LogOdds score{log_prior_odds_};
  for (std::size_t i = 0; i < row.size(); ++i) {
    PREPARE_DCHECK_LT(row[i], alphabet_[i]);
    const std::size_t pv = parents_[i] == kNoParent ? 0 : row[parents_[i]];
    score += log_impact(i, row[i], pv);
  }
  PREPARE_DCHECK(std::isfinite(score.value()))
      << "non-finite classification score " << score.value();
  return score;
}

Classifier::CptStats TanClassifier::cpt_stats() const {
  PREPARE_CHECK(trained_);
  CptStats stats;
  double support_sum = 0.0;
  std::size_t cells = 0;
  bool first = true;
  for (int c = 0; c < 2; ++c) {
    for (const std::vector<double>& table : cpt_[c]) {
      for (double count : table) {
        if (first) {
          stats.support_min = count;
          first = false;
        } else {
          stats.support_min = std::min(stats.support_min, count);
        }
        support_sum += count;
        ++cells;
      }
    }
  }
  if (cells > 0) stats.support_mean = support_sum / static_cast<double>(cells);
  double lo = 0.0;
  double hi = 0.0;
  bool first_cell = true;
  for (const std::vector<double>& table : impact_table_) {
    for (double cell : table) {
      if (first_cell) {
        lo = hi = cell;
        first_cell = false;
      } else {
        lo = std::min(lo, cell);
        hi = std::max(hi, cell);
      }
    }
  }
  stats.log_odds_spread = hi - lo;
  return stats;
}

Classification TanClassifier::classify_expected(
    const std::vector<Distribution>& dists) const {
  Classification out;
  classify_expected_into(dists, &out);
  return out;
}

void TanClassifier::classify_expected_into(
    const std::vector<Distribution>& dists, Classification* out) const {
  PREPARE_CHECK(trained_);
  PREPARE_CHECK(dists.size() == alphabet_.size());
  PREPARE_CHECK(out != nullptr);
  // prepare-analyze: allow(hot-alloc): capacity-steady impacts reuse
  out->impacts.resize(dists.size());
  out->score = LogOdds{log_prior_odds_};
  for (std::size_t i = 0; i < dists.size(); ++i) {
    PREPARE_CHECK_EQ(dists[i].size(), alphabet_[i])
        << "predicted distribution for attribute " << i
        << " does not match its alphabet";
    PREPARE_DCHECK(dists[i].is_normalized(1e-6))
        << "attribute " << i << " distribution sums to " << dists[i].sum();
    double e = 0.0;
    if (parents_[i] == kNoParent) {
      for (std::size_t v = 0; v < alphabet_[i]; ++v)
        if (dists[i][v] > 0.0) e += dists[i][v] * log_impact(i, v, 0);
    } else {
      // Expectation over the child's predicted distribution with the
      // parent pinned at its most likely predicted value. A full
      // independent product would put mass on (child, parent) pairs that
      // never co-occur — correlated attributes like free_mem/mem_util
      // would then cancel their own evidence.
      const std::size_t pv = dists[parents_[i]].mode();
      for (std::size_t v = 0; v < alphabet_[i]; ++v)
        if (dists[i][v] > 0.0) e += dists[i][v] * log_impact(i, v, pv);
    }
    out->impacts[i] = e;
    out->score += e;
  }
  PREPARE_DCHECK(std::isfinite(out->score.value()))
      << "non-finite expected-classification score " << out->score.value();
  out->abnormal = out->score > 0.0;
}

}  // namespace prepare
