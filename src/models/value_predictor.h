// Attribute-value predictor interface.
//
// A predictor consumes the discretized sample stream of one attribute and
// answers "what is the value distribution `steps` sampling intervals from
// now?" (paper Section II-B: "The metric value prediction can estimate
// the value distribution of an attribute at a future time").
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.h"
#include "models/distribution.h"

namespace prepare {

class ValuePredictor {
 public:
  virtual ~ValuePredictor() = default;

  /// Batch-trains on a symbol sequence (resets previous counts and sets
  /// the prediction context to the end of the sequence).
  virtual void train(const std::vector<std::size_t>& sequence) = 0;

  /// Feeds one runtime observation. With `learn` true the transition
  /// counts are updated too (the paper's periodic model update); with
  /// false only the prediction context advances.
  virtual void observe(BinIndex symbol, bool learn) = 0;

  /// Distribution of the attribute value `steps` intervals ahead
  /// (steps >= 1). Requires ready().
  virtual Distribution predict(TickIndex steps) const = 0;

  /// Same result as predict(), written into `out` (non-null) so a
  /// per-tick caller can reuse one buffer instead of allocating a fresh
  /// distribution every prediction. The default forwards to predict();
  /// the Markov models override it to fill in place.
  virtual void predict_into(TickIndex steps, Distribution* out) const {
    *out = predict(steps);
  }

  /// Whether enough context has been seen to predict.
  virtual bool ready() const = 0;

  virtual std::size_t alphabet() const = 0;
};

}  // namespace prepare
