// Attribute-value predictor interface.
//
// A predictor consumes the discretized sample stream of one attribute and
// answers "what is the value distribution `steps` sampling intervals from
// now?" (paper Section II-B: "The metric value prediction can estimate
// the value distribution of an attribute at a future time").
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.h"
#include "models/distribution.h"

namespace prepare {

class ValuePredictor {
 public:
  /// Aggregate transition-row statistics for model introspection
  /// (obs/model_introspect.h): how spread the learned rows are and how
  /// much of the state space training actually visited. Entropy is in
  /// nats over the *smoothed* rows, restricted to rows with at least one
  /// observed transition (a never-visited row is uniform by smoothing
  /// and would drown the signal).
  struct RowStats {
    std::size_t rows = 0;           ///< transition rows in the model
    std::size_t occupied_rows = 0;  ///< rows with observed transitions
    double entropy_sum = 0.0;       ///< over occupied rows
    double entropy_max = 0.0;       ///< over occupied rows
    double count_total = 0.0;       ///< raw transition observations
  };

  virtual ~ValuePredictor() = default;

  /// Batch-trains on a symbol sequence (resets previous counts and sets
  /// the prediction context to the end of the sequence).
  virtual void train(const std::vector<std::size_t>& sequence) = 0;

  /// Feeds one runtime observation. With `learn` true the transition
  /// counts are updated too (the paper's periodic model update); with
  /// false only the prediction context advances.
  virtual void observe(BinIndex symbol, bool learn) = 0;

  /// Distribution of the attribute value `steps` intervals ahead
  /// (steps >= 1). Requires ready().
  virtual Distribution predict(TickIndex steps) const = 0;

  /// Same result as predict(), written into `out` (non-null) so a
  /// per-tick caller can reuse one buffer instead of allocating a fresh
  /// distribution every prediction. The default forwards to predict();
  /// the Markov models override it to fill in place.
  virtual void predict_into(TickIndex steps, Distribution* out) const {
    *out = predict(steps);
  }

  /// Fills (*out)[s-1] with the prediction for every horizon step
  /// s = 1..steps (resizing `out` to `steps`). The default evaluates
  /// predict_into() once per step; the Markov models override it with a
  /// single state-vector push that marginalizes after every step — same
  /// per-step arithmetic, so each element is bit-identical to the
  /// corresponding predict_into(s) result, at one step-push total cost.
  virtual void predict_path_into(TickIndex steps,
                                 std::vector<Distribution>* out) const {
    out->resize(steps.value());
    for (std::size_t s = 1; s <= steps.value(); ++s) {
      predict_into(TickIndex{s}, &(*out)[s - 1]);
    }
  }

  /// Transition-row introspection snapshot. The default (models without
  /// transition rows) reports an empty statistic.
  virtual RowStats row_stats() const { return RowStats(); }

  /// Whether enough context has been seen to predict.
  virtual bool ready() const = 0;

  virtual std::size_t alphabet() const = 0;
};

}  // namespace prepare
