// Discretization of a continuous attribute.
//
// Both the Markov value predictors and the Bayesian classifiers operate
// on discretized attribute values (paper Fig. 2 shows an attribute
// "discretized into three single states").
//
// Two schemes:
//  * equal-width — fixed-width bins over the observed range (+margin);
//  * equal-frequency (default) — bin boundaries at quantiles of the
//    training data. Anomaly-era extremes would stretch equal-width bins
//    so far that the whole normal-to-degrading trajectory collapses into
//    one bin; quantile cuts keep resolution where the data actually
//    lives. Duplicate cut points (heavily tied data) are merged, so the
//    effective bin count can be smaller than requested — bins() reports
//    the effective count after fit().
#pragma once

#include <cstddef>
#include <vector>

#include "common/analyze_annotations.h"
#include "common/units.h"

namespace prepare {

enum class DiscretizerKind { kEqualWidth, kQuantile };

class Discretizer {
 public:
  /// `bins` >= 2 requested bins; `margin` expands the learned range for
  /// the equal-width scheme. With `guard_bins`, one extra bin is added
  /// beyond each edge that only values OUTSIDE the training range map
  /// to — training data never lands there, so a guard-bin symbol is
  /// maximally surprising to a density model (used by the unsupervised
  /// outlier detector).
  explicit Discretizer(std::size_t bins = 7,
                       DiscretizerKind kind = DiscretizerKind::kQuantile,
                       double margin = 0.05, bool guard_bins = false);

  /// Learns bin boundaries from values.
  void fit(const std::vector<double>& values);

  /// Maps a value to its bin, clamping outliers to the edge bins.
  ///
  /// Hot path: for a plain equal-width grid (no guard bins) the bin is
  /// computed directly from the grid origin and width — one multiply
  /// plus a clamp — instead of a binary search. A local fix-up step
  /// keeps the result exactly equal to the `lower_bound` answer even
  /// when `value` sits on a cut, so both paths are bit-identical;
  /// quantile and guard grids take the general search.
  PREPARE_HOT std::size_t discretize(double value) const;
  std::vector<std::size_t> discretize(const std::vector<double>& xs) const;

  /// Representative (center) value of a bin — used to turn predicted
  /// symbol distributions back into metric values for reporting.
  double bin_center(BinIndex bin) const;
  std::vector<double> bin_centers() const;
  /// bin_centers() without the copy — the per-tick prediction path turns
  /// predicted distributions into expected metric values through this.
  const std::vector<double>& centers() const { return centers_; }

  /// Effective number of bins (== requested for equal-width; possibly
  /// fewer for quantile when the data is heavily tied).
  std::size_t bins() const;
  bool fitted() const { return fitted_; }
  DiscretizerKind kind() const { return kind_; }
  /// Interior cut points (ascending); bin i is (cut[i-1], cut[i]].
  const std::vector<double>& cuts() const { return cuts_; }
  /// Per-bin occupancy of the training data (one count per effective
  /// bin, recorded at the end of fit()). This is the bin-occupancy
  /// baseline the drift detector compares runtime symbols against.
  const std::vector<double>& fit_counts() const { return fit_counts_; }

 private:
  std::size_t requested_bins_;
  DiscretizerKind kind_;
  double margin_;
  bool guard_bins_;
  double data_lo_ = 0.0, data_hi_ = 0.0;  // training range (guard bins)
  bool fitted_ = false;
  std::vector<double> cuts_;     ///< interior boundaries, ascending
  std::vector<double> centers_;  ///< representative value per bin
  std::vector<double> fit_counts_;  ///< training-data occupancy per bin

  /// Equal-width fast path: when the cut grid is uniform, bin lookup is
  /// (value - grid_lo_) * grid_inv_width_ with a clamp + exact fix-up.
  bool uniform_grid_ = false;
  double grid_lo_ = 0.0;
  double grid_inv_width_ = 0.0;
};

}  // namespace prepare
