// Shared transition-row statistics for the Markov-family predictors.
//
// All three Markov orders store their model in the same layout — a
// row-major `counts` table of raw transition observations and a `probs`
// mirror of Laplace-smoothed rows — so the introspection sweep
// (ValuePredictor::row_stats) is one function over that layout.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "models/value_predictor.h"

namespace prepare {
namespace markov_detail {

/// Row statistics over a `rows` x `alphabet` transition table. A row is
/// occupied when it has at least one raw observation; entropy (nats) is
/// evaluated on the smoothed row, whose cells are strictly positive by
/// Laplace smoothing.
inline ValuePredictor::RowStats row_stats_over(
    const std::vector<double>& counts, const std::vector<double>& probs,
    std::size_t rows, std::size_t alphabet) {
  ValuePredictor::RowStats stats;
  stats.rows = rows;
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t base = r * alphabet;
    double row_total = 0.0;
    for (std::size_t j = 0; j < alphabet; ++j) row_total += counts[base + j];
    stats.count_total += row_total;
    if (row_total <= 0.0) continue;
    ++stats.occupied_rows;
    double entropy = 0.0;
    for (std::size_t j = 0; j < alphabet; ++j) {
      const double p = probs[base + j];
      entropy -= p * std::log(p);
    }
    stats.entropy_sum += entropy;
    stats.entropy_max = std::max(stats.entropy_max, entropy);
  }
  return stats;
}

}  // namespace markov_detail
}  // namespace prepare
