// 2-dependent Markov chain value predictor (paper Section II-B, Fig. 2).
//
// Transitions depend on the *pair* of the previous and current values:
// combining every two single states into one combined state turns a
// non-Markovian attribute (e.g. one moving along a ramp or a sinusoid,
// where the slope matters) into a Markovian one. A k-step prediction
// propagates a distribution over combined states (prev, cur) — each step
// maps (a, b) -> (b, c) with probability P(c | a, b) — and marginalizes
// the final pair distribution onto the current value.
#pragma once

#include <cstddef>
#include <vector>

#include "common/analyze_annotations.h"
#include "models/value_predictor.h"

namespace prepare {

class TwoDependentMarkov : public ValuePredictor {
 public:
  explicit TwoDependentMarkov(std::size_t alphabet, double alpha = 0.5);

  void train(const std::vector<std::size_t>& sequence) override;
  void observe(BinIndex symbol, bool learn) override;
  Distribution predict(TickIndex steps) const override;
  PREPARE_HOT void predict_into(TickIndex steps,
                                Distribution* out) const override;
  PREPARE_HOT void predict_path_into(
      TickIndex steps, std::vector<Distribution>* out) const override;
  RowStats row_stats() const override;
  bool ready() const override { return seen_ >= 2; }
  std::size_t alphabet() const override { return alphabet_; }

  /// Smoothed P(next | prev, cur).
  Probability transition(BinIndex prev, BinIndex cur, BinIndex next) const;

 private:
  std::size_t pair_index(std::size_t prev, std::size_t cur) const {
    return prev * alphabet_ + cur;
  }
  /// Recomputes one cached smoothed row P(· | pair) from counts_.
  void rebuild_row(std::size_t pair);

  std::size_t alphabet_;
  double alpha_;
  /// counts_[pair_index(prev, cur) * alphabet_ + next]
  std::vector<double> counts_;
  /// Smoothed transition rows mirroring counts_, maintained
  /// incrementally so the k-step look-ahead is pure table lookups (one
  /// row changes per learning observation).
  std::vector<double> probs_;
  std::size_t prev_ = 0, cur_ = 0;
  std::size_t seen_ = 0;  // number of symbols observed (saturates at 2)
  /// Per-predict transient pair-state distributions, sized once in the
  /// constructor so the hot look-ahead is provably allocation-free.
  mutable std::vector<double> scratch_v_, scratch_next_;
};

}  // namespace prepare
