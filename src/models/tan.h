// Tree-Augmented Naive Bayes (TAN) classifier (Cohen et al., OSDI'04 [12];
// paper Section II-B/II-C).
//
// Structure learning follows Friedman's classic construction: compute the
// class-conditional mutual information I(A_i; A_j | C) for every
// attribute pair, build the maximum-weight spanning tree over attributes,
// and orient it from a root — each attribute then has the class plus at
// most one other attribute as parents. CPTs use Laplace smoothing.
//
// The per-attribute impact strength L_i (Eq. 2),
//
//   L_i = log[ P(a_i | a_pi, C=1) / P(a_i | a_pi, C=0) ],
//
// is exposed for both concrete samples and predicted value distributions;
// Classification::score is exactly the left-hand side of Eq. (1).
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "common/analyze_annotations.h"
#include "models/classifier.h"

namespace prepare {

class TanClassifier : public Classifier {
 public:
  explicit TanClassifier(double alpha = 1.0);

  void train(const LabeledDataset& data) override;
  bool trained() const override { return trained_; }
  Classification classify(const std::vector<std::size_t>& row) const override;
  PREPARE_HOT void classify_into(const std::vector<std::size_t>& row,
                                 Classification* out) const override;
  Classification classify_expected(
      const std::vector<Distribution>& dists) const override;
  PREPARE_HOT void classify_expected_into(const std::vector<Distribution>& dists,
                                          Classification* out) const override;
  PREPARE_HOT LogOdds score(const std::vector<std::size_t>& row) const override;
  CptStats cpt_stats() const override;
  bool score_decomposable() const override { return true; }
  LogOdds prior_log_odds() const override { return LogOdds{log_prior_odds_}; }

  /// parent(i) = index of attribute i's attribute-parent, or kNoParent
  /// for the root (whose only parent is the class node).
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);
  const std::vector<std::size_t>& parents() const { return parents_; }

  /// Smoothed P(a_i = v | a_pi = pv, C = c); for the root, pv is ignored.
  Probability likelihood(std::size_t attribute, BinIndex value,
                         BinIndex parent_value, bool abnormal) const;
  Probability prior(bool abnormal) const;

  /// Class-conditional mutual information I(A_i; A_j | C) from the last
  /// training set (exposed for tests; symmetric).
  double conditional_mutual_information(std::size_t i, std::size_t j) const;

 private:
  void learn_structure(const LabeledDataset& data);
  void learn_cpts(const LabeledDataset& data);
  void build_impact_tables();
  double log_impact(std::size_t attribute, std::size_t value,
                    std::size_t parent_value) const {
    return impact_table_[attribute]
                        [parent_value * alphabet_[attribute] + value];
  }

  double alpha_;
  bool trained_ = false;
  std::vector<std::size_t> alphabet_;
  std::vector<std::size_t> parents_;
  std::vector<std::vector<double>> cmi_;  // pairwise I(A_i; A_j | C)

  /// cpt_[c][i] is a table of size alphabet[pi] x alphabet[i]
  /// (row-major; a single row of size alphabet[i] for the root).
  std::array<std::vector<std::vector<double>>, 2> cpt_;
  std::array<double, 2> class_counts_ = {0.0, 0.0};

  /// Precomputed log-CPT fast path (built once per train): the score and
  /// every per-attribute impact L_i reduce to summed table lookups, with
  /// no std::log on the classify path.
  ///
  /// impact_table_[i] mirrors cpt_'s row-major layout and holds
  /// L_i(v, pv) = log[P(v | pv, C=1) / P(v | pv, C=0)]; cells whose
  /// smoothed-count ratio underflows (tiny alpha, rare bins) are rebuilt
  /// as a difference of log-likelihoods, which cannot underflow, so
  /// every table cell — and thus every emitted score/impact — is finite.
  std::vector<std::vector<double>> impact_table_;
  double log_prior_odds_ = 0.0;
};

}  // namespace prepare
