// Unsupervised anomaly classifier — the paper's Section V extension:
//
//   "We plan to extend PREPARE to handle unseen anomalies by developing
//    unsupervised anomaly prediction models" (clustering / outlier
//    detection).
//
// This implementation keeps the TAN machinery but drops the class node:
// a Chow-Liu tree (unconditional mutual information) is fitted to the
// training data as a tree-structured density model P(a_1..a_n), and a
// sample is classified abnormal when its surprisal -log P exceeds a
// quantile threshold calibrated on the training data itself. Labels, if
// present in the dataset, are ignored — the model detects anomalies it
// has never seen, at the cost of not knowing what "this kind of
// abnormal" looks like.
//
// Attribution comes for free: each attribute contributes its local
// surprisal -log P(a_i | a_pi); the impact L_i reported is the excess of
// that surprisal over its training mean, so rarely-seen values of an
// attribute rank it high — compatible with the actuator's ranking.
#pragma once

#include <cstddef>
#include <vector>

#include "common/analyze_annotations.h"
#include "models/classifier.h"

namespace prepare {

class OutlierClassifier : public Classifier {
 public:
  /// `threshold_quantile` calibrates the decision boundary: a sample is
  /// abnormal when its surprisal exceeds this quantile of the training
  /// surprisals times `threshold_margin` (headroom for the quantile
  /// estimate from a finite normal sample). `alpha` is the Laplace
  /// smoothing pseudo-count.
  explicit OutlierClassifier(double threshold_quantile = 0.995,
                             double alpha = 1.0,
                             double threshold_margin = 1.25);

  /// Trains the density model. Labels in `data` are IGNORED (the whole
  /// point); pass everything observed during normal operation.
  void train(const LabeledDataset& data) override;
  bool trained() const override { return trained_; }

  Classification classify(const std::vector<std::size_t>& row) const override;
  /// Allocation-free like the Bayesian backends' overrides: the
  /// kOutlier configuration takes the same per-tick prediction path.
  PREPARE_HOT void classify_into(const std::vector<std::size_t>& row,
                                 Classification* out) const override;
  Classification classify_expected(
      const std::vector<Distribution>& dists) const override;
  PREPARE_HOT void classify_expected_into(const std::vector<Distribution>& dists,
                                          Classification* out) const override;

  /// Total surprisal -log P(row) under the tree density.
  double surprisal(const std::vector<std::size_t>& row) const;
  double threshold() const { return threshold_; }
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);
  const std::vector<std::size_t>& parents() const { return parents_; }

 private:
  void learn_structure(const LabeledDataset& data);
  void learn_tables(const LabeledDataset& data);
  /// -log P(a_i = v | parent value).
  double local_surprisal(std::size_t attribute, std::size_t value,
                         std::size_t parent_value) const;

  double threshold_quantile_;
  double alpha_;
  double threshold_margin_;
  bool trained_ = false;
  std::vector<std::size_t> alphabet_;
  std::vector<std::size_t> parents_;
  /// table_[i]: alphabet[pi] x alphabet[i] counts (1 row for the root).
  std::vector<std::vector<double>> table_;
  /// Mean local surprisal per attribute on the training data (baseline
  /// for the impact scores).
  std::vector<double> baseline_;
  double threshold_ = 0.0;
};

}  // namespace prepare
