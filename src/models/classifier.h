// Anomaly classifier interface (normal vs. abnormal) with per-attribute
// impact attribution.
//
// The score is the log-odds of Eq. (1) in the paper: a sum of one term
// per attribute (L_i, Eq. (2)) plus the class-prior term; a positive sum
// classifies the state as abnormal, and larger L_i means attribute i is
// more relevant to the predicted anomaly (Fig. 3).
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.h"
#include "models/dataset.h"
#include "models/distribution.h"

namespace prepare {

struct Classification {
  bool abnormal = false;
  /// Log-odds score of Eq. (1): prior term + sum of impacts. > 0 means
  /// abnormal. Strongly typed — reads out as double, but can only be
  /// (re)built explicitly from a log-odds computation.
  LogOdds score;
  /// Per-attribute impact strengths L_i (Eq. 2), each itself a
  /// log-odds; kept as raw doubles because they flow straight into
  /// expectation/sort arithmetic.
  std::vector<double> impacts;
};

class Classifier {
 public:
  virtual ~Classifier() = default;

  virtual void train(const LabeledDataset& data) = 0;
  virtual bool trained() const = 0;

  /// Classifies a concrete discretized sample.
  virtual Classification classify(
      const std::vector<std::size_t>& row) const = 0;

  /// Classifies a *predicted* sample given per-attribute value
  /// distributions (assumed independent): each L_i is replaced by its
  /// expectation under the predicted distributions. This is how the
  /// anomaly predictor performs "classification over future data".
  virtual Classification classify_expected(
      const std::vector<Distribution>& dists) const = 0;

  /// Attribute indices sorted by impact, most anomaly-relevant first.
  static std::vector<std::size_t> ranked_attributes(const Classification& c);
};

}  // namespace prepare
