// Anomaly classifier interface (normal vs. abnormal) with per-attribute
// impact attribution.
//
// The score is the log-odds of Eq. (1) in the paper: a sum of one term
// per attribute (L_i, Eq. (2)) plus the class-prior term; a positive sum
// classifies the state as abnormal, and larger L_i means attribute i is
// more relevant to the predicted anomaly (Fig. 3).
#pragma once

#include <cstddef>
#include <vector>

#include "common/analyze_annotations.h"
#include "common/units.h"
#include "models/dataset.h"
#include "models/distribution.h"

namespace prepare {

struct Classification {
  bool abnormal = false;
  /// Log-odds score of Eq. (1): prior term + sum of impacts. > 0 means
  /// abnormal. Strongly typed — reads out as double, but can only be
  /// (re)built explicitly from a log-odds computation.
  LogOdds score;
  /// Per-attribute impact strengths L_i (Eq. 2), each itself a
  /// log-odds; kept as raw doubles because they flow straight into
  /// expectation/sort arithmetic.
  std::vector<double> impacts;
};

class Classifier {
 public:
  /// Aggregate CPT statistics for model introspection
  /// (obs/model_introspect.h): how much raw evidence backs the weakest
  /// conditional-probability cell and how spread the precomputed
  /// log-odds impact tables are. A support_min near zero flags a
  /// classifier running on smoothing alone.
  struct CptStats {
    double support_min = 0.0;      ///< min raw count over CPT cells
    double support_mean = 0.0;     ///< mean raw count over CPT cells
    double log_odds_spread = 0.0;  ///< max - min over impact cells
  };

  virtual ~Classifier() = default;

  virtual void train(const LabeledDataset& data) = 0;
  virtual bool trained() const = 0;

  /// Classifies a concrete discretized sample.
  virtual Classification classify(
      const std::vector<std::size_t>& row) const = 0;

  /// Same result as classify(), written into `out` (non-null) so the
  /// per-tick caller can reuse one impact vector instead of allocating a
  /// fresh Classification every round. The default forwards to
  /// classify(); the Bayesian classifiers override it allocation-free
  /// (out->impacts only grows on the first call) — that override is the
  /// steady-state classification path the analyzer proves hot-clean.
  virtual void classify_into(const std::vector<std::size_t>& row,
                             Classification* out) const {
    *out = classify(row);
  }

  /// Classifies a *predicted* sample given per-attribute value
  /// distributions (assumed independent): each L_i is replaced by its
  /// expectation under the predicted distributions. This is how the
  /// anomaly predictor performs "classification over future data".
  virtual Classification classify_expected(
      const std::vector<Distribution>& dists) const = 0;

  /// Same result as classify_expected(), written into `out` (non-null).
  /// The default forwards to classify_expected(); the backends override
  /// it allocation-free for the same reason as classify_into() — it is
  /// the expected-mode arm of the per-tick prediction path.
  virtual void classify_expected_into(const std::vector<Distribution>& dists,
                                      Classification* out) const {
    *out = classify_expected(dists);
  }

  /// Log-odds score alone (Eq. 1), without the per-attribute impact
  /// vector. The default forwards to classify(); the Bayesian
  /// classifiers override it allocation-free so the per-horizon
  /// calibration sweep can score every look-ahead step cheaply.
  virtual LogOdds score(const std::vector<std::size_t>& row) const {
    return classify(row).score;
  }

  /// CPT introspection snapshot. The default (classifiers without
  /// conditional-probability tables) reports an empty statistic.
  virtual CptStats cpt_stats() const { return CptStats(); }

  /// Whether the score decomposes exactly as prior_log_odds() plus the
  /// per-attribute impacts, accumulated left to right in attribute
  /// order. The Bayesian backends (Eq. 1) satisfy this bit-for-bit —
  /// the flight-recorder replay (core/replay.h) relies on it to prove a
  /// captured episode bundle is complete. The outlier backend scores
  /// against a learned threshold instead and reports false.
  virtual bool score_decomposable() const { return false; }

  /// The class-prior log-odds term of Eq. (1) — the value the impact
  /// sum starts from. Only meaningful when score_decomposable().
  virtual LogOdds prior_log_odds() const { return LogOdds{0.0}; }

  /// Attribute indices sorted by impact, most anomaly-relevant first.
  static std::vector<std::size_t> ranked_attributes(const Classification& c);
};

}  // namespace prepare
