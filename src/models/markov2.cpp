#include "models/markov2.h"

#include <algorithm>

#include "common/check.h"

namespace prepare {

TwoDependentMarkov::TwoDependentMarkov(std::size_t alphabet, double alpha)
    : alphabet_(alphabet),
      alpha_(alpha),
      counts_(alphabet * alphabet * alphabet, 0.0) {
  PREPARE_CHECK(alphabet >= 2);
  PREPARE_CHECK(alpha > 0.0);
}

void TwoDependentMarkov::train(const std::vector<std::size_t>& sequence) {
  std::fill(counts_.begin(), counts_.end(), 0.0);
  seen_ = 0;
  for (std::size_t s : sequence) observe(BinIndex{s}, /*learn=*/true);
}

void TwoDependentMarkov::observe(BinIndex symbol, bool learn) {
  const std::size_t s = symbol.value();
  PREPARE_CHECK(s < alphabet_);
  if (seen_ >= 2 && learn)
    counts_[pair_index(prev_, cur_) * alphabet_ + s] += 1.0;
  prev_ = cur_;
  cur_ = s;
  if (seen_ < 2) ++seen_;
}

Probability TwoDependentMarkov::transition(BinIndex prev, BinIndex cur,
                                           BinIndex next) const {
  PREPARE_CHECK(prev.value() < alphabet_ && cur.value() < alphabet_ &&
                next.value() < alphabet_);
  const std::size_t base = pair_index(prev.value(), cur.value()) * alphabet_;
  double row_total = 0.0;
  for (std::size_t j = 0; j < alphabet_; ++j) row_total += counts_[base + j];
  return Probability{(counts_[base + next.value()] + alpha_) /
                     (row_total + alpha_ * static_cast<double>(alphabet_))};
}

Distribution TwoDependentMarkov::predict(TickIndex steps) const {
  PREPARE_CHECK_MSG(ready(), "predict() needs at least two observations");
  PREPARE_CHECK(steps.value() >= 1);
  const std::size_t pairs = alphabet_ * alphabet_;
  std::vector<double> v(pairs, 0.0);
  v[pair_index(prev_, cur_)] = 1.0;
  std::vector<double> next(pairs, 0.0);
  for (std::size_t s = 0; s < steps.value(); ++s) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t a = 0; a < alphabet_; ++a) {
      for (std::size_t b = 0; b < alphabet_; ++b) {
        const double mass = v[pair_index(a, b)];
        if (mass <= 0.0) continue;
        for (std::size_t c = 0; c < alphabet_; ++c)
          next[pair_index(b, c)] +=
              mass * transition(BinIndex{a}, BinIndex{b}, BinIndex{c});
      }
    }
    std::swap(v, next);
#if PREPARE_DCHECK_IS_ON
    // Each transition row sums to 1, so propagation conserves mass.
    double mass = 0.0;
    for (double x : v) mass += x;
    PREPARE_DCHECK_NEAR(mass, 1.0, 1e-6)
        << "pair-state mass leaked after step " << s + 1;
#endif
  }
  // Marginalize the pair distribution onto the current value.
  Distribution d(alphabet_);
  for (std::size_t a = 0; a < alphabet_; ++a)
    for (std::size_t b = 0; b < alphabet_; ++b)
      d[b] += v[pair_index(a, b)];
  d.normalize();
  PREPARE_DCHECK(d.is_normalized(1e-9)) << "predict() output not a distribution";
  return d;
}

}  // namespace prepare
