#include "models/markov2.h"

#include <algorithm>

#include "common/check.h"
#include "models/markov_stats.h"

namespace prepare {

TwoDependentMarkov::TwoDependentMarkov(std::size_t alphabet, double alpha)
    : alphabet_(alphabet),
      alpha_(alpha),
      counts_(alphabet * alphabet * alphabet, 0.0),
      probs_(alphabet * alphabet * alphabet, 0.0),
      scratch_v_(alphabet * alphabet, 0.0),
      scratch_next_(alphabet * alphabet, 0.0) {
  PREPARE_CHECK(alphabet >= 2);
  PREPARE_CHECK(alpha > 0.0);
  for (std::size_t p = 0; p < alphabet_ * alphabet_; ++p) rebuild_row(p);
}

void TwoDependentMarkov::rebuild_row(std::size_t pair) {
  // Same expression transition() historically evaluated per call, so
  // cached rows are bit-identical to the on-the-fly probabilities.
  const std::size_t base = pair * alphabet_;
  double row_total = 0.0;
  for (std::size_t j = 0; j < alphabet_; ++j) row_total += counts_[base + j];
  const double denom = row_total + alpha_ * static_cast<double>(alphabet_);
  for (std::size_t j = 0; j < alphabet_; ++j)
    probs_[base + j] = (counts_[base + j] + alpha_) / denom;
}

void TwoDependentMarkov::train(const std::vector<std::size_t>& sequence) {
  std::fill(counts_.begin(), counts_.end(), 0.0);
  for (std::size_t p = 0; p < alphabet_ * alphabet_; ++p) rebuild_row(p);
  seen_ = 0;
  for (std::size_t s : sequence) observe(BinIndex{s}, /*learn=*/true);
}

void TwoDependentMarkov::observe(BinIndex symbol, bool learn) {
  const std::size_t s = symbol.value();
  PREPARE_CHECK(s < alphabet_);
  if (seen_ >= 2 && learn) {
    const std::size_t pair = pair_index(prev_, cur_);
    counts_[pair * alphabet_ + s] += 1.0;
    rebuild_row(pair);
  }
  prev_ = cur_;
  cur_ = s;
  if (seen_ < 2) ++seen_;
}

Probability TwoDependentMarkov::transition(BinIndex prev, BinIndex cur,
                                           BinIndex next) const {
  PREPARE_CHECK(prev.value() < alphabet_ && cur.value() < alphabet_ &&
                next.value() < alphabet_);
  return Probability{probs_[pair_index(prev.value(), cur.value()) * alphabet_ +
                            next.value()]};
}

Distribution TwoDependentMarkov::predict(TickIndex steps) const {
  Distribution d;
  predict_into(steps, &d);
  return d;
}

void TwoDependentMarkov::predict_into(TickIndex steps,
                                      Distribution* out) const {
  PREPARE_CHECK_MSG(ready(), "predict() needs at least two observations");
  PREPARE_CHECK(steps.value() >= 1);
  PREPARE_CHECK(out != nullptr);
  // Constructor-sized scratch, refilled in place: no allocation per tick.
  auto& v = scratch_v_;
  auto& next = scratch_next_;
  std::fill(v.begin(), v.end(), 0.0);
  v[pair_index(prev_, cur_)] = 1.0;
  for (std::size_t s = 0; s < steps.value(); ++s) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t a = 0; a < alphabet_; ++a) {
      for (std::size_t b = 0; b < alphabet_; ++b) {
        const double mass = v[pair_index(a, b)];
        if (mass <= 0.0) continue;
        // Each step maps (a, b) -> (b, c) with the cached P(c | a, b)
        // row; the destination pairs (b, ·) are contiguous.
        const std::size_t src = pair_index(a, b) * alphabet_;
        const std::size_t dst = pair_index(b, 0);
        for (std::size_t c = 0; c < alphabet_; ++c)
          next[dst + c] += mass * probs_[src + c];
      }
    }
    std::swap(v, next);
#if PREPARE_DCHECK_IS_ON
    // Each transition row sums to 1, so propagation conserves mass.
    double mass = 0.0;
    for (double x : v) mass += x;
    PREPARE_DCHECK_NEAR(mass, 1.0, 1e-6)
        << "pair-state mass leaked after step " << s + 1;
#endif
  }
  // Marginalize the pair distribution onto the current value.
  out->assign_zero(alphabet_);
  for (std::size_t a = 0; a < alphabet_; ++a)
    for (std::size_t b = 0; b < alphabet_; ++b)
      (*out)[b] += v[pair_index(a, b)];
  out->normalize();
  PREPARE_DCHECK(out->is_normalized(1e-9))
      << "predict() output not a distribution";
}

void TwoDependentMarkov::predict_path_into(
    TickIndex steps, std::vector<Distribution>* out) const {
  PREPARE_CHECK_MSG(ready(), "predict() needs at least two observations");
  PREPARE_CHECK(steps.value() >= 1);
  PREPARE_CHECK(out != nullptr);
  // prepare-analyze: allow(hot-alloc): capacity-steady — horizon fixed
  out->resize(steps.value());
  auto& v = scratch_v_;
  auto& next = scratch_next_;
  std::fill(v.begin(), v.end(), 0.0);
  v[pair_index(prev_, cur_)] = 1.0;
  for (std::size_t s = 0; s < steps.value(); ++s) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t a = 0; a < alphabet_; ++a) {
      for (std::size_t b = 0; b < alphabet_; ++b) {
        const double mass = v[pair_index(a, b)];
        if (mass <= 0.0) continue;
        const std::size_t src = pair_index(a, b) * alphabet_;
        const std::size_t dst = pair_index(b, 0);
        for (std::size_t c = 0; c < alphabet_; ++c)
          next[dst + c] += mass * probs_[src + c];
      }
    }
    std::swap(v, next);
    // Same marginalization predict_into() performs on its final pair
    // distribution, evaluated after every step — element s is
    // bit-identical to predict_into(s + 1).
    Distribution& d = (*out)[s];
    d.assign_zero(alphabet_);
    for (std::size_t a = 0; a < alphabet_; ++a)
      for (std::size_t b = 0; b < alphabet_; ++b)
        d[b] += v[pair_index(a, b)];
    d.normalize();
    PREPARE_DCHECK(d.is_normalized(1e-9))
        << "predict_path() output not a distribution at step " << s + 1;
  }
}

ValuePredictor::RowStats TwoDependentMarkov::row_stats() const {
  return markov_detail::row_stats_over(counts_, probs_,
                                       alphabet_ * alphabet_, alphabet_);
}

}  // namespace prepare
