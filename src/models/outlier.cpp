#include "models/outlier.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/stats.h"

namespace prepare {

OutlierClassifier::OutlierClassifier(double threshold_quantile, double alpha,
                                     double threshold_margin)
    : threshold_quantile_(threshold_quantile),
      alpha_(alpha),
      threshold_margin_(threshold_margin) {
  PREPARE_CHECK(threshold_quantile > 0.0 && threshold_quantile <= 1.0);
  PREPARE_CHECK(alpha > 0.0);
  PREPARE_CHECK(threshold_margin >= 1.0);
}

void OutlierClassifier::learn_structure(const LabeledDataset& data) {
  const std::size_t n = data.attributes();
  // Pairwise (unconditional) mutual information.
  std::vector<std::vector<double>> mi(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const std::size_t ki = alphabet_[i], kj = alphabet_[j];
      std::vector<double> joint(ki * kj, alpha_);
      std::vector<double> margin_i(ki, alpha_ * static_cast<double>(kj));
      std::vector<double> margin_j(kj, alpha_ * static_cast<double>(ki));
      double total = alpha_ * static_cast<double>(ki * kj);
      for (const auto& row : data.rows) {
        joint[row[i] * kj + row[j]] += 1.0;
        margin_i[row[i]] += 1.0;
        margin_j[row[j]] += 1.0;
        total += 1.0;
      }
      double info = 0.0;
      for (std::size_t vi = 0; vi < ki; ++vi)
        for (std::size_t vj = 0; vj < kj; ++vj) {
          const double p = joint[vi * kj + vj] / total;
          if (p > 0.0)
            info += p * std::log(p / (margin_i[vi] / total *
                                      (margin_j[vj] / total)));
        }
      mi[i][j] = mi[j][i] = std::max(0.0, info);
    }
  }
  // Maximum spanning tree (Prim) rooted at attribute 0.
  parents_.assign(n, kNoParent);
  if (n == 1) return;
  std::vector<bool> in_tree(n, false);
  std::vector<double> best_weight(n, -1.0);
  std::vector<std::size_t> best_from(n, kNoParent);
  in_tree[0] = true;
  for (std::size_t j = 1; j < n; ++j) {
    best_weight[j] = mi[0][j];
    best_from[j] = 0;
  }
  for (std::size_t added = 1; added < n; ++added) {
    std::size_t pick = kNoParent;
    double best = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < n; ++j) {
      if (in_tree[j]) continue;
      if (best_weight[j] > best) {
        best = best_weight[j];
        pick = j;
      }
    }
    in_tree[pick] = true;
    parents_[pick] = best_from[pick];
    for (std::size_t j = 0; j < n; ++j) {
      if (in_tree[j]) continue;
      if (mi[pick][j] > best_weight[j]) {
        best_weight[j] = mi[pick][j];
        best_from[j] = pick;
      }
    }
  }
}

void OutlierClassifier::learn_tables(const LabeledDataset& data) {
  const std::size_t n = data.attributes();
  table_.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t rows =
        parents_[i] == kNoParent ? 1 : alphabet_[parents_[i]];
    table_[i].assign(rows * alphabet_[i], 0.0);
  }
  for (const auto& row : data.rows) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t pv = parents_[i] == kNoParent ? 0 : row[parents_[i]];
      table_[i][pv * alphabet_[i] + row[i]] += 1.0;
    }
  }
}

void OutlierClassifier::train(const LabeledDataset& data) {
  PREPARE_CHECK_MSG(!data.rows.empty(), "empty training set");
  PREPARE_CHECK(data.attributes() >= 1);
  alphabet_ = data.alphabet;
  learn_structure(data);
  learn_tables(data);
  trained_ = true;

  // Baselines and decision threshold from the training data itself.
  const std::size_t n = data.attributes();
  baseline_.assign(n, 0.0);
  std::vector<double> surprisals;
  surprisals.reserve(data.rows.size());
  for (const auto& row : data.rows) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t pv = parents_[i] == kNoParent ? 0 : row[parents_[i]];
      const double s = local_surprisal(i, row[i], pv);
      baseline_[i] += s;
      total += s;
    }
    surprisals.push_back(total);
  }
  for (double& b : baseline_) b /= static_cast<double>(data.rows.size());
  threshold_ = percentile_of(surprisals, threshold_quantile_ * 100.0) *
               threshold_margin_;
}

double OutlierClassifier::local_surprisal(std::size_t attribute,
                                          std::size_t value,
                                          std::size_t parent_value) const {
  PREPARE_CHECK(trained_);
  PREPARE_CHECK(attribute < alphabet_.size());
  PREPARE_CHECK(value < alphabet_[attribute]);
  const std::size_t k = alphabet_[attribute];
  const std::size_t pv =
      parents_[attribute] == kNoParent ? 0 : parent_value;
  const auto& table = table_[attribute];
  const std::size_t base = pv * k;
  double row_total = 0.0;
  for (std::size_t v = 0; v < k; ++v) row_total += table[base + v];
  const double p = (table[base + value] + alpha_) /
                   (row_total + alpha_ * static_cast<double>(k));
  return -std::log(p);
}

double OutlierClassifier::surprisal(
    const std::vector<std::size_t>& row) const {
  PREPARE_CHECK(trained_);
  PREPARE_CHECK(row.size() == alphabet_.size());
  double total = 0.0;
  for (std::size_t i = 0; i < row.size(); ++i) {
    const std::size_t pv = parents_[i] == kNoParent ? 0 : row[parents_[i]];
    total += local_surprisal(i, row[i], pv);
  }
  return total;
}

Classification OutlierClassifier::classify(
    const std::vector<std::size_t>& row) const {
  Classification out;
  classify_into(row, &out);
  return out;
}

void OutlierClassifier::classify_into(const std::vector<std::size_t>& row,
                                      Classification* out) const {
  PREPARE_CHECK(trained_);
  PREPARE_CHECK(row.size() == alphabet_.size());
  PREPARE_CHECK(out != nullptr);
  // prepare-analyze: allow(hot-alloc): capacity-steady impacts reuse
  out->impacts.resize(row.size());
  double total = 0.0;
  for (std::size_t i = 0; i < row.size(); ++i) {
    const std::size_t pv = parents_[i] == kNoParent ? 0 : row[parents_[i]];
    const double s = local_surprisal(i, row[i], pv);
    out->impacts[i] = s - baseline_[i];
    total += s;
  }
  out->score = LogOdds{total - threshold_};
  out->abnormal = out->score > 0.0;
}

Classification OutlierClassifier::classify_expected(
    const std::vector<Distribution>& dists) const {
  Classification out;
  classify_expected_into(dists, &out);
  return out;
}

void OutlierClassifier::classify_expected_into(
    const std::vector<Distribution>& dists, Classification* out) const {
  PREPARE_CHECK(trained_);
  PREPARE_CHECK(dists.size() == alphabet_.size());
  PREPARE_CHECK(out != nullptr);
  // prepare-analyze: allow(hot-alloc): capacity-steady impacts reuse
  out->impacts.resize(dists.size());
  double total = 0.0;
  for (std::size_t i = 0; i < dists.size(); ++i) {
    PREPARE_CHECK(dists[i].size() == alphabet_[i]);
    const std::size_t pv =
        parents_[i] == kNoParent ? 0 : dists[parents_[i]].mode();
    double expected = 0.0;
    for (std::size_t v = 0; v < alphabet_[i]; ++v)
      if (dists[i][v] > 0.0)
        expected += dists[i][v] * local_surprisal(i, v, pv);
    out->impacts[i] = expected - baseline_[i];
    total += expected;
  }
  out->score = LogOdds{total - threshold_};
  out->abnormal = out->score > 0.0;
}

}  // namespace prepare
