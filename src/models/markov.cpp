#include "models/markov.h"

#include <algorithm>

#include "common/check.h"
#include "models/markov_stats.h"

namespace prepare {

MarkovChain::MarkovChain(std::size_t alphabet, double alpha)
    : alphabet_(alphabet),
      alpha_(alpha),
      counts_(alphabet * alphabet, 0.0),
      probs_(alphabet * alphabet, 0.0),
      scratch_v_(alphabet, 0.0),
      scratch_next_(alphabet, 0.0) {
  PREPARE_CHECK(alphabet >= 2);
  PREPARE_CHECK(alpha > 0.0);
  for (std::size_t i = 0; i < alphabet_; ++i) rebuild_row(i);
}

void MarkovChain::rebuild_row(std::size_t from) {
  // Same expression transition() historically evaluated per call:
  // (count + alpha) / (row_total + alpha * alphabet), so cached rows are
  // bit-identical to the on-the-fly probabilities.
  const std::size_t base = from * alphabet_;
  double row_total = 0.0;
  for (std::size_t j = 0; j < alphabet_; ++j) row_total += counts_[base + j];
  const double denom = row_total + alpha_ * static_cast<double>(alphabet_);
  for (std::size_t j = 0; j < alphabet_; ++j)
    probs_[base + j] = (counts_[base + j] + alpha_) / denom;
}

void MarkovChain::train(const std::vector<std::size_t>& sequence) {
  std::fill(counts_.begin(), counts_.end(), 0.0);
  for (std::size_t i = 0; i < alphabet_; ++i) rebuild_row(i);
  has_context_ = false;
  for (std::size_t s : sequence) observe(BinIndex{s}, /*learn=*/true);
}

void MarkovChain::observe(BinIndex symbol, bool learn) {
  const std::size_t s = symbol.value();
  PREPARE_CHECK(s < alphabet_);
  if (has_context_ && learn) {
    counts_[context_ * alphabet_ + s] += 1.0;
    rebuild_row(context_);
  }
  context_ = s;
  has_context_ = true;
}

Probability MarkovChain::transition(BinIndex from, BinIndex to) const {
  PREPARE_CHECK(from.value() < alphabet_ && to.value() < alphabet_);
  return Probability{probs_[from.value() * alphabet_ + to.value()]};
}

Distribution MarkovChain::predict(TickIndex steps) const {
  Distribution d;
  predict_into(steps, &d);
  return d;
}

void MarkovChain::predict_into(TickIndex steps, Distribution* out) const {
  PREPARE_CHECK_MSG(has_context_, "predict() before any observation");
  PREPARE_CHECK(steps.value() >= 1);
  PREPARE_CHECK(out != nullptr);
  // Constructor-sized scratch, refilled in place: no allocation per tick.
  auto& v = scratch_v_;
  auto& next = scratch_next_;
  std::fill(v.begin(), v.end(), 0.0);
  v[context_] = 1.0;
  for (std::size_t s = 0; s < steps.value(); ++s) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t i = 0; i < alphabet_; ++i) {
      if (v[i] <= 0.0) continue;
      const std::size_t base = i * alphabet_;
      for (std::size_t j = 0; j < alphabet_; ++j)
        next[j] += v[i] * probs_[base + j];
    }
    std::swap(v, next);
  }
  out->assign_zero(alphabet_);
  for (std::size_t j = 0; j < alphabet_; ++j) (*out)[j] = v[j];
  out->normalize();
  PREPARE_DCHECK(out->is_normalized(1e-9))
      << "predict() output not a distribution";
}

void MarkovChain::predict_path_into(TickIndex steps,
                                    std::vector<Distribution>* out) const {
  PREPARE_CHECK_MSG(has_context_, "predict() before any observation");
  PREPARE_CHECK(steps.value() >= 1);
  PREPARE_CHECK(out != nullptr);
  // prepare-analyze: allow(hot-alloc): capacity-steady — horizon fixed
  out->resize(steps.value());
  auto& v = scratch_v_;
  auto& next = scratch_next_;
  std::fill(v.begin(), v.end(), 0.0);
  v[context_] = 1.0;
  for (std::size_t s = 0; s < steps.value(); ++s) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t i = 0; i < alphabet_; ++i) {
      if (v[i] <= 0.0) continue;
      const std::size_t base = i * alphabet_;
      for (std::size_t j = 0; j < alphabet_; ++j)
        next[j] += v[i] * probs_[base + j];
    }
    std::swap(v, next);
    // Same marginalization predict_into() performs on its final state
    // vector, evaluated after every step — element s is bit-identical
    // to predict_into(s + 1).
    Distribution& d = (*out)[s];
    d.assign_zero(alphabet_);
    for (std::size_t j = 0; j < alphabet_; ++j) d[j] = v[j];
    d.normalize();
    PREPARE_DCHECK(d.is_normalized(1e-9))
        << "predict_path() output not a distribution at step " << s + 1;
  }
}

ValuePredictor::RowStats MarkovChain::row_stats() const {
  return markov_detail::row_stats_over(counts_, probs_, alphabet_, alphabet_);
}

}  // namespace prepare
