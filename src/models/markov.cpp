#include "models/markov.h"

#include <algorithm>

#include "common/check.h"

namespace prepare {

MarkovChain::MarkovChain(std::size_t alphabet, double alpha)
    : alphabet_(alphabet), alpha_(alpha), counts_(alphabet * alphabet, 0.0) {
  PREPARE_CHECK(alphabet >= 2);
  PREPARE_CHECK(alpha > 0.0);
}

void MarkovChain::train(const std::vector<std::size_t>& sequence) {
  std::fill(counts_.begin(), counts_.end(), 0.0);
  has_context_ = false;
  for (std::size_t s : sequence) observe(BinIndex{s}, /*learn=*/true);
}

void MarkovChain::observe(BinIndex symbol, bool learn) {
  const std::size_t s = symbol.value();
  PREPARE_CHECK(s < alphabet_);
  if (has_context_ && learn) counts_[context_ * alphabet_ + s] += 1.0;
  context_ = s;
  has_context_ = true;
}

Probability MarkovChain::transition(BinIndex from, BinIndex to) const {
  PREPARE_CHECK(from.value() < alphabet_ && to.value() < alphabet_);
  double row_total = 0.0;
  for (std::size_t j = 0; j < alphabet_; ++j)
    row_total += counts_[from.value() * alphabet_ + j];
  return Probability{(counts_[from.value() * alphabet_ + to.value()] + alpha_) /
                     (row_total + alpha_ * static_cast<double>(alphabet_))};
}

Distribution MarkovChain::predict(TickIndex steps) const {
  PREPARE_CHECK_MSG(has_context_, "predict() before any observation");
  PREPARE_CHECK(steps.value() >= 1);
  std::vector<double> v(alphabet_, 0.0);
  v[context_] = 1.0;
  std::vector<double> next(alphabet_, 0.0);
  for (std::size_t s = 0; s < steps.value(); ++s) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t i = 0; i < alphabet_; ++i) {
      if (v[i] <= 0.0) continue;
      for (std::size_t j = 0; j < alphabet_; ++j)
        next[j] += v[i] * transition(BinIndex{i}, BinIndex{j});
    }
    std::swap(v, next);
  }
  Distribution d(std::move(v));
  d.normalize();
  PREPARE_DCHECK(d.is_normalized(1e-9)) << "predict() output not a distribution";
  return d;
}

}  // namespace prepare
