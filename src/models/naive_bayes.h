// Naive Bayes anomaly classifier — the baseline from the authors' earlier
// ALERT work [10]. Kept for the TAN-vs-NB ablation: the paper adopts TAN
// because naive Bayes "cannot provide the metric attribution information
// accurately" (Section II-B).
#pragma once

#include <array>
#include <vector>

#include "common/analyze_annotations.h"
#include "models/classifier.h"

namespace prepare {

class NaiveBayesClassifier : public Classifier {
 public:
  explicit NaiveBayesClassifier(double alpha = 1.0);

  void train(const LabeledDataset& data) override;
  bool trained() const override { return trained_; }
  Classification classify(const std::vector<std::size_t>& row) const override;
  PREPARE_HOT void classify_into(const std::vector<std::size_t>& row,
                                 Classification* out) const override;
  Classification classify_expected(
      const std::vector<Distribution>& dists) const override;
  PREPARE_HOT void classify_expected_into(const std::vector<Distribution>& dists,
                                          Classification* out) const override;
  PREPARE_HOT LogOdds score(const std::vector<std::size_t>& row) const override;
  CptStats cpt_stats() const override;
  bool score_decomposable() const override { return true; }
  LogOdds prior_log_odds() const override { return LogOdds{log_prior_odds_}; }

  /// Smoothed P(attribute i = v | class c).
  Probability likelihood(std::size_t attribute, BinIndex value,
                         bool abnormal) const;
  /// Smoothed class prior P(abnormal = c).
  Probability prior(bool abnormal) const;

 private:
  void build_impact_tables();
  double log_impact(std::size_t attribute, std::size_t value) const {
    return impact_table_[attribute][value];
  }

  double alpha_;
  bool trained_ = false;
  std::vector<std::size_t> alphabet_;
  /// counts_[c][i][v]
  std::array<std::vector<std::vector<double>>, 2> counts_;
  std::array<double, 2> class_counts_ = {0.0, 0.0};

  /// Precomputed log-likelihood-ratio tables (see TanClassifier): the
  /// classify path is pure table lookups, and cells that would underflow
  /// as a probability ratio are built as log-count differences instead.
  std::vector<std::vector<double>> impact_table_;
  double log_prior_odds_ = 0.0;
};

}  // namespace prepare
