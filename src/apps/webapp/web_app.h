// RUBiS-like three-tier online auction application (paper Fig. 5):
//
//   clients --> Web server (VM1) --> App server 1 (VM2) --+--> DB (VM4)
//                                \-> App server 2 (VM3) --/
//
// Each tier is a fluid queue whose service rate is (granted CPU x
// efficiency) / cpu-per-request. Requests traverse web -> one app server
// (round-robin) -> database; the end-to-end response time is the sum of
// the per-tier residence times. The database is provisioned as the
// bottleneck tier (highest per-request cost relative to its allocation),
// matching the paper's bottleneck fault, and its disk-read traffic rises
// under memory pressure (shrinking buffer cache), which is the metric
// signature of the memory-leak fault.
//
// SLO (paper Section III-A): violated when the average request response
// time exceeds 200 ms.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "apps/application.h"
#include "workload/workload.h"

namespace prepare {

struct WebAppConfig {
  double max_response_time_s = 0.200;  ///< SLO threshold (paper value)
  /// Requests issued to the DB per application-level request.
  double db_queries_per_request = 1.5;
  /// Rate-smoothing factor for the reported response time.
  double response_smoothing = 0.30;
  /// DB buffer-cache model: disk reads/s per query at full cache
  /// pressure vs. warm cache.
  double db_disk_read_warm_kbps = 40.0;
  double db_disk_read_cold_kbps = 900.0;
  /// Bounded per-tier request queue: requests beyond this are rejected
  /// (connection limits), bounding queue memory and recovery time.
  double max_backlog_requests = 600.0;
};

class WebApp : public Application {
 public:
  struct TierSpec {
    std::string name;
    double cpu_per_request_us = 500.0;  ///< core-microseconds per request
    double base_mem_mb = 256.0;
    double mem_per_request_mb = 0.02;   ///< session state per queued req
    double bytes_per_request = 4096.0;  ///< for net metrics
  };

  using Config = WebAppConfig;

  /// VMs in order: web, app1, app2, db.
  WebApp(std::vector<Vm*> vms, const Workload* workload, Config config = Config());

  static std::vector<TierSpec> default_specs();

  void step(double now, double dt) override;
  bool slo_violated() const override;
  double slo_metric() const override { return response_time_; }
  std::string slo_metric_name() const override { return "response_time_s"; }
  std::vector<Vm*> vms() const override { return vms_; }
  double offered_rate() const override { return offered_rate_; }

  // --- inspection for tests and traces ---
  double response_time() const { return response_time_; }
  double backlog_of(std::size_t tier_index) const;
  std::size_t tier_count() const { return tiers_.size(); }

 private:
  struct Tier {
    TierSpec spec;
    Vm* vm = nullptr;
    double backlog = 0.0;         // queued requests
    double residence_s = 0.0;     // current per-request residence time
    double last_efficiency = 1.0; // previous tick's VM efficiency
  };

  /// Advances one tier's fluid queue; returns the request rate it passes
  /// downstream this tick.
  double step_tier(Tier& tier, double arrival_rate, double dt);

  Config config_;
  std::vector<Vm*> vms_;
  const Workload* workload_;
  std::vector<Tier> tiers_;  // web, app1, app2, db

  double offered_rate_ = 0.0;
  double response_time_ = 0.0;
  bool violated_ = false;
};

}  // namespace prepare
