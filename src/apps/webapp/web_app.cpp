#include "apps/webapp/web_app.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

// Driver-thread confined (see apps/application.h): all tier state is
// plain members with no locks or atomics, which is correct exactly as
// long as step()/accessors stay on the simulation thread.

namespace prepare {

namespace {
constexpr std::size_t kWeb = 0, kApp1 = 1, kApp2 = 2, kDb = 3;
constexpr double kMicro = 1e-6;
}  // namespace

std::vector<WebApp::TierSpec> WebApp::default_specs() {
  // At 1-core allocations and a nominal 60 req/s offered load the web
  // tier runs near 12%, each app server near 24%, and the DB near 45%
  // utilization (1.5 queries/request x 5 ms/query): the DB saturates
  // first under the bottleneck ramp, as in the paper.
  return {
      {"web", 2000.0, 300.0, 0.01, 8192.0},
      {"app1", 8000.0, 420.0, 0.03, 4096.0},
      {"app2", 8000.0, 420.0, 0.03, 4096.0},
      {"db", 5000.0, 640.0, 0.02, 2048.0},
  };
}

WebApp::WebApp(std::vector<Vm*> vms, const Workload* workload, Config config)
    : config_(config), vms_(std::move(vms)), workload_(workload) {
  PREPARE_CHECK(workload_ != nullptr);
  PREPARE_CHECK_MSG(vms_.size() == 4,
                    "WebApp needs exactly 4 VMs (web, app1, app2, db)");
  const auto specs = default_specs();
  tiers_.resize(4);
  for (std::size_t i = 0; i < 4; ++i) {
    PREPARE_CHECK(vms_[i] != nullptr);
    tiers_[i].spec = specs[i];
    tiers_[i].vm = vms_[i];
    // Servlet/query thread pools: each tier can keep ~6 workers
    // runnable, so it defends a bigger fair share against a CPU hog
    // than a single-threaded PE would.
    vms_[i]->set_app_parallelism(6.0);
  }
}

double WebApp::step_tier(Tier& tier, double arrival_rate, double dt) {
  Vm& vm = *tier.vm;
  const double cpu_per_req = tier.spec.cpu_per_request_us * kMicro;

  // Demand compensates for degraded efficiency (paging, migration): the
  // same work burns more CPU when the tier is thrashing.
  const double work_rate = tier.backlog / dt + arrival_rate;
  vm.set_app_cpu_demand(std::min(
      work_rate * cpu_per_req / std::max(0.7, tier.last_efficiency), 8.0));
  vm.set_app_mem_demand(tier.spec.base_mem_mb +
                        tier.backlog * tier.spec.mem_per_request_mb);
  vm.finalize_tick(Seconds{dt});

  tier.last_efficiency = vm.efficiency();
  const double capacity =
      vm.app_cpu_granted() * vm.efficiency() / cpu_per_req;  // req/s
  const double available = tier.backlog + arrival_rate * dt;
  const double served = std::min(available, capacity * dt);
  // Finite accept queue: overflow requests are rejected at the listener.
  tier.backlog = std::min(available - served, config_.max_backlog_requests);
  // Queueing delay behind the backlog plus the request's own service time.
  const double service_s = cpu_per_req / std::max(0.05, vm.efficiency());
  tier.residence_s =
      (capacity > 0.0 ? tier.backlog / capacity : 2.0) + service_s;

  vm.set_net_in(arrival_rate * tier.spec.bytes_per_request / 1024.0);
  vm.set_net_out(served / dt * tier.spec.bytes_per_request / 1024.0);
  return served / dt;
}

void WebApp::step(double now, double dt) {
  PREPARE_CHECK(dt > 0.0);
  offered_rate_ = workload_->rate(now);

  // Web tier sees the full request stream.
  const double web_out = step_tier(tiers_[kWeb], offered_rate_, dt);
  // Round-robin across the two application servers.
  const double app1_out = step_tier(tiers_[kApp1], web_out / 2.0, dt);
  const double app2_out = step_tier(tiers_[kApp2], web_out / 2.0, dt);
  // Both app servers issue queries against the single database.
  const double db_arrivals =
      (app1_out + app2_out) * config_.db_queries_per_request;
  step_tier(tiers_[kDb], db_arrivals, dt);

  // Database disk traffic: rises as memory pressure shrinks the buffer
  // cache (the leak's signature on disk metrics).
  Vm& db = *tiers_[kDb].vm;
  const double cache_health = db.efficiency();  // 1 warm .. ~0.2 thrashing
  const double per_query_read =
      config_.db_disk_read_warm_kbps +
      (1.0 - cache_health) * (config_.db_disk_read_cold_kbps -
                              config_.db_disk_read_warm_kbps);
  db.set_disk_read(per_query_read * std::max(1.0, db_arrivals) / 60.0);
  db.set_disk_write(12.0 + db_arrivals * 0.15);
  tiers_[kWeb].vm->set_disk_read(1.0);
  tiers_[kWeb].vm->set_disk_write(2.0);

  // End-to-end response time: web + average app tier + DB (queries per
  // request many, but they pipeline; count one DB residence per request).
  const double app_residence =
      0.5 * (tiers_[kApp1].residence_s + tiers_[kApp2].residence_s);
  const double instant = tiers_[kWeb].residence_s + app_residence +
                         tiers_[kDb].residence_s;
  const double alpha = config_.response_smoothing;
  response_time_ = alpha * instant + (1.0 - alpha) * response_time_;

  violated_ = response_time_ > config_.max_response_time_s;
}

bool WebApp::slo_violated() const { return violated_; }

double WebApp::backlog_of(std::size_t tier_index) const {
  PREPARE_CHECK(tier_index < tiers_.size());
  return tiers_[tier_index].backlog;
}

}  // namespace prepare
