// Application model interface.
//
// An Application owns the mapping from offered workload to per-VM resource
// demands and from granted resources back to its service-level metric.
// PREPARE itself never looks inside an Application — it only sees the
// per-VM system metrics (via the monitor) and the SLO violation flag (via
// the SLO tracker), exactly matching the paper's black-box assumption.
//
// Threading contract: the whole simulation layer (applications, VMs,
// hypervisor, clock) is confined to the single driver thread — step()
// and the accessors are never called concurrently, and implementations
// hold plain unguarded state (audited: no threads/atomics in
// web_app.cpp or stream_app.cpp). The controller's parallel per-VM
// prediction fan-out never reaches down here; workers only read const
// predictor state and record into the thread-safe obs:: instruments
// (see DESIGN.md "Concurrency model & locking discipline").
// Machine-checked: the interface carries PREPARE_DRIVER_CONFINED and
// tools/prepare_analyze.py proves no worker lambda reaches it.
#pragma once

#include <string>
#include <vector>

#include "common/analyze_annotations.h"
#include "sim/vm.h"

namespace prepare {

class PREPARE_DRIVER_CONFINED Application {
 public:
  virtual ~Application() = default;

  /// Advances the application by one tick: registers CPU/memory/net/disk
  /// demands on its VMs, resolves them (Vm::finalize_tick) and updates the
  /// SLO metric. Fault demands must already be registered on the VMs.
  virtual void step(double now, double dt) = 0;

  /// Whether the SLO is currently violated (evaluated at the last step).
  virtual bool slo_violated() const = 0;

  /// Current value of the headline SLO metric (throughput for the stream
  /// system, average response time for the web application).
  virtual double slo_metric() const = 0;
  virtual std::string slo_metric_name() const = 0;

  /// VMs this application runs on (one component per VM).
  virtual std::vector<Vm*> vms() const = 0;

  /// Offered workload intensity at the last step (requests or tuples /s).
  virtual double offered_rate() const = 0;
};

}  // namespace prepare
