#include "apps/stream/stream_app.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

// Driver-thread confined (see apps/application.h): all PE state is
// plain members with no locks or atomics, which is correct exactly as
// long as step()/accessors stay on the simulation thread.

namespace prepare {

namespace {
constexpr std::size_t kPeCount = 7;
constexpr double kMicro = 1e-6;
}  // namespace

std::vector<StreamApp::PeSpec> StreamApp::default_specs() {
  // Costs chosen so that, at the default 1-core allocations and a nominal
  // 25 Ktuples/s source rate, every PE runs at 20-40% utilization except
  // PE6 (the network-intensive sink) at ~60%: PE6 saturates first under a
  // workload ramp, matching the paper's bottleneck fault.
  return {
      {"PE1", 10.0, 1.0, 180.0, 120.0},   // source parser, fans out
      {"PE2", 12.0, 1.0, 190.0, 120.0},
      {"PE3", 12.0, 1.0, 190.0, 120.0},
      {"PE4", 14.0, 1.0, 200.0, 130.0},
      {"PE5", 14.0, 1.0, 200.0, 130.0},
      {"PE6", 12.0, 0.9, 220.0, 420.0},   // sink: heavy network output
      {"PE7", 8.0, 1.0, 170.0, 150.0},
  };
}

StreamApp::StreamApp(std::vector<Vm*> vms, const Workload* workload,
                     Config config)
    : config_(config), vms_(std::move(vms)), workload_(workload) {
  PREPARE_CHECK(workload_ != nullptr);
  PREPARE_CHECK_MSG(vms_.size() == kPeCount,
                    "StreamApp needs exactly 7 VMs (PE1..PE7)");
  const auto specs = default_specs();
  pes_.resize(kPeCount);
  for (std::size_t i = 0; i < kPeCount; ++i) {
    PREPARE_CHECK(vms_[i] != nullptr);
    pes_[i].spec = specs[i];
    pes_[i].vm = vms_[i];
    // A System S PE is a single-threaded process: against a many-worker
    // CPU hog its fair share of the VM is one thread's worth.
    vms_[i]->set_app_parallelism(1.0);
  }
  // Fig. 4 wiring: PE1 -> {PE2, PE3}; PE2 -> PE4; PE3 -> PE5;
  // {PE4, PE5} -> PE6; PE6 -> PE7.
  pes_[0].downstream = {1, 2};
  pes_[1].downstream = {3};
  pes_[2].downstream = {4};
  pes_[3].downstream = {5};
  pes_[4].downstream = {5};
  pes_[5].downstream = {6};
}

void StreamApp::step(double now, double dt) {
  PREPARE_CHECK(dt > 0.0);
  const double source_rate = workload_->rate(now);
  // PE1 splits the source stream across its two children; each child path
  // carries half the tuples.
  pes_[0].arrivals += source_rate * dt;

  // Process PEs in topological order (indices are already topological).
  double path_latency_upper = 0.0;  // PE1 -> PE2 -> PE4 -> PE6 -> PE7
  double path_latency_lower = 0.0;  // PE1 -> PE3 -> PE5 -> PE6 -> PE7
  for (std::size_t i = 0; i < pes_.size(); ++i) {
    Pe& pe = pes_[i];
    Vm& vm = *pe.vm;
    const double cpu_per_tuple = pe.spec.cpu_per_tuple_us * kMicro;

    // CPU demand: enough to clear the backlog plus this tick's arrivals.
    // Under degraded efficiency (paging, migration) the process burns
    // proportionally more CPU for the same work, so demand compensates
    // using the previous tick's efficiency.
    const double work_rate = pe.backlog / dt + pe.arrivals / dt;
    const double cpu_demand =
        work_rate * cpu_per_tuple / std::max(0.7, pe.last_efficiency);
    vm.set_app_cpu_demand(std::min(cpu_demand, 8.0));
    vm.set_app_mem_demand(pe.spec.base_mem_mb +
                          pe.backlog / 1000.0 * config_.mem_per_ktuple_mb);
    vm.finalize_tick(Seconds{dt});

    pe.last_efficiency = vm.efficiency();
    const double capacity =
        vm.app_cpu_granted() * vm.efficiency() / cpu_per_tuple;  // tuples/s
    const double available = pe.backlog + pe.arrivals;
    const double served = std::min(available, capacity * dt);
    // Finite buffers: whatever cannot be queued is dropped at ingress.
    pe.backlog = std::min(available - served, config_.max_backlog_tuples);
    const double emitted = served * pe.spec.selectivity;
    pe.emitted_rate = emitted / dt;
    // Residence time: queueing delay behind the backlog plus the tuple's
    // own (efficiency-degraded) service time.
    const double service_s = cpu_per_tuple / std::max(0.05, vm.efficiency());
    pe.residence_s =
        (capacity > 0.0 ? pe.backlog / capacity : 1.0) + service_s;

    // Network accounting: tuples in and out at the PE's wire size.
    vm.set_net_in(pe.arrivals / dt * pe.spec.bytes_per_tuple / 1024.0);
    vm.set_net_out(emitted / dt * pe.spec.bytes_per_tuple / 1024.0);
    vm.set_disk_read(2.0);
    vm.set_disk_write(4.0);

    // Forward to downstream PEs: PE1 splits, everyone else replicates to
    // its single successor.
    const double share =
        pe.downstream.empty() ? 0.0 : emitted / pe.downstream.size();
    for (std::size_t d : pe.downstream) pes_[d].arrivals += share;
    pe.arrivals = 0.0;
  }

  path_latency_upper = pes_[0].residence_s + pes_[1].residence_s +
                       pes_[3].residence_s + pes_[5].residence_s +
                       pes_[6].residence_s;
  path_latency_lower = pes_[0].residence_s + pes_[2].residence_s +
                       pes_[4].residence_s + pes_[5].residence_s +
                       pes_[6].residence_s;
  tuple_latency_ = std::max(path_latency_upper, path_latency_lower);

  const double alpha = config_.rate_smoothing;
  input_rate_ = alpha * source_rate + (1.0 - alpha) * input_rate_;
  output_rate_ =
      alpha * pes_[6].emitted_rate + (1.0 - alpha) * output_rate_;

  violated_ = false;
  if (input_rate_ > config_.min_input_rate) {
    // Normalize the ratio by the pipeline's intrinsic selectivity so that
    // "healthy" equals ratio 1.0 regardless of PE6's 0.9 selectivity.
    const double intrinsic = pes_[5].spec.selectivity;
    const double ratio = output_rate_ / (input_rate_ * intrinsic);
    if (ratio < config_.min_rate_ratio) violated_ = true;
  }
  if (tuple_latency_ > config_.max_tuple_latency_s) violated_ = true;
}

bool StreamApp::slo_violated() const { return violated_; }

double StreamApp::backlog_of(std::size_t pe_index) const {
  PREPARE_CHECK(pe_index < pes_.size());
  return pes_[pe_index].backlog;
}

const StreamApp::PeSpec& StreamApp::spec_of(std::size_t pe_index) const {
  PREPARE_CHECK(pe_index < pes_.size());
  return pes_[pe_index].spec;
}

}  // namespace prepare
