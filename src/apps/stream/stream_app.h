// System S-like data stream processing application.
//
// Models the tax-calculation sample application of the paper (Fig. 4):
// seven processing elements (PEs), each pinned to its own VM, wired as
//
//          +--> PE2 --> PE4 --+
//   PE1 ---|                  +--> PE6 --> PE7 --> (results)
//          +--> PE3 --> PE5 --+
//
// A UDP client feeds PE1 at the workload rate. Each PE is a fluid queue:
// its service capacity is (granted CPU x efficiency) / cpu-per-tuple, a
// backlog accumulates whenever arrivals outrun capacity, and emitted
// tuples flow downstream with the PE's selectivity. PE6 is the sink that
// "intensively sends processed data tuples to the network" — it carries
// the highest per-tuple cost relative to its allocation, making it the
// first PE to saturate under a workload ramp (the paper's bottleneck
// fault).
//
// SLO (paper Section III-A): violated when OutputRate/InputRate < 0.95 or
// the average per-tuple processing time exceeds 20 ms.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "apps/application.h"
#include "workload/workload.h"

namespace prepare {

struct StreamAppConfig {
  /// SLO thresholds (paper values).
  double min_rate_ratio = 0.95;
  double max_tuple_latency_s = 0.020;
  /// Input rate below which the ratio test is skipped (startup).
  double min_input_rate = 1.0;
  /// Memory used per queued tuple (backlog buffering), MB.
  double mem_per_ktuple_mb = 0.35;
  /// Smoothing factor for reported input/output rates.
  double rate_smoothing = 0.35;
  /// Bounded ingress buffer per PE: tuples beyond this are dropped (the
  /// source feeds PE1 over UDP, and inter-PE buffers are finite), which
  /// keeps an overloaded PE from consuming unbounded memory.
  double max_backlog_tuples = 60000.0;
};

class StreamApp : public Application {
 public:
  struct PeSpec {
    std::string name;
    double cpu_per_tuple_us = 8.0;  ///< core-microseconds per tuple
    double selectivity = 1.0;        ///< tuples emitted per tuple consumed
    double base_mem_mb = 180.0;      ///< resident footprint
    double bytes_per_tuple = 120.0;  ///< wire size for net metrics
  };

  using Config = StreamAppConfig;

  /// Builds the Fig. 4 topology over exactly 7 VMs (PE1..PE7 in order).
  /// `workload` provides the source tuple rate; not owned.
  StreamApp(std::vector<Vm*> vms, const Workload* workload,
            Config config = Config());

  /// Default PE specs for the Fig. 4 topology (PE6 is the heavy sink).
  static std::vector<PeSpec> default_specs();

  void step(double now, double dt) override;
  bool slo_violated() const override;
  double slo_metric() const override { return output_rate_; }
  std::string slo_metric_name() const override {
    return "throughput_tuples_per_s";
  }
  std::vector<Vm*> vms() const override { return vms_; }
  double offered_rate() const override { return input_rate_; }

  // --- inspection for tests and traces ---
  double input_rate() const { return input_rate_; }
  double output_rate() const { return output_rate_; }
  /// End-to-end latency estimate along the slowest path, seconds.
  double tuple_latency() const { return tuple_latency_; }
  double backlog_of(std::size_t pe_index) const;
  std::size_t pe_count() const { return pes_.size(); }
  const PeSpec& spec_of(std::size_t pe_index) const;

 private:
  struct Pe {
    PeSpec spec;
    Vm* vm = nullptr;
    std::vector<std::size_t> downstream;  // indices into pes_
    double backlog = 0.0;                 // queued tuples
    double arrivals = 0.0;                // tuples arriving this tick
    double emitted_rate = 0.0;            // tuples/s emitted this tick
    double residence_s = 0.0;             // queueing + service time estimate
    double last_efficiency = 1.0;         // previous tick's VM efficiency
  };

  Config config_;
  std::vector<Vm*> vms_;
  const Workload* workload_;
  std::vector<Pe> pes_;

  double input_rate_ = 0.0;     // smoothed source rate
  double output_rate_ = 0.0;    // smoothed sink emission rate
  double tuple_latency_ = 0.0;
  bool violated_ = false;
};

}  // namespace prepare
