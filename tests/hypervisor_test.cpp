#include "sim/hypervisor.h"

#include <gtest/gtest.h>

#include "sim/clock.h"
#include "sim/cluster.h"
#include "sim/event_log.h"

namespace prepare {
namespace {

class HypervisorTest : public ::testing::Test {
 protected:
  HypervisorTest()
      : hypervisor_(&clock_, &cluster_, &log_) {
    h1_ = cluster_.add_host("h1");
    h2_ = cluster_.add_host("h2");
    vm_ = cluster_.add_vm("vm", 1.0, 512.0, h1_);
  }

  SimClock clock_;
  Cluster cluster_;
  EventLog log_;
  Hypervisor hypervisor_;
  Host* h1_ = nullptr;
  Host* h2_ = nullptr;
  Vm* vm_ = nullptr;
};

TEST_F(HypervisorTest, CpuScaleAppliesAfterLatency) {
  ASSERT_TRUE(hypervisor_.scale_cpu(vm_, 1.5));
  EXPECT_DOUBLE_EQ(vm_->cpu_alloc(), 1.0);  // not yet
  clock_.advance(Seconds{0.05});
  EXPECT_DOUBLE_EQ(vm_->cpu_alloc(), 1.0);  // latency is 107 ms
  clock_.advance(Seconds{0.10});
  EXPECT_DOUBLE_EQ(vm_->cpu_alloc(), 1.5);
  EXPECT_EQ(log_.count_of(EventKind::kCpuScale), 1u);
}

TEST_F(HypervisorTest, MemScaleAppliesAfterLatency) {
  ASSERT_TRUE(hypervisor_.scale_memory(vm_, 1024.0));
  clock_.advance(Seconds{0.2});
  EXPECT_DOUBLE_EQ(vm_->mem_alloc(), 1024.0);
  EXPECT_EQ(log_.count_of(EventKind::kMemScale), 1u);
}

TEST_F(HypervisorTest, ScaleDownAlwaysAllowed) {
  EXPECT_TRUE(hypervisor_.scale_cpu(vm_, 0.5));
  EXPECT_TRUE(hypervisor_.scale_memory(vm_, 256.0));
  clock_.advance(Seconds{1.0});
  EXPECT_DOUBLE_EQ(vm_->cpu_alloc(), 0.5);
  EXPECT_DOUBLE_EQ(vm_->mem_alloc(), 256.0);
}

TEST_F(HypervisorTest, ScaleBeyondHeadroomRejected) {
  EXPECT_FALSE(hypervisor_.scale_cpu(vm_, 2.0));  // guest cap is 1.8
  EXPECT_FALSE(hypervisor_.scale_memory(vm_, 4000.0));
  clock_.advance(Seconds{1.0});
  EXPECT_DOUBLE_EQ(vm_->cpu_alloc(), 1.0);
  EXPECT_EQ(log_.count_of(EventKind::kCpuScale), 0u);
}

TEST_F(HypervisorTest, MigrationDurationScalesWithMemory) {
  const double d512 = hypervisor_.migration_duration(512.0);
  const double d1024 = hypervisor_.migration_duration(1024.0);
  EXPECT_GT(d1024, d512);
  // Table I: ~8.5 s for a 512 MB VM with the default bandwidth model.
  EXPECT_NEAR(d512, 8.5, 1.0);
}

TEST_F(HypervisorTest, MigrationMovesVmAndAppliesLanding) {
  ASSERT_TRUE(hypervisor_.migrate(vm_, h2_, 1.5, 1024.0));
  EXPECT_TRUE(vm_->migrating());
  EXPECT_EQ(cluster_.host_of(*vm_), h1_);  // still on source mid pre-copy
  clock_.advance(Seconds{hypervisor_.migration_duration(512.0) + 0.1});
  EXPECT_FALSE(vm_->migrating());
  EXPECT_EQ(cluster_.host_of(*vm_), h2_);
  EXPECT_DOUBLE_EQ(vm_->cpu_alloc(), 1.5);
  EXPECT_DOUBLE_EQ(vm_->mem_alloc(), 1024.0);
  EXPECT_EQ(log_.count_of(EventKind::kMigrationDone), 1u);
  // Reservation fully released on arrival.
  EXPECT_DOUBLE_EQ(h2_->reserved_cpu(), 0.0);
  EXPECT_DOUBLE_EQ(h2_->reserved_mem(), 0.0);
}

TEST_F(HypervisorTest, MigrationDefaultKeepsAllocation) {
  ASSERT_TRUE(hypervisor_.migrate(vm_, h2_));
  clock_.advance(Seconds{10.0});
  EXPECT_DOUBLE_EQ(vm_->cpu_alloc(), 1.0);
  EXPECT_DOUBLE_EQ(vm_->mem_alloc(), 512.0);
}

TEST_F(HypervisorTest, MigrationAppliesPerformancePenalty) {
  ASSERT_TRUE(hypervisor_.migrate(vm_, h2_));
  vm_->begin_tick();
  vm_->set_app_mem_demand(100.0);
  vm_->finalize_tick();
  EXPECT_NEAR(vm_->efficiency(), hypervisor_.config().migration_penalty,
              1e-12);
}

TEST_F(HypervisorTest, ConcurrentMigrationsCannotOversubscribeTarget) {
  Vm* other = cluster_.add_vm("other", 0.5, 256.0, h1_);
  ASSERT_TRUE(hypervisor_.migrate(vm_, h2_, 1.5, 1024.0));
  // Second migration wants 1.5 cores too: 3.0 > h2's 1.8 guest cores.
  EXPECT_FALSE(hypervisor_.migrate(other, h2_, 1.5, 1024.0));
  clock_.advance(Seconds{20.0});
  EXPECT_EQ(cluster_.host_of(*vm_), h2_);
  EXPECT_EQ(cluster_.host_of(*other), h1_);
}

TEST_F(HypervisorTest, MigrationOfMigratingVmRejected) {
  ASSERT_TRUE(hypervisor_.migrate(vm_, h2_));
  EXPECT_FALSE(hypervisor_.migrate(vm_, h2_));
}

TEST_F(HypervisorTest, MigrationToSameHostRejected) {
  EXPECT_FALSE(hypervisor_.migrate(vm_, h1_));
}

TEST_F(HypervisorTest, MigrationTooBigForTargetRejected) {
  cluster_.add_vm("filler", 1.0, 2048.0, h2_);
  EXPECT_FALSE(hypervisor_.migrate(vm_, h2_, 1.0, 2048.0));
  EXPECT_FALSE(vm_->migrating());
}

}  // namespace
}  // namespace prepare
