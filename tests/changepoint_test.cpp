#include "timeseries/changepoint.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"

namespace prepare {
namespace {

CusumConfig small_config() {
  CusumConfig c;
  c.warmup_samples = 20;
  c.drift = 1.0;
  c.threshold = 8.0;
  return c;
}

TEST(Cusum, RejectsBadConfig) {
  CusumConfig c;
  c.warmup_samples = 1;
  EXPECT_THROW(CusumDetector{c}, CheckFailure);
  c = CusumConfig{};
  c.threshold = 0.0;
  EXPECT_THROW(CusumDetector{c}, CheckFailure);
}

TEST(Cusum, NoChangeOnStationaryNoise) {
  CusumDetector d(small_config());
  Rng rng(5);
  for (int i = 0; i < 500; ++i) d.update(10.0 + rng.gaussian(0.0, 1.0));
  EXPECT_FALSE(d.changed());
}

TEST(Cusum, DetectsUpwardStep) {
  CusumDetector d(small_config());
  Rng rng(5);
  for (int i = 0; i < 40; ++i) d.update(10.0 + rng.gaussian(0.0, 0.5));
  bool fired = false;
  for (int i = 0; i < 40 && !fired; ++i)
    fired = d.update(20.0 + rng.gaussian(0.0, 0.5));
  EXPECT_TRUE(fired);
  EXPECT_TRUE(d.changed());
  ASSERT_TRUE(d.change_index().has_value());
  EXPECT_GE(*d.change_index(), 40u);
}

TEST(Cusum, DetectsDownwardStep) {
  CusumDetector d(small_config());
  Rng rng(6);
  for (int i = 0; i < 40; ++i) d.update(10.0 + rng.gaussian(0.0, 0.5));
  bool fired = false;
  for (int i = 0; i < 40 && !fired; ++i)
    fired = d.update(2.0 + rng.gaussian(0.0, 0.5));
  EXPECT_TRUE(fired);
}

TEST(Cusum, BaselineReadyAfterWarmup) {
  CusumDetector d(small_config());
  for (int i = 0; i < 19; ++i) d.update(5.0);
  EXPECT_FALSE(d.baseline_ready());
  d.update(5.0);
  EXPECT_TRUE(d.baseline_ready());
  EXPECT_NEAR(d.baseline_mean(), 5.0, 1e-9);
}

TEST(Cusum, RearmKeepsBaseline) {
  CusumDetector d(small_config());
  Rng rng(7);
  for (int i = 0; i < 30; ++i) d.update(10.0 + rng.gaussian(0.0, 0.5));
  for (int i = 0; i < 40; ++i) d.update(30.0);
  ASSERT_TRUE(d.changed());
  d.rearm();
  EXPECT_FALSE(d.changed());
  EXPECT_TRUE(d.baseline_ready());
  // The stream is still far from baseline: it fires again quickly.
  bool fired = false;
  for (int i = 0; i < 20 && !fired; ++i) fired = d.update(30.0);
  EXPECT_TRUE(fired);
}

TEST(Cusum, ResetDropsBaseline) {
  CusumDetector d(small_config());
  for (int i = 0; i < 25; ++i) d.update(5.0);
  d.reset();
  EXPECT_FALSE(d.baseline_ready());
  EXPECT_FALSE(d.changed());
}

TEST(Cusum, GradualRampEventuallyFires) {
  CusumDetector d(small_config());
  Rng rng(8);
  for (int i = 0; i < 30; ++i) d.update(10.0 + rng.gaussian(0.0, 0.3));
  bool fired = false;
  for (int i = 0; i < 200 && !fired; ++i)
    fired = d.update(10.0 + 0.2 * i + rng.gaussian(0.0, 0.3));
  EXPECT_TRUE(fired);
}

// Property sweep: a larger threshold never fires earlier than a smaller
// one on the same stream.
class CusumThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(CusumThresholdSweep, FiresOnStepWithSaneIndex) {
  CusumConfig c = small_config();
  c.threshold = GetParam();
  CusumDetector d(c);
  Rng rng(9);
  for (int i = 0; i < 40; ++i) d.update(5.0 + rng.gaussian(0.0, 0.4));
  for (int i = 0; i < 100; ++i) d.update(15.0 + rng.gaussian(0.0, 0.4));
  ASSERT_TRUE(d.changed());
  EXPECT_GE(*d.change_index(), 40u);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, CusumThresholdSweep,
                         ::testing::Values(4.0, 8.0, 12.0, 20.0));

}  // namespace
}  // namespace prepare
