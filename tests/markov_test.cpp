#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "models/markov.h"
#include "models/markov2.h"

namespace prepare {
namespace {

TEST(MarkovChain, RejectsBadConstruction) {
  EXPECT_THROW(MarkovChain(1), CheckFailure);
  EXPECT_THROW(MarkovChain(4, 0.0), CheckFailure);
}

TEST(MarkovChain, PredictBeforeContextThrows) {
  MarkovChain m(3);
  EXPECT_THROW(m.predict(TickIndex{1}), CheckFailure);
  m.observe(BinIndex{0}, true);
  EXPECT_NO_THROW(m.predict(TickIndex{1}));
}

TEST(MarkovChain, TransitionRowsAreDistributions) {
  MarkovChain m(4, 0.5);
  Rng rng(3);
  std::vector<std::size_t> seq;
  for (int i = 0; i < 500; ++i)
    seq.push_back(static_cast<std::size_t>(rng.uniform_int(0, 3)));
  m.train(seq);
  for (std::size_t from = 0; from < 4; ++from) {
    double total = 0.0;
    for (std::size_t to = 0; to < 4; ++to) total += m.transition(BinIndex{from}, BinIndex{to});
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(MarkovChain, LearnsDeterministicCycle) {
  MarkovChain m(3, 0.01);
  std::vector<std::size_t> seq;
  for (int i = 0; i < 300; ++i) seq.push_back(i % 3);
  m.train(seq);
  // Last symbol is 2; one step ahead must be 0, two steps 1, three 2.
  EXPECT_EQ(m.predict(TickIndex{1}).mode(), 0u);
  EXPECT_EQ(m.predict(TickIndex{2}).mode(), 1u);
  EXPECT_EQ(m.predict(TickIndex{3}).mode(), 2u);
}

TEST(MarkovChain, MultiStepIsChapmanKolmogorov) {
  MarkovChain m(3, 0.5);
  Rng rng(4);
  std::vector<std::size_t> seq;
  for (int i = 0; i < 400; ++i)
    seq.push_back(static_cast<std::size_t>(rng.uniform_int(0, 2)));
  m.train(seq);
  // P2[j] = sum_i P1[i] * T[i][j]
  const auto p1 = m.predict(TickIndex{1});
  const auto p2 = m.predict(TickIndex{2});
  for (std::size_t j = 0; j < 3; ++j) {
    double expect = 0.0;
    for (std::size_t i = 0; i < 3; ++i) expect += p1[i] * m.transition(BinIndex{i}, BinIndex{j});
    EXPECT_NEAR(p2[j], expect, 1e-9);
  }
}

TEST(MarkovChain, ObserveWithoutLearnOnlyMovesContext) {
  MarkovChain learner(3, 0.01);
  std::vector<std::size_t> seq;
  for (int i = 0; i < 300; ++i) seq.push_back(i % 3);
  learner.train(seq);
  const double before = learner.transition(BinIndex{0}, BinIndex{1});
  learner.observe(BinIndex{0}, /*learn=*/false);
  learner.observe(BinIndex{0}, /*learn=*/false);  // a 0->0 transition, not learned
  EXPECT_DOUBLE_EQ(learner.transition(BinIndex{0}, BinIndex{1}), before);
  learner.observe(BinIndex{0}, /*learn=*/true);   // now learned
  EXPECT_NE(learner.transition(BinIndex{0}, BinIndex{0}), 0.0);
}

TEST(TwoDependentMarkov, RejectsBadConstruction) {
  EXPECT_THROW(TwoDependentMarkov(1), CheckFailure);
  EXPECT_THROW(TwoDependentMarkov(4, -1.0), CheckFailure);
}

TEST(TwoDependentMarkov, NeedsTwoObservations) {
  TwoDependentMarkov m(3);
  EXPECT_FALSE(m.ready());
  m.observe(BinIndex{0}, true);
  EXPECT_FALSE(m.ready());
  EXPECT_THROW(m.predict(TickIndex{1}), CheckFailure);
  m.observe(BinIndex{1}, true);
  EXPECT_TRUE(m.ready());
  EXPECT_NO_THROW(m.predict(TickIndex{1}));
}

TEST(TwoDependentMarkov, TransitionRowsAreDistributions) {
  TwoDependentMarkov m(3, 0.5);
  Rng rng(5);
  std::vector<std::size_t> seq;
  for (int i = 0; i < 600; ++i)
    seq.push_back(static_cast<std::size_t>(rng.uniform_int(0, 2)));
  m.train(seq);
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = 0; b < 3; ++b) {
      double total = 0.0;
      for (std::size_t c = 0; c < 3; ++c) total += m.transition(BinIndex{a}, BinIndex{b}, BinIndex{c});
      EXPECT_NEAR(total, 1.0, 1e-9);
    }
  }
}

TEST(TwoDependentMarkov, PredictionSumsToOne) {
  TwoDependentMarkov m(4, 0.5);
  Rng rng(6);
  std::vector<std::size_t> seq;
  for (int i = 0; i < 600; ++i)
    seq.push_back(static_cast<std::size_t>(rng.uniform_int(0, 3)));
  m.train(seq);
  for (std::size_t steps : {1u, 2u, 5u, 24u})
    EXPECT_NEAR(m.predict(TickIndex{steps}).sum(), 1.0, 1e-9);
}

// The paper's motivating case (Section II-B): a triangle-wave attribute.
// At a given level the next value depends on the *slope*, which only the
// pair state captures: the simple chain is blind to direction.
std::vector<std::size_t> triangle_sequence(std::size_t period_up,
                                           int repeats) {
  std::vector<std::size_t> seq;
  for (int r = 0; r < repeats; ++r) {
    for (std::size_t v = 0; v < period_up; ++v) seq.push_back(v);
    for (std::size_t v = period_up; v-- > 1;) seq.push_back(v);
  }
  return seq;
}

TEST(TwoDependentMarkov, TracksTriangleWaveSlope) {
  const auto seq = triangle_sequence(5, 60);  // 0..4..1 repeating
  TwoDependentMarkov two(5, 0.05);
  two.train(seq);
  MarkovChain one(5, 0.05);
  one.train(seq);
  // The sequence ends ... 3 2 1 (descending at 1): next is 0.
  EXPECT_EQ(two.predict(TickIndex{1}).mode(), 0u);
  // The simple chain at state 1 is torn between 0 (down) and 2 (up);
  // measure probability mass instead of the tie-dependent mode.
  EXPECT_GT(two.predict(TickIndex{1})[0], 0.9);
  EXPECT_LT(one.predict(TickIndex{1})[0], 0.7);
}

TEST(TwoDependentMarkov, OutperformsSimpleOnRampForecast) {
  // Long rising ramps: from (prev<cur) the 2-dependent model keeps
  // climbing over multiple steps; the simple chain diffuses.
  std::vector<std::size_t> seq;
  for (int r = 0; r < 50; ++r)
    for (std::size_t v = 0; v < 8; ++v) seq.push_back(v);
  TwoDependentMarkov two(8, 0.05);
  MarkovChain one(8, 0.05);
  // Train on all but the tail, then predict from mid-ramp.
  std::vector<std::size_t> train(seq.begin(), seq.end() - 5);
  two.train(train);
  one.train(train);
  // Context is ... 1 2 (ascending): three steps ahead should be 5.
  const auto p_two = two.predict(TickIndex{3});
  const auto p_one = one.predict(TickIndex{3});
  EXPECT_GT(p_two[5], p_one[5]);
  EXPECT_EQ(p_two.mode(), 5u);
}

TEST(TwoDependentMarkov, SymbolOutOfRangeThrows) {
  TwoDependentMarkov m(3);
  EXPECT_THROW(m.observe(BinIndex{3}, true), CheckFailure);
}

// Property sweep: predictions are valid distributions for any horizon.
class MarkovHorizonSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MarkovHorizonSweep, ValidDistributionAtAnyHorizon) {
  Rng rng(9);
  std::vector<std::size_t> seq;
  for (int i = 0; i < 300; ++i)
    seq.push_back(static_cast<std::size_t>(rng.uniform_int(0, 4)));
  MarkovChain one(5);
  TwoDependentMarkov two(5);
  one.train(seq);
  two.train(seq);
  for (const auto& p : {one.predict(TickIndex{GetParam()}), two.predict(TickIndex{GetParam()})}) {
    EXPECT_NEAR(p.sum(), 1.0, 1e-9);
    for (std::size_t i = 0; i < p.size(); ++i) {
      EXPECT_GE(p[i], 0.0);
      EXPECT_LE(p[i], 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Horizons, MarkovHorizonSweep,
                         ::testing::Values(1, 2, 3, 6, 9, 24, 100));

}  // namespace
}  // namespace prepare
