#include "core/alarm_filter.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"

namespace prepare {
namespace {

TEST(AlarmFilter, RejectsBadConfig) {
  EXPECT_THROW(AlarmFilter(0, 4), CheckFailure);
  EXPECT_THROW(AlarmFilter(5, 4), CheckFailure);
}

TEST(AlarmFilter, PaperDefaultThreeOfFour) {
  AlarmFilter f;  // k = 3, W = 4
  EXPECT_EQ(f.k(), 3u);
  EXPECT_EQ(f.w(), 4u);
  EXPECT_FALSE(f.push(true));
  EXPECT_FALSE(f.push(true));
  EXPECT_TRUE(f.push(true));  // 3 of the last 3
}

TEST(AlarmFilter, TransientSpikeFiltered) {
  AlarmFilter f(3, 4);
  // Isolated alerts separated by quiet samples never confirm.
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(f.push(i % 3 == 0));
  }
}

TEST(AlarmFilter, ToleratesOneMissWithinWindow) {
  AlarmFilter f(3, 4);
  f.push(true);
  f.push(true);
  f.push(false);
  EXPECT_TRUE(f.push(true));  // window = T T F T -> 3 of 4
}

TEST(AlarmFilter, ConfirmationDropsWhenAlertsStop) {
  AlarmFilter f(3, 4);
  for (int i = 0; i < 5; ++i) f.push(true);
  EXPECT_TRUE(f.confirmed());
  f.push(false);
  EXPECT_TRUE(f.confirmed());  // still 3 of last 4
  f.push(false);
  EXPECT_FALSE(f.confirmed());
}

TEST(AlarmFilter, OneOfOnePassesThrough) {
  AlarmFilter f(1, 1);
  EXPECT_TRUE(f.push(true));
  EXPECT_FALSE(f.push(false));
}

TEST(AlarmFilter, ResetForgets) {
  AlarmFilter f(2, 3);
  f.push(true);
  f.push(true);
  f.reset();
  EXPECT_FALSE(f.confirmed());
  EXPECT_FALSE(f.push(true));
}

// Properties over (k, W): confirmation exactly when >= k of the last W
// raw alerts are set, checked against a brute-force reference.
class FilterKwSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(FilterKwSweep, MatchesBruteForce) {
  const auto [k, w] = GetParam();
  AlarmFilter f(k, w);
  Rng rng(17);
  std::vector<bool> history;
  for (int i = 0; i < 300; ++i) {
    const bool alert = rng.chance(0.35);
    history.push_back(alert);
    const bool confirmed = f.push(alert);
    std::size_t count = 0;
    const std::size_t lo = history.size() > w ? history.size() - w : 0;
    for (std::size_t j = lo; j < history.size(); ++j)
      if (history[j]) ++count;
    EXPECT_EQ(confirmed, count >= k) << "at sample " << i;
  }
}

TEST_P(FilterKwSweep, LargerKNeverConfirmsMoreOften) {
  const auto [k, w] = GetParam();
  if (k >= w) GTEST_SKIP();
  AlarmFilter strict(k + 1, w);
  AlarmFilter lenient(k, w);
  Rng rng(23);
  for (int i = 0; i < 300; ++i) {
    const bool alert = rng.chance(0.4);
    const bool s = strict.push(alert);
    const bool l = lenient.push(alert);
    EXPECT_LE(s, l);  // strict implies lenient
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, FilterKwSweep,
    ::testing::Values(std::make_pair(1ul, 1ul), std::make_pair(1ul, 4ul),
                      std::make_pair(2ul, 4ul), std::make_pair(3ul, 4ul),
                      std::make_pair(4ul, 4ul), std::make_pair(3ul, 8ul),
                      std::make_pair(5ul, 8ul)));

}  // namespace
}  // namespace prepare
