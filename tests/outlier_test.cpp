#include "models/outlier.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"

namespace prepare {
namespace {

/// Normal data: a0 in {0,1} correlated with a1; a2 independent noise.
LabeledDataset normal_population(std::size_t n, std::uint64_t seed) {
  LabeledDataset data;
  data.alphabet = {3, 3, 3};
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t a0 = rng.chance(0.5) ? 0 : 1;
    const std::size_t a1 = rng.chance(0.9) ? a0 : 1 - a0;
    const std::size_t a2 = static_cast<std::size_t>(rng.uniform_int(0, 2));
    data.rows.push_back({a0, a1, a2});
    data.abnormal.push_back(false);
  }
  return data;
}

TEST(Outlier, RejectsBadConstruction) {
  EXPECT_THROW(OutlierClassifier(0.0), CheckFailure);
  EXPECT_THROW(OutlierClassifier(1.5), CheckFailure);
  EXPECT_THROW(OutlierClassifier(0.99, 0.0), CheckFailure);
}

TEST(Outlier, NormalStatesStayNormal) {
  OutlierClassifier model(0.995);
  const auto data = normal_population(500, 1);
  model.train(data);
  std::size_t alarms = 0;
  for (const auto& row : data.rows)
    if (model.classify(row).abnormal) ++alarms;
  // By construction at most ~0.5% of the training data exceeds the
  // threshold quantile.
  EXPECT_LE(alarms, data.rows.size() / 50);
}

TEST(Outlier, NeverSeenStateFlagged) {
  OutlierClassifier model(0.99);
  model.train(normal_population(500, 2));
  // Value 2 never occurs on a0/a1 in the normal population.
  EXPECT_TRUE(model.classify({2, 2, 1}).abnormal);
}

TEST(Outlier, BrokenCorrelationFlagged) {
  OutlierClassifier model(0.995);
  model.train(normal_population(1000, 3));
  // a0 and a1 disagree — each value is common, the combination is rare.
  const auto agree = model.classify({0, 0, 1});
  const auto disagree = model.classify({0, 1, 1});
  EXPECT_GT(disagree.score, agree.score);
}

TEST(Outlier, LabelsAreIgnored) {
  auto data = normal_population(400, 4);
  auto relabeled = data;
  for (std::size_t i = 0; i < relabeled.abnormal.size(); i += 3)
    relabeled.abnormal[i] = true;  // garbage labels
  OutlierClassifier a(0.99), b(0.99);
  a.train(data);
  b.train(relabeled);
  for (const auto& row :
       {std::vector<std::size_t>{0, 0, 1}, {2, 2, 2}, {1, 0, 0}})
    EXPECT_DOUBLE_EQ(a.classify(row).score, b.classify(row).score);
}

TEST(Outlier, ImpactsPinpointTheOddAttribute) {
  OutlierClassifier model(0.99);
  model.train(normal_population(800, 5));
  const auto cls = model.classify({0, 0, 2});  // all values common
  const auto odd = model.classify({2, 0, 2});  // a0 = 2 never seen
  const auto order = Classifier::ranked_attributes(odd);
  EXPECT_EQ(order[0], 0u);
  EXPECT_GT(odd.impacts[0], cls.impacts[0]);
}

TEST(Outlier, SurprisalDecomposes) {
  OutlierClassifier model(0.99);
  model.train(normal_population(300, 6));
  const std::vector<std::size_t> row = {0, 1, 2};
  const auto cls = model.classify(row);
  EXPECT_NEAR(cls.score, model.surprisal(row) - model.threshold(), 1e-12);
}

TEST(Outlier, ExpectedClassificationMatchesDeltaInputs) {
  OutlierClassifier model(0.99);
  model.train(normal_population(300, 7));
  const std::vector<std::size_t> row = {1, 1, 0};
  std::vector<Distribution> dists = {Distribution::delta(3, BinIndex{1}),
                                     Distribution::delta(3, BinIndex{1}),
                                     Distribution::delta(3, BinIndex{0})};
  EXPECT_NEAR(model.classify(row).score,
              model.classify_expected(dists).score, 1e-9);
}

TEST(Outlier, StructureIsATree) {
  OutlierClassifier model(0.99);
  model.train(normal_population(400, 8));
  const auto& parents = model.parents();
  std::size_t roots = 0;
  for (std::size_t p : parents)
    if (p == OutlierClassifier::kNoParent) ++roots;
  EXPECT_EQ(roots, 1u);
  // The correlated pair (a0, a1) should be adjacent in the tree.
  EXPECT_TRUE(parents[0] == 1 || parents[1] == 0);
}

// Threshold-quantile sweep: a stricter quantile never alarms more often.
class OutlierQuantileSweep : public ::testing::TestWithParam<double> {};

TEST_P(OutlierQuantileSweep, TrainingAlarmRateBounded) {
  OutlierClassifier model(GetParam());
  const auto data = normal_population(600, 9);
  model.train(data);
  std::size_t alarms = 0;
  for (const auto& row : data.rows)
    if (model.classify(row).abnormal) ++alarms;
  EXPECT_LE(static_cast<double>(alarms) /
                static_cast<double>(data.rows.size()),
            (1.0 - GetParam()) + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Quantiles, OutlierQuantileSweep,
                         ::testing::Values(0.9, 0.95, 0.99, 0.999));

}  // namespace
}  // namespace prepare
