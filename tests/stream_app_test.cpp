#include "apps/stream/stream_app.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "sim/cluster.h"
#include "workload/patterns.h"

namespace prepare {
namespace {

class StreamAppTest : public ::testing::Test {
 protected:
  void build(double rate) {
    workload_ = std::make_unique<ConstantWorkload>(rate);
    for (int i = 0; i < 7; ++i) {
      Host* h = cluster_.add_host("h" + std::to_string(i));
      vms_.push_back(
          cluster_.add_vm("pe" + std::to_string(i + 1), 1.0, 512.0, h));
    }
    app_ = std::make_unique<StreamApp>(vms_, workload_.get());
  }

  void run(double seconds) {
    for (double t = 0.0; t < seconds; t += 1.0) {
      for (Vm* vm : vms_) vm->begin_tick();
      app_->step(t, 1.0);
    }
  }

  Cluster cluster_;
  std::vector<Vm*> vms_;
  std::unique_ptr<Workload> workload_;
  std::unique_ptr<StreamApp> app_;
};

TEST_F(StreamAppTest, RequiresSevenVms) {
  ConstantWorkload w(1000.0);
  std::vector<Vm*> three(3, nullptr);
  EXPECT_THROW(StreamApp(three, &w), CheckFailure);
}

TEST_F(StreamAppTest, HealthyAtNominalLoad) {
  build(25000.0);
  run(60.0);
  EXPECT_FALSE(app_->slo_violated());
  // Throughput settles at input rate x intrinsic selectivity (PE6: 0.9).
  EXPECT_NEAR(app_->output_rate(), 25000.0 * 0.9, 25000.0 * 0.02);
  EXPECT_LT(app_->tuple_latency(), 0.020);
}

TEST_F(StreamAppTest, BacklogsEmptyAtNominalLoad) {
  build(25000.0);
  run(30.0);
  for (std::size_t i = 0; i < app_->pe_count(); ++i)
    EXPECT_LT(app_->backlog_of(i), 100.0);
}

TEST_F(StreamAppTest, OverloadViolatesSlo) {
  build(120000.0);  // far beyond PE6's ~83 Ktuples/s capacity
  run(60.0);
  EXPECT_TRUE(app_->slo_violated());
  // Output is cut by the saturated sink.
  EXPECT_LT(app_->output_rate(), 120000.0 * 0.9 * 0.95);
}

TEST_F(StreamAppTest, BacklogBounded) {
  build(150000.0);
  run(200.0);
  for (std::size_t i = 0; i < app_->pe_count(); ++i)
    EXPECT_LE(app_->backlog_of(i), StreamAppConfig{}.max_backlog_tuples);
}

TEST_F(StreamAppTest, RecoversWhenOverloadEnds) {
  workload_ = std::make_unique<RampWorkload>(25000.0, 3000.0, 10.0, 40.0,
                                             150000.0);
  for (int i = 0; i < 7; ++i) {
    Host* h = cluster_.add_host("h" + std::to_string(i));
    vms_.push_back(
        cluster_.add_vm("pe" + std::to_string(i + 1), 1.0, 512.0, h));
  }
  app_ = std::make_unique<StreamApp>(vms_, workload_.get());
  bool violated_during_overload = false;
  for (double t = 0.0; t < 45.0; t += 1.0) {
    for (Vm* vm : vms_) vm->begin_tick();
    app_->step(t, 1.0);
    violated_during_overload |= app_->slo_violated();
  }
  EXPECT_TRUE(violated_during_overload);
  run(120.0);  // workload back to nominal; queues drain
  EXPECT_FALSE(app_->slo_violated());
}

TEST_F(StreamAppTest, MemoryPressureOnOnePeViolatesSlo) {
  build(25000.0);
  run(30.0);
  ASSERT_FALSE(app_->slo_violated());
  // Simulate a leak-thrashed PE3: huge fault memory demand each tick.
  for (double t = 30.0; t < 120.0; t += 1.0) {
    for (Vm* vm : vms_) vm->begin_tick();
    vms_[2]->set_fault_mem_demand(700.0);
    app_->step(t, 1.0);
  }
  EXPECT_TRUE(app_->slo_violated());
}

TEST_F(StreamAppTest, CpuHogOnOnePeViolatesSlo) {
  build(25000.0);
  run(30.0);
  ASSERT_FALSE(app_->slo_violated());
  for (double t = 30.0; t < 60.0; t += 1.0) {
    for (Vm* vm : vms_) vm->begin_tick();
    vms_[3]->set_fault_cpu_demand(8.0);
    app_->step(t, 1.0);
  }
  EXPECT_TRUE(app_->slo_violated());
}

TEST_F(StreamAppTest, ScalingTheHoggedPeRestoresSlo) {
  build(25000.0);
  run(30.0);
  vms_[3]->set_cpu_alloc(1.8);
  for (double t = 30.0; t < 90.0; t += 1.0) {
    for (Vm* vm : vms_) vm->begin_tick();
    vms_[3]->set_fault_cpu_demand(8.0);
    app_->step(t, 1.0);
  }
  EXPECT_FALSE(app_->slo_violated());
}

TEST_F(StreamAppTest, NetworkMetricsFlowThroughPipeline) {
  build(25000.0);
  run(30.0);
  // PE1 receives the full source stream.
  EXPECT_GT(vms_[0]->net_in(), 0.0);
  // The sink (PE6) pushes the highest byte volume (420 B/tuple).
  double max_out = 0.0;
  std::size_t argmax = 0;
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    if (vms_[i]->net_out() > max_out) {
      max_out = vms_[i]->net_out();
      argmax = i;
    }
  }
  EXPECT_EQ(argmax, 5u);  // PE6
}

TEST_F(StreamAppTest, SloMetricNameAndOfferedRate) {
  build(25000.0);
  run(10.0);
  EXPECT_EQ(app_->slo_metric_name(), "throughput_tuples_per_s");
  EXPECT_NEAR(app_->offered_rate(), 25000.0, 2500.0);
  EXPECT_EQ(app_->vms().size(), 7u);
}

TEST_F(StreamAppTest, PeSpecsExposeBottleneckSink) {
  build(25000.0);
  // PE6 (index 5) must be the heaviest relative to a 1-core allocation
  // at full stream rate so it saturates first under a ramp.
  const auto& sink = app_->spec_of(5);
  EXPECT_GT(sink.bytes_per_tuple, app_->spec_of(0).bytes_per_tuple);
}

}  // namespace
}  // namespace prepare
