#include "obs/span_tracer.h"

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace prepare {
namespace {

using obs::EpisodeOutcome;
using obs::Span;
using obs::SpanStage;
using obs::SpanTracer;
using obs::SpanTracerConfig;

const obs::SpanAttr* find_attr(const Span& span, const std::string& key) {
  for (const auto& attr : span.attrs)
    if (attr.key == key) return &attr;
  return nullptr;
}

std::string attr_text(const Span& span, const std::string& key) {
  const auto* attr = find_attr(span, key);
  return attr == nullptr ? "" : attr->text;
}

double attr_num(const Span& span, const std::string& key) {
  const auto* attr = find_attr(span, key);
  return (attr == nullptr || !attr->numeric) ? -1.0 : attr->number;
}

TEST(SpanTracer, HappyPathBuildsCausalChainAndCountsPrevented) {
  SpanTracer tracer;
  tracer.raw_alert("vm-1", 10.0);
  tracer.raw_alert("vm-1", 15.0);
  tracer.confirmed("vm-1", 20.0);
  tracer.cause_inferred("vm-1", 20.0, {{"mem_util", 3.5}, {"cpu_util", 1.2}});
  tracer.prevention_issued("vm-1", 25.0, "acted on mem_util (rank 0)");
  tracer.validated("vm-1", 40.0);

  const auto episodes = tracer.episodes();
  ASSERT_EQ(episodes.size(), 1u);
  const auto& e = *episodes[0];
  EXPECT_EQ(e.trace_id, "vm-1#1");
  EXPECT_TRUE(e.closed);
  EXPECT_EQ(e.outcome, EpisodeOutcome::kPrevented);
  ASSERT_EQ(e.spans.size(), 5u);

  // Root: raw_alert with the refresh folded into its attrs.
  EXPECT_EQ(e.spans[0].span_id, "vm-1#1:0");
  EXPECT_EQ(e.spans[0].parent_id, "");
  EXPECT_EQ(e.spans[0].stage, SpanStage::kRawAlert);
  EXPECT_EQ(attr_text(e.spans[0], "source"), "predicted");
  EXPECT_EQ(attr_num(e.spans[0], "raw_alerts"), 2.0);

  // Each span is the child of the previous one, timestamps chain.
  for (std::size_t i = 1; i < e.spans.size(); ++i) {
    EXPECT_EQ(e.spans[i].parent_id, e.spans[i - 1].span_id);
    EXPECT_EQ(e.spans[i].t_start, e.spans[i - 1].t_end);
    EXPECT_GE(e.spans[i].t_end, e.spans[i].t_start);
  }
  EXPECT_EQ(e.spans[1].stage, SpanStage::kConfirmed);
  EXPECT_EQ(e.spans[2].stage, SpanStage::kCauseInferred);
  EXPECT_EQ(attr_text(e.spans[2], "top_metric_1"), "mem_util");
  EXPECT_EQ(attr_num(e.spans[2], "impact_1"), 3.5);
  EXPECT_EQ(attr_text(e.spans[2], "top_metric_2"), "cpu_util");
  EXPECT_EQ(e.spans[3].stage, SpanStage::kPreventionIssued);
  EXPECT_EQ(attr_text(e.spans[3], "action"), "acted on mem_util (rank 0)");
  EXPECT_EQ(e.spans[4].stage, SpanStage::kValidated);
  EXPECT_EQ(attr_text(e.spans[4], "verdict"), "effective");
  EXPECT_EQ(attr_text(e.spans[4], "outcome"), "prevented");

  EXPECT_EQ(tracer.ledger().prevented, 1u);
  EXPECT_FALSE(tracer.episode_open("vm-1"));
}

TEST(SpanTracer, TraceIdsAreDeterministicPerVmSequences) {
  SpanTracer tracer;
  tracer.raw_alert("vm-a", 1.0);
  tracer.validated("vm-b", 2.0);  // no episode: ignored
  tracer.confirmed("vm-a", 3.0);
  tracer.validated("vm-a", 4.0);  // confirmed-but-unacted still closes
  tracer.raw_alert("vm-a", 10.0);
  tracer.raw_alert("vm-b", 11.0);
  const auto episodes = tracer.episodes();
  ASSERT_EQ(episodes.size(), 3u);
  EXPECT_EQ(episodes[0]->trace_id, "vm-a#1");
  EXPECT_EQ(episodes[1]->trace_id, "vm-a#2");
  EXPECT_EQ(episodes[2]->trace_id, "vm-b#1");
}

// Satellite edge case: an alert confirmed in the very last tick never
// gets a verdict — finish() must close it as expired (not false alarm:
// it did confirm).
TEST(SpanTracer, ConfirmedInFinalTickExpiresAtRunEnd) {
  SpanTracer tracer;
  tracer.raw_alert("vm-1", 100.0);
  tracer.confirmed("vm-1", 100.0);
  tracer.finish(100.0);
  const auto episodes = tracer.episodes();
  ASSERT_EQ(episodes.size(), 1u);
  const auto& e = *episodes[0];
  EXPECT_TRUE(e.closed);
  EXPECT_EQ(e.outcome, EpisodeOutcome::kExpired);
  ASSERT_EQ(e.spans.size(), 3u);
  EXPECT_EQ(e.spans.back().stage, SpanStage::kExpired);
  EXPECT_EQ(attr_text(e.spans.back(), "reason"), "run_end");
  EXPECT_EQ(tracer.ledger().expired, 1u);
}

TEST(SpanTracer, UnconfirmedAtRunEndIsAFalseAlarm) {
  SpanTracer tracer;
  tracer.raw_alert("vm-1", 100.0);
  tracer.finish(110.0);
  ASSERT_EQ(tracer.episodes().size(), 1u);
  EXPECT_EQ(tracer.episodes()[0]->outcome, EpisodeOutcome::kFalseAlarm);
  EXPECT_EQ(tracer.ledger().false_alarm, 1u);
}

// Satellite edge case: a re-alert while a prevention validation is
// open must not fork a second episode or a second confirmed span — it
// bumps the confirmed span's re_alerts attribute.
TEST(SpanTracer, ReAlertDuringValidationFoldsIntoOpenEpisode) {
  SpanTracer tracer;
  tracer.raw_alert("vm-1", 10.0);
  tracer.confirmed("vm-1", 15.0);
  tracer.cause_inferred("vm-1", 15.0, {{"cpu_util", 2.0}});
  tracer.prevention_issued("vm-1", 20.0, "acted on cpu_util (rank 0)");
  tracer.raw_alert("vm-1", 25.0);   // still unhealthy while validating
  tracer.confirmed("vm-1", 30.0);   // re-confirmation
  tracer.prevention_issued("vm-1", 30.0, "fallback action on mem_util");
  tracer.validated("vm-1", 45.0);

  const auto episodes = tracer.episodes();
  ASSERT_EQ(episodes.size(), 1u);
  const auto& e = *episodes[0];
  std::size_t confirmed_spans = 0;
  for (const auto& span : e.spans)
    if (span.stage == SpanStage::kConfirmed) ++confirmed_spans;
  EXPECT_EQ(confirmed_spans, 1u);
  EXPECT_EQ(attr_num(e.spans[1], "re_alerts"), 1.0);
  ASSERT_EQ(e.spans.size(), 6u);  // raw, confirmed, cause, 2x prevention,
                                  // validated
  EXPECT_EQ(e.outcome, EpisodeOutcome::kPrevented);
  EXPECT_EQ(tracer.ledger().prevented, 1u);
}

// Satellite edge case: a workload change is not a VM fault — the whole
// episode is suppressed, leaving no exported spans and no outcome.
TEST(SpanTracer, WorkloadChangeSuppressionLeavesNoEpisode) {
  obs::MetricsRegistry registry;
  SpanTracer tracer(&registry);
  tracer.raw_alert("vm-1", 10.0);
  tracer.confirmed("vm-1", 15.0);
  tracer.workload_change_suppressed("vm-1", 15.0);
  EXPECT_TRUE(tracer.episodes().empty());
  EXPECT_FALSE(tracer.episode_open("vm-1"));
  EXPECT_EQ(tracer.ledger().suppressed, 1u);
  EXPECT_EQ(registry.counter("alert.suppressed_total")->value(), 1.0);
  std::ostringstream os;
  tracer.write_spans_jsonl(os, "r1");
  EXPECT_EQ(os.str(), "");
  // The VM can alert again afterwards; it starts a fresh trace id.
  tracer.raw_alert("vm-1", 50.0);
  ASSERT_EQ(tracer.episodes().size(), 1u);
  EXPECT_EQ(tracer.episodes()[0]->trace_id, "vm-1#2");
}

TEST(SpanTracer, TickExpiresStaleEpisodes) {
  SpanTracerConfig config;
  config.raw_expiry_s = 30.0;
  config.idle_expiry_s = 60.0;
  SpanTracer tracer(nullptr, config);
  tracer.raw_alert("vm-raw", 0.0);       // never confirms
  tracer.raw_alert("vm-idle", 0.0);
  tracer.confirmed("vm-idle", 5.0);      // confirms, then goes quiet
  tracer.tick(20.0);
  EXPECT_TRUE(tracer.episode_open("vm-raw"));
  tracer.tick(31.0);  // past raw expiry
  EXPECT_FALSE(tracer.episode_open("vm-raw"));
  EXPECT_TRUE(tracer.episode_open("vm-idle"));
  tracer.tick(66.0);  // past idle expiry from t=5
  EXPECT_FALSE(tracer.episode_open("vm-idle"));
  EXPECT_EQ(tracer.ledger().false_alarm, 2u);  // neither was acted on
  const auto episodes = tracer.episodes();
  ASSERT_EQ(episodes.size(), 2u);
  EXPECT_EQ(attr_text(episodes[0]->spans.back(), "reason"), "not_confirmed");
  EXPECT_EQ(attr_text(episodes[1]->spans.back(), "reason"), "stalled");
}

TEST(SpanTracer, ObserveSloRecordsLeadTimeOnRisingEdge) {
  obs::MetricsRegistry registry;
  SpanTracer tracer(&registry);
  tracer.raw_alert("vm-1", 10.0);
  tracer.confirmed("vm-1", 20.0);
  tracer.observe_slo(50.0, false);
  tracer.observe_slo(55.0, true);   // rising edge: lead = 55 - 20
  tracer.observe_slo(60.0, true);   // still violated: no double count
  const auto episodes = tracer.episodes();
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_EQ(attr_num(episodes[0]->spans[1], "lead_time_s"), 35.0);
  EXPECT_EQ(tracer.ledger().predicted_violations, 1u);
  EXPECT_EQ(tracer.ledger().lead_time_samples, 1u);
  EXPECT_EQ(registry.histogram("alert.lead_time.seconds")->count(), 1u);
  EXPECT_EQ(tracer.ledger().missed, 0u);
}

TEST(SpanTracer, ViolationWithoutConfirmedEpisodeCountsMissed) {
  obs::MetricsRegistry registry;
  SpanTracer tracer(&registry);
  tracer.raw_alert("vm-1", 10.0);    // open but never confirmed
  tracer.observe_slo(20.0, true);
  EXPECT_EQ(tracer.ledger().missed, 1u);
  EXPECT_EQ(tracer.ledger().predicted_violations, 0u);
  EXPECT_EQ(registry.counter("alert.outcome.missed")->value(), 1.0);
  // Falling then rising again is a second onset.
  tracer.observe_slo(30.0, false);
  tracer.observe_slo(40.0, true);
  EXPECT_EQ(tracer.ledger().missed, 2u);
}

TEST(SpanTracer, CapacityGuardDropsExcessEpisodes) {
  obs::MetricsRegistry registry;
  SpanTracerConfig config;
  config.max_episodes = 1;
  SpanTracer tracer(&registry, config);
  tracer.raw_alert("vm-1", 1.0);
  tracer.raw_alert("vm-2", 2.0);  // dropped by the guard
  EXPECT_TRUE(tracer.episode_open("vm-1"));
  EXPECT_FALSE(tracer.episode_open("vm-2"));
  EXPECT_EQ(tracer.episodes().size(), 1u);
  EXPECT_EQ(registry.counter("alert.episodes_dropped_total")->value(), 1.0);
  // Lifecycle calls for the dropped VM are safely ignored.
  tracer.confirmed("vm-2", 3.0);
  EXPECT_FALSE(tracer.episode_open("vm-2"));
}

TEST(SpanTracer, LedgerGaugesTrackPrecisionRecallEffectiveness) {
  obs::MetricsRegistry registry;
  SpanTracer tracer(&registry);
  // prevented:
  tracer.raw_alert("vm-1", 0.0);
  tracer.confirmed("vm-1", 1.0);
  tracer.prevention_issued("vm-1", 2.0, "a");
  tracer.validated("vm-1", 3.0);
  // escalated:
  tracer.raw_alert("vm-2", 0.0);
  tracer.confirmed("vm-2", 1.0);
  tracer.escalated("vm-2", 2.0, "ranking exhausted");
  // false alarm:
  tracer.raw_alert("vm-3", 0.0);
  tracer.finish(100.0);
  // missed violation before anything confirmed:
  tracer.observe_slo(101.0, true);
  EXPECT_DOUBLE_EQ(registry.gauge("alert.precision")->value(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(registry.gauge("alert.recall")->value(), 0.0);
  EXPECT_DOUBLE_EQ(registry.gauge("alert.prevention_effectiveness")->value(),
                   0.5);
  EXPECT_EQ(registry.counter("alert.episodes_total")->value(), 3.0);
}

TEST(SpanTracer, WriteSpansJsonlEmitsSchemaV2Records) {
  SpanTracer tracer;
  tracer.raw_alert("vm-1", 10.0);
  tracer.confirmed("vm-1", 15.0);
  tracer.validated("vm-1", 20.0);
  std::ostringstream os;
  tracer.write_spans_jsonl(os, "run-7");
  std::istringstream is(os.str());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(is, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"record\":\"span\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"run_id\":\"run-7\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"trace_id\":\"vm-1#1\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"span_id\":\"vm-1#1:0\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"parent_id\":\"\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"stage\":\"raw_alert\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"parent_id\":\"vm-1#1:0\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"stage\":\"validated\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"outcome\":\"prevented\""), std::string::npos);
}

}  // namespace
}  // namespace prepare
