#include "monitor/slo_log.h"

#include "common/check.h"

#include <gtest/gtest.h>

#include "monitor/labeler.h"
#include "monitor/metric_store.h"

namespace prepare {
namespace {

SloLog make_log() {
  // Violated during [10, 20) and [30, 35); recorded up to t = 50.
  SloLog log;
  for (double t = 0.0; t < 50.0; t += 1.0) {
    const bool violated = (t >= 10.0 && t < 20.0) || (t >= 30.0 && t < 35.0);
    log.record(t, 1.0, violated, violated ? 300.0 : 100.0);
  }
  return log;
}

TEST(SloLog, TracksIntervals) {
  SloLog log = make_log();
  const auto intervals = log.intervals();
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_DOUBLE_EQ(intervals[0].start, 10.0);
  EXPECT_DOUBLE_EQ(intervals[0].end, 20.0);
  EXPECT_DOUBLE_EQ(intervals[1].duration(), 5.0);
}

TEST(SloLog, PointQueries) {
  SloLog log = make_log();
  EXPECT_FALSE(log.violated_at(9.5));
  EXPECT_TRUE(log.violated_at(10.0));
  EXPECT_TRUE(log.violated_at(19.9));
  EXPECT_FALSE(log.violated_at(20.0));
  EXPECT_TRUE(log.violated_at(32.0));
  EXPECT_FALSE(log.violated_at(49.0));
}

TEST(SloLog, TotalViolationTime) {
  SloLog log = make_log();
  EXPECT_DOUBLE_EQ(log.total_violation_time(), 15.0);
}

TEST(SloLog, WindowedViolationTime) {
  SloLog log = make_log();
  EXPECT_DOUBLE_EQ(log.violation_time(0.0, 50.0), 15.0);
  EXPECT_DOUBLE_EQ(log.violation_time(15.0, 32.0), 7.0);  // 5 + 2
  EXPECT_DOUBLE_EQ(log.violation_time(21.0, 29.0), 0.0);
}

TEST(SloLog, OpenViolationCountsUpToLastRecord) {
  SloLog log;
  for (double t = 0.0; t < 10.0; t += 1.0) log.record(t, 1.0, t >= 5.0, 0.0);
  EXPECT_TRUE(log.currently_violated());
  EXPECT_DOUBLE_EQ(log.total_violation_time(), 5.0);
  EXPECT_TRUE(log.violated_at(9.5));
  const auto intervals = log.intervals();
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_DOUBLE_EQ(intervals[0].end, 10.0);
}

TEST(SloLog, MetricTraceRecorded) {
  SloLog log = make_log();
  EXPECT_EQ(log.metric_trace().size(), 50u);
  EXPECT_DOUBLE_EQ(log.metric_trace().at(12).value, 300.0);
}

TEST(SloLog, ClearResets) {
  SloLog log = make_log();
  log.clear();
  EXPECT_DOUBLE_EQ(log.total_violation_time(), 0.0);
  EXPECT_TRUE(log.intervals().empty());
  EXPECT_FALSE(log.currently_violated());
}

TEST(SloLog, InvertedWindowThrows) {
  SloLog log = make_log();
  EXPECT_THROW(log.violation_time(10.0, 5.0), CheckFailure);
}

TEST(Labeler, MatchesTimestampsAgainstSloLog) {
  SloLog slo = make_log();
  MetricStore store;
  AttributeVector v{};
  for (double t = 0.0; t < 50.0; t += 5.0) store.record("vm", t, v);
  const auto labeled = Labeler::label_all(store, slo, "vm");
  ASSERT_EQ(labeled.size(), 10u);
  // Samples at t = 10, 15 and 30 fall inside violations.
  for (const auto& s : labeled) {
    const bool expect_abnormal =
        (s.time >= 10.0 && s.time < 20.0) || (s.time >= 30.0 && s.time < 35.0);
    EXPECT_EQ(s.abnormal, expect_abnormal) << "t=" << s.time;
  }
}

TEST(Labeler, WindowRestrictsSamples) {
  SloLog slo = make_log();
  MetricStore store;
  AttributeVector v{};
  for (double t = 0.0; t < 50.0; t += 5.0) store.record("vm", t, v);
  const auto labeled = Labeler::label(store, slo, "vm", 10.0, 20.0);
  ASSERT_EQ(labeled.size(), 3u);  // t = 10, 15, 20
  EXPECT_TRUE(labeled[0].abnormal);
  EXPECT_FALSE(labeled[2].abnormal);  // t = 20: violation interval is open
}

}  // namespace
}  // namespace prepare
