// Integration: the observability layer threaded through a full scenario
// run — every pipeline stage histogram fills, the counters agree with
// the event log, and attaching a registry does not change the outcome.
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "obs/stage_profiler.h"
#include "obs/trace_export.h"

namespace prepare {
namespace {

ScenarioConfig base_config(Scheme scheme) {
  ScenarioConfig c;
  c.app = AppKind::kSystemS;
  c.fault = FaultKind::kMemoryLeak;
  c.scheme = scheme;
  c.seed = 11;
  c.prepare.prevention.mode = PreventionMode::kScalingOnly;
  return c;
}

TEST(ObsIntegration, EverySevenPipelineStageHistogramFills) {
  obs::MetricsRegistry registry;
  auto config = base_config(Scheme::kPrepare);
  config.metrics = &registry;
  run_scenario(config);
  for (const char* stage : obs::kPipelineStages) {
    const auto name = obs::stage_metric_name(stage);
    const auto it = registry.histograms().find(name);
    ASSERT_NE(it, registry.histograms().end()) << "missing " << name;
    EXPECT_GT(it->second.count(), 0u) << name << " never recorded";
    EXPECT_GE(it->second.min(), 0.0);
  }
}

TEST(ObsIntegration, CountersAgreeWithTheEventLog) {
  obs::MetricsRegistry registry;
  auto config = base_config(Scheme::kPrepare);
  config.metrics = &registry;
  auto result = run_scenario(config);

  const double raw = registry.counter("controller.raw_alerts_total")->value();
  const double confirmed =
      registry.counter("controller.confirmed_alerts_total")->value();
  EXPECT_EQ(raw, static_cast<double>(result.events.count_of(EventKind::kAlert)));
  EXPECT_EQ(confirmed, static_cast<double>(
                           result.events.count_of(EventKind::kAlertConfirmed)));
  EXPECT_GT(confirmed, 0.0);  // the memleak run must confirm alerts
  EXPECT_GE(raw, confirmed);

  EXPECT_GT(registry.counter("prevention.actions_total")->value(), 0.0);
  EXPECT_EQ(registry.counter("events.recorded_total")->value(),
            static_cast<double>(result.events.events().size()));
  EXPECT_GT(registry.counter("run.samples_total")->value(), 0.0);
  EXPECT_GT(registry.counter("run.ticks_total")->value(),
            registry.counter("run.samples_total")->value());
  EXPECT_DOUBLE_EQ(registry.gauge("run.sim_time_s")->value(),
                   config.run_end);
}

TEST(ObsIntegration, InstrumentationDoesNotChangeTheOutcome) {
  auto bare = run_scenario(base_config(Scheme::kPrepare));
  obs::MetricsRegistry registry;
  auto config = base_config(Scheme::kPrepare);
  config.metrics = &registry;
  auto instrumented = run_scenario(config);
  EXPECT_DOUBLE_EQ(instrumented.violation_time, bare.violation_time);
  EXPECT_EQ(instrumented.events.events().size(), bare.events.events().size());
  EXPECT_EQ(instrumented.faulty_vm, bare.faulty_vm);
}

TEST(ObsIntegration, ReactiveControllerTimesItsStagesToo) {
  obs::MetricsRegistry registry;
  auto config = base_config(Scheme::kReactive);
  config.metrics = &registry;
  run_scenario(config);
  for (const char* stage :
       {obs::kStageMonitorSample, obs::kStageDiscretize,
        obs::kStageCauseInference, obs::kStagePrevention}) {
    const auto it =
        registry.histograms().find(obs::stage_metric_name(stage));
    ASSERT_NE(it, registry.histograms().end()) << stage;
    EXPECT_GT(it->second.count(), 0u) << stage;
  }
}

TEST(ObsIntegration, FullTraceExportIsWellFormedJsonl) {
  obs::MetricsRegistry registry;
  auto config = base_config(Scheme::kPrepare);
  config.metrics = &registry;
  auto result = run_scenario(config);

  std::ostringstream os;
  obs::RunInfo info;
  info.run_id = "test-run";
  info.sim_time_end = config.run_end;
  obs::write_run_header(os, info);
  result.events.to_jsonl(os, info.run_id);
  obs::write_metrics_jsonl(os, registry, info.run_id, config.run_end);

  std::istringstream is(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    ++lines;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"record\":\""), std::string::npos) << line;
  }
  // Header + at least one event and one metric per instrument family.
  EXPECT_GT(lines, 1 + result.events.events().size());
}

}  // namespace
}  // namespace prepare
