// Unit tests for the episode flight recorder: ring eviction edges, the
// episode-capture lifecycle (pre-context, truncation, drop cap), and
// the bundle invariants replay_episode depends on. Integration tests —
// bit-identical replay of live bundles and thread-count determinism —
// live in replay_test.cpp / experiment_test.cpp.
#include "obs/flight_recorder.h"

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace prepare {
namespace {

using obs::DecisionConfig;
using obs::EvidenceFrame;
using obs::EvidenceLayout;
using obs::FlightRecorder;
using obs::FlightRecorderConfig;
using obs::PreventionEvidence;

// Tiny geometry: 2 attributes, 3-bin alphabets, 2 horizon steps.
EvidenceLayout tiny_layout() {
  EvidenceLayout layout;
  layout.attributes = 2;
  layout.offsets = {0, 3, 6};
  layout.attribute_names = {"cpu_util", "mem_util"};
  layout.horizon_steps = 2;
  return layout;
}

// A frame whose every field is a deterministic function of `t`, so a
// captured tick can be checked back against its time stamp.
struct FrameData {
  double raw[2];
  std::size_t observed[2];
  std::size_t mode[2];
  double impacts[2];
  double dists[6];
  double horizon[2];
  EvidenceFrame frame;

  explicit FrameData(double t, bool raw_alert = false,
                     bool confirmed = false) {
    raw[0] = t;
    raw[1] = 2.0 * t;
    observed[0] = static_cast<std::size_t>(t) % 3;
    observed[1] = (static_cast<std::size_t>(t) + 1) % 3;
    mode[0] = (static_cast<std::size_t>(t) + 2) % 3;
    mode[1] = static_cast<std::size_t>(t) % 3;
    impacts[0] = t / 10.0;
    impacts[1] = -t / 20.0;
    for (int i = 0; i < 6; ++i) dists[i] = t + i;
    horizon[0] = t / 100.0;
    horizon[1] = t / 200.0;
    frame.t = t;
    frame.abnormal = raw_alert;
    frame.raw_alert = raw_alert;
    frame.confirmed = confirmed;
    frame.score = t - 5.0;
    frame.prior_log_odds = -1.5;
    frame.decomposable = true;
    frame.raw = raw;
    frame.observed_row = observed;
    frame.mode_row = mode;
    frame.impacts = impacts;
    frame.dists = dists;
    frame.horizon_probs = horizon;
    frame.horizon_len = 2;
  }
};

FlightRecorderConfig small_config() {
  FlightRecorderConfig config;
  config.ring_ticks = 4;
  config.pre_context_ticks = 3;
  config.max_bundle_ticks = 6;
  config.max_bundles = 2;
  return config;
}

DecisionConfig small_decision() {
  DecisionConfig decision;
  decision.filter_k = 2;
  decision.filter_w = 3;  // <= pre_context_ticks, checked at set time
  return decision;
}

TEST(FlightRecorder, RingEvictsOldestAndTracksHighWater) {
  FlightRecorder recorder(nullptr, small_config());
  recorder.set_decision_config(small_decision());
  const auto slot = recorder.register_vm("vm-1", tiny_layout());
  EXPECT_EQ(recorder.ring_high_water(), 0u);

  for (double t = 0.0; t < 6.0; t += 1.0) {
    FrameData data(t);
    recorder.record_tick(slot, data.frame);
  }
  EXPECT_EQ(recorder.ticks_recorded(), 6u);
  EXPECT_EQ(recorder.ring_high_water(), 4u);  // capped at ring_ticks

  // Open an episode: the pre-context must be the *newest* 3 ring ticks
  // (t = 3, 4, 5) in chronological order — the two oldest were evicted.
  recorder.episode_opened("vm-1", "vm-1#1", 6.0);
  recorder.episode_closed("vm-1", 6.0, "prevented");
  ASSERT_EQ(recorder.bundles().size(), 1u);
  const auto& bundle = recorder.bundles()[0];
  EXPECT_EQ(bundle.pre_ticks, 3u);
  ASSERT_EQ(bundle.ticks.size(), 3u);
  EXPECT_EQ(bundle.ticks[0].t, 3.0);
  EXPECT_EQ(bundle.ticks[1].t, 4.0);
  EXPECT_EQ(bundle.ticks[2].t, 5.0);
}

TEST(FlightRecorder, ShortRingYieldsShortPreContext) {
  FlightRecorder recorder(nullptr, small_config());
  recorder.set_decision_config(small_decision());
  const auto slot = recorder.register_vm("vm-1", tiny_layout());
  FrameData d0(0.0);
  recorder.record_tick(slot, d0.frame);
  recorder.episode_opened("vm-1", "vm-1#1", 1.0);
  FrameData d1(1.0, /*raw_alert=*/true);
  recorder.record_tick(slot, d1.frame);
  recorder.episode_closed("vm-1", 1.0, "expired");
  ASSERT_EQ(recorder.bundles().size(), 1u);
  const auto& bundle = recorder.bundles()[0];
  EXPECT_EQ(bundle.pre_ticks, 1u);  // only one tick existed
  ASSERT_EQ(bundle.ticks.size(), 2u);
  EXPECT_EQ(bundle.ticks[0].t, 0.0);
  EXPECT_EQ(bundle.ticks[1].t, 1.0);
  EXPECT_TRUE(bundle.ticks[1].raw_alert);
}

TEST(FlightRecorder, CapturedTickIsAFaithfulDeepCopy) {
  FlightRecorder recorder(nullptr, small_config());
  recorder.set_decision_config(small_decision());
  const auto slot = recorder.register_vm("vm-1", tiny_layout());
  recorder.episode_opened("vm-1", "vm-1#1", 7.0);
  FrameData data(7.0, /*raw_alert=*/true, /*confirmed=*/true);
  recorder.record_tick(slot, data.frame);
  recorder.episode_closed("vm-1", 7.0, "prevented");

  ASSERT_EQ(recorder.bundles().size(), 1u);
  const auto& tick = recorder.bundles()[0].ticks.back();
  EXPECT_EQ(tick.t, 7.0);
  EXPECT_TRUE(tick.abnormal);
  EXPECT_TRUE(tick.raw_alert);
  EXPECT_TRUE(tick.confirmed);
  EXPECT_EQ(tick.score, 2.0);
  EXPECT_EQ(tick.prior_log_odds, -1.5);
  EXPECT_TRUE(tick.decomposable);
  ASSERT_EQ(tick.raw.size(), 2u);
  EXPECT_EQ(tick.raw[0], 7.0);
  EXPECT_EQ(tick.raw[1], 14.0);
  EXPECT_EQ(tick.observed_row[0], 7u % 3);
  EXPECT_EQ(tick.mode_row[0], (7u + 2) % 3);
  ASSERT_EQ(tick.dists.size(), 6u);
  EXPECT_EQ(tick.dists[5], 12.0);
  ASSERT_EQ(tick.horizon_len, 2u);
  EXPECT_EQ(tick.horizon_probs[0], 0.07);
}

TEST(FlightRecorder, EpisodeLongerThanRingIsFullyCapturedUpToCap) {
  FlightRecorder recorder(nullptr, small_config());
  recorder.set_decision_config(small_decision());
  const auto slot = recorder.register_vm("vm-1", tiny_layout());
  recorder.episode_opened("vm-1", "vm-1#1", 0.0);
  // 8 episode ticks against ring_ticks=4 and max_bundle_ticks=6: the
  // first 6 are kept, the overflow is counted, never silently lost.
  for (double t = 0.0; t < 8.0; t += 1.0) {
    FrameData data(t, /*raw_alert=*/true);
    recorder.record_tick(slot, data.frame);
  }
  recorder.episode_closed("vm-1", 8.0, "escalated");
  ASSERT_EQ(recorder.bundles().size(), 1u);
  const auto& bundle = recorder.bundles()[0];
  EXPECT_EQ(bundle.pre_ticks, 0u);
  ASSERT_EQ(bundle.ticks.size(), 6u);
  EXPECT_EQ(bundle.ticks.front().t, 0.0);
  EXPECT_EQ(bundle.ticks.back().t, 5.0);
  EXPECT_EQ(bundle.truncated_ticks, 2u);
  EXPECT_EQ(recorder.truncated_ticks_total(), 2u);
}

TEST(FlightRecorder, BackToBackEpisodesShareRingPreContext) {
  FlightRecorder recorder(nullptr, small_config());
  recorder.set_decision_config(small_decision());
  const auto slot = recorder.register_vm("vm-1", tiny_layout());
  for (double t = 0.0; t < 4.0; t += 1.0) {
    FrameData data(t);
    recorder.record_tick(slot, data.frame);
  }
  recorder.episode_opened("vm-1", "vm-1#1", 4.0);
  FrameData d4(4.0, true);
  recorder.record_tick(slot, d4.frame);
  recorder.episode_closed("vm-1", 4.0, "prevented");

  // The episode tick kept flowing into the ring too: a second episode
  // opening right after must see t=4 in *its* pre-context.
  recorder.episode_opened("vm-1", "vm-1#2", 5.0);
  FrameData d5(5.0, true);
  recorder.record_tick(slot, d5.frame);
  recorder.episode_closed("vm-1", 5.0, "prevented");

  ASSERT_EQ(recorder.bundles().size(), 2u);
  const auto& second = recorder.bundles()[1];
  EXPECT_EQ(second.trace_id, "vm-1#2");
  EXPECT_EQ(second.pre_ticks, 3u);
  ASSERT_EQ(second.ticks.size(), 4u);
  EXPECT_EQ(second.ticks[0].t, 2.0);
  EXPECT_EQ(second.ticks[1].t, 3.0);
  EXPECT_EQ(second.ticks[2].t, 4.0);  // the first episode's tick
  EXPECT_EQ(second.ticks[3].t, 5.0);
}

TEST(FlightRecorder, BundleCapDropsAndCounts) {
  FlightRecorder recorder(nullptr, small_config());  // max_bundles = 2
  recorder.set_decision_config(small_decision());
  const auto slot = recorder.register_vm("vm-1", tiny_layout());
  for (int e = 1; e <= 4; ++e) {
    recorder.episode_opened("vm-1", "vm-1#" + std::to_string(e),
                            static_cast<double>(e));
    FrameData data(static_cast<double>(e), true);
    recorder.record_tick(slot, data.frame);
    recorder.episode_closed("vm-1", static_cast<double>(e), "prevented");
  }
  EXPECT_EQ(recorder.bundles_emitted(), 2u);
  EXPECT_EQ(recorder.dropped_total(), 2u);
  // Dropped captures must not leave evidence hooks half-armed: the
  // diagnosis / prevention feeds on a dropped episode are no-ops.
  recorder.record_prevention("vm-1", PreventionEvidence{});
  EXPECT_EQ(recorder.bundles_emitted(), 2u);
}

TEST(FlightRecorder, SuppressedEpisodeLeavesNoBundle) {
  FlightRecorder recorder(nullptr, small_config());
  recorder.set_decision_config(small_decision());
  const auto slot = recorder.register_vm("vm-1", tiny_layout());
  recorder.episode_opened("vm-1", "vm-1#1", 0.0);
  FrameData data(0.0, true);
  recorder.record_tick(slot, data.frame);
  recorder.episode_suppressed("vm-1");
  recorder.episode_closed("vm-1", 1.0, "prevented");  // stale: no capture
  EXPECT_EQ(recorder.bundles_emitted(), 0u);
  EXPECT_EQ(recorder.dropped_total(), 0u);  // suppression is not a drop
}

TEST(FlightRecorder, DiagnosisAndPreventionAttachToTheOpenCapture) {
  FlightRecorder recorder(nullptr, small_config());
  recorder.set_decision_config(small_decision());
  const auto slot = recorder.register_vm("vm-1", tiny_layout());
  recorder.episode_opened("vm-1", "vm-1#1", 0.0);
  FrameData data(0.0, true, true);
  recorder.record_tick(slot, data.frame);

  const std::size_t ranked[2] = {1, 0};
  const double impacts[2] = {3.5, 1.25};
  recorder.record_diagnosis("vm-1", 0.0, ranked, impacts, 2);
  PreventionEvidence prevention;
  prevention.t = 0.0;
  prevention.phase = 0;
  prevention.attribute = 1;
  prevention.metric_kind = 1;
  prevention.scale_possible = true;
  prevention.applied = 1;
  recorder.record_prevention("vm-1", prevention);
  recorder.episode_closed("vm-1", 0.0, "prevented");

  ASSERT_EQ(recorder.bundles().size(), 1u);
  const auto& bundle = recorder.bundles()[0];
  ASSERT_TRUE(bundle.diagnosis.valid);
  ASSERT_EQ(bundle.diagnosis.ranked.size(), 2u);
  EXPECT_EQ(bundle.diagnosis.ranked[0], 1u);
  EXPECT_EQ(bundle.diagnosis.impacts[0], 3.5);
  ASSERT_EQ(bundle.preventions.size(), 1u);
  EXPECT_EQ(bundle.preventions[0].attribute, 1u);
  EXPECT_EQ(bundle.preventions[0].applied, 1);
}

TEST(FlightRecorder, FinishPublishesRecorderMetrics) {
  obs::MetricsRegistry registry;
  FlightRecorder recorder(&registry, small_config());
  recorder.set_decision_config(small_decision());
  const auto slot = recorder.register_vm("vm-1", tiny_layout());
  recorder.episode_opened("vm-1", "vm-1#1", 0.0);
  FrameData data(0.0, true);
  recorder.record_tick(slot, data.frame);
  recorder.episode_closed("vm-1", 0.0, "prevented");
  recorder.finish();
  EXPECT_EQ(registry.counter("recorder.bundles_total")->value(), 1.0);
  EXPECT_EQ(registry.counter("recorder.dropped_total")->value(), 0.0);
  EXPECT_EQ(registry.counter("recorder.ticks_recorded_total")->value(), 1.0);
  EXPECT_EQ(registry.gauge("recorder.ring_high_water")->value(), 1.0);
}

TEST(FlightRecorder, EvidenceJsonlIsWellFormedAndLinked) {
  FlightRecorder recorder(nullptr, small_config());
  recorder.set_decision_config(small_decision());
  const auto slot = recorder.register_vm("vm-1", tiny_layout());
  recorder.episode_opened("vm-1", "vm-1#1", 0.0);
  FrameData data(0.0, true, true);
  recorder.record_tick(slot, data.frame);
  recorder.episode_closed("vm-1", 0.0, "prevented");

  std::ostringstream os;
  recorder.write_evidence_jsonl(os, "test-run");
  std::istringstream is(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    ++lines;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"record\":\"episode_evidence\""),
              std::string::npos) << line;
    EXPECT_NE(line.find("\"trace_id\":\"vm-1#1\""), std::string::npos)
        << line;
  }
  EXPECT_EQ(lines, 2u);  // one bundle header + one tick
}

TEST(FlightRecorder, UnknownVmHooksAreIgnored) {
  FlightRecorder recorder(nullptr, small_config());
  recorder.set_decision_config(small_decision());
  recorder.episode_opened("ghost", "ghost#1", 0.0);
  recorder.episode_closed("ghost", 0.0, "prevented");
  recorder.episode_suppressed("ghost");
  recorder.record_prevention("ghost", PreventionEvidence{});
  EXPECT_EQ(recorder.bundles_emitted(), 0u);
  EXPECT_EQ(recorder.dropped_total(), 0u);
}

}  // namespace
}  // namespace prepare
