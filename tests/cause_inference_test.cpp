#include "core/cause_inference.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"

namespace prepare {
namespace {

Classification make_classification(double score,
                                   std::vector<double> impacts) {
  Classification c;
  c.score = LogOdds{score};
  c.abnormal = score > 0.0;
  c.impacts = std::move(impacts);
  return c;
}

AttributeVector sample_with_net_in(double net_in) {
  AttributeVector v{};
  set(v, Attribute::kNetIn, net_in);
  return v;
}

TEST(CauseInference, RejectsEmptyVmList) {
  EXPECT_THROW(CauseInference({}), CheckFailure);
}

TEST(CauseInference, DiagnosisSortsByScore) {
  CauseInference ci({"a", "b"});
  std::map<std::string, Classification> alerting;
  alerting.emplace("a", make_classification(1.0, {0.5, 0.5, 0.0}));
  alerting.emplace("b", make_classification(3.0, {2.0, 1.0, 0.0}));
  const auto d = ci.diagnose(alerting);
  ASSERT_EQ(d.faulty.size(), 2u);
  EXPECT_EQ(d.faulty[0].vm, "b");
  EXPECT_EQ(d.faulty[1].vm, "a");
}

TEST(CauseInference, RankedMetricsDescendAndStopAtNonPositive) {
  CauseInference ci({"a"});
  std::map<std::string, Classification> alerting;
  // Impacts: attr2 strongest, attr0 next, rest <= 0.
  alerting.emplace(
      "a", make_classification(2.0, {0.8, -0.1, 1.5, 0.0, -0.5}));
  const auto d = ci.diagnose(alerting);
  ASSERT_EQ(d.faulty.size(), 1u);
  ASSERT_EQ(d.faulty[0].ranked.size(), 2u);
  EXPECT_EQ(d.faulty[0].ranked[0], static_cast<Attribute>(2));
  EXPECT_EQ(d.faulty[0].ranked[1], static_cast<Attribute>(0));
}

TEST(CauseInference, TopAttributesLimitRespected) {
  CauseInference::Config config;
  config.top_attributes = 2;
  CauseInference ci({"a"}, config);
  std::map<std::string, Classification> alerting;
  alerting.emplace("a",
                   make_classification(2.0, {1.0, 2.0, 3.0, 4.0, 5.0}));
  const auto d = ci.diagnose(alerting);
  EXPECT_EQ(d.faulty[0].ranked.size(), 2u);
}

TEST(CauseInference, WorkloadChangeNeedsAllComponents) {
  CauseInference::Config config;
  config.cusum.warmup_samples = 20;
  config.recent_window_s = 100.0;
  CauseInference ci({"a", "b"}, config);
  Rng rng(1);
  // Warm both baselines on quiet traffic.
  double t = 0.0;
  for (int i = 0; i < 40; ++i, t += 5.0) {
    ci.observe("a", t, sample_with_net_in(100.0 + rng.gaussian(0.0, 1.0)));
    ci.observe("b", t, sample_with_net_in(100.0 + rng.gaussian(0.0, 1.0)));
  }
  EXPECT_FALSE(ci.workload_change_suspected(t));
  // Only component a sees a traffic surge: internal fault, not workload.
  for (int i = 0; i < 40; ++i, t += 5.0) {
    ci.observe("a", t, sample_with_net_in(300.0));
    ci.observe("b", t, sample_with_net_in(100.0 + rng.gaussian(0.0, 1.0)));
  }
  EXPECT_FALSE(ci.workload_change_suspected(t));
  // Now both surge: workload change.
  for (int i = 0; i < 40; ++i, t += 5.0) {
    ci.observe("a", t, sample_with_net_in(300.0));
    ci.observe("b", t, sample_with_net_in(300.0));
  }
  EXPECT_TRUE(ci.workload_change_suspected(t));
}

TEST(CauseInference, ChangePointsExpire) {
  CauseInference::Config config;
  config.cusum.warmup_samples = 20;
  config.recent_window_s = 30.0;
  CauseInference ci({"a"}, config);
  double t = 0.0;
  for (int i = 0; i < 30; ++i, t += 5.0)
    ci.observe("a", t, sample_with_net_in(100.0 + (i % 2) * 0.5));
  for (int i = 0; i < 10; ++i, t += 5.0)
    ci.observe("a", t, sample_with_net_in(500.0));
  EXPECT_TRUE(ci.workload_change_suspected(t));
  EXPECT_FALSE(ci.workload_change_suspected(t + 200.0));
}

TEST(CauseInference, UnknownVmObservationThrows) {
  CauseInference ci({"a"});
  EXPECT_THROW(ci.observe("ghost", 0.0, AttributeVector{}), CheckFailure);
}

TEST(CauseInference, EmptyAlertingYieldsEmptyDiagnosis) {
  CauseInference ci({"a"});
  EXPECT_TRUE(ci.diagnose({}).faulty.empty());
}

}  // namespace
}  // namespace prepare
