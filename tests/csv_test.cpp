#include "common/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/check.h"
#include "temp_path.h"

namespace prepare {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = test_util::unique_temp_path("csv_test_out.csv");
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"a", "b"});
    w.row(std::vector<double>{1.0, 2.5});
    w.row(std::vector<std::string>{"x", "y"});
  }
  EXPECT_EQ(read_file(path_), "a,b\n1,2.5\nx,y\n");
}

TEST_F(CsvTest, RejectsWrongColumnCount) {
  CsvWriter w(path_, {"a", "b"});
  EXPECT_THROW(w.row(std::vector<double>{1.0}), CheckFailure);
  EXPECT_THROW(w.row(std::vector<std::string>{"x", "y", "z"}), CheckFailure);
}

TEST_F(CsvTest, RejectsEmptyHeader) {
  EXPECT_THROW(CsvWriter(path_, {}), CheckFailure);
}

TEST_F(CsvTest, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}),
               std::runtime_error);
}

TEST(FormatNumber, DropsTrailingZeros) {
  EXPECT_EQ(format_number(120.0), "120");
  EXPECT_EQ(format_number(3.5), "3.5");
}

TEST(FormatNumber, SmallValues) { EXPECT_EQ(format_number(0.001), "0.001"); }

}  // namespace
}  // namespace prepare
