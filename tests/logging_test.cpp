#include "common/logging.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace prepare {
namespace {

/// Redirects the process-wide log sink to a capture buffer for one test
/// and restores level + sink afterwards (cases share the static
/// Logger, so leaking state would bleed between tests).
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = Logger::level();
    Logger::set_sink(&capture_);
  }
  void TearDown() override {
    Logger::set_sink(nullptr);  // restores std::cerr
    Logger::set_level(saved_level_);
  }

  std::string captured() const { return capture_.str(); }

  std::ostringstream capture_;
  LogLevel saved_level_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, RecordsAtOrAboveTheLevelAreWritten) {
  Logger::set_level(LogLevel::kInfo);
  PREPARE_INFO("test") << "visible " << 42;
  const std::string out = captured();
  EXPECT_NE(out.find("[info] test: visible 42"), std::string::npos) << out;
  EXPECT_EQ(out.back(), '\n');
}

TEST_F(LoggingTest, RecordsBelowTheLevelAreSuppressed) {
  Logger::set_level(LogLevel::kWarn);
  PREPARE_INFO("test") << "hidden";
  PREPARE_DEBUG("test") << "hidden too";
  EXPECT_TRUE(captured().empty()) << captured();
}

TEST_F(LoggingTest, OffSilencesEverything) {
  Logger::set_level(LogLevel::kOff);
  PREPARE_ERROR("test") << "hidden";
  EXPECT_TRUE(captured().empty());
}

TEST_F(LoggingTest, NullSinkFallsBackToCerr) {
  Logger::set_sink(nullptr);
  EXPECT_EQ(Logger::sink(), &std::cerr);
  Logger::set_sink(&capture_);
  EXPECT_EQ(Logger::sink(), &capture_);
}

TEST(ParseLogLevel, RecognizesNamesCaseInsensitively) {
  EXPECT_EQ(parse_log_level("debug", LogLevel::kOff), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO", LogLevel::kOff), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn", LogLevel::kOff), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning", LogLevel::kOff), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error", LogLevel::kOff), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off", LogLevel::kDebug), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("none", LogLevel::kDebug), LogLevel::kOff);
}

TEST(ParseLogLevel, FallsBackOnNullOrUnknown) {
  EXPECT_EQ(parse_log_level(nullptr, LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("", LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("verbose", LogLevel::kError), LogLevel::kError);
}

}  // namespace
}  // namespace prepare
