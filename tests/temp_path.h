// Unique scratch-file paths for tests.
//
// gtest_discover_tests registers every TEST as its own ctest entry, so
// cases from one fixture run as concurrent processes under `ctest -j`,
// and several build trees (plain/ASan/UBSan) may run their suites at
// once. A fixed name under TempDir() therefore races: one case's
// TearDown unlinks the file another case is reading. Tag paths with the
// running test's name and the pid so every case in every tree writes its
// own file.
#pragma once

#include <unistd.h>

#include <cctype>
#include <string>

#include <gtest/gtest.h>

namespace prepare {
namespace test_util {

inline std::string unique_temp_path(const std::string& stem) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string tag = info ? std::string(info->test_suite_name()) + "_" +
                               info->name()
                         : "global";
  // Parameterized names carry '/' and friends; keep the path clean.
  for (char& c : tag)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return ::testing::TempDir() + "/" + tag + "_" +
         std::to_string(::getpid()) + "_" + stem;
}

}  // namespace test_util
}  // namespace prepare
