// Concurrency stress + determinism coverage for the thread-safe layers.
//
// The stress tests are written for TSan (CI runs the suite under
// -DPREPARE_SANITIZE=thread): many threads hammer one instrument and the
// assertions prove no update was lost, while TSan proves no access was a
// data race. Synchronization is joins only — no sleeps (rule
// no-sleep-sync in tools/check_invariants.py).
//
// The determinism tests pin the parallel driver's core contract: a
// num_threads=4 scenario is bit-identical to the num_threads=1 run in
// every output except wall-clock timing histograms.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/experiment.h"
#include "obs/metrics.h"
#include "sim/event_log.h"

namespace prepare {
namespace {

// --------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);

  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ZeroCountIsANoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossFanOuts) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round)
    pool.parallel_for(7, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  EXPECT_EQ(total.load(), 50 * 7);
}

TEST(ThreadPoolTest, TaskExceptionPropagatesAfterDraining) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(16,
                        [&](std::size_t i) {
                          if (i == 5) throw std::runtime_error("boom");
                          completed.fetch_add(1, std::memory_order_relaxed);
                        }),
      std::runtime_error);
  // The fan-out drained before rethrowing: every non-throwing task ran.
  EXPECT_EQ(completed.load(), 15);
  // And the pool is still usable afterwards.
  std::atomic<int> after{0};
  pool.parallel_for(4, [&](std::size_t) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 4);
}

// --------------------------------------------------------------------
// MetricsRegistry under contention

TEST(ConcurrencyTest, CountersAreExactUnderContention) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.counter("stress.counter");

  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([counter] {
      for (int i = 0; i < kIncrements; ++i) counter->inc();
    });
  for (std::thread& t : threads) t.join();

  // +1.0 is exactly representable, so the CAS accumulation loses
  // nothing regardless of interleaving.
  EXPECT_EQ(counter->value(), kThreads * kIncrements);
}

TEST(ConcurrencyTest, HistogramRecordsAreExactUnderContention) {
  obs::MetricsRegistry registry;
  obs::Histogram* histogram = registry.histogram("stress.histogram");

  constexpr int kThreads = 8;
  constexpr int kRecords = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([histogram, t] {
      for (int i = 0; i < kRecords; ++i)
        histogram->record(1e-6 * (t + 1));
    });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(histogram->count(), static_cast<std::size_t>(kThreads * kRecords));
  EXPECT_GT(histogram->min(), 0.0);
  EXPECT_LE(histogram->max(), 1e-6 * kThreads);
}

TEST(ConcurrencyTest, ConcurrentRegistrationYieldsOneInstrument) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<obs::Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&registry, &seen, t] {
      obs::Counter* counter = registry.counter("race.once");
      seen[t] = counter;
      counter->inc();
    });
  for (std::thread& t : threads) t.join();

  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(seen[0]->value(), kThreads);
}

// --------------------------------------------------------------------
// EventLog under contention

TEST(ConcurrencyTest, EventLogCapacityGuardHoldsUnderContention) {
  obs::MetricsRegistry registry;
  EventLog log;
  log.set_metrics(&registry);
  constexpr std::size_t kCapacity = 500;
  log.set_capacity(kCapacity);

  constexpr int kThreads = 8;
  constexpr int kRecords = 200;  // 1600 attempts against capacity 500
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kRecords; ++i)
        log.record(static_cast<double>(i), EventKind::kInfo,
                   "vm" + std::to_string(t), "stress");
    });
  for (std::thread& t : threads) t.join();

  const std::size_t total = kThreads * kRecords;
  EXPECT_EQ(log.events().size(), kCapacity);
  EXPECT_EQ(log.dropped(), total - kCapacity);
  EXPECT_EQ(registry.counter("events.recorded_total")->value(), kCapacity);
  EXPECT_EQ(registry.counter("events.dropped_total")->value(),
            total - kCapacity);
}

// --------------------------------------------------------------------
// Logger under contention

TEST(ConcurrencyTest, LoggerSurvivesConcurrentEmitAndReconfig) {
  std::ostringstream capture;
  std::ostream* const original = Logger::sink();
  const LogLevel original_level = Logger::level();
  Logger::set_sink(&capture);
  Logger::set_level(LogLevel::kInfo);

  constexpr int kWriters = 4;
  constexpr int kRecords = 500;
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 1);
  for (int t = 0; t < kWriters; ++t)
    threads.emplace_back([t] {
      for (int i = 0; i < kRecords; ++i)
        PREPARE_INFO("stress") << "writer " << t << " record " << i;
    });
  // One thread flips the level while writers emit; the atomic level gate
  // and the sink mutex must keep every record whole.
  threads.emplace_back([] {
    for (int i = 0; i < 200; ++i)
      Logger::set_level(i % 2 == 0 ? LogLevel::kInfo : LogLevel::kWarn);
  });
  for (std::thread& t : threads) t.join();

  Logger::set_level(original_level);
  Logger::set_sink(original);

  // Level flips race with the gate check, so the record count is
  // nondeterministic — but every line that made it out must be whole:
  // one "[info] stress: writer T record I" per line, never interleaved.
  std::istringstream lines(capture.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_EQ(line.rfind("[info] stress: writer ", 0), 0u) << line;
  }
  EXPECT_LE(count, static_cast<std::size_t>(kWriters) * kRecords);
}

// --------------------------------------------------------------------
// Parallel determinism: the acceptance contract of the fan-out driver.

TEST(ConcurrencyTest, ParallelScenarioIsBitIdenticalToSerial) {
  ScenarioConfig config;
  config.seed = 7;

  obs::MetricsRegistry serial_metrics;
  config.metrics = &serial_metrics;
  config.num_threads = 1;
  const ScenarioResult serial = run_scenario(config);

  obs::MetricsRegistry parallel_metrics;
  config.metrics = &parallel_metrics;
  config.num_threads = 4;
  const ScenarioResult parallel = run_scenario(config);

  EXPECT_EQ(serial.violation_time, parallel.violation_time);
  EXPECT_EQ(serial.violation_time_total, parallel.violation_time_total);
  EXPECT_EQ(serial.faulty_vm, parallel.faulty_vm);

  // The management action stream must match event for event.
  std::ostringstream serial_events, parallel_events;
  serial.events.to_jsonl(serial_events, "determinism");
  parallel.events.to_jsonl(parallel_events, "determinism");
  EXPECT_EQ(serial_events.str(), parallel_events.str());

  // Every counter and gauge matches bit-for-bit; histograms hold
  // wall-clock timings, so only their populations must agree.
  ASSERT_EQ(serial_metrics.counters().size(),
            parallel_metrics.counters().size());
  for (const auto& [name, counter] : serial_metrics.counters()) {
    const auto it = parallel_metrics.counters().find(name);
    ASSERT_NE(it, parallel_metrics.counters().end()) << name;
    EXPECT_EQ(counter.value(), it->second.value()) << name;
  }
  ASSERT_EQ(serial_metrics.gauges().size(), parallel_metrics.gauges().size());
  for (const auto& [name, gauge] : serial_metrics.gauges()) {
    const auto it = parallel_metrics.gauges().find(name);
    ASSERT_NE(it, parallel_metrics.gauges().end()) << name;
    EXPECT_EQ(gauge.value(), it->second.value()) << name;
  }
  ASSERT_EQ(serial_metrics.histograms().size(),
            parallel_metrics.histograms().size());
  for (const auto& [name, histogram] : serial_metrics.histograms()) {
    const auto it = parallel_metrics.histograms().find(name);
    ASSERT_NE(it, parallel_metrics.histograms().end()) << name;
    EXPECT_EQ(histogram.count(), it->second.count()) << name;
  }
}

}  // namespace
}  // namespace prepare
