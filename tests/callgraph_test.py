#!/usr/bin/env python3
"""Unit tests for tools/prepare_callgraph.py (the libclang-free core).

Runs everywhere — the facts are hand-written dicts, not extracted from
C++ — so the interprocedural rule engine, the suppression machinery and
the output encoders stay tested on machines without libclang. The
libclang extraction layer on top is covered by the fixture goldens
(prepare_analyze.py --fixtures), which CI runs with LLVM installed.
"""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "tools"))
import prepare_callgraph as pcg  # noqa: E402


def fn(name, file="src/core/x.cpp", line=1, cls=None, hot=False,
       confined=False, has_body=True, is_lambda=False, spelling=None):
    return {"name": name, "spelling": spelling or name.split("::")[-1],
            "file": file, "line": line, "cls": cls, "hot": hot,
            "confined": confined, "has_body": has_body,
            "is_lambda": is_lambda}


def graph_of(facts):
    g = pcg.CallGraph()
    g.add_facts(facts)
    g.finalize()
    return g


class ConfinementTest(unittest.TestCase):
    def test_worker_reaching_confined_method_is_flagged_at_the_boundary(self):
        facts = pcg.new_facts()
        facts["functions"] = {
            "w": fn("lambda(src/core/x.cpp:9)", line=9, is_lambda=True,
                    spelling="operator()"),
            "helper": fn("prepare::helper", line=20),
            "rec": fn("prepare::Sink::record", file="src/obs/sink.h",
                      line=5, cls="Sink", spelling="record"),
        }
        facts["classes"] = {"Sink": {"name": "prepare::Sink",
                                     "confined": True, "bases": []}}
        facts["calls"] = [["w", "helper", "src/core/x.cpp", 10],
                          ["helper", "rec", "src/core/x.cpp", 21]]
        facts["workers"] = ["w"]
        findings = graph_of(facts).confinement_findings()
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0]["rule"], "thread-confined")
        # Anchored at the boundary call site, not at the method.
        self.assertEqual((findings[0]["file"], findings[0]["line"]),
                         ("src/core/x.cpp", 21))
        self.assertIn("Sink::record", findings[0]["message"])
        self.assertIn("helper", findings[0]["message"])

    def test_confinement_is_inherited_from_base_classes(self):
        facts = pcg.new_facts()
        facts["functions"] = {
            "w": fn("lambda(src/core/x.cpp:3)", line=3, is_lambda=True),
            "m": fn("prepare::Derived::poke", cls="Derived",
                    spelling="poke"),
        }
        facts["classes"] = {
            "Base": {"name": "prepare::Base", "confined": True, "bases": []},
            "Mid": {"name": "prepare::Mid", "confined": False,
                    "bases": ["Base"]},
            "Derived": {"name": "prepare::Derived", "confined": False,
                        "bases": ["Mid"]},
        }
        facts["calls"] = [["w", "m", "src/core/x.cpp", 4]]
        facts["workers"] = ["w"]
        findings = graph_of(facts).confinement_findings()
        self.assertEqual([f["line"] for f in findings], [4])

    def test_driver_calls_to_confined_code_are_allowed(self):
        facts = pcg.new_facts()
        facts["functions"] = {
            "drv": fn("prepare::driver"),
            "rec": fn("prepare::Sink::record", cls="Sink"),
        }
        facts["classes"] = {"Sink": {"name": "prepare::Sink",
                                     "confined": True, "bases": []}}
        facts["calls"] = [["drv", "rec", "src/core/x.cpp", 7]]
        self.assertEqual(graph_of(facts).confinement_findings(), [])

    def test_workers_outside_src_are_not_enforced(self):
        facts = pcg.new_facts()
        facts["functions"] = {
            "w": fn("lambda(tests/pool_test.cpp:9)",
                    file="tests/pool_test.cpp", line=9, is_lambda=True),
            "rec": fn("prepare::Sink::record", cls="Sink"),
        }
        facts["classes"] = {"Sink": {"name": "prepare::Sink",
                                     "confined": True, "bases": []}}
        facts["calls"] = [["w", "rec", "tests/pool_test.cpp", 10]]
        facts["prims"] = [["w", "hot-alloc", "std::vector::push_back",
                           "tests/pool_test.cpp", 11]]
        facts["workers"] = ["w"]
        g = graph_of(facts)
        self.assertEqual(g.confinement_findings(), [])
        self.assertEqual(g.hot_findings(), [])


class VirtualDispatchTest(unittest.TestCase):
    def facts(self):
        facts = pcg.new_facts()
        facts["functions"] = {
            "hotfn": fn("prepare::predict", hot=True),
            "B::m": fn("prepare::Base::step", cls="B", spelling="step"),
            "D::m": fn("prepare::Derived::step", cls="D", spelling="step"),
        }
        facts["classes"] = {
            "B": {"name": "prepare::Base", "confined": False, "bases": []},
            "D": {"name": "prepare::Derived", "confined": False,
                  "bases": ["B"]},
        }
        facts["vcalls"] = [["hotfn", "B::m", "B", "step",
                            "src/core/x.cpp", 12]]
        facts["prims"] = [["D::m", "hot-alloc", "operator new",
                           "src/models/d.cpp", 30]]
        return facts

    def test_virtual_call_dispatches_to_overrides_in_the_subtree(self):
        findings = graph_of(self.facts()).hot_findings()
        self.assertEqual([(f["rule"], f["file"], f["line"])
                          for f in findings],
                         [("hot-alloc", "src/models/d.cpp", 30)])
        self.assertIn("Derived::step", findings[0]["message"])

    def test_unrelated_class_overrides_are_not_dispatch_targets(self):
        facts = self.facts()
        facts["functions"]["U::m"] = fn("prepare::Unrelated::step",
                                        cls="U", spelling="step")
        facts["classes"]["U"] = {"name": "prepare::Unrelated",
                                 "confined": False, "bases": []}
        facts["prims"].append(["U::m", "hot-io", "printf()",
                               "src/obs/u.cpp", 40])
        findings = graph_of(facts).hot_findings()
        self.assertEqual([f["rule"] for f in findings], ["hot-alloc"])


class HotPathTest(unittest.TestCase):
    def test_direct_primitive_in_hot_function(self):
        facts = pcg.new_facts()
        facts["functions"] = {"h": fn("prepare::predict", hot=True)}
        facts["prims"] = [["h", "hot-lock", "std::mutex::lock",
                           "src/core/x.cpp", 5]]
        findings = graph_of(facts).hot_findings()
        self.assertEqual(len(findings), 1)
        self.assertIn("in hot function 'predict'", findings[0]["message"])

    def test_destructor_of_local_object_is_charged_to_the_user(self):
        facts = pcg.new_facts()
        facts["functions"] = {
            "h": fn("prepare::predict", hot=True),
            "dtor": fn("prepare::Timer::~Timer", cls="T", spelling="~Timer"),
            "stop": fn("prepare::Timer::stop", cls="T", spelling="stop"),
        }
        facts["classes"] = {"T": {"name": "prepare::Timer",
                                  "confined": False, "bases": []}}
        facts["calls"] = [["dtor", "stop", "src/obs/t.h", 61]]
        facts["uses"] = [["h", "T", "src/core/x.cpp", 9]]
        facts["prims"] = [["stop", "hot-lock", "prepare::MutexLock",
                           "src/obs/t.cpp", 80]]
        findings = graph_of(facts).hot_findings()
        self.assertEqual([(f["file"], f["line"]) for f in findings],
                         [("src/obs/t.cpp", 80)])
        self.assertIn("~Timer", findings[0]["message"])

    def test_same_primitive_from_two_roots_reports_once(self):
        facts = pcg.new_facts()
        facts["functions"] = {
            "h1": fn("prepare::a", hot=True),
            "h2": fn("prepare::b", hot=True),
            "leaf": fn("prepare::leaf"),
        }
        facts["calls"] = [["h1", "leaf", "src/core/x.cpp", 2],
                          ["h2", "leaf", "src/core/x.cpp", 8]]
        facts["prims"] = [["leaf", "hot-io", "fflush()",
                           "src/core/x.cpp", 20]]
        self.assertEqual(len(graph_of(facts).hot_findings()), 1)

    def test_merging_facts_accumulates_annotations_across_tus(self):
        decl = pcg.new_facts()
        decl["functions"] = {"f": fn("prepare::predict", hot=True,
                                     has_body=False, line=10,
                                     file="src/core/x.h")}
        body = pcg.new_facts()
        body["functions"] = {"f": fn("prepare::predict", line=50)}
        body["prims"] = [["f", "hot-alloc", "std::to_string()",
                          "src/core/x.cpp", 55]]
        g = pcg.CallGraph()
        g.add_facts(decl)
        g.add_facts(body)
        g.finalize()
        self.assertTrue(g.functions["f"]["hot"])
        self.assertEqual(g.functions["f"]["file"], "src/core/x.cpp")
        self.assertEqual(len(g.hot_findings()), 1)


class SuppressionTest(unittest.TestCase):
    def write(self, text):
        tmp = tempfile.NamedTemporaryFile(
            "w", suffix=".cpp", delete=False, encoding="utf-8")
        self.addCleanup(os.unlink, tmp.name)
        tmp.write(text)
        tmp.close()
        return tmp.name

    def test_same_line_and_previous_line_comments_both_match(self):
        lines = ["x.resize(n);  // prepare-analyze: allow(hot-alloc): ok\n",
                 "// prepare-analyze: allow(hot-io): flush is cold\n",
                 "fflush(stdout);\n",
                 "int y = 0;\n",
                 "y += 1;  // prepare-analyze: allow(hot-lock): wrong line\n",
                 "take_lock();\n"]
        self.assertEqual(pcg.find_suppression(lines, 1, "hot-alloc")[0], 1)
        self.assertEqual(pcg.find_suppression(lines, 3, "hot-io")[0], 2)
        # Line 5 is code, not a comment-only line: it does not govern 6.
        self.assertIsNone(pcg.find_suppression(lines, 6, "hot-lock"))
        # Rule mismatch never matches.
        self.assertIsNone(pcg.find_suppression(lines, 1, "hot-io"))

    def test_justified_suppression_is_consumed_and_counted(self):
        path = self.write("// prepare-analyze: allow(hot-alloc): steady\n"
                          "buf.resize(n);\n")
        diags = pcg.Diagnostics()
        diags.add("src/core/x.cpp", 2, "hot-alloc", "allocation",
                  real_path=path)
        self.assertEqual(diags.items, [])
        self.assertEqual(diags.suppressed, {"hot-alloc": 1})
        self.assertEqual(diags.unused_suppressions(
            {"src/core/x.cpp": path}), [])

    def test_reasonless_suppression_becomes_a_finding(self):
        path = self.write("buf.resize(n);  // prepare-analyze: "
                          "allow(hot-alloc)\n")
        diags = pcg.Diagnostics()
        diags.add("src/core/x.cpp", 1, "hot-alloc", "allocation",
                  real_path=path)
        self.assertEqual([i[2] for i in diags.items], ["suppression"])

    def test_unmatched_suppressions_are_audited(self):
        path = self.write("int x = 0;\n"
                          "// prepare-analyze: allow(hot-io): stale\n"
                          "int y = x;\n")
        diags = pcg.Diagnostics()
        unused = diags.unused_suppressions({"src/core/x.cpp": path})
        self.assertEqual([(u[0], u[1], u[2]) for u in unused],
                         [("src/core/x.cpp", 2, "unused-suppression")])

    def test_duplicate_diagnostics_across_tus_count_once(self):
        path = self.write("// prepare-analyze: allow(hot-alloc): steady\n"
                          "buf.resize(n);\n")
        diags = pcg.Diagnostics()
        for _ in range(3):  # the header is seen from three TUs
            diags.add("src/core/x.h", 2, "hot-alloc", "allocation",
                      real_path=path)
        self.assertEqual(diags.suppressed, {"hot-alloc": 1})


class OutputTest(unittest.TestCase):
    ITEMS = [("src/core/x.cpp", 9, "hot-alloc", "allocation on the hot path"),
             ("src/core/a.cpp", 3, "thread-confined", "confined reachable")]

    def test_json_shape(self):
        doc = pcg.to_json(self.ITEMS, {"hot-alloc": 1, "thread-confined": 1},
                          {"hot-alloc": 2})
        self.assertEqual(doc["version"], 2)
        self.assertEqual([f["file"] for f in doc["findings"]],
                         ["src/core/a.cpp", "src/core/x.cpp"])
        self.assertEqual(doc["summary"]["hot-alloc"],
                         {"found": 1, "suppressed": 2})

    def test_sarif_shape(self):
        doc = pcg.to_sarif(self.ITEMS)
        run = doc["runs"][0]
        self.assertEqual(doc["version"], "2.1.0")
        self.assertEqual([r["id"] for r in run["tool"]["driver"]["rules"]],
                         ["hot-alloc", "thread-confined"])
        result = run["results"][1]
        self.assertEqual(result["ruleId"], "hot-alloc")
        loc = result["locations"][0]["physicalLocation"]
        self.assertEqual(loc["artifactLocation"]["uri"], "src/core/x.cpp")
        self.assertEqual(loc["region"]["startLine"], 9)

    def test_summary_table_lists_every_rule(self):
        diags = pcg.Diagnostics()
        diags.add("src/core/x.cpp", 1, "hot-io", "io",
                  real_path=os.devnull)
        rows = diags.summary_lines()
        self.assertEqual(len(rows), 2)  # header + one rule
        self.assertIn("hot-io", rows[1])


if __name__ == "__main__":
    unittest.main(verbosity=2)
