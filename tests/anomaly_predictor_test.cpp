#include "core/anomaly_predictor.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"

namespace prepare {
namespace {

/// Synthetic component: feature 0 declines toward zero during anomalies
/// (free memory), feature 1 rises (CPU), feature 2 is noise.
struct SyntheticTrace {
  std::vector<std::vector<double>> rows;
  std::vector<bool> abnormal;
};

SyntheticTrace leak_trace(std::uint64_t seed) {
  SyntheticTrace out;
  Rng rng(seed);
  auto emit = [&](double free_mem, double cpu, bool abnormal) {
    out.rows.push_back({free_mem + rng.gaussian(0.0, 2.0),
                        cpu + rng.gaussian(0.0, 1.0),
                        rng.uniform(0.0, 10.0)});
    out.abnormal.push_back(abnormal);
  };
  // Healthy phase.
  for (int i = 0; i < 120; ++i) emit(300.0, 20.0, false);
  // Decline phase (still labeled normal until the SLO trips).
  for (int i = 0; i < 30; ++i)
    emit(300.0 - 8.0 * i, 20.0 + 0.8 * i, false);
  // Violation phase.
  for (int i = 0; i < 40; ++i) emit(20.0, 85.0, true);
  // Recovery.
  for (int i = 0; i < 40; ++i) emit(300.0, 20.0, false);
  return out;
}

std::vector<std::string> names() { return {"free_mem", "cpu", "noise"}; }

TEST(AnomalyPredictor, RequiresFeatures) {
  EXPECT_THROW(AnomalyPredictor({}), CheckFailure);
}

TEST(AnomalyPredictor, LifecycleChecks) {
  AnomalyPredictor p(names());
  EXPECT_FALSE(p.trained());
  EXPECT_THROW(p.observe({1.0, 2.0, 3.0}), CheckFailure);
  EXPECT_THROW(p.predict(TickIndex{1}), CheckFailure);
  EXPECT_THROW(p.classify_current(), CheckFailure);
}

TEST(AnomalyPredictor, TrainsAndClassifiesCurrent) {
  AnomalyPredictor p(names());
  const auto trace = leak_trace(1);
  p.train(trace.rows, trace.abnormal);
  EXPECT_TRUE(p.trained());
  EXPECT_TRUE(p.discriminative());
  p.observe({20.0, 85.0, 5.0});
  EXPECT_TRUE(p.classify_current().abnormal);
  p.observe({300.0, 20.0, 5.0});
  p.observe({300.0, 20.0, 5.0});
  EXPECT_FALSE(p.classify_current().abnormal);
}

TEST(AnomalyPredictor, PredictsAnomalyDuringDecline) {
  AnomalyPredictor p(names());
  const auto trace = leak_trace(2);
  p.train(trace.rows, trace.abnormal);
  // Feed a fresh decline; the predictor should alarm before the values
  // reach the violation-era levels.
  Rng rng(3);
  bool alarmed_early = false;
  for (int i = 0; i < 30; ++i) {
    const double free_mem = 300.0 - 8.0 * i;
    p.observe({free_mem + rng.gaussian(0.0, 2.0),
               20.0 + 0.8 * i + rng.gaussian(0.0, 1.0),
               rng.uniform(0.0, 10.0)});
    if (!p.ready()) continue;
    const auto result = p.predict(TickIndex{10});
    if (result.classification.abnormal && free_mem > 80.0)
      alarmed_early = true;
  }
  EXPECT_TRUE(alarmed_early);
}

TEST(AnomalyPredictor, PredictedValuesFollowTrend) {
  AnomalyPredictor p(names());
  const auto trace = leak_trace(4);
  p.train(trace.rows, trace.abnormal);
  // Mid-decline context: the predicted free_mem at the horizon should be
  // well below the current value.
  Rng rng(5);
  for (int i = 0; i < 15; ++i)
    p.observe({300.0 - 8.0 * i, 20.0 + 0.8 * i, rng.uniform(0.0, 10.0)});
  const auto result = p.predict(TickIndex{8});
  EXPECT_LT(result.predicted_values[0], 300.0 - 8.0 * 14);
}

TEST(AnomalyPredictor, AttributionPinpointsLeakFeatures) {
  AnomalyPredictor p(names());
  const auto trace = leak_trace(6);
  p.train(trace.rows, trace.abnormal);
  p.observe({20.0, 85.0, 5.0});
  const auto cls = p.classify_current();
  const auto order = Classifier::ranked_attributes(cls);
  EXPECT_NE(order[0], 2u);  // noise must not rank first
  EXPECT_GT(cls.impacts[0], 0.0);
}

TEST(AnomalyPredictor, NonDiscriminativeWhenClassesOverlap) {
  // Labels are independent of the features: the model cannot separate.
  std::vector<std::vector<double>> rows;
  std::vector<bool> abnormal;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    rows.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0),
                    rng.uniform(0.0, 1.0)});
    abnormal.push_back(i % 5 == 0);
  }
  AnomalyPredictor p(names());
  p.train(rows, abnormal);
  EXPECT_FALSE(p.discriminative());
  EXPECT_LT(p.train_tpr(), 0.5);
}

TEST(AnomalyPredictor, AllNormalTrainingIsDiscriminativeByConvention) {
  std::vector<std::vector<double>> rows(50, {1.0, 2.0, 3.0});
  std::vector<bool> abnormal(50, false);
  AnomalyPredictor p(names());
  p.train(rows, abnormal);
  EXPECT_TRUE(p.discriminative());
  EXPECT_DOUBLE_EQ(p.train_tpr(), 1.0);
}

TEST(AnomalyPredictor, NaiveBayesBackendWorks) {
  PredictorConfig config;
  config.classifier = ClassifierKind::kNaiveBayes;
  AnomalyPredictor p(names(), config);
  const auto trace = leak_trace(8);
  p.train(trace.rows, trace.abnormal);
  p.observe({20.0, 85.0, 5.0});
  EXPECT_TRUE(p.classify_current().abnormal);
}

TEST(AnomalyPredictor, SimpleMarkovBackendWorks) {
  PredictorConfig config;
  config.order = MarkovOrder::kSimple;
  AnomalyPredictor p(names(), config);
  const auto trace = leak_trace(9);
  p.train(trace.rows, trace.abnormal);
  p.observe({300.0, 20.0, 5.0});
  EXPECT_NO_THROW(p.predict(TickIndex{6}));
}

TEST(AnomalyPredictor, MismatchedRowSizesThrow) {
  AnomalyPredictor p(names());
  EXPECT_THROW(p.train({{1.0, 2.0}}, {false}), CheckFailure);
  const auto trace = leak_trace(10);
  p.train(trace.rows, trace.abnormal);
  EXPECT_THROW(p.observe({1.0}), CheckFailure);
}

TEST(AnomalyPredictor, RetrainReplacesModel) {
  AnomalyPredictor p(names());
  const auto trace = leak_trace(11);
  p.train(trace.rows, trace.abnormal);
  // Retrain with all-normal data: nothing should classify abnormal.
  std::vector<std::vector<double>> rows(60, {100.0, 10.0, 5.0});
  std::vector<bool> abnormal(60, false);
  p.train(rows, abnormal);
  p.observe({20.0, 85.0, 5.0});
  EXPECT_FALSE(p.classify_current().abnormal);
}

}  // namespace
}  // namespace prepare
