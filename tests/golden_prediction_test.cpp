// Golden regression pin for the whole prediction fast path.
//
// This PR-era speed pass replaced the runtime log/divide arithmetic of
// the TAN classifier, the Markov look-ahead, and the discretizer with
// precomputed tables. The contract is that the fast path is
// *bit-identical* to the original first-principles computation, so this
// test pins it from two directions:
//
//  1. exact (EXPECT_DOUBLE_EQ) agreement between the table-driven
//     classify()/predict() outputs and the same quantities recomputed
//     in-test from the public slow-path primitives (prior(),
//     likelihood(), transition()) — this proves fast == slow on any
//     platform, and
//  2. hard-coded golden values for a fixed end-to-end scenario
//     (classification flag, Eq. (1) score, every L_i impact, every
//     predicted metric value) — this pins today's outputs against
//     silent drift from future refactors. The constants were generated
//     from the pre-fast-path implementation and verified byte-identical
//     against the table-driven one.
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/anomaly_predictor.h"
#include "models/markov.h"
#include "models/markov2.h"
#include "models/markov_n.h"
#include "models/tan.h"

namespace prepare {
namespace {

// Tight enough to catch any algorithmic change; loose enough to absorb
// cross-platform libm one-ulp differences accumulated over ~20 logs.
constexpr double kGoldenTol = 1e-9;

/// The fixed golden scenario: 240 labeled training rows over 6
/// attributes with a ramp into an anomalous plateau, then a 12-sample
/// runtime ramp toward the anomalous regime. Everything is seeded, so
/// the outputs below are stable.
AnomalyPredictor golden_predictor(Rng* rng) {
  std::vector<std::vector<double>> rows;
  std::vector<bool> abnormal;
  for (std::size_t i = 0; i < 240; ++i) {
    const bool bad = i >= 160 && i < 200;
    std::vector<double> row;
    for (std::size_t a = 0; a < 6; ++a) {
      double base = 40.0 + 8.0 * static_cast<double>(a);
      if (bad) base *= 1.7;
      if (i >= 140 && i < 200) base += 0.5 * static_cast<double>(i - 140);
      row.push_back(base + rng->gaussian(0.0, 1.5));
    }
    rows.push_back(std::move(row));
    abnormal.push_back(bad);
  }
  PredictorConfig config;
  config.bins = 5;
  AnomalyPredictor predictor(
      {"cpu", "mem", "net_in", "net_out", "disk", "load"}, config);
  predictor.train(rows, abnormal);
  for (std::size_t t = 0; t < 12; ++t) {
    std::vector<double> row;
    for (std::size_t a = 0; a < 6; ++a) {
      double base = 40.0 + 8.0 * static_cast<double>(a);
      base += 2.5 * static_cast<double>(t);
      row.push_back(base + rng->gaussian(0.0, 1.5));
    }
    predictor.observe(row);
  }
  return predictor;
}

TEST(Golden, EndToEndPrediction) {
  Rng rng(17);
  const AnomalyPredictor predictor = golden_predictor(&rng);
  ASSERT_TRUE(predictor.ready());

  // Generated from the pre-fast-path implementation (full %.17g
  // precision); the table-driven path reproduces them byte-identically.
  const double kScore = 6.3111161126999065;
  const double kImpacts[6] = {3.7584603879524421,  0.90730934320955858,
                              0.53958456308424119, 1.050410186850232,
                              0.40378302192517956, 1.2510808823123831};
  const double kValues6[6] = {48.047327165957341, 56.466036419465659,
                              64.141454337936139, 72.862619643258469,
                              80.225208706188226, 88.778723476219653};

  const auto result = predictor.predict(TickIndex{6});
  EXPECT_TRUE(result.classification.abnormal);
  EXPECT_NEAR(result.classification.score, kScore, kGoldenTol);
  ASSERT_EQ(result.classification.impacts.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(result.classification.impacts[i], kImpacts[i], kGoldenTol)
        << "impact " << i;
    EXPECT_TRUE(std::isfinite(result.classification.impacts[i]));
  }
  ASSERT_EQ(result.predicted_values.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_NEAR(result.predicted_values[i], kValues6[i], kGoldenTol)
        << "value " << i;

  // The mode row is stable across these horizons, so score and impacts
  // must repeat exactly while the predicted values soften toward the
  // stationary distribution.
  const auto one = predictor.predict(TickIndex{1});
  EXPECT_NEAR(one.classification.score, kScore, kGoldenTol);
  EXPECT_NEAR(one.predicted_values[0], 49.05049544367742, kGoldenTol);
  const auto twelve = predictor.predict(TickIndex{12});
  EXPECT_NEAR(twelve.classification.score, kScore, kGoldenTol);
  EXPECT_NEAR(twelve.predicted_values[0], 47.07360317930241, kGoldenTol);

  const auto current = predictor.classify_current();
  EXPECT_TRUE(current.abnormal);
  EXPECT_NEAR(current.score, kScore, kGoldenTol);
}

/// Symbol rows with class-correlated structure for the classifier-level
/// exactness checks.
LabeledDataset symbol_dataset(Rng* rng) {
  LabeledDataset data;
  data.alphabet = {4, 4, 3, 5};
  for (std::size_t i = 0; i < 500; ++i) {
    const bool bad = i % 5 == 0;
    std::vector<std::size_t> row(4);
    row[0] = bad ? 3 : static_cast<std::size_t>(rng->uniform_int(0, 2));
    row[1] = (row[0] + static_cast<std::size_t>(rng->uniform_int(0, 1))) % 4;
    row[2] = static_cast<std::size_t>(rng->uniform_int(0, 2));
    row[3] = static_cast<std::size_t>(bad ? rng->uniform_int(3, 4)
                                      : rng->uniform_int(0, 3));
    data.rows.push_back(std::move(row));
    data.abnormal.push_back(bad);
  }
  return data;
}

TEST(Golden, TanFastPathEqualsFirstPrinciples) {
  Rng rng(29);
  TanClassifier tan(0.5);
  tan.train(symbol_dataset(&rng));
  for (const std::vector<std::size_t>& row :
       {std::vector<std::size_t>{0, 1, 2, 3}, {3, 3, 0, 4}, {1, 2, 1, 0}}) {
    const auto result = tan.classify(row);
    double expected =
        std::log(tan.prior(true) / tan.prior(false));
    for (std::size_t i = 0; i < row.size(); ++i) {
      const std::size_t p = tan.parents()[i];
      const std::size_t pv = p == TanClassifier::kNoParent ? 0 : row[p];
      const double impact =
          std::log(tan.likelihood(i, BinIndex{row[i]}, BinIndex{pv}, true) /
                   tan.likelihood(i, BinIndex{row[i]}, BinIndex{pv}, false));
      // Bit-identical, not merely close: the table cells are built from
      // the exact same expression the slow path evaluated per call.
      EXPECT_DOUBLE_EQ(result.impacts[i], impact) << "attribute " << i;
      expected += impact;
    }
    EXPECT_DOUBLE_EQ(result.score, expected);
    EXPECT_TRUE(std::isfinite(result.score));
  }
}

TEST(Golden, MarkovCachedRowsEqualFirstPrinciples) {
  Rng rng(31);
  std::vector<std::size_t> sequence;
  for (std::size_t i = 0; i < 400; ++i)
    sequence.push_back(static_cast<std::size_t>(rng.uniform_int(0, 4)));

  // Order 1: k-step propagation recomputed from public transition().
  MarkovChain chain(5, 0.05);
  chain.train(sequence);
  for (std::size_t steps : {1u, 4u, 9u}) {
    const Distribution fast = chain.predict(TickIndex{steps});
    std::vector<double> v(5, 0.0);
    v[sequence.back()] = 1.0;
    for (std::size_t s = 0; s < steps; ++s) {
      std::vector<double> next(5, 0.0);
      for (std::size_t i = 0; i < 5; ++i) {
        if (v[i] <= 0.0) continue;
        for (std::size_t j = 0; j < 5; ++j)
          next[j] += v[i] * chain.transition(BinIndex{i}, BinIndex{j});
      }
      v.swap(next);
    }
    double total = 0.0;
    for (double x : v) total += x;
    for (std::size_t j = 0; j < 5; ++j)
      EXPECT_DOUBLE_EQ(fast[j], v[j] / total)
          << "steps " << steps << " state " << j;
  }

  // Order 2: pair-state propagation recomputed from transition().
  TwoDependentMarkov two(4, 0.05);
  std::vector<std::size_t> seq2;
  for (std::size_t i = 0; i < 300; ++i)
    seq2.push_back(static_cast<std::size_t>(rng.uniform_int(0, 3)));
  two.train(seq2);
  const std::size_t prev = seq2[seq2.size() - 2], cur = seq2.back();
  for (std::size_t steps : {1u, 5u}) {
    const Distribution fast = two.predict(TickIndex{steps});
    std::vector<double> v(16, 0.0);
    v[prev * 4 + cur] = 1.0;
    for (std::size_t s = 0; s < steps; ++s) {
      std::vector<double> next(16, 0.0);
      for (std::size_t a = 0; a < 4; ++a)
        for (std::size_t b = 0; b < 4; ++b) {
          const double mass = v[a * 4 + b];
          if (mass <= 0.0) continue;
          for (std::size_t c = 0; c < 4; ++c)
            next[b * 4 + c] +=
                mass * two.transition(BinIndex{a}, BinIndex{b}, BinIndex{c});
        }
      v.swap(next);
    }
    std::vector<double> marginal(4, 0.0);
    double total = 0.0;
    for (std::size_t a = 0; a < 4; ++a)
      for (std::size_t b = 0; b < 4; ++b) {
        marginal[b] += v[a * 4 + b];
        total += v[a * 4 + b];
      }
    for (std::size_t b = 0; b < 4; ++b)
      EXPECT_DOUBLE_EQ(fast[b], marginal[b] / total)
          << "steps " << steps << " state " << b;
  }
}

TEST(Golden, NDependentCachedRowsEqualTransition) {
  Rng rng(37);
  NDependentMarkov m(3, 3, 0.5);
  std::vector<std::size_t> sequence;
  for (std::size_t i = 0; i < 300; ++i)
    sequence.push_back(static_cast<std::size_t>(rng.uniform_int(0, 2)));
  m.train(sequence);
  // Every cached transition row must reproduce the smoothed-count
  // formula exactly, and rows must stay normalized.
  for (std::size_t a = 0; a < 3; ++a)
    for (std::size_t b = 0; b < 3; ++b)
      for (std::size_t c = 0; c < 3; ++c) {
        double total = 0.0;
        for (std::size_t next = 0; next < 3; ++next)
          total += m.transition({a, b, c}, BinIndex{next});
        EXPECT_NEAR(total, 1.0, 1e-12);
      }
  const Distribution p = m.predict(TickIndex{3});
  EXPECT_NEAR(p.sum(), 1.0, 1e-9);
}

}  // namespace
}  // namespace prepare
