#include "report/report.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/experiment.h"
#include "temp_path.h"

namespace prepare {
namespace {

const ScenarioResult& managed_run() {
  static const ScenarioResult result = [] {
    ScenarioConfig config;
    config.app = AppKind::kSystemS;
    config.fault = FaultKind::kMemoryLeak;
    config.scheme = Scheme::kPrepare;
    config.seed = 7;
    return run_scenario(config);
  }();
  return result;
}

ReportInput input() {
  ReportInput in;
  in.store = &managed_run().store;
  in.slo = &managed_run().slo;
  in.events = &managed_run().events;
  in.title = "leak run";
  in.slo_metric_name = "throughput (tuples/s)";
  return in;
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0, pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

TEST(Report, ContainsStructureAndData) {
  const std::string html = render_html_report(input());
  EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
  EXPECT_NE(html.find("leak run"), std::string::npos);
  EXPECT_NE(html.find("throughput (tuples/s)"), std::string::npos);
  // One headline chart + one per VM.
  EXPECT_EQ(count_occurrences(html, "<svg"),
            1 + managed_run().store.vm_names().size());
  EXPECT_EQ(count_occurrences(html, "<svg"),
            count_occurrences(html, "</svg>"));
  EXPECT_EQ(count_occurrences(html, "<figure>"),
            count_occurrences(html, "</figure>"));
  // Every VM gets a panel.
  for (const auto& vm : managed_run().store.vm_names())
    EXPECT_NE(html.find(vm), std::string::npos);
}

TEST(Report, ViolationShadingAndEventsPresent) {
  const std::string html = render_html_report(input());
  if (!managed_run().slo.intervals().empty()) {
    EXPECT_NE(html.find("class='violation'"), std::string::npos);
  }
  // The PREPARE run scaled something: markers exist.
  EXPECT_NE(html.find("stroke-dasharray"), std::string::npos);
}

TEST(Report, SummaryNumbersMatch) {
  const std::string html = render_html_report(input());
  std::ostringstream expect;
  expect << managed_run().store.vm_names().size();
  EXPECT_NE(html.find("<td>monitored VMs</td><td>" + expect.str()),
            std::string::npos);
}

TEST(Report, WritesFile) {
  const std::string path = test_util::unique_temp_path("report_test.html");
  write_html_report(input(), path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_GT(content.str().size(), 1000u);
  std::remove(path.c_str());
}

TEST(Report, RejectsMissingInputs) {
  ReportInput in;
  EXPECT_THROW(render_html_report(in), CheckFailure);
  in.store = &managed_run().store;
  EXPECT_THROW(render_html_report(in), CheckFailure);
  SloLog empty;
  in.slo = &empty;
  EXPECT_THROW(render_html_report(in), CheckFailure);  // no trace
}

TEST(Report, UnwritablePathThrows) {
  EXPECT_THROW(write_html_report(input(), "/nonexistent-dir/r.html"),
               std::runtime_error);
}

}  // namespace
}  // namespace prepare
