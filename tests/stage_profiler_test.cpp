#include "obs/stage_profiler.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace prepare {
namespace obs {
namespace {

TEST(StageProfiler, DisabledWithNullRegistry) {
  StageProfiler profiler(nullptr);
  EXPECT_FALSE(profiler.enabled());
  EXPECT_EQ(profiler.stage(kStageDiscretize), nullptr);
  EXPECT_TRUE(profiler.stages().empty());
  // Timing through the disabled profiler is a no-op, not a crash.
  { ScopedTimer timer = profiler.scoped(kStageDiscretize); }
}

TEST(StageProfiler, StageRegistersHistogramUnderCanonicalName) {
  MetricsRegistry registry;
  StageProfiler profiler(&registry);
  EXPECT_TRUE(profiler.enabled());
  Histogram* stage = profiler.stage(kStageTanClassify);
  ASSERT_NE(stage, nullptr);
  EXPECT_EQ(stage,
            registry.histogram(stage_metric_name(kStageTanClassify)));
  EXPECT_EQ(stage_metric_name("tan_classify"), "stage.tan_classify.seconds");
}

TEST(StageProfiler, RepeatedStageLookupReturnsSameHistogram) {
  MetricsRegistry registry;
  StageProfiler profiler(&registry);
  Histogram* a = profiler.stage(kStagePrevention);
  Histogram* b = profiler.stage(kStagePrevention);
  EXPECT_EQ(a, b);
  ASSERT_EQ(profiler.stages().size(), 1u);
  EXPECT_EQ(profiler.stages()[0].first, kStagePrevention);
}

TEST(ScopedTimer, RecordsOneSamplePerScope) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("stage.x.seconds");
  { ScopedTimer timer(h); }
  { ScopedTimer timer(h); }
  EXPECT_EQ(h->count(), 2u);
  EXPECT_GE(h->min(), 0.0);
}

TEST(ScopedTimer, StopIsIdempotent) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("stage.x.seconds");
  {
    ScopedTimer timer(h);
    timer.stop();
    timer.stop();  // second stop and the destructor add nothing
  }
  EXPECT_EQ(h->count(), 1u);
}

TEST(ScopedTimer, NullHistogramIsNoOp) {
  ScopedTimer timer(nullptr);
  timer.stop();  // no crash
}

TEST(ScopedTimer, NestedTimersEachRecordTheirOwnSpan) {
  MetricsRegistry registry;
  Histogram* outer = registry.histogram("stage.outer.seconds");
  Histogram* inner = registry.histogram("stage.inner.seconds");
  {
    ScopedTimer a(outer);
    {
      ScopedTimer b(inner);
    }
  }
  EXPECT_EQ(outer->count(), 1u);
  EXPECT_EQ(inner->count(), 1u);
  // The inner span is contained in the outer one, not subtracted.
  EXPECT_GE(outer->max(), inner->max());
}

TEST(StageProfiler, PipelineStageListIsCanonical) {
  ASSERT_EQ(kPipelineStages.size(), 7u);
  EXPECT_STREQ(kPipelineStages.front(), "monitor_sample");
  EXPECT_STREQ(kPipelineStages.back(), "prevention");
}

TEST(StageReport, ListsEveryTimedStage) {
  MetricsRegistry registry;
  StageProfiler profiler(&registry);
  for (const char* stage : kPipelineStages) {
    ScopedTimer timer = profiler.scoped(stage);
  }
  std::ostringstream os;
  write_stage_report(registry, os);
  const std::string report = os.str();
  for (const char* stage : kPipelineStages)
    EXPECT_NE(report.find(stage), std::string::npos)
        << "missing stage " << stage << " in:\n" << report;
}

TEST(StageReport, IgnoresNonStageHistograms) {
  MetricsRegistry registry;
  registry.histogram("latency.seconds")->record(1e-3);
  std::ostringstream os;
  write_stage_report(registry, os);
  EXPECT_EQ(os.str().find("latency"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace prepare
