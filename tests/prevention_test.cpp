#include "core/prevention.h"

#include <gtest/gtest.h>

#include "monitor/attributes.h"
#include "sim/clock.h"
#include "sim/cluster.h"

namespace prepare {
namespace {

class PreventionTest : public ::testing::Test {
 protected:
  explicit PreventionTest(PreventionConfig config = PreventionConfig()) {
    host_ = cluster_.add_host("h1");
    spare_ = cluster_.add_host("spare");
    vm_ = cluster_.add_vm("vm", 1.0, 512.0, host_);
    hypervisor_ = std::make_unique<Hypervisor>(&clock_, &cluster_, &log_);
    actuator_ = std::make_unique<PreventionActuator>(
        hypervisor_.get(), &cluster_, &store_, &log_, config);
  }

  /// Appends a monitoring sample so validation windows have data.
  void record(double t, double value) {
    AttributeVector v{};
    for (std::size_t a = 0; a < kAttributeCount; ++a) v[a] = value;
    store_.record("vm", t, v);
  }

  Diagnosis::FaultyVm faulty(std::vector<Attribute> ranked) {
    Diagnosis::FaultyVm f;
    f.vm = "vm";
    f.score = 2.0;
    f.ranked = std::move(ranked);
    return f;
  }

  SimClock clock_;
  Cluster cluster_;
  EventLog log_;
  MetricStore store_;
  Host* host_ = nullptr;
  Host* spare_ = nullptr;
  Vm* vm_ = nullptr;
  std::unique_ptr<Hypervisor> hypervisor_;
  std::unique_ptr<PreventionActuator> actuator_;
};

class ScalingPreventionTest : public PreventionTest {
 protected:
  static PreventionConfig config() {
    PreventionConfig c;
    c.mode = PreventionMode::kScalingOnly;
    c.reclaim_enabled = false;
    return c;
  }
  ScalingPreventionTest() : PreventionTest(config()) {}
};

TEST_F(ScalingPreventionTest, MemoryMetricTriggersMemoryScaling) {
  record(0.0, 10.0);
  EXPECT_TRUE(actuator_->actuate(faulty({Attribute::kFreeMem}), 0.0));
  clock_.advance(Seconds{1.0});
  EXPECT_GT(vm_->mem_alloc(), 512.0);
  EXPECT_DOUBLE_EQ(vm_->cpu_alloc(), 1.0);
  EXPECT_EQ(log_.count_of(EventKind::kPrevention), 1u);
}

TEST_F(ScalingPreventionTest, CpuMetricTriggersCpuScaling) {
  record(0.0, 10.0);
  EXPECT_TRUE(actuator_->actuate(faulty({Attribute::kCpuUtil}), 0.0));
  clock_.advance(Seconds{1.0});
  EXPECT_GT(vm_->cpu_alloc(), 1.0);
}

TEST_F(ScalingPreventionTest, CompanionActionCoversOtherResourceKind) {
  record(0.0, 10.0);
  // CPU ranked first, memory second: both should scale in one shot.
  EXPECT_TRUE(actuator_->actuate(
      faulty({Attribute::kCpuUtil, Attribute::kFreeMem}), 0.0));
  clock_.advance(Seconds{1.0});
  EXPECT_GT(vm_->cpu_alloc(), 1.0);
  EXPECT_GT(vm_->mem_alloc(), 512.0);
}

TEST_F(ScalingPreventionTest, NonActionableMetricsSkipped) {
  record(0.0, 10.0);
  EXPECT_TRUE(actuator_->actuate(
      faulty({Attribute::kNetIn, Attribute::kFreeMem}), 0.0));
  clock_.advance(Seconds{1.0});
  EXPECT_GT(vm_->mem_alloc(), 512.0);
}

TEST_F(ScalingPreventionTest, NoActionableMetricNoAction) {
  record(0.0, 10.0);
  EXPECT_FALSE(actuator_->actuate(faulty({Attribute::kNetOut}), 0.0));
  EXPECT_EQ(actuator_->actions_fired(), 0u);
}

TEST_F(ScalingPreventionTest, ValidationOpenBlocksReactuation) {
  record(0.0, 10.0);
  EXPECT_TRUE(actuator_->actuate(faulty({Attribute::kFreeMem}), 0.0));
  EXPECT_TRUE(actuator_->validation_open("vm"));
  EXPECT_FALSE(actuator_->actuate(faulty({Attribute::kFreeMem}), 5.0));
}

TEST_F(ScalingPreventionTest, ValidationClearsWhenHealthy) {
  record(0.0, 10.0);
  actuator_->actuate(faulty({Attribute::kFreeMem}), 0.0);
  record(5.0, 10.0);
  record(25.0, 10.0);
  actuator_->on_sample(25.0, {});  // VM healthy -> validation success
  EXPECT_FALSE(actuator_->validation_open("vm"));
  EXPECT_EQ(actuator_->validations_failed(), 0u);
}

TEST_F(ScalingPreventionTest, FailedValidationTriesNextMetric) {
  record(0.0, 10.0);
  actuator_->actuate(
      faulty({Attribute::kFreeMem, Attribute::kDiskRead,
              Attribute::kCpuUtil}),
      0.0);
  const double mem_after_first = 512.0 * 2.0;
  clock_.advance(Seconds{1.0});
  EXPECT_DOUBLE_EQ(vm_->mem_alloc(), mem_after_first);
  // Still unhealthy after the validation delay: the actuator must fall
  // through disk_read (not actionable) to cpu_util.
  record(10.0, 10.0);
  record(21.0, 10.0);
  actuator_->on_sample(21.0, {"vm"});
  clock_.advance(Seconds{1.0});
  EXPECT_GT(actuator_->validations_failed(), 0u);
  EXPECT_GT(vm_->cpu_alloc(), 1.0);
}

TEST_F(ScalingPreventionTest, ExhaustedRankingClosesValidation) {
  record(0.0, 10.0);
  actuator_->actuate(faulty({Attribute::kFreeMem}), 0.0);
  record(10.0, 10.0);
  record(21.0, 10.0);
  actuator_->on_sample(21.0, {"vm"});
  EXPECT_FALSE(actuator_->validation_open("vm"));
  // A later alert may retry from the top (the leak kept growing).
  EXPECT_TRUE(actuator_->actuate(faulty({Attribute::kFreeMem}), 30.0));
}

TEST_F(ScalingPreventionTest, ScalingClampedByHostHeadroom) {
  // Fill the host so memory can only grow a little.
  cluster_.add_vm("neighbor", 0.5, 2800.0, host_);
  record(0.0, 10.0);
  EXPECT_TRUE(actuator_->actuate(faulty({Attribute::kFreeMem}), 0.0));
  clock_.advance(Seconds{1.0});
  EXPECT_LE(vm_->mem_alloc(), 512.0 + 3584.0);
  EXPECT_GT(vm_->mem_alloc(), 512.0);
}

class MigrationPreventionTest : public PreventionTest {
 protected:
  static PreventionConfig config() {
    PreventionConfig c;
    c.mode = PreventionMode::kMigrationOnly;
    c.reclaim_enabled = false;
    return c;
  }
  MigrationPreventionTest() : PreventionTest(config()) {}
};

TEST_F(MigrationPreventionTest, MigratesToSpareWithGrownAllocation) {
  record(0.0, 10.0);
  EXPECT_TRUE(actuator_->actuate(faulty({Attribute::kFreeMem}), 0.0));
  EXPECT_TRUE(vm_->migrating());
  clock_.advance(Seconds{30.0});
  EXPECT_EQ(cluster_.host_of(*vm_), spare_);
  EXPECT_GT(vm_->mem_alloc(), 512.0);
  EXPECT_GT(vm_->cpu_alloc(), 1.0);
}

TEST_F(MigrationPreventionTest, CooldownFallsBackToScaling) {
  record(0.0, 10.0);
  actuator_->actuate(faulty({Attribute::kFreeMem}), 0.0);
  clock_.advance(Seconds{30.0});
  // Close the open validation as healthy, then trigger again within the
  // migration cooldown: the actuator should scale on the current host.
  record(25.0, 10.0);
  actuator_->on_sample(25.0, {});
  const double mem_before = vm_->mem_alloc();
  EXPECT_TRUE(actuator_->actuate(faulty({Attribute::kFreeMem}), 40.0));
  clock_.advance(Seconds{1.0});
  EXPECT_EQ(cluster_.host_of(*vm_), spare_);  // no second migration
  EXPECT_GT(vm_->mem_alloc(), mem_before);
}

TEST_F(MigrationPreventionTest, NoTargetHostNoAction) {
  cluster_.add_vm("blocker", 1.7, 3000.0, spare_);
  record(0.0, 10.0);
  // Migration impossible and (in kMigrationOnly) scaling fallback still
  // applies on the local host.
  EXPECT_TRUE(actuator_->actuate(faulty({Attribute::kFreeMem}), 0.0));
  clock_.advance(Seconds{1.0});
  EXPECT_EQ(cluster_.host_of(*vm_), host_);
  EXPECT_GT(vm_->mem_alloc(), 512.0);
}

class ReclaimTest : public PreventionTest {
 protected:
  static PreventionConfig config() {
    PreventionConfig c;
    c.mode = PreventionMode::kScalingOnly;
    c.reclaim_enabled = true;
    c.reclaim_idle_s = 30.0;
    return c;
  }
  ReclaimTest() : PreventionTest(config()) {}
};

TEST_F(ReclaimTest, IdleOverProvisionedVmShrinksTowardBaseline) {
  vm_->set_cpu_alloc(1.8);
  vm_->set_mem_alloc(1024.0);
  // Sustained low utilization samples.
  for (double t = 0.0; t <= 60.0; t += 5.0) record(t, 10.0);
  actuator_->on_sample(60.0, {});
  clock_.advance(Seconds{1.0});
  EXPECT_LT(vm_->cpu_alloc(), 1.8);
  EXPECT_LT(vm_->mem_alloc(), 1024.0);
  // Repeated reclaim converges to the baseline, never below.
  for (double t = 65.0; t <= 600.0; t += 5.0) {
    record(t, 10.0);
    actuator_->on_sample(t, {});
    clock_.advance(Seconds{5.0});
  }
  EXPECT_DOUBLE_EQ(vm_->cpu_alloc(), 1.0);
  EXPECT_DOUBLE_EQ(vm_->mem_alloc(), 512.0);
}

TEST_F(ReclaimTest, BusyVmNotReclaimed) {
  vm_->set_cpu_alloc(1.8);
  for (double t = 0.0; t <= 60.0; t += 5.0) record(t, 90.0);  // hot
  actuator_->on_sample(60.0, {});
  clock_.advance(Seconds{1.0});
  EXPECT_DOUBLE_EQ(vm_->cpu_alloc(), 1.8);
}

TEST_F(ReclaimTest, UnhealthyVmNotReclaimed) {
  vm_->set_cpu_alloc(1.8);
  for (double t = 0.0; t <= 60.0; t += 5.0) record(t, 10.0);
  actuator_->on_sample(60.0, {"vm"});
  clock_.advance(Seconds{1.0});
  EXPECT_DOUBLE_EQ(vm_->cpu_alloc(), 1.8);
}

TEST_F(ReclaimTest, BaselineVmUntouched) {
  for (double t = 0.0; t <= 60.0; t += 5.0) record(t, 10.0);
  actuator_->on_sample(60.0, {});
  clock_.advance(Seconds{1.0});
  EXPECT_DOUBLE_EQ(vm_->cpu_alloc(), 1.0);
  EXPECT_DOUBLE_EQ(vm_->mem_alloc(), 512.0);
}

}  // namespace
}  // namespace prepare
