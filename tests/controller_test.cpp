// Integration tests: the controllers driving the full simulated testbed
// through short fault scenarios.
#include "core/controller.h"

#include <gtest/gtest.h>

#include "core/experiment.h"

namespace prepare {
namespace {

ScenarioConfig base_config(Scheme scheme) {
  ScenarioConfig c;
  c.app = AppKind::kSystemS;
  c.fault = FaultKind::kMemoryLeak;
  c.scheme = scheme;
  c.seed = 11;
  c.prepare.prevention.mode = PreventionMode::kScalingOnly;
  return c;
}

TEST(Controllers, PrepareBeatsNoIntervention) {
  auto none = run_scenario(base_config(Scheme::kNoIntervention));
  auto prep = run_scenario(base_config(Scheme::kPrepare));
  EXPECT_GT(none.violation_time, 60.0);
  EXPECT_LT(prep.violation_time, none.violation_time * 0.5);
}

TEST(Controllers, ReactiveBeatsNoIntervention) {
  auto none = run_scenario(base_config(Scheme::kNoIntervention));
  auto reactive = run_scenario(base_config(Scheme::kReactive));
  EXPECT_LT(reactive.violation_time, none.violation_time * 0.7);
}

TEST(Controllers, PrepareActsOnTheFaultyVm) {
  auto result = run_scenario(base_config(Scheme::kPrepare));
  bool acted_on_faulty = false;
  for (const auto& e : result.events.events()) {
    if (e.kind == EventKind::kPrevention && e.subject == result.faulty_vm &&
        e.time >= 880.0)
      acted_on_faulty = true;
  }
  EXPECT_TRUE(acted_on_faulty);
}

TEST(Controllers, PrepareRaisesAlertsBeforeSecondViolation) {
  auto result = run_scenario(base_config(Scheme::kPrepare));
  // Find the first violation after the second injection start (900).
  double violation_start = 1e18;
  for (const auto& iv : result.slo.intervals())
    if (iv.start >= 880.0) {
      violation_start = iv.start;
      break;
    }
  double first_alert = 1e18;
  for (const auto& e : result.events.events())
    if (e.kind == EventKind::kAlert && e.subject == result.faulty_vm &&
        e.time >= 880.0) {
      first_alert = e.time;
      break;
    }
  ASSERT_LT(first_alert, 1e18);
  // With prevention the violation may never happen at all; if it does,
  // the alert must precede it.
  EXPECT_LT(first_alert, violation_start);
}

TEST(Controllers, ReactiveActsOnlyAfterViolation) {
  auto result = run_scenario(base_config(Scheme::kReactive));
  double first_violation = 1e18;
  for (const auto& iv : result.slo.intervals()) {
    first_violation = iv.start;
    break;
  }
  for (const auto& e : result.events.events()) {
    if (e.kind != EventKind::kPrevention) continue;
    EXPECT_GE(e.time, first_violation);
  }
}

TEST(Controllers, NoInterventionTakesNoActions) {
  auto result = run_scenario(base_config(Scheme::kNoIntervention));
  EXPECT_EQ(result.events.count_of(EventKind::kPrevention), 0u);
  EXPECT_EQ(result.events.count_of(EventKind::kCpuScale), 0u);
  EXPECT_EQ(result.events.count_of(EventKind::kMemScale), 0u);
  EXPECT_EQ(result.events.count_of(EventKind::kMigrationStart), 0u);
}

TEST(Controllers, MigrationModeMigratesFaultyVm) {
  auto config = base_config(Scheme::kPrepare);
  config.prepare.prevention.mode = PreventionMode::kMigrationOnly;
  auto result = run_scenario(config);
  bool migrated_faulty = false;
  for (const auto& e : result.events.events())
    if (e.kind == EventKind::kMigrationDone && e.subject == result.faulty_vm)
      migrated_faulty = true;
  EXPECT_TRUE(migrated_faulty);
}

TEST(Controllers, CpuHogHandledByBothSchemes) {
  auto config = base_config(Scheme::kReactive);
  config.fault = FaultKind::kCpuHog;
  auto reactive = run_scenario(config);
  config.scheme = Scheme::kPrepare;
  auto prep = run_scenario(config);
  config.scheme = Scheme::kNoIntervention;
  auto none = run_scenario(config);
  EXPECT_LT(reactive.violation_time, none.violation_time * 0.3);
  EXPECT_LE(prep.violation_time, reactive.violation_time * 1.5 + 10.0);
}

TEST(Controllers, BottleneckPreventedByScaling) {
  auto config = base_config(Scheme::kPrepare);
  config.fault = FaultKind::kBottleneck;
  auto prep = run_scenario(config);
  config.scheme = Scheme::kNoIntervention;
  auto none = run_scenario(config);
  EXPECT_LT(prep.violation_time, none.violation_time * 0.5);
}

TEST(Controllers, RubisScenariosWork) {
  auto config = base_config(Scheme::kPrepare);
  config.app = AppKind::kRubis;
  for (FaultKind fault :
       {FaultKind::kMemoryLeak, FaultKind::kCpuHog, FaultKind::kBottleneck}) {
    config.fault = fault;
    config.scheme = Scheme::kPrepare;
    auto prep = run_scenario(config);
    config.scheme = Scheme::kNoIntervention;
    auto none = run_scenario(config);
    EXPECT_LT(prep.violation_time, none.violation_time * 0.5)
        << fault_kind_name(fault);
  }
}

TEST(Controllers, ContextValidationThrowsOnNulls) {
  ControllerContext ctx;  // all nulls
  EXPECT_THROW(NoInterventionManager{ctx}, CheckFailure);
}

}  // namespace
}  // namespace prepare
