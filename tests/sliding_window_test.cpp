#include "timeseries/sliding_window.h"

#include <gtest/gtest.h>

namespace prepare {
namespace {

TEST(SlidingWindow, RejectsZeroCapacity) {
  EXPECT_THROW(SlidingWindow<int>(0), CheckFailure);
}

TEST(SlidingWindow, FillsUpToCapacity) {
  SlidingWindow<int> w(3);
  w.push(1);
  w.push(2);
  EXPECT_EQ(w.size(), 2u);
  EXPECT_FALSE(w.full());
  w.push(3);
  EXPECT_TRUE(w.full());
}

TEST(SlidingWindow, EvictsOldest) {
  SlidingWindow<int> w(3);
  for (int i = 1; i <= 5; ++i) w.push(i);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0], 3);
  EXPECT_EQ(w[2], 5);
  EXPECT_EQ(w.newest(), 5);
}

TEST(SlidingWindow, CountIf) {
  SlidingWindow<int> w(4);
  for (int i = 1; i <= 4; ++i) w.push(i);
  EXPECT_EQ(w.count_if([](int x) { return x % 2 == 0; }), 2u);
}

TEST(SlidingWindow, Sum) {
  SlidingWindow<double> w(3);
  w.push(1.5);
  w.push(2.5);
  EXPECT_DOUBLE_EQ(w.sum(), 4.0);
}

TEST(SlidingWindow, OutOfRangeIndexThrows) {
  SlidingWindow<int> w(2);
  w.push(1);
  EXPECT_THROW(w[1], CheckFailure);
}

TEST(SlidingWindow, NewestOnEmptyThrows) {
  SlidingWindow<int> w(2);
  EXPECT_THROW(w.newest(), CheckFailure);
}

TEST(SlidingWindow, ClearResets) {
  SlidingWindow<int> w(2);
  w.push(1);
  w.clear();
  EXPECT_EQ(w.size(), 0u);
}

// Property sweep: after n pushes the window holds min(n, capacity)
// elements, and they are exactly the most recent ones in order.
class WindowCapacitySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WindowCapacitySweep, HoldsMostRecent) {
  const std::size_t cap = GetParam();
  SlidingWindow<std::size_t> w(cap);
  const std::size_t pushes = 50;
  for (std::size_t i = 0; i < pushes; ++i) w.push(i);
  ASSERT_EQ(w.size(), std::min(pushes, cap));
  for (std::size_t i = 0; i < w.size(); ++i)
    EXPECT_EQ(w[i], pushes - w.size() + i);
}

INSTANTIATE_TEST_SUITE_P(Capacities, WindowCapacitySweep,
                         ::testing::Values(1, 2, 3, 7, 49, 50, 51, 100));

}  // namespace
}  // namespace prepare
