#include <gtest/gtest.h>

#include "common/check.h"
#include "sim/cluster.h"
#include "sim/host.h"

namespace prepare {
namespace {

TEST(Host, GuestCapacityExcludesDom0) {
  Host host("h");
  EXPECT_DOUBLE_EQ(host.guest_cpu_capacity(), 1.8);
  EXPECT_DOUBLE_EQ(host.guest_mem_capacity(), 3584.0);
}

TEST(Host, RejectsCapacitySmallerThanReserve) {
  HostCapacity c;
  c.cpu_cores = 0.1;
  EXPECT_THROW(Host("h", c), CheckFailure);
}

TEST(Host, PlacementTracksAllocation) {
  Host host("h");
  Vm a("a", 1.0, 512.0), b("b", 0.5, 1024.0);
  host.place(&a);
  host.place(&b);
  EXPECT_DOUBLE_EQ(host.cpu_allocated(), 1.5);
  EXPECT_DOUBLE_EQ(host.mem_allocated(), 1536.0);
  EXPECT_NEAR(host.cpu_headroom(), 0.3, 1e-12);
  EXPECT_TRUE(host.hosts(a));
}

TEST(Host, RejectsOverCapacityPlacement) {
  Host host("h");
  Vm big("big", 2.0, 512.0);  // > 1.8 guest cores
  EXPECT_THROW(host.place(&big), CheckFailure);
}

TEST(Host, RejectsDuplicatePlacement) {
  Host host("h");
  Vm a("a", 0.5, 256.0);
  host.place(&a);
  EXPECT_THROW(host.place(&a), CheckFailure);
}

TEST(Host, RemoveFreesCapacity) {
  Host host("h");
  Vm a("a", 1.0, 512.0);
  host.place(&a);
  host.remove(&a);
  EXPECT_DOUBLE_EQ(host.cpu_allocated(), 0.0);
  EXPECT_FALSE(host.hosts(a));
  EXPECT_THROW(host.remove(&a), CheckFailure);
}

TEST(Host, CanGrowChecksHeadroom) {
  Host host("h");
  Vm a("a", 1.0, 512.0);
  host.place(&a);
  EXPECT_TRUE(host.can_grow(a, 0.8, 0.0));
  EXPECT_FALSE(host.can_grow(a, 0.9, 0.0));
  EXPECT_TRUE(host.can_grow(a, 0.0, 3072.0));
  EXPECT_FALSE(host.can_grow(a, 0.0, 3073.0));
}

TEST(Host, CanGrowForForeignVmThrows) {
  Host host("h");
  Vm stranger("s", 0.5, 256.0);
  EXPECT_THROW(host.can_grow(stranger, 0.1, 0.0), CheckFailure);
}

TEST(Host, ReservationShrinksHeadroom) {
  Host host("h");
  EXPECT_TRUE(host.reserve(1.0, 1024.0));
  EXPECT_NEAR(host.cpu_headroom(), 0.8, 1e-12);
  EXPECT_FALSE(host.can_fit(1.0, 0.0));
  host.release(1.0, 1024.0);
  EXPECT_NEAR(host.cpu_headroom(), 1.8, 1e-12);
}

TEST(Host, ReserveFailsWithoutHeadroom) {
  Host host("h");
  EXPECT_FALSE(host.reserve(2.0, 0.0));
  EXPECT_DOUBLE_EQ(host.reserved_cpu(), 0.0);
}

TEST(Host, OverReleaseRejected) {
  Host host("h");
  host.reserve(0.5, 100.0);
  EXPECT_THROW(host.release(1.0, 100.0), CheckFailure);
}

TEST(Cluster, AddAndFind) {
  Cluster cluster;
  Host* h1 = cluster.add_host("h1");
  Vm* vm = cluster.add_vm("vm1", 1.0, 512.0, h1);
  EXPECT_EQ(cluster.find_host("h1"), h1);
  EXPECT_EQ(cluster.find_vm("vm1"), vm);
  EXPECT_EQ(cluster.find_vm("nope"), nullptr);
  EXPECT_EQ(cluster.host_of(*vm), h1);
}

TEST(Cluster, AssignsVmIdsInCreationOrder) {
  Cluster cluster;
  Host* h1 = cluster.add_host("h1");
  Vm loose("loose", 1.0, 512.0);
  EXPECT_EQ(loose.id(), kUnassignedVmId);

  Vm* a = cluster.add_vm("a", 0.5, 256.0, h1);
  Vm* b = cluster.add_vm("b", 0.5, 256.0, h1);
  EXPECT_EQ(a->id(), VmId{1});
  EXPECT_EQ(b->id(), VmId{2});
  EXPECT_EQ(cluster.vm_by_id(a->id()), a);
  EXPECT_EQ(cluster.vm_by_id(b->id()), b);
  EXPECT_EQ(cluster.vm_by_id(kUnassignedVmId), nullptr);
  EXPECT_EQ(cluster.vm_by_id(VmId{99}), nullptr);
}

TEST(Cluster, DuplicateNamesRejected) {
  Cluster cluster;
  Host* h1 = cluster.add_host("h1");
  cluster.add_vm("vm1", 0.5, 256.0, h1);
  EXPECT_THROW(cluster.add_host("h1"), CheckFailure);
  EXPECT_THROW(cluster.add_vm("vm1", 0.5, 256.0, h1), CheckFailure);
}

TEST(Cluster, FindTargetHostSkipsExcludedAndFull) {
  Cluster cluster;
  Host* h1 = cluster.add_host("h1");
  Host* h2 = cluster.add_host("h2");
  cluster.add_vm("big", 1.8, 512.0, h2);  // h2 full on CPU
  EXPECT_EQ(cluster.find_target_host(1.0, 512.0, h1), nullptr);
  Host* h3 = cluster.add_host("h3");
  EXPECT_EQ(cluster.find_target_host(1.0, 512.0, h1), h3);
}

TEST(Cluster, MoveVmRelocates) {
  Cluster cluster;
  Host* h1 = cluster.add_host("h1");
  Host* h2 = cluster.add_host("h2");
  Vm* vm = cluster.add_vm("vm1", 1.0, 512.0, h1);
  cluster.move_vm(vm, h2);
  EXPECT_EQ(cluster.host_of(*vm), h2);
  EXPECT_FALSE(h1->hosts(*vm));
}

TEST(Cluster, MoveVmWithAllocAppliesNewAllocation) {
  Cluster cluster;
  Host* h1 = cluster.add_host("h1");
  Host* h2 = cluster.add_host("h2");
  Vm* vm = cluster.add_vm("vm1", 1.0, 512.0, h1);
  cluster.move_vm_with_alloc(vm, h2, 1.5, 1024.0);
  EXPECT_DOUBLE_EQ(vm->cpu_alloc(), 1.5);
  EXPECT_DOUBLE_EQ(vm->mem_alloc(), 1024.0);
  EXPECT_EQ(cluster.host_of(*vm), h2);
}

TEST(Cluster, MoveVmToSameHostRejected) {
  Cluster cluster;
  Host* h1 = cluster.add_host("h1");
  Vm* vm = cluster.add_vm("vm1", 1.0, 512.0, h1);
  EXPECT_THROW(cluster.move_vm(vm, h1), CheckFailure);
}

TEST(Cluster, MoveVmOverCapacityRejected) {
  Cluster cluster;
  Host* h1 = cluster.add_host("h1");
  Host* h2 = cluster.add_host("h2");
  cluster.add_vm("filler", 1.5, 2048.0, h2);
  Vm* vm = cluster.add_vm("vm1", 1.0, 512.0, h1);
  EXPECT_THROW(cluster.move_vm(vm, h2), CheckFailure);
  // Unchanged placement after the failed move.
  EXPECT_EQ(cluster.host_of(*vm), h1);
}

TEST(Cluster, BestFitPicksTightestHost) {
  Cluster cluster;
  Host* origin = cluster.add_host("origin");
  Host* roomy = cluster.add_host("roomy");
  Host* snug = cluster.add_host("snug");
  cluster.add_vm("filler", 1.0, 2048.0, snug);  // snug has less headroom
  (void)origin;
  // Both fit a 0.5-core / 512 MB landing, but snug is the tighter fit.
  EXPECT_EQ(cluster.find_best_target_host(0.5, 512.0, origin), snug);
  // First-fit just returns the roomy host (declaration order).
  EXPECT_EQ(cluster.find_target_host(0.5, 512.0, origin), roomy);
}

TEST(Cluster, BestFitSkipsExcludedAndFull) {
  Cluster cluster;
  Host* origin = cluster.add_host("origin");
  Host* full = cluster.add_host("full");
  cluster.add_vm("blocker", 1.7, 3000.0, full);
  EXPECT_EQ(cluster.find_best_target_host(1.0, 1024.0, origin), nullptr);
  Host* spare = cluster.add_host("spare");
  EXPECT_EQ(cluster.find_best_target_host(1.0, 1024.0, origin), spare);
  // Excluding the spare leaves the (empty) origin as the only candidate.
  EXPECT_EQ(cluster.find_best_target_host(1.0, 1024.0, spare), origin);
}

}  // namespace
}  // namespace prepare
