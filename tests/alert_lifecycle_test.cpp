// End-to-end acceptance test for alert-lifecycle tracing: runs a full
// fault-injection scenario with the SpanTracer attached and checks the
// whole observability contract — complete causal chains, ledger/span
// consistency, schema validation via tools/check_obs_schema.py, and
// thread-count independence of the span set.
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "obs/metrics.h"
#include "obs/span_tracer.h"
#include "obs/trace_export.h"

namespace prepare {
namespace {

using obs::EpisodeOutcome;
using obs::SpanStage;
using obs::SpanTracer;

ScenarioConfig scenario_config() {
  ScenarioConfig config;
  config.fault = FaultKind::kMemoryLeak;
  config.scheme = Scheme::kPrepare;
  config.seed = 11;
  return config;
}

class AlertLifecycleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = scenario_config();
    config_.metrics = &registry_;
    config_.tracer = &tracer_;
    result_ = run_scenario(config_);
  }

  ScenarioConfig config_;
  obs::MetricsRegistry registry_;
  SpanTracer tracer_{&registry_};
  ScenarioResult result_;
};

TEST_F(AlertLifecycleTest, EveryEpisodeHasACompleteTerminatedSpanChain) {
  const auto episodes = tracer_.episodes();
  ASSERT_FALSE(episodes.empty()) << "the scenario produced no alerts";
  for (const auto* episode : episodes) {
    SCOPED_TRACE(episode->trace_id);
    EXPECT_TRUE(episode->closed);
    ASSERT_FALSE(episode->spans.empty());
    EXPECT_EQ(episode->spans.front().stage, SpanStage::kRawAlert);
    EXPECT_EQ(episode->spans.front().parent_id, "");
    for (std::size_t i = 0; i < episode->spans.size(); ++i) {
      const auto& span = episode->spans[i];
      EXPECT_EQ(span.span_id,
                episode->trace_id + ":" + std::to_string(i));
      if (i > 0) {
        EXPECT_EQ(span.parent_id, episode->spans[i - 1].span_id);
        EXPECT_GE(span.t_start, episode->spans[i - 1].t_start);
      }
      EXPECT_GE(span.t_end, span.t_start);
      // Terminal spans terminate: nothing may follow one.
      if (i + 1 < episode->spans.size()) {
        EXPECT_FALSE(span_stage_terminal(span.stage));
      }
    }
    EXPECT_TRUE(span_stage_terminal(episode->spans.back().stage));
  }
}

TEST_F(AlertLifecycleTest, LedgerCountersMatchSpanDerivedOutcomes) {
  std::map<EpisodeOutcome, std::size_t> derived;
  for (const auto* episode : tracer_.episodes()) {
    ASSERT_TRUE(episode->closed);
    ++derived[episode->outcome];
  }
  const auto& ledger = tracer_.ledger();
  EXPECT_EQ(ledger.prevented, derived[EpisodeOutcome::kPrevented]);
  EXPECT_EQ(ledger.false_alarm, derived[EpisodeOutcome::kFalseAlarm]);
  EXPECT_EQ(ledger.escalated, derived[EpisodeOutcome::kEscalated]);
  EXPECT_EQ(ledger.expired, derived[EpisodeOutcome::kExpired]);
  // The published counters mirror the ledger exactly.
  EXPECT_EQ(registry_.counter("alert.outcome.prevented")->value(),
            static_cast<double>(ledger.prevented));
  EXPECT_EQ(registry_.counter("alert.outcome.false_alarm")->value(),
            static_cast<double>(ledger.false_alarm));
  EXPECT_EQ(registry_.counter("alert.outcome.escalated")->value(),
            static_cast<double>(ledger.escalated));
  EXPECT_EQ(registry_.counter("alert.outcome.expired")->value(),
            static_cast<double>(ledger.expired));
  EXPECT_EQ(registry_.counter("alert.outcome.missed")->value(),
            static_cast<double>(ledger.missed));
  EXPECT_EQ(registry_.counter("alert.episodes_total")->value(),
            static_cast<double>(tracer_.episodes().size()));
}

TEST_F(AlertLifecycleTest, EmittedTracePassesSchemaCheckWithOutcomes) {
  if (std::system("python3 --version > /dev/null 2>&1") != 0)
    GTEST_SKIP() << "python3 not available";
  const std::string path =
      ::testing::TempDir() + "alert_lifecycle_trace.jsonl";
  {
    std::ofstream os(path);
    ASSERT_TRUE(os.is_open());
    obs::RunInfo info;
    info.run_id = "alert-lifecycle-test";
    info.sim_time_end = config_.run_end;
    obs::write_run_header(os, info);
    result_.events.to_jsonl(os, info.run_id);
    tracer_.write_spans_jsonl(os, info.run_id);
    obs::write_metrics_jsonl(os, registry_, info.run_id, config_.run_end);
  }
  const std::string cmd = "python3 " PREPARE_SOURCE_DIR
                          "/tools/check_obs_schema.py " +
                          path + " --require-outcomes > /dev/null";
  EXPECT_EQ(std::system(cmd.c_str()), 0)
      << "schema check failed; inspect " << path;
}

TEST(AlertLifecycleThreads, SpanSetIsIdenticalAcrossThreadCounts) {
  // The tracer runs in the serial sections of the management round, so
  // the parallel per-VM fan-out must not change a single byte of the
  // span set: same ids, same attributes, same sim timestamps.
  std::string spans_by_threads[2];
  const std::size_t thread_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    ScenarioConfig config = scenario_config();
    config.num_threads = thread_counts[i];
    SpanTracer tracer;
    config.tracer = &tracer;
    run_scenario(config);
    std::ostringstream os;
    tracer.write_spans_jsonl(os, "threads-run");
    spans_by_threads[i] = os.str();
  }
  EXPECT_FALSE(spans_by_threads[0].empty());
  EXPECT_EQ(spans_by_threads[0], spans_by_threads[1]);
}

}  // namespace
}  // namespace prepare
