// Model-introspection layer tests: golden calibration math, entropy
// probes on known transition matrices, path-prediction bit-identity,
// drift triggering under a mid-run distribution shift, and byte-identity
// of the exported introspection records across thread counts.
#include "obs/model_introspect.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/experiment.h"
#include "models/discretizer.h"
#include "models/markov.h"
#include "models/markov2.h"
#include "models/markov_n.h"
#include "models/naive_bayes.h"
#include "models/tan.h"
#include "obs/metrics.h"
#include "obs/trace_export.h"
#include "temp_path.h"

namespace prepare {
namespace {

using obs::IntrospectConfig;
using obs::MetricsRegistry;
using obs::ModelIntrospect;

std::vector<std::size_t> random_sequence(std::size_t n, std::size_t k,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::size_t> seq;
  for (std::size_t i = 0; i < n; ++i)
    seq.push_back(static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(k) - 1)));
  return seq;
}

// ---- calibration golden math ----

TEST(ModelIntrospect, GoldenBrierLogLossAndBins) {
  ModelIntrospect mi;
  mi.set_horizon(2, 5.0);

  // Round 0: predict p(h=1)=0.2, p(h=2)=0.8.
  mi.begin_round(0.0, false);
  mi.record_horizon_probs({0.2, 0.8});
  // Round 1 realizes abnormal -> resolves round 0's h=1 sample.
  mi.begin_round(5.0, true);
  mi.record_horizon_probs({0.3, 0.6});
  // Round 2 normal -> resolves round 0's h=2 and round 1's h=1.
  mi.begin_round(10.0, false);
  // Round 3 normal -> resolves round 1's h=2 (round 2 recorded nothing).
  mi.begin_round(15.0, false);
  mi.finish(20.0);

  const auto& stats = mi.horizon_stats();
  ASSERT_EQ(stats.size(), 2u);

  // Horizon step 1 resolved (p=0.2, hit) and (p=0.3, miss).
  EXPECT_EQ(stats[0].n, 2u);
  EXPECT_EQ(stats[0].hits, 1u);
  EXPECT_DOUBLE_EQ(stats[0].p_sum, 0.2 + 0.3);
  EXPECT_DOUBLE_EQ(stats[0].brier_sum,
                   (0.2 - 1.0) * (0.2 - 1.0) + 0.3 * 0.3);
  EXPECT_DOUBLE_EQ(stats[0].logloss_sum, -std::log(0.2) - std::log(0.7));

  // Horizon step 2 resolved (p=0.8, miss) and (p=0.6, miss).
  EXPECT_EQ(stats[1].n, 2u);
  EXPECT_EQ(stats[1].hits, 0u);
  EXPECT_DOUBLE_EQ(stats[1].brier_sum, 0.8 * 0.8 + 0.6 * 0.6);
  EXPECT_DOUBLE_EQ(stats[1].logloss_sum, -std::log(0.2) - std::log(0.4));

  // Reliability bins (10 buckets): 0.2 -> 2, 0.3 -> 3, 0.8 -> 8, 0.6 -> 6.
  ASSERT_EQ(stats[0].bin_n.size(), 10u);
  EXPECT_EQ(stats[0].bin_n[2], 1u);
  EXPECT_EQ(stats[0].bin_hits[2], 1u);
  EXPECT_EQ(stats[0].bin_n[3], 1u);
  EXPECT_EQ(stats[0].bin_hits[3], 0u);
  EXPECT_EQ(stats[1].bin_n[8], 1u);
  EXPECT_EQ(stats[1].bin_n[6], 1u);
  EXPECT_EQ(mi.resolved_samples(), 4u);
}

TEST(ModelIntrospect, ProbabilityEdgesLandInOuterBins) {
  ModelIntrospect mi;
  mi.set_horizon(1, 5.0);
  mi.begin_round(0.0, false);
  mi.record_horizon_probs({0.0});
  mi.record_horizon_probs({1.0});
  mi.begin_round(5.0, true);
  mi.finish(10.0);

  const auto& stats = mi.horizon_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].n, 2u);
  EXPECT_EQ(stats[0].bin_n[0], 1u);  // p = 0.0
  EXPECT_EQ(stats[0].bin_n[9], 1u);  // p = 1.0 clamps into the last bin
  // Both samples resolve against the realized-abnormal round: the p=0
  // hard miss is clamped at -log(eps) instead of infinity, the p=1
  // perfect hit costs -log(1-eps).
  const double eps = mi.config().logloss_epsilon;
  EXPECT_DOUBLE_EQ(stats[0].logloss_sum,
                   -std::log(eps) - std::log(1.0 - eps));
}

TEST(ModelIntrospect, CalibrationStrideGatesSampledRounds) {
  IntrospectConfig cfg;
  cfg.calibration_stride = 3;
  ModelIntrospect mi(nullptr, cfg);
  mi.set_horizon(2, 5.0);
  // The stride is anchored at the first round after set_horizon():
  // rounds 0, 3, 6, ... are sampled calibration rounds, the rest keep
  // the bare prediction cost.
  std::vector<bool> due;
  for (std::size_t r = 0; r < 7; ++r) {
    mi.begin_round(static_cast<double>(r) * 5.0, false);
    due.push_back(mi.calibration_due());
    if (mi.calibration_due()) mi.record_horizon_probs({0.2, 0.4});
  }
  const std::vector<bool> expected = {true, false, false, true,
                                      false, false, true};
  EXPECT_EQ(due, expected);
  mi.finish(40.0);
  // Sampled rounds 0 and 3 fully resolved within the run; round 6's
  // block is an unresolved tail. Unsampled rounds left their ring slots
  // empty and contributed nothing.
  const auto& stats = mi.horizon_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].n, 2u);
  EXPECT_EQ(stats[1].n, 2u);
}

TEST(ModelIntrospect, UnresolvedTailIsDiscarded) {
  ModelIntrospect mi;
  mi.set_horizon(4, 5.0);
  mi.begin_round(0.0, false);
  mi.record_horizon_probs({0.1, 0.2, 0.3, 0.4});
  mi.begin_round(5.0, false);  // resolves only h=1
  mi.finish(10.0);
  const auto& stats = mi.horizon_stats();
  EXPECT_EQ(stats[0].n, 1u);
  EXPECT_EQ(stats[1].n, 0u);  // target rounds past run end never realize
  EXPECT_EQ(stats[2].n, 0u);
  EXPECT_EQ(stats[3].n, 0u);
}

// ---- model-state probes ----

TEST(ModelIntrospect, MarkovRowEntropyOnKnownMatrix) {
  // Alternating 0,1,0,1,... over a 3-symbol alphabet: rows 0 and 1 are
  // occupied with near-deterministic transitions, row 2 never occurs.
  MarkovChain chain(3);
  std::vector<std::size_t> seq;
  for (std::size_t i = 0; i < 100; ++i) seq.push_back(i % 2);
  chain.train(seq);

  const auto stats = chain.row_stats();
  EXPECT_EQ(stats.rows, 3u);
  EXPECT_EQ(stats.occupied_rows, 2u);

  // Expected entropy from the public smoothed-transition accessor.
  double expected_sum = 0.0, expected_max = 0.0;
  for (std::size_t from = 0; from < 2; ++from) {
    double h = 0.0;
    for (std::size_t to = 0; to < 3; ++to) {
      const double p =
          chain.transition(BinIndex{from}, BinIndex{to}).value();
      h -= p * std::log(p);
    }
    expected_sum += h;
    expected_max = std::max(expected_max, h);
  }
  EXPECT_DOUBLE_EQ(stats.entropy_sum, expected_sum);
  EXPECT_DOUBLE_EQ(stats.entropy_max, expected_max);
  // Near-deterministic rows are far below the log(3) uniform ceiling.
  EXPECT_LT(stats.entropy_max, 0.5 * std::log(3.0));

  // A uniformly random sequence pushes every row toward log(3).
  MarkovChain uniform(3);
  uniform.train(random_sequence(5000, 3, 42));
  const auto ustats = uniform.row_stats();
  EXPECT_EQ(ustats.occupied_rows, 3u);
  EXPECT_GT(ustats.entropy_sum / 3.0, 0.95 * std::log(3.0));
}

TEST(ModelIntrospect, ProbeGaugesPublish) {
  MetricsRegistry registry;
  ModelIntrospect mi(&registry);
  mi.set_horizon(2, 5.0);
  mi.set_attribute_names({"cpu", "mem"});
  mi.begin_probe(100.0);
  mi.probe_markov(0, 0.25, 0.5, 0.75);
  mi.probe_markov(1, 0.75, 1.0, 0.25);
  mi.probe_classifier(3.5, 2.0);
  mi.end_probe();

  const auto snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.gauges.at("model.markov.row_entropy.mean"), 0.5);
  EXPECT_DOUBLE_EQ(snap.gauges.at("model.markov.row_entropy.max"), 1.0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("model.markov.row_occupancy.ratio"), 0.5);
  EXPECT_DOUBLE_EQ(snap.gauges.at("model.tan.cpt_support.min"), 3.5);
  EXPECT_DOUBLE_EQ(snap.gauges.at("model.tan.log_odds.spread"), 2.0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("model.markov.cpu.row_entropy"), 0.25);
  EXPECT_DOUBLE_EQ(snap.gauges.at("model.markov.mem.row_occupancy"), 0.25);
  EXPECT_DOUBLE_EQ(snap.counters.at("model.probe.runs_total"), 1.0);
}

// ---- path prediction bit-identity ----

template <typename Model>
void expect_path_matches_stepwise(Model& model, std::size_t alphabet) {
  constexpr std::size_t kSteps = 12;
  std::vector<Distribution> path;
  model.predict_path_into(TickIndex{kSteps}, &path);
  ASSERT_EQ(path.size(), kSteps);
  for (std::size_t s = 0; s < kSteps; ++s) {
    Distribution single(alphabet);
    model.predict_into(TickIndex{s + 1}, &single);
    for (std::size_t i = 0; i < alphabet; ++i)
      EXPECT_EQ(path[s][i], single[i]) << "step " << s << " bin " << i;
  }
}

TEST(ModelIntrospect, PredictPathBitIdenticalToPredictInto) {
  const auto seq = random_sequence(600, 4, 7);
  MarkovChain simple(4);
  simple.train(seq);
  expect_path_matches_stepwise(simple, 4);

  TwoDependentMarkov two(4);
  two.train(seq);
  expect_path_matches_stepwise(two, 4);

  NDependentMarkov general(3, 4);
  general.train(seq);
  expect_path_matches_stepwise(general, 4);
}

// ---- classifier score fast path ----

LabeledDataset synthetic_dataset() {
  LabeledDataset d;
  d.alphabet.assign(4, 3);
  Rng rng(5);
  for (std::size_t i = 0; i < 300; ++i) {
    const bool abnormal = i % 5 == 0;
    std::vector<std::size_t> row;
    for (std::size_t a = 0; a < 4; ++a) {
      const auto hi = static_cast<std::int64_t>(abnormal ? 2 : 1);
      row.push_back(static_cast<std::size_t>(rng.uniform_int(0, hi)));
    }
    d.rows.push_back(std::move(row));
    d.abnormal.push_back(abnormal);
  }
  return d;
}

TEST(ModelIntrospect, ScoreMatchesClassifyExactly) {
  const auto data = synthetic_dataset();
  TanClassifier tan;
  tan.train(data);
  NaiveBayesClassifier nb;
  nb.train(data);
  for (std::size_t i = 0; i < data.rows.size(); i += 17) {
    EXPECT_EQ(tan.score(data.rows[i]).value(),
              tan.classify(data.rows[i]).score.value());
    EXPECT_EQ(nb.score(data.rows[i]).value(),
              nb.classify(data.rows[i]).score.value());
  }
  const auto cpt = tan.cpt_stats();
  // Raw (unsmoothed) support: unseen (value, parent, class) cells are
  // legitimately zero — that sparsity is exactly what the gauge tracks.
  EXPECT_GE(cpt.support_min, 0.0);
  EXPECT_GT(cpt.support_mean, cpt.support_min);
  EXPECT_GT(cpt.log_odds_spread, 0.0);
}

// ---- discretizer fit counts ----

TEST(ModelIntrospect, DiscretizerFitCountsCoverTrainingData) {
  Discretizer disc(5);
  std::vector<double> values;
  Rng rng(9);
  for (std::size_t i = 0; i < 200; ++i) values.push_back(rng.gaussian(50, 10));
  disc.fit(values);
  const auto& counts = disc.fit_counts();
  ASSERT_EQ(counts.size(), disc.bins());
  double total = 0.0;
  for (double c : counts) total += c;
  EXPECT_DOUBLE_EQ(total, 200.0);
  // Counts match a replay of discretize() over the training values.
  std::vector<double> replay(disc.bins(), 0.0);
  for (double v : values) replay[disc.discretize(v)] += 1.0;
  for (std::size_t b = 0; b < counts.size(); ++b)
    EXPECT_DOUBLE_EQ(counts[b], replay[b]);
}

// ---- drift detection ----

TEST(ModelIntrospect, DriftTriggersOnDistributionShift) {
  IntrospectConfig cfg;
  cfg.drift_window_rounds = 4;
  cfg.drift_eval_period_rounds = 4;
  cfg.drift_min_samples = 4;
  cfg.occupancy_window = 16;
  MetricsRegistry registry;
  ModelIntrospect mi(&registry, cfg);
  mi.set_horizon(1, 5.0);
  mi.set_attribute_names({"cpu_user"});
  mi.add_baseline_occupancy(0, {16.0, 0.0});

  // Phase 1: well-calibrated (p ~ 0 and the outcome stays normal),
  // symbols match the training occupancy.
  for (std::size_t r = 0; r < 12; ++r) {
    mi.begin_round(5.0 * static_cast<double>(r), false);
    mi.record_horizon_probs({0.05});
    mi.observe_symbol(0, 0);
  }
  // Phase 2: confidently wrong (p ~ 1, outcome still normal) and the
  // runtime symbols move entirely to the other bin.
  for (std::size_t r = 12; r < 24; ++r) {
    mi.begin_round(5.0 * static_cast<double>(r), false);
    mi.record_horizon_probs({0.95});
    mi.observe_symbol(0, 1);
  }
  mi.finish(120.0);

  bool calibration_triggered = false;
  bool occupancy_triggered = false;
  for (const auto& record : mi.drift_records()) {
    if (record.kind == "calibration" && record.triggered)
      calibration_triggered = true;
    if (record.kind == "occupancy" && record.triggered) {
      occupancy_triggered = true;
      EXPECT_EQ(record.attribute, "cpu_user");
    }
  }
  EXPECT_TRUE(calibration_triggered);
  EXPECT_TRUE(occupancy_triggered);
  const auto snap = registry.snapshot();
  EXPECT_GT(snap.counters.at("model.drift.triggers_total"), 0.0);
  EXPECT_GT(snap.counters.at("model.drift.evaluations_total"), 0.0);
}

TEST(ModelIntrospect, StableRunDoesNotTrigger) {
  IntrospectConfig cfg;
  cfg.drift_window_rounds = 4;
  cfg.drift_eval_period_rounds = 4;
  cfg.drift_min_samples = 4;
  ModelIntrospect mi(nullptr, cfg);
  mi.set_horizon(1, 5.0);
  for (std::size_t r = 0; r < 24; ++r) {
    mi.begin_round(5.0 * static_cast<double>(r), false);
    mi.record_horizon_probs({0.05});
  }
  mi.finish(120.0);
  for (const auto& record : mi.drift_records())
    EXPECT_FALSE(record.triggered) << record.kind << " at t=" << record.t;
}

// ---- end-to-end determinism + schema ----

/// Runs the default scenario with introspection attached and returns
/// the full introspection JSONL section.
std::string introspection_trace(std::size_t num_threads) {
  MetricsRegistry registry;
  ModelIntrospect introspect(&registry);
  ScenarioConfig config;
  config.seed = 13;
  config.num_threads = num_threads;
  config.metrics = &registry;
  config.introspect = &introspect;
  run_scenario(config);
  std::ostringstream os;
  introspect.write_introspection_jsonl(os, "determinism-check");
  return os.str();
}

TEST(ModelIntrospect, TraceByteIdenticalAcrossThreadCounts) {
  const std::string one = introspection_trace(1);
  const std::string four = introspection_trace(4);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, four);
}

TEST(ModelIntrospect, AttachingIntrospectionDoesNotChangeTheRun) {
  ScenarioConfig config;
  config.seed = 13;
  const auto bare = run_scenario(config);

  MetricsRegistry registry;
  ModelIntrospect introspect(&registry);
  config.metrics = &registry;
  config.introspect = &introspect;
  const auto observed = run_scenario(config);

  EXPECT_EQ(bare.violation_time, observed.violation_time);
  EXPECT_EQ(bare.violation_time_total, observed.violation_time_total);
  EXPECT_EQ(bare.faulty_vm, observed.faulty_vm);
}

TEST(ModelIntrospect, ExportedTraceValidatesAgainstSchemaV3) {
  if (std::system("python3 --version > /dev/null 2>&1") != 0)
    GTEST_SKIP() << "python3 unavailable";

  MetricsRegistry registry;
  ModelIntrospect introspect(&registry);
  ScenarioConfig config;
  config.seed = 13;
  config.metrics = &registry;
  config.introspect = &introspect;
  const auto result = run_scenario(config);

  const std::string path =
      test_util::unique_temp_path("model_introspect_trace") + ".jsonl";
  {
    std::ofstream os(path);
    ASSERT_TRUE(os.good());
    obs::RunInfo info;
    info.run_id = "introspect-schema-check";
    info.sim_time_end = config.run_end;
    obs::write_run_header(os, info);
    result.events.to_jsonl(os, info.run_id);
    introspect.write_introspection_jsonl(os, info.run_id);
    obs::write_metrics_jsonl(os, registry, info.run_id, config.run_end);
  }
  const std::string cmd = "python3 " PREPARE_SOURCE_DIR
                          "/tools/check_obs_schema.py " +
                          path + " --require-calibration > /dev/null";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << "schema validation failed";
  const std::string report_cmd = "python3 " PREPARE_SOURCE_DIR
                                 "/tools/prepare_report.py " +
                                 path + " > /dev/null";
  EXPECT_EQ(std::system(report_cmd.c_str()), 0) << "prepare_report failed";
  std::remove(path.c_str());
}

}  // namespace
}  // namespace prepare
