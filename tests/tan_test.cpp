#include "models/tan.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"

namespace prepare {
namespace {

/// Attribute 0: anomaly signal. Attribute 1: copy of attribute 0 (fully
/// correlated). Attribute 2: independent noise.
LabeledDataset correlated_dataset(std::size_t n, std::uint64_t seed) {
  LabeledDataset data;
  data.alphabet = {3, 3, 3};
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const bool abnormal = i % 4 == 0;
    const std::size_t a0 =
        abnormal ? 2 : static_cast<std::size_t>(rng.uniform_int(0, 1));
    const std::size_t a1 = a0;
    const std::size_t a2 = static_cast<std::size_t>(rng.uniform_int(0, 2));
    data.rows.push_back({a0, a1, a2});
    data.abnormal.push_back(abnormal);
  }
  return data;
}

/// Verifies the parent vector forms a tree rooted at a single attribute.
void expect_valid_tree(const std::vector<std::size_t>& parents) {
  std::size_t roots = 0;
  for (std::size_t i = 0; i < parents.size(); ++i) {
    if (parents[i] == TanClassifier::kNoParent) {
      ++roots;
      continue;
    }
    ASSERT_LT(parents[i], parents.size());
    // Walk to the root; must terminate (no cycles).
    std::set<std::size_t> seen = {i};
    std::size_t cur = parents[i];
    while (cur != TanClassifier::kNoParent) {
      ASSERT_TRUE(seen.insert(cur).second) << "cycle through " << cur;
      cur = parents[cur];
    }
  }
  EXPECT_EQ(roots, 1u);
}

TEST(Tan, RejectsBadConstruction) {
  EXPECT_THROW(TanClassifier(0.0), CheckFailure);
}

TEST(Tan, StructureIsATree) {
  TanClassifier tan;
  tan.train(correlated_dataset(400, 1));
  expect_valid_tree(tan.parents());
}

TEST(Tan, CorrelatedAttributesBecomeNeighbors) {
  TanClassifier tan;
  tan.train(correlated_dataset(400, 2));
  // Attributes 0 and 1 are copies: one must be the other's parent.
  const auto& p = tan.parents();
  EXPECT_TRUE(p[1] == 0 || p[0] == 1);
}

TEST(Tan, CmiSymmetricNonNegative) {
  TanClassifier tan;
  tan.train(correlated_dataset(400, 3));
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_GE(tan.conditional_mutual_information(i, j), 0.0);
      EXPECT_DOUBLE_EQ(tan.conditional_mutual_information(i, j),
                       tan.conditional_mutual_information(j, i));
    }
  }
  // The correlated pair carries more information than the noise pair.
  EXPECT_GT(tan.conditional_mutual_information(0, 1),
            tan.conditional_mutual_information(0, 2));
}

TEST(Tan, ClassifiesPlantedSignal) {
  TanClassifier tan;
  tan.train(correlated_dataset(400, 4));
  EXPECT_TRUE(tan.classify({2, 2, 1}).abnormal);
  EXPECT_FALSE(tan.classify({0, 0, 1}).abnormal);
}

TEST(Tan, ScoreIsEquationOne) {
  // Classification::score must equal the prior log-odds plus the sum of
  // per-attribute impacts L_i (Eq. 1/2 of the paper).
  TanClassifier tan;
  tan.train(correlated_dataset(400, 5));
  const auto result = tan.classify({2, 2, 0});
  double total = std::log(tan.prior(true) / tan.prior(false));
  for (double impact : result.impacts) total += impact;
  EXPECT_NEAR(result.score, total, 1e-12);
  EXPECT_EQ(result.abnormal, result.score > 0.0);
}

TEST(Tan, ImpactsMatchLikelihoodRatios) {
  TanClassifier tan;
  tan.train(correlated_dataset(400, 6));
  const std::vector<std::size_t> row = {2, 2, 1};
  const auto result = tan.classify(row);
  for (std::size_t i = 0; i < row.size(); ++i) {
    const std::size_t p = tan.parents()[i];
    const std::size_t pv = p == TanClassifier::kNoParent ? 0 : row[p];
    const double expected = std::log(tan.likelihood(i, BinIndex{row[i]}, BinIndex{pv}, true) /
                                     tan.likelihood(i, BinIndex{row[i]}, BinIndex{pv}, false));
    EXPECT_NEAR(result.impacts[i], expected, 1e-12);
  }
}

TEST(Tan, AttributionRanksSignalFirst) {
  TanClassifier tan;
  tan.train(correlated_dataset(600, 7));
  const auto result = tan.classify({2, 2, 2});
  const auto order = Classifier::ranked_attributes(result);
  // The noise attribute must rank last.
  EXPECT_EQ(order.back(), 2u);
}

TEST(Tan, LikelihoodRowsAreDistributions) {
  TanClassifier tan;
  tan.train(correlated_dataset(300, 8));
  for (bool c : {false, true}) {
    for (std::size_t a = 0; a < 3; ++a) {
      for (std::size_t pv = 0; pv < 3; ++pv) {
        double total = 0.0;
        for (std::size_t v = 0; v < 3; ++v)
          total += tan.likelihood(a, BinIndex{v}, BinIndex{pv}, c);
        EXPECT_NEAR(total, 1.0, 1e-9);
      }
    }
  }
}

TEST(Tan, ExpectedClassificationMatchesDeltaInputs) {
  TanClassifier tan;
  tan.train(correlated_dataset(400, 9));
  const std::vector<std::size_t> row = {2, 2, 1};
  std::vector<Distribution> dists = {Distribution::delta(3, BinIndex{2}),
                                     Distribution::delta(3, BinIndex{2}),
                                     Distribution::delta(3, BinIndex{1})};
  const auto hard = tan.classify(row);
  const auto soft = tan.classify_expected(dists);
  EXPECT_NEAR(hard.score, soft.score, 1e-9);
}

TEST(Tan, SingleAttributeDegeneratesToNaiveBayes) {
  LabeledDataset data;
  data.alphabet = {2};
  for (int i = 0; i < 100; ++i) {
    const bool abnormal = i % 2 == 0;
    data.rows.push_back({abnormal ? 1u : 0u});
    data.abnormal.push_back(abnormal);
  }
  TanClassifier tan;
  tan.train(data);
  EXPECT_EQ(tan.parents()[0], TanClassifier::kNoParent);
  EXPECT_TRUE(tan.classify({1}).abnormal);
  EXPECT_FALSE(tan.classify({0}).abnormal);
}

TEST(Tan, AllNormalTrainingNeverAlarms) {
  LabeledDataset data;
  data.alphabet = {3, 3};
  Rng rng(10);
  for (int i = 0; i < 80; ++i) {
    data.rows.push_back(
        {static_cast<std::size_t>(rng.uniform_int(0, 2)),
         static_cast<std::size_t>(rng.uniform_int(0, 2))});
    data.abnormal.push_back(false);
  }
  TanClassifier tan;
  tan.train(data);
  for (std::size_t a = 0; a < 3; ++a)
    for (std::size_t b = 0; b < 3; ++b)
      EXPECT_FALSE(tan.classify({a, b}).abnormal);
}

TEST(Tan, MismatchedRowSizeThrows) {
  TanClassifier tan;
  tan.train(correlated_dataset(100, 11));
  EXPECT_THROW(tan.classify({0}), CheckFailure);
}

// Property sweep: on datasets with a planted signal of varying strength,
// the structure stays a tree and classification accuracy on the training
// set is above chance.
class TanDatasetSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TanDatasetSweep, TreeAndTrainAccuracy) {
  const auto data = correlated_dataset(300, GetParam());
  TanClassifier tan;
  tan.train(data);
  expect_valid_tree(tan.parents());
  std::size_t correct = 0;
  for (std::size_t r = 0; r < data.rows.size(); ++r)
    if (tan.classify(data.rows[r]).abnormal == data.abnormal[r]) ++correct;
  EXPECT_GT(static_cast<double>(correct) /
                static_cast<double>(data.rows.size()),
            0.8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TanDatasetSweep,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28));

}  // namespace
}  // namespace prepare
