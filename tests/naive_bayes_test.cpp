#include "models/naive_bayes.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"

namespace prepare {
namespace {

/// Two attributes over 3 bins; attribute 0 is high iff abnormal,
/// attribute 1 is pure noise.
LabeledDataset planted_dataset(std::size_t n, std::uint64_t seed) {
  LabeledDataset data;
  data.alphabet = {3, 3};
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const bool abnormal = i % 3 == 0;
    const std::size_t a0 = abnormal ? 2 : (rng.chance(0.5) ? 0 : 1);
    const std::size_t a1 = static_cast<std::size_t>(rng.uniform_int(0, 2));
    data.rows.push_back({a0, a1});
    data.abnormal.push_back(abnormal);
  }
  return data;
}

TEST(NaiveBayes, RejectsBadConstruction) {
  EXPECT_THROW(NaiveBayesClassifier(0.0), CheckFailure);
}

TEST(NaiveBayes, TrainOnEmptyThrows) {
  NaiveBayesClassifier nb;
  EXPECT_THROW(nb.train(LabeledDataset{}), CheckFailure);
}

TEST(NaiveBayes, ClassifiesPlantedSignal) {
  NaiveBayesClassifier nb;
  nb.train(planted_dataset(300, 1));
  EXPECT_TRUE(nb.classify({2, 1}).abnormal);
  EXPECT_FALSE(nb.classify({0, 1}).abnormal);
}

TEST(NaiveBayes, ScoreDecomposesIntoImpacts) {
  NaiveBayesClassifier nb;
  nb.train(planted_dataset(300, 2));
  const auto result = nb.classify({2, 0});
  double total = std::log(nb.prior(true) / nb.prior(false));
  for (double impact : result.impacts) total += impact;
  EXPECT_NEAR(result.score, total, 1e-12);
}

TEST(NaiveBayes, PlantedAttributeHasLargestImpact) {
  NaiveBayesClassifier nb;
  nb.train(planted_dataset(500, 3));
  const auto result = nb.classify({2, 2});
  const auto order = Classifier::ranked_attributes(result);
  EXPECT_EQ(order[0], 0u);
  EXPECT_GT(result.impacts[0], result.impacts[1]);
}

TEST(NaiveBayes, LikelihoodsAreDistributions) {
  NaiveBayesClassifier nb;
  nb.train(planted_dataset(200, 4));
  for (bool c : {false, true}) {
    for (std::size_t a = 0; a < 2; ++a) {
      double total = 0.0;
      for (std::size_t v = 0; v < 3; ++v) total += nb.likelihood(a, BinIndex{v}, c);
      EXPECT_NEAR(total, 1.0, 1e-9);
    }
  }
}

TEST(NaiveBayes, PriorsSumToOne) {
  NaiveBayesClassifier nb;
  nb.train(planted_dataset(200, 5));
  EXPECT_NEAR(nb.prior(true) + nb.prior(false), 1.0, 1e-12);
}

TEST(NaiveBayes, ExpectedClassificationMatchesDeltaInputs) {
  NaiveBayesClassifier nb;
  nb.train(planted_dataset(300, 6));
  const std::vector<std::size_t> row = {2, 1};
  std::vector<Distribution> dists = {Distribution::delta(3, BinIndex{2}),
                                     Distribution::delta(3, BinIndex{1})};
  const auto hard = nb.classify(row);
  const auto soft = nb.classify_expected(dists);
  EXPECT_NEAR(hard.score, soft.score, 1e-9);
  EXPECT_EQ(hard.abnormal, soft.abnormal);
}

TEST(NaiveBayes, AllNormalTrainingNeverAlarms) {
  LabeledDataset data;
  data.alphabet = {3};
  for (int i = 0; i < 50; ++i) {
    data.rows.push_back({static_cast<std::size_t>(i % 3)});
    data.abnormal.push_back(false);
  }
  NaiveBayesClassifier nb;
  nb.train(data);
  for (std::size_t v = 0; v < 3; ++v)
    EXPECT_FALSE(nb.classify({v}).abnormal);
}

TEST(NaiveBayes, UntrainedQueriesThrow) {
  NaiveBayesClassifier nb;
  EXPECT_THROW(nb.classify({0}), CheckFailure);
  EXPECT_THROW(nb.prior(true), CheckFailure);
}

}  // namespace
}  // namespace prepare
