#include "monitor/memory_estimator.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "monitor/vm_monitor.h"
#include "sim/vm.h"

namespace prepare {
namespace {

TEST(GrayboxEstimator, RejectsBadConfig) {
  GrayboxMemoryConfig c;
  c.decay = 0.0;
  EXPECT_THROW(GrayboxMemoryEstimator{c}, CheckFailure);
  c = GrayboxMemoryConfig{};
  c.disk_full_kbps = c.disk_baseline_kbps;
  EXPECT_THROW(GrayboxMemoryEstimator{c}, CheckFailure);
}

TEST(GrayboxEstimator, QuietGuestDecaysToPrior) {
  GrayboxMemoryEstimator est;
  for (int i = 0; i < 200; ++i) est.update(0.0, 40.0);
  EXPECT_NEAR(est.utilization(), est.config().quiet_prior, 0.01);
  EXPECT_FALSE(est.confident());
}

TEST(GrayboxEstimator, PagingSignalRecoversPressure) {
  GrayboxMemoryEstimator est;
  // Guest at pressure 1.0: fault rate = (1.0 - 0.9) * 4000 = 400 /s.
  est.update(400.0, 500.0);
  EXPECT_TRUE(est.confident());
  EXPECT_NEAR(est.utilization(), 1.0, 0.07);
}

TEST(GrayboxEstimator, TracksRisingLeak) {
  GrayboxMemoryEstimator est;
  double prev = est.utilization();
  bool monotone_past_onset = true;
  for (double pressure = 0.92; pressure <= 1.2; pressure += 0.02) {
    const double faults = (pressure - 0.9) * 4000.0;
    const double now = est.update(faults, 100.0 + pressure * 300.0);
    if (now < prev - 1e-9) monotone_past_onset = false;
    prev = now;
  }
  EXPECT_TRUE(monotone_past_onset);
  EXPECT_GT(est.utilization(), 1.0);
}

TEST(GrayboxEstimator, BlindBelowOnset) {
  // Pressure 0.5 produces no paging at all: the estimator cannot see it.
  GrayboxMemoryEstimator est;
  for (int i = 0; i < 50; ++i) est.update(0.0, 40.0);
  EXPECT_NEAR(est.utilization(), est.config().quiet_prior, 0.05);
}

TEST(GrayboxMonitor, LeakVisibleOnlyOncePagingStarts) {
  VmMonitorConfig config;
  config.noise = 0.0;
  config.memory_source = MemorySource::kGrayboxInference;
  VmMonitor monitor(config, 1);
  Vm vm("v", 1.0, 512.0);

  // Comfortable guest: graybox mem_util sits at the prior, not truth.
  vm.begin_tick();
  vm.set_app_mem_demand(150.0);  // true util ~29%
  vm.finalize_tick();
  const auto quiet = monitor.sample(vm);
  EXPECT_NEAR(get(quiet, Attribute::kMemUtil), 60.0, 8.0);  // prior

  // Deep pressure: graybox converges to the truth.
  vm.begin_tick();
  vm.set_app_mem_demand(512.0 * 1.05);
  vm.finalize_tick();
  AttributeVector pressured{};
  for (int i = 0; i < 5; ++i) pressured = monitor.sample(vm);
  EXPECT_GT(get(pressured, Attribute::kMemUtil), 90.0);
  EXPECT_LT(get(pressured, Attribute::kFreeMem), 60.0);
}

TEST(GrayboxMonitor, InGuestDaemonRemainsExact) {
  VmMonitorConfig config;
  config.noise = 0.0;
  VmMonitor monitor(config, 1);
  Vm vm("v", 1.0, 512.0);
  vm.begin_tick();
  vm.set_app_mem_demand(150.0);
  vm.finalize_tick();
  EXPECT_NEAR(get(monitor.sample(vm), Attribute::kMemUtil),
              150.0 / 512.0 * 100.0, 0.1);
}

}  // namespace
}  // namespace prepare
