#include "sim/clock.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"

namespace prepare {
namespace {

TEST(SimClock, AdvancesTime) {
  SimClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.advance(Seconds{1.5});
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
}

TEST(SimClock, RejectsNonPositiveAdvance) {
  SimClock clock;
  EXPECT_THROW(clock.advance(Seconds{0.0}), CheckFailure);
  EXPECT_THROW(clock.advance(Seconds{-1.0}), CheckFailure);
}

TEST(SimClock, FiresDueEventsInOrder) {
  SimClock clock;
  std::vector<int> fired;
  clock.schedule_in(Seconds{2.0}, [&] { fired.push_back(2); });
  clock.schedule_in(Seconds{1.0}, [&] { fired.push_back(1); });
  clock.schedule_in(Seconds{3.0}, [&] { fired.push_back(3); });
  clock.advance(Seconds{2.5});
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  clock.advance(Seconds{1.0});
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(SimClock, SameTimeEventsKeepFifoOrder) {
  SimClock clock;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i)
    clock.schedule_in(Seconds{1.0}, [&fired, i] { fired.push_back(i); });
  clock.advance(Seconds{2.0});
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimClock, EventSeesItsDueTime) {
  SimClock clock;
  double seen = -1.0;
  clock.schedule_in(Seconds{0.75}, [&] { seen = clock.now(); });
  clock.advance(Seconds{1.0});
  EXPECT_DOUBLE_EQ(seen, 0.75);
  EXPECT_DOUBLE_EQ(clock.now(), 1.0);
}

TEST(SimClock, EventsCanScheduleEvents) {
  SimClock clock;
  std::vector<double> fired;
  clock.schedule_in(Seconds{1.0}, [&] {
    fired.push_back(clock.now());
    clock.schedule_in(Seconds{0.5}, [&] { fired.push_back(clock.now()); });
  });
  clock.advance(Seconds{2.0});
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(fired[0], 1.0);
  EXPECT_DOUBLE_EQ(fired[1], 1.5);
}

TEST(SimClock, ChainedEventBeyondStepWaits) {
  SimClock clock;
  int count = 0;
  clock.schedule_in(Seconds{1.0}, [&] {
    ++count;
    clock.schedule_in(Seconds{5.0}, [&] { ++count; });
  });
  clock.advance(Seconds{2.0});
  EXPECT_EQ(count, 1);
  EXPECT_EQ(clock.pending(), 1u);
  clock.advance(Seconds{10.0});
  EXPECT_EQ(count, 2);
}

TEST(SimClock, ZeroDelayFiresOnNextAdvance) {
  SimClock clock;
  bool fired = false;
  clock.schedule_in(Seconds{0.0}, [&] { fired = true; });
  clock.advance(Seconds{0.001});
  EXPECT_TRUE(fired);
}

TEST(SimClock, NegativeDelayRejected) {
  SimClock clock;
  EXPECT_THROW(clock.schedule_in(Seconds{-0.1}, [] {}), CheckFailure);
}

}  // namespace
}  // namespace prepare
