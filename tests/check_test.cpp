#include "common/check.h"

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "models/discretizer.h"
#include "models/distribution.h"

namespace prepare {
namespace {

// --- PREPARE_CHECK pass/fail paths -----------------------------------------

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(PREPARE_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(PREPARE_CHECK(true) << "context never materializes");
}

TEST(Check, FailingCheckThrowsCheckFailure) {
  EXPECT_THROW(PREPARE_CHECK(false), CheckFailure);
}

TEST(Check, MessageCarriesExpressionAndLocation) {
  try {
    PREPARE_CHECK(2 == 3);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 == 3"), std::string::npos) << what;
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos) << what;
  }
}

TEST(Check, StreamedContextAppearsInMessage) {
  try {
    PREPARE_CHECK(false) << "vm=" << "web-1" << " tick=" << 42;
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("vm=web-1 tick=42"),
              std::string::npos)
        << e.what();
  }
}

TEST(Check, ContextIsLazilyEvaluated) {
  int calls = 0;
  auto expensive = [&calls] {
    ++calls;
    return std::string("costly");
  };
  PREPARE_CHECK(true) << expensive();
  EXPECT_EQ(calls, 0) << "context must not be evaluated on the passing path";
  EXPECT_THROW(PREPARE_CHECK(false) << expensive(), CheckFailure);
  EXPECT_EQ(calls, 1);
}

TEST(Check, LegacyMsgFormStillWorks) {
  EXPECT_NO_THROW(PREPARE_CHECK_MSG(true, "fine"));
  try {
    PREPARE_CHECK_MSG(false, std::string("legacy context"));
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("legacy context"), std::string::npos);
  }
}

TEST(Check, CheckFailureIsALogicError) {
  EXPECT_THROW(PREPARE_CHECK(false), std::logic_error);
}

// --- comparison forms -------------------------------------------------------

TEST(Check, ComparisonFormsPassAndFail) {
  EXPECT_NO_THROW(PREPARE_CHECK_EQ(4, 4));
  EXPECT_NO_THROW(PREPARE_CHECK_NE(4, 5));
  EXPECT_NO_THROW(PREPARE_CHECK_LT(1, 2));
  EXPECT_NO_THROW(PREPARE_CHECK_LE(2, 2));
  EXPECT_NO_THROW(PREPARE_CHECK_GT(3, 2));
  EXPECT_NO_THROW(PREPARE_CHECK_GE(3, 3));
  EXPECT_THROW(PREPARE_CHECK_EQ(4, 5), CheckFailure);
  EXPECT_THROW(PREPARE_CHECK_NE(4, 4), CheckFailure);
  EXPECT_THROW(PREPARE_CHECK_LT(2, 2), CheckFailure);
  EXPECT_THROW(PREPARE_CHECK_LE(3, 2), CheckFailure);
  EXPECT_THROW(PREPARE_CHECK_GT(2, 2), CheckFailure);
  EXPECT_THROW(PREPARE_CHECK_GE(2, 3), CheckFailure);
}

TEST(Check, ComparisonFailureFormatsBothOperands) {
  try {
    PREPARE_CHECK_LE(7.5, 3.25) << "host overcommitted";
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("7.5 vs 3.25"), std::string::npos) << what;
    EXPECT_NE(what.find("host overcommitted"), std::string::npos) << what;
  }
}

TEST(Check, NearPassesWithinToleranceOnly) {
  EXPECT_NO_THROW(PREPARE_CHECK_NEAR(1.0, 1.0 + 1e-10, 1e-9));
  EXPECT_THROW(PREPARE_CHECK_NEAR(1.0, 1.1, 1e-3), CheckFailure);
  // NaN is never near anything.
  EXPECT_THROW(
      PREPARE_CHECK_NEAR(std::numeric_limits<double>::quiet_NaN(), 0.0, 1.0),
      CheckFailure);
}

// --- DCHECK gating ----------------------------------------------------------

TEST(Check, DcheckMatchesCompileTimeGate) {
#if PREPARE_DCHECK_IS_ON
  EXPECT_THROW(PREPARE_DCHECK(false), CheckFailure);
  EXPECT_THROW(PREPARE_DCHECK_EQ(1, 2) << "ctx", CheckFailure);
  EXPECT_THROW(PREPARE_DCHECK_NEAR(0.0, 1.0, 1e-3), CheckFailure);
#else
  EXPECT_NO_THROW(PREPARE_DCHECK(false));
  EXPECT_NO_THROW(PREPARE_DCHECK_EQ(1, 2) << "ctx");
  EXPECT_NO_THROW(PREPARE_DCHECK_NEAR(0.0, 1.0, 1e-3));
#endif
  EXPECT_NO_THROW(PREPARE_DCHECK(true));
}

TEST(Check, DisabledDcheckDoesNotEvaluateOperands) {
#if !PREPARE_DCHECK_IS_ON
  int calls = 0;
  auto probe = [&calls] {
    ++calls;
    return false;
  };
  PREPARE_DCHECK(probe());
  EXPECT_EQ(calls, 0);
#else
  GTEST_SKIP() << "DCHECKs are enabled in this build";
#endif
}

// --- instrumented invariants: distribution normalization --------------------

TEST(CheckInvariants, NormalizeRejectsNegativeMass) {
  Distribution d(std::vector<double>{0.5, -0.25, 0.75});
  EXPECT_THROW(d.normalize(), CheckFailure);
}

TEST(CheckInvariants, NormalizeRejectsNonFiniteMass) {
  Distribution nan_dist(
      std::vector<double>{1.0, std::numeric_limits<double>::quiet_NaN()});
  EXPECT_THROW(nan_dist.normalize(), CheckFailure);
  Distribution inf_dist(
      std::vector<double>{1.0, std::numeric_limits<double>::infinity()});
  EXPECT_THROW(inf_dist.normalize(), CheckFailure);
}

TEST(CheckInvariants, IsNormalizedReflectsMass) {
  Distribution d(std::vector<double>{0.25, 0.75});
  EXPECT_TRUE(d.is_normalized());
  d[1] = 0.5;
  EXPECT_FALSE(d.is_normalized());
  d.normalize();
  EXPECT_TRUE(d.is_normalized());
  EXPECT_FALSE(Distribution().is_normalized());
  Distribution negative(std::vector<double>{1.5, -0.5});
  EXPECT_FALSE(negative.is_normalized());
}

// --- instrumented invariants: discretizer out-of-range ----------------------

TEST(CheckInvariants, DiscretizerRejectsNonFiniteInputs) {
  Discretizer disc(4);
  disc.fit({1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0});
  EXPECT_THROW(disc.discretize(std::numeric_limits<double>::quiet_NaN()),
               CheckFailure);
  EXPECT_THROW(disc.discretize(std::numeric_limits<double>::infinity()),
               CheckFailure);
  EXPECT_NO_THROW(disc.discretize(-1e12));  // finite outliers clamp to edges
}

TEST(CheckInvariants, DiscretizerRejectsNonFiniteTrainingData) {
  Discretizer disc(3);
  EXPECT_THROW(disc.fit({1.0, std::numeric_limits<double>::quiet_NaN()}),
               CheckFailure);
}

TEST(CheckInvariants, DiscretizerBinCenterOutOfRangeThrows) {
  Discretizer disc(3);
  disc.fit({1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  EXPECT_THROW(disc.bin_center(BinIndex{disc.bins()}), CheckFailure);
  EXPECT_THROW(disc.bin_center(BinIndex{999}), CheckFailure);
}

TEST(CheckInvariants, DiscretizerUseBeforeFitThrows) {
  const Discretizer disc(3);
  EXPECT_THROW(disc.discretize(1.0), CheckFailure);
  EXPECT_THROW(disc.bins(), CheckFailure);
}

}  // namespace
}  // namespace prepare
