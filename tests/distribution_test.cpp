#include "models/distribution.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.h"

namespace prepare {
namespace {

TEST(Distribution, DeltaIsPointMass) {
  const auto d = Distribution::delta(5, BinIndex{2});
  EXPECT_DOUBLE_EQ(d[2], 1.0);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_EQ(d.mode(), 2u);
  EXPECT_DOUBLE_EQ(d.entropy(), 0.0);
}

TEST(Distribution, DeltaOutOfRangeThrows) {
  EXPECT_THROW(Distribution::delta(3, BinIndex{3}), CheckFailure);
}

TEST(Distribution, UniformProperties) {
  const auto d = Distribution::uniform(4);
  EXPECT_DOUBLE_EQ(d[0], 0.25);
  EXPECT_NEAR(d.entropy(), std::log(4.0), 1e-12);
  EXPECT_NEAR(d.sum(), 1.0, 1e-12);
}

TEST(Distribution, NormalizeRescales) {
  Distribution d(3);
  d[0] = 2.0;
  d[1] = 2.0;
  d.normalize();
  EXPECT_DOUBLE_EQ(d[0], 0.5);
  EXPECT_DOUBLE_EQ(d[2], 0.0);
}

TEST(Distribution, NormalizeZeroBecomesUniform) {
  Distribution d(4);
  d.normalize();
  EXPECT_DOUBLE_EQ(d[3], 0.25);
}

TEST(Distribution, ModeTiesPickLowestIndex) {
  Distribution d(std::vector<double>{0.4, 0.4, 0.2});
  EXPECT_EQ(d.mode(), 0u);
}

TEST(Distribution, Expectation) {
  Distribution d(std::vector<double>{0.5, 0.5});
  EXPECT_DOUBLE_EQ(d.expectation({10.0, 20.0}), 15.0);
  EXPECT_THROW(d.expectation({1.0}), CheckFailure);
}

TEST(Distribution, UniformMaximizesEntropy) {
  const auto u = Distribution::uniform(8);
  Distribution skewed(std::vector<double>{0.9, 0.1, 0, 0, 0, 0, 0, 0});
  EXPECT_GT(u.entropy(), skewed.entropy());
}

}  // namespace
}  // namespace prepare
