#include "common/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"

namespace prepare {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MatchesBatchOnRandomData) {
  Rng rng(99);
  std::vector<double> xs;
  RunningStats s;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(10.0, 3.0);
    xs.push_back(x);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), mean_of(xs), 1e-9);
  EXPECT_NEAR(s.stddev(), stddev_of(xs), 1e-9);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(1.0);
  s.add(2.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(MeanOf, Empty) { EXPECT_DOUBLE_EQ(mean_of({}), 0.0); }

TEST(MeanOf, Values) { EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 6.0}), 3.0); }

TEST(StddevOf, FewerThanTwoIsZero) {
  EXPECT_DOUBLE_EQ(stddev_of({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev_of({5.0}), 0.0);
}

TEST(StddevOf, ConstantIsZero) {
  EXPECT_DOUBLE_EQ(stddev_of({2.0, 2.0, 2.0}), 0.0);
}

TEST(PercentileOf, Median) {
  EXPECT_DOUBLE_EQ(percentile_of({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(PercentileOf, Extremes) {
  std::vector<double> xs = {5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 100.0), 9.0);
}

TEST(PercentileOf, Interpolates) {
  // Sorted: 0, 10. p75 -> 7.5.
  EXPECT_DOUBLE_EQ(percentile_of({10.0, 0.0}, 75.0), 7.5);
}

TEST(PercentileOf, OutOfRangeThrows) {
  EXPECT_THROW(percentile_of({1.0}, -1.0), CheckFailure);
  EXPECT_THROW(percentile_of({1.0}, 101.0), CheckFailure);
}

TEST(PercentileOf, Empty) { EXPECT_DOUBLE_EQ(percentile_of({}, 50.0), 0.0); }

TEST(CorrelationOf, PerfectPositive) {
  EXPECT_NEAR(correlation_of({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
}

TEST(CorrelationOf, PerfectNegative) {
  EXPECT_NEAR(correlation_of({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(CorrelationOf, DegenerateIsZero) {
  EXPECT_DOUBLE_EQ(correlation_of({1, 1, 1}, {2, 4, 6}), 0.0);
}

TEST(CorrelationOf, SizeMismatchThrows) {
  EXPECT_THROW(correlation_of({1.0}, {1.0, 2.0}), CheckFailure);
}

TEST(Ewma, FirstValuePassesThrough) {
  Ewma e(0.5);
  EXPECT_DOUBLE_EQ(e.update(10.0), 10.0);
}

TEST(Ewma, BlendsTowardNewValues) {
  Ewma e(0.5);
  e.update(0.0);
  EXPECT_DOUBLE_EQ(e.update(10.0), 5.0);
  EXPECT_DOUBLE_EQ(e.update(10.0), 7.5);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma e(0.2);
  e.update(0.0);
  for (int i = 0; i < 200; ++i) e.update(42.0);
  EXPECT_NEAR(e.value(), 42.0, 1e-6);
}

TEST(Ewma, ResetForgets) {
  Ewma e(0.5);
  e.update(100.0);
  e.reset();
  EXPECT_FALSE(e.initialized());
  EXPECT_DOUBLE_EQ(e.update(1.0), 1.0);
}

// Property sweep: EWMA output is always within the range of its inputs.
class EwmaAlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(EwmaAlphaSweep, StaysWithinInputRange) {
  Ewma e(GetParam());
  Rng rng(7);
  double lo = 1e18, hi = -1e18;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    const double y = e.update(x);
    EXPECT_GE(y, lo - 1e-9);
    EXPECT_LE(y, hi + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, EwmaAlphaSweep,
                         ::testing::Values(0.01, 0.1, 0.5, 0.9, 1.0));

}  // namespace
}  // namespace prepare
