// prepare-analyze-fixture: as=src/core/mutex_bad.cpp
// std:: locking vocabulary outside common/mutex.h. The rule matches on
// canonical types, so hiding std::mutex behind an alias does not help.
#include <mutex>

namespace prepare {

using HiddenMutex = std::mutex;

class FixtureCounter {
 public:
  void bump() {
    std::lock_guard<std::mutex> lock(mu_);
    ++count_;
  }

 private:
  HiddenMutex mu_;
  int count_ = 0;
};

}  // namespace prepare
