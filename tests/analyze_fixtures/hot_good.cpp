// prepare-analyze-fixture: as=src/core/hot_good.cpp
// A PREPARE_HOT function that reads and writes preallocated storage:
// allocation-, lock- and IO-free, transitively.
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/analyze_annotations.h"

namespace prepare {

double fixture_step(std::size_t i, double x);

PREPARE_HOT double fixture_accumulate(const std::vector<double>& cells,
                                      std::vector<double>& scratch) {
  double total = 0.0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    scratch[i] = fixture_step(i, cells[i]);
    total += scratch[i];
  }
  return total;
}

double fixture_step(std::size_t i, double x) {
  return std::fma(static_cast<double>(i), 0.5, std::abs(x));
}

}  // namespace prepare
