// prepare-analyze-fixture: as=src/core/hot_io_bad.cpp
// stdio reached from PREPARE_HOT code, directly and through a helper.
#include <cstdio>

#include "common/analyze_annotations.h"

namespace prepare {

namespace {

void fixture_flush_log() {
  fflush(stdout);  // transitive IO
}

}  // namespace

PREPARE_HOT double fixture_tick(double sample) {
  if (sample > 1.0) printf("spike %f\n", sample);  // direct IO
  fixture_flush_log();
  return sample * 0.5;
}

}  // namespace prepare
