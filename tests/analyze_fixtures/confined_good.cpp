// prepare-analyze-fixture: as=src/core/confined_good.cpp
// Driver-confined types used from the driver thread only: the worker
// lambda sticks to its own disjoint slice, so confinement holds.
#include <cstddef>
#include <vector>

#include "common/analyze_annotations.h"
#include "common/thread_pool.h"

namespace prepare {

class PREPARE_DRIVER_CONFINED FixtureEventSink {
 public:
  void record(std::size_t round) { last_round_ = round; }

 private:
  std::size_t last_round_ = 0;
};

void fixture_round(ThreadPool& pool, FixtureEventSink& sink,
                   std::vector<double>& cells) {
  const auto worker = [&](std::size_t i) { cells[i] *= 2.0; };
  pool.parallel_for(cells.size(), worker);
  sink.record(cells.size());  // driver thread: allowed
}

}  // namespace prepare
