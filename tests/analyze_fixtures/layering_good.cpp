// prepare-analyze-fixture: as=src/models/layering_good.cpp
// A models/ TU including only layers below it (common/): clean.
#include "common/units.h"

namespace prepare {

std::size_t fixture_use(BinIndex bin) { return bin.value(); }

}  // namespace prepare
