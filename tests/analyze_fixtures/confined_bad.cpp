// prepare-analyze-fixture: as=src/core/confined_bad.cpp
// A worker lambda reaches a PREPARE_DRIVER_CONFINED method through a
// helper: the analyzer flags the boundary call site.
#include <cstddef>
#include <vector>

#include "common/analyze_annotations.h"
#include "common/thread_pool.h"

namespace prepare {

class PREPARE_DRIVER_CONFINED FixtureEventSink {
 public:
  void record(std::size_t round) { last_round_ = round; }

 private:
  std::size_t last_round_ = 0;
};

namespace {

void note_progress(FixtureEventSink& sink, std::size_t i) {
  sink.record(i);  // boundary into confined code
}

}  // namespace

void fixture_round(ThreadPool& pool, FixtureEventSink& sink,
                   std::vector<double>& cells) {
  const auto worker = [&](std::size_t i) {
    cells[i] *= 2.0;
    note_progress(sink, i);
  };
  pool.parallel_for(cells.size(), worker);
}

}  // namespace prepare
