// prepare-analyze-fixture: as=src/core/determinism_good.cpp
// Unordered iteration is fine in a TU that never reaches trace/span/
// event output — the determinism rule is gated on output reachability.
#include <unordered_map>

namespace prepare {

double fixture_sum(const std::unordered_map<int, double>& m) {
  double total = 0.0;
  for (const auto& [key, value] : m) total += value + key;
  return total;
}

}  // namespace prepare
