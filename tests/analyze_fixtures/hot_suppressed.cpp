// prepare-analyze-fixture: as=src/core/hot_suppressed.cpp
// A justified allow() comment on the line above the primitive
// suppresses the interprocedural finding (and counts as used).
#include <cstddef>
#include <vector>

#include "common/analyze_annotations.h"

namespace prepare {

class FixtureScratch {
 public:
  PREPARE_HOT double tick(std::size_t n) {
    // prepare-analyze: allow(hot-alloc): capacity-steady scratch reuse
    scratch_.resize(n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) total += scratch_[i];
    return total;
  }

 private:
  std::vector<double> scratch_;
};

}  // namespace prepare
