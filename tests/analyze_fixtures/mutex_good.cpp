// prepare-analyze-fixture: as=src/core/mutex_good.cpp
// prepare::Mutex + prepare::MutexLock carry -Wthread-safety capability
// annotations; the analyzer accepts them anywhere.
#include "common/mutex.h"

namespace prepare {

class FixtureCounter {
 public:
  void bump() {
    MutexLock lock(&mu_);
    ++count_;
  }

 private:
  Mutex mu_;
  int count_ PREPARE_GUARDED_BY(mu_) = 0;
};

}  // namespace prepare
