// prepare-analyze-fixture: as=src/core/hot_alloc_bad.cpp
// Allocation reached from PREPARE_HOT code, directly (operator new /
// delete) and transitively (a helper that grows a vector).
#include <cstddef>
#include <vector>

#include "common/analyze_annotations.h"

namespace prepare {

namespace {

void fixture_append(std::vector<double>& out, double value) {
  out.push_back(value);  // transitive allocation
}

}  // namespace

PREPARE_HOT double fixture_tick(std::vector<double>& history, double sample) {
  fixture_append(history, sample);
  double* window = new double[4];  // direct allocation
  window[0] = sample;
  const double head = window[0];
  delete[] window;  // direct deallocation
  return head + sample;
}

}  // namespace prepare
