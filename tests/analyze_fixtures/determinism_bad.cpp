// prepare-analyze-fixture: as=src/core/determinism_bad.cpp
// This TU reaches trace output (includes obs/trace_export.h), so the
// unordered walk is flagged; std::rand is banned everywhere.
#include <cstdlib>
#include <unordered_map>

#include "obs/trace_export.h"

namespace prepare {

double fixture_sum(const std::unordered_map<int, double>& m) {
  double total = 0.0;
  for (const auto& [key, value] : m) total += value + key;
  return total + std::rand();
}

}  // namespace prepare
