// prepare-analyze-fixture: as=src/models/strong_type_bad.h
// Raw scalars in id/index/probability/duration roles on a public model
// boundary. Private members are exempt: the rule polices the API edge.
#pragma once

#include <cstddef>

namespace prepare {

class FixtureModel {
 public:
  void observe(std::size_t symbol,
               bool learn);
  double mix(double prob,
             double dt);
  void look_ahead(std::size_t steps);

 private:
  void helper(std::size_t symbol);  // private: not policed
};

}  // namespace prepare
