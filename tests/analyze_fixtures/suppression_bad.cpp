// prepare-analyze-fixture: as=src/core/suppression_bad.cpp
// An allow() without a justification is itself a diagnostic.
#include <unordered_map>

#include "obs/trace_export.h"

namespace prepare {

double fixture_sum(const std::unordered_map<int, double>& m) {
  double total = 0.0;
  for (const auto& [key, value] : m) total += value + key;  // prepare-analyze: allow(determinism)
  return total;
}

}  // namespace prepare
