// prepare-analyze-fixture: as=src/core/suppression_good.cpp
// A justified allow() comment silences the diagnostic on its line.
#include <unordered_map>

#include "obs/trace_export.h"

namespace prepare {

double fixture_sum(const std::unordered_map<int, double>& m) {
  double total = 0.0;
  for (const auto& [key, value] : m) total += value + key;  // prepare-analyze: allow(determinism): order-independent sum
  return total;
}

}  // namespace prepare
