// prepare-analyze-fixture: as=src/core/unused_suppression.cpp
// An allow() comment that no longer suppresses anything is itself
// flagged (fixture mode audits strictly, like CI).
#include <cstddef>

namespace prepare {

double fixture_scale(double value) {
  // prepare-analyze: allow(hot-alloc): leftover from a removed resize
  return value * 0.5;
}

}  // namespace prepare
