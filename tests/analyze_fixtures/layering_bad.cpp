// prepare-analyze-fixture: as=src/models/layering_bad.cpp
// models/ reaching sideways into sim/: the DAG forbids this edge.
#include "sim/vm.h"

namespace prepare {

double fixture_use(const Vm& vm) { return vm.cpu_alloc(); }

}  // namespace prepare
