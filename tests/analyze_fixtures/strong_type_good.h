// prepare-analyze-fixture: as=src/models/strong_type_good.h
// Public model API using the common/units.h strong typedefs: clean.
#pragma once

#include "common/units.h"

namespace prepare {

class FixtureModel {
 public:
  void observe(BinIndex symbol, bool learn);
  Probability transition(BinIndex from, BinIndex to) const;
  void advance(Seconds dt);
  // `value` and `size` are not role names; raw scalars are fine here.
  std::size_t discretize(double value) const;
  explicit FixtureModel(std::size_t size);
};

}  // namespace prepare
