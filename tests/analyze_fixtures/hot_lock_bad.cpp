// prepare-analyze-fixture: as=src/core/hot_lock_bad.cpp
// Lock acquisition on the hot path: taking prepare::MutexLock counts
// at the call site even though the std::mutex lives inside the wrapper.
#include <cstddef>

#include "common/analyze_annotations.h"
#include "common/mutex.h"

namespace prepare {

class FixtureCounter {
 public:
  PREPARE_HOT void bump() {
    MutexLock lock(&mu_);  // lock acquisition
    ++count_;
  }

 private:
  Mutex mu_;
  std::size_t count_ PREPARE_GUARDED_BY(mu_) = 0;
};

}  // namespace prepare
