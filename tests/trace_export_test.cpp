#include "obs/trace_export.h"

#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "obs/json.h"
#include "sim/event_log.h"

namespace prepare {
namespace {

using obs::JsonObject;
using obs::MetricsRegistry;
using obs::RunInfo;

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) out.push_back(line);
  return out;
}

// --- JSON primitives --------------------------------------------------------

TEST(Json, EscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(obs::json_escape(std::string("a\x01""b")), "a\\u0001b");
}

TEST(Json, NumbersRoundTripAndNonFiniteBecomesNull) {
  EXPECT_EQ(std::stod(obs::json_number(12.5)), 12.5);
  EXPECT_EQ(std::stod(obs::json_number(1e-9)), 1e-9);
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::quiet_NaN()),
            "null");
}

TEST(Json, ObjectIsOneLineAndCloseIsIdempotent) {
  std::ostringstream os;
  {
    JsonObject record(os);
    record.field("record", "event").field("t", 12.5);
    record.close();
    record.close();
  }
  EXPECT_EQ(os.str(), "{\"record\":\"event\",\"t\":12.5}\n");
}

// --- run header -------------------------------------------------------------

TEST(TraceExport, RunHeaderCarriesSchemaIdAndLabels) {
  std::ostringstream os;
  RunInfo info;
  info.run_id = "system_s-memory_leak-prepare-seed11";
  info.sim_time_end = 1350.0;
  info.labels = {{"app", "system_s"}, {"seed", "11"}};
  obs::write_run_header(os, info);
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"record\":\"run\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"schema\":" +
                          std::to_string(obs::kObsSchemaVersion)),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"run_id\":\"system_s-memory_leak-prepare-seed11\""),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"sim_time_end\":1350"), std::string::npos);
  EXPECT_NE(lines[0].find("\"app\":\"system_s\""), std::string::npos);
}

TEST(TraceExport, RunHeaderRequiresRunId) {
  std::ostringstream os;
  EXPECT_THROW(obs::write_run_header(os, RunInfo{}), CheckFailure);
}

// --- metric snapshots -------------------------------------------------------

TEST(TraceExport, MetricSnapshotEmitsOneRecordPerInstrument) {
  MetricsRegistry registry;
  registry.counter("a.total")->inc(3.0);
  registry.gauge("b.level")->set(0.5);
  registry.histogram("c.seconds")->record(1e-3);
  std::ostringstream os;
  obs::write_metrics_jsonl(os, registry, "r1", 100.0);
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"name\":\"a.total\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"value\":3"), std::string::npos);
  EXPECT_NE(lines[1].find("\"type\":\"gauge\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"record\":\"histogram\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"count\":1"), std::string::npos);
  EXPECT_NE(lines[2].find("\"p99\":"), std::string::npos);
  for (const auto& line : lines) {
    EXPECT_NE(line.find("\"run_id\":\"r1\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"t\":100"), std::string::npos) << line;
  }
}

// --- event log JSONL + capacity guard --------------------------------------

TEST(EventLogJsonl, RoundTripsEventsWithEscaping) {
  EventLog log;
  log.record(10.0, EventKind::kAlert, "vm-pe3", "predicted anomaly");
  log.record(15.0, EventKind::kMemScale, "vm-pe3", "512 -> 1024 \"MB\"");
  std::ostringstream os;
  log.to_jsonl(os, "r1");
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"record\":\"event\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"kind\":\"alert\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"subject\":\"vm-pe3\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"kind\":\"mem_scale\""), std::string::npos);
  EXPECT_NE(lines[1].find("512 -> 1024 \\\"MB\\\""), std::string::npos);
}

TEST(EventLog, CapacityGuardDropsAndCounts) {
  obs::MetricsRegistry registry;
  EventLog log;
  log.set_metrics(&registry);
  log.set_capacity(2);
  log.record(1.0, EventKind::kInfo, "a", "kept");
  log.record(2.0, EventKind::kInfo, "b", "kept");
  log.record(3.0, EventKind::kInfo, "c", "dropped");
  log.record(4.0, EventKind::kInfo, "d", "dropped");
  EXPECT_EQ(log.events().size(), 2u);
  EXPECT_EQ(log.dropped(), 2u);
  EXPECT_EQ(registry.counter("events.recorded_total")->value(), 2.0);
  EXPECT_EQ(registry.counter("events.dropped_total")->value(), 2.0);
  log.clear();
  EXPECT_EQ(log.dropped(), 0u);
}

}  // namespace
}  // namespace prepare
