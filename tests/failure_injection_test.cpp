// Failure injection against PREPARE itself: what happens when the
// predictor misses, when the preferred actuation is unavailable, or when
// the monitoring feed is missing. The paper's robustness mechanisms
// (reactive fallback, validation, scaling fallback) must bound the
// damage in every case.
#include <memory>

#include <gtest/gtest.h>

#include "apps/stream/stream_app.h"
#include "core/controller.h"
#include "core/experiment.h"
#include "faults/injector.h"
#include "monitor/vm_monitor.h"
#include "sim/clock.h"
#include "sim/cluster.h"
#include "sim/hypervisor.h"
#include "workload/patterns.h"

namespace prepare {
namespace {

TEST(FailureInjection, GatedOutPredictionsFallBackToReactive) {
  // An absurd attribution gate suppresses every predictive alert: the
  // PREPARE controller must degrade to reactive behaviour, not to
  // nothing.
  ScenarioConfig config;
  config.app = AppKind::kSystemS;
  config.fault = FaultKind::kMemoryLeak;
  config.seed = 11;
  config.prepare.prevention.mode = PreventionMode::kScalingOnly;

  config.scheme = Scheme::kNoIntervention;
  const double none = run_scenario(config).violation_time;

  config.scheme = Scheme::kPrepare;
  config.prepare.alert_min_top_impact = 1e9;  // no predictive alerts
  const auto gated = run_scenario(config);
  EXPECT_EQ(gated.events.count_of(EventKind::kAlertConfirmed), 0u);
  EXPECT_GT(gated.events.count_of(EventKind::kPrevention), 0u);
  EXPECT_LT(gated.violation_time, none * 0.4);

  config.scheme = Scheme::kReactive;
  config.prepare.alert_min_top_impact = 0.5;
  const double reactive = run_scenario(config).violation_time;
  // Degraded PREPARE performs like the reactive baseline (not better
  // than ~one sampling interval).
  EXPECT_LE(gated.violation_time, reactive + 15.0);
}

TEST(FailureInjection, UntrainedModelsTakeNoPredictiveActions) {
  // Train very late: nothing may fire before the models exist.
  ScenarioConfig config;
  config.app = AppKind::kSystemS;
  config.fault = FaultKind::kMemoryLeak;
  config.seed = 11;
  config.train_time = 1340.0;
  config.scheme = Scheme::kPrepare;
  const auto result = run_scenario(config);
  for (const auto& e : result.events.events()) {
    if (e.kind == EventKind::kPrevention || e.kind == EventKind::kAlert)
      ADD_FAILURE() << "action before training at t=" << e.time;
  }
}

TEST(FailureInjection, NoMigrationTargetFallsBackToLocalScaling) {
  // Seven single-PE hosts, NO spare: migration can never find a target,
  // so the migration-only actuator must scale on the local host instead.
  SimClock clock;
  Cluster cluster;
  EventLog events;
  Hypervisor hypervisor(&clock, &cluster, &events);
  std::vector<Vm*> vms;
  for (int i = 0; i < 7; ++i) {
    Host* host = cluster.add_host("h" + std::to_string(i));
    vms.push_back(
        cluster.add_vm("pe" + std::to_string(i + 1), 1.0, 512.0, host));
  }
  ConstantWorkload workload(25000.0);
  StreamApp app(vms, &workload);
  FaultInjector injector;
  injector.add(std::make_unique<MemoryLeakFault>(vms[2], 150.0, 200.0, 3.0));
  injector.add(std::make_unique<MemoryLeakFault>(vms[2], 600.0, 200.0, 3.0));

  VmMonitor monitor;
  MetricStore store;
  SloLog slo;
  ControllerContext ctx{&app, &cluster, &hypervisor, &store, &slo, &events};
  PrepareConfig pcfg;
  pcfg.prevention.mode = PreventionMode::kMigrationOnly;
  PrepareController controller(ctx, pcfg);

  bool trained = false;
  for (std::size_t tick = 0; clock.now() < 900.0; ++tick) {
    const double now = clock.now();
    for (Vm* vm : vms) vm->begin_tick();
    injector.apply(now, 1.0);
    app.step(now, 1.0);
    slo.record(now, 1.0, app.slo_violated(), app.slo_metric());
    if (tick % 5 == 0) {
      for (Vm* vm : vms) store.record(vm->name(), now, monitor.sample(*vm));
      if (!trained && now >= 450.0) {
        controller.train(0.0, now);
        trained = true;
      }
      controller.on_sample(now);
    }
    clock.advance(Seconds{1.0});
  }
  EXPECT_EQ(events.count_of(EventKind::kMigrationStart), 0u);
  EXPECT_GT(events.count_of(EventKind::kMemScale) +
                events.count_of(EventKind::kCpuScale),
            0u);
  // The managed second injection is far better than the learning one.
  EXPECT_LT(slo.violation_time(580.0, 900.0),
            slo.violation_time(150.0, 400.0) * 0.5);
}

TEST(FailureInjection, OnSampleBeforeAnySamplesIsSafe) {
  SimClock clock;
  Cluster cluster;
  EventLog events;
  Hypervisor hypervisor(&clock, &cluster, &events);
  std::vector<Vm*> vms;
  for (int i = 0; i < 7; ++i) {
    Host* host = cluster.add_host("h" + std::to_string(i));
    vms.push_back(
        cluster.add_vm("pe" + std::to_string(i + 1), 1.0, 512.0, host));
  }
  ConstantWorkload workload(25000.0);
  StreamApp app(vms, &workload);
  MetricStore store;
  SloLog slo;
  ControllerContext ctx{&app, &cluster, &hypervisor, &store, &slo, &events};
  PrepareController controller(ctx);
  EXPECT_NO_THROW(controller.on_sample(0.0));  // empty store, untrained
}

TEST(FailureInjection, CountersAreConsistent) {
  ScenarioConfig config;
  config.app = AppKind::kRubis;
  config.fault = FaultKind::kMemoryLeak;
  config.seed = 2;
  config.scheme = Scheme::kNoIntervention;
  const auto trace = run_scenario(config);
  (void)trace;

  config.scheme = Scheme::kPrepare;
  // Re-run managed and inspect alert bookkeeping via the event log.
  const auto managed = run_scenario(config);
  const auto raw = managed.events.count_of(EventKind::kAlert);
  const auto confirmed = managed.events.count_of(EventKind::kAlertConfirmed);
  EXPECT_GT(raw, 0u);
  // Every confirmation requires at least k=3 raw alerts in its window,
  // so confirmations cannot exceed raw alerts plus the window slack.
  EXPECT_LE(confirmed, raw + 2);
}

TEST(FailureInjection, ValidationFallbackEventuallyResolves) {
  // Companion scaling off: the first action may target the symptom
  // metric; validation must walk the ranking until the anomaly clears.
  ScenarioConfig config;
  config.app = AppKind::kSystemS;
  config.fault = FaultKind::kMemoryLeak;
  config.seed = 11;
  config.scheme = Scheme::kPrepare;
  config.prepare.prevention.companion_scaling = false;
  config.prepare.prevention.mode = PreventionMode::kScalingOnly;
  const auto result = run_scenario(config);

  config.scheme = Scheme::kNoIntervention;
  const double none = run_scenario(config).violation_time;
  EXPECT_LT(result.violation_time, none * 0.5);
}

}  // namespace
}  // namespace prepare
