// Tests for the extension features layered on the paper's core design:
// guard bins, mixed-fault scenarios, per-sample accuracy records, and
// the unsupervised pipeline end to end.
#include <gtest/gtest.h>

#include "core/accuracy.h"
#include "core/anomaly_predictor.h"
#include "core/experiment.h"
#include "models/discretizer.h"

namespace prepare {
namespace {

TEST(GuardBins, OutOfRangeValuesGetDedicatedBins) {
  Discretizer d(4, DiscretizerKind::kEqualWidth, 0.05, /*guard_bins=*/true);
  d.fit({10.0, 20.0});
  EXPECT_EQ(d.bins(), 6u);  // 4 interior + 2 guards
  // Training-range values never land in the guard bins.
  for (double x = 10.0; x <= 20.0; x += 0.5) {
    EXPECT_GT(d.discretize(x), 0u);
    EXPECT_LT(d.discretize(x), d.bins() - 1);
  }
  EXPECT_EQ(d.discretize(-100.0), 0u);
  EXPECT_EQ(d.discretize(100.0), d.bins() - 1);
}

TEST(GuardBins, MarginAbsorbsNearRangeNoise) {
  Discretizer d(4, DiscretizerKind::kEqualWidth, 0.05, true);
  d.fit({0.0, 100.0});
  // Values just outside the observed range stay out of the guard bins
  // (they are small-sample noise, not anomalies).
  EXPECT_GT(d.discretize(-2.0), 0u);
  EXPECT_LT(d.discretize(102.0), d.bins() - 1);
  // Far outside -> guard.
  EXPECT_EQ(d.discretize(-50.0), 0u);
  EXPECT_EQ(d.discretize(200.0), d.bins() - 1);
}

TEST(GuardBins, WorkWithQuantileBins) {
  Discretizer d(4, DiscretizerKind::kQuantile, 0.05, true);
  std::vector<double> xs;
  for (int i = 0; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  d.fit(xs);
  EXPECT_EQ(d.discretize(-100.0), 0u);
  EXPECT_EQ(d.discretize(1000.0), d.bins() - 1);
  EXPECT_GT(d.discretize(50.0), 0u);
}

TEST(MixedFaults, SecondFaultKindHonored) {
  ScenarioConfig config;
  config.app = AppKind::kSystemS;
  config.fault = FaultKind::kMemoryLeak;
  config.second_fault = FaultKind::kCpuHog;
  config.scheme = Scheme::kNoIntervention;
  config.seed = 4;
  const auto result = run_scenario(config);
  // Both injections must violate: the leak gradually, the hog abruptly.
  bool first = false, second = false;
  for (const auto& iv : result.slo.intervals()) {
    if (iv.start >= 300.0 && iv.start < 660.0) first = true;
    if (iv.start >= 895.0 && iv.start < 1260.0) second = true;
  }
  EXPECT_TRUE(first);
  EXPECT_TRUE(second);
  // The hog manifests within seconds of injection; the leak takes
  // minutes. Compare onset delays.
  double onset1 = 1e18, onset2 = 1e18;
  for (const auto& iv : result.slo.intervals()) {
    if (iv.start >= 300.0 && onset1 > 1e17) onset1 = iv.start - 300.0;
    if (iv.start >= 895.0 && onset2 > 1e17) onset2 = iv.start - 900.0;
  }
  EXPECT_GT(onset1, 60.0);
  EXPECT_LT(onset2, 20.0);
}

TEST(MixedFaults, SupervisedModelMissesUnseenFaultKind) {
  ScenarioConfig config;
  config.app = AppKind::kSystemS;
  config.fault = FaultKind::kCpuHog;
  config.second_fault = FaultKind::kMemoryLeak;
  config.scheme = Scheme::kNoIntervention;
  config.seed = 4;
  config.fault1_start = 600.0;  // clean lead-in
  const auto trace = run_scenario(config);

  AccuracyConfig acc;
  acc.train_end = 595.0;  // training saw NO anomaly at all
  acc.test_start = 600.0;
  const auto supervised = evaluate_accuracy(
      trace.store, trace.slo, trace.store.vm_names(), 20.0, acc);
  EXPECT_EQ(supervised.tp, 0u);  // cannot claim a class it never saw
  EXPECT_EQ(supervised.fp, 0u);

  acc.predictor.classifier = ClassifierKind::kOutlier;
  acc.predictor.guard_bins = true;
  acc.require_discriminative = false;
  const auto unsupervised = evaluate_accuracy(
      trace.store, trace.slo, trace.store.vm_names(), 20.0, acc);
  EXPECT_GT(unsupervised.a_t, 0.5);
}

TEST(AccuracyRecords, KeepPredictionsMatchesCounts) {
  ScenarioConfig config;
  config.scheme = Scheme::kNoIntervention;
  config.seed = 5;
  const auto trace = run_scenario(config);
  AccuracyConfig acc;
  acc.keep_predictions = true;
  const auto result = evaluate_accuracy(
      trace.store, trace.slo, trace.store.vm_names(), 20.0, acc);
  ASSERT_EQ(result.samples.size(),
            result.tp + result.fn + result.fp + result.tn);
  std::size_t tp = 0, fp = 0;
  for (const auto& s : result.samples) {
    if (s.predicted && s.truth) ++tp;
    if (s.predicted && !s.truth) ++fp;
  }
  EXPECT_EQ(tp, result.tp);
  EXPECT_EQ(fp, result.fp);
  // Times are strictly increasing.
  for (std::size_t i = 1; i < result.samples.size(); ++i)
    EXPECT_GT(result.samples[i].time, result.samples[i - 1].time);
}

TEST(AccuracyRecords, OffByDefault) {
  ScenarioConfig config;
  config.scheme = Scheme::kNoIntervention;
  config.seed = 5;
  const auto trace = run_scenario(config);
  const auto result = evaluate_accuracy(
      trace.store, trace.slo, trace.store.vm_names(), 20.0,
      AccuracyConfig{});
  EXPECT_TRUE(result.samples.empty());
}

TEST(OutlierPipeline, PredictorWithOutlierBackendAlarmsOnLeak) {
  // Full AnomalyPredictor with the unsupervised backend: train on a
  // clean synthetic stream, then feed a leak-like excursion.
  PredictorConfig config;
  config.classifier = ClassifierKind::kOutlier;
  config.guard_bins = true;
  AnomalyPredictor predictor({"free_mem", "cpu"}, config);
  std::vector<std::vector<double>> rows;
  std::vector<bool> labels;
  for (int i = 0; i < 200; ++i) {
    rows.push_back({300.0 + (i % 7), 20.0 + (i % 5)});
    labels.push_back(false);
  }
  predictor.train(rows, labels);
  EXPECT_TRUE(predictor.trained());
  // Sustained deep excursion far outside anything seen (several samples
  // so the Markov context and transitions reflect the excursion).
  for (int i = 0; i < 6; ++i)
    predictor.observe({40.0 - 2.0 * i, 85.0 + i});
  EXPECT_TRUE(predictor.classify_current().abnormal);
  EXPECT_TRUE(predictor.predict(TickIndex{4}).classification.abnormal);
}

TEST(OutlierPipeline, SupervisedBackendStaysSilentWithoutAbnormalLabels) {
  AnomalyPredictor predictor({"free_mem", "cpu"});  // TAN backend
  std::vector<std::vector<double>> rows;
  std::vector<bool> labels;
  for (int i = 0; i < 200; ++i) {
    rows.push_back({300.0 + (i % 7), 20.0 + (i % 5)});
    labels.push_back(false);
  }
  predictor.train(rows, labels);
  predictor.observe({40.0, 85.0});
  predictor.observe({30.0, 88.0});
  EXPECT_FALSE(predictor.classify_current().abnormal);
  EXPECT_FALSE(predictor.predict(TickIndex{4}).classification.abnormal);
}

}  // namespace
}  // namespace prepare
