#include "apps/webapp/web_app.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "monitor/attributes.h"
#include "sim/cluster.h"
#include "workload/patterns.h"

namespace prepare {
namespace {

class WebAppTest : public ::testing::Test {
 protected:
  void build(double rate) {
    workload_ = std::make_unique<ConstantWorkload>(rate);
    make_vms();
    app_ = std::make_unique<WebApp>(vms_, workload_.get());
  }

  void make_vms() {
    const char* names[] = {"web", "app1", "app2", "db"};
    for (int i = 0; i < 4; ++i) {
      Host* h = cluster_.add_host("h" + std::to_string(i));
      vms_.push_back(cluster_.add_vm(names[i], 1.0,
                                     i == 3 ? 1024.0 : 768.0, h));
    }
  }

  void run(double from, double to) {
    for (double t = from; t < to; t += 1.0) {
      for (Vm* vm : vms_) vm->begin_tick();
      app_->step(t, 1.0);
    }
  }

  Cluster cluster_;
  std::vector<Vm*> vms_;
  std::unique_ptr<Workload> workload_;
  std::unique_ptr<WebApp> app_;
};

TEST_F(WebAppTest, RequiresFourVms) {
  ConstantWorkload w(10.0);
  std::vector<Vm*> two(2, nullptr);
  EXPECT_THROW(WebApp(two, &w), CheckFailure);
}

TEST_F(WebAppTest, HealthyAtNominalLoad) {
  build(60.0);
  run(0.0, 60.0);
  EXPECT_FALSE(app_->slo_violated());
  EXPECT_LT(app_->response_time(), 0.060);
  EXPECT_GT(app_->response_time(), 0.001);
}

TEST_F(WebAppTest, OverloadSaturatesDbFirst) {
  build(170.0);  // beyond the DB's ~133 req/s end-to-end capacity
  run(0.0, 90.0);
  EXPECT_TRUE(app_->slo_violated());
  // The DB tier (index 3) carries the backlog, not the web tier.
  EXPECT_GT(app_->backlog_of(3), app_->backlog_of(0));
}

TEST_F(WebAppTest, BacklogBounded) {
  build(400.0);
  run(0.0, 300.0);
  for (std::size_t i = 0; i < app_->tier_count(); ++i)
    EXPECT_LE(app_->backlog_of(i), WebAppConfig{}.max_backlog_requests);
}

TEST_F(WebAppTest, RecoversAfterOverload) {
  workload_ =
      std::make_unique<RampWorkload>(60.0, 4.0, 10.0, 60.0, 250.0);
  make_vms();
  app_ = std::make_unique<WebApp>(vms_, workload_.get());
  run(0.0, 60.0);
  EXPECT_TRUE(app_->slo_violated());
  run(60.0, 220.0);
  EXPECT_FALSE(app_->slo_violated());
}

TEST_F(WebAppTest, DbMemoryPressureRaisesResponseTime) {
  build(60.0);
  run(0.0, 30.0);
  const double healthy = app_->response_time();
  for (double t = 30.0; t < 150.0; t += 1.0) {
    for (Vm* vm : vms_) vm->begin_tick();
    vms_[3]->set_fault_mem_demand(800.0);  // leak-like pressure on the DB
    app_->step(t, 1.0);
  }
  EXPECT_GT(app_->response_time(), healthy * 2.0);
  EXPECT_TRUE(app_->slo_violated());
}

TEST_F(WebAppTest, DbThrashRaisesDiskReads) {
  build(60.0);
  run(0.0, 30.0);
  const double warm_reads = vms_[3]->disk_read();
  for (double t = 30.0; t < 150.0; t += 1.0) {
    for (Vm* vm : vms_) vm->begin_tick();
    vms_[3]->set_fault_mem_demand(900.0);
    app_->step(t, 1.0);
  }
  EXPECT_GT(vms_[3]->disk_read(), warm_reads * 2.0);
}

TEST_F(WebAppTest, CpuHogOnDbViolatesSlo) {
  build(60.0);
  run(0.0, 30.0);
  ASSERT_FALSE(app_->slo_violated());
  for (double t = 30.0; t < 70.0; t += 1.0) {
    for (Vm* vm : vms_) vm->begin_tick();
    vms_[3]->set_fault_cpu_demand(8.0);
    app_->step(t, 1.0);
  }
  EXPECT_TRUE(app_->slo_violated());
}

TEST_F(WebAppTest, ScalingDbCpuDefeatsHog) {
  build(60.0);
  run(0.0, 30.0);
  vms_[3]->set_cpu_alloc(1.8);
  for (double t = 30.0; t < 90.0; t += 1.0) {
    for (Vm* vm : vms_) vm->begin_tick();
    vms_[3]->set_fault_cpu_demand(8.0);
    app_->step(t, 1.0);
  }
  EXPECT_FALSE(app_->slo_violated());
}

TEST_F(WebAppTest, AppServersShareLoadEvenly) {
  build(60.0);
  run(0.0, 60.0);
  EXPECT_NEAR(vms_[1]->cpu_used(), vms_[2]->cpu_used(),
              0.05 * vms_[1]->cpu_used() + 1e-6);
}

TEST_F(WebAppTest, SloMetricNameAndVms) {
  build(60.0);
  EXPECT_EQ(app_->slo_metric_name(), "response_time_s");
  EXPECT_EQ(app_->vms().size(), 4u);
}

}  // namespace
}  // namespace prepare
