#include "faults/faults.h"

#include <memory>

#include <gtest/gtest.h>

#include "common/check.h"
#include "faults/injector.h"

namespace prepare {
namespace {

TEST(MemoryLeakFault, AccumulatesWhileActive) {
  Vm vm("v", 1.0, 512.0);
  MemoryLeakFault leak(&vm, 10.0, 100.0, 2.0);
  vm.begin_tick();
  leak.apply(5.0, 1.0);  // before the window: no-op
  vm.finalize_tick();
  EXPECT_DOUBLE_EQ(vm.mem_demand(), 0.0);

  double leaked = 0.0;
  for (double t = 10.0; t < 60.0; t += 1.0) {
    vm.begin_tick();
    leak.apply(t, 1.0);
    vm.finalize_tick();
    leaked = leak.leaked_mb();
  }
  EXPECT_NEAR(leaked, 100.0, 1e-9);  // 50 ticks x 2 MB/s
  EXPECT_NEAR(vm.mem_demand(), 100.0, 1e-9);
}

TEST(MemoryLeakFault, ReleasedAfterWindow) {
  Vm vm("v", 1.0, 512.0);
  MemoryLeakFault leak(&vm, 0.0, 10.0, 5.0);
  for (double t = 0.0; t < 10.0; t += 1.0) {
    vm.begin_tick();
    leak.apply(t, 1.0);
    vm.finalize_tick();
  }
  EXPECT_GT(vm.mem_demand(), 0.0);
  vm.begin_tick();
  leak.apply(10.0, 1.0);  // window over: the leaking process is gone
  vm.finalize_tick();
  EXPECT_DOUBLE_EQ(vm.mem_demand(), 0.0);
}

TEST(MemoryLeakFault, BurnsSomeCpu) {
  Vm vm("v", 1.0, 512.0);
  MemoryLeakFault leak(&vm, 0.0, 10.0, 5.0);
  vm.begin_tick();
  leak.apply(1.0, 1.0);
  vm.finalize_tick();
  EXPECT_GT(vm.cpu_demand(), 0.0);
}

TEST(MemoryLeakFault, ResetClearsLeak) {
  Vm vm("v", 1.0, 512.0);
  MemoryLeakFault leak(&vm, 0.0, 10.0, 5.0);
  vm.begin_tick();
  leak.apply(1.0, 1.0);
  leak.reset();
  EXPECT_DOUBLE_EQ(leak.leaked_mb(), 0.0);
}

TEST(CpuHogFault, DemandsFixedShareWhileActive) {
  Vm vm("v", 1.0, 512.0);
  CpuHogFault hog(&vm, 10.0, 20.0, 1.5);
  vm.begin_tick();
  hog.apply(15.0, 1.0);
  vm.finalize_tick();
  EXPECT_DOUBLE_EQ(vm.cpu_demand(), 1.5);
  vm.begin_tick();
  hog.apply(30.0, 1.0);  // window over
  vm.finalize_tick();
  EXPECT_DOUBLE_EQ(vm.cpu_demand(), 0.0);
}

TEST(BottleneckFault, IsWorkloadLevelNoOp) {
  Vm vm("v", 1.0, 512.0);
  BottleneckFault fault(&vm, 0.0, 100.0);
  vm.begin_tick();
  fault.apply(50.0, 1.0);
  vm.finalize_tick();
  EXPECT_DOUBLE_EQ(vm.cpu_demand(), 0.0);
  EXPECT_EQ(fault.target(), &vm);  // ground truth still carried
}

TEST(Fault, ActiveWindowIsHalfOpen) {
  Vm vm("v", 1.0, 512.0);
  CpuHogFault hog(&vm, 10.0, 20.0);
  EXPECT_FALSE(hog.active(9.999));
  EXPECT_TRUE(hog.active(10.0));
  EXPECT_TRUE(hog.active(29.999));
  EXPECT_FALSE(hog.active(30.0));
  EXPECT_DOUBLE_EQ(hog.end(), 30.0);
}

TEST(Fault, RejectsBadArguments) {
  Vm vm("v", 1.0, 512.0);
  EXPECT_THROW(MemoryLeakFault(nullptr, 0.0, 10.0), CheckFailure);
  EXPECT_THROW(MemoryLeakFault(&vm, 0.0, 10.0, 0.0), CheckFailure);
  EXPECT_THROW(CpuHogFault(&vm, 0.0, 0.0), CheckFailure);
}

TEST(FaultInjector, AppliesActiveFaults) {
  Vm vm("v", 1.0, 512.0);
  FaultInjector injector;
  injector.add(std::make_unique<CpuHogFault>(&vm, 0.0, 10.0, 1.0));
  injector.add(std::make_unique<MemoryLeakFault>(&vm, 5.0, 10.0, 2.0));
  vm.begin_tick();
  injector.apply(6.0, 1.0);
  vm.finalize_tick();
  EXPECT_GT(vm.cpu_demand(), 1.0);  // hog + leak's allocation CPU
  EXPECT_GT(vm.mem_demand(), 0.0);
}

TEST(FaultInjector, ActiveFaultLookup) {
  Vm vm("v", 1.0, 512.0);
  FaultInjector injector;
  Fault* hog = injector.add(std::make_unique<CpuHogFault>(&vm, 0.0, 10.0));
  Fault* leak =
      injector.add(std::make_unique<MemoryLeakFault>(&vm, 20.0, 10.0));
  EXPECT_EQ(injector.active_fault(5.0), hog);
  EXPECT_EQ(injector.active_fault(15.0), nullptr);
  EXPECT_EQ(injector.active_fault(25.0), leak);
}

TEST(FaultInjector, ResetPropagates) {
  Vm vm("v", 1.0, 512.0);
  FaultInjector injector;
  auto* leak = static_cast<MemoryLeakFault*>(
      injector.add(std::make_unique<MemoryLeakFault>(&vm, 0.0, 10.0, 3.0)));
  vm.begin_tick();
  injector.apply(1.0, 1.0);
  EXPECT_GT(leak->leaked_mb(), 0.0);
  injector.reset();
  EXPECT_DOUBLE_EQ(leak->leaked_mb(), 0.0);
}

}  // namespace
}  // namespace prepare
