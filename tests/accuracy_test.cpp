#include "core/accuracy.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/experiment.h"

namespace prepare {
namespace {

class AccuracyTest : public ::testing::Test {
 protected:
  static const ScenarioResult& trace() {
    static const ScenarioResult result = [] {
      ScenarioConfig config;
      config.app = AppKind::kSystemS;
      config.fault = FaultKind::kMemoryLeak;
      config.scheme = Scheme::kNoIntervention;
      config.seed = 3;
      return run_scenario(config);
    }();
    return result;
  }

  static std::vector<std::string> vms() { return trace().store.vm_names(); }
};

TEST_F(AccuracyTest, CountsAreConsistent) {
  const auto result =
      evaluate_accuracy(trace().store, trace().slo, vms(), 25.0,
                        AccuracyConfig{});
  EXPECT_GT(result.tp + result.fn, 0u);
  EXPECT_GT(result.fp + result.tn, 0u);
  EXPECT_NEAR(result.a_t,
              static_cast<double>(result.tp) /
                  static_cast<double>(result.tp + result.fn),
              1e-12);
  EXPECT_NEAR(result.a_f,
              static_cast<double>(result.fp) /
                  static_cast<double>(result.fp + result.tn),
              1e-12);
}

TEST_F(AccuracyTest, DetectsTheSecondInjection) {
  const auto result =
      evaluate_accuracy(trace().store, trace().slo, vms(), 15.0,
                        AccuracyConfig{});
  EXPECT_GT(result.a_t, 0.6);
  EXPECT_LT(result.a_f, 0.5);
}

TEST_F(AccuracyTest, PerComponentBeatsMonolithic) {
  AccuracyConfig config;
  config.per_component = true;
  const auto per =
      evaluate_accuracy(trace().store, trace().slo, vms(), 15.0, config);
  config.per_component = false;
  const auto mono =
      evaluate_accuracy(trace().store, trace().slo, vms(), 15.0, config);
  EXPECT_GT(per.a_t, mono.a_t);
}

TEST_F(AccuracyTest, FilteringReducesFalseAlarms) {
  AccuracyConfig raw;
  raw.filter_k = 1;
  raw.filter_w = 1;
  AccuracyConfig filtered;
  filtered.filter_k = 3;
  filtered.filter_w = 4;
  const auto r = evaluate_accuracy(trace().store, trace().slo, vms(), 15.0,
                                   raw);
  const auto f = evaluate_accuracy(trace().store, trace().slo, vms(), 15.0,
                                   filtered);
  EXPECT_LE(f.a_f, r.a_f + 1e-9);
}

TEST_F(AccuracyTest, RejectsBadArguments) {
  EXPECT_THROW(
      evaluate_accuracy(trace().store, trace().slo, {}, 15.0,
                        AccuracyConfig{}),
      CheckFailure);
  EXPECT_THROW(
      evaluate_accuracy(trace().store, trace().slo, vms(), 0.0,
                        AccuracyConfig{}),
      CheckFailure);
}

TEST_F(AccuracyTest, UnalignedHistoriesRejected) {
  MetricStore store;
  AttributeVector v{};
  store.record("a", 0.0, v);
  store.record("a", 5.0, v);
  store.record("b", 0.0, v);
  SloLog slo;
  slo.record(0.0, 5.0, false, 0.0);
  EXPECT_THROW(
      evaluate_accuracy(store, slo, {"a", "b"}, 5.0, AccuracyConfig{}),
      CheckFailure);
}

// Look-ahead sweep: accuracy stays defined and bounded at every horizon
// the paper evaluates (5..45 s).
class LookaheadSweep : public ::testing::TestWithParam<double> {};

TEST_P(LookaheadSweep, BoundedRates) {
  ScenarioConfig config;
  config.app = AppKind::kRubis;
  config.fault = FaultKind::kBottleneck;
  config.scheme = Scheme::kNoIntervention;
  config.seed = 4;
  static const ScenarioResult result = run_scenario(config);
  const auto acc = evaluate_accuracy(result.store, result.slo,
                                     result.store.vm_names(), GetParam(),
                                     AccuracyConfig{});
  EXPECT_GE(acc.a_t, 0.0);
  EXPECT_LE(acc.a_t, 1.0);
  EXPECT_GE(acc.a_f, 0.0);
  EXPECT_LE(acc.a_f, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Horizons, LookaheadSweep,
                         ::testing::Values(5.0, 15.0, 25.0, 35.0, 45.0));

}  // namespace
}  // namespace prepare
