#include "timeseries/timeseries.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace prepare {
namespace {

TimeSeries make_series() {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i)
    ts.append(static_cast<double>(i) * 5.0, static_cast<double>(i));
  return ts;  // times 0,5,...,45; values 0..9
}

TEST(TimeSeries, AppendAndSize) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  ts.append(1.0, 10.0);
  EXPECT_EQ(ts.size(), 1u);
  EXPECT_DOUBLE_EQ(ts.back().value, 10.0);
}

TEST(TimeSeries, RejectsNonIncreasingTime) {
  TimeSeries ts;
  ts.append(5.0, 1.0);
  EXPECT_THROW(ts.append(5.0, 2.0), CheckFailure);
  EXPECT_THROW(ts.append(4.0, 2.0), CheckFailure);
}

TEST(TimeSeries, AtBoundsChecked) {
  TimeSeries ts = make_series();
  EXPECT_DOUBLE_EQ(ts.at(3).value, 3.0);
  EXPECT_THROW(ts.at(10), CheckFailure);
}

TEST(TimeSeries, BackOnEmptyThrows) {
  TimeSeries ts;
  EXPECT_THROW(ts.back(), CheckFailure);
}

TEST(TimeSeries, ValuesBetweenInclusive) {
  TimeSeries ts = make_series();
  const auto vals = ts.values_between(10.0, 20.0);
  ASSERT_EQ(vals.size(), 3u);  // t = 10, 15, 20
  EXPECT_DOUBLE_EQ(vals[0], 2.0);
  EXPECT_DOUBLE_EQ(vals[2], 4.0);
}

TEST(TimeSeries, ValuesBetweenEmptyRange) {
  TimeSeries ts = make_series();
  EXPECT_TRUE(ts.values_between(11.0, 14.0).empty());
  EXPECT_TRUE(ts.values_between(100.0, 200.0).empty());
}

TEST(TimeSeries, ValuesBetweenWholeRange) {
  TimeSeries ts = make_series();
  EXPECT_EQ(ts.values_between(-10.0, 100.0).size(), 10u);
}

TEST(TimeSeries, LastValues) {
  TimeSeries ts = make_series();
  const auto vals = ts.last_values(3);
  ASSERT_EQ(vals.size(), 3u);
  EXPECT_DOUBLE_EQ(vals[0], 7.0);
  EXPECT_DOUBLE_EQ(vals[2], 9.0);
}

TEST(TimeSeries, LastValuesMoreThanSize) {
  TimeSeries ts = make_series();
  EXPECT_EQ(ts.last_values(100).size(), 10u);
}

TEST(TimeSeries, ValueAtOrBefore) {
  TimeSeries ts = make_series();
  EXPECT_EQ(ts.value_at_or_before(-1.0), std::nullopt);
  EXPECT_DOUBLE_EQ(*ts.value_at_or_before(0.0), 0.0);
  EXPECT_DOUBLE_EQ(*ts.value_at_or_before(7.0), 1.0);   // latest <= 7 is t=5
  EXPECT_DOUBLE_EQ(*ts.value_at_or_before(100.0), 9.0);
}

TEST(TimeSeries, MeanBetween) {
  TimeSeries ts = make_series();
  EXPECT_DOUBLE_EQ(*ts.mean_between(0.0, 10.0), 1.0);  // values 0,1,2
  EXPECT_EQ(ts.mean_between(11.0, 14.0), std::nullopt);
}

TEST(TimeSeries, ClearEmpties) {
  TimeSeries ts = make_series();
  ts.clear();
  EXPECT_TRUE(ts.empty());
  ts.append(0.0, 1.0);  // timestamps restart fine after clear
  EXPECT_EQ(ts.size(), 1u);
}

}  // namespace
}  // namespace prepare
