#include "obs/metrics_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace prepare {
namespace {

/// Minimal blocking HTTP client: one request, reads to EOF (the server
/// closes the connection after each response).
std::string http_request(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    // NOLINTNEXTLINE(concurrency-mt-unsafe): single test thread formats here
    ADD_FAILURE() << "connect to 127.0.0.1:" << port << " failed: "
                  << std::strerror(errno);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_get(int port, const std::string& path) {
  return http_request(port, "GET " + path +
                                " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                                "Connection: close\r\n\r\n");
}

TEST(MetricsHttp, ServesHealthzAndMetricsOnEphemeralPort) {
  obs::MetricsRegistry registry;
  registry.counter("alert.episodes_total")->inc(3.0);
  registry.gauge("alert.precision")->set(0.75);
  registry.histogram("alert.lead_time.seconds")->record(12.5);

  obs::MetricsHttpServer server(&registry);
  ASSERT_TRUE(server.start(0));
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);

  const std::string health = http_get(server.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(health.find("ok\n"), std::string::npos);

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE prepare_alert_episodes_total counter"),
            std::string::npos);
  EXPECT_NE(metrics.find("prepare_alert_episodes_total 3"),
            std::string::npos);
  EXPECT_NE(metrics.find("prepare_alert_precision 0.75"), std::string::npos);
  EXPECT_NE(metrics.find("prepare_alert_lead_time_seconds_count 1"),
            std::string::npos);

  EXPECT_EQ(server.requests_served(), 2u);
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(MetricsHttp, ScrapeSeesLiveUpdates) {
  obs::MetricsRegistry registry;
  auto* counter = registry.counter("ticks_total");
  obs::MetricsHttpServer server(&registry);
  ASSERT_TRUE(server.start(0));
  counter->inc(1.0);
  EXPECT_NE(http_get(server.port(), "/metrics").find("prepare_ticks_total 1"),
            std::string::npos);
  counter->inc(41.0);
  EXPECT_NE(http_get(server.port(), "/metrics").find("prepare_ticks_total 42"),
            std::string::npos);
  server.stop();
}

TEST(MetricsHttp, UnknownPathIs404AndNonGetIs405) {
  obs::MetricsRegistry registry;
  obs::MetricsHttpServer server(&registry);
  ASSERT_TRUE(server.start(0));
  EXPECT_NE(http_get(server.port(), "/nope").find("HTTP/1.1 404"),
            std::string::npos);
  const std::string post = http_request(
      server.port(),
      "POST /metrics HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos);
  server.stop();
}

TEST(MetricsHttp, StartFailsWhenPortIsTaken) {
  obs::MetricsRegistry registry;
  obs::MetricsHttpServer first(&registry);
  ASSERT_TRUE(first.start(0));
  obs::MetricsHttpServer second(&registry);
  EXPECT_FALSE(second.start(first.port()));
  EXPECT_FALSE(second.running());
  first.stop();
}

TEST(MetricsHttp, StopIsIdempotentAndDestructorStops) {
  obs::MetricsRegistry registry;
  {
    obs::MetricsHttpServer server(&registry);
    ASSERT_TRUE(server.start(0));
    server.stop();
    server.stop();  // no-op
    EXPECT_FALSE(server.running());
  }  // destructor on a stopped server is clean
  {
    obs::MetricsHttpServer server(&registry);
    ASSERT_TRUE(server.start(0));
  }  // destructor stops a running server
}

}  // namespace
}  // namespace prepare
