#include "common/units.h"

#include <gtest/gtest.h>

#include <limits>
#include <type_traits>

#include "common/check.h"

namespace prepare {
namespace {

// --- ordinal family -------------------------------------------------------

TEST(Units, OrdinalsAreExplicitAndDistinct) {
  // Construction requires the explicit wrap; no conversion back out.
  static_assert(!std::is_convertible_v<std::size_t, BinIndex>);
  static_assert(!std::is_convertible_v<std::size_t, TickIndex>);
  static_assert(!std::is_convertible_v<std::uint32_t, VmId>);
  static_assert(!std::is_convertible_v<BinIndex, std::size_t>);
  static_assert(!std::is_convertible_v<TickIndex, std::size_t>);
  // The tag type keeps two ordinals with the same storage incompatible.
  static_assert(!std::is_convertible_v<BinIndex, TickIndex>);
  static_assert(!std::is_convertible_v<TickIndex, BinIndex>);
  static_assert(!std::is_constructible_v<BinIndex, TickIndex>);
}

TEST(Units, OrdinalValueRoundTrips) {
  EXPECT_EQ(BinIndex{7}.value(), 7u);
  EXPECT_EQ(TickIndex{12}.value(), 12u);
  EXPECT_EQ(VmId{3}.value(), 3u);
}

TEST(Units, OrdinalComparisons) {
  EXPECT_EQ(BinIndex{2}, BinIndex{2});
  EXPECT_NE(BinIndex{2}, BinIndex{3});
  EXPECT_LT(TickIndex{1}, TickIndex{2});
  EXPECT_LE(TickIndex{2}, TickIndex{2});
  EXPECT_GT(VmId{5}, VmId{4});
  EXPECT_GE(VmId{5}, VmId{5});
}

TEST(Units, DefaultVmIdIsUnassigned) {
  EXPECT_EQ(VmId{}, kUnassignedVmId);
  EXPECT_EQ(kUnassignedVmId.value(), 0u);
  EXPECT_NE(VmId{1}, kUnassignedVmId);
}

// --- quantity family ------------------------------------------------------

TEST(Units, QuantitiesAreExplicitInImplicitOut) {
  static_assert(!std::is_convertible_v<double, Probability>);
  static_assert(!std::is_convertible_v<double, LogOdds>);
  static_assert(!std::is_convertible_v<double, Seconds>);
  static_assert(std::is_convertible_v<Probability, double>);
  static_assert(std::is_convertible_v<LogOdds, double>);
  static_assert(std::is_convertible_v<Seconds, double>);
  // The implicit read-out must not chain into a different unit's
  // explicit constructor: Probability -/-> Seconds, etc.
  static_assert(!std::is_convertible_v<Probability, Seconds>);
  static_assert(!std::is_convertible_v<Seconds, Probability>);
  static_assert(!std::is_convertible_v<LogOdds, Probability>);
}

TEST(Units, QuantityReadOutIsFrictionless) {
  const Probability p{0.25};
  EXPECT_DOUBLE_EQ(p * 4.0, 1.0);
  const Seconds dt{1.5};
  EXPECT_DOUBLE_EQ(dt / 3.0, 0.5);
  LogOdds score{1.0};
  score += 0.5;
  EXPECT_DOUBLE_EQ(score.value(), 1.5);
  EXPECT_GT(score, 0.0);
}

#if PREPARE_DCHECK_IS_ON
TEST(Units, ProbabilityRangeIsChecked) {
  EXPECT_THROW(Probability{-0.01}, CheckFailure);
  EXPECT_THROW(Probability{1.01}, CheckFailure);
  EXPECT_NO_THROW(Probability{0.0});
  EXPECT_NO_THROW(Probability{1.0});
  // Count-ratio rounding slack: 1 + 1e-10 passes.
  EXPECT_NO_THROW(Probability{1.0 + 1e-10});
}

TEST(Units, SecondsMustBeFinite) {
  EXPECT_THROW(Seconds{std::numeric_limits<double>::infinity()}, CheckFailure);
  EXPECT_THROW(Seconds{std::numeric_limits<double>::quiet_NaN()}, CheckFailure);
  EXPECT_NO_THROW(Seconds{-1.0});  // sign is the call site's business
}
#endif

}  // namespace
}  // namespace prepare
