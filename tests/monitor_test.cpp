#include <gtest/gtest.h>

#include "common/check.h"
#include "monitor/attributes.h"
#include "monitor/metric_store.h"
#include "monitor/vm_monitor.h"
#include "sim/vm.h"

namespace prepare {
namespace {

TEST(Attributes, ThirteenAttributes) {
  EXPECT_EQ(kAttributeCount, 13u);
}

TEST(Attributes, NamesRoundTrip) {
  for (std::size_t a = 0; a < kAttributeCount; ++a) {
    const Attribute attr = static_cast<Attribute>(a);
    EXPECT_EQ(attribute_from_name(attribute_name(attr)), attr);
  }
}

TEST(Attributes, UnknownNameThrows) {
  EXPECT_THROW(attribute_from_name("bogus"), CheckFailure);
}

TEST(Attributes, GetSetHelpers) {
  AttributeVector v{};
  set(v, Attribute::kFreeMem, 123.0);
  EXPECT_DOUBLE_EQ(get(v, Attribute::kFreeMem), 123.0);
}

class VmMonitorTest : public ::testing::Test {
 protected:
  static VmMonitor noiseless() {
    VmMonitorConfig c;
    c.noise = 0.0;
    return VmMonitor(c, 1);
  }

  static Vm busy_vm() {
    Vm vm("v", 1.0, 512.0);
    vm.begin_tick();
    vm.set_app_cpu_demand(0.5);
    vm.set_app_mem_demand(312.0);
    vm.set_net_in(100.0);
    vm.set_net_out(80.0);
    vm.set_disk_read(5.0);
    vm.set_disk_write(10.0);
    vm.finalize_tick();
    return vm;
  }
};

TEST_F(VmMonitorTest, NoiselessSampleMatchesVmState) {
  VmMonitor monitor = noiseless();
  Vm vm = busy_vm();
  const AttributeVector v = monitor.sample(vm);
  EXPECT_NEAR(get(v, Attribute::kCpuUtil), 50.0, 1e-2);
  EXPECT_NEAR(get(v, Attribute::kCpuResidual), 0.5, 1e-2);
  EXPECT_NEAR(get(v, Attribute::kFreeMem), 200.0, 1e-2);
  EXPECT_NEAR(get(v, Attribute::kMemUtil), 312.0 / 512.0 * 100.0, 1e-2);
  EXPECT_NEAR(get(v, Attribute::kNetIn), 100.0, 1e-2);
  EXPECT_NEAR(get(v, Attribute::kNetOut), 80.0, 1e-2);
  EXPECT_NEAR(get(v, Attribute::kDiskRead), 5.0, 1e-2);
  EXPECT_NEAR(get(v, Attribute::kDiskWrite), 10.0, 1e-2);
}

TEST_F(VmMonitorTest, LoadAveragesConvergeToRunnableRatio) {
  VmMonitor monitor = noiseless();
  Vm vm = busy_vm();
  AttributeVector v{};
  for (int i = 0; i < 400; ++i) v = monitor.sample(vm);
  EXPECT_NEAR(get(v, Attribute::kLoad1), 0.5, 0.02);
  EXPECT_NEAR(get(v, Attribute::kLoad5), 0.5, 0.05);
}

TEST_F(VmMonitorTest, Load1ReactsFasterThanLoad5) {
  VmMonitor monitor = noiseless();
  Vm vm = busy_vm();
  for (int i = 0; i < 200; ++i) monitor.sample(vm);
  // Demand doubles: load1 moves first.
  vm.begin_tick();
  vm.set_app_cpu_demand(1.0);
  vm.set_app_mem_demand(312.0);
  vm.finalize_tick();
  AttributeVector v{};
  for (int i = 0; i < 5; ++i) v = monitor.sample(vm);
  EXPECT_GT(get(v, Attribute::kLoad1), get(v, Attribute::kLoad5));
}

TEST_F(VmMonitorTest, PageFaultsTrackMemoryPressure) {
  VmMonitor monitor = noiseless();
  Vm vm("v", 1.0, 512.0);
  vm.begin_tick();
  vm.set_app_mem_demand(100.0);
  vm.finalize_tick();
  EXPECT_NEAR(get(monitor.sample(vm), Attribute::kPageFaults), 0.0, 1e-2);
  vm.begin_tick();
  vm.set_app_mem_demand(560.0);  // pressure ~1.09
  vm.finalize_tick();
  EXPECT_GT(get(monitor.sample(vm), Attribute::kPageFaults), 100.0);
}

TEST_F(VmMonitorTest, NoiseJittersButStaysClose) {
  VmMonitorConfig c;
  c.noise = 0.02;
  VmMonitor monitor(c, 42);
  Vm vm = busy_vm();
  double sum = 0.0;
  bool any_diff = false;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    const double x = get(monitor.sample(vm), Attribute::kCpuUtil);
    any_diff |= x != 50.0;
    sum += x;
  }
  EXPECT_TRUE(any_diff);
  EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(MetricStore, RecordAndQuery) {
  MetricStore store;
  AttributeVector v{};
  set(v, Attribute::kCpuUtil, 10.0);
  store.record("vm1", 0.0, v);
  set(v, Attribute::kCpuUtil, 20.0);
  store.record("vm1", 5.0, v);
  EXPECT_EQ(store.sample_count("vm1"), 2u);
  EXPECT_EQ(store.sample_count("ghost"), 0u);
  EXPECT_DOUBLE_EQ(store.sample_time("vm1", 1), 5.0);
  EXPECT_DOUBLE_EQ(get(store.sample("vm1", 1), Attribute::kCpuUtil), 20.0);
  EXPECT_DOUBLE_EQ(store.series("vm1", Attribute::kCpuUtil).back().value,
                   20.0);
}

TEST(MetricStore, VmNamesInFirstSeenOrder) {
  MetricStore store;
  AttributeVector v{};
  store.record("b", 0.0, v);
  store.record("a", 0.0, v);
  store.record("b", 5.0, v);
  ASSERT_EQ(store.vm_names().size(), 2u);
  EXPECT_EQ(store.vm_names()[0], "b");
  EXPECT_EQ(store.vm_names()[1], "a");
}

TEST(MetricStore, LastSamplesOldestFirst) {
  MetricStore store;
  AttributeVector v{};
  for (int i = 0; i < 5; ++i) {
    set(v, Attribute::kNetIn, static_cast<double>(i));
    store.record("vm", i * 5.0, v);
  }
  const auto last = store.last_samples("vm", 2);
  ASSERT_EQ(last.size(), 2u);
  EXPECT_DOUBLE_EQ(get(last[0], Attribute::kNetIn), 3.0);
  EXPECT_DOUBLE_EQ(get(last[1], Attribute::kNetIn), 4.0);
}

TEST(MetricStore, UnknownVmThrows) {
  MetricStore store;
  EXPECT_THROW(store.series("nope", Attribute::kCpuUtil), CheckFailure);
  EXPECT_THROW(store.sample("nope", 0), CheckFailure);
}

TEST(MetricStore, ClearEmpties) {
  MetricStore store;
  AttributeVector v{};
  store.record("vm", 0.0, v);
  store.clear();
  EXPECT_EQ(store.sample_count("vm"), 0u);
  EXPECT_TRUE(store.vm_names().empty());
}

}  // namespace
}  // namespace prepare
