#include "core/experiment.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace prepare {
namespace {

TEST(Experiment, DeterministicForSeed) {
  ScenarioConfig config;
  config.scheme = Scheme::kPrepare;
  config.seed = 5;
  const auto a = run_scenario(config);
  const auto b = run_scenario(config);
  EXPECT_DOUBLE_EQ(a.violation_time, b.violation_time);
  EXPECT_EQ(a.faulty_vm, b.faulty_vm);
  EXPECT_EQ(a.events.events().size(), b.events.events().size());
}

TEST(Experiment, SeedsVaryTheFaultyPe) {
  ScenarioConfig config;
  config.scheme = Scheme::kNoIntervention;
  std::set<std::string> targets;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    config.seed = seed;
    targets.insert(run_scenario(config).faulty_vm);
  }
  EXPECT_GT(targets.size(), 1u);  // "randomly selected PE"
}

TEST(Experiment, RubisFaultsAlwaysTargetTheDb) {
  ScenarioConfig config;
  config.app = AppKind::kRubis;
  config.scheme = Scheme::kNoIntervention;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    config.seed = seed;
    EXPECT_EQ(run_scenario(config).faulty_vm, "vm-db");
  }
}

TEST(Experiment, BottleneckTargetsTheSink) {
  ScenarioConfig config;
  config.fault = FaultKind::kBottleneck;
  config.scheme = Scheme::kNoIntervention;
  EXPECT_EQ(run_scenario(config).faulty_vm, "vm-pe6");
}

TEST(Experiment, TwoInjectionsProduceTwoViolationEpisodes) {
  ScenarioConfig config;
  config.scheme = Scheme::kNoIntervention;
  config.seed = 2;
  const auto result = run_scenario(config);
  bool violated_in_first = false, violated_in_second = false;
  for (const auto& iv : result.slo.intervals()) {
    if (iv.start >= config.fault1_start &&
        iv.start < config.fault1_start + config.fault_duration + 60.0)
      violated_in_first = true;
    if (iv.start >= config.fault2_start &&
        iv.start < config.fault2_start + config.fault_duration + 60.0)
      violated_in_second = true;
  }
  EXPECT_TRUE(violated_in_first);
  EXPECT_TRUE(violated_in_second);
}

TEST(Experiment, MeasurementWindowCoversSecondInjection) {
  ScenarioConfig config;
  config.scheme = Scheme::kNoIntervention;
  const auto result = run_scenario(config);
  EXPECT_DOUBLE_EQ(result.measure_start, config.fault2_start - 30.0);
  EXPECT_DOUBLE_EQ(result.measure_end, config.run_end);
  EXPECT_LE(result.violation_time, result.violation_time_total);
}

TEST(Experiment, StoreHoldsAlignedSamplesForAllVms) {
  ScenarioConfig config;
  config.scheme = Scheme::kNoIntervention;
  const auto result = run_scenario(config);
  const auto& names = result.store.vm_names();
  ASSERT_EQ(names.size(), 7u);
  const std::size_t n = result.store.sample_count(names[0]);
  EXPECT_EQ(n, static_cast<std::size_t>(config.run_end /
                                        config.sampling_interval_s));
  for (const auto& vm : names)
    EXPECT_EQ(result.store.sample_count(vm), n);
}

TEST(Experiment, SamplingIntervalRespected) {
  ScenarioConfig config;
  config.scheme = Scheme::kNoIntervention;
  config.sampling_interval_s = 10.0;
  const auto result = run_scenario(config);
  const auto& vm = result.store.vm_names()[0];
  EXPECT_DOUBLE_EQ(result.store.sample_time(vm, 1) -
                       result.store.sample_time(vm, 0),
                   10.0);
}

TEST(Experiment, NonDivisibleSamplingIntervalThrows) {
  ScenarioConfig config;
  config.sampling_interval_s = 2.5;
  config.dt = 1.0;
  EXPECT_THROW(run_scenario(config), CheckFailure);
}

TEST(Experiment, RunRepeatedAggregates) {
  ScenarioConfig config;
  config.scheme = Scheme::kNoIntervention;
  const auto repeated = run_repeated(config, 3);
  ASSERT_EQ(repeated.runs.size(), 3u);
  EXPECT_GT(repeated.mean, 0.0);
  EXPECT_GE(repeated.stddev, 0.0);
}

TEST(Experiment, NamesAreStable) {
  EXPECT_STREQ(app_kind_name(AppKind::kSystemS), "system_s");
  EXPECT_STREQ(fault_kind_name(FaultKind::kCpuHog), "cpu_hog");
  EXPECT_STREQ(scheme_name(Scheme::kPrepare), "prepare");
}

}  // namespace
}  // namespace prepare
