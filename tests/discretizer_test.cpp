#include "models/discretizer.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace prepare {
namespace {

TEST(Discretizer, RejectsBadConstruction) {
  EXPECT_THROW(Discretizer(1), CheckFailure);
  EXPECT_THROW(Discretizer(4, DiscretizerKind::kEqualWidth, -0.1),
               CheckFailure);
}

TEST(Discretizer, UseBeforeFitThrows) {
  Discretizer d(4);
  EXPECT_THROW(d.discretize(1.0), CheckFailure);
  EXPECT_THROW(d.bins(), CheckFailure);
  EXPECT_THROW(d.bin_center(BinIndex{0}), CheckFailure);
}

TEST(Discretizer, FitOnEmptyThrows) {
  Discretizer d(4);
  EXPECT_THROW(d.fit({}), CheckFailure);
}

TEST(EqualWidth, PartitionsRange) {
  Discretizer d(4, DiscretizerKind::kEqualWidth, 0.0);
  d.fit({0.0, 100.0});
  EXPECT_EQ(d.bins(), 4u);
  EXPECT_EQ(d.discretize(10.0), 0u);
  EXPECT_EQ(d.discretize(30.0), 1u);
  EXPECT_EQ(d.discretize(60.0), 2u);
  EXPECT_EQ(d.discretize(90.0), 3u);
}

TEST(EqualWidth, ClampsOutliers) {
  Discretizer d(4, DiscretizerKind::kEqualWidth, 0.0);
  d.fit({0.0, 100.0});
  EXPECT_EQ(d.discretize(-50.0), 0u);
  EXPECT_EQ(d.discretize(1e9), 3u);
}

TEST(EqualWidth, ConstantDataStillWorks) {
  Discretizer d(4, DiscretizerKind::kEqualWidth);
  d.fit({5.0, 5.0, 5.0});
  EXPECT_LT(d.discretize(4.0), d.bins());
  EXPECT_LT(d.discretize(6.0), d.bins());
}

TEST(EqualWidth, CentersAreMonotone) {
  Discretizer d(6, DiscretizerKind::kEqualWidth);
  d.fit({0.0, 60.0});
  const auto centers = d.bin_centers();
  ASSERT_EQ(centers.size(), 6u);
  for (std::size_t i = 1; i < centers.size(); ++i)
    EXPECT_GT(centers[i], centers[i - 1]);
}

TEST(Quantile, EqualMassBins) {
  Discretizer d(4, DiscretizerKind::kQuantile);
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(static_cast<double>(i));
  d.fit(xs);
  EXPECT_EQ(d.bins(), 4u);
  // Roughly a quarter of the data per bin.
  std::vector<int> counts(4, 0);
  for (double x : xs) counts[d.discretize(x)]++;
  for (int c : counts) EXPECT_NEAR(c, 25, 2);
}

TEST(Quantile, SkewedDataKeepsResolutionInBulk) {
  // 90% of the mass near zero, 10% extreme outliers: the bulk must not
  // collapse into a single bin (the equal-width failure mode).
  std::vector<double> xs;
  for (int i = 0; i < 90; ++i) xs.push_back(static_cast<double>(i) * 0.01);
  for (int i = 0; i < 10; ++i) xs.push_back(1000.0 + i);
  Discretizer q(5, DiscretizerKind::kQuantile);
  q.fit(xs);
  EXPECT_GT(q.discretize(0.6), q.discretize(0.2));

  Discretizer e(5, DiscretizerKind::kEqualWidth, 0.0);
  e.fit(xs);
  EXPECT_EQ(e.discretize(0.6), e.discretize(0.2));  // all bulk in bin 0
}

TEST(Quantile, TiedDataMergesBins) {
  std::vector<double> xs(100, 7.0);
  xs.push_back(9.0);
  Discretizer d(5, DiscretizerKind::kQuantile);
  d.fit(xs);
  EXPECT_LT(d.bins(), 5u);
  EXPECT_GE(d.bins(), 2u);
  EXPECT_LT(d.discretize(7.0), d.discretize(9.0));
}

TEST(Quantile, ConstantDataYieldsTwoBins) {
  Discretizer d(5, DiscretizerKind::kQuantile);
  d.fit(std::vector<double>(50, 3.0));
  EXPECT_EQ(d.bins(), 2u);
  EXPECT_EQ(d.discretize(3.0), 0u);
  EXPECT_EQ(d.discretize(100.0), 1u);
}

TEST(Discretizer, VectorOverload) {
  Discretizer d(4, DiscretizerKind::kEqualWidth, 0.0);
  d.fit({0.0, 100.0});
  const auto bins = d.discretize(std::vector<double>{10.0, 90.0});
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_EQ(bins[0], 0u);
  EXPECT_EQ(bins[1], 3u);
}

// Property sweep: every value maps to a valid bin and bin assignment is
// monotone in the value.
class DiscretizerSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(DiscretizerSweep, ValidAndMonotone) {
  const auto [bins, kind_int] = GetParam();
  const auto kind = static_cast<DiscretizerKind>(kind_int);
  Discretizer d(bins, kind);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(i * i * 0.1);  // skewed
  d.fit(xs);
  std::size_t prev = 0;
  for (double x = -10.0; x < 5000.0; x += 13.0) {
    const std::size_t b = d.discretize(x);
    EXPECT_LT(b, d.bins());
    EXPECT_GE(b, prev);
    prev = b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, DiscretizerSweep,
    ::testing::Combine(::testing::Values(2, 3, 5, 8, 16),
                       ::testing::Values(0, 1)));

}  // namespace
}  // namespace prepare
