#include "models/discretizer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace prepare {
namespace {

/// Reference bin assignment straight from the documented contract:
/// bin i covers (cuts[i-1], cuts[i]], i.e. lower_bound over the cuts.
std::size_t reference_bin(const Discretizer& d, double value) {
  const auto& cuts = d.cuts();
  return static_cast<std::size_t>(
      std::lower_bound(cuts.begin(), cuts.end(), value) - cuts.begin());
}

TEST(Discretizer, RejectsBadConstruction) {
  EXPECT_THROW(Discretizer(1), CheckFailure);
  EXPECT_THROW(Discretizer(4, DiscretizerKind::kEqualWidth, -0.1),
               CheckFailure);
}

TEST(Discretizer, UseBeforeFitThrows) {
  Discretizer d(4);
  EXPECT_THROW(d.discretize(1.0), CheckFailure);
  EXPECT_THROW(d.bins(), CheckFailure);
  EXPECT_THROW(d.bin_center(BinIndex{0}), CheckFailure);
}

TEST(Discretizer, FitOnEmptyThrows) {
  Discretizer d(4);
  EXPECT_THROW(d.fit({}), CheckFailure);
}

TEST(EqualWidth, PartitionsRange) {
  Discretizer d(4, DiscretizerKind::kEqualWidth, 0.0);
  d.fit({0.0, 100.0});
  EXPECT_EQ(d.bins(), 4u);
  EXPECT_EQ(d.discretize(10.0), 0u);
  EXPECT_EQ(d.discretize(30.0), 1u);
  EXPECT_EQ(d.discretize(60.0), 2u);
  EXPECT_EQ(d.discretize(90.0), 3u);
}

TEST(EqualWidth, ClampsOutliers) {
  Discretizer d(4, DiscretizerKind::kEqualWidth, 0.0);
  d.fit({0.0, 100.0});
  EXPECT_EQ(d.discretize(-50.0), 0u);
  EXPECT_EQ(d.discretize(1e9), 3u);
}

TEST(EqualWidth, ConstantDataStillWorks) {
  Discretizer d(4, DiscretizerKind::kEqualWidth);
  d.fit({5.0, 5.0, 5.0});
  EXPECT_LT(d.discretize(4.0), d.bins());
  EXPECT_LT(d.discretize(6.0), d.bins());
}

TEST(EqualWidth, CentersAreMonotone) {
  Discretizer d(6, DiscretizerKind::kEqualWidth);
  d.fit({0.0, 60.0});
  const auto centers = d.bin_centers();
  ASSERT_EQ(centers.size(), 6u);
  for (std::size_t i = 1; i < centers.size(); ++i)
    EXPECT_GT(centers[i], centers[i - 1]);
}

TEST(Quantile, EqualMassBins) {
  Discretizer d(4, DiscretizerKind::kQuantile);
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(static_cast<double>(i));
  d.fit(xs);
  EXPECT_EQ(d.bins(), 4u);
  // Roughly a quarter of the data per bin.
  std::vector<int> counts(4, 0);
  for (double x : xs) counts[d.discretize(x)]++;
  for (int c : counts) EXPECT_NEAR(c, 25, 2);
}

TEST(Quantile, SkewedDataKeepsResolutionInBulk) {
  // 90% of the mass near zero, 10% extreme outliers: the bulk must not
  // collapse into a single bin (the equal-width failure mode).
  std::vector<double> xs;
  for (int i = 0; i < 90; ++i) xs.push_back(static_cast<double>(i) * 0.01);
  for (int i = 0; i < 10; ++i) xs.push_back(1000.0 + i);
  Discretizer q(5, DiscretizerKind::kQuantile);
  q.fit(xs);
  EXPECT_GT(q.discretize(0.6), q.discretize(0.2));

  Discretizer e(5, DiscretizerKind::kEqualWidth, 0.0);
  e.fit(xs);
  EXPECT_EQ(e.discretize(0.6), e.discretize(0.2));  // all bulk in bin 0
}

TEST(Quantile, TiedDataMergesBins) {
  std::vector<double> xs(100, 7.0);
  xs.push_back(9.0);
  Discretizer d(5, DiscretizerKind::kQuantile);
  d.fit(xs);
  EXPECT_LT(d.bins(), 5u);
  EXPECT_GE(d.bins(), 2u);
  EXPECT_LT(d.discretize(7.0), d.discretize(9.0));
}

TEST(Quantile, ConstantDataYieldsTwoBins) {
  Discretizer d(5, DiscretizerKind::kQuantile);
  d.fit(std::vector<double>(50, 3.0));
  EXPECT_EQ(d.bins(), 2u);
  EXPECT_EQ(d.discretize(3.0), 0u);
  EXPECT_EQ(d.discretize(100.0), 1u);
}

TEST(Discretizer, VectorOverload) {
  Discretizer d(4, DiscretizerKind::kEqualWidth, 0.0);
  d.fit({0.0, 100.0});
  const auto bins = d.discretize(std::vector<double>{10.0, 90.0});
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_EQ(bins[0], 0u);
  EXPECT_EQ(bins[1], 3u);
}

TEST(EqualWidth, ValueExactlyOnCutBelongsToLowerBin) {
  // Bin i is (cuts[i-1], cuts[i]]: a value sitting exactly on a cut is
  // the closed upper end of the lower bin. The uniform-grid fast path
  // must agree even though the direct index computation rounds the
  // other way.
  Discretizer d(4, DiscretizerKind::kEqualWidth, 0.0);
  d.fit({0.0, 100.0});
  ASSERT_EQ(d.cuts().size(), 3u);
  for (std::size_t c = 0; c < d.cuts().size(); ++c) {
    const double cut = d.cuts()[c];
    EXPECT_EQ(d.discretize(cut), c) << "on cut " << cut;
    EXPECT_EQ(d.discretize(std::nextafter(cut, 1e18)), c + 1)
        << "just above cut " << cut;
    EXPECT_EQ(d.discretize(std::nextafter(cut, -1e18)), c)
        << "just below cut " << cut;
  }
}

TEST(EqualWidth, FastPathMatchesBinarySearch) {
  // The direct-index fast path must be bit-identical to the general
  // lower_bound answer everywhere, including at and around every cut
  // and far outside the grid.
  Discretizer d(7, DiscretizerKind::kEqualWidth);
  d.fit({-3.0, 41.7});
  std::vector<double> probes = {-1e9, -3.0, 0.0, 41.7, 1e9};
  for (double x = -10.0; x <= 50.0; x += 0.037) probes.push_back(x);
  for (double cut : d.cuts()) {
    probes.push_back(cut);
    probes.push_back(std::nextafter(cut, 1e18));
    probes.push_back(std::nextafter(cut, -1e18));
  }
  for (double x : probes)
    EXPECT_EQ(d.discretize(x), reference_bin(d, x)) << "at " << x;
}

TEST(GuardBins, RoundTripThroughCenters) {
  // bin_center must land strictly inside its own bin for every bin —
  // including the guard bins past the training range, where the old
  // center formula collapsed onto the neighbouring bin.
  for (auto kind : {DiscretizerKind::kEqualWidth, DiscretizerKind::kQuantile}) {
    Discretizer d(5, kind, 0.05, /*guard_bins=*/true);
    std::vector<double> xs;
    for (int i = 0; i <= 100; ++i) xs.push_back(static_cast<double>(i));
    d.fit(xs);
    for (std::size_t b = 0; b < d.bins(); ++b)
      EXPECT_EQ(d.discretize(d.bin_center(BinIndex{b})), b)
          << "kind " << static_cast<int>(kind) << " bin " << b;
  }
}

TEST(GuardBins, CentersAreStrictlyMonotone) {
  Discretizer d(4, DiscretizerKind::kEqualWidth, 0.05, /*guard_bins=*/true);
  d.fit({10.0, 20.0});
  const auto centers = d.bin_centers();
  ASSERT_EQ(centers.size(), d.bins());
  for (std::size_t b = 1; b < centers.size(); ++b)
    EXPECT_LT(centers[b - 1], centers[b]) << "at bin " << b;
  // Guard bins only catch values beyond the training range.
  EXPECT_EQ(d.discretize(10.0), 1u);
  EXPECT_EQ(d.discretize(20.0), d.bins() - 2);
  EXPECT_EQ(d.discretize(-1e6), 0u);
  EXPECT_EQ(d.discretize(1e6), d.bins() - 1);
}

TEST(Quantile, TiedDataCentersStayMonotone) {
  // Heavily tied training data merges quantile cuts; the centers of the
  // surviving bins must still be strictly increasing (and round-trip).
  std::vector<double> xs(100, 7.0);
  xs.push_back(9.0);
  xs.push_back(9.5);
  Discretizer d(5, DiscretizerKind::kQuantile);
  d.fit(xs);
  const auto centers = d.bin_centers();
  for (std::size_t b = 1; b < centers.size(); ++b)
    EXPECT_LT(centers[b - 1], centers[b]) << "at bin " << b;
  for (std::size_t b = 0; b < d.bins(); ++b)
    EXPECT_EQ(d.discretize(d.bin_center(BinIndex{b})), b) << "bin " << b;
}

TEST(EqualWidth, ConstantDataCentersStayMonotone) {
  // Constant data pads an artificial range; the degenerate-but-legal
  // geometry must still produce strictly increasing centers.
  Discretizer d(4, DiscretizerKind::kEqualWidth);
  d.fit({5.0, 5.0, 5.0});
  const auto centers = d.bin_centers();
  for (std::size_t b = 1; b < centers.size(); ++b)
    EXPECT_LT(centers[b - 1], centers[b]) << "at bin " << b;
}

// Property sweep: every value maps to a valid bin and bin assignment is
// monotone in the value.
class DiscretizerSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(DiscretizerSweep, ValidAndMonotone) {
  const auto [bins, kind_int] = GetParam();
  const auto kind = static_cast<DiscretizerKind>(kind_int);
  Discretizer d(bins, kind);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(i * i * 0.1);  // skewed
  d.fit(xs);
  std::size_t prev = 0;
  for (double x = -10.0; x < 5000.0; x += 13.0) {
    const std::size_t b = d.discretize(x);
    EXPECT_LT(b, d.bins());
    EXPECT_GE(b, prev);
    prev = b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, DiscretizerSweep,
    ::testing::Combine(::testing::Values(2, 3, 5, 8, 16),
                       ::testing::Values(0, 1)));

}  // namespace
}  // namespace prepare
