// Conservation and flow invariants of the application models — the
// properties any queueing substrate must satisfy regardless of faults,
// scalings or migrations happening around it.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "apps/stream/stream_app.h"
#include "apps/webapp/web_app.h"
#include "common/rng.h"
#include "sim/cluster.h"
#include "workload/patterns.h"

namespace prepare {
namespace {

class StreamConservation
    : public ::testing::TestWithParam<double> {  // source rate
 protected:
  void build(double rate) {
    workload_ = std::make_unique<ConstantWorkload>(rate);
    for (int i = 0; i < 7; ++i) {
      Host* h = cluster_.add_host("h" + std::to_string(i));
      vms_.push_back(
          cluster_.add_vm("pe" + std::to_string(i + 1), 1.0, 512.0, h));
    }
    app_ = std::make_unique<StreamApp>(vms_, workload_.get());
  }

  Cluster cluster_;
  std::vector<Vm*> vms_;
  std::unique_ptr<Workload> workload_;
  std::unique_ptr<StreamApp> app_;
};

TEST_P(StreamConservation, OutputNeverExceedsOfferedWork) {
  build(GetParam());
  // Over the whole run, emitted tuples cannot exceed offered tuples times
  // the pipeline's intrinsic selectivity (0.9 at PE6), up to the
  // smoothing window and transient backlog drain.
  double offered = 0.0, emitted = 0.0;
  for (double t = 0.0; t < 300.0; t += 1.0) {
    for (Vm* vm : vms_) vm->begin_tick();
    app_->step(t, 1.0);
    offered += app_->offered_rate();
    emitted += app_->output_rate();
  }
  EXPECT_LE(emitted, offered * 0.9 * 1.02);
}

TEST_P(StreamConservation, BacklogsNonNegativeAndBounded) {
  build(GetParam());
  Rng rng(11);
  for (double t = 0.0; t < 300.0; t += 1.0) {
    for (Vm* vm : vms_) vm->begin_tick();
    // Random fault turbulence.
    if (rng.chance(0.1))
      vms_[static_cast<std::size_t>(rng.uniform_int(0, 6))]
          ->set_fault_cpu_demand(rng.uniform(0.0, 6.0));
    if (rng.chance(0.1))
      vms_[static_cast<std::size_t>(rng.uniform_int(0, 6))]
          ->set_fault_mem_demand(rng.uniform(0.0, 600.0));
    app_->step(t, 1.0);
    for (std::size_t i = 0; i < app_->pe_count(); ++i) {
      EXPECT_GE(app_->backlog_of(i), 0.0);
      EXPECT_LE(app_->backlog_of(i),
                StreamAppConfig{}.max_backlog_tuples + 1e-6);
    }
    EXPECT_GE(app_->output_rate(), 0.0);
    EXPECT_GE(app_->tuple_latency(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, StreamConservation,
                         ::testing::Values(5000.0, 25000.0, 60000.0,
                                           120000.0, 200000.0));

class WebConservation : public ::testing::TestWithParam<double> {
 protected:
  void build(double rate) {
    workload_ = std::make_unique<ConstantWorkload>(rate);
    const char* names[] = {"web", "app1", "app2", "db"};
    for (int i = 0; i < 4; ++i) {
      Host* h = cluster_.add_host("h" + std::to_string(i));
      vms_.push_back(
          cluster_.add_vm(names[i], 1.0, i == 3 ? 1024.0 : 768.0, h));
    }
    app_ = std::make_unique<WebApp>(vms_, workload_.get());
  }

  Cluster cluster_;
  std::vector<Vm*> vms_;
  std::unique_ptr<Workload> workload_;
  std::unique_ptr<WebApp> app_;
};

TEST_P(WebConservation, ResponseTimePositiveAndFiniteUnderChaos) {
  build(GetParam());
  Rng rng(13);
  for (double t = 0.0; t < 300.0; t += 1.0) {
    for (Vm* vm : vms_) vm->begin_tick();
    if (rng.chance(0.15))
      vms_[3]->set_fault_cpu_demand(rng.uniform(0.0, 8.0));
    if (rng.chance(0.15))
      vms_[3]->set_fault_mem_demand(rng.uniform(0.0, 1200.0));
    app_->step(t, 1.0);
    EXPECT_GT(app_->response_time(), 0.0);
    EXPECT_LT(app_->response_time(), 120.0);  // bounded by finite queues
    for (std::size_t i = 0; i < app_->tier_count(); ++i) {
      EXPECT_GE(app_->backlog_of(i), 0.0);
      EXPECT_LE(app_->backlog_of(i),
                WebAppConfig{}.max_backlog_requests + 1e-6);
    }
  }
}

TEST_P(WebConservation, SloMonotoneInLoad) {
  // Response time at double the load is never (persistently) lower.
  build(GetParam());
  for (double t = 0.0; t < 120.0; t += 1.0) {
    for (Vm* vm : vms_) vm->begin_tick();
    app_->step(t, 1.0);
  }
  const double light = app_->response_time();

  Cluster cluster2;
  std::vector<Vm*> vms2;
  const char* names[] = {"web", "app1", "app2", "db"};
  for (int i = 0; i < 4; ++i) {
    Host* h = cluster2.add_host("g" + std::to_string(i));
    vms2.push_back(
        cluster2.add_vm(names[i], 1.0, i == 3 ? 1024.0 : 768.0, h));
  }
  ConstantWorkload heavy_load(GetParam() * 2.0);
  WebApp heavy(vms2, &heavy_load);
  for (double t = 0.0; t < 120.0; t += 1.0) {
    for (Vm* vm : vms2) vm->begin_tick();
    heavy.step(t, 1.0);
  }
  EXPECT_GE(heavy.response_time(), light * 0.95);
}

INSTANTIATE_TEST_SUITE_P(Rates, WebConservation,
                         ::testing::Values(20.0, 60.0, 100.0));

}  // namespace
}  // namespace prepare
